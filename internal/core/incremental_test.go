package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

// The differential harness drives two schedulers — one incremental, one
// with SetIncremental(false) — through the identical randomized churn
// sequence and asserts byte-identical outcomes after every round: views,
// start lists, and every scheduler-owned request attribute. This pins the
// incremental caches to full recomputation under request add/withdraw,
// start, finish, duration shrink (done), GC, app connect/disconnect and
// cluster attach/detach.

// diffOp is one abstract mutation, expressed in IDs so it can be applied to
// both mirrored schedulers.
type diffOp struct {
	kind    string
	app     int
	req     request.ID
	parent  request.ID
	cluster view.ClusterID
	n       int
	dur     float64
	typ     request.Type
	how     request.Relation
	nb      float64 // NotBefore floor for hold/setnb ops
}

// diffMirror is one scheduler with ID-indexed request bookkeeping.
type diffMirror struct {
	s    *Scheduler
	reqs map[request.ID]*request.Request
}

func newDiffMirror(clusters map[view.ClusterID]int, incremental bool) *diffMirror {
	s := NewScheduler(clusters)
	s.SetIncremental(incremental)
	return &diffMirror{s: s, reqs: make(map[request.ID]*request.Request)}
}

func (m *diffMirror) apply(t *testing.T, op diffOp, now float64) {
	t.Helper()
	switch op.kind {
	case "connect":
		m.s.AddApp(op.app, now)
	case "disconnect":
		if a := m.s.RemoveApp(op.app); a != nil {
			for _, r := range a.Requests() {
				delete(m.reqs, r.ID)
			}
		}
	case "request":
		a := m.s.App(op.app)
		var parent *request.Request
		if op.how != request.Free {
			parent = m.reqs[op.parent]
		}
		r := request.New(op.req, op.app, op.cluster, op.n, op.dur, op.typ, op.how, parent)
		a.SetFor(op.typ).Add(r)
		m.reqs[r.ID] = r
		m.s.MarkAppDirty(op.app)
	case "withdraw":
		r := m.reqs[op.req]
		m.s.App(op.app).SetFor(r.Type).Remove(r)
		delete(m.reqs, op.req)
		m.s.MarkAppDirty(op.app)
	case "finish":
		r := m.reqs[op.req]
		if r.Started() && now > r.StartedAt && now-r.StartedAt < r.Duration {
			r.Duration = now - r.StartedAt // done() shrinks the allocation
		}
		r.Finished = true
		m.s.MarkAppDirty(op.app)
	case "gc":
		a := m.s.App(op.app)
		collect := func(r *request.Request) { delete(m.reqs, r.ID) }
		a.PA.GC(now, collect)
		a.NP.GC(now, collect)
		a.P.GC(now, collect)
		m.s.MarkAppDirty(op.app)
	case "hold":
		// Mirrors rms.HoldObserved: a pending request that reserves CBF
		// capacity from a NotBefore floor but is never started.
		a := m.s.App(op.app)
		r := request.New(op.req, op.app, op.cluster, op.n, op.dur, op.typ, request.Free, nil)
		r.Held = true
		if op.nb > 0 {
			r.NotBefore = op.nb
		}
		a.SetFor(op.typ).Add(r)
		m.reqs[r.ID] = r
		m.s.MarkAppDirty(op.app)
	case "commit":
		// Mirrors rms.CommitHold: the hold becomes an ordinary pending
		// request, keeping its NotBefore floor.
		m.reqs[op.req].Held = false
		m.s.MarkAppDirty(op.app)
	case "setnb":
		// Mirrors rms.SetNotBefore during gang alignment.
		m.reqs[op.req].NotBefore = op.nb
		m.s.MarkAppDirty(op.app)
	case "addcluster":
		m.s.AddCluster(op.cluster, op.n)
	default:
		t.Fatalf("unknown op %q", op.kind)
	}
}

// startArrived mirrors the RMS start path: every ToStart request begins now.
func (m *diffMirror) startArrived(out *Outcome, now float64) {
	for _, r := range out.ToStart {
		r.StartedAt = now
		m.s.MarkAppDirty(r.AppID)
	}
}

func viewsEqual(a, b map[int]view.View) error {
	if len(a) != len(b) {
		return fmt.Errorf("view count %d != %d", len(a), len(b))
	}
	for id, v := range a {
		w, ok := b[id]
		if !ok {
			return fmt.Errorf("app %d missing", id)
		}
		if !v.Equal(w) {
			return fmt.Errorf("app %d view %v != %v", id, v, w)
		}
	}
	return nil
}

func (m *diffMirror) compareTo(o *diffMirror, outA, outB *Outcome) error {
	if err := viewsEqual(outA.NonPreemptViews, outB.NonPreemptViews); err != nil {
		return fmt.Errorf("non-preemptive: %w", err)
	}
	if err := viewsEqual(outA.PreemptViews, outB.PreemptViews); err != nil {
		return fmt.Errorf("preemptive: %w", err)
	}
	if len(outA.ToStart) != len(outB.ToStart) {
		return fmt.Errorf("ToStart %d != %d", len(outA.ToStart), len(outB.ToStart))
	}
	for i := range outA.ToStart {
		if outA.ToStart[i].ID != outB.ToStart[i].ID {
			return fmt.Errorf("ToStart[%d] = %d != %d", i, outA.ToStart[i].ID, outB.ToStart[i].ID)
		}
		if outA.ToStart[i].Held {
			return fmt.Errorf("ToStart[%d] = %d is a hold — holds must never start", i, outA.ToStart[i].ID)
		}
	}
	if len(m.reqs) != len(o.reqs) {
		return fmt.Errorf("request count %d != %d", len(m.reqs), len(o.reqs))
	}
	for id, r := range m.reqs {
		q, ok := o.reqs[id]
		if !ok {
			return fmt.Errorf("request %d missing", id)
		}
		if r.ScheduledAt != q.ScheduledAt && !(math.IsInf(r.ScheduledAt, 1) && math.IsInf(q.ScheduledAt, 1)) {
			return fmt.Errorf("request %d ScheduledAt %v != %v", id, r.ScheduledAt, q.ScheduledAt)
		}
		if r.NAlloc != q.NAlloc {
			return fmt.Errorf("request %d NAlloc %d != %d", id, r.NAlloc, q.NAlloc)
		}
		if r.Fixed != q.Fixed {
			return fmt.Errorf("request %d Fixed %v != %v", id, r.Fixed, q.Fixed)
		}
		if r.Wrapped != q.Wrapped {
			return fmt.Errorf("request %d Wrapped %v != %v", id, r.Wrapped, q.Wrapped)
		}
	}
	return nil
}

// TestIncrementalMatchesFullRecompute is the randomized-churn differential:
// same op sequence, same clock, byte-identical outputs every round.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		clusters := map[view.ClusterID]int{"ca": 16, "cb": 8, "cc": 12}
		runDiffChurn(t, seed, newDiffMirror(clusters, true), newDiffMirror(clusters, false))
	}
}

// runDiffChurn drives the two mirrored schedulers through the seeded
// randomized churn sequence (120 rounds of connect/disconnect/request/
// withdraw/finish/gc/hold/commit/setnb/addcluster ops) and asserts
// byte-identical outcomes after every round. It is shared by the
// incremental-vs-full differential above and the policy-path differential
// in policy_test.go.
func runDiffChurn(t *testing.T, seed int64, inc, full *diffMirror) {
	t.Helper()
	clusterIDs := []view.ClusterID{"ca", "cb", "cc"}
	rng := rand.New(rand.NewSource(seed))
	{
		var nextReq request.ID = 1
		nextApp := 1
		now := 0.0
		apply := func(op diffOp) {
			inc.apply(t, op, now)
			full.apply(t, op, now)
		}
		// Start with a few applications.
		for i := 0; i < 3; i++ {
			apply(diffOp{kind: "connect", app: nextApp})
			nextApp++
		}

		for round := 0; round < 120; round++ {
			now += rng.Float64() * 15
			// 1–3 mutations per round, so rounds see mixed dirt.
			for k := 0; k < 1+rng.Intn(3); k++ {
				appIDs := []int{}
				for _, a := range inc.s.Apps() {
					appIDs = append(appIDs, a.ID)
				}
				switch rng.Intn(13) {
				case 0:
					if len(appIDs) < 6 {
						apply(diffOp{kind: "connect", app: nextApp})
						nextApp++
					}
				case 1:
					if len(appIDs) > 2 {
						apply(diffOp{kind: "disconnect", app: appIDs[rng.Intn(len(appIDs))]})
					}
				case 2, 3, 4, 5:
					if len(appIDs) == 0 {
						continue
					}
					app := appIDs[rng.Intn(len(appIDs))]
					op := diffOp{
						kind: "request", app: app, req: nextReq,
						cluster: clusterIDs[rng.Intn(len(clusterIDs))],
						n:       1 + rng.Intn(6),
						dur:     20 + rng.Float64()*200,
					}
					switch rng.Intn(3) {
					case 0:
						op.typ = request.PreAlloc
					case 1:
						op.typ = request.NonPreempt
					default:
						op.typ = request.Preempt
						if rng.Intn(2) == 0 {
							op.dur = math.Inf(1)
						}
					}
					// Sometimes chain to an existing unfinished request of
					// the same app (same-cluster, like the RMS enforces).
					if rng.Intn(3) == 0 {
						a := inc.s.App(app)
						var cands []*request.Request
						for _, r := range a.Requests() {
							if !r.Finished && r.Cluster == op.cluster &&
								!(op.typ == request.PreAlloc && r.Type != request.PreAlloc) {
								cands = append(cands, r)
							}
						}
						if len(cands) > 0 {
							p := cands[rng.Intn(len(cands))]
							op.parent = p.ID
							if rng.Intn(2) == 0 {
								op.how = request.Coalloc
							} else {
								op.how = request.Next
							}
						}
					}
					apply(op)
					nextReq++
				case 6, 7:
					// Finish a random started, unfinished request.
					var cands []*request.Request
					for _, r := range inc.reqs {
						if r.Started() && !r.Finished {
							cands = append(cands, r)
						}
					}
					if len(cands) > 0 {
						r := cands[rng.Intn(len(cands))]
						apply(diffOp{kind: "finish", app: r.AppID, req: r.ID})
					}
				case 8:
					// Withdraw a random pending request with no children.
					var cands []*request.Request
					for _, r := range inc.reqs {
						if r.Started() || r.Finished {
							continue
						}
						child := false
						for _, q := range inc.reqs {
							if q.RelatedTo == r {
								child = true
								break
							}
						}
						if !child {
							cands = append(cands, r)
						}
					}
					if len(cands) > 0 {
						r := cands[rng.Intn(len(cands))]
						apply(diffOp{kind: "withdraw", app: r.AppID, req: r.ID})
					}
				case 9:
					if len(appIDs) > 0 {
						apply(diffOp{kind: "gc", app: appIDs[rng.Intn(len(appIDs))]})
					}
				case 10:
					// Place a reservation hold, sometimes with a future
					// NotBefore floor (the gang coordinator's alignment).
					if len(appIDs) == 0 {
						continue
					}
					op := diffOp{
						kind: "hold", app: appIDs[rng.Intn(len(appIDs))], req: nextReq,
						cluster: clusterIDs[rng.Intn(len(clusterIDs))],
						n:       1 + rng.Intn(6),
						dur:     20 + rng.Float64()*200,
						typ:     request.NonPreempt,
					}
					if rng.Intn(2) == 0 {
						op.typ = request.Preempt
					}
					if rng.Intn(2) == 0 {
						op.nb = now + rng.Float64()*100
					}
					apply(op)
					nextReq++
				case 11:
					// Commit, re-floor, or release a random live hold.
					var cands []*request.Request
					for _, r := range inc.reqs {
						if r.Held {
							cands = append(cands, r)
						}
					}
					if len(cands) == 0 {
						continue
					}
					r := cands[rng.Intn(len(cands))]
					switch rng.Intn(3) {
					case 0:
						apply(diffOp{kind: "commit", app: r.AppID, req: r.ID})
					case 1:
						apply(diffOp{kind: "setnb", app: r.AppID, req: r.ID, nb: now + rng.Float64()*150})
					default:
						apply(diffOp{kind: "withdraw", app: r.AppID, req: r.ID})
					}
				case 12:
					// Raise the floor of a random pending (unstarted,
					// unheld) request — SetNotBefore is legal on those too.
					var cands []*request.Request
					for _, r := range inc.reqs {
						if !r.Started() && !r.Finished && !r.Held {
							cands = append(cands, r)
						}
					}
					if len(cands) > 0 {
						r := cands[rng.Intn(len(cands))]
						apply(diffOp{kind: "setnb", app: r.AppID, req: r.ID, nb: now + rng.Float64()*80})
					}
				}
			}
			if round == 60 && seed%3 == 0 {
				apply(diffOp{kind: "addcluster", cluster: "cd", n: 10})
				clusterIDs = []view.ClusterID{"ca", "cb", "cc", "cd"}
			}

			outA := inc.s.Schedule(now)
			outB := full.s.Schedule(now)
			if err := inc.compareTo(full, outA, outB); err != nil {
				t.Fatalf("seed %d round %d (t=%.2f): %v", seed, round, now, err)
			}
			// Start what the round says and compare the post-start round,
			// mirroring the RMS's schedule→start→schedule sequence.
			inc.startArrived(outA, now)
			full.startArrived(outB, now)
			outA = inc.s.Schedule(now)
			outB = full.s.Schedule(now)
			if err := inc.compareTo(full, outA, outB); err != nil {
				t.Fatalf("seed %d round %d post-start (t=%.2f): %v", seed, round, now, err)
			}
		}
	}
}

// TestIncrementalStatsReuse sanity-checks that steady rounds actually hit
// the caches: after a quiet fleet settles, repeated rounds reuse every
// per-app artifact and every cluster walk.
func TestIncrementalStatsReuse(t *testing.T) {
	s := NewScheduler(map[view.ClusterID]int{c0: 64})
	for i := 0; i < 8; i++ {
		a := s.AddApp(i+1, float64(i))
		pa := request.New(request.ID(2*i+1), a.ID, c0, 4, 1e6, request.PreAlloc, request.Free, nil)
		pa.StartedAt = 0
		a.PA.Add(pa)
		p := request.New(request.ID(2*i+2), a.ID, c0, 2, math.Inf(1), request.Preempt, request.Free, nil)
		p.StartedAt = 0
		a.P.Add(p)
	}
	s.Schedule(1) // cold round populates the caches
	base := s.Stats()
	for i := 2; i < 10; i++ {
		s.Schedule(float64(i))
	}
	st := s.Stats()
	if got := st.CBFRecomputed - base.CBFRecomputed; got != 0 {
		t.Errorf("steady rounds recomputed %d CBF steps, want 0", got)
	}
	if got := st.EqOccRecomputed - base.EqOccRecomputed; got != 0 {
		t.Errorf("steady rounds recomputed %d occupancies, want 0", got)
	}
	if got := st.WalksRecomputed - base.WalksRecomputed; got != 0 {
		t.Errorf("steady rounds recomputed %d cluster walks, want 0", got)
	}
	if got := st.EqAppReused - base.EqAppReused; got == 0 {
		t.Error("steady rounds should reuse the rescheduling pass")
	}
}
