#!/usr/bin/env python3
"""Fail CI when a benchmark regresses versus the merge-base.

Reads two `go test -bench` outputs (base, head), takes the per-benchmark
median of ns/op, allocs/op and p99-wait-s over the repeated -count runs,
and exits non-zero if any benchmark present in BOTH files got slower
(ns/op), more allocation-hungry (allocs/op), or longer-tailed (p99-wait-s,
the admit->start wait quantile the federated benchmarks report) by more
than --max-regression percent. Metrics present on only one side are
ignored, as is a zero base (no relative regression is computable).
benchstat renders the human-readable comparison in the CI log; this gate is
deliberately version-independent of benchstat's output format.

Usage: bench_gate.py base.txt head.txt [--max-regression 10]
"""

import argparse
import re
import statistics
import sys

# BenchmarkName-8   	    2000	   123456 ns/op	  1234 B/op	  12 allocs/op	 456 requests/s
LINE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$"
)
ALLOCS = re.compile(r"([\d.]+) allocs/op")
P99WAIT = re.compile(r"([\d.eE+-]+) p99-wait-s")

GATED_METRICS = ("ns/op", "allocs/op", "p99-wait-s")


def parse(path):
    runs = {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, ns, rest = m.group(1), float(m.group(2)), m.group(3)
            entry = runs.setdefault(
                name, {metric: [] for metric in GATED_METRICS})
            entry["ns/op"].append(ns)
            am = ALLOCS.search(rest)
            if am:
                entry["allocs/op"].append(float(am.group(1)))
            pm = P99WAIT.search(rest)
            if pm:
                entry["p99-wait-s"].append(float(pm.group(1)))
    return {
        name: {
            metric: statistics.median(vals)
            for metric, vals in metrics.items()
            if vals
        }
        for name, metrics in runs.items()
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("base")
    ap.add_argument("head")
    ap.add_argument("--max-regression", type=float, default=10.0,
                    help="tolerated slowdown in percent (default 10)")
    args = ap.parse_args()

    base, head = parse(args.base), parse(args.head)
    shared = sorted(set(base) & set(head))
    if not shared:
        print("bench_gate: no common benchmarks between base and head; nothing to gate")
        return 0

    failed = False
    for name in shared:
        for metric in GATED_METRICS:
            if metric not in base[name] or metric not in head[name]:
                continue
            b, h = base[name][metric], head[name][metric]
            if b <= 0:
                continue
            delta = (h - b) / b * 100.0
            verdict = "ok"
            if delta > args.max_regression:
                verdict = "REGRESSION"
                failed = True
            print(f"{name:60s} {metric:10s} {b:14.1f} -> {h:14.1f}  {delta:+7.2f}%  {verdict}")
    if failed:
        print(f"\nbench_gate: regression beyond {args.max_regression:.0f}% "
              f"on the benchmarks above", file=sys.stderr)
        return 1
    print(f"\nbench_gate: all shared benchmarks within {args.max_regression:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
