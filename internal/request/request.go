// Package request implements the CooRMv2 request model (§3.1.1–3.1.2 and
// §A.1–A.2): request types (pre-allocation, non-preemptible, preemptible),
// inter-request constraints (FREE, COALLOC, NEXT), and request sets that
// form constraint forests.
package request

import (
	"fmt"
	"math"

	"coormv2/internal/view"
)

// Type is the request type of §3.1.1.
type Type uint8

const (
	// PreAlloc marks resources for possible future usage; no node IDs are
	// associated with it. Non-preemptible requests are served inside it.
	PreAlloc Type = iota
	// NonPreempt asks for an allocation that, once started, cannot be
	// interrupted by the RMS (run-to-completion, the default in most RMSs).
	NonPreempt
	// Preempt asks for an allocation that the RMS may reclaim at any time,
	// similar to OAR's best-effort jobs.
	Preempt
)

// String returns the paper's notation for the type: PA, ¬P or P.
func (t Type) String() string {
	switch t {
	case PreAlloc:
		return "PA"
	case NonPreempt:
		return "¬P"
	case Preempt:
		return "P"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Relation is the relatedHow constraint of §3.1.2.
type Relation uint8

const (
	// Free means the request is unconstrained; relatedTo is ignored.
	Free Relation = iota
	// Coalloc means the request must start at the same time as relatedTo.
	Coalloc
	// Next means the request must start immediately after relatedTo ends,
	// sharing common resources with it (node IDs carry over).
	Next
)

// String returns the paper's name for the relation.
func (r Relation) String() string {
	switch r {
	case Free:
		return "FREE"
	case Coalloc:
		return "COALLOC"
	case Next:
		return "NEXT"
	default:
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
}

// ID uniquely identifies a request within an RMS instance.
type ID int64

// Request is a resource request as stored inside the RMS (§A.1). The first
// group of fields is sent by the application; the second group is set by the
// scheduler while computing a schedule; the third group records the
// allocation once the request has started.
type Request struct {
	// Application-provided attributes.
	ID         ID
	AppID      int
	Cluster    view.ClusterID
	N          int     // requested node-count
	Duration   float64 // requested duration in seconds; may be +Inf
	Type       Type
	RelatedHow Relation
	RelatedTo  *Request // parent request; nil when RelatedHow == Free

	// Scheduler-set attributes (recomputed every scheduling round).
	NAlloc             int     // node-count that will effectively be allocated
	ScheduledAt        float64 // computed start time
	Fixed              bool    // start time can no longer be chosen by the RMS
	EarliestScheduleAt float64 // lower bound used by fit()'s convergence loop

	// Reservation attributes. A held request participates in scheduling
	// like any pending request — it reserves capacity in the CBF/eqSchedule
	// window — but the RMS never starts it: a two-phase coordinator owns it
	// and either commits (clears Held) or releases it. NotBefore is a
	// persistent lower bound on the start time that survives fit()'s
	// per-round reset of EarliestScheduleAt; the coordinator uses it to
	// align legs of a cross-shard gang. Both are zero-valued for ordinary
	// requests.
	Held      bool
	NotBefore float64

	// Post-start attributes.
	StartedAt float64 // NaN until the request starts
	NodeIDs   []int   // node IDs allocated to this request (empty for PA)
	Finished  bool    // done() was called on a started request

	// SubmittedAt records when the RMS admitted the request — the basis
	// of the observability layer's admit→start wait metric. NaN until the
	// RMS stamps it on accept; cluster migrations carry it across shards
	// so waits survive a re-homing.
	SubmittedAt float64

	// Wrapped records that this non-preemptible request could not be served
	// from one of its application's pre-allocations and was implicitly
	// wrapped in a pre-allocation of the same size (§3.2). The scheduler
	// recomputes it for pending requests every round; it is sticky once the
	// request starts.
	Wrapped bool
}

// New creates a request with the given application-provided attributes.
// StartedAt is initialized to NaN ("has not started", §A.1).
func New(id ID, appID int, cid view.ClusterID, n int, duration float64, typ Type, how Relation, parent *Request) *Request {
	return &Request{
		ID:          id,
		AppID:       appID,
		Cluster:     cid,
		N:           n,
		Duration:    duration,
		Type:        typ,
		RelatedHow:  how,
		RelatedTo:   parent,
		ScheduledAt: math.Inf(1),
		StartedAt:   math.NaN(),
		SubmittedAt: math.NaN(),
	}
}

// Started reports whether the request has started (the paper's started(r)).
func (r *Request) Started() bool { return !math.IsNaN(r.StartedAt) }

// Active reports whether the request has started and not yet finished.
func (r *Request) Active() bool { return r.Started() && !r.Finished }

// End returns the request's end time if started (StartedAt + Duration),
// otherwise its scheduled end (ScheduledAt + Duration).
func (r *Request) End() float64 {
	if r.Started() {
		return r.StartedAt + r.Duration
	}
	return r.ScheduledAt + r.Duration
}

// Ended reports whether the request's allocation is over at time now: either
// done() was called on it, or its duration elapsed.
func (r *Request) Ended(now float64) bool {
	if r.Finished {
		return true
	}
	return r.Started() && r.End() <= now
}

// Validate checks the application-provided attributes. The original
// implementation left invalid requests as undefined behaviour (§A.6); we
// reject them at submission instead.
func (r *Request) Validate() error {
	if r.N <= 0 {
		return fmt.Errorf("request %d: node-count must be positive, got %d", r.ID, r.N)
	}
	if r.Duration <= 0 {
		return fmt.Errorf("request %d: duration must be positive, got %v", r.ID, r.Duration)
	}
	if math.IsNaN(r.Duration) {
		return fmt.Errorf("request %d: duration is NaN", r.ID)
	}
	if r.Cluster == "" {
		return fmt.Errorf("request %d: empty cluster ID", r.ID)
	}
	if r.RelatedHow != Free && r.RelatedTo == nil {
		return fmt.Errorf("request %d: %s constraint without a related request", r.ID, r.RelatedHow)
	}
	if r.RelatedTo != nil && r.RelatedTo.AppID != r.AppID {
		return fmt.Errorf("request %d: related request belongs to another application", r.ID)
	}
	if r.RelatedTo == r {
		return fmt.Errorf("request %d: related to itself", r.ID)
	}
	return nil
}

// String renders the request compactly for logs and test failures.
func (r *Request) String() string {
	rel := ""
	if r.RelatedHow != Free && r.RelatedTo != nil {
		rel = fmt.Sprintf(" %s(%d)", r.RelatedHow, r.RelatedTo.ID)
	}
	return fmt.Sprintf("req{%d app=%d %s n=%d dur=%g cid=%s%s}", r.ID, r.AppID, r.Type, r.N, r.Duration, r.Cluster, rel)
}

// Set is an ordered collection of requests of a single type belonging to one
// application (§A.2: the RMS stores, per application, separate sets for PA,
// non-preemptible and preemptible requests). Requests and their constraints
// form a forest inside the set.
type Set struct {
	reqs []*Request
}

// NewSet returns an empty request set.
func NewSet() *Set { return &Set{} }

// Add appends a request to the set.
func (s *Set) Add(r *Request) { s.reqs = append(s.reqs, r) }

// Remove deletes a request from the set, preserving order.
// It returns true if the request was present.
func (s *Set) Remove(r *Request) bool {
	for i, q := range s.reqs {
		if q == r {
			s.reqs = append(s.reqs[:i], s.reqs[i+1:]...)
			return true
		}
	}
	return false
}

// Contains reports whether r is a member of the set.
func (s *Set) Contains(r *Request) bool {
	for _, q := range s.reqs {
		if q == r {
			return true
		}
	}
	return false
}

// Len returns the number of requests in the set.
func (s *Set) Len() int { return len(s.reqs) }

// All returns the requests in insertion order. The returned slice is shared;
// callers must not modify it.
func (s *Set) All() []*Request { return s.reqs }

// ByID returns the request with the given ID, or nil.
func (s *Set) ByID(id ID) *Request {
	for _, r := range s.reqs {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// IsRoot reports whether r is the root of a constraint tree within the set
// (§A.2): unconstrained, or related to a request outside the set.
func (s *Set) IsRoot(r *Request) bool {
	return r.RelatedHow == Free || r.RelatedTo == nil || !s.Contains(r.RelatedTo)
}

// Roots returns the requests that are roots of constraint trees within the
// set (§A.2): requests that are unconstrained, or whose related request is
// outside the set.
func (s *Set) Roots() []*Request {
	var out []*Request
	for _, r := range s.reqs {
		if s.IsRoot(r) {
			out = append(out, r)
		}
	}
	return out
}

// EachChild calls fn for every request in the set that is constrained to r
// (§A.2), in insertion order, without allocating.
func (s *Set) EachChild(r *Request, fn func(*Request)) {
	for _, q := range s.reqs {
		if q.RelatedTo == r && q.RelatedHow != Free {
			fn(q)
		}
	}
}

// Children returns the requests in the set that are constrained to r (§A.2).
func (s *Set) Children(r *Request) []*Request {
	var out []*Request
	s.EachChild(r, func(q *Request) { out = append(out, q) })
	return out
}

// GC removes requests whose allocation is over at time now and that no
// pending request is constrained to. Keeping a finished request around is
// harmless (its rectangle lies entirely in the past), but sets would grow
// without bound in long-running sessions. When reaped is non-nil it is
// called, in set order, for every removed request — the RMS forwards the
// IDs to routing layers so they can prune translation tables in lockstep.
func (s *Set) GC(now float64, reaped func(*Request)) {
	needed := map[*Request]bool{}
	for _, r := range s.reqs {
		if !r.Ended(now) && r.RelatedTo != nil {
			needed[r.RelatedTo] = true
		}
	}
	kept := s.reqs[:0]
	for _, r := range s.reqs {
		if r.Ended(now) && !needed[r] {
			if reaped != nil {
				reaped(r)
			}
			continue
		}
		kept = append(kept, r)
	}
	// Zero the tail so removed requests can be collected.
	for i := len(kept); i < len(s.reqs); i++ {
		s.reqs[i] = nil
	}
	s.reqs = kept
}
