package rms

import (
	"strings"
	"testing"
)

func TestIDPoolAllocLowestFirst(t *testing.T) {
	p := newIDPool(5)
	if p.available() != 5 {
		t.Fatalf("available = %d", p.available())
	}
	ids := p.alloc(3)
	want := []int{0, 1, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("alloc = %v, want %v", ids, want)
		}
	}
	if p.available() != 2 {
		t.Errorf("available after alloc = %d", p.available())
	}
}

func TestIDPoolFreeReuse(t *testing.T) {
	p := newIDPool(4)
	ids := p.alloc(4)
	if err := p.free([]int{ids[2], ids[0]}); err != nil {
		t.Fatalf("free: %v", err)
	}
	got := p.alloc(2)
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("re-alloc = %v, want [0 2] (sorted)", got)
	}
}

func TestIDPoolAllocZero(t *testing.T) {
	p := newIDPool(3)
	if got := p.alloc(0); len(got) != 0 {
		t.Errorf("alloc(0) = %v", got)
	}
}

func TestIDPoolOverAllocPanics(t *testing.T) {
	p := newIDPool(2)
	defer func() {
		if recover() == nil {
			t.Error("over-alloc should panic")
		}
	}()
	p.alloc(3)
}

func TestIDPoolDoubleFreeErrors(t *testing.T) {
	p := newIDPool(2)
	ids := p.alloc(1)
	if err := p.free(ids); err != nil {
		t.Fatalf("first free: %v", err)
	}
	err := p.free(ids)
	if err == nil {
		t.Fatal("double free should error")
	}
	if !strings.Contains(err.Error(), "already free") {
		t.Errorf("double free error = %v", err)
	}
	if p.available() != 2 {
		t.Errorf("available after rejected free = %d, want 2", p.available())
	}
}

func TestIDPoolOutOfRangeFreeErrors(t *testing.T) {
	p := newIDPool(2)
	if err := p.free([]int{7}); err == nil {
		t.Error("out-of-range free should error")
	}
	if err := p.free([]int{-1}); err == nil {
		t.Error("negative free should error")
	}
}

func TestIDPoolBatchFreeIsAtomic(t *testing.T) {
	p := newIDPool(4)
	ids := p.alloc(3) // [0 1 2]
	// A batch with one bad ID must leave the pool untouched.
	if err := p.free([]int{ids[0], ids[1], 9}); err == nil {
		t.Fatal("batch with out-of-range ID should error")
	}
	if p.available() != 1 {
		t.Fatalf("available = %d after rejected batch, want 1", p.available())
	}
	// A batch naming the same ID twice is rejected as a whole.
	if err := p.free([]int{ids[0], ids[0]}); err == nil {
		t.Fatal("batch freeing an ID twice should error")
	}
	if p.available() != 1 {
		t.Fatalf("available = %d after rejected duplicate batch, want 1", p.available())
	}
	if err := p.free(ids); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestIDPoolDebugFlagRestoresPanics(t *testing.T) {
	SetPoolDebugPanics(true)
	defer SetPoolDebugPanics(false)
	p := newIDPool(2)
	ids := p.alloc(1)
	if err := p.free(ids); err != nil {
		t.Fatalf("first free: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("double free should panic under the debug flag")
		}
	}()
	p.free(ids)
}

func TestIDPoolFailFreeNode(t *testing.T) {
	p := newIDPool(4)
	wasFree, err := p.fail(2)
	if err != nil {
		t.Fatalf("fail: %v", err)
	}
	if !wasFree {
		t.Error("node 2 was free, fail should report wasFree")
	}
	if p.available() != 3 || p.capacity() != 3 {
		t.Errorf("available = %d capacity = %d, want 3/3", p.available(), p.capacity())
	}
	if !p.isFailed(2) {
		t.Error("node 2 should be failed")
	}
	// The dead node is never handed out again.
	got := p.alloc(3)
	for _, id := range got {
		if id == 2 {
			t.Errorf("alloc handed out dead node 2: %v", got)
		}
	}
}

func TestIDPoolFailHeldNode(t *testing.T) {
	p := newIDPool(3)
	ids := p.alloc(2) // [0 1]
	wasFree, err := p.fail(ids[0])
	if err != nil {
		t.Fatalf("fail: %v", err)
	}
	if wasFree {
		t.Error("node 0 was held, fail should report !wasFree")
	}
	if p.capacity() != 2 {
		t.Errorf("capacity = %d, want 2", p.capacity())
	}
	// The holder must strip the dead ID; releasing it is a violation.
	if err := p.free([]int{ids[0]}); err == nil {
		t.Error("freeing a dead node should error")
	}
	// Accounting: 1 free + 1 held (survivor) + 1 failed == size 3.
	if p.available()+1+len(p.failed) != p.size {
		t.Errorf("accounting broken: %d free + 1 held + %d failed != %d",
			p.available(), len(p.failed), p.size)
	}
}

func TestIDPoolFailErrors(t *testing.T) {
	p := newIDPool(2)
	if _, err := p.fail(5); err == nil {
		t.Error("failing out-of-range node should error")
	}
	if _, err := p.fail(0); err != nil {
		t.Fatalf("fail: %v", err)
	}
	if _, err := p.fail(0); err == nil {
		t.Error("failing a down node twice should error")
	}
}

func TestIDPoolRecover(t *testing.T) {
	p := newIDPool(3)
	if _, err := p.fail(1); err != nil {
		t.Fatalf("fail: %v", err)
	}
	if err := p.recover(1); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if p.available() != 3 || p.capacity() != 3 {
		t.Errorf("available = %d capacity = %d after recover, want 3/3", p.available(), p.capacity())
	}
	if err := p.recover(1); err == nil {
		t.Error("recovering a working node should error")
	}
	// Recovered node is allocatable again, in sorted position.
	got := p.alloc(3)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("alloc after recover = %v, want [0 1 2]", got)
	}
}

func TestIDPoolShrinkGrowCycle(t *testing.T) {
	p := newIDPool(8)
	held := p.alloc(4) // [0 1 2 3]
	// Fail a mix of free and held nodes.
	for _, id := range []int{1, 3, 5} {
		if _, err := p.fail(id); err != nil {
			t.Fatalf("fail(%d): %v", id, err)
		}
	}
	if p.capacity() != 5 {
		t.Fatalf("capacity = %d, want 5", p.capacity())
	}
	// Simulate the server stripping dead IDs from the holder.
	survivors := []int{held[0], held[2]} // 0, 2
	if err := p.free(survivors); err != nil {
		t.Fatalf("free survivors: %v", err)
	}
	// Free list is now {0,2} ∪ {4,6,7}: the original free IDs minus failed 5
	// plus the stripped survivors.
	if p.available() != 5 {
		t.Fatalf("available = %d, want 5", p.available())
	}
	for _, id := range []int{1, 3, 5} {
		if err := p.recover(id); err != nil {
			t.Fatalf("recover(%d): %v", id, err)
		}
	}
	if p.available() != 8 || p.capacity() != 8 {
		t.Errorf("available = %d capacity = %d after full recovery, want 8/8", p.available(), p.capacity())
	}
}
