// Package netchaos is the wire-level counterpart of internal/chaos: where
// chaos crashes scheduler shards inside the simulator, netchaos breaks the
// network between real transport clients and a real transport server. A
// seeded plan of connection faults (sever, partition, half-open, delay) is
// derived exactly like a chaos.Plan — same seed ⇒ same schedule, and the
// trace of scheduled faults is byte-identical across runs — and a Proxy
// applies it to live TCP connections, so the reconnect/resume machinery of
// internal/transport is exercised against real sockets instead of mocks.
package netchaos

import (
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"coormv2/internal/stats"
)

// Kind enumerates the wire fault kinds.
type Kind int

const (
	// Sever cuts every live proxied connection at the fault instant;
	// new connections go through immediately (the reconnect path races
	// nothing).
	Sever Kind = iota
	// Partition cuts every live connection and refuses new ones for the
	// fault's duration — the server is unreachable, reconnects back off.
	Partition
	// HalfOpen accepts new connections but forwards nothing for the
	// duration: the classic wedged peer that only deadlines and
	// heartbeats can detect.
	HalfOpen
	// Delay adds fixed latency to every forwarded chunk for the duration.
	Delay
)

var kindNames = [...]string{"sever", "partition", "half-open", "delay"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Fault is one scheduled wire fault. Times are seconds from Proxy.Start.
type Fault struct {
	At   float64
	Kind Kind
	Dur  float64 // ignored by Sever (instantaneous)
}

// String renders the fault deterministically for traces.
func (f Fault) String() string {
	if f.Kind == Sever {
		return fmt.Sprintf("t=%g sever", f.At)
	}
	return fmt.Sprintf("t=%g %s dur=%g", f.At, f.Kind, f.Dur)
}

// Config parametrizes a fault plan. All times are seconds.
type Config struct {
	// Seed drives every random draw; same seed ⇒ same plan.
	Seed int64
	// MeanBetween is the mean gap between consecutive faults
	// (exponential renewal, like chaos.Config.MTTF).
	MeanBetween float64
	// MeanDur is the mean duration of partition/half-open/delay faults
	// (exponential).
	MeanDur float64
	// Horizon bounds the plan: no fault is scheduled at or after it.
	Horizon float64
	// MaxFaults caps the plan length; 0 means bounded by Horizon alone.
	MaxFaults int
	// DelayEach is the per-chunk latency applied during Delay faults.
	DelayEach time.Duration
}

// Plan derives the fault schedule: a renewal process of exponential gaps,
// each fault's kind drawn uniformly and its duration exponentially, all
// from one seeded PRNG so the schedule — and hence the trace — is a pure
// function of the seed.
func Plan(cfg Config) []Fault {
	if cfg.MeanBetween <= 0 || cfg.Horizon <= 0 {
		return nil
	}
	rng := stats.NewRand(cfg.Seed)
	var plan []Fault
	t := 0.0
	for n := 0; cfg.MaxFaults == 0 || n < cfg.MaxFaults; n++ {
		t += rng.ExpFloat64() * cfg.MeanBetween
		if t >= cfg.Horizon {
			break
		}
		f := Fault{At: t, Kind: Kind(rng.Intn(4))}
		if f.Kind != Sever {
			f.Dur = rng.ExpFloat64() * cfg.MeanDur
			t += f.Dur
		}
		plan = append(plan, f)
	}
	return plan
}

// TraceOf renders a plan as its deterministic trace lines.
func TraceOf(plan []Fault) []string {
	lines := make([]string, len(plan))
	for i, f := range plan {
		lines[i] = f.String()
	}
	return lines
}

// HashTrace folds trace lines into one stable fingerprint (FNV-1a), the
// value determinism tests compare across same-seed runs.
func HashTrace(lines []string) uint64 {
	h := fnv.New64a()
	for _, l := range lines {
		io.WriteString(h, l)
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// Proxy is an in-process TCP proxy between transport clients and a
// transport server that can sever, partition, half-open, and delay the
// wire — manually or on a seeded plan. All fault controls are safe for
// concurrent use.
type Proxy struct {
	backend string
	ln      net.Listener

	mu          sync.Mutex
	pipes       map[net.Conn]net.Conn // client conn → backend conn
	held        map[net.Conn]struct{} // half-open accepted-but-unforwarded conns
	partitioned bool
	halfOpen    bool
	delay       time.Duration
	closed      bool
	timers      []*time.Timer
	wg          sync.WaitGroup

	severed atomic.Int64 // connections cut by Sever/Partition
	refused atomic.Int64 // connections refused while partitioned
	held64  atomic.Int64 // connections held half-open
}

// NewProxy creates a proxy fronting the given backend address. Call
// Listen, then Start.
func NewProxy(backend string) *Proxy {
	return &Proxy{
		backend: backend,
		pipes:   make(map[net.Conn]net.Conn),
		held:    make(map[net.Conn]struct{}),
	}
}

// Listen binds the proxy (use ":0" for an ephemeral port) and starts
// accepting; it returns the address clients should dial.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netchaos: %w", err)
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr().String(), nil
}

// Start arms a fault plan on the wall clock: fault f fires f.At seconds
// from now, and durable faults clear themselves f.Dur later.
func (p *Proxy) Start(plan []Fault, delayEach time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	arm := func(after float64, fn func()) {
		p.timers = append(p.timers, time.AfterFunc(
			time.Duration(after*float64(time.Second)), fn))
	}
	for _, f := range plan {
		f := f
		switch f.Kind {
		case Sever:
			arm(f.At, p.Sever)
		case Partition:
			arm(f.At, func() { p.SetPartitioned(true) })
			arm(f.At+f.Dur, func() { p.SetPartitioned(false) })
		case HalfOpen:
			arm(f.At, func() { p.SetHalfOpen(true) })
			arm(f.At+f.Dur, func() { p.SetHalfOpen(false) })
		case Delay:
			arm(f.At, func() { p.SetDelay(delayEach) })
			arm(f.At+f.Dur, func() { p.SetDelay(0) })
		}
	}
}

// Sever cuts every live proxied (and half-open held) connection.
func (p *Proxy) Sever() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, 2*len(p.pipes)+len(p.held))
	for c, b := range p.pipes {
		conns = append(conns, c, b)
	}
	for c := range p.held {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	if len(conns) > 0 {
		p.severed.Add(1)
	}
	for _, c := range conns {
		c.Close()
	}
}

// SetPartitioned toggles the partition: while set, live connections are
// cut and new ones are refused.
func (p *Proxy) SetPartitioned(on bool) {
	p.mu.Lock()
	p.partitioned = on
	p.mu.Unlock()
	if on {
		p.Sever()
	}
}

// SetHalfOpen toggles half-open mode: while set, new connections are
// accepted but never forwarded to the backend.
func (p *Proxy) SetHalfOpen(on bool) {
	p.mu.Lock()
	p.halfOpen = on
	var release []net.Conn
	if !on {
		// Leaving half-open mode drops the held connections: their
		// handshakes have long timed out client-side.
		for c := range p.held {
			release = append(release, c)
		}
		p.held = make(map[net.Conn]struct{})
	}
	p.mu.Unlock()
	for _, c := range release {
		c.Close()
	}
}

// SetDelay sets the per-chunk forwarding latency (0 disables).
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Severed reports how many fault events cut at least one connection.
func (p *Proxy) Severed() int64 { return p.severed.Load() }

// Refused reports how many connections were refused while partitioned.
func (p *Proxy) Refused() int64 { return p.refused.Load() }

// Held reports how many connections were held half-open.
func (p *Proxy) Held() int64 { return p.held64.Load() }

// Close stops the plan timers, the listener, and every connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	timers := p.timers
	p.timers = nil
	conns := make([]net.Conn, 0, 2*len(p.pipes)+len(p.held))
	for c, b := range p.pipes {
		conns = append(conns, c, b)
	}
	for c := range p.held {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if p.ln != nil {
		p.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		switch {
		case p.closed:
			p.mu.Unlock()
			conn.Close()
			return
		case p.partitioned:
			p.mu.Unlock()
			p.refused.Add(1)
			conn.Close()
			continue
		case p.halfOpen:
			p.held[conn] = struct{}{}
			p.mu.Unlock()
			p.held64.Add(1)
			continue
		}
		p.mu.Unlock()

		backend, err := net.Dial("tcp", p.backend)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			backend.Close()
			return
		}
		p.pipes[conn] = backend
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(conn, backend)
		go p.pipe(backend, conn)
	}
}

// pipe copies src→dst chunk by chunk, applying the current delay, and
// tears the pair down when either side dies.
func (p *Proxy) pipe(src, dst net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			d := p.delay
			p.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	src.Close()
	dst.Close()
	p.mu.Lock()
	delete(p.pipes, src)
	delete(p.pipes, dst)
	p.mu.Unlock()
}
