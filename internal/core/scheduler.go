package core

import (
	"fmt"
	"math"
	"sort"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

// AppState is the per-application request state stored by the RMS (§A.2):
// one set per request type, plus the connection time used for the
// Conservative Back-Filling order of §3.2 ("applications are sorted in a
// list based on the time the applications connected to the RMS").
type AppState struct {
	ID          int
	ConnectedAt float64

	// Tenant is the queue path the application belongs to ("org/team/q",
	// empty for untagged sessions). The core scheduler never reads it;
	// tenant-aware SchedulingPolicies (internal/tenants) key their
	// ordering, admission, and preemption decisions on it.
	Tenant string

	PA *request.Set // pre-allocation requests R_PA
	NP *request.Set // non-preemptible requests R_¬P
	P  *request.Set // preemptible requests R_P

	// idx is the application's current position in Scheduler.apps; it is
	// maintained by every mutation so RemoveApp is O(1) instead of a
	// linear scan. admitted records the last dynamic round's admission
	// decision (see SchedulingPolicy.Admit).
	idx      int
	admitted bool

	// Occupancy views of the started/fixed requests, maintained by
	// refreshAppLocked and reused across rounds while the sets are clean.
	startedPA view.View
	startedNP view.View

	// cache holds the application's incremental-recomputation artifacts.
	cache appCache
}

// NewAppState returns an empty application state.
func NewAppState(id int, connectedAt float64) *AppState {
	return &AppState{
		ID:          id,
		ConnectedAt: connectedAt,
		PA:          request.NewSet(),
		NP:          request.NewSet(),
		P:           request.NewSet(),
	}
}

// SetFor returns the request set holding requests of the given type.
func (a *AppState) SetFor(t request.Type) *request.Set {
	switch t {
	case request.PreAlloc:
		return a.PA
	case request.NonPreempt:
		return a.NP
	default:
		return a.P
	}
}

// Requests returns all of the application's requests across the three sets.
func (a *AppState) Requests() []*request.Request {
	var out []*request.Request
	out = append(out, a.PA.All()...)
	out = append(out, a.NP.All()...)
	out = append(out, a.P.All()...)
	return out
}

// Scheduler holds the global scheduling state: the resource model and the
// per-application request sets. It implements Algorithm 4 (§A.5).
type Scheduler struct {
	clusters map[view.ClusterID]int
	apps     []*AppState       // CBF (connection) order, sorted when !appsDirty
	byID     map[int]*AppState // ID → state index for O(1) lookups
	policy   PreemptPolicy

	// appsDirty marks apps as unsorted (lazy re-sort: AddApp appends and
	// RemoveApp swap-deletes; ensureSortedLocked restores connection
	// order before any ordered iteration).
	appsDirty bool

	// schedPolicy orders and admits applications each round (FIFOPolicy
	// by default — the paper's connection order, every app admitted).
	// roundApps/roundDynamic are the current round's iteration slice and
	// admission-gating flag; orderBuf is the reusable ordering buffer
	// handed to dynamic policies.
	schedPolicy  SchedulingPolicy
	roundApps    []*AppState
	roundDynamic bool
	orderBuf     []*AppState

	// clip, when non-nil, limits the non-preemptive view presented to every
	// application (§3.2's suggested pre-allocation limit).
	clip view.View

	// sc holds the buffers reused across Schedule rounds.
	sc scratch

	// Incremental-recomputation state (see incremental.go). structGen is
	// bumped by every structural mutation and compared against cacheGen at
	// the top of Schedule; a mismatch flushes every derived cache.
	incremental bool
	structGen   uint64
	cacheGen    uint64

	// Base availability folds, maintained per cluster: baseNP is the full
	// capacity minus every started pre-allocation minus the wrapped ¬P
	// excess; basePv is the capacity minus every started ¬P allocation.
	foldsReady bool
	baseNP     view.View
	basePv     view.View
	npFoldDirt map[view.ClusterID]struct{}
	pFoldDirt  map[view.ClusterID]struct{}

	// pvClamp caches clampMin(0) of an untouched basePv so the eqSchedule
	// input keeps stable profile identities across rounds.
	pvClamp   view.View
	pvClampOK bool

	// eqSchedule caches: per-cluster interval walks and the shared idle view.
	eqWalks map[view.ClusterID]*clusterWalk
	eqIdle  view.View

	// Persistent Outcome maps: entries are rewritten only when an
	// application's view is recomputed, so a fully-reused round performs no
	// map writes at all. Consequently an Outcome is valid until the next
	// Schedule call (the RMS consumes it immediately; see Schedule's doc).
	outNPViews map[int]view.View
	outPViews  map[int]view.View
	outOK      bool

	stats SchedStats
}

// NewScheduler creates a scheduler managing the given clusters
// (cluster ID → node count).
func NewScheduler(clusters map[view.ClusterID]int) *Scheduler {
	cp := make(map[view.ClusterID]int, len(clusters))
	for cid, n := range clusters {
		if n < 0 {
			panic(fmt.Sprintf("core: negative capacity for cluster %s", cid))
		}
		cp[cid] = n
	}
	return &Scheduler{
		clusters:    cp,
		byID:        make(map[int]*AppState),
		schedPolicy: FIFOPolicy{},
		incremental: true,
		baseNP:      view.New(),
		basePv:      view.New(),
		npFoldDirt:  make(map[view.ClusterID]struct{}),
		pFoldDirt:   make(map[view.ClusterID]struct{}),
		eqWalks:     make(map[view.ClusterID]*clusterWalk),
	}
}

// SetPolicy selects the preemptible-resource division policy.
func (s *Scheduler) SetPolicy(p PreemptPolicy) {
	s.policy = p
	s.bumpStruct()
}

// Policy returns the active preemptible-resource division policy.
func (s *Scheduler) Policy() PreemptPolicy { return s.policy }

// SetClip installs an administrator limit on non-preemptive views
// (nil removes the limit).
func (s *Scheduler) SetClip(v view.View) {
	s.clip = v
	s.bumpStruct()
}

// Clusters returns the resource model (cluster ID → node count).
func (s *Scheduler) Clusters() map[view.ClusterID]int {
	out := make(map[view.ClusterID]int, len(s.clusters))
	for cid, n := range s.clusters {
		out[cid] = n
	}
	return out
}

// Capacity returns the node count of cluster cid.
func (s *Scheduler) Capacity(cid view.ClusterID) int { return s.clusters[cid] }

// AddCluster adds a cluster to the resource model, e.g. one migrated in from
// another scheduler shard (internal/federation). The next Schedule round
// includes its capacity in every view. Adding an existing cluster panics.
func (s *Scheduler) AddCluster(cid view.ClusterID, n int) {
	if n < 0 {
		panic(fmt.Sprintf("core: negative capacity for cluster %s", cid))
	}
	if _, dup := s.clusters[cid]; dup {
		panic(fmt.Sprintf("core: duplicate cluster %s", cid))
	}
	s.clusters[cid] = n
	s.bumpStruct()
}

// SetCapacity changes a cluster's node count in place — the node-level
// fault path: a failed node shrinks the cluster, a recovered one grows it
// back. Capacity is an input to the cached per-cluster base-availability
// folds (rebuildFoldClusterLocked), so the change bumps the structural
// generation: every cached artifact is invalidated and the next Schedule
// round recomputes from scratch, exactly as a full-recompute round would.
// Setting an unknown cluster or a negative capacity panics.
func (s *Scheduler) SetCapacity(cid view.ClusterID, n int) {
	if n < 0 {
		panic(fmt.Sprintf("core: negative capacity for cluster %s", cid))
	}
	old, ok := s.clusters[cid]
	if !ok {
		panic(fmt.Sprintf("core: setting capacity of unknown cluster %s", cid))
	}
	if old == n {
		return
	}
	s.clusters[cid] = n
	s.bumpStruct()
}

// RemoveCluster removes a cluster from the resource model. The caller owns
// the migration of any request state that references it: the scheduler keeps
// no per-cluster state beyond the capacity entry (round scratch is rebuilt
// every Schedule call). Removing an unknown cluster panics.
func (s *Scheduler) RemoveCluster(cid view.ClusterID) {
	if _, ok := s.clusters[cid]; !ok {
		panic(fmt.Sprintf("core: removing unknown cluster %s", cid))
	}
	delete(s.clusters, cid)
	s.bumpStruct()
}

// AddApp registers an application at the given connection time and returns
// its state.
func (s *Scheduler) AddApp(id int, connectedAt float64) *AppState {
	if _, dup := s.byID[id]; dup {
		panic(fmt.Sprintf("core: duplicate application ID %d", id))
	}
	a := NewAppState(id, connectedAt)
	a.idx = len(s.apps)
	s.apps = append(s.apps, a)
	s.byID[id] = a
	s.appsDirty = true
	s.bumpStruct()
	return a
}

// RemoveApp unregisters an application (session ended or killed).
// It returns the removed state, or nil if the ID is unknown. The removal
// is O(1): the tracked slice index lets it swap-delete and the list is
// re-sorted lazily before the next ordered iteration, so tearing down a
// fleet of n applications costs O(n), not O(n²).
func (s *Scheduler) RemoveApp(id int) *AppState {
	a, ok := s.byID[id]
	if !ok {
		return nil
	}
	delete(s.byID, id)
	i, last := a.idx, len(s.apps)-1
	if i != last {
		s.apps[i] = s.apps[last]
		s.apps[i].idx = i
		s.appsDirty = true
	}
	s.apps[last] = nil
	s.apps = s.apps[:last]
	s.bumpStruct()
	return a
}

// App returns the state of the application with the given ID, or nil.
func (s *Scheduler) App(id int) *AppState { return s.byID[id] }

// Apps returns the applications in scheduling (connection) order.
func (s *Scheduler) Apps() []*AppState {
	s.ensureSortedLocked()
	return s.apps
}

// ensureSortedLocked restores connection order after lazy mutations.
func (s *Scheduler) ensureSortedLocked() {
	if !s.appsDirty {
		return
	}
	s.sortApps()
	s.appsDirty = false
}

func (s *Scheduler) sortApps() {
	sort.SliceStable(s.apps, func(i, j int) bool {
		if s.apps[i].ConnectedAt != s.apps[j].ConnectedAt {
			return s.apps[i].ConnectedAt < s.apps[j].ConnectedAt
		}
		return s.apps[i].ID < s.apps[j].ID
	})
	for i, a := range s.apps {
		a.idx = i
	}
}

// Outcome is the result of one scheduling round: the views to present to
// each application and the requests whose computed start time has arrived.
type Outcome struct {
	// NonPreemptViews holds V_¬P^(i): what each application can see for
	// pre-allocations and non-preemptible requests.
	NonPreemptViews map[int]view.View
	// PreemptViews holds V_P^(i): what each application can see for
	// preemptible requests. A drop below an application's current
	// preemptible allocation signals that it must release resources.
	PreemptViews map[int]view.View
	// ToStart lists requests with ScheduledAt <= now that have not started,
	// parents before children.
	ToStart []*request.Request
}

// Schedule runs the main scheduling algorithm (Algorithm 4) at time now.
// It computes views for every application, sets the ScheduledAt/NAlloc
// attributes of every request, and reports which requests should start.
// Marking requests as started (and allocating node IDs) is the caller's
// job: the RMS may have to defer a start until preempted resources are
// actually released (§A.5).
//
// Schedule recomputes incrementally: per-application artifacts and
// per-cluster availability folds are cached across rounds and recomputed
// only for applications marked dirty (MarkAppDirty) and the clusters their
// changes touched. Outputs are bit-identical to a full recomputation — a
// cached value is reused only when its exact inputs are unchanged (see
// incremental.go).
func (s *Scheduler) Schedule(now float64) *Outcome {
	sc := &s.sc
	s.stats.Rounds++
	s.ensureSortedLocked()

	// A dynamic scheduling policy may reorder or gate applications
	// differently every round; the chain-reuse and fold caches assume
	// connection order, so every dynamic round is a full round.
	dynamic := !s.schedPolicy.Stable()
	if s.structGen != s.cacheGen || !s.incremental || dynamic {
		s.invalidateDerivedLocked()
		if !s.incremental {
			for _, a := range s.apps {
				a.cache.valid = false
			}
		}
		s.cacheGen = s.structGen
		s.stats.FullRounds++
	}

	// Ask the policy for this round's iteration order and admissions.
	// The stable fast path skips the per-application policy calls
	// entirely: order is connection order and everything is admitted,
	// keeping the round byte-identical to the pre-policy scheduler.
	apps := s.apps
	if dynamic {
		info := RoundInfo{Now: now, Clusters: s.clusters}
		ordered := s.schedPolicy.Order(info, s.apps, s.orderBuf[:0])
		if len(ordered) != len(s.apps) {
			panic(fmt.Sprintf("core: policy %q returned %d apps, want %d",
				s.schedPolicy.Name(), len(ordered), len(s.apps)))
		}
		// Keep the policy's grown ordering buffer for the next round —
		// unless the policy returned the apps slice itself, which must
		// not become the next round's scratch.
		if len(ordered) > 0 && &ordered[0] != &s.apps[0] {
			s.orderBuf = ordered[:0]
		}
		for _, a := range ordered {
			a.admitted = s.schedPolicy.Admit(info, a)
		}
		apps = ordered
	}
	s.roundApps = apps
	s.roundDynamic = dynamic

	// Refresh the request-state artifacts of dirty applications (lines 3–5
	// worth of per-app folds) and rebuild the base availability folds for
	// the clusters those changes touched (lines 1–5 of Algorithm 4,
	// maintained per cluster instead of recomputed from scratch).
	clear(s.npFoldDirt)
	clear(s.pFoldDirt)
	for _, a := range s.apps {
		if a.cache.valid {
			s.stats.ArtifactsReused++
			continue
		}
		s.stats.ArtifactsRecomputed++
		s.refreshAppLocked(a, now, s.npFoldDirt, s.pFoldDirt)
	}
	npChanged, _ := s.rebuildFoldsLocked(s.npFoldDirt, s.pFoldDirt)

	// The Outcome's view maps are persistent: a reused application keeps
	// its entry from the previous round, so fully-reused rounds perform no
	// map writes. outOK marks the maps as fully populated for the current
	// application set (structural changes clear them).
	if s.outNPViews == nil {
		s.outNPViews = make(map[int]view.View, len(s.apps))
		s.outPViews = make(map[int]view.View, len(s.apps))
	}
	if !s.outOK {
		clear(s.outNPViews)
		clear(s.outPViews)
	}
	outSeeded := s.outOK
	out := &Outcome{
		NonPreemptViews: s.outNPViews,
		// PreemptViews is filled in by eqSchedule below.
	}

	// The running availabilities start as the cached base folds and are
	// cloned lazily on the first mutation, so a round that subtracts
	// nothing new leaves the cached maps untouched.
	vNP := s.baseNP // resources free for pre-allocations / wrapped ¬P
	vNPShared := true
	vP := s.basePv // resources free for preemptible requests
	vPShared := true

	// Compute non-preemptive views and start times of pre-allocations and
	// non-preemptible requests (lines 6–11), applications in CBF order,
	// with chain reuse: while the base fold is unchanged and every earlier
	// application was reused, the running availability is byte-identical to
	// the previous round, so each settled application's cached view and
	// wrapped excess stand in for its recomputation. The first recomputed
	// application breaks the chain for everything after it.
	chain := !npChanged
	if sc.inPA == nil {
		sc.inPA = view.New()
	}
	// Applications with no PA and no ¬P requests neither take space nor
	// change the running availability, so every one of them in a run of
	// consecutive request-less applications sees the same view: compute it
	// once per run and share the map (consumers treat pushed views as
	// immutable). With federated sessions connected to every shard
	// (internal/federation.Connect), most applications on a shard are
	// request-less there, and this keeps the round cost proportional to the
	// applications the shard actually schedules.
	var idleViewNP view.View
	for _, a := range apps {
		c := &a.cache
		if dynamic && !a.admitted {
			// Not admitted this round: pending work stays unscheduled,
			// started/fixed allocations keep counting (they are already
			// folded into the base availability), and the application is
			// shown its own pre-allocated space plus the free space.
			s.stats.CBFRecomputed++
			unschedulePending(a.PA)
			unschedulePending(a.NP)
			vNPFree := vNP.ClampMin(0)
			viewNP := a.startedPA.Add(vNPFree)
			if s.clip != nil {
				viewNP = viewNP.Clip(s.clip)
			}
			out.NonPreemptViews[a.ID] = viewNP.ClampMin(0)
			c.cbfOK = false
			continue
		}
		if chain && c.cbfOK {
			s.stats.CBFReused++
			if !outSeeded {
				out.NonPreemptViews[a.ID] = c.cbfOut
			}
			if len(c.cbfExcess) > 0 {
				if vNPShared {
					vNP = vNP.Clone()
					vNPShared = false
				}
				vNP.MutSub(c.cbfExcess)
			}
			continue
		}
		chain = false
		s.stats.CBFRecomputed++
		if a.PA.Len() == 0 && a.NP.Len() == 0 {
			if idleViewNP == nil {
				vNPFree := vNP.ClampMin(0)
				viewNP := view.View(nil).Add(vNPFree)
				if s.clip != nil {
					viewNP = viewNP.Clip(s.clip)
				}
				idleViewNP = viewNP.ClampMin(0)
			}
			out.NonPreemptViews[a.ID] = idleViewNP
			c.cbfOut, c.cbfExcess, c.cbfOK = idleViewNP, nil, true
			continue
		}
		idleViewNP = nil // this application may change vNP below

		// V_¬P^(i) = toView(R_PA) + V_¬P (line 7): the application sees its
		// own pre-allocated space plus the globally free space.
		vNPFree := vNP.ClampMin(0)
		viewNP := a.startedPA.Add(vNPFree)
		if s.clip != nil {
			viewNP = viewNP.Clip(s.clip)
		}

		// Schedule pending pre-allocations into the non-preemptive view
		// (line 8). This is Conservative Back-Filling: applications are
		// processed in connection order and each takes the first hole.
		voccPA := fitScratch(a.PA, viewNP, now, sc)

		// Space available for the application's non-preemptible requests:
		// all of its pre-allocations (started + newly scheduled) minus its
		// own started in-pre-allocation requests (line 9), plus the global
		// free space for requests that need implicit wrapping (§3.2).
		clear(sc.inPA)
		for _, r := range a.NP.All() {
			if r.Fixed && !r.Wrapped {
				sc.inPA.MutAddRect(r.Cluster, r.ScheduledAt, r.Duration, r.NAlloc)
			}
		}
		paFree := a.startedPA.Add(voccPA)
		paFree.MutSub(sc.inPA)
		availNP := paFree.Add(vNPFree)
		voccNP := fitScratch(a.NP, availNP, now, sc)

		// Classify each pending request: wrapped if its allocation is not
		// fully covered by the application's pre-allocation space.
		for _, r := range a.NP.All() {
			if r.Fixed || math.IsInf(r.ScheduledAt, 1) {
				continue
			}
			w0, w1 := r.ScheduledAt, r.ScheduledAt+r.Duration
			r.Wrapped = paFree.Get(r.Cluster).MinOn(w0, w1) < r.NAlloc
		}

		// Update the running availability (lines 10–11): newly scheduled
		// pre-allocations and the wrapped excess of non-preemptible
		// requests consume non-preemptible space; all scheduled
		// non-preemptible requests consume preemptible space.
		excess := voccNP.Sub(paFree)
		excess.MutClampMin(0)
		if len(voccPA) > 0 || len(excess) > 0 {
			if vNPShared {
				vNP = vNP.Clone()
				vNPShared = false
			}
			vNP.MutSub(voccPA)
			vNP.MutSub(excess)
		}
		if len(voccNP) > 0 {
			if vPShared {
				vP = vP.Clone()
				vPShared = false
			}
			vP.MutSub(voccNP)
		}

		outNP := viewNP.ClampMin(0)
		out.NonPreemptViews[a.ID] = outNP
		// A settled application (no pending PA/¬P request) contributes only
		// its wrapped excess, which depends on its own state alone — cache
		// the step for chain reuse. An application with pending requests
		// depends on the clock and is recomputed every round.
		if c.paSettled && c.npSettled {
			c.cbfOut, c.cbfExcess, c.cbfOK = outNP, excess, true
		} else {
			c.cbfOK = false
		}
	}

	// Compute preemptive views and start times of preemptible requests
	// (line 12). An untouched preemptible fold keeps its cached clamp so
	// profile identities stay stable for the per-cluster walk cache.
	var vin view.View
	if vPShared {
		if s.pvClampOK {
			vin = s.pvClamp
		} else {
			vin = vP.ClampMin(0)
			s.pvClamp, s.pvClampOK = vin, true
		}
	} else {
		vP.MutClampMin(0)
		vin = vP
	}
	out.PreemptViews = s.eqScheduleIncremental(vin, now, sc, outSeeded)
	s.outOK = true

	// Collect requests whose start time has arrived (lines 13–14).
	for _, a := range apps {
		appendToStart(&out.ToStart, a.PA.All(), now)
		appendToStart(&out.ToStart, a.NP.All(), now)
		appendToStart(&out.ToStart, a.P.All(), now)
	}
	sort.SliceStable(out.ToStart, func(i, j int) bool {
		a, b := out.ToStart[i], out.ToStart[j]
		if a.ScheduledAt != b.ScheduledAt {
			return a.ScheduledAt < b.ScheduledAt
		}
		da, db := depth(a), depth(b)
		if da != db {
			return da < db
		}
		return a.ID < b.ID
	})
	return out
}

// appendToStart collects the requests of rs whose computed start time has
// arrived at time now. Held requests reserve capacity in the schedule but
// never start — a reservation coordinator commits (clears Held) or releases
// them.
func appendToStart(dst *[]*request.Request, rs []*request.Request, now float64) {
	for _, r := range rs {
		if r.Started() || r.Finished || r.Held {
			continue
		}
		if math.IsInf(r.ScheduledAt, 1) {
			continue
		}
		if r.ScheduledAt <= now+timeEps {
			*dst = append(*dst, r)
		}
	}
}

// depth returns the constraint-chain depth of a request (0 for roots),
// used to start parents before children within one instant.
func depth(r *request.Request) int {
	d := 0
	for p := r.RelatedTo; p != nil && d < 1024; p = p.RelatedTo {
		d++
	}
	return d
}
