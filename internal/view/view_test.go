package view

import (
	"math"
	"math/rand"
	"testing"

	"coormv2/internal/stepfunc"
)

func TestGetMissingIsZero(t *testing.T) {
	v := New()
	if !v.Get("a").IsZero() {
		t.Error("missing cluster should be zero profile")
	}
}

func TestConstant(t *testing.T) {
	v := Constant(8, "a", "b")
	if v.Get("a").Value(0) != 8 || v.Get("b").Value(1e9) != 8 {
		t.Error("Constant view wrong")
	}
	if !v.Get("c").IsZero() {
		t.Error("unlisted cluster should be zero")
	}
}

func TestOfDropsZeroProfiles(t *testing.T) {
	v := Of(map[ClusterID]*stepfunc.StepFunc{
		"a": stepfunc.Constant(3),
		"b": stepfunc.Zero(),
		"c": nil,
	})
	if len(v) != 1 {
		t.Errorf("Of should keep only non-zero profiles, got %d entries", len(v))
	}
}

func TestClusters(t *testing.T) {
	v := Constant(1, "zeta", "alpha", "mid")
	got := v.Clusters()
	want := []ClusterID{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Clusters = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Clusters = %v, want %v", got, want)
		}
	}
}

func TestAddSubUnion(t *testing.T) {
	a := Constant(4, "x")
	b := New().AddRect("x", 10, 20, 3).AddRect("y", 0, 5, 2)
	sum := a.Add(b)
	if sum.Get("x").Value(15) != 7 || sum.Get("x").Value(5) != 4 || sum.Get("y").Value(1) != 2 {
		t.Errorf("Add wrong: %v", sum)
	}
	diff := sum.Sub(b)
	if !diff.Equal(a) {
		t.Errorf("(a+b)-b != a: %v", diff)
	}
	un := a.Union(b)
	if un.Get("x").Value(15) != 4 || un.Get("y").Value(1) != 2 {
		t.Errorf("Union wrong: %v", un)
	}
}

func TestClip(t *testing.T) {
	full := Constant(100, "x")
	limit := Constant(10, "x")
	clipped := full.Clip(limit)
	if clipped.Get("x").Value(50) != 10 {
		t.Errorf("Clip wrong: %v", clipped)
	}
	// Clipping against a missing cluster zeroes it.
	if !full.Clip(New()).Get("x").IsZero() {
		t.Error("clip against empty should zero")
	}
}

func TestClampMin(t *testing.T) {
	v := Constant(5, "x").Sub(Constant(9, "x")) // -4 on x
	c := v.ClampMin(0)
	if !c.Get("x").IsZero() {
		t.Errorf("ClampMin(0) = %v", c)
	}
}

func TestAlloc(t *testing.T) {
	v := New().AddRect("x", 0, 100, 6).AddRect("x", 50, 100, -2) // 6 then 4
	if got := v.Alloc("x", 10, 0, 40); got != 6 {
		t.Errorf("Alloc capped by profile = %d, want 6", got)
	}
	if got := v.Alloc("x", 3, 0, 40); got != 3 {
		t.Errorf("Alloc capped by want = %d, want 3", got)
	}
	if got := v.Alloc("x", 10, 40, 40); got != 4 {
		t.Errorf("Alloc crossing drop = %d, want 4", got)
	}
	if got := v.Alloc("x", 10, 200, 10); got != 0 {
		t.Errorf("Alloc beyond profile = %d, want 0", got)
	}
	if got := v.Alloc("x", 0, 0, 10); got != 0 {
		t.Errorf("Alloc want=0 = %d", got)
	}
	neg := New().AddRect("x", 0, 10, -5)
	if got := neg.Alloc("x", 3, 0, 5); got != 0 {
		t.Errorf("Alloc on negative profile = %d, want 0", got)
	}
}

func TestFindHole(t *testing.T) {
	v := New().AddRect("x", 100, 50, 8)
	if got := v.FindHole("x", 8, 50, 0); got != 100 {
		t.Errorf("FindHole = %v, want 100", got)
	}
	if got := v.FindHole("x", 9, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("FindHole infeasible = %v", got)
	}
	if got := v.FindHole("nosuch", 1, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("FindHole on missing cluster = %v", got)
	}
}

func TestEqual(t *testing.T) {
	a := Constant(4, "x")
	b := Constant(4, "x")
	if !a.Equal(b) {
		t.Error("identical views not equal")
	}
	c := Constant(4, "x").AddRect("y", 0, 1, 1)
	if a.Equal(c) || c.Equal(a) {
		t.Error("views with extra cluster should differ")
	}
	// A zero-profile entry is the same as a missing entry.
	d := a.Clone()
	d["z"] = stepfunc.Zero()
	if !a.Equal(d) || !d.Equal(a) {
		t.Error("explicit zero profile should equal missing entry")
	}
}

func TestNonNegative(t *testing.T) {
	if !Constant(3, "x").NonNegative() {
		t.Error("positive view reported negative")
	}
	if New().AddRect("x", 0, 5, -1).NonNegative() {
		t.Error("negative view reported non-negative")
	}
}

func TestString(t *testing.T) {
	v := New().AddRect("a", 0, 3600, 4)
	got := v.String()
	want := "{a: [(3600, 4) (inf, 0)]}"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Constant(4, "x")
	b := a.Clone()
	b = b.AddRect("x", 0, 10, 1)
	if a.Get("x").Value(5) != 4 {
		t.Error("mutating clone affected original")
	}
}

func TestTrimBefore(t *testing.T) {
	v := New().AddRect("x", 0, 100, 8).AddRect("x", 100, 100, 3).AddRect("y", 0, 50, 2)
	tr := v.TrimBefore(150)
	if got := tr.Get("x").Value(0); got != 3 {
		t.Errorf("history of x should be flattened to 3, got %d", got)
	}
	if got := tr.Get("x").Value(150); got != 3 {
		t.Errorf("future of x changed: %d", got)
	}
	// y is zero from t=50 on, so trimming at 150 erases it entirely.
	if !tr.Get("y").IsZero() {
		t.Errorf("y should vanish after trim: %v", tr.Get("y"))
	}
	// Values at/after the trim point never change.
	for _, tt := range []float64{150, 180, 250, 1e6} {
		if v.Get("x").Value(tt) != tr.Get("x").Value(tt) {
			t.Fatalf("TrimBefore altered the future at t=%v", tt)
		}
	}
}

func TestPropViewAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	randView := func() View {
		v := New()
		for k := 0; k < r.Intn(4); k++ {
			cid := ClusterID([]string{"a", "b", "c"}[r.Intn(3)])
			v = v.AddRect(cid, float64(r.Intn(40)), float64(1+r.Intn(30)), r.Intn(7)-1)
		}
		return v
	}
	for i := 0; i < 200; i++ {
		a, b := randView(), randView()
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatal("view Add not commutative")
		}
		if !a.Add(b).Sub(b).Equal(a) {
			t.Fatal("view Sub not inverse of Add")
		}
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatal("view Union not commutative")
		}
		if !a.Union(a).Equal(a) {
			t.Fatal("view Union not idempotent")
		}
	}
}
