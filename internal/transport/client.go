package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"coormv2/internal/proto"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Handler receives asynchronous RMS notifications on the client side.
// It is the client-side twin of rms.AppHandler.
type Handler interface {
	OnViews(nonPreempt, preempt view.View)
	OnStart(id request.ID, nodeIDs []int)
	OnKill(reason string)
}

// Client is a CooRMv2 application endpoint speaking the TCP protocol.
// Request and Done are synchronous (they wait for the server's ack);
// notifications are dispatched to the Handler from a reader goroutine.
type Client struct {
	conn net.Conn
	h    Handler

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	nextSeq int64
	waiters map[int64]chan *proto.Message
	appID   int
	closed  bool
	readErr error
	done    chan struct{}

	// notif decouples handler dispatch from the read loop so handlers can
	// synchronously call Request/Done (the in-process server gives the
	// same guarantee by notifying outside its lock).
	notif        chan func()
	dispatchDone chan struct{}
}

// Dial connects to a CooRMv2 daemon and performs the connect handshake.
func Dial(addr string, h Handler) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	c := &Client{
		conn:         conn,
		h:            h,
		w:            bufio.NewWriter(conn),
		waiters:      make(map[int64]chan *proto.Message),
		done:         make(chan struct{}),
		notif:        make(chan func(), 1024),
		dispatchDone: make(chan struct{}),
		nextSeq:      1,
	}
	if err := c.send(proto.Message{Type: proto.MsgConnect}); err != nil {
		conn.Close()
		return nil, err
	}
	// Read the connected frame synchronously before starting the pump.
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !scanner.Scan() {
		conn.Close()
		return nil, errors.New("transport: connection closed during handshake")
	}
	m, err := proto.Unmarshal(scanner.Bytes())
	if err != nil {
		conn.Close()
		return nil, err
	}
	if m.Type != proto.MsgConnected {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake got %q", m.Type)
	}
	c.appID = m.AppID
	go c.dispatchLoop()
	go c.readLoop(scanner)
	return c, nil
}

// dispatchLoop delivers notifications in order, off the read goroutine.
func (c *Client) dispatchLoop() {
	defer close(c.dispatchDone)
	for fn := range c.notif {
		fn()
	}
}

// AppID returns the RMS-assigned application ID.
func (c *Client) AppID() int { return c.appID }

func (c *Client) send(m proto.Message) error {
	data, err := m.Marshal()
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("transport: write: %w", err)
	}
	return c.w.Flush()
}

// call sends m with a fresh sequence number and waits for the matching
// ack or error frame.
func (c *Client) call(m proto.Message) (*proto.Message, error) {
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("transport: client closed")
		}
		return nil, err
	}
	seq := c.nextSeq
	c.nextSeq++
	ch := make(chan *proto.Message, 1)
	c.waiters[seq] = ch
	c.mu.Unlock()

	m.Seq = seq
	if err := c.send(m); err != nil {
		c.mu.Lock()
		delete(c.waiters, seq)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case reply := <-ch:
		if reply.Type == proto.MsgError {
			return nil, fmt.Errorf("rms: %s", reply.Reason)
		}
		return reply, nil
	case <-c.done:
		if c.readErr != nil {
			return nil, c.readErr
		}
		return nil, errors.New("transport: connection closed")
	}
}

// Request sends the request() operation and returns the RMS-assigned ID.
func (c *Client) Request(spec rms.RequestSpec) (request.ID, error) {
	reply, err := c.call(proto.EncodeRequestSpec(spec, 0))
	if err != nil {
		return 0, err
	}
	return request.ID(reply.ReqID), nil
}

// Done sends the done() operation.
func (c *Client) Done(id request.ID, released []int) error {
	_, err := c.call(proto.Message{Type: proto.MsgDone, ReqID: int64(id), Released: released})
	return err
}

// Close disconnects cleanly and waits for both pumps to drain.
func (c *Client) Close() error {
	_ = c.send(proto.Message{Type: proto.MsgBye})
	err := c.conn.Close()
	<-c.done
	<-c.dispatchDone
	return err
}

func (c *Client) readLoop(scanner *bufio.Scanner) {
	defer func() {
		c.mu.Lock()
		c.closed = true
		for seq, ch := range c.waiters {
			close(ch)
			delete(c.waiters, seq)
		}
		c.mu.Unlock()
		close(c.notif)
		close(c.done)
	}()
	for scanner.Scan() {
		m, err := proto.Unmarshal(scanner.Bytes())
		if err != nil {
			c.readErr = err
			return
		}
		switch m.Type {
		case proto.MsgReqAck, proto.MsgError:
			if m.Seq == 0 {
				continue // unsolicited error
			}
			c.mu.Lock()
			ch := c.waiters[m.Seq]
			delete(c.waiters, m.Seq)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case proto.MsgViews:
			np, err1 := m.NonPreemptView.DecodeView()
			p, err2 := m.PreemptView.DecodeView()
			if err1 != nil || err2 != nil {
				c.readErr = errors.Join(err1, err2)
				return
			}
			c.notif <- func() { c.h.OnViews(np, p) }
		case proto.MsgStart:
			id, ids := request.ID(m.ReqID), m.NodeIDs
			c.notif <- func() { c.h.OnStart(id, ids) }
		case proto.MsgKill:
			reason := m.Reason
			c.notif <- func() { c.h.OnKill(reason) }
			return
		}
	}
	c.readErr = scanner.Err()
}
