// Package proto defines the wire messages of the CooRMv2
// application–RMS protocol (the interaction of Fig. 8), serialized as
// newline-delimited JSON. It mirrors the in-process interface of
// internal/rms so that the same application code can run against the
// simulator or against the TCP daemon.
package proto

import (
	"encoding/json"
	"fmt"
	"math"

	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// MsgType enumerates the protocol messages.
type MsgType string

const (
	// Application → RMS.
	MsgConnect MsgType = "connect" // open a session
	MsgRequest MsgType = "request" // the request() operation
	MsgDone    MsgType = "done"    // the done() operation
	MsgBye     MsgType = "bye"     // clean disconnect

	// RMS → application.
	MsgConnected MsgType = "connected" // session accepted, carries app ID
	MsgReqAck    MsgType = "req-ack"   // request accepted, carries request ID
	MsgError     MsgType = "error"     // request/done rejected
	MsgViews     MsgType = "views"     // fresh non-preemptive + preemptive views
	MsgStart     MsgType = "start"     // startNotify: request started, node IDs
	MsgKill      MsgType = "kill"      // protocol violation, session terminated

	// Either direction: liveness probes. A ping carries an optional Seq
	// that the pong echoes verbatim; neither touches session state.
	MsgPing MsgType = "ping"
	MsgPong MsgType = "pong"
)

// infDuration encodes math.Inf(1) on the wire (JSON has no Inf literal).
const infDuration = -1

// StepJSON is one (duration, node-count) segment of a profile.
// A Duration of -1 means "forever".
type StepJSON struct {
	Duration float64 `json:"dur"`
	N        int     `json:"n"`
}

// ViewJSON is a wire-encodable view: cluster ID → availability steps.
type ViewJSON map[string][]StepJSON

// EncodeView converts a view to its wire form.
func EncodeView(v view.View) ViewJSON {
	out := make(ViewJSON, len(v))
	for _, cid := range v.Clusters() {
		steps := v.Get(cid).Steps()
		enc := make([]StepJSON, len(steps))
		for i, s := range steps {
			d := s.Duration
			if math.IsInf(d, 1) {
				d = infDuration
			}
			enc[i] = StepJSON{Duration: d, N: s.N}
		}
		out[string(cid)] = enc
	}
	return out
}

// DecodeView converts a wire view back to the internal representation.
func (vj ViewJSON) DecodeView() (view.View, error) {
	out := view.New()
	for cid, steps := range vj {
		dec := make([]stepfunc.Step, len(steps))
		for i, s := range steps {
			d := s.Duration
			if d == infDuration {
				d = math.Inf(1)
			}
			if d < 0 {
				return nil, fmt.Errorf("proto: invalid duration %v in view", s.Duration)
			}
			dec[i] = stepfunc.Step{Duration: d, N: s.N}
		}
		f := stepfunc.FromSteps(dec...)
		if !f.IsZero() {
			out[view.ClusterID(cid)] = f
		}
	}
	return out, nil
}

// Message is the single frame type exchanged in both directions; Type
// selects which fields are meaningful.
type Message struct {
	Type MsgType `json:"type"`
	// Seq correlates an application message with its ack/error.
	Seq int64 `json:"seq,omitempty"`

	// Idem is a client-assigned idempotency token on MsgRequest/MsgDone.
	// The server caches the outcome of every idem-carrying call, so a
	// client re-sending the same call after a reconnect (its ack may have
	// died with the connection) gets the original outcome replayed instead
	// of executing the operation twice. Zero disables deduplication.
	Idem int64 `json:"idem,omitempty"`

	// Resume carries the session-resume token: on MsgConnect a client
	// presents the token of the session it wants to reclaim (empty for a
	// fresh session); on MsgConnected the server issues the token the
	// client must present when reconnecting.
	Resume string `json:"resume,omitempty"`

	// Tenant optionally tags a MsgConnect with a tenant queue path
	// ("org/team/q"); the transport forwards it as rms.WithTenant.
	Tenant string `json:"tenant,omitempty"`

	// Replay marks a MsgViews/MsgStart re-delivered from current state
	// after a session resume. Clients deduplicate replayed starts by
	// request ID; non-replay frames are always fresh.
	Replay bool `json:"replay,omitempty"`

	// MsgConnected
	AppID int `json:"app_id,omitempty"`

	// MsgRequest
	Cluster    string  `json:"cluster,omitempty"`
	N          int     `json:"n,omitempty"`
	Duration   float64 `json:"duration,omitempty"` // -1 = infinite
	ReqType    string  `json:"req_type,omitempty"` // "PA" | "NP" | "P"
	RelatedHow string  `json:"related_how,omitempty"`
	RelatedTo  int64   `json:"related_to,omitempty"`

	// MsgReqAck, MsgDone, MsgStart
	ReqID int64 `json:"req_id,omitempty"`

	// MsgDone
	Released []int `json:"released,omitempty"`

	// MsgStart
	NodeIDs []int `json:"node_ids,omitempty"`

	// MsgViews
	NonPreemptView ViewJSON `json:"np_view,omitempty"`
	PreemptView    ViewJSON `json:"p_view,omitempty"`

	// MsgError, MsgKill
	Reason string `json:"reason,omitempty"`
}

// reqTypeNames maps wire names to request types.
var reqTypeNames = map[string]request.Type{
	"PA": request.PreAlloc,
	"NP": request.NonPreempt,
	"P":  request.Preempt,
}

// relationNames maps wire names to constraint relations.
var relationNames = map[string]request.Relation{
	"":        request.Free,
	"FREE":    request.Free,
	"COALLOC": request.Coalloc,
	"NEXT":    request.Next,
}

// EncodeReqType returns the wire name of a request type.
func EncodeReqType(t request.Type) string {
	switch t {
	case request.PreAlloc:
		return "PA"
	case request.NonPreempt:
		return "NP"
	default:
		return "P"
	}
}

// EncodeRelation returns the wire name of a relation.
func EncodeRelation(r request.Relation) string {
	switch r {
	case request.Coalloc:
		return "COALLOC"
	case request.Next:
		return "NEXT"
	default:
		return "FREE"
	}
}

// EncodeRequestSpec converts an rms.RequestSpec into a MsgRequest frame.
func EncodeRequestSpec(spec rms.RequestSpec, seq int64) Message {
	d := spec.Duration
	if math.IsInf(d, 1) {
		d = infDuration
	}
	return Message{
		Type:       MsgRequest,
		Seq:        seq,
		Cluster:    string(spec.Cluster),
		N:          spec.N,
		Duration:   d,
		ReqType:    EncodeReqType(spec.Type),
		RelatedHow: EncodeRelation(spec.RelatedHow),
		RelatedTo:  int64(spec.RelatedTo),
	}
}

// DecodeRequestSpec converts a MsgRequest frame back into a spec.
func (m *Message) DecodeRequestSpec() (rms.RequestSpec, error) {
	if m.Type != MsgRequest {
		return rms.RequestSpec{}, fmt.Errorf("proto: %q is not a request message", m.Type)
	}
	typ, ok := reqTypeNames[m.ReqType]
	if !ok {
		return rms.RequestSpec{}, fmt.Errorf("proto: unknown request type %q", m.ReqType)
	}
	how, ok := relationNames[m.RelatedHow]
	if !ok {
		return rms.RequestSpec{}, fmt.Errorf("proto: unknown relation %q", m.RelatedHow)
	}
	d := m.Duration
	if d == infDuration {
		d = math.Inf(1)
	}
	return rms.RequestSpec{
		Cluster:    view.ClusterID(m.Cluster),
		N:          m.N,
		Duration:   d,
		Type:       typ,
		RelatedHow: how,
		RelatedTo:  request.ID(m.RelatedTo),
	}, nil
}

// Marshal serializes a message as one JSON line (without the newline).
func (m *Message) Marshal() ([]byte, error) {
	return json.Marshal(m)
}

// Unmarshal parses one JSON line into a message.
func Unmarshal(data []byte) (*Message, error) {
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("proto: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("proto: missing message type")
	}
	return &m, nil
}
