package federation

import (
	"fmt"

	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/view"
)

// Live cluster migration: MigrateCluster re-homes one cluster — capacity,
// node-ID pool occupancy, and every session's requests on it — from the
// shard that owns it to another running shard, as one atomic topology
// transition. The donor's state is drained with rms.Server.DetachCluster,
// re-admitted with AttachCluster on the target, and the sessions'
// federated↔local ID tables are rewritten through the attach observe hook
// (under the target's server lock, so no scheduling round can start a
// migrated request before its mapping is in place — the same guarantee
// RequestObserved gives fresh requests).
//
// Determinism: inside the simulator a migration runs within a single event
// (the Rebalancer's "rebalance.check" timer), so request()/done() traffic is
// naturally quiesced and same-seed runs replay identically, crashes
// included — topoMu serializes migration against crash/restart under
// clock.RealClock, where the same atomicity must be enforced rather than
// inherited.

// MigrationReport summarizes one live cluster migration.
type MigrationReport struct {
	Cluster view.ClusterID
	From    int
	To      int
	// Apps counts the sessions whose requests moved with the cluster.
	Apps int
	// Requests counts the request mappings handed over (live + finished).
	Requests int
	// Nodes counts the node IDs that were held by migrated requests.
	Nodes int
}

// String renders the report as one deterministic trace line.
func (r MigrationReport) String() string {
	return fmt.Sprintf("migrate cluster=%s from=%d to=%d apps=%d reqs=%d nodes=%d",
		r.Cluster, r.From, r.To, r.Apps, r.Requests, r.Nodes)
}

// MigrateCluster moves cluster cid and all of its scheduler-side state to
// shard `to`. It fails — leaving every shard untouched — if the cluster is
// unknown, already owned by the target, the donor or target shard is down,
// or the donor would be left clusterless (rms.ErrLastCluster). A live
// NEXT/COALLOC relation crossing from the cluster to another donor cluster
// no longer blocks the move (the historical rms.ErrEntangled failure): the
// donor is drained with DetachClusterSevering, which converts each crossing
// relation into a NotBefore floor carrying the same timing intent — the
// relation's constraint survives the cut, and the federation's cross-shard
// gangs (whose legs are shard-locally unrelated holds, see gang.go) were
// never entangling to begin with. On success the owner table, the sessions'
// ID tables and the merged views all reflect the new topology before the
// call returns, and the cluster is placed exactly once: a failure after the
// donor was drained re-attaches the snapshot to the donor.
func (f *Federator) MigrateCluster(cid view.ClusterID, to int) (MigrationReport, error) {
	if to < 0 || to >= len(f.shards) {
		return MigrationReport{Cluster: cid, From: -1, To: to},
			fmt.Errorf("federation: MigrateCluster(%q, %d) with %d shards", cid, to, len(f.shards))
	}
	f.topoMu.Lock()
	defer f.topoMu.Unlock()

	var pauseT0 float64
	if f.hMigrate != nil {
		pauseT0 = f.clk.Now()
	}
	rep := MigrationReport{Cluster: cid, To: to}
	f.mu.Lock()
	from, ok := f.owner[cid]
	rep.From = from
	if !ok {
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: unknown cluster %q", cid)
	}
	if from == to {
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: cluster %q is already owned by shard %d", cid, to)
	}
	if f.down[from] || f.down[to] {
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: cannot migrate %q from shard %d to %d: a shard is down", cid, from, to)
	}
	sessions := f.sessionsLocked()
	f.mu.Unlock()

	snap, err := f.shards[from].DetachClusterSevering(cid)
	if err != nil {
		return rep, err
	}
	rep.Apps, rep.Requests, rep.Nodes = len(snap.Apps), snap.Requests(), snap.HeldNodes()

	byID := make(map[int]*Session, len(sessions))
	for _, sess := range sessions {
		byID[sess.id] = sess
	}
	rewrite := func(dst int) func(appID int, oldID, newID request.ID) {
		return func(appID int, oldID, newID request.ID) {
			if sess := byID[appID]; sess != nil {
				sess.migrateMapping(from, dst, oldID, newID)
			}
		}
	}
	if err := f.shards[to].AttachCluster(snap, rewrite(to)); err != nil {
		// The donor is drained but the target refused (unreachable in the
		// simulator — topoMu excludes a concurrent crash, and the down check
		// above covered the rest). Exactly-once placement must hold even
		// here: hand the snapshot back to the donor.
		if rerr := f.shards[from].AttachCluster(snap, rewrite(from)); rerr != nil {
			panic(fmt.Sprintf("federation: cluster %q lost in migration: %v (after %v)", cid, rerr, err))
		}
		return rep, err
	}

	f.mu.Lock()
	f.owner[cid] = to
	f.mu.Unlock()

	// Strip the migrated cluster from every session's stored donor views —
	// until the donor's next round pushes cid-less views, the stale copy
	// would keep the cluster double-represented in merges — then deliver the
	// re-merged result.
	for _, sess := range sessions {
		sess.noteClusterMoved(cid, from)
		sess.rehomeDetachedHolds(cid, to)
	}
	for _, sess := range sessions {
		sess.pushMerged()
	}
	if f.fedRec != nil {
		// Migrations are a federation-level event, recorded under the
		// pseudo-application ID 0 (per-app MigratedRequests counters land on
		// the target shard's recorder via AttachCluster).
		f.fedRec.IncCounter(0, metrics.MigratedClusters, 1)
	}
	if f.hMigrate != nil {
		// Detach→attach pause, clock-measured: the window in which the
		// cluster was placed on neither shard. Zero inside the simulator
		// (the whole migration runs within one event); real seconds under
		// clock.RealClock.
		pause := f.clk.Now() - pauseT0
		f.hMigrate.Record(pause)
		f.obsReg.Event(obs.Event{Time: pauseT0, Type: obs.EvMigrate,
			Cluster: string(cid), Value: pause})
	}
	return rep, nil
}

// migrateMapping re-points one federated request mapping from its old
// donor-local ID to its new ID on shard dst. Called under the attaching
// shard's server lock (the sanctioned shard-lock → sess.mu nesting), so the
// rewrite is visible before any scheduling round can notify about the
// request.
func (s *Session) migrateMapping(from, dst int, oldID, newID request.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fid, ok := s.fromLocal[from][oldID]
	if !ok {
		return
	}
	delete(s.fromLocal[from], oldID)
	e := s.toLocal[fid]
	if e == nil {
		return
	}
	e.shard, e.id = dst, newID
	s.fromLocal[dst][newID] = fid
}

// noteClusterMoved drops the migrated cluster from the session's stored
// views of the donor shard and marks the merge dirty; the caller delivers
// with pushMerged once the owner table is updated.
func (s *Session) noteClusterMoved(cid view.ClusterID, from int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return
	}
	for k := 0; k < 2; k++ {
		if v := s.shardViews[from][k]; v != nil {
			if _, ok := v[cid]; ok {
				// Copy-on-write: pushed view maps are shared with the rms
				// layer (and possibly other sessions) under the immutable
				// OnViews contract, so the strip works on a private clone.
				v = v.Clone()
				delete(v, cid)
				s.shardViews[from][k] = v
			}
		}
	}
	s.shardEpoch[from]++
	s.viewsDirty = true
}
