package rms

import (
	"testing"

	"coormv2/internal/request"
)

// The hooks below exist for internal/federation: ConnectID registers a
// session under an externally assigned application ID, RequestObserved
// exposes the assigned request ID while the server lock is still held, and
// ScheduleNow forces a synchronous scheduling round.

func TestConnectIDAssignsAndCollides(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	sess, err := s.ConnectID(app, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sess.AppID() != 7 {
		t.Errorf("AppID = %d, want 7", sess.AppID())
	}
	if _, err := s.ConnectID(&testApp{}, 7); err == nil {
		t.Error("duplicate ID should error")
	}
	if _, err := s.ConnectID(&testApp{}, 0); err == nil {
		t.Error("non-positive ID should error")
	}
	// The auto-assigned sequence continues past the external ID.
	next := s.Connect(&testApp{})
	if next.AppID() != 8 {
		t.Errorf("next auto ID = %d, want 8", next.AppID())
	}
	e.RunAll()
}

func TestConnectIDSessionIsFunctional(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	sess, err := s.ConnectID(app, 3)
	if err != nil {
		t.Fatal(err)
	}
	app.sess = sess
	if _, err := sess.Request(RequestSpec{Cluster: c0, N: 2, Duration: 50, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(app.starts) != 1 {
		t.Fatalf("starts = %v, want one", app.starts)
	}
}

func TestRequestObservedSeesIDBeforeStart(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)

	var observed request.ID
	started := false
	app.onStart = func(id request.ID, _ []int) {
		started = true
		if observed == 0 {
			t.Error("OnStart fired before observe")
		}
		if id != observed {
			t.Errorf("started %d, observed %d", id, observed)
		}
	}
	id, err := app.sess.RequestObserved(
		RequestSpec{Cluster: c0, N: 1, Duration: 10, Type: request.NonPreempt},
		func(rid request.ID) { observed = rid },
	)
	if err != nil {
		t.Fatal(err)
	}
	if id != observed {
		t.Errorf("Request returned %d, observe saw %d", id, observed)
	}
	e.RunAll()
	if !started {
		t.Fatal("request never started")
	}
}

func TestRequestObservedNotCalledOnError(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	e.RunAll()
	called := false
	_, err := app.sess.RequestObserved(
		RequestSpec{Cluster: c0, N: 0, Duration: 1, Type: request.NonPreempt},
		func(request.ID) { called = true },
	)
	if err == nil {
		t.Fatal("invalid request should error")
	}
	if called {
		t.Error("observe must not run on a failed request")
	}
}

func TestScheduleNowRunsARound(t *testing.T) {
	_, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	if _, err := app.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 100, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	// No engine run: drive the round synchronously.
	s.ScheduleNow()
	if len(app.starts) != 1 {
		t.Fatalf("starts after ScheduleNow = %v, want one", app.starts)
	}
	if len(app.views) == 0 {
		t.Error("no views pushed by ScheduleNow")
	}
}
