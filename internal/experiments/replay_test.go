package experiments

import (
	"testing"

	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

func TestReplaySmallTrace(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Nodes: 8},
		{ID: 2, Submit: 10, Runtime: 100, Nodes: 8}, // must queue (8+8 > 10)
		{ID: 3, Submit: 20, Runtime: 50, Nodes: 2},  // backfills beside job 1
	}
	res, err := RunReplay(ReplayConfig{Jobs: jobs, Nodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// Job 2 waited for job 1 to end (~90 s); job 3 backfilled (~0 wait).
	if res.MaxWait < 80 || res.MaxWait > 120 {
		t.Errorf("max wait = %v, want ≈ 90 (queued job)", res.MaxWait)
	}
	if res.Makespan < 200 || res.Makespan > 230 {
		t.Errorf("makespan = %v, want ≈ 210", res.Makespan)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization = %v", res.Utilization)
	}
}

func TestReplaySyntheticWithPSA(t *testing.T) {
	jobs := workload.Synthetic(stats.NewRand(1), workload.SyntheticConfig{
		Jobs: 30, MaxNodes: 16, MeanInterArr: 120, MeanRuntime: 600,
	})
	base, err := RunReplay(ReplayConfig{Jobs: jobs, Nodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	filled, err := RunReplay(ReplayConfig{Jobs: jobs, Nodes: 32, FillWithPSA: true, PSATaskDur: 60})
	if err != nil {
		t.Fatal(err)
	}
	if filled.Completed != 30 || base.Completed != 30 {
		t.Fatalf("jobs lost: %d / %d", base.Completed, filled.Completed)
	}
	// The scavenging PSA must add useful work without delaying rigid jobs
	// much (preemptible resources are reclaimed on demand).
	if filled.PSAUseful <= 0 {
		t.Error("PSA did no useful scavenging")
	}
	if filled.UtilizationWithPSA <= filled.Utilization {
		t.Error("utilization with PSA should exceed rigid-only utilization")
	}
	if filled.MeanWait > base.MeanWait*1.5+10 {
		t.Errorf("PSA delayed rigid jobs too much: %v vs %v", filled.MeanWait, base.MeanWait)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := RunReplay(ReplayConfig{Nodes: 10}); err == nil {
		t.Error("empty stream should error")
	}
	jobs := []workload.Job{{ID: 1, Submit: 0, Runtime: 10, Nodes: 99}}
	if _, err := RunReplay(ReplayConfig{Jobs: jobs, Nodes: 10}); err == nil {
		t.Error("oversized job should error")
	}
	if _, err := RunReplay(ReplayConfig{Jobs: jobs}); err == nil {
		t.Error("zero nodes should error")
	}
}

func TestAccounting(t *testing.T) {
	rows, err := Accounting(1, 60, 50*1024, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	static, dynamic := rows[0], rows[2]
	// Static: everything reserved is used (that is its inefficiency).
	if static.ReservedIdle != 0 {
		t.Errorf("static reserved-idle = %v, want 0", static.ReservedIdle)
	}
	// Dynamic: substantial idle reservation, which the PSA filled.
	if dynamic.ReservedIdle <= 0 {
		t.Error("dynamic should have idle reservation")
	}
	if dynamic.UsedArea >= static.UsedArea {
		t.Errorf("dynamic used %v should undercut static %v at overcommit 2",
			dynamic.UsedArea, static.UsedArea)
	}
	dynPSA := rows[3]
	if dynPSA.UsedArea <= 0 {
		t.Error("the PSA should have filled the dynamic AMR's idle reservation")
	}
}

func TestAblationPSA(t *testing.T) {
	rows, err := AblationPSA(AblationConfig{
		Seed: 1, Steps: 60, Smax: 50 * 1024,
		AnnounceInterval: 90, PSATaskDur: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	full := rows[0]
	noGrace := rows[1]
	// With notice ≥ d_task the full PSA wastes nothing; without graceful
	// release it must kill tasks at every reclamation.
	if full.PSAWaste > 1 {
		t.Errorf("full variant waste = %v, want ≈ 0", full.PSAWaste)
	}
	if noGrace.PSAWaste <= full.PSAWaste {
		t.Errorf("disabling graceful release should increase waste: %v vs %v",
			noGrace.PSAWaste, full.PSAWaste)
	}
}
