// Package tenants puts a multi-tenant queue hierarchy in front of the
// CooRMv2 scheduler. A Tree of queues (org → team → queue) carries
// guaranteed and maximum quotas per cluster; the DRFPolicy orders
// applications by dominant share across the tree, gates admission on the
// max quotas, and nominates cross-queue preemption victims — but only
// when revoking them actually relieves a demanding queue's shortage
// (YuniKorn drf/preemption semantics). The policies plug into the core
// scheduler through core.SchedulingPolicy / core.VictimNominator without
// touching the round algorithms.
//
// Concurrency: a Tree is immutable once handed to a policy, so one Tree
// may be shared by every shard of a federation. All per-round mutable
// state lives in the DRFPolicy, which belongs to exactly one scheduler.
package tenants

import (
	"fmt"
	"sort"
	"strings"

	"coormv2/internal/view"
)

// Resources maps cluster IDs to node counts (a quota or a usage figure).
type Resources map[view.ClusterID]int

// clone returns a copy of r (nil stays nil).
func (r Resources) clone() Resources {
	if r == nil {
		return nil
	}
	out := make(Resources, len(r))
	for cid, n := range r {
		out[cid] = n
	}
	return out
}

// DefaultQueue is the implicit leaf every untagged or unknown tenant
// label resolves to. It has no guarantees, so its preemptible work is
// the first candidate for revocation — untagged sessions scavenge.
const DefaultQueue = "default"

// Queue is one node of the tenant tree. Queues are identified by their
// slash-separated path from the root ("org/team/q"); the root has path "".
type Queue struct {
	name     string
	path     string
	id       int // index into the Tree's queue list (and policy scratch)
	parent   *Queue
	children []*Queue // sorted by name

	// Guaranteed is the capacity the queue is entitled to per cluster: a
	// queue using less than its guarantee while demanding more is
	// starved, and preemption may revoke other queues' preemptible work
	// to relieve it. Max caps the queue's usage per cluster: at or above
	// it, no new work of the queue is admitted. Either may be nil.
	Guaranteed Resources
	Max        Resources
}

// Name returns the queue's own name (last path element).
func (q *Queue) Name() string { return q.name }

// Path returns the queue's full slash-separated path.
func (q *Queue) Path() string { return q.path }

// Parent returns the parent queue (nil for the root).
func (q *Queue) Parent() *Queue { return q.parent }

// Children returns the child queues, sorted by name.
func (q *Queue) Children() []*Queue { return q.children }

// IsLeaf reports whether the queue has no children.
func (q *Queue) IsLeaf() bool { return len(q.children) == 0 }

// Tree is the tenant hierarchy. Build it with Add before handing it to a
// policy; it must not be mutated afterwards (policies and shards share
// it without locks).
type Tree struct {
	root   *Queue
	byPath map[string]*Queue
	queues []*Queue // all queues in creation order, indexed by Queue.id
	sealed bool
}

// NewTree returns a tree holding the root queue and the implicit
// DefaultQueue leaf for untagged tenants.
func NewTree() *Tree {
	root := &Queue{}
	t := &Tree{root: root, byPath: map[string]*Queue{"": root}, queues: []*Queue{root}}
	t.MustAdd(DefaultQueue, nil, nil)
	return t
}

// Add creates the queue at path (intermediate queues are created with no
// quotas) and sets its guaranteed and max resources. Adding a path twice
// or adding to a sealed tree is an error.
func (t *Tree) Add(path string, guaranteed, max Resources) (*Queue, error) {
	if t.sealed {
		return nil, fmt.Errorf("tenants: tree is sealed (a policy already uses it)")
	}
	if path == "" {
		return nil, fmt.Errorf("tenants: empty queue path")
	}
	if _, dup := t.byPath[path]; dup {
		return nil, fmt.Errorf("tenants: duplicate queue %q", path)
	}
	parts := strings.Split(path, "/")
	cur := t.root
	for i, name := range parts {
		if name == "" {
			return nil, fmt.Errorf("tenants: empty element in queue path %q", path)
		}
		p := strings.Join(parts[:i+1], "/")
		next, ok := t.byPath[p]
		if !ok {
			next = &Queue{name: name, path: p, id: len(t.queues), parent: cur}
			cur.children = append(cur.children, next)
			sort.Slice(cur.children, func(a, b int) bool {
				return cur.children[a].name < cur.children[b].name
			})
			t.byPath[p] = next
			t.queues = append(t.queues, next)
		}
		cur = next
	}
	cur.Guaranteed = guaranteed.clone()
	cur.Max = max.clone()
	return cur, nil
}

// MustAdd is Add, panicking on error (setup-time configuration).
func (t *Tree) MustAdd(path string, guaranteed, max Resources) *Queue {
	q, err := t.Add(path, guaranteed, max)
	if err != nil {
		panic(err)
	}
	return q
}

// Queue returns the queue at path, or nil.
func (t *Tree) Queue(path string) *Queue { return t.byPath[path] }

// Root returns the root queue.
func (t *Tree) Root() *Queue { return t.root }

// Queues returns every queue (including the root) in creation order.
func (t *Tree) Queues() []*Queue { return t.queues }

// Resolve maps a tenant label to its queue: an exact path match, or the
// DefaultQueue for unknown and empty labels.
func (t *Tree) Resolve(tenant string) *Queue {
	if q, ok := t.byPath[tenant]; ok && q != t.root {
		return q
	}
	return t.byPath[DefaultQueue]
}

// seal freezes the tree against further Add calls.
func (t *Tree) seal() { t.sealed = true }

// inSubtree reports whether q is anc or one of its descendants.
func inSubtree(q, anc *Queue) bool {
	for ; q != nil; q = q.parent {
		if q == anc {
			return true
		}
	}
	return false
}
