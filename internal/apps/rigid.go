package apps

import (
	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Rigid is the simplest application of §4: "a rigid application sends a
// single non-preemptible request of the user-submitted node-count and
// duration. Since the application does not adapt, it ignores its views."
type Rigid struct {
	base

	Cluster  view.ClusterID
	N        int
	Duration float64

	reqID     request.ID
	submitted bool
	endTimer  clock.Timer

	// Recorded lifecycle, for tests and workload replay statistics.
	StartTime float64
	EndTime   float64
	NodeIDs   []int
	Started   bool
	Ended     bool
	// OnEnd, when set, runs at the job's completion (replay bookkeeping).
	OnEnd func()

	// LostWork accumulates the node·seconds of computation lost to node
	// failures: a killed run's elapsed work, or a requeued run's elapsed work
	// (it will be repeated from scratch). Cooperative recovery checkpoints at
	// the failure, so it adds nothing here.
	LostWork float64
	// Resubmits counts cooperative recoveries: the job checkpointed and
	// resubmitted its remaining duration under a fresh request.
	Resubmits int
}

// NewRigid creates a rigid application.
func NewRigid(clk clock.Clock, cid view.ClusterID, n int, duration float64) *Rigid {
	return &Rigid{base: base{clk: clk}, Cluster: cid, N: n, Duration: duration}
}

// RequestID returns the job's current request ID: the original submission,
// or the latest cooperative resubmission. Harnesses settling on
// server-authoritative events compare against it, so a finish of a
// checkpoint-superseded request is not mistaken for the job's completion.
func (r *Rigid) RequestID() request.ID { return r.reqID }

// Submit sends the single non-preemptible request.
func (r *Rigid) Submit() error {
	if r.submitted {
		return nil
	}
	id, err := r.sess.Request(rms.RequestSpec{
		Cluster: r.Cluster, N: r.N, Duration: r.Duration, Type: request.NonPreempt,
	})
	if err != nil {
		return err
	}
	r.reqID = id
	r.submitted = true
	return nil
}

// OnViews ignores the views, by definition of a rigid job.
func (r *Rigid) OnViews(_, _ view.View) {}

// OnStart records the allocation and schedules the job's completion.
func (r *Rigid) OnStart(id request.ID, nodeIDs []int) {
	if id != r.reqID {
		return
	}
	// A second start is a crash-requeued re-run: the work restarts from
	// scratch, so the completion moves with it — the first run's end timer
	// must not settle the job while the re-run is still executing. (If the
	// re-run starts only after the first run's scheduled end, the stale
	// timer has already fired: the app has no crash signal to cancel it
	// earlier — see ROADMAP "crash-aware applications". Crash-accurate
	// consumers settle on the server-side OnRequestFinished event instead,
	// as the chaos harness does.)
	if r.endTimer != nil {
		r.endTimer.Stop()
	}
	r.Started = true
	r.StartTime = r.now()
	r.NodeIDs = nodeIDs
	r.endTimer = r.clk.AfterFunc(r.Duration, "rigid.end", func() {
		r.Ended = true
		r.EndTime = r.now()
		if r.OnEnd != nil {
			r.OnEnd()
		}
	})
}

// OnNodeFailure makes the rigid job crash-aware. Killed and requeued runs
// cancel the stale end timer immediately — the failure is the crash signal
// the OnStart-only path lacked, so the first run's timer can no longer
// settle the job while nothing (or a from-scratch re-run) is executing.
// Under cooperative recovery (action reduced) the job checkpoints: the
// elapsed work is preserved, a fresh request for the *remaining* duration at
// full width is submitted, and only then is the reduced allocation released
// — the submit-then-done order keeps r.reqID valid at every observable
// instant (Done flushes the old request's finish synchronously).
func (r *Rigid) OnNodeFailure(ev rms.NodeFailure) {
	if ev.Request != r.reqID || !r.Started || r.Ended || r.killed {
		return
	}
	now := r.now()
	elapsed := now - r.StartTime
	if r.endTimer != nil {
		r.endTimer.Stop()
		r.endTimer = nil
	}
	switch ev.Action {
	case rms.NodeFaultKilled:
		// The job is gone (§3.1.4): its elapsed work is lost for good. The
		// reap notification settles harness-side bookkeeping.
		r.LostWork += elapsed * float64(r.N)
		r.Started = false
		r.NodeIDs = nil
	case rms.NodeFaultRequeued:
		// The same request re-runs from scratch when placed again; the
		// elapsed work will be repeated.
		r.LostWork += elapsed * float64(r.N)
		r.Started = false
		r.NodeIDs = nil
	case rms.NodeFaultReduced:
		remaining := r.Duration - elapsed
		survivors := append([]int(nil), ev.Remaining...)
		old := r.reqID
		if remaining <= 0 {
			// The run was complete at the failure instant; nothing to resubmit.
			if err := r.sess.Done(old, survivors); err == nil {
				r.Ended = true
				r.EndTime = now
				if r.OnEnd != nil {
					r.OnEnd()
				}
			}
			return
		}
		id, err := r.sess.Request(rms.RequestSpec{
			Cluster: r.Cluster, N: r.N, Duration: remaining, Type: request.NonPreempt,
		})
		if err != nil {
			// Cannot resubmit (e.g. the session is being torn down): the
			// reduced allocation idles and the checkpoint is moot.
			r.LostWork += elapsed * float64(len(ev.LostIDs))
			return
		}
		r.reqID = id
		r.Resubmits++
		r.Started = false
		r.NodeIDs = nil
		_ = r.sess.Done(old, survivors)
	}
}
