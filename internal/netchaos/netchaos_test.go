package netchaos

import (
	"net"
	"testing"
	"time"
)

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, MeanBetween: 0.3, MeanDur: 0.2, Horizon: 10}
	a, b := Plan(cfg), Plan(cfg)
	if len(a) == 0 {
		t.Fatal("empty plan")
	}
	if HashTrace(TraceOf(a)) != HashTrace(TraceOf(b)) {
		t.Fatal("same seed produced different plans")
	}
	cfg.Seed = 43
	if HashTrace(TraceOf(Plan(cfg))) == HashTrace(TraceOf(a)) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanRespectsCaps(t *testing.T) {
	cfg := Config{Seed: 7, MeanBetween: 0.1, MeanDur: 0.1, Horizon: 100, MaxFaults: 5}
	plan := Plan(cfg)
	if len(plan) != 5 {
		t.Fatalf("MaxFaults=5, got %d faults", len(plan))
	}
	for _, f := range plan {
		if f.At >= cfg.Horizon {
			t.Fatalf("fault at %g beyond horizon", f.At)
		}
	}
	if Plan(Config{}) != nil {
		t.Fatal("zero config should produce no plan")
	}
}

// echoServer accepts connections and echoes bytes back.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func roundTrip(t *testing.T, conn net.Conn) error {
	t.Helper()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write([]byte("hi")); err != nil {
		return err
	}
	buf := make([]byte, 2)
	_, err := conn.Read(buf)
	return err
}

func TestProxyForwardsAndSevers(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p := NewProxy(backend)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(t, conn); err != nil {
		t.Fatalf("round trip through proxy: %v", err)
	}

	p.Sever()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded after sever")
	}
	if p.Severed() == 0 {
		t.Fatal("sever not counted")
	}

	// New connections work immediately after a sever.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := roundTrip(t, conn2); err != nil {
		t.Fatalf("round trip after sever: %v", err)
	}
}

func TestProxyPartitionAndHalfOpen(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p := NewProxy(backend)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.SetPartitioned(true)
	conn, err := net.Dial("tcp", addr)
	if err == nil {
		// The dial may complete before the proxy closes its side; the
		// round trip must fail either way.
		if rerr := roundTrip(t, conn); rerr == nil {
			t.Fatal("round trip succeeded while partitioned")
		}
		conn.Close()
	}
	p.SetPartitioned(false)

	p.SetHalfOpen(true)
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(t, conn2); err == nil {
		t.Fatal("round trip succeeded while half-open")
	}
	conn2.Close()
	p.SetHalfOpen(false)
	if p.Held() == 0 {
		t.Fatal("half-open connection not counted")
	}

	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	if err := roundTrip(t, conn3); err != nil {
		t.Fatalf("round trip after clearing faults: %v", err)
	}
}

func TestProxyDelay(t *testing.T) {
	backend, stop := echoServer(t)
	defer stop()
	p := NewProxy(backend)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	p.SetDelay(50 * time.Millisecond)
	startT := time.Now()
	if err := roundTrip(t, conn); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(startT); d < 50*time.Millisecond {
		t.Fatalf("round trip took %v, expected >= 50ms of injected delay", d)
	}
	p.SetDelay(0)
}
