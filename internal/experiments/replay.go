package experiments

import (
	"fmt"
	"math"

	"coormv2/internal/apps"
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/sim"
	"coormv2/internal/view"
	"coormv2/internal/workload"
)

// ReplayConfig parametrizes a rigid-job trace replay. The paper does not
// evaluate rigid traces ("as is commonly done in the community", §5.1) but
// CooRMv2 supports them (§4); the replay harness demonstrates that support
// and doubles as a CBF sanity check against a classic workload.
type ReplayConfig struct {
	Jobs  []workload.Job
	Nodes int
	// FillWithPSA adds one PSA that scavenges idle nodes preemptibly,
	// showing the malleable-fill gain on a rigid trace.
	FillWithPSA bool
	PSATaskDur  float64
	// MaxSimTime aborts runaway replays.
	MaxSimTime float64
	// Shards, when positive, replays through a federation.Federator (see
	// ScenarioConfig.Shards).
	Shards int
}

// ReplayResult aggregates replay statistics.
type ReplayResult struct {
	Completed   int
	MeanWait    float64 // mean time between submit and start
	MaxWait     float64
	Makespan    float64
	Utilization float64 // rigid-job area / (nodes × makespan)
	// PSAUseful is the node·s the scavenging PSA computed (0 without it).
	PSAUseful float64
	// UtilizationWithPSA includes the PSA's useful work.
	UtilizationWithPSA float64
}

// RunReplay replays a rigid-job stream through a CooRMv2 RMS.
func RunReplay(cfg ReplayConfig) (*ReplayResult, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("experiments: empty job stream")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("experiments: need a positive node count")
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 1e9
	}
	for _, j := range cfg.Jobs {
		if j.Nodes > cfg.Nodes {
			return nil, fmt.Errorf("experiments: job %d needs %d nodes, cluster has %d", j.ID, j.Nodes, cfg.Nodes)
		}
	}
	if cfg.PSATaskDur <= 0 {
		cfg.PSATaskDur = 600
	}

	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	connect, reader := buildRMS(cfg.Shards, map[view.ClusterID]int{Cluster: cfg.Nodes},
		1, clock.SimClock{E: e}, core.EquiPartitionFilling, rec)

	var psa *apps.PSA
	var psaID int
	if cfg.FillWithPSA {
		psa = apps.NewPSA(clock.SimClock{E: e}, apps.PSAConfig{
			Cluster: Cluster, TaskDuration: cfg.PSATaskDur, Metrics: rec,
		})
		sess := connect(psa)
		psa.SetMetricsID(sess.AppID())
		psaID = sess.AppID()
		psa.Attach(sess)
	}

	remaining := len(cfg.Jobs)
	rigids := make([]*apps.Rigid, len(cfg.Jobs))
	for i, j := range cfg.Jobs {
		i, j := i, j
		e.At(j.Submit, "replay.submit", func() {
			r := apps.NewRigid(clock.SimClock{E: e}, Cluster, j.Nodes, j.Runtime)
			// Freeze the clock at the last completion so the metrics are
			// evaluated over exactly the trace's makespan.
			r.OnEnd = func() {
				remaining--
				if remaining == 0 {
					e.Stop()
				}
			}
			sess := connect(r)
			r.Attach(sess)
			if err := r.Submit(); err != nil {
				panic(fmt.Sprintf("replay: submit job %d: %v", j.ID, err))
			}
			rigids[i] = r
		})
	}

	for remaining > 0 {
		before := e.Processed()
		e.Run(e.Now() + 3600)
		if remaining == 0 {
			break
		}
		if e.Now() > cfg.MaxSimTime {
			return nil, fmt.Errorf("experiments: replay exceeded %g s", cfg.MaxSimTime)
		}
		if e.Processed() == before {
			return nil, fmt.Errorf("experiments: replay stalled at t=%g", e.Now())
		}
	}

	res := &ReplayResult{}
	var waitSum, area float64
	for i, r := range rigids {
		res.Completed++
		wait := r.StartTime - cfg.Jobs[i].Submit
		if wait < 0 {
			wait = 0
		}
		waitSum += wait
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
		if r.EndTime > res.Makespan {
			res.Makespan = r.EndTime
		}
		area += float64(cfg.Jobs[i].Nodes) * cfg.Jobs[i].Runtime
	}
	res.MeanWait = waitSum / float64(res.Completed)
	if res.Makespan > 0 {
		res.Utilization = area / (float64(cfg.Nodes) * res.Makespan)
	}
	if psa != nil {
		res.PSAUseful = reader.Area(psaID, res.Makespan) - psa.Waste()
		if res.PSAUseful < 0 {
			res.PSAUseful = 0
		}
		if res.Makespan > 0 {
			res.UtilizationWithPSA = (area + res.PSAUseful) / (float64(cfg.Nodes) * res.Makespan)
		}
	} else {
		res.UtilizationWithPSA = res.Utilization
	}
	if math.IsNaN(res.Utilization) {
		return nil, fmt.Errorf("experiments: degenerate replay result")
	}
	return res, nil
}
