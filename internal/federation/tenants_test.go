package federation

import (
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/tenants"
	"coormv2/internal/view"
)

// TestTenantIdentitySurvivesRestart drives the DRF queue hierarchy through
// the federation: per-shard policy instances share one sealed tree, quota
// preemption recovers a guaranteed tenant's share on the shard owning its
// cluster, and crash/restart re-admission reconstructs tenant identity
// (admitShard replays the connect options on the fresh shard).
func TestTenantIdentitySurvivesRestart(t *testing.T) {
	tree := tenants.NewTree()
	tree.MustAdd("prod", tenants.Resources{cA: 6}, nil)
	tree.MustAdd("batch", nil, nil)

	e := sim.NewEngine()
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 8},
		Shards:          2,
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Recovery:        RequeueOnCrash,
		Scheduling: func(shard int) core.SchedulingPolicy {
			return tenants.NewDRF(tree)
		},
	})

	batch := &testApp{}
	batchSess := f.Connect(batch, rms.WithTenant("batch"))
	if _, err := batchSess.Request(rms.RequestSpec{
		Cluster: cA, N: 8, Duration: math.Inf(1), Type: request.Preempt,
	}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if loads := f.TenantLoads(); loads["batch"][cA] != 8 {
		t.Fatalf("batch holds %d on %s, want the full 8 before prod arrives", loads["batch"][cA], cA)
	}

	prod := &testApp{}
	prodSess := f.Connect(prod, rms.WithTenant("prod"))
	if _, err := prodSess.Request(rms.RequestSpec{
		Cluster: cA, N: 6, Duration: math.Inf(1), Type: request.NonPreempt,
	}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()

	// Quota preemption fired on the shard owning alpha and the federation
	// surfaces both sides of it: prod physically holds its guarantee, the
	// revocations are attributed to batch.
	if loads := f.TenantLoads(); loads["prod"][cA] < 6 {
		t.Fatalf("prod holds %d on %s, want ≥ its guarantee of 6 (loads: %v)", loads["prod"][cA], cA, loads)
	}
	if f.TenantPreempts()["batch"] == 0 {
		t.Fatal("no quota preemption attributed to batch")
	}
	if batch.killed != "" {
		t.Fatalf("batch session killed (%q); quota preemption revokes requests, not sessions", batch.killed)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after preemption: %v", err)
	}

	// Crash and restart the shard owning alpha: scheduler state is lost,
	// the sessions are re-admitted with their original connect options, and
	// the replayed non-preemptible request starts again under the same
	// guarantee — the policy instance was re-installed by Reset.
	shard, ok := f.Owner(cA)
	if !ok {
		t.Fatalf("no owner for %s", cA)
	}
	f.CrashShard(shard)
	f.RestartShard(shard)
	e.RunAll()

	for _, sess := range []struct {
		id   int
		want string
	}{{batchSess.AppID(), "batch"}, {prodSess.AppID(), "prod"}} {
		if got, ok := f.Shard(shard).TenantOf(sess.id); !ok || got != sess.want {
			t.Fatalf("after restart, shard %d reports tenant %q,%v for app %d, want %q",
				shard, got, ok, sess.id, sess.want)
		}
	}
	if loads := f.TenantLoads(); loads["prod"][cA] < 6 {
		t.Fatalf("prod holds %d on %s after restart, want ≥ 6 (loads: %v)", loads["prod"][cA], cA, loads)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after restart: %v", err)
	}
}
