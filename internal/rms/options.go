package rms

import (
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/view"
)

// Option configures a Server at construction. Options consolidate what
// used to be scattered knobs — the preemptible-division policy, node
// recovery, full-recompute mode, the obs registry, pool-debug panics —
// into one composable configuration surface:
//
//	s := rms.NewServerWith(clusters, clk,
//		rms.WithMetrics(rec),
//		rms.WithScheduling(tenants.NewDRF(tree)),
//		rms.WithObs(reg, "shard0"))
//
// Building a Config literal and calling NewServer remains supported; an
// Option is just a function mutating that Config.
type Option func(*Config)

// WithReschedInterval sets the §3.2 re-scheduling interval in seconds.
func WithReschedInterval(d float64) Option {
	return func(c *Config) { c.ReschedInterval = d }
}

// WithPolicy selects the preemptible division policy (default: filling).
func WithPolicy(p core.PreemptPolicy) Option {
	return func(c *Config) { c.Policy = p }
}

// WithGracePeriod sets how long an application may hold more preemptible
// resources than granted before it is killed.
func WithGracePeriod(d float64) Option {
	return func(c *Config) { c.GracePeriod = d }
}

// WithClip limits every application's non-preemptive view.
func WithClip(v view.View) Option {
	return func(c *Config) { c.Clip = v }
}

// WithMetrics attaches an allocation-metrics recorder.
func WithMetrics(m *metrics.Recorder) Option {
	return func(c *Config) { c.Metrics = m }
}

// WithObs attaches an observability registry; label prefixes the
// server's metric names and stamps its events (empty for a standalone
// RMS).
func WithObs(reg *obs.Registry, label string) Option {
	return func(c *Config) { c.Obs = reg; c.ObsLabel = label }
}

// WithFullRecompute disables incremental recomputation: every round
// recomputes from scratch (differential testing; production leaves it
// off).
func WithFullRecompute(on bool) Option {
	return func(c *Config) { c.FullRecompute = on }
}

// WithNodeRecovery selects what happens to started non-preemptible
// requests whose nodes die.
func WithNodeRecovery(p NodeRecoveryPolicy) Option {
	return func(c *Config) { c.NodeRecovery = p }
}

// WithScheduling installs an application ordering/admission policy
// (internal/tenants provides the DRF queue-hierarchy policy). A nil
// policy keeps the default connection-order FIFO.
func WithScheduling(p core.SchedulingPolicy) Option {
	return func(c *Config) { c.Scheduling = p }
}

// WithPoolDebugPanics turns node-ID pool accounting violations into
// panics (fail-stop debugging). The underlying switch is process-global;
// see Config.PoolDebugPanics.
func WithPoolDebugPanics(on bool) Option {
	return func(c *Config) { c.PoolDebugPanics = on }
}

// NewServerWith constructs a Server from the two mandatory inputs and
// functional options.
func NewServerWith(clusters map[view.ClusterID]int, clk clock.Clock, opts ...Option) *Server {
	cfg := Config{Clusters: clusters, Clock: clk}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewServer(cfg)
}

// ConnectOption configures a session at Connect/ConnectID time.
type ConnectOption func(*connectOpts)

type connectOpts struct {
	tenant string
}

// WithTenant tags the session with a tenant queue path ("org/team/q").
// Tenant-aware scheduling policies (internal/tenants) resolve the label
// against their queue tree — unknown or empty labels land in the
// "default" queue. Under the default FIFO policy the label is carried
// but has no scheduling effect, so federations can tag sessions before
// switching policies on.
func WithTenant(queue string) ConnectOption {
	return func(o *connectOpts) { o.tenant = queue }
}

// tenantKey normalizes a tenant label for accounting maps: the empty
// label files under "default", matching where tenant-aware policies
// route untagged sessions.
func tenantKey(label string) string {
	if label == "" {
		return "default"
	}
	return label
}

// TenantOf returns the tenant label a connected application was tagged
// with (possibly empty) and whether the application is connected.
func (s *Server) TenantOf(appID int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[appID]
	if sess == nil {
		return "", false
	}
	return sess.app.Tenant, true
}

// TenantLoads returns the node IDs currently held per tenant label per
// cluster (empty labels filed under "default"). It is the ground-truth
// usage figure invariant checks and experiments compare against policy
// tallies and quotas.
func (s *Server) TenantLoads() map[string]map[view.ClusterID]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[view.ClusterID]int)
	for _, sess := range s.sessions {
		key := tenantKey(sess.app.Tenant)
		m := out[key]
		if m == nil {
			m = make(map[view.ClusterID]int)
			out[key] = m
		}
		for _, r := range sess.app.Requests() {
			if len(r.NodeIDs) > 0 {
				m[r.Cluster] += len(r.NodeIDs)
			}
		}
	}
	return out
}

// TenantPreempts returns the cumulative count of quota-preemption
// revocations per tenant label.
func (s *Server) TenantPreempts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tenantPreempts))
	for k, v := range s.tenantPreempts {
		out[k] = v
	}
	return out
}

// enforceQuotaLocked asks the scheduling policy for preemption victims
// and revokes them: the request is terminated at now, its node IDs are
// returned to the pool, and the application is notified through the
// ordinary OnRequestFinished path (a revocation is indistinguishable
// from expiry — applications resubmit like after any other loss). It
// reports whether anything was revoked, so the caller can schedule a
// follow-up round that fits the relieved demand into the freed capacity.
//
// The policy nominates victims only when revoking them relieves a
// starved guaranteed queue's shortage that free headroom cannot absorb
// (see tenants.DRFPolicy.Victims), so under FIFO — or any policy that is
// not a VictimNominator — this is a single nil check per round.
func (s *Server) enforceQuotaLocked(now float64) bool {
	if s.victims == nil {
		return false
	}
	s.victimBuf = s.victims.Victims(s.sched.Info(now), s.sched.Apps(), s.victimBuf[:0])
	revoked := false
	for _, r := range s.victimBuf {
		sess := s.sessions[r.AppID]
		if sess == nil || r.Finished || !r.Started() || r.Type != request.Preempt {
			continue // nomination went stale within the round
		}
		granted := r.NAlloc
		if len(r.NodeIDs) > 0 {
			s.mustFreeLocked(r.Cluster, r.NodeIDs)
			sess.held -= len(r.NodeIDs)
			r.NodeIDs = nil
			s.recordAllocLocked(sess, now)
		}
		r.Duration = now - r.StartedAt
		if r.Duration == 0 {
			r.Duration = 1e-9 // keep a zero-length allocation representable
		}
		r.Finished = true
		revoked = true
		s.touchLocked(r.AppID)
		s.notifyFinishedLocked(sess, r.ID)
		s.tenantPreempts[tenantKey(sess.app.Tenant)]++
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.IncCounter(r.AppID, metrics.PreemptedRequests, 1)
		}
		if s.obs != nil {
			s.obs.Event(obs.Event{Time: now, Type: obs.EvPreempt, Shard: s.obsLabel,
				App: r.AppID, Cluster: string(r.Cluster), Request: int(r.ID), Value: float64(granted)})
		}
	}
	return revoked
}
