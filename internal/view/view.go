// Package view implements the paper's views (§3.1.4, §A.3): maps from a
// cluster ID to a Cluster Availability Profile (a step function of time).
// The RMS pushes two views to every application — a non-preemptive view and
// a preemptive view — and the scheduler manipulates views as scratch values
// while computing a schedule.
//
// The profiles stored in a view are immutable everywhere (see stepfunc);
// only the map itself is ever mutated. The value-returning operations (Add,
// Sub, Union, Clip, ...) treat views as immutable and return a new View —
// possibly sharing profiles with their operands. The Mut* operations are
// the mutable-accumulator mode used on scheduler scratch: they update the
// receiver's map in place, so the caller must own the map (profiles may
// still be shared freely).
package view

import (
	"fmt"
	"maps"
	"sort"
	"strings"

	"coormv2/internal/stepfunc"
)

// ClusterID identifies a cluster. The paper's evaluation uses one large
// homogeneous cluster, but the interface is multi-cluster throughout
// (requests carry a cluster ID, §3.1.1).
type ClusterID string

// View maps cluster IDs to availability profiles. A missing entry is the
// constant-zero profile.
type View map[ClusterID]*stepfunc.StepFunc

// New returns an empty view (all clusters zero).
func New() View { return View{} }

// Of builds a view from cluster/profile pairs.
func Of(pairs map[ClusterID]*stepfunc.StepFunc) View {
	v := New()
	for cid, f := range pairs {
		if f != nil && !f.IsZero() {
			v[cid] = f
		}
	}
	return v
}

// Constant returns a view in which every listed cluster has n nodes forever.
func Constant(n int, cids ...ClusterID) View {
	v := New()
	for _, cid := range cids {
		v[cid] = stepfunc.Constant(n)
	}
	return v
}

// Get returns the profile for cid (never nil; zero profile if absent or
// explicitly nil).
func (v View) Get(cid ClusterID) *stepfunc.StepFunc {
	if f, ok := v[cid]; ok && f != nil {
		return f
	}
	return stepfunc.Zero()
}

// Clusters returns the cluster IDs present in the view, sorted.
func (v View) Clusters() []ClusterID {
	out := make([]ClusterID, 0, len(v))
	for cid := range v {
		out = append(out, cid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a copy of the view (a fresh map; the immutable profiles are
// shared). maps.Clone copies the table structure directly instead of
// re-inserting every key — the merge-cache copy-on-write and the
// scheduler's fold cloning sit on hot paths.
func (v View) Clone() View {
	if v == nil {
		return New()
	}
	return maps.Clone(v)
}

// combine merges two views cluster-wise with op: first every cluster of a,
// then the clusters only b has. No intermediate key-set is materialized.
func combine(a, b View, op func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc) View {
	out := make(View, len(a)+len(b))
	for cid := range a {
		f := op(a.Get(cid), b.Get(cid))
		if !f.IsZero() {
			out[cid] = f
		}
	}
	for cid := range b {
		if _, ok := a[cid]; ok {
			continue
		}
		f := op(a.Get(cid), b.Get(cid))
		if !f.IsZero() {
			out[cid] = f
		}
	}
	return out
}

// Add returns the cluster-wise sum a + b (the paper's "+" on views).
func (v View) Add(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Add(y) })
}

// Sub returns the cluster-wise difference a − b (the paper's "−" on views).
func (v View) Sub(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Sub(y) })
}

// Union returns the cluster-wise pointwise maximum (the paper's "∪").
func (v View) Union(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Max(y) })
}

// Clip returns the cluster-wise pointwise minimum with o. It implements the
// administrator policy suggested in §3.2: limiting how much an application
// may pre-allocate by clipping its non-preemptible view.
func (v View) Clip(o View) View {
	return combine(v, o, func(x, y *stepfunc.StepFunc) *stepfunc.StepFunc { return x.Min(y) })
}

// Sum returns the cluster-wise sum of any number of views in a single k-way
// pass per cluster (see stepfunc.SumAll), instead of the len(vs)-1
// intermediate views a fold over Add would build. Nil views count as empty.
func Sum(vs ...View) View {
	out := New()
	var fs []*stepfunc.StepFunc
	for i, v := range vs {
		for cid := range v {
			if _, done := out[cid]; done {
				continue
			}
			fs = fs[:0]
			// Views before vs[i] cannot contain cid, or it would already
			// be marked done.
			for _, w := range vs[i:] {
				if f, ok := w[cid]; ok && f != nil {
					fs = append(fs, f)
				}
			}
			out[cid] = stepfunc.SumAll(fs)
		}
	}
	for cid, f := range out {
		if f.IsZero() {
			delete(out, cid)
		}
	}
	return out
}

// MutAdd adds o into v cluster-wise, mutating v's map in place. v may end
// up sharing profiles with o.
func (v View) MutAdd(o View) {
	for cid, g := range o {
		f := v.Get(cid).Add(g)
		if f.IsZero() {
			delete(v, cid)
		} else {
			v[cid] = f
		}
	}
}

// MutSub subtracts o from v cluster-wise, mutating v's map in place.
func (v View) MutSub(o View) {
	for cid, g := range o {
		f := v.Get(cid).Sub(g)
		if f.IsZero() {
			delete(v, cid)
		} else {
			v[cid] = f
		}
	}
}

// MutClampMin clamps every profile of v below at lo, in place.
func (v View) MutClampMin(lo int) {
	for cid, f := range v {
		g := f.ClampMin(lo)
		if g.IsZero() {
			delete(v, cid)
		} else if g != f {
			v[cid] = g
		}
	}
}

// MutAddRect adds a rectangle of n nodes on [t0, t0+dur) to cluster cid,
// mutating v's map in place. Unlike the immutable AddRect it does not clone
// the map, which makes accumulating many rectangles linear instead of
// quadratic. n may be negative (used by the scheduler to retire
// allocations from an availability accumulator).
func (v View) MutAddRect(cid ClusterID, t0, dur float64, n int) {
	f := v.Get(cid).AddRect(t0, dur, n)
	if f.IsZero() {
		delete(v, cid)
	} else {
		v[cid] = f
	}
}

// ClampMin returns the view with every profile clamped below at lo
// (typically 0, to present applications only non-negative availability).
// If no profile changes, v itself is returned.
func (v View) ClampMin(lo int) View {
	return v.transformed(func(f *stepfunc.StepFunc) *stepfunc.StepFunc { return f.ClampMin(lo) })
}

// TrimBefore returns the view with every profile's pre-t history replaced
// by its value at t (see stepfunc.TrimBefore). If no profile changes, v
// itself is returned.
func (v View) TrimBefore(t float64) View {
	return v.transformed(func(f *stepfunc.StepFunc) *stepfunc.StepFunc { return f.TrimBefore(t) })
}

// transformed applies op to every profile, cloning the map lazily on the
// first change; if op leaves every profile identical, v itself is returned
// and nothing is allocated.
func (v View) transformed(op func(*stepfunc.StepFunc) *stepfunc.StepFunc) View {
	var out View // nil until a profile changes
	for cid, f := range v {
		g := op(f)
		if g == f {
			continue
		}
		if out == nil {
			out = v.Clone()
		}
		if g.IsZero() {
			delete(out, cid)
		} else {
			out[cid] = g
		}
	}
	if out == nil {
		return v
	}
	return out
}

// AddRect returns the view with a rectangle of n nodes on [t0, t0+dur)
// added on cluster cid. It is Algorithm 1's
// "Vo ← Vo + {r.cid : [(r.scheduledAt, 0), (r.duration, r.nalloc)]}".
func (v View) AddRect(cid ClusterID, t0, dur float64, n int) View {
	out := v.Clone()
	out.MutAddRect(cid, t0, dur, n)
	return out
}

// Alloc returns the node-count that can be allocated on cluster cid during
// [t0, t0+dur) without exceeding the view, capped at want. It implements the
// paper's alloc() (§A.3), used to compute nalloc for preemptible requests.
// Negative availability counts as zero.
func (v View) Alloc(cid ClusterID, want int, t0, dur float64) int {
	if want <= 0 {
		return 0
	}
	min := v.Get(cid).MinOn(t0, t0+dur)
	if min > want {
		return want
	}
	if min < 0 {
		return 0
	}
	return min
}

// FindHole returns the first time >= after at which n nodes are available on
// cluster cid for dur seconds (the paper's findHole, §A.3). It returns +Inf
// if the request can never be served from this view.
func (v View) FindHole(cid ClusterID, n int, dur, after float64) float64 {
	return v.Get(cid).FindHole(n, dur, after)
}

// Equal reports whether two views are identical. The RMS uses it to push
// view updates only when something actually changed.
func (v View) Equal(o View) bool {
	for cid := range v {
		if !v.Get(cid).Equal(o.Get(cid)) {
			return false
		}
	}
	for cid := range o {
		if _, ok := v[cid]; !ok && !o.Get(cid).IsZero() {
			return false
		}
	}
	return true
}

// NonNegative reports whether every profile in the view is >= 0 everywhere.
// The scheduler asserts this on the availability views it exposes.
func (v View) NonNegative() bool {
	for _, f := range v {
		if !f.NonNegative() {
			return false
		}
	}
	return true
}

// String renders the view in the paper's notation, e.g.
// "{a: [(3600, 4) (3600, 3) (inf, 0)], b: [(inf, 6)]}".
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, cid := range v.Clusters() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", cid, v[cid])
	}
	b.WriteByte('}')
	return b.String()
}
