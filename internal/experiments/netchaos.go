package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"coormv2/internal/clock"
	"coormv2/internal/netchaos"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/transport"
	"coormv2/internal/view"
)

// NetChaosConfig parametrizes the wire-resilience scenario: a sequential
// job stream driven over a real TCP connection through a netchaos proxy
// that severs, partitions, half-opens, and delays the wire on a seeded
// schedule. Unlike the simulator experiments this one runs on the wall
// clock — it measures the actual transport, not a model of it.
type NetChaosConfig struct {
	// Seed drives the fault plan and the client's backoff jitter.
	Seed int64
	// Jobs is the number of sequential request→start→done cycles.
	Jobs int
	// Resume selects the recovery mode: true gives the server a grace
	// window and the client reconnect+resume; false is the kill-and-replay
	// baseline — a dropped connection kills the session and the driver
	// re-dials from scratch, resubmitting the interrupted job.
	Resume bool
	// Faults is the seeded wire-fault schedule (zero MeanBetween/Horizon
	// disables faults).
	Faults netchaos.Config
	// Grace is the server-side resume window in resume mode.
	Grace time.Duration
	// JobGap paces the workload so it spans the fault schedule instead of
	// finishing before the first fault fires (0 = Faults.Horizon / Jobs).
	JobGap time.Duration
}

// NetChaosResult is one scenario run's outcome.
type NetChaosResult struct {
	Completed  int     // jobs that finished (must equal cfg.Jobs)
	Reconnects int     // transparent session resumes (resume mode)
	Resubmits  int     // sessions re-dialed from scratch (replay mode)
	DupStarts  int     // start notifications delivered twice (must be 0)
	LostAcks   int     // acked requests that never started (must be 0)
	RecoverP50 float64 // median recovery seconds (resume or re-dial)
	RecoverP99 float64
	Elapsed    float64 // wall seconds for the whole workload
	TraceHash  uint64  // fingerprint of the fault schedule (seed-stable)
	Snapshot   *obs.Snapshot
}

// netApp tracks starts with per-request counts so duplicates are visible.
type netApp struct {
	mu     sync.Mutex
	starts map[request.ID]int
	killed bool
}

func newNetApp() *netApp { return &netApp{starts: make(map[request.ID]int)} }

func (a *netApp) OnViews(np, p view.View) {}

func (a *netApp) OnStart(id request.ID, ids []int) {
	a.mu.Lock()
	a.starts[id]++
	a.mu.Unlock()
}

func (a *netApp) OnKill(reason string) {
	a.mu.Lock()
	a.killed = true
	a.mu.Unlock()
}

func (a *netApp) started(id request.ID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.starts[id] > 0
}

func (a *netApp) dupStarts() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, c := range a.starts {
		if c > 1 {
			n++
		}
	}
	return n
}

// RunNetChaos drives the scenario over real sockets and returns the
// measured outcome.
func RunNetChaos(cfg NetChaosConfig) (*NetChaosResult, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 8
	}
	reg := obs.NewRegistry()
	r := rms.NewServer(rms.Config{
		Clusters:        map[view.ClusterID]int{"c0": 16},
		ReschedInterval: 0.01,
		Clock:           clock.NewRealClock(),
	})
	srv := transport.NewServer(r)
	srv.Logf = func(string, ...any) {}
	srv.Obs = reg
	if cfg.Resume {
		srv.Grace = cfg.Grace
		if srv.Grace <= 0 {
			srv.Grace = 10 * time.Second
		}
	}
	backendAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve()
	defer srv.Close()

	p := netchaos.NewProxy(backendAddr)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer p.Close()

	plan := netchaos.Plan(cfg.Faults)
	res := &NetChaosResult{TraceHash: netchaos.HashTrace(netchaos.TraceOf(plan))}

	opts := transport.Options{
		Reconnect:         cfg.Resume,
		ReconnectWindow:   30 * time.Second,
		BackoffBase:       5 * time.Millisecond,
		BackoffMax:        100 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		CallTimeout:       30 * time.Second,
		Seed:              cfg.Seed,
		Obs:               reg,
	}
	app := newNetApp()
	c, err := transport.DialOptions(addr, app, opts)
	if err != nil {
		return nil, err
	}
	defer func() { c.Close() }()

	p.Start(plan, 2*time.Millisecond)
	start := time.Now()
	var redial []float64 // replay-mode recovery times

	// redialClient tears the dead client down and dials a fresh session,
	// recording the recovery time — the kill-and-replay baseline.
	redialClient := func() error {
		t0 := time.Now()
		c.Close()
		deadline := time.Now().Add(30 * time.Second)
		for {
			app = newNetApp()
			c, err = transport.DialOptions(addr, app, opts)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("netchaos: re-dial: %w", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		redial = append(redial, time.Since(t0).Seconds())
		res.Resubmits++
		return nil
	}

	for job := 0; job < cfg.Jobs; job++ {
		for done := false; !done; {
			id, err := c.Request(rms.RequestSpec{
				Cluster: "c0", N: 1, Duration: 3600, Type: request.NonPreempt,
			})
			if err != nil {
				if cfg.Resume {
					return nil, fmt.Errorf("netchaos: job %d lost in resume mode: %w", job, err)
				}
				if err := redialClient(); err != nil {
					return nil, err
				}
				continue // resubmit the job on the fresh session
			}
			deadline := time.Now().Add(30 * time.Second)
			lost := false
			for !app.started(id) && !lost {
				if !cfg.Resume {
					select {
					case <-c.Dead():
						// The ack survived but the session didn't: without
						// resume, this acknowledged request is simply lost.
						lost = true
						continue
					default:
					}
				}
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("netchaos: job %d (req %d) never started", job, id)
				}
				time.Sleep(2 * time.Millisecond)
			}
			if lost {
				res.LostAcks++
				if err := redialClient(); err != nil {
					return nil, err
				}
				continue
			}
			if err := c.Done(id, nil); err != nil {
				if cfg.Resume {
					return nil, fmt.Errorf("netchaos: done(%d): %w", id, err)
				}
				if err := redialClient(); err != nil {
					return nil, err
				}
				continue // the work ran; resubmission is the baseline's cost
			}
			res.Completed++
			done = true
		}
		gap := cfg.JobGap
		if gap <= 0 && cfg.Faults.Horizon > 0 {
			gap = time.Duration(cfg.Faults.Horizon / float64(cfg.Jobs) * float64(time.Second))
		}
		time.Sleep(gap)
	}
	res.Elapsed = time.Since(start).Seconds()
	res.Reconnects = c.Reconnects()
	res.DupStarts = app.dupStarts()

	if cfg.Resume {
		h := reg.Hist("transport.reconnect_seconds")
		if h.Count() > 0 {
			res.RecoverP50 = h.Quantile(0.5)
			res.RecoverP99 = h.Quantile(0.99)
		}
	} else if len(redial) > 0 {
		sort.Float64s(redial)
		res.RecoverP50 = redial[len(redial)/2]
		res.RecoverP99 = redial[(len(redial)*99)/100]
	}
	snap := reg.Snapshot(res.Elapsed)
	res.Snapshot = &snap
	return res, nil
}
