package request

import (
	"math"
	"strings"
	"testing"
)

func mk(id ID, how Relation, parent *Request) *Request {
	return New(id, 1, "c0", 4, 100, NonPreempt, how, parent)
}

func TestTypeString(t *testing.T) {
	if PreAlloc.String() != "PA" || NonPreempt.String() != "¬P" || Preempt.String() != "P" {
		t.Error("Type strings wrong")
	}
	if !strings.Contains(Type(9).String(), "9") {
		t.Error("unknown type string")
	}
}

func TestRelationString(t *testing.T) {
	if Free.String() != "FREE" || Coalloc.String() != "COALLOC" || Next.String() != "NEXT" {
		t.Error("Relation strings wrong")
	}
	if !strings.Contains(Relation(9).String(), "9") {
		t.Error("unknown relation string")
	}
}

func TestNewDefaults(t *testing.T) {
	r := mk(1, Free, nil)
	if r.Started() {
		t.Error("new request should not be started (StartedAt NaN)")
	}
	if !math.IsInf(r.ScheduledAt, 1) {
		t.Error("new request should be scheduled at infinity until placed")
	}
	if r.Finished {
		t.Error("new request should not be finished")
	}
}

func TestStartedActiveEnded(t *testing.T) {
	r := mk(1, Free, nil)
	if r.Active() || r.Ended(0) {
		t.Error("unstarted request cannot be active or ended")
	}
	r.StartedAt = 10
	if !r.Started() || !r.Active() {
		t.Error("started request should be active")
	}
	if r.End() != 110 {
		t.Errorf("End = %v, want 110", r.End())
	}
	if r.Ended(50) {
		t.Error("should not be ended mid-allocation")
	}
	if !r.Ended(110) {
		t.Error("should be ended at StartedAt+Duration")
	}
	r.Finished = true
	if r.Active() || !r.Ended(50) {
		t.Error("finished request is ended regardless of time")
	}
}

func TestEndUsesScheduledWhenNotStarted(t *testing.T) {
	r := mk(1, Free, nil)
	r.ScheduledAt = 42
	if r.End() != 142 {
		t.Errorf("End = %v, want 142", r.End())
	}
}

func TestValidate(t *testing.T) {
	ok := mk(1, Free, nil)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	infDur := mk(2, Free, nil)
	infDur.Duration = math.Inf(1)
	if err := infDur.Validate(); err != nil {
		t.Errorf("infinite duration should be allowed (PSA requests): %v", err)
	}

	cases := map[string]func(*Request){
		"zero nodes":     func(r *Request) { r.N = 0 },
		"negative nodes": func(r *Request) { r.N = -3 },
		"zero duration":  func(r *Request) { r.Duration = 0 },
		"nan duration":   func(r *Request) { r.Duration = math.NaN() },
		"empty cluster":  func(r *Request) { r.Cluster = "" },
		"orphan coalloc": func(r *Request) { r.RelatedHow = Coalloc; r.RelatedTo = nil },
		"orphan next":    func(r *Request) { r.RelatedHow = Next; r.RelatedTo = nil },
		"self reference": func(r *Request) { r.RelatedHow = Next; r.RelatedTo = r },
		"cross-app link": func(r *Request) { p := mk(9, Free, nil); p.AppID = 99; r.RelatedHow = Next; r.RelatedTo = p },
	}
	for name, mutate := range cases {
		r := mk(3, Free, nil)
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestString(t *testing.T) {
	p := mk(1, Free, nil)
	c := mk(2, Next, p)
	s := c.String()
	for _, want := range []string{"NEXT", "¬P", "n=4", "app=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSetAddRemoveContains(t *testing.T) {
	s := NewSet()
	a, b := mk(1, Free, nil), mk(2, Free, nil)
	s.Add(a)
	s.Add(b)
	if s.Len() != 2 || !s.Contains(a) || !s.Contains(b) {
		t.Fatal("Add/Contains broken")
	}
	if !s.Remove(a) {
		t.Fatal("Remove returned false for member")
	}
	if s.Remove(a) {
		t.Fatal("Remove returned true for non-member")
	}
	if s.Len() != 1 || s.Contains(a) {
		t.Fatal("Remove did not remove")
	}
}

func TestSetByID(t *testing.T) {
	s := NewSet()
	a := mk(7, Free, nil)
	s.Add(a)
	if s.ByID(7) != a {
		t.Error("ByID failed")
	}
	if s.ByID(8) != nil {
		t.Error("ByID should return nil for missing")
	}
}

func TestRootsAndChildren(t *testing.T) {
	// Tree per Fig. 12: root <- NEXT child <- COALLOC grandchild; plus an
	// independent root, plus a request related to something outside the set.
	s := NewSet()
	root := mk(1, Free, nil)
	child := mk(2, Next, root)
	grand := mk(3, Coalloc, child)
	lone := mk(4, Free, nil)
	outside := mk(99, Free, nil) // never added to the set
	crossRef := mk(5, Next, outside)
	for _, r := range []*Request{root, child, grand, lone, crossRef} {
		s.Add(r)
	}

	roots := s.Roots()
	if len(roots) != 3 {
		t.Fatalf("Roots = %v, want 3 roots", roots)
	}
	wantRoots := map[ID]bool{1: true, 4: true, 5: true}
	for _, r := range roots {
		if !wantRoots[r.ID] {
			t.Errorf("unexpected root %v", r)
		}
	}

	ch := s.Children(root)
	if len(ch) != 1 || ch[0] != child {
		t.Errorf("Children(root) = %v", ch)
	}
	ch = s.Children(child)
	if len(ch) != 1 || ch[0] != grand {
		t.Errorf("Children(child) = %v", ch)
	}
	if len(s.Children(grand)) != 0 {
		t.Error("leaf should have no children")
	}
}

func TestGC(t *testing.T) {
	s := NewSet()
	old := mk(1, Free, nil)
	old.StartedAt = 0
	old.Duration = 10 // ends at 10
	live := mk(2, Free, nil)
	live.StartedAt = 5
	live.Duration = 100
	pendingChild := mk(3, Next, old) // keeps old alive
	s.Add(old)
	s.Add(live)
	s.Add(pendingChild)

	s.GC(50, nil)
	if !s.Contains(old) {
		t.Fatal("GC removed a request that a pending child references")
	}

	// Once the child starts and ends, both can go.
	pendingChild.StartedAt = 10
	pendingChild.Duration = 5 // ends at 15
	s.GC(50, nil)
	if s.Contains(old) || s.Contains(pendingChild) {
		t.Error("GC should remove finished chain")
	}
	if !s.Contains(live) {
		t.Error("GC removed a live request")
	}
}

func TestGCDoneRequests(t *testing.T) {
	s := NewSet()
	r := mk(1, Free, nil)
	r.StartedAt = 0
	r.Finished = true
	s.Add(r)
	s.GC(1, nil)
	if s.Len() != 0 {
		t.Error("finished request should be collected")
	}
}
