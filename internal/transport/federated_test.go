package transport

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/federation"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

const (
	cEast = view.ClusterID("east")
	cWest = view.ClusterID("west")
)

// startFederatedServer runs a 2-shard federation behind the TCP transport.
func startFederatedServer(t *testing.T, workers int) (*federation.Federator, string) {
	t.Helper()
	f := federation.New(federation.Config{
		Clusters:        map[view.ClusterID]int{cEast: 16, cWest: 16},
		Shards:          2,
		ReschedInterval: 0.01,
		Clock:           clock.NewRealClock(),
	})
	srv := NewFederatedServer(f)
	srv.Logf = func(string, ...any) {}
	srv.Workers = workers
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return f, addr
}

func TestFederatedRoutingOverTCP(t *testing.T) {
	f, addr := startFederatedServer(t, 0)
	if f.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", f.NumShards())
	}
	app := newClientApp()
	c, err := Dial(addr, app)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Both clusters are visible in the merged federated view.
	app.waitFor(t, "initial views", func() bool { return app.views > 0 })

	// Requests on clusters owned by different shards, one session.
	idE, err := c.Request(rms.RequestSpec{Cluster: cEast, N: 3, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	idW, err := c.Request(rms.RequestSpec{Cluster: cWest, N: 5, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if idE == idW {
		t.Fatalf("federated request IDs collide: %d", idE)
	}
	app.waitFor(t, "both starts", func() bool {
		return len(app.starts[idE]) == 3 && len(app.starts[idW]) == 5
	})
	if err := c.Done(idE, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Done(idW, nil); err != nil {
		t.Fatal(err)
	}
	// Cross-shard relations are accepted over the wire too: the federation's
	// reservation coordinator places a hold instead of rejecting.
	id2, err := c.Request(rms.RequestSpec{Cluster: cEast, N: 1, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(rms.RequestSpec{Cluster: cWest, N: 1, Duration: 3600, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: id2}); err != nil {
		t.Errorf("cross-shard relation over the wire = %v, want reservation acceptance", err)
	}
}

// TestWorkerPoolServesMoreConnsThanWorkers verifies the bounded dispatch
// pool: 2 workers serve 5 concurrent sessions (connections beyond the bound
// queue until a worker frees up when an earlier client disconnects).
func TestWorkerPoolServesMoreConnsThanWorkers(t *testing.T) {
	_, addr := startFederatedServer(t, 2)
	clusters := []view.ClusterID{cEast, cWest}
	for i := 0; i < 5; i++ {
		app := newClientApp()
		c, err := Dial(addr, app)
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		id, err := c.Request(rms.RequestSpec{Cluster: clusters[i%2], N: 1, Duration: math.Inf(1), Type: request.Preempt})
		if err != nil {
			t.Fatalf("conn %d request: %v", i, err)
		}
		if err := c.Done(id, nil); err != nil {
			t.Fatalf("conn %d done: %v", i, err)
		}
		// Free the worker before the next client needs it.
		c.Close()
	}
}

// TestWorkerPoolConcurrentSessions hammers a pooled federated server from
// parallel clients; meaningful under -race.
func TestWorkerPoolConcurrentSessions(t *testing.T) {
	_, addr := startFederatedServer(t, 4)
	clusters := []view.ClusterID{cEast, cWest}
	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			app := newClientApp()
			c, err := Dial(addr, app)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				id, err := c.Request(rms.RequestSpec{Cluster: clusters[i%2], N: 1, Duration: math.Inf(1), Type: request.Preempt})
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if err := c.Done(id, nil); err != nil {
					errs <- fmt.Errorf("client %d done: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
