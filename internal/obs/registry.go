package obs

import (
	"encoding/json"
	"sort"
	"sync"
)

// CounterFunc returns a point-in-time view of a named counter group
// (e.g. a shard's SchedStats). Called under no obs lock; the source is
// responsible for its own synchronization.
type CounterFunc func() map[string]int64

// Registry is the per-process (or per-experiment) observability root:
// named histograms, pluggable counter sources, and one shared event
// ring. A nil *Registry is a valid "disabled" registry — Hist returns
// nil (whose Record no-ops) and Event discards.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	counters map[string]CounterFunc
	ring     *Ring
}

// DefaultRingCap bounds the shared event ring of a NewRegistry.
const DefaultRingCap = 2048

// NewRegistry returns an enabled registry with a DefaultRingCap event
// ring.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		counters: make(map[string]CounterFunc),
		ring:     NewRing(DefaultRingCap),
	}
}

// Hist returns the named histogram, creating it on first use. Call
// sites cache the pointer and record through it without further map
// lookups. Returns nil on a nil registry.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterCounters installs (or replaces) a counter source under a
// group name; Snapshot flattens its keys as "<group>.<key>". No-op on a
// nil registry.
func (r *Registry) RegisterCounters(group string, fn CounterFunc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[group] = fn
	r.mu.Unlock()
}

// Event appends one event to the shared ring. No-op on a nil registry.
func (r *Registry) Event(e Event) {
	if r == nil {
		return
	}
	r.ring.Add(e)
}

// Events returns the retained event ring oldest-first (nil on a nil
// registry).
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.ring.Events()
}

// Snapshot is the unified point-in-time view of every registered
// counter and histogram plus the recent event ring. Map keys are sorted
// by encoding/json, so two snapshots with identical contents marshal to
// identical bytes.
type Snapshot struct {
	Time        float64             `json:"time"`
	Counters    map[string]int64    `json:"counters"`
	Histograms  map[string]HistStat `json:"histograms"`
	Events      []Event             `json:"events,omitempty"`
	EventsTotal uint64              `json:"events_total"`
}

// Snapshot captures the registry at clock time now. Counter sources are
// invoked outside the registry lock.
func (r *Registry) Snapshot(now float64) Snapshot {
	snap := Snapshot{
		Time:       now,
		Counters:   map[string]int64{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	sources := make(map[string]CounterFunc, len(r.counters))
	for g, fn := range r.counters {
		sources[g] = fn
	}
	r.mu.Unlock()

	for name, h := range hists {
		snap.Histograms[name] = h.Stat()
	}
	for group, fn := range sources {
		for k, v := range fn() {
			snap.Counters[group+"."+k] = v
		}
	}
	snap.Events = r.ring.Events()
	snap.EventsTotal = r.ring.Total()
	return snap
}

// JSON renders the snapshot with stable, human-readable encoding.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// sortedKeys returns the sorted key set of a string-keyed map — the
// deterministic iteration order used by every text encoder here.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
