package rms

import (
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

const (
	cA = view.ClusterID("alpha")
	cB = view.ClusterID("beta")
)

func newTwoClusterServer() (*sim.Engine, *Server) {
	e := sim.NewEngine()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 4},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
	})
	return e, s
}

func TestMultiClusterIndependentAllocation(t *testing.T) {
	e, s := newTwoClusterServer()
	app := &testApp{}
	app.sess = s.Connect(app)
	ida, err := app.sess.Request(RequestSpec{Cluster: cA, N: 8, Duration: 1000, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	idb, err := app.sess.Request(RequestSpec{Cluster: cB, N: 4, Duration: 1000, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if len(app.starts) != 2 {
		t.Fatalf("starts = %v", app.starts)
	}
	// Full allocation on both clusters simultaneously: capacity is
	// per-cluster, not global.
	for _, st := range app.starts {
		switch st.id {
		case ida:
			if len(st.ids) != 8 {
				t.Errorf("alpha allocation = %v", st.ids)
			}
		case idb:
			if len(st.ids) != 4 {
				t.Errorf("beta allocation = %v", st.ids)
			}
		}
	}
}

func TestMultiClusterViewsPerCluster(t *testing.T) {
	e, s := newTwoClusterServer()
	holder := &testApp{}
	holder.sess = s.Connect(holder)
	_, _ = holder.sess.Request(RequestSpec{Cluster: cA, N: 6, Duration: 1000, Type: request.NonPreempt})
	e.Run(3)

	watcher := &testApp{}
	watcher.sess = s.Connect(watcher)
	e.Run(6)
	np, _ := watcher.lastViews(t)
	if got := np.Get(cA).Value(s.Now()); got != 2 {
		t.Errorf("alpha availability = %d, want 2", got)
	}
	if got := np.Get(cB).Value(s.Now()); got != 4 {
		t.Errorf("beta availability = %d, want 4 (untouched)", got)
	}
}

func TestMultiClusterPreemptibleIsolation(t *testing.T) {
	// A preemptible app on beta must be unaffected by non-preemptible load
	// on alpha.
	e, s := newTwoClusterServer()
	p := &testApp{}
	p.sess = s.Connect(p)
	pid, _ := p.sess.Request(RequestSpec{Cluster: cB, N: 4, Duration: math.Inf(1), Type: request.Preempt})
	e.Run(3)

	r := &testApp{}
	r.sess = s.Connect(r)
	_, _ = r.sess.Request(RequestSpec{Cluster: cA, N: 8, Duration: 100, Type: request.NonPreempt})
	e.Run(6)

	var held []int
	for _, st := range p.starts {
		if st.id == pid {
			held = st.ids
		}
	}
	if len(held) != 4 {
		t.Fatalf("preemptible allocation on beta = %v", held)
	}
	// No revocation: the preemptive view on beta is still 4.
	_, pv := p.lastViews(t)
	if got := pv.Get(cB).Value(s.Now()); got != 4 {
		t.Errorf("beta preemptive view = %d, want 4", got)
	}
}

func TestMultiClusterCoallocAcrossClusters(t *testing.T) {
	// COALLOC constrains start times, not clusters: an application can
	// co-allocate resources on two clusters (same start).
	e, s := newTwoClusterServer()
	app := &testApp{}
	app.sess = s.Connect(app)
	ra, err := app.sess.Request(RequestSpec{Cluster: cA, N: 4, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := app.sess.Request(RequestSpec{Cluster: cB, N: 2, Duration: 100,
		Type: request.NonPreempt, RelatedHow: request.Coalloc, RelatedTo: ra})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if len(app.starts) != 2 {
		t.Fatalf("starts = %v", app.starts)
	}
	_ = rb
}
