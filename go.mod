module coormv2

go 1.24
