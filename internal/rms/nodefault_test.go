package rms

import (
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// nodeApp is a testApp that also observes finishes, reaps and node failures.
type nodeApp struct {
	testApp
	finished []request.ID
	reaped   []request.ID
	failures []NodeFailure
}

func (a *nodeApp) OnRequestFinished(id request.ID)   { a.finished = append(a.finished, id) }
func (a *nodeApp) OnRequestsReaped(ids []request.ID) { a.reaped = append(a.reaped, ids...) }
func (a *nodeApp) OnNodeFailure(ev NodeFailure)      { a.failures = append(a.failures, ev) }

func newNodeFaultServer(t *testing.T, nodes int, pol NodeRecoveryPolicy) (*sim.Engine, *Server) {
	t.Helper()
	e := sim.NewEngine()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{c0: nodes},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		NodeRecovery:    pol,
	})
	return e, s
}

func mustCheck(t *testing.T, s *Server) {
	t.Helper()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestFailFreeNodeShrinksCapacity(t *testing.T) {
	e, s := newNodeFaultServer(t, 10, KillOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	e.RunAll()

	rep, err := s.FailNodes(c0, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Capacity != 8 || rep.Killed != 0 || rep.Requeued != 0 || rep.Reduced != 0 {
		t.Fatalf("report = %+v, want capacity 8 and no affected requests", rep)
	}
	mustCheck(t, s)
	e.RunAll()
	// The next rounds plan against 8 nodes: a full-width request fills the
	// degraded cluster exactly and never touches a dead ID.
	id, err := app.sess.Request(RequestSpec{Cluster: c0, N: 8, Duration: 5, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(app.starts) != 1 || app.starts[0].id != id {
		t.Fatalf("starts = %v, want the 8-wide request started", app.starts)
	}
	for _, nid := range app.starts[0].ids {
		if nid == 3 || nid == 7 {
			t.Fatalf("allocation %v includes a dead node", app.starts[0].ids)
		}
	}
	mustCheck(t, s)
}

func TestFailNodesKillPolicy(t *testing.T) {
	e, s := newNodeFaultServer(t, 10, KillOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	id, err := app.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 1000, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if len(app.starts) != 1 {
		t.Fatal("request did not start")
	}
	victim := app.starts[0].ids[0]

	rep, err := s.FailNodes(c0, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Killed != 1 || rep.Capacity != 9 {
		t.Fatalf("report = %+v, want 1 killed, capacity 9", rep)
	}
	mustCheck(t, s)
	// Kill is a reap without a preceding finish: the lost-work signal.
	if len(app.finished) != 0 {
		t.Errorf("finished = %v, want none (killed, not completed)", app.finished)
	}
	if len(app.reaped) != 1 || app.reaped[0] != id {
		t.Errorf("reaped = %v, want [%d]", app.reaped, id)
	}
	if len(app.failures) != 1 || app.failures[0].Action != NodeFaultKilled {
		t.Fatalf("failures = %+v, want one killed event", app.failures)
	}
	if got := app.failures[0].LostIDs; len(got) != 1 || got[0] != victim {
		t.Errorf("LostIDs = %v, want [%d]", got, victim)
	}
	// The three survivors went back to the pool: 10 − 1 failed − 0 held.
	if got := s.pools[c0].available(); got != 9 {
		t.Errorf("available = %d, want 9", got)
	}
	e.RunAll()
	mustCheck(t, s)
}

func TestFailNodesRequeuePolicy(t *testing.T) {
	e, s := newNodeFaultServer(t, 4, RequeueOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	id, err := app.sess.Request(RequestSpec{Cluster: c0, N: 2, Duration: 50, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if len(app.starts) != 1 {
		t.Fatal("request did not start")
	}
	victim := app.starts[0].ids[0]

	rep, err := s.FailNodes(c0, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeued != 1 || rep.Capacity != 3 {
		t.Fatalf("report = %+v, want 1 requeued, capacity 3", rep)
	}
	mustCheck(t, s)
	if len(app.failures) != 1 || app.failures[0].Action != NodeFaultRequeued {
		t.Fatalf("failures = %+v, want one requeued event", app.failures)
	}
	e.RunAll()
	// The re-run got a fresh 2-node allocation on the 3 surviving nodes and
	// ran to completion.
	if len(app.starts) != 2 {
		t.Fatalf("starts = %v, want a re-start after the requeue", app.starts)
	}
	if app.starts[1].id != id {
		t.Errorf("re-start id = %d, want %d (same request)", app.starts[1].id, id)
	}
	for _, nid := range app.starts[1].ids {
		if nid == victim {
			t.Fatalf("re-run allocation %v includes the dead node", app.starts[1].ids)
		}
	}
	if len(app.finished) != 1 || app.finished[0] != id {
		t.Errorf("finished = %v, want [%d]", app.finished, id)
	}
	mustCheck(t, s)
}

func TestFailNodesCooperativeReducesForHandlers(t *testing.T) {
	e, s := newNodeFaultServer(t, 10, CooperativeOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	if _, err := app.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 1000, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	victim := app.starts[0].ids[1]

	rep, err := s.FailNodes(c0, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reduced != 1 {
		t.Fatalf("report = %+v, want 1 reduced", rep)
	}
	mustCheck(t, s)
	if len(app.failures) != 1 {
		t.Fatal("no node-failure notification")
	}
	ev := app.failures[0]
	if ev.Action != NodeFaultReduced {
		t.Fatalf("action = %v, want reduced", ev.Action)
	}
	if len(ev.Remaining) != 3 {
		t.Errorf("remaining = %v, want the 3 survivors", ev.Remaining)
	}
	for _, nid := range ev.Remaining {
		if nid == victim {
			t.Errorf("remaining %v includes the dead node", ev.Remaining)
		}
	}
	e.RunAll()
	mustCheck(t, s)
}

func TestFailNodesCooperativeFallsBackToRequeue(t *testing.T) {
	// testApp does not implement NodeFailureHandler: nobody would ever act
	// on a reduced allocation, so the server requeues instead.
	e, s := newNodeFaultServer(t, 4, CooperativeOnNodeFailure)
	app := &testApp{}
	app.sess = s.Connect(app)
	if _, err := app.sess.Request(RequestSpec{Cluster: c0, N: 2, Duration: 30, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	victim := app.starts[0].ids[0]
	rep, err := s.FailNodes(c0, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeued != 1 || rep.Reduced != 0 {
		t.Fatalf("report = %+v, want the non-cooperating app requeued", rep)
	}
	mustCheck(t, s)
	e.RunAll()
	if len(app.starts) != 2 {
		t.Fatalf("starts = %v, want a re-start", app.starts)
	}
	mustCheck(t, s)
}

func TestFailNodesPreemptAlwaysReduced(t *testing.T) {
	// Revocation is within the preemptible contract: even under the kill
	// policy a preemptible allocation is reduced, never killed.
	e, s := newNodeFaultServer(t, 10, KillOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	if _, err := app.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if len(app.starts) != 1 {
		t.Fatal("preemptible request did not start")
	}
	victim := app.starts[0].ids[0]
	rep, err := s.FailNodes(c0, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reduced != 1 || rep.Killed != 0 {
		t.Fatalf("report = %+v, want the preemptible request reduced", rep)
	}
	if len(app.failures) != 1 || app.failures[0].Action != NodeFaultReduced {
		t.Fatalf("failures = %+v, want one reduced event", app.failures)
	}
	e.RunAll()
	mustCheck(t, s)
}

func TestRecoverNodesRestoresCapacity(t *testing.T) {
	e, s := newNodeFaultServer(t, 4, KillOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	e.RunAll()
	if _, err := s.FailNodes(c0, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, s)
	if got := s.FailedNodeIDs(c0); len(got) != 3 {
		t.Fatalf("failed IDs = %v, want 3", got)
	}
	rep, err := s.RecoverNodes(c0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Capacity != 3 {
		t.Fatalf("capacity = %d, want 3", rep.Capacity)
	}
	mustCheck(t, s)
	if got := s.FailedNodeIDs(c0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("failed IDs = %v, want [0]", got)
	}
	// The recovered capacity is schedulable again.
	id, err := app.sess.Request(RequestSpec{Cluster: c0, N: 3, Duration: 5, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(app.starts) != 1 || app.starts[0].id != id {
		t.Fatalf("starts = %v, want the 3-wide request started", app.starts)
	}
	mustCheck(t, s)
}

func TestFailNodesValidation(t *testing.T) {
	e, s := newNodeFaultServer(t, 4, KillOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	e.RunAll()

	if _, err := s.FailNodes(c0, []int{4}); err == nil {
		t.Error("out-of-range node should error")
	}
	if _, err := s.FailNodes(c0, []int{1, 1}); err == nil {
		t.Error("duplicate node should error")
	}
	if _, err := s.FailNodes("nope", []int{0}); err == nil {
		t.Error("unknown cluster should error")
	}
	if _, err := s.RecoverNodes(c0, []int{0}); err == nil {
		t.Error("recovering an up node should error")
	}
	// Failed validation must leave the server untouched.
	if got := s.pools[c0].capacity(); got != 4 {
		t.Errorf("capacity after rejected calls = %d, want 4", got)
	}
	if _, err := s.FailNodes(c0, []int{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailNodes(c0, []int{2}); err == nil {
		t.Error("failing a down node should error")
	}
	mustCheck(t, s)
}

func TestFailNodesNextHandOverSurvivorsStayParked(t *testing.T) {
	// A NEXT update parks the finished parent's IDs for the child. Nodes
	// dying in the parked window are stripped silently: the child inherits
	// the survivors and tops up from the pool.
	e, s := newNodeFaultServer(t, 10, KillOnNodeFailure)
	app := &nodeApp{}
	app.sess = s.Connect(app)
	cur, err := app.sess.Request(RequestSpec{Cluster: c0, N: 6, Duration: 1000, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if len(app.starts) != 1 {
		t.Fatal("initial request did not start")
	}
	held := append([]int(nil), app.starts[0].ids...)
	// Shrink 6 → 4 via NEXT + done, releasing two IDs; the four kept IDs
	// park on the finished parent until the child starts.
	next, err := app.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 1000, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: cur})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.sess.Done(cur, held[4:]); err != nil {
		t.Fatal(err)
	}
	// Before the child starts, kill one of the parked IDs.
	if _, err := s.FailNodes(c0, []int{held[0]}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, s)
	e.RunAll()
	var childStart []int
	for _, st := range app.starts {
		if st.id == next {
			childStart = st.ids
		}
	}
	if len(childStart) != 4 {
		t.Fatalf("child allocation = %v, want 4 IDs", childStart)
	}
	for _, nid := range childStart {
		if nid == held[0] {
			t.Fatalf("child allocation %v includes the dead node", childStart)
		}
	}
	mustCheck(t, s)
}
