// Command coormd runs a CooRMv2 RMS daemon over TCP — the "real-life
// prototype RMS" counterpart of the simulator (§5). Applications connect
// with the newline-delimited JSON protocol of internal/proto (see
// cmd/coormctl and examples/netdemo).
//
// Usage:
//
//	coormd -listen :7777 -cluster main=128 -cluster gpu=16 -interval 1
//	coormd -cluster a=64 -cluster b=64 -cluster c=64 -shards 3 -workers 32
//	coormd -cluster a=64 -pprof 127.0.0.1:6060   # live profiling side listener
//
// With -shards > 1 the daemon runs a federated RMS: the cluster set is
// partitioned across that many independent scheduler shards and every
// session's requests are routed to the shard owning their target cluster
// (see internal/federation).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/federation"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/rms"
	"coormv2/internal/transport"
	"coormv2/internal/view"
)

// clusterFlags collects repeated -cluster name=nodes flags.
type clusterFlags map[view.ClusterID]int

func (c clusterFlags) String() string {
	var parts []string
	for cid, n := range c {
		parts = append(parts, fmt.Sprintf("%s=%d", cid, n))
	}
	return strings.Join(parts, ",")
}

func (c clusterFlags) Set(s string) error {
	name, nodesStr, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=nodes, got %q", s)
	}
	n, err := strconv.Atoi(nodesStr)
	if err != nil || n <= 0 {
		return fmt.Errorf("invalid node count in %q", s)
	}
	c[view.ClusterID(name)] = n
	return nil
}

func main() {
	clusters := clusterFlags{}
	var (
		listen   = flag.String("listen", "127.0.0.1:7777", "TCP listen address")
		interval = flag.Float64("interval", 1, "re-scheduling interval in seconds (§3.2)")
		grace    = flag.Float64("grace", 0, "preemption grace period in seconds (0 = 5×interval)")
		strict   = flag.Bool("strict", false, "use strict equi-partitioning instead of filling")
		shards   = flag.Int("shards", 1, "scheduler shards; >1 federates the cluster set across independent schedulers")
		workers  = flag.Int("workers", 0, "admission limit: max concurrently served application sessions; further connections wait unserved until one ends (0 = unlimited)")
		pprofOn  = flag.String("pprof", "", "side listener for net/http/pprof (e.g. 127.0.0.1:6060; empty = off), so scheduling hot paths can be profiled against the live daemon")
		graceWin = flag.Duration("grace-window", 15*time.Second, "how long a session whose connection dropped survives awaiting a resume (0 = tear down immediately, no resume)")
		writeQ   = flag.Int("write-queue", 0, "per-connection outbound frame queue; a client that falls this many frames behind is evicted into the grace window (0 = default 256)")
		maxFrame = flag.Int("max-frame", 0, "received frame size cap in bytes; oversized frames are skipped and reported as structured errors (0 = default 4 MiB)")
	)
	flag.Var(clusters, "cluster", "cluster as name=nodes (repeatable)")
	flag.Parse()

	if len(clusters) == 0 {
		clusters["default"] = 64
	}
	clk := clock.NewRealClock()
	reg := obs.NewRegistry()
	var recsMu sync.Mutex
	var recs []*metrics.Recorder
	newRecorder := func() *metrics.Recorder {
		r := metrics.NewRecorder()
		recsMu.Lock()
		recs = append(recs, r)
		recsMu.Unlock()
		return r
	}
	reg.RegisterCounters("metrics", func() map[string]int64 {
		recsMu.Lock()
		defer recsMu.Unlock()
		tot := make(map[string]int64)
		for _, r := range recs {
			for k, v := range r.Totals() {
				tot[k] += v
			}
		}
		return tot
	})
	if *pprofOn != "" {
		// net/http/pprof registers its handlers on the default mux; serve
		// it on a dedicated side listener so profiling endpoints are never
		// exposed on the RMS protocol port. The observability endpoints
		// share the listener: /metrics (Prometheus text) and /debug/obs
		// (JSON snapshot + structured event ring).
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.Snapshot(clk.Now()).WritePrometheus(w); err != nil {
				log.Printf("coormd: /metrics: %v", err)
			}
		})
		http.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
			js, err := reg.Snapshot(clk.Now()).JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(js)
		})
		go func() {
			log.Printf("coormd: pprof/obs listening on http://%s/debug/pprof/ /metrics /debug/obs", *pprofOn)
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				log.Printf("coormd: pprof listener failed: %v", err)
			}
		}()
	}
	policy := core.EquiPartitionFilling
	if *strict {
		policy = core.StrictEquiPartition
	}
	var d *transport.Server
	topology := clusters.String()
	if *shards > 1 {
		fed := federation.New(federation.Config{
			Clusters:        clusters,
			Shards:          *shards,
			ReschedInterval: *interval,
			GracePeriod:     *grace,
			Clock:           clk,
			Policy:          policy,
			Metrics:         func(int) *metrics.Recorder { return newRecorder() },
			Obs:             reg,
		})
		d = transport.NewFederatedServer(fed)
		var shardDesc []string
		for i := 0; i < fed.NumShards(); i++ {
			shardDesc = append(shardDesc, fmt.Sprintf("shard%d=%s",
				i, clusterFlags(fed.Shard(i).Scheduler().Clusters()).String()))
		}
		topology = strings.Join(shardDesc, " ")
	} else {
		srv := rms.NewServer(rms.Config{
			Clusters:        clusters,
			ReschedInterval: *interval,
			GracePeriod:     *grace,
			Clock:           clk,
			Policy:          policy,
			Metrics:         newRecorder(),
			Obs:             reg,
		})
		d = transport.NewServer(srv)
	}
	d.Workers = *workers
	d.Grace = *graceWin
	d.WriteQueue = *writeQ
	d.MaxFrame = *maxFrame
	d.Obs = reg
	addr, err := d.Listen(*listen)
	if err != nil {
		log.Fatalf("coormd: %v", err)
	}
	log.Printf("coormd: serving %s on %s (policy %s, interval %gs, workers %d, grace window %s)",
		topology, addr, policy, *interval, *workers, *graceWin)
	if err := d.Serve(); err != nil {
		log.Printf("coormd: %v", err)
		os.Exit(1)
	}
}
