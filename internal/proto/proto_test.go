package proto

import (
	"math"
	"strings"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

func TestViewRoundTrip(t *testing.T) {
	v := view.New().
		AddRect("a", 0, 3600, 4).
		AddRect("a", 3600, 3600, 3).
		AddRect("b", 0, math.Inf(1), 6)
	enc := EncodeView(v)
	dec, err := enc.DecodeView()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(v) {
		t.Errorf("round trip lost data: %v vs %v", dec, v)
	}
}

func TestViewRoundTripEmpty(t *testing.T) {
	dec, err := EncodeView(view.New()).DecodeView()
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("empty view round trip = %v", dec)
	}
}

func TestViewDecodeRejectsBadDuration(t *testing.T) {
	vj := ViewJSON{"a": []StepJSON{{Duration: -7, N: 3}}}
	if _, err := vj.DecodeView(); err == nil {
		t.Error("negative (non-sentinel) duration should be rejected")
	}
}

func TestRequestSpecRoundTrip(t *testing.T) {
	specs := []rms.RequestSpec{
		{Cluster: "c0", N: 4, Duration: 100, Type: request.NonPreempt},
		{Cluster: "c0", N: 8, Duration: 1e6, Type: request.PreAlloc},
		{Cluster: "c1", N: 2, Duration: math.Inf(1), Type: request.Preempt,
			RelatedHow: request.Coalloc, RelatedTo: 42},
		{Cluster: "c0", N: 6, Duration: 60, Type: request.NonPreempt,
			RelatedHow: request.Next, RelatedTo: 7},
	}
	for _, spec := range specs {
		m := EncodeRequestSpec(spec, 9)
		data, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.DecodeRequestSpec()
		if err != nil {
			t.Fatal(err)
		}
		if got != spec {
			t.Errorf("round trip: got %+v, want %+v", got, spec)
		}
		if back.Seq != 9 {
			t.Errorf("Seq lost: %d", back.Seq)
		}
	}
}

func TestDecodeRequestSpecErrors(t *testing.T) {
	m := &Message{Type: MsgViews}
	if _, err := m.DecodeRequestSpec(); err == nil {
		t.Error("non-request message should error")
	}
	m = &Message{Type: MsgRequest, ReqType: "XX"}
	if _, err := m.DecodeRequestSpec(); err == nil {
		t.Error("unknown req type should error")
	}
	m = &Message{Type: MsgRequest, ReqType: "NP", RelatedHow: "SOMEDAY"}
	if _, err := m.DecodeRequestSpec(); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := Unmarshal([]byte(`{"seq":1}`)); err == nil {
		t.Error("missing type should error")
	}
}

func TestEncodeNames(t *testing.T) {
	if EncodeReqType(request.PreAlloc) != "PA" ||
		EncodeReqType(request.NonPreempt) != "NP" ||
		EncodeReqType(request.Preempt) != "P" {
		t.Error("req type names")
	}
	if EncodeRelation(request.Free) != "FREE" ||
		EncodeRelation(request.Coalloc) != "COALLOC" ||
		EncodeRelation(request.Next) != "NEXT" {
		t.Error("relation names")
	}
}

func TestMessageJSONStable(t *testing.T) {
	m := Message{Type: MsgStart, ReqID: 3, NodeIDs: []int{1, 2}}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != MsgStart || back.ReqID != 3 || len(back.NodeIDs) != 2 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestResilienceFieldsRoundTrip(t *testing.T) {
	m := Message{
		Type:   MsgConnect,
		Idem:   42,
		Resume: "deadbeef",
		Tenant: "org/team/q",
		Replay: true,
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Idem != 42 || got.Resume != "deadbeef" || got.Tenant != "org/team/q" || !got.Replay {
		t.Fatalf("round trip lost resilience fields: %+v", got)
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{MsgPing, MsgPong} {
		m := Message{Type: typ, Seq: 7}
		data, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != typ || got.Seq != 7 {
			t.Fatalf("%s round trip: %+v", typ, got)
		}
	}
}

func TestZeroResilienceFieldsOmitted(t *testing.T) {
	// Frames from pre-resilience peers must stay byte-compatible: the new
	// fields are omitempty and absent fields decode to their zero values.
	m := Message{Type: MsgRequest, Seq: 1}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"idem", "resume", "tenant", "replay"} {
		if strings.Contains(string(data), banned) {
			t.Fatalf("zero-valued %q serialized: %s", banned, data)
		}
	}
}
