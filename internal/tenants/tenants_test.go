package tenants

import (
	"math"
	"testing"

	"coormv2/internal/core"
	"coormv2/internal/request"
	"coormv2/internal/view"
)

const cA, cB = view.ClusterID("ca"), view.ClusterID("cb")

func TestTreeStructure(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("org/team/q1", Resources{cA: 4}, Resources{cA: 8})
	tr.MustAdd("org/team/q2", nil, nil)
	tr.MustAdd("org/ops", Resources{cA: 2}, nil)

	if q := tr.Queue("org/team/q1"); q == nil || q.Name() != "q1" || q.Parent().Path() != "org/team" {
		t.Fatalf("bad queue: %+v", tr.Queue("org/team/q1"))
	}
	org := tr.Queue("org")
	if org == nil || org.Parent() != tr.Root() {
		t.Fatal("intermediate queue not created under root")
	}
	if got := len(org.Children()); got != 2 {
		t.Fatalf("org has %d children, want 2", got)
	}
	if org.Children()[0].Name() != "ops" {
		t.Fatal("children not sorted by name")
	}
	if _, err := tr.Add("org/team/q1", nil, nil); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if q := tr.Resolve("nope"); q.Path() != DefaultQueue {
		t.Fatalf("unknown tenant resolves to %q, want default", q.Path())
	}
	if q := tr.Resolve(""); q.Path() != DefaultQueue {
		t.Fatalf("empty tenant resolves to %q, want default", q.Path())
	}
	NewDRF(tr) // seals
	if _, err := tr.Add("late", nil, nil); err == nil {
		t.Fatal("Add after seal must fail")
	}
}

// mkApp builds an AppState with a tenant label and one started
// preemptible allocation of n nodes on cid.
func mkApp(id int, tenant string, connectedAt float64) *core.AppState {
	a := core.NewAppState(id, connectedAt)
	a.Tenant = tenant
	return a
}

func addStartedP(a *core.AppState, rid request.ID, cid view.ClusterID, n int) *request.Request {
	r := request.New(rid, a.ID, cid, n, math.Inf(1), request.Preempt, request.Free, nil)
	r.NAlloc = n
	r.StartedAt = 0
	a.P.Add(r)
	return r
}

func addPendingNP(a *core.AppState, rid request.ID, cid view.ClusterID, n int) *request.Request {
	r := request.New(rid, a.ID, cid, n, 100, request.NonPreempt, request.Free, nil)
	a.NP.Add(r)
	return r
}

func info() core.RoundInfo {
	return core.RoundInfo{Now: 0, Clusters: map[view.ClusterID]int{cA: 16, cB: 8}}
}

// infoCaps is info with explicit capacities — the victim tests pin them
// tight so no free headroom absorbs the shortage.
func infoCaps(caps map[view.ClusterID]int) core.RoundInfo {
	return core.RoundInfo{Now: 0, Clusters: caps}
}

// TestDRFOrder: the queue with the smaller dominant share is offered
// resources first; within a queue, connection order is kept.
func TestDRFOrder(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("hog", Resources{cA: 4}, nil)
	tr.MustAdd("meek", Resources{cA: 4}, nil)
	p := NewDRF(tr)

	h1 := mkApp(1, "hog", 0)
	addStartedP(h1, 1, cA, 8) // share 8/4 = 2.0
	m1 := mkApp(2, "meek", 1)
	addStartedP(m1, 2, cA, 2) // share 2/4 = 0.5
	m2 := mkApp(3, "meek", 2)

	apps := []*core.AppState{h1, m1, m2}
	got := p.Order(info(), apps, nil)
	want := []int{2, 3, 1} // meek first (ascending share), connection order within
	for i, a := range got {
		if a.ID != want[i] {
			t.Fatalf("order[%d] = app %d, want %d (full: %v)", i, a.ID, want[i], ids(got))
		}
	}
	if s := p.Shares()["hog"]; s != 2.0 {
		t.Fatalf("hog share = %v, want 2.0", s)
	}
}

func ids(apps []*core.AppState) []int {
	out := make([]int, len(apps))
	for i, a := range apps {
		out[i] = a.ID
	}
	return out
}

// TestDRFAdmit: a queue at its max quota admits no new work on that
// cluster, but apps demanding elsewhere pass.
func TestDRFAdmit(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("capped", nil, Resources{cA: 4})
	p := NewDRF(tr)

	a1 := mkApp(1, "capped", 0)
	addStartedP(a1, 1, cA, 4) // at the cap
	a2 := mkApp(2, "capped", 1)
	addPendingNP(a2, 2, cA, 2) // wants more of cA
	a3 := mkApp(3, "capped", 2)
	addPendingNP(a3, 3, cB, 2) // wants cB: not capped there

	apps := []*core.AppState{a1, a2, a3}
	p.Order(info(), apps, nil)
	if !p.Admit(info(), a1) {
		t.Fatal("app with no pending demand must stay admitted")
	}
	if p.Admit(info(), a2) {
		t.Fatal("app demanding a capped cluster must be rejected")
	}
	if !p.Admit(info(), a3) {
		t.Fatal("app demanding an uncapped cluster must be admitted")
	}
	if p.LastRejected() != 1 {
		t.Fatalf("LastRejected = %d, want 1", p.LastRejected())
	}
}

// TestVictimsRelieveShortage: a starved guaranteed queue gets victims
// nominated from over-guarantee queues on the shortage cluster, never
// more than the shortage needs, donors kept at or above their guarantee.
func TestVictimsRelieveShortage(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("prod", Resources{cA: 8}, nil)
	tr.MustAdd("batch", Resources{cA: 2}, nil)
	p := NewDRF(tr)

	b := mkApp(1, "batch", 0)
	r1 := addStartedP(b, 1, cA, 3)
	r2 := addStartedP(b, 2, cA, 3) // batch usage 6, guarantee 2 → surplus 4
	pr := mkApp(2, "prod", 1)
	addPendingNP(pr, 3, cA, 4) // prod: usage 0 < 8 guaranteed, wants 4

	// Capacity 6 = batch's usage: zero headroom, preemption must cover
	// the full 4-node shortage.
	victims := p.Victims(infoCaps(map[view.ClusterID]int{cA: 6}), []*core.AppState{b, pr}, nil)
	if len(victims) != 2 {
		t.Fatalf("got %d victims, want 2 (shortage 4 needs both 3-node allocations)", len(victims))
	}
	// Newest allocation revoked first within the donor queue.
	if victims[0] != r2 || victims[1] != r1 {
		t.Fatalf("victim order: got %v,%v want r2,r1", victims[0].ID, victims[1].ID)
	}
}

// TestVictimsRespectDonorGuarantee: revocation stops once the donor
// would drop below its own guarantee.
func TestVictimsRespectDonorGuarantee(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("prod", Resources{cA: 10}, nil)
	tr.MustAdd("batch", Resources{cA: 4}, nil)
	p := NewDRF(tr)

	b := mkApp(1, "batch", 0)
	addStartedP(b, 1, cA, 3)
	addStartedP(b, 2, cA, 3) // usage 6, guarantee 4 → only one 3-node revocation allowed
	pr := mkApp(2, "prod", 1)
	addPendingNP(pr, 3, cA, 10)

	victims := p.Victims(infoCaps(map[view.ClusterID]int{cA: 6}), []*core.AppState{b, pr}, nil)
	if len(victims) != 1 {
		t.Fatalf("got %d victims, want 1 (second revocation would underrun the donor's guarantee)", len(victims))
	}
}

// TestVictimsNeverFireWithoutRelief is the acceptance property: no
// nomination when revoking cannot relieve the shortage — free headroom
// covers the demand, preemptible work is on the wrong cluster, there is
// no preemptible usage at all, or the demand sits inside the same
// subtree.
func TestVictimsNeverFireWithoutRelief(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("prod", Resources{cA: 8}, nil)
	tr.MustAdd("batch", nil, nil)
	p := NewDRF(tr)
	tight := map[view.ClusterID]int{cA: 4, cB: 8} // tiny cA: headroom 0 below

	// Free headroom absorbs the shortage: a donor exists (batch holds 6
	// preemptible nodes over its zero guarantee) but 10 of cA's 16 nodes
	// are free, so prod's 4-node demand starts on its own — no victims.
	hb := mkApp(7, "batch", 0)
	addStartedP(hb, 20, cA, 6)
	pr := mkApp(2, "prod", 1)
	addPendingNP(pr, 2, cA, 4)
	if v := p.Victims(info(), []*core.AppState{hb, pr}, nil); len(v) != 0 {
		t.Fatalf("victims despite free headroom: %d nominations", len(v))
	}

	// Donor holds preemptible work on cB only; cA (capacity 4) is filled
	// by prod's own non-preemptible work, so the shortage is real but no
	// revocation on cB can relieve it.
	b := mkApp(1, "batch", 0)
	addStartedP(b, 1, cB, 4)
	fill := mkApp(8, "prod", 0)
	nfill := request.New(21, 8, cA, 4, 100, request.NonPreempt, request.Free, nil)
	nfill.NAlloc = 4
	nfill.StartedAt = 0
	fill.NP.Add(nfill)
	if v := p.Victims(infoCaps(tight), []*core.AppState{b, fill, pr}, nil); len(v) != 0 {
		t.Fatalf("victims on the wrong cluster: %d nominations", len(v))
	}

	// No pending demand → no shortage → nothing fires even though prod
	// is far below its guarantee.
	pr2 := mkApp(3, "prod", 2)
	if v := p.Victims(infoCaps(tight), []*core.AppState{b, pr2}, nil); len(v) != 0 {
		t.Fatalf("victims without demand: %d nominations", len(v))
	}

	// Starved queue's own preemptible work is never its victim.
	pr3 := mkApp(4, "prod", 3)
	addStartedP(pr3, 3, cA, 2)
	addPendingNP(pr3, 4, cA, 10)
	if v := p.Victims(infoCaps(tight), []*core.AppState{pr3}, nil); len(v) != 0 {
		t.Fatalf("queue preempted itself: %d nominations", len(v))
	}

	// Non-preemptible usage of another queue is untouchable.
	np := mkApp(5, "batch", 4)
	r := request.New(9, 5, cA, 6, 100, request.NonPreempt, request.Free, nil)
	r.NAlloc = 6
	r.StartedAt = 0
	np.NP.Add(r)
	if v := p.Victims(infoCaps(tight), []*core.AppState{np, pr}, nil); len(v) != 0 {
		t.Fatalf("non-preemptible work nominated: %d nominations", len(v))
	}

	p.SetPreemption(false)
	b2 := mkApp(6, "batch", 5)
	addStartedP(b2, 10, cA, 6)
	if v := p.Victims(infoCaps(tight), []*core.AppState{b2, pr}, nil); v != nil {
		t.Fatal("preemption disabled but victims nominated")
	}
}

// TestDRFEndToEnd runs the policy inside a real scheduler, in the regime
// where victim nomination is genuinely load-bearing. The core already
// max-min-shares preemptible capacity — but per APPLICATION and
// tenant-blind (Alg. 3), so a tenant running two apps out-shares a
// guaranteed tenant running one: on a 12-node cluster each of the three
// apps is granted 4, leaving the guaranteed queue (floor 8) starved at 4
// with 4 nodes pending. No ordering fixes that; only Victims can revoke
// batch's granted capacity to enforce the floor.
func TestDRFEndToEnd(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("prod", Resources{cA: 8}, nil)
	tr.MustAdd("batch", nil, nil)
	p := NewDRF(tr)

	s := core.NewScheduler(map[view.ClusterID]int{cA: 12})
	s.SetSchedulingPolicy(p)

	var batchReqs []*request.Request
	for i := 1; i <= 2; i++ {
		a := s.AddApp(i, float64(i-1))
		a.Tenant = "batch"
		r := request.New(request.ID(i), i, cA, 6, math.Inf(1), request.Preempt, request.Free, nil)
		a.P.Add(r)
		batchReqs = append(batchReqs, r)
	}
	prod := s.AddApp(3, 2)
	prod.Tenant = "prod"
	p0 := request.New(3, 3, cA, 8, math.Inf(1), request.Preempt, request.Free, nil)
	prod.P.Add(p0)

	out := s.Schedule(0)
	for _, r := range out.ToStart {
		r.StartedAt = 0
		s.MarkAppDirty(r.AppID)
	}
	s.Schedule(1)
	if p0.NAlloc >= 8 {
		t.Fatalf("prod granted %d ≥ its guarantee — scenario must starve it", p0.NAlloc)
	}

	vn, ok := s.SchedulingPolicy().(core.VictimNominator)
	if !ok {
		t.Fatal("DRF must be a VictimNominator")
	}
	victims := vn.Victims(core.RoundInfo{Now: 1, Clusters: s.Clusters()}, s.Apps(), nil)
	if len(victims) == 0 {
		t.Fatal("no victims nominated for a starved guaranteed queue on a full cluster")
	}
	freed := 0
	for _, v := range victims {
		if v != batchReqs[0] && v != batchReqs[1] {
			t.Fatalf("victim %v is not batch's work", v.ID)
		}
		freed += v.NAlloc
	}
	shortage := 8 - p0.NAlloc
	if freed < shortage || freed-victims[len(victims)-1].NAlloc >= shortage {
		t.Fatalf("freed %d for shortage %d: must relieve it with no gratuitous extra victim", freed, shortage)
	}
	// Newest allocation first within the donor queue.
	if victims[0] != batchReqs[1] {
		t.Fatalf("victims[0] = request %v, want batch's newest (2)", victims[0].ID)
	}
}
