package rms

import "testing"

func TestIDPoolAllocLowestFirst(t *testing.T) {
	p := newIDPool(5)
	if p.available() != 5 {
		t.Fatalf("available = %d", p.available())
	}
	ids := p.alloc(3)
	want := []int{0, 1, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("alloc = %v, want %v", ids, want)
		}
	}
	if p.available() != 2 {
		t.Errorf("available after alloc = %d", p.available())
	}
}

func TestIDPoolFreeReuse(t *testing.T) {
	p := newIDPool(4)
	ids := p.alloc(4)
	p.free([]int{ids[2], ids[0]})
	got := p.alloc(2)
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("re-alloc = %v, want [0 2] (sorted)", got)
	}
}

func TestIDPoolAllocZero(t *testing.T) {
	p := newIDPool(3)
	if got := p.alloc(0); len(got) != 0 {
		t.Errorf("alloc(0) = %v", got)
	}
}

func TestIDPoolOverAllocPanics(t *testing.T) {
	p := newIDPool(2)
	defer func() {
		if recover() == nil {
			t.Error("over-alloc should panic")
		}
	}()
	p.alloc(3)
}

func TestIDPoolDoubleFreePanics(t *testing.T) {
	p := newIDPool(2)
	ids := p.alloc(1)
	p.free(ids)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	p.free(ids)
}

func TestIDPoolOutOfRangeFreePanics(t *testing.T) {
	p := newIDPool(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range free should panic")
		}
	}()
	p.free([]int{7})
}
