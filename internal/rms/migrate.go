package rms

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// This file implements live cluster hand-over between rms.Server instances:
// DetachCluster snapshots one cluster — its capacity, node-ID pool occupancy
// and every session's requests targeting it — and removes it from the server;
// AttachCluster re-admits the snapshot on another server under fresh local
// request IDs. The federation layer (internal/federation.MigrateCluster)
// drives the pair as one atomic step and rewrites its federated↔local ID
// tables through the observe hook. The same snapshot shape is the seed for
// the ROADMAP's warm-standby item: it is exactly the per-cluster portion of
// scheduler-side state a restarted shard would need to resume.

// ErrEntangled is returned by DetachCluster when the cluster cannot be
// detached because an unfinished request on it relates (NEXT/COALLOC) to a
// request on another cluster of the same server, or vice versa. Migrating
// one side would turn the relation cross-shard, which the federation does
// not support; the rebalancer skips such donor candidates.
var ErrEntangled = errors.New("rms: cluster has live cross-cluster request relations")

// ErrLastCluster is returned by DetachCluster when the cluster is the
// server's only one: a shard must always manage at least one cluster.
var ErrLastCluster = errors.New("rms: cannot detach a server's last cluster")

// RequestState is the portable state of one request inside a
// ClusterSnapshot: the application-provided spec plus every scheduler- and
// allocation-side attribute, so the importing server resumes exactly where
// the exporting one stopped. IDs are local to the exporting server;
// AttachCluster assigns fresh ones and reports the correspondence.
type RequestState struct {
	ID         request.ID // exporting server's local ID
	N          int
	Duration   float64
	Type       request.Type
	RelatedHow request.Relation
	RelatedTo  request.ID // exporting-server local parent ID; 0 when Free

	NAlloc             int
	ScheduledAt        float64
	Fixed              bool
	EarliestScheduleAt float64

	StartedAt   float64 // NaN when not started
	NodeIDs     []int
	Finished    bool
	Wrapped     bool
	SubmittedAt float64 // NaN when never stamped; carried so waits survive migration

	// Held and NotBefore carry two-phase reservation state (see hold.go):
	// a migrating cluster keeps its tentative holds and start-time floors,
	// so a reservation coordinator finds them intact on the importing shard.
	Held      bool
	NotBefore float64
}

// SessionClusterState is one application's share of a ClusterSnapshot.
// Requests appear in set order (PA, then ¬P, then P, each in insertion
// order), which AttachCluster preserves — set order is scheduling order.
type SessionClusterState struct {
	AppID    int
	Requests []RequestState
}

// ClusterSnapshot is the complete transferable state of one cluster,
// produced by DetachCluster and consumed by AttachCluster.
type ClusterSnapshot struct {
	Cluster view.ClusterID
	Nodes   int
	// FreeIDs is the node-ID pool's free list; IDs absent from it are held
	// by the snapshot's requests or down (the attach side re-forms the
	// exact pool).
	FreeIDs []int
	// FailedIDs are the node IDs currently down (ascending): a cluster
	// migrates with its degraded capacity, and the importing server resumes
	// scheduling against Nodes − len(FailedIDs) working nodes.
	FailedIDs []int
	// Churn carries the cluster's cumulative accepted-request counter so
	// rebalancer load deltas survive the move.
	Churn int64
	// Clip is the administrator clip fragment for this cluster, if any.
	Clip *stepfunc.StepFunc
	// Apps lists the sessions with requests on the cluster, ascending AppID.
	Apps []SessionClusterState
}

// Requests returns the total number of requests carried by the snapshot.
func (cs *ClusterSnapshot) Requests() int {
	n := 0
	for _, as := range cs.Apps {
		n += len(as.Requests)
	}
	return n
}

// HeldNodes returns the number of node IDs held by the snapshot's requests.
func (cs *ClusterSnapshot) HeldNodes() int {
	n := 0
	for _, as := range cs.Apps {
		for _, rs := range as.Requests {
			n += len(rs.NodeIDs)
		}
	}
	return n
}

// Clusters returns the server's resource model (cluster ID → node count),
// reflecting any clusters attached or detached since construction.
func (s *Server) Clusters() map[view.ClusterID]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[view.ClusterID]int, len(s.cfg.Clusters))
	for cid, n := range s.cfg.Clusters {
		out[cid] = n
	}
	return out
}

// ClusterLoad is one cluster's load signal: capacity, current node-ID
// occupancy (total and non-preemptible), and the cumulative
// accepted-request churn counter.
type ClusterLoad struct {
	Cluster view.ClusterID
	Nodes   int
	// Held counts every node ID currently allocated on the cluster.
	Held int
	// Firm counts the node IDs held by non-preemptible allocations only.
	// This is the occupancy signal the rebalancer scores: preemptible
	// holdings are reclaimable by definition, and a scavenging PSA fills
	// every idle node, so total occupancy converges to capacity on every
	// shard and would mask the very skew rebalancing exists to dissolve.
	Firm int
	// Churn is the cumulative count of accepted request() operations
	// targeting the cluster.
	Churn int64
}

// ClusterLoads reports every cluster's load in ascending cluster-ID order.
// It returns nil on a stopped server (a crashed shard serves no load).
func (s *Server) ClusterLoads() []ClusterLoad {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil
	}
	firm := make(map[view.ClusterID]int, len(s.pools))
	for _, sess := range s.sessions {
		for _, r := range sess.app.NP.All() {
			firm[r.Cluster] += len(r.NodeIDs)
		}
	}
	out := make([]ClusterLoad, 0, len(s.pools))
	for cid, pool := range s.pools {
		out = append(out, ClusterLoad{
			Cluster: cid,
			Nodes:   pool.size,
			Held:    pool.size - pool.available() - len(pool.failed),
			Firm:    firm[cid],
			Churn:   s.churn[cid],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cluster < out[j].Cluster })
	return out
}

// DetachCluster removes cluster cid from the server and returns its full
// transferable state. Every request targeting the cluster leaves with it;
// the sessions themselves stay connected (they may hold requests on other
// clusters). Allocation metrics are closed out at the detach instant so the
// node·second integrals move between shard recorders without overlap.
//
// Dead relations — NEXT/COALLOC edges whose child request already finished —
// are severed when they cross the cluster boundary (they can no longer
// influence scheduling); a *live* crossing relation makes the cluster
// ineligible and DetachCluster fails with ErrEntangled, leaving the server
// untouched. Detaching the last cluster fails with ErrLastCluster.
func (s *Server) DetachCluster(cid view.ClusterID) (*ClusterSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detachClusterLocked(cid, false)
}

// DetachClusterSevering is DetachCluster with the entanglement check
// replaced by deterministic relation severing: every live NEXT/COALLOC edge
// crossing the cluster boundary is converted into a NotBefore pin on the
// unstarted child (the start-time target the relation implied at the detach
// instant) and then cut on both sides, so the cluster always detaches. The
// federation uses it for MigrateCluster — its reservation coordinator keeps
// cross-shard gang legs unrelated at the shard level and re-aligns them
// through the same NotBefore mechanism, so a severed pin is exactly the
// state the coordinator would have produced.
func (s *Server) DetachClusterSevering(cid view.ClusterID) (*ClusterSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detachClusterLocked(cid, true)
}

// severRelationLocked converts r's relation into a NotBefore pin (for an
// unstarted child: the parent-derived start target, when finite) and cuts
// the edge.
func severRelationLocked(r *request.Request) {
	parent := r.RelatedTo
	if !r.Started() {
		target := math.Inf(1)
		switch r.RelatedHow {
		case request.Coalloc:
			if parent.Started() {
				target = parent.StartedAt
			} else {
				target = parent.ScheduledAt
			}
		case request.Next:
			if parent.Started() {
				target = parent.End()
			} else if !math.IsInf(parent.ScheduledAt, 1) {
				target = parent.ScheduledAt + parent.Duration
			}
		}
		if !math.IsInf(target, 0) && !math.IsNaN(target) && target > r.NotBefore {
			r.NotBefore = target
		}
	}
	r.RelatedHow, r.RelatedTo = request.Free, nil
}

func (s *Server) detachClusterLocked(cid view.ClusterID, sever bool) (*ClusterSnapshot, error) {
	if s.stopped {
		return nil, ErrStopped
	}
	pool := s.pools[cid]
	if pool == nil {
		return nil, fmt.Errorf("rms: unknown cluster %q", cid)
	}
	if len(s.cfg.Clusters) == 1 {
		return nil, fmt.Errorf("%w (%q)", ErrLastCluster, cid)
	}
	// Eligibility: no unfinished request may have a relation crossing the
	// cluster boundary. (For unfinished requests the parent is always still
	// in a set — GC keeps parents of pending/running children — so the
	// parent's Cluster field is authoritative.) In severing mode the crossing
	// edge is pinned and cut instead of failing the detach.
	for _, id := range s.sessionIDsLocked() {
		for _, r := range s.sessions[id].app.Requests() {
			if r.Finished || r.RelatedTo == nil {
				continue
			}
			if (r.Cluster == cid) != (r.RelatedTo.Cluster == cid) {
				if !sever {
					return nil, fmt.Errorf("%w: request %d on %q relates to request %d on %q",
						ErrEntangled, r.ID, r.Cluster, r.RelatedTo.ID, r.RelatedTo.Cluster)
				}
				severRelationLocked(r)
				s.touchLocked(id)
			}
		}
	}

	now := s.clk.Now()
	snap := &ClusterSnapshot{
		Cluster:   cid,
		Nodes:     pool.size,
		FreeIDs:   append([]int(nil), pool.freeIDs...),
		FailedIDs: pool.failedIDs(),
		Churn:     s.churn[cid],
	}
	for _, id := range s.sessionIDsLocked() {
		sess := s.sessions[id]
		var exported []*request.Request
		inSnap := make(map[*request.Request]bool)
		for _, set := range []*request.Set{sess.app.PA, sess.app.NP, sess.app.P} {
			for _, r := range set.All() {
				if r.Cluster == cid {
					exported = append(exported, r)
					inSnap[r] = true
				}
			}
		}
		if len(exported) == 0 {
			continue
		}
		st := SessionClusterState{AppID: id, Requests: make([]RequestState, 0, len(exported))}
		moved := 0
		for _, r := range exported {
			rs := RequestState{
				ID: r.ID, N: r.N, Duration: r.Duration, Type: r.Type,
				NAlloc: r.NAlloc, ScheduledAt: r.ScheduledAt, Fixed: r.Fixed,
				EarliestScheduleAt: r.EarliestScheduleAt,
				StartedAt:          r.StartedAt,
				NodeIDs:            append([]int(nil), r.NodeIDs...),
				Finished:           r.Finished, Wrapped: r.Wrapped,
				SubmittedAt: r.SubmittedAt,
				Held:        r.Held, NotBefore: r.NotBefore,
			}
			if r.RelatedTo != nil && inSnap[r.RelatedTo] {
				rs.RelatedHow, rs.RelatedTo = r.RelatedHow, r.RelatedTo.ID
			}
			// else: the parent stayed behind (possible only for a finished
			// request, or one whose parent was already GC-reaped) — the
			// relation is dead, export the request unconstrained.
			st.Requests = append(st.Requests, rs)
			moved += len(r.NodeIDs)
			sess.app.SetFor(r.Type).Remove(r)
		}
		// Sever dead relations pointing *into* the detached cluster from
		// requests that stay behind, so no live object references a request
		// this server no longer manages.
		for _, r := range sess.app.Requests() {
			if r.RelatedTo != nil && inSnap[r.RelatedTo] {
				r.RelatedHow, r.RelatedTo = request.Free, nil
			}
		}
		if moved > 0 {
			sess.held -= moved
			s.recordAllocLocked(sess, now)
		}
		s.touchLocked(id)
		snap.Apps = append(snap.Apps, st)
	}

	delete(s.pools, cid)
	delete(s.churn, cid)
	delete(s.cfg.Clusters, cid)
	if s.cfg.Clip != nil {
		if f, ok := s.cfg.Clip[cid]; ok {
			snap.Clip = f
			delete(s.cfg.Clip, cid)
			if len(s.cfg.Clip) == 0 {
				s.cfg.Clip = nil
			}
			s.sched.SetClip(s.cfg.Clip)
		}
	}
	s.sched.RemoveCluster(cid)
	s.loadEpoch++ // the topology change alone alters ClusterLoads
	s.recordPreAllocLocked(now)
	s.requestRunLocked()
	return snap, nil
}

// AttachCluster admits a detached cluster's state to this server: capacity
// and pool occupancy are restored exactly, and every snapshot request is
// re-created — under a fresh local ID — in its session's sets, preserving
// set order and relation topology. observe, when non-nil, is invoked for
// every imported request with its old and new local IDs while the server
// lock is still held, mirroring RequestObserved's hook: any routing-table
// rewrite done inside it is in place before a scheduling round can touch
// the request. observe must not call back into the server.
//
// A snapshot application with no session on this server (possible only in
// real-clock races where the session died mid-migration) is dropped like a
// disconnect: its held node IDs return to the pool.
func (s *Server) AttachCluster(snap *ClusterSnapshot, observe func(appID int, oldID, newID request.ID)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrStopped
	}
	if _, dup := s.cfg.Clusters[snap.Cluster]; dup {
		return fmt.Errorf("rms: cluster %q already attached", snap.Cluster)
	}
	s.cfg.Clusters[snap.Cluster] = snap.Nodes
	pool := &idPool{
		size:    snap.Nodes,
		freeIDs: append([]int(nil), snap.FreeIDs...),
		failed:  append([]int(nil), snap.FailedIDs...),
	}
	s.pools[snap.Cluster] = pool
	s.churn[snap.Cluster] = snap.Churn
	// The scheduler plans against working nodes only: a cluster migrates
	// with its degraded capacity.
	s.sched.AddCluster(snap.Cluster, pool.capacity())
	if snap.Clip != nil {
		if s.cfg.Clip == nil {
			s.cfg.Clip = view.New()
		}
		s.cfg.Clip[snap.Cluster] = snap.Clip
		s.sched.SetClip(s.cfg.Clip)
	}

	now := s.clk.Now()
	for _, as := range snap.Apps {
		sess := s.sessions[as.AppID]
		if sess == nil {
			for _, rs := range as.Requests {
				if len(rs.NodeIDs) > 0 {
					pool.free(rs.NodeIDs)
				}
			}
			continue
		}
		byOld := make(map[request.ID]*request.Request, len(as.Requests))
		moved := 0
		for _, rs := range as.Requests {
			id := s.nextReq
			s.nextReq++
			r := request.New(id, as.AppID, snap.Cluster, rs.N, rs.Duration, rs.Type, request.Free, nil)
			r.NAlloc = rs.NAlloc
			r.ScheduledAt = rs.ScheduledAt
			r.Fixed = rs.Fixed
			r.EarliestScheduleAt = rs.EarliestScheduleAt
			r.StartedAt = rs.StartedAt
			r.NodeIDs = append([]int(nil), rs.NodeIDs...)
			r.Finished = rs.Finished
			r.Wrapped = rs.Wrapped
			r.SubmittedAt = rs.SubmittedAt
			r.Held = rs.Held
			r.NotBefore = rs.NotBefore
			byOld[rs.ID] = r
			sess.app.SetFor(rs.Type).Add(r)
			moved += len(r.NodeIDs)
			if observe != nil {
				observe(as.AppID, rs.ID, id)
			}
		}
		// Second pass: re-link relations. A non-Free entry's parent is always
		// part of the same snapshot (DetachCluster severed the rest).
		for _, rs := range as.Requests {
			if rs.RelatedHow == request.Free {
				continue
			}
			parent := byOld[rs.RelatedTo]
			if parent == nil {
				panic(fmt.Sprintf("rms: snapshot request %d relates to absent request %d", rs.ID, rs.RelatedTo))
			}
			child := byOld[rs.ID]
			child.RelatedHow, child.RelatedTo = rs.RelatedHow, parent
		}
		if moved > 0 {
			sess.held += moved
			s.recordAllocLocked(sess, now)
		}
		s.touchLocked(as.AppID)
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.IncCounter(as.AppID, metrics.MigratedRequests, len(as.Requests))
		}
	}
	s.loadEpoch++ // the topology change alone alters ClusterLoads
	s.recordPreAllocLocked(now)
	s.requestRunLocked()
	return nil
}
