package view

import (
	"testing"

	"coormv2/internal/stepfunc"
)

var fuzzClusters = []ClusterID{"x", "y", "z"}

// decodeFuzzView consumes bytes into a view over up to three clusters, each
// profile a short step list (negative plateaus included: accumulator views
// go negative transiently inside the scheduler).
func decodeFuzzView(data []byte) (View, []byte) {
	v := New()
	if len(data) == 0 {
		return v, data
	}
	nc := int(data[0] % 4)
	data = data[1:]
	for c := 0; c < nc; c++ {
		if len(data) == 0 {
			break
		}
		k := int(data[0] % 5)
		data = data[1:]
		steps := make([]stepfunc.Step, 0, k)
		for i := 0; i < k && len(data) >= 2; i++ {
			steps = append(steps, stepfunc.Step{
				Duration: float64(data[0]%16)/2 + 0.5,
				N:        int(int8(data[1])),
			})
			data = data[2:]
		}
		f := stepfunc.FromSteps(steps...)
		if !f.IsZero() {
			v[fuzzClusters[c]] = f
		}
	}
	return v, data
}

// FuzzMutViewOps differentially checks the in-place Mut* accumulator ops
// against their immutable counterparts: same result views, and no zero
// profiles left behind (the map-canonical form both rely on).
func FuzzMutViewOps(f *testing.F) {
	f.Add([]byte{}, byte(0), float64(1), float64(2), int64(3))
	f.Add([]byte{2, 3, 4, 10, 2, 5, 250, 1, 9, 9, 3, 2, 8, 8, 4, 200}, byte(5), float64(0.5), float64(3), int64(-7))
	f.Add([]byte{3, 4, 1, 128, 2, 127, 3, 3, 2, 2, 1, 1, 9, 9, 8, 8, 7, 7}, byte(130), float64(2), float64(0), int64(40))
	f.Fuzz(func(t *testing.T, data []byte, lo byte, t0, dur float64, n int64) {
		a, rest := decodeFuzzView(data)
		b, _ := decodeFuzzView(rest)

		checkNoZeros := func(name string, v View) {
			t.Helper()
			for cid, fn := range v {
				if fn == nil || fn.IsZero() {
					t.Fatalf("%s left a zero profile for %q: %v", name, cid, v)
				}
			}
		}
		expectEqual := func(name string, got, want View) {
			t.Helper()
			checkNoZeros(name, got)
			if !got.Equal(want) {
				t.Fatalf("%s: got %v, want %v (a=%v b=%v)", name, got, want, a, b)
			}
		}

		mutAdd := a.Clone()
		mutAdd.MutAdd(b)
		expectEqual("MutAdd", mutAdd, a.Add(b))

		mutSub := a.Clone()
		mutSub.MutSub(b)
		expectEqual("MutSub", mutSub, a.Sub(b))

		clamp := int(int8(lo))
		mutClamp := a.Clone()
		mutClamp.MutClampMin(clamp)
		expectEqual("MutClampMin", mutClamp, a.ClampMin(clamp))

		// MutAddRect vs AddRect: bound the rectangle into the sane domain.
		rt0 := t0
		if !(rt0 >= 0 && rt0 < 1e6) {
			rt0 = 1
		}
		rdur := dur
		if !(rdur > 0 && rdur < 1e6) {
			rdur = 2
		}
		rn := int(n % 256)
		mutRect := a.Clone()
		mutRect.MutAddRect("x", rt0, rdur, rn)
		expectEqual("MutAddRect", mutRect, a.AddRect("x", rt0, rdur, rn))

		// The immutable inputs must not have been disturbed by any Mut op
		// (profiles may be shared, never mutated) — b especially, since it
		// is the view the Mut accumulators alias profiles from.
		av, arest := decodeFuzzView(data)
		if !a.Equal(av) {
			t.Fatalf("input view a mutated: %v vs %v", a, av)
		}
		bv, _ := decodeFuzzView(arest)
		if !b.Equal(bv) {
			t.Fatalf("argument view b mutated: %v vs %v", b, bv)
		}
	})
}
