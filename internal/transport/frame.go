package transport

import (
	"bufio"
	"fmt"
	"io"
)

// DefaultMaxFrame is the frame-size limit applied when Options.MaxFrame
// (client) or Server.MaxFrame is zero: 4 MiB, enough for the largest
// federated view push at paper scale.
const DefaultMaxFrame = 4 << 20

// OversizedFrameError reports a newline-delimited frame that exceeded the
// configured size limit. Size is the number of bytes observed before the
// reader gave up — at least Limit+1, and the exact frame size when the
// whole line was seen.
type OversizedFrameError struct {
	Size  int // bytes observed (>= Limit+1)
	Limit int // configured cap
}

func (e *OversizedFrameError) Error() string {
	return fmt.Sprintf("transport: frame of %d bytes exceeds the %d-byte limit", e.Size, e.Limit)
}

// frameReader reads newline-delimited frames with a hard per-frame size
// cap. Unlike bufio.Scanner it reports an oversized frame as a structured
// *OversizedFrameError carrying the offending size, and it can skip the
// remainder of the oversized line so the stream stays in sync and the
// connection survives.
type frameReader struct {
	r     *bufio.Reader
	limit int
	buf   []byte
}

func newFrameReader(r io.Reader, limit int) *frameReader {
	if limit <= 0 {
		limit = DefaultMaxFrame
	}
	return &frameReader{r: bufio.NewReaderSize(r, 64*1024), limit: limit}
}

// next returns the next frame without its trailing newline. On an
// oversized frame it discards the rest of the line and returns an
// *OversizedFrameError; the reader remains usable. Any other error is a
// connection error.
func (fr *frameReader) next() ([]byte, error) {
	fr.buf = fr.buf[:0]
	for {
		chunk, err := fr.r.ReadSlice('\n')
		fr.buf = append(fr.buf, chunk...)
		if err == bufio.ErrBufferFull {
			if len(fr.buf) > fr.limit {
				// Drain the rest of the oversized line, still counting, so
				// the next frame starts clean.
				size := len(fr.buf)
				for {
					c, derr := fr.r.ReadSlice('\n')
					size += len(c)
					if derr == nil {
						break
					}
					if derr != bufio.ErrBufferFull {
						return nil, derr
					}
				}
				return nil, &OversizedFrameError{Size: size - 1, Limit: fr.limit}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		// Strip the newline (and a possible carriage return).
		line := fr.buf[:len(fr.buf)-1]
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) > fr.limit {
			return nil, &OversizedFrameError{Size: len(line), Limit: fr.limit}
		}
		return line, nil
	}
}
