// Quickstart: the Fig. 8 interaction on a simulated 16-node cluster.
//
// A non-predictably evolving application (NEA) pre-allocates 12 nodes but
// initially allocates only 4; a malleable application fills the 12 unused
// nodes preemptibly; when the NEA performs a spontaneous update to 10
// nodes, the RMS signals the malleable application through its preemptive
// view, the malleable application releases nodes, and the NEA's update is
// served — all inside its guaranteed pre-allocation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"coormv2"
)

const cluster = coormv2.ClusterID("c0")

// logger prints every notification with a timestamp.
type logger struct {
	name    string
	sim     *coormv2.Simulation
	session *coormv2.Session
	// onViews/onStart let the two mini-apps below react.
	onViews func(np, p coormv2.View)
	onStart func(id coormv2.RequestID, nodes []int)
}

func (l *logger) OnViews(np, p coormv2.View) {
	fmt.Printf("[t=%4.0f] %s: views updated: non-preemptive %v | preemptive %v\n",
		l.sim.Now(), l.name, np, p)
	if l.onViews != nil {
		l.onViews(np, p)
	}
}

func (l *logger) OnStart(id coormv2.RequestID, nodes []int) {
	fmt.Printf("[t=%4.0f] %s: request %d started, nodes %v\n", l.sim.Now(), l.name, id, nodes)
	if l.onStart != nil {
		l.onStart(id, nodes)
	}
}

func (l *logger) OnKill(reason string) {
	fmt.Printf("%s: killed: %s\n", l.name, reason)
}

func main() {
	sim := coormv2.NewSimulation(map[coormv2.ClusterID]int{cluster: 16})

	// --- The evolving application (steps 1–5 of Fig. 8). -----------------
	nea := &logger{name: "NEA      ", sim: sim}
	neaSess := sim.Server.Connect(nea)
	pa, err := neaSess.Request(coormv2.RequestSpec{
		Cluster: cluster, N: 12, Duration: 10_000, Type: coormv2.PreAlloc,
	})
	check(err)
	cur, err := neaSess.Request(coormv2.RequestSpec{
		Cluster: cluster, N: 4, Duration: 10_000,
		Type: coormv2.NonPreempt, RelatedHow: coormv2.Coalloc, RelatedTo: pa,
	})
	check(err)

	// --- The malleable application (steps 6–9). --------------------------
	mal := &logger{name: "malleable", sim: sim}
	var malReq coormv2.RequestID
	var malHeld []int
	mal.onStart = func(id coormv2.RequestID, nodes []int) {
		if id == malReq {
			malHeld = nodes
		}
	}
	mal.onViews = func(_, p coormv2.View) {
		avail := p.Get(cluster).Value(sim.Now())
		switch {
		case malReq == 0 && avail > 0:
			var err error
			malReq, err = mal.sess().Request(coormv2.RequestSpec{
				Cluster: cluster, N: avail, Duration: math.Inf(1), Type: coormv2.Preempt,
			})
			check(err)
		case malReq != 0 && avail < len(malHeld):
			// Steps 13–14: the RMS asked for nodes back; release instantly.
			release := malHeld[avail:]
			next, err := mal.sess().Request(coormv2.RequestSpec{
				Cluster: cluster, N: avail, Duration: math.Inf(1),
				Type: coormv2.Preempt, RelatedHow: coormv2.Next, RelatedTo: malReq,
			})
			check(err)
			check(mal.sess().Done(malReq, release))
			fmt.Printf("[t=%4.0f] malleable: releasing nodes %v\n", sim.Now(), release)
			malReq = next
			malHeld = malHeld[:avail]
		}
	}
	malSess := sim.Server.Connect(mal)
	mal.session = malSess

	sim.Run(60)

	// --- Steps 10–15: the NEA spontaneously updates 4 → 10 nodes. --------
	fmt.Printf("[t=%4.0f] NEA      : spontaneous update, 4 -> 10 nodes\n", sim.Now())
	next, err := neaSess.Request(coormv2.RequestSpec{
		Cluster: cluster, N: 10, Duration: 10_000,
		Type: coormv2.NonPreempt, RelatedHow: coormv2.Next, RelatedTo: cur,
	})
	check(err)
	check(neaSess.Done(cur, nil))
	_ = next

	sim.Run(120)

	fmt.Println()
	fmt.Printf("NEA allocated area so far: %.0f node·s; malleable area: %.0f node·s\n",
		sim.Metrics.Area(neaSess.AppID(), sim.Now()),
		sim.Metrics.Area(malSess.AppID(), sim.Now()))
	fmt.Println("The update succeeded without the NEA ever over-allocating:")
	fmt.Println("pre-allocated-but-unused nodes did useful malleable work until reclaimed.")
}

// sess gives the logger late access to its session (it is created after
// the handler, because Connect needs the handler first).
func (l *logger) sess() *coormv2.Session { return l.session }

func check(err error) {
	if err != nil {
		panic(err)
	}
}
