package apps

import (
	"math"
	"testing"

	"coormv2/internal/amr"
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/stats"
	"coormv2/internal/transport"
	"coormv2/internal/view"
)

const c0 = view.ClusterID("c0")

// Compile-time check: the in-process RMS session satisfies apps.Session.
var _ Session = (*rms.Session)(nil)

type env struct {
	e   *sim.Engine
	srv *rms.Server
	rec *metrics.Recorder
}

func newEnv(nodes int, policy core.PreemptPolicy) *env {
	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	srv := rms.NewServer(rms.Config{
		Clusters:        map[view.ClusterID]int{c0: nodes},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Policy:          policy,
		Metrics:         rec,
	})
	return &env{e: e, srv: srv, rec: rec}
}

// connect wires an application to the server.
func (v *env) connect(h rms.AppHandler, b interface{ Attach(Session) }) *rms.Session {
	sess := v.srv.Connect(h)
	b.Attach(sess)
	return sess
}

func TestRigidApp(t *testing.T) {
	v := newEnv(10, core.EquiPartitionFilling)
	r := NewRigid(clock.SimClock{E: v.e}, c0, 4, 100)
	v.connect(r, r)
	if err := r.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.RunAll()
	if !r.Started || !r.Ended {
		t.Fatalf("rigid lifecycle incomplete: started=%v ended=%v", r.Started, r.Ended)
	}
	if len(r.NodeIDs) != 4 {
		t.Errorf("node IDs = %v", r.NodeIDs)
	}
	if r.EndTime-r.StartTime != 100 {
		t.Errorf("runtime = %v, want 100", r.EndTime-r.StartTime)
	}
}

func TestMoldableAppPicksEarliestCompletion(t *testing.T) {
	v := newEnv(10, core.EquiPartitionFilling)
	// Occupy 8 nodes for a long time so only 2 are free now.
	blocker := NewRigid(clock.SimClock{E: v.e}, c0, 8, 500)
	v.connect(blocker, blocker)
	if err := blocker.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(2)

	// Perfect scaling, 100 node·seconds of work: on 2 nodes it takes 50 s
	// finishing at ~52; waiting for 10 nodes means starting at 500.
	mold := NewMoldable(clock.SimClock{E: v.e}, c0, 10, func(n int) float64 { return 100 / float64(n) })
	v.connect(mold, mold)
	v.e.Run(60)
	if !mold.Started {
		t.Fatal("moldable app did not start")
	}
	if mold.ChosenN != 2 {
		t.Errorf("chose %d nodes, want 2 (earliest completion)", mold.ChosenN)
	}
}

func TestMalleableAppPowerOfTwoFilling(t *testing.T) {
	v := newEnv(40, core.EquiPartitionFilling)
	powerOfTwo := func(visible int) int {
		p := 1
		for p*2 <= visible {
			p *= 2
		}
		if visible < 1 {
			return 0
		}
		return p
	}
	m := NewMalleable(clock.SimClock{E: v.e}, c0, 4, 1e6, powerOfTwo)
	v.connect(m, m)
	if err := m.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(5)
	if !m.MinStarted() {
		t.Fatal("minimum part did not start")
	}
	// 36 visible preemptible nodes -> the paper's example: request 32.
	if got := m.ExtraNodes(); got != 32 {
		t.Errorf("extra nodes = %d, want 32 (power of two below 36)", got)
	}
}

func TestPredictableEvolvingChain(t *testing.T) {
	v := newEnv(10, core.EquiPartitionFilling)
	segs := []Segment{{N: 2, Duration: 50}, {N: 6, Duration: 50}, {N: 3, Duration: 50}}
	p := NewPredictableEvolving(clock.SimClock{E: v.e}, c0, segs)
	v.connect(p, p)
	if err := p.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(200)
	for i := range segs {
		if !p.SegmentStarted(i) {
			t.Fatalf("segment %d never started", i)
		}
	}
	// Segments follow each other immediately (NEXT semantics).
	if p.Starts[1]-p.Starts[0] != 50 || p.Starts[2]-p.Starts[1] != 50 {
		t.Errorf("segment starts = %v, want spacing 50", p.Starts)
	}
	// The shrink to 3 nodes left 3 IDs held at the end.
	if len(p.Held()) != 3 {
		t.Errorf("held after shrink = %v, want 3 IDs", p.Held())
	}
}

// testProfile builds a small AMR profile for app tests: 50 GiB peak keeps
// target node counts around 80 on a 200-node cluster and steps a few
// seconds long.
func testProfile(seed int64, steps int) amr.Profile {
	return amr.GenerateProfile(stats.NewRand(seed), steps, 50*1024)
}

func TestNEADynamicCompletes(t *testing.T) {
	v := newEnv(200, core.EquiPartitionFilling)
	prof := testProfile(1, 30)
	params := amr.DefaultParams
	neq, _ := params.EquivalentStatic(prof, 0.75)
	a := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof, Params: params, TargetEff: 0.75,
		PreAllocN: neq, Mode: NEADynamic,
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.RunAll()
	if a.Err != nil {
		t.Fatalf("NEA protocol error: %v", a.Err)
	}
	if !a.Finished() {
		t.Fatalf("NEA did not finish: step=%d", a.Step())
	}
	if a.EndTime <= a.StartTime {
		t.Error("end time not after start time")
	}
	// All resources returned.
	if got := v.rec.Current(1); got != 0 {
		t.Errorf("NEA still holds %d nodes after finishing", got)
	}
}

func TestNEAStaticUsesWholePreAllocation(t *testing.T) {
	v := newEnv(200, core.EquiPartitionFilling)
	prof := testProfile(2, 20)
	a := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof, Params: amr.DefaultParams, TargetEff: 0.75,
		PreAllocN: 120, Mode: NEAStatic,
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.RunAll()
	if !a.Finished() {
		t.Fatal("static NEA did not finish")
	}
	if got := v.rec.MaxAlloc(1); got != 120 {
		t.Errorf("peak allocation = %d, want the full pre-allocation 120", got)
	}
	// Static end-time equals the model's prediction exactly.
	want := amr.DefaultParams.StaticEndTime(prof, 120)
	if math.Abs((a.EndTime-a.StartTime)-want) > 1 {
		t.Errorf("static runtime = %v, model says %v", a.EndTime-a.StartTime, want)
	}
}

func TestNEADynamicUsesLessAreaThanStatic(t *testing.T) {
	// The heart of Fig. 9: with overcommit > 1, dynamic allocation consumes
	// far less than static.
	prof := testProfile(3, 25)
	params := amr.DefaultParams
	neq, _ := params.EquivalentStatic(prof, 0.75)
	over := 3.0
	pre := int(over * float64(neq))

	run := func(mode NEAMode) float64 {
		v := newEnv(2*pre, core.EquiPartitionFilling)
		a := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
			Cluster: c0, Profile: prof, Params: params, TargetEff: 0.75,
			PreAllocN: pre, Mode: mode,
		})
		v.connect(a, a)
		if err := a.Submit(); err != nil {
			t.Fatal(err)
		}
		v.e.RunAll()
		if !a.Finished() {
			t.Fatalf("mode %v did not finish", mode)
		}
		return v.rec.Area(1, a.EndTime)
	}
	dyn := run(NEADynamic)
	stat := run(NEAStatic)
	if dyn >= stat {
		t.Errorf("dynamic area %v should be below static %v at overcommit 2", dyn, stat)
	}
	if stat/dyn < 1.3 {
		t.Errorf("expected a substantial gap, got static/dynamic = %v", stat/dyn)
	}
}

func TestNEAAnnouncedUpdatesFinishLater(t *testing.T) {
	prof := testProfile(4, 25)
	params := amr.DefaultParams
	neq, _ := params.EquivalentStatic(prof, 0.75)

	run := func(announce float64) float64 {
		v := newEnv(neq+50, core.EquiPartitionFilling)
		a := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
			Cluster: c0, Profile: prof, Params: params, TargetEff: 0.75,
			PreAllocN: neq, Mode: NEADynamic, AnnounceInterval: announce,
		})
		v.connect(a, a)
		if err := a.Submit(); err != nil {
			t.Fatal(err)
		}
		v.e.RunAll()
		if !a.Finished() || a.Err != nil {
			t.Fatalf("announce=%v did not finish cleanly (err=%v)", announce, a.Err)
		}
		return a.EndTime - a.StartTime
	}
	spont := run(0)
	ann := run(30)
	if ann < spont {
		t.Errorf("announced updates (%v s) should not finish before spontaneous (%v s)", ann, spont)
	}
}

func TestPSAClaimsEverythingWhenAlone(t *testing.T) {
	v := newEnv(50, core.EquiPartitionFilling)
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 60})
	v.connect(p, p)
	v.e.Run(5)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if got := p.HeldNodes(); got != 50 {
		t.Errorf("PSA holds %d, want all 50", got)
	}
	// After 10 task durations it has completed ~500 tasks.
	v.e.Run(5 + 10*60)
	if got := p.CompletedTasks(); got < 450 || got > 550 {
		t.Errorf("completed tasks = %d, want ≈ 500", got)
	}
	if p.Waste() != 0 {
		t.Errorf("unforced PSA should have no waste, got %v", p.Waste())
	}
}

func TestPSAKilledTasksOnSpontaneousRevocation(t *testing.T) {
	v := newEnv(50, core.EquiPartitionFilling)
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 600})
	v.connect(p, p)
	v.e.Run(100) // tasks are mid-flight (elapsed ~100 s)

	// A rigid job suddenly needs 20 nodes: spontaneous revocation.
	r := NewRigid(clock.SimClock{E: v.e}, c0, 20, 400)
	v.connect(r, r)
	if err := r.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(110)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if !r.Started {
		t.Fatal("rigid job did not start after revocation")
	}
	if got := p.HeldNodes(); got != 30 {
		t.Errorf("PSA holds %d, want 30", got)
	}
	// 20 killed tasks, each ~100 s in: waste ≈ 2000 node·s.
	if w := p.Waste(); w < 1500 || w > 2500 {
		t.Errorf("waste = %v, want ≈ 2000", w)
	}
	if killed, _ := p.Killed(); killed {
		t.Error("cooperative PSA must not be killed by the RMS")
	}
}

func TestPSAGracefulReleaseNoWaste(t *testing.T) {
	// An announced drop with notice > d_task lets every victim finish its
	// task: zero waste (§5.3: "Once the announce interval is greater than
	// the task duration d_task, no PSA waste occurs").
	v := newEnv(50, core.EquiPartitionFilling)
	// An evolving app announces up front: 20 nodes needed at t ≈ 200
	// (the whole NEXT chain is exported to the RMS at submit time).
	a := NewPredictableEvolving(clock.SimClock{E: v.e}, c0, []Segment{
		{N: 1, Duration: 200}, {N: 20, Duration: 300},
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(10)
	if !a.SegmentStarted(0) {
		t.Fatal("segment 0 did not start")
	}

	// The PSA joins afterwards: every future drop is visible in its view.
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 100})
	v.connect(p, p)
	v.e.Run(600)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if !a.SegmentStarted(1) {
		t.Fatal("the 20-node segment never started")
	}
	if w := p.Waste(); w != 0 {
		t.Errorf("graceful release should cost nothing, waste = %v", w)
	}
}

func TestTwoPSAsEquiPartition(t *testing.T) {
	v := newEnv(40, core.EquiPartitionFilling)
	p1 := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 60})
	v.connect(p1, p1)
	v.e.Run(3)
	p2 := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 60})
	v.connect(p2, p2)
	v.e.Run(30)
	if p1.Err != nil || p2.Err != nil {
		t.Fatal(p1.Err, p2.Err)
	}
	if p1.HeldNodes()+p2.HeldNodes() != 40 {
		t.Errorf("partitions do not cover the cluster: %d + %d", p1.HeldNodes(), p2.HeldNodes())
	}
	if p1.HeldNodes() != 20 || p2.HeldNodes() != 20 {
		t.Errorf("equi-partition = %d/%d, want 20/20", p1.HeldNodes(), p2.HeldNodes())
	}
}

func TestPSAFillingWhenOtherDeclines(t *testing.T) {
	// §5.4: when one PSA cannot use resources (its task is too long for the
	// hole), the other fills them under the filling policy.
	v := newEnv(40, core.EquiPartitionFilling)
	// A long-task PSA that cannot use short windows.
	long := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 10000})
	v.connect(long, long)
	v.e.Run(3)
	short := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 10})
	v.connect(short, short)
	v.e.Run(30)
	// An announced future drop (via an evolving app) makes windows finite.
	a := NewPredictableEvolving(clock.SimClock{E: v.e}, c0, []Segment{
		{N: 1, Duration: 2000}, {N: 30, Duration: 5000},
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(1000)
	if long.Err != nil || short.Err != nil {
		t.Fatal(long.Err, short.Err)
	}
	// The long-task PSA gave up (or never claimed) nodes whose windows are
	// too short; the short-task PSA can still run tasks there.
	if short.HeldNodes() == 0 {
		t.Error("short-task PSA should be filling")
	}
	if short.CompletedTasks() == 0 {
		t.Error("short-task PSA did no useful work")
	}
}

// TestRigidRestartMovesCompletion is the crash-requeue regression: when a
// rigid job's request is re-started after a shard crash (same request ID,
// fresh allocation), the completion moves to the re-run's end — the first
// run's end timer must not settle the job early.
func TestRigidRestartMovesCompletion(t *testing.T) {
	e := sim.NewEngine()
	r := NewRigid(clock.SimClock{E: e}, "c0", 2, 100)
	r.reqID = 7
	ends := 0
	r.OnEnd = func() { ends++ }
	r.OnStart(7, []int{0, 1})
	e.Run(40) // crash + requeue happen here; the re-run starts at t=40
	r.OnStart(7, []int{2, 3})
	e.RunAll()
	if ends != 1 || r.EndTime != 140 {
		t.Fatalf("ends=%d EndTime=%v, want one completion at t=140", ends, r.EndTime)
	}
}

// The application drivers are transport-agnostic: the TCP client satisfies
// the same Session interface as the in-process RMS session, so every
// behaviour in this package can run against a real coormd daemon.
var _ Session = (*transport.Client)(nil)
