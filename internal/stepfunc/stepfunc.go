// Package stepfunc implements integer-valued step functions of continuous
// time. They are the Cluster Availability Profiles (CAPs) of the paper
// (§3.1.4 and §A.3): the x-axis is absolute time in seconds, the y-axis is
// a node count.
//
// A StepFunc is immutable: every operation returns a new value. Functions
// are defined on [0, +Inf); the last segment extends to infinity. Values
// may be negative (differences of profiles are used as scratch values by
// the scheduler), and callers clamp where the domain requires it.
package stepfunc

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Inf is the time/duration value representing "forever".
var Inf = math.Inf(1)

type point struct {
	t float64 // start time of the segment
	n int     // value on [t, nextT)
}

// StepFunc is a right-continuous step function of time.
// The zero value is the constant-zero function.
type StepFunc struct {
	// pts is sorted by strictly increasing t, with pts[0].t == 0 and no
	// two consecutive equal values. An empty slice means constant zero.
	pts []point
}

// Zero returns the constant-zero step function.
func Zero() *StepFunc { return &StepFunc{} }

// Constant returns the step function that is n everywhere.
func Constant(n int) *StepFunc {
	if n == 0 {
		return Zero()
	}
	return &StepFunc{pts: []point{{0, n}}}
}

// Step describes one segment of a profile in the paper's list-of-pairs
// notation: the value n holds for the given Duration.
type Step struct {
	Duration float64
	N        int
}

// FromSteps builds a step function from the paper's (duration, node-count)
// list notation, starting at time 0. After the listed segments the function
// is 0, matching §A.3 ("0 nodes are available for t ∈ [7200, ∞)"). A final
// segment with Duration == Inf extends its value forever.
func FromSteps(steps ...Step) *StepFunc {
	var pts []point
	t := 0.0
	for _, s := range steps {
		if s.Duration < 0 {
			panic("stepfunc: negative duration")
		}
		if s.Duration == 0 {
			continue
		}
		pts = append(pts, point{t, s.N})
		if math.IsInf(s.Duration, 1) {
			return normalize(pts)
		}
		t += s.Duration
	}
	pts = append(pts, point{t, 0})
	return normalize(pts)
}

// Rect returns a step function that is n on [t0, t0+dur) and 0 elsewhere.
// dur may be Inf.
func Rect(t0, dur float64, n int) *StepFunc {
	if t0 < 0 {
		panic("stepfunc: negative rect start")
	}
	if dur < 0 {
		panic("stepfunc: negative rect duration")
	}
	if dur == 0 || n == 0 {
		return Zero()
	}
	pts := []point{{0, 0}}
	if t0 == 0 {
		pts = pts[:0]
	}
	pts = append(pts, point{t0, n})
	if !math.IsInf(dur, 1) {
		pts = append(pts, point{t0 + dur, 0})
	}
	return normalize(pts)
}

// normalize sorts (stably, input is expected sorted), anchors the function at
// t=0 and merges consecutive equal values.
func normalize(pts []point) *StepFunc {
	if len(pts) == 0 {
		return Zero()
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	out := make([]point, 0, len(pts)+1)
	if pts[0].t > 0 {
		out = append(out, point{0, 0})
	}
	for _, p := range pts {
		if len(out) > 0 && out[len(out)-1].t == p.t {
			out[len(out)-1].n = p.n // later point at same t wins
			continue
		}
		out = append(out, p)
	}
	// Merge consecutive equal values.
	merged := out[:0]
	for _, p := range out {
		if len(merged) > 0 && merged[len(merged)-1].n == p.n {
			continue
		}
		merged = append(merged, p)
	}
	if len(merged) == 1 && merged[0].n == 0 {
		return Zero()
	}
	return &StepFunc{pts: merged}
}

// Value returns the function value at time t. Values for t < 0 are reported
// as the value at 0 (the domain starts at 0).
func (f *StepFunc) Value(t float64) int {
	if len(f.pts) == 0 {
		return 0
	}
	// Binary search for the last point with pts[i].t <= t.
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > t })
	if i == 0 {
		return f.pts[0].n
	}
	return f.pts[i-1].n
}

// IsZero reports whether the function is identically zero.
func (f *StepFunc) IsZero() bool { return len(f.pts) == 0 }

// Clone returns a deep copy. Because StepFunc is treated as immutable this
// is rarely needed, but it keeps ownership obvious at package boundaries.
func (f *StepFunc) Clone() *StepFunc {
	return &StepFunc{pts: append([]point(nil), f.pts...)}
}

// Equal reports whether f and g are the same function.
func (f *StepFunc) Equal(g *StepFunc) bool {
	if len(f.pts) != len(g.pts) {
		return false
	}
	for i := range f.pts {
		if f.pts[i] != g.pts[i] {
			return false
		}
	}
	return true
}

// Breakpoints returns the times at which the function changes value,
// always including 0.
func (f *StepFunc) Breakpoints() []float64 {
	if len(f.pts) == 0 {
		return []float64{0}
	}
	out := make([]float64, len(f.pts))
	for i, p := range f.pts {
		out[i] = p.t
	}
	if out[0] != 0 {
		out = append([]float64{0}, out...)
	}
	return out
}

// combine merges f and g pointwise with op.
func combine(f, g *StepFunc, op func(a, b int) int) *StepFunc {
	i, j := 0, 0
	var pts []point
	va, vb := 0, 0
	for i < len(f.pts) || j < len(g.pts) {
		var t float64
		switch {
		case i < len(f.pts) && j < len(g.pts):
			t = math.Min(f.pts[i].t, g.pts[j].t)
		case i < len(f.pts):
			t = f.pts[i].t
		default:
			t = g.pts[j].t
		}
		if i < len(f.pts) && f.pts[i].t == t {
			va = f.pts[i].n
			i++
		}
		if j < len(g.pts) && g.pts[j].t == t {
			vb = g.pts[j].n
			j++
		}
		pts = append(pts, point{t, op(va, vb)})
	}
	return normalize(pts)
}

// Add returns f + g (the paper's view sum).
func (f *StepFunc) Add(g *StepFunc) *StepFunc {
	return combine(f, g, func(a, b int) int { return a + b })
}

// Sub returns f − g (the paper's view difference).
func (f *StepFunc) Sub(g *StepFunc) *StepFunc {
	return combine(f, g, func(a, b int) int { return a - b })
}

// Max returns the pointwise maximum of f and g (the paper's view union).
func (f *StepFunc) Max(g *StepFunc) *StepFunc {
	return combine(f, g, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

// Min returns the pointwise minimum of f and g. It implements view clipping
// (§3.2: "the amount of resources that an application can pre-allocate can
// be limited, by clipping its non-preemptible view").
func (f *StepFunc) Min(g *StepFunc) *StepFunc {
	return combine(f, g, func(a, b int) int {
		if a < b {
			return a
		}
		return b
	})
}

// ClampMin returns the function max(f, lo) pointwise with a scalar.
func (f *StepFunc) ClampMin(lo int) *StepFunc {
	return f.Max(Constant(lo))
}

// AddRect returns f plus a rectangle of height n on [t0, t0+dur).
// It is the building block for the paper's "generated views" (Algorithm 1,
// line 22). dur may be Inf.
func (f *StepFunc) AddRect(t0, dur float64, n int) *StepFunc {
	return f.Add(Rect(t0, dur, n))
}

// MinOn returns the minimum value of f on [t0, t1). t1 may be Inf.
// If t1 <= t0 the interval is empty and MinOn returns math.MaxInt.
func (f *StepFunc) MinOn(t0, t1 float64) int {
	if t1 <= t0 {
		return math.MaxInt
	}
	if len(f.pts) == 0 {
		return 0
	}
	min := f.Value(t0)
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > t0 })
	for ; i < len(f.pts) && f.pts[i].t < t1; i++ {
		if f.pts[i].n < min {
			min = f.pts[i].n
		}
	}
	return min
}

// Integral returns the integral of f over [t0, t1) in value·seconds.
// If the integrand is non-zero on an infinite interval the result is ±Inf.
func (f *StepFunc) Integral(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	if len(f.pts) == 0 {
		return 0
	}
	total := 0.0
	// Walk segments overlapping [t0, t1).
	for i := range f.pts {
		segStart := f.pts[i].t
		segEnd := Inf
		if i+1 < len(f.pts) {
			segEnd = f.pts[i+1].t
		}
		lo := math.Max(segStart, t0)
		hi := math.Min(segEnd, t1)
		if hi <= lo {
			continue
		}
		if math.IsInf(hi, 1) {
			if f.pts[i].n > 0 {
				return Inf
			}
			if f.pts[i].n < 0 {
				return math.Inf(-1)
			}
			continue
		}
		total += float64(f.pts[i].n) * (hi - lo)
	}
	return total
}

// FindHole returns the earliest time ts >= after such that
// MinOn(ts, ts+dur) >= n, i.e. the first moment an allocation of n nodes for
// dur seconds fits under the profile. It implements the paper's findHole
// (§A.3). dur may be Inf. If the profile never satisfies the request,
// FindHole returns +Inf.
func (f *StepFunc) FindHole(n int, dur, after float64) float64 {
	if after < 0 {
		after = 0
	}
	if dur <= 0 {
		return after
	}
	if n <= 0 {
		return after
	}
	if len(f.pts) == 0 {
		return Inf // constant zero can never serve n > 0
	}
	// Candidate start: "after", then each breakpoint where the value rises.
	ts := after
	for {
		// Check window [ts, ts+dur).
		end := ts + dur
		ok := true
		var failAt float64
		if f.Value(ts) < n {
			ok = false
			failAt = ts
		} else {
			i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > ts })
			for ; i < len(f.pts) && (math.IsInf(dur, 1) || f.pts[i].t < end); i++ {
				if f.pts[i].n < n {
					ok = false
					failAt = f.pts[i].t
					break
				}
			}
		}
		if ok {
			return ts
		}
		// Jump to the next breakpoint after failAt where the value becomes >= n.
		i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > failAt })
		next := Inf
		for ; i < len(f.pts); i++ {
			if f.pts[i].n >= n {
				next = f.pts[i].t
				break
			}
		}
		if math.IsInf(next, 1) {
			return Inf
		}
		ts = next
	}
}

// FirstBelow returns the earliest time t >= after at which the value drops
// strictly below level, or +Inf if the value stays >= level forever.
// The PSA resource-selection logic (§4: "select only the resources it can
// actually take advantage of") uses this to measure availability windows.
func (f *StepFunc) FirstBelow(level int, after float64) float64 {
	if after < 0 {
		after = 0
	}
	if f.Value(after) < level {
		return after
	}
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > after })
	for ; i < len(f.pts); i++ {
		if f.pts[i].n < level {
			return f.pts[i].t
		}
	}
	return Inf
}

// NonNegative reports whether the function is >= 0 everywhere. The scheduler
// uses it as an internal oversubscription check.
func (f *StepFunc) NonNegative() bool {
	for _, p := range f.pts {
		if p.n < 0 {
			return false
		}
	}
	return true
}

// MaxValue returns the maximum value the function attains.
func (f *StepFunc) MaxValue() int {
	m := 0
	if len(f.pts) > 0 {
		m = f.pts[0].n
	}
	for _, p := range f.pts {
		if p.n > m {
			m = p.n
		}
	}
	return m
}

// TrimBefore returns a function that equals f on [t, ∞) and extends f(t)
// backwards to 0. The RMS trims views before pushing them: values in the
// past are reconstruction artifacts, not information.
func (f *StepFunc) TrimBefore(t float64) *StepFunc {
	if t <= 0 || len(f.pts) == 0 {
		return f
	}
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > t })
	// f.pts[i-1] covers t (i >= 1 because pts[0].t == 0 <= t).
	pts := append([]point{{0, f.pts[i-1].n}}, f.pts[i:]...)
	return normalize(pts)
}

// Steps returns the function as the paper's list of (duration, node-count)
// pairs starting at time 0. The final step has Duration == Inf. It is the
// inverse of FromSteps and is used for wire serialization.
func (f *StepFunc) Steps() []Step {
	if len(f.pts) == 0 {
		return []Step{{Inf, 0}}
	}
	out := make([]Step, 0, len(f.pts)+1)
	if f.pts[0].t > 0 {
		out = append(out, Step{f.pts[0].t, 0})
	}
	for i, p := range f.pts {
		dur := Inf
		if i+1 < len(f.pts) {
			dur = f.pts[i+1].t - p.t
		}
		out = append(out, Step{dur, p.n})
	}
	return out
}

// String renders the function in the paper's list-of-pairs notation,
// e.g. "[(3600, 4) (3600, 3) (inf, 0)]".
func (f *StepFunc) String() string {
	if len(f.pts) == 0 {
		return "[(inf, 0)]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range f.pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		var dur string
		if i+1 < len(f.pts) {
			dur = fmt.Sprintf("%g", f.pts[i+1].t-p.t)
		} else {
			dur = "inf"
		}
		fmt.Fprintf(&b, "(%s, %d)", dur, p.n)
	}
	b.WriteByte(']')
	return b.String()
}
