// Package federation scales the CooRMv2 RMS horizontally: a Federator
// front-end partitions the cluster set across N independent rms.Server
// shards, routes application sessions and request()/done() calls to the
// shard owning their target cluster, and merges the per-shard
// non-preemptive/preemptive views into the single federated view each
// application sees. Scheduling semantics are untouched — every shard runs
// the unmodified §3 algorithm over its own clusters; the federation layer
// only routes and merges.
//
// Like the rest of the system the Federator is clock-agnostic: under
// clock.SimClock all shards advance deterministically on one shared virtual
// clock (the federated experiment scenarios), and under clock.RealClock the
// shards run concurrently, each behind its own lock, with
// internal/transport routing TCP sessions to them.
//
// Identifier spaces: the Federator owns both the application-ID and the
// request-ID space. Application IDs are assigned by the front-end and
// registered verbatim on every shard (rms.Server.ConnectID), so per-shard
// metrics recorders aggregate by the same ID. Request IDs are federated:
// the front-end assigns them sequentially and keeps a per-session
// federated↔shard-local translation table, registered atomically with the
// shard's own bookkeeping via rms.Session.RequestObserved.
//
// Known limitation: a request may only relate (NEXT/COALLOC) to a request
// on the same shard, i.e. targeting a cluster owned by the same shard.
// Cross-shard placement is a ROADMAP open item.
package federation

import (
	"fmt"
	"sort"
	"sync"

	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Config parametrizes a Federator. The scheduling knobs (ReschedInterval,
// Policy, GracePeriod, Clip) are applied uniformly to every shard.
type Config struct {
	// Clusters is the full federated cluster set.
	Clusters map[view.ClusterID]int
	// Shards is the number of scheduler shards. It is clamped to
	// [1, len(Clusters)]: a cluster is never split across shards.
	Shards int
	// ReschedInterval is the per-shard re-scheduling interval (§3.2).
	ReschedInterval float64
	// Clock drives every shard; use clock.SimClock for simulations.
	Clock clock.Clock
	// Policy selects the preemptible division policy.
	Policy core.PreemptPolicy
	// GracePeriod is the per-shard protocol-violation grace period.
	GracePeriod float64
	// Clip optionally limits non-preemptive views; each shard receives the
	// restriction of Clip to its own clusters.
	Clip view.View
	// Metrics, when non-nil, is called once per shard (in shard order,
	// during New) to create that shard's recorder; returning nil disables
	// metrics for the shard. Shards must not share a recorder: each
	// reports per-shard allocation state keyed by the federated
	// application ID, and metrics.Aggregate sums them back together.
	Metrics func(shard int) *metrics.Recorder
}

// Federator routes application sessions across a set of rms.Server shards.
type Federator struct {
	shards []*rms.Server
	owner  map[view.ClusterID]int // cluster → shard index
	clk    clock.Clock

	mu      sync.Mutex
	nextApp int
	nextReq request.ID
}

// Partition splits a cluster set into at most n per-shard cluster sets,
// assigning clusters round-robin in sorted ID order so the split is
// deterministic. It never returns an empty shard: n is clamped to
// [1, len(clusters)].
func Partition(clusters map[view.ClusterID]int, n int) []map[view.ClusterID]int {
	if len(clusters) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(clusters) {
		n = len(clusters)
	}
	ids := make([]view.ClusterID, 0, len(clusters))
	for cid := range clusters {
		ids = append(ids, cid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]map[view.ClusterID]int, n)
	for i := range parts {
		parts[i] = make(map[view.ClusterID]int)
	}
	for i, cid := range ids {
		parts[i%n][cid] = clusters[cid]
	}
	return parts
}

// New creates a Federator and its shards. It panics on an invalid
// configuration, mirroring rms.NewServer.
func New(cfg Config) *Federator {
	if cfg.Clock == nil {
		panic("federation: Config.Clock is required")
	}
	if len(cfg.Clusters) == 0 {
		panic("federation: at least one cluster is required")
	}
	parts := Partition(cfg.Clusters, cfg.Shards)
	f := &Federator{
		shards:  make([]*rms.Server, len(parts)),
		owner:   make(map[view.ClusterID]int, len(cfg.Clusters)),
		clk:     cfg.Clock,
		nextApp: 1,
		nextReq: 1,
	}
	for i, part := range parts {
		var rec *metrics.Recorder
		if cfg.Metrics != nil {
			rec = cfg.Metrics(i)
		}
		f.shards[i] = rms.NewServer(rms.Config{
			Clusters:        part,
			ReschedInterval: cfg.ReschedInterval,
			Clock:           cfg.Clock,
			Policy:          cfg.Policy,
			GracePeriod:     cfg.GracePeriod,
			Clip:            clipFor(cfg.Clip, part),
			Metrics:         rec,
		})
		for cid := range part {
			f.owner[cid] = i
		}
	}
	return f
}

// clipFor restricts an administrator clip to one shard's clusters.
func clipFor(clip view.View, part map[view.ClusterID]int) view.View {
	if clip == nil {
		return nil
	}
	out := view.New()
	for cid := range part {
		if f, ok := clip[cid]; ok {
			out[cid] = f
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// NumShards returns the number of scheduler shards (after clamping).
func (f *Federator) NumShards() int { return len(f.shards) }

// Shard exposes one shard for inspection (tests, benchmarks, experiment
// harness). Mutating it directly is not supported.
func (f *Federator) Shard(i int) *rms.Server { return f.shards[i] }

// Owner returns the index of the shard owning a cluster.
func (f *Federator) Owner(cid view.ClusterID) (int, bool) {
	i, ok := f.owner[cid]
	return i, ok
}

// Now returns the federation's current time.
func (f *Federator) Now() float64 { return f.clk.Now() }

// Connect registers an application with every shard under one federated
// application ID and returns the federated session. Connecting to all
// shards eagerly gives the application the same full-cluster-set views a
// single RMS would push, merged by the session's handler fan-in.
func (f *Federator) Connect(h rms.AppHandler) *Session {
	f.mu.Lock()
	id := f.nextApp
	f.nextApp++
	f.mu.Unlock()

	sess := &Session{
		f:          f,
		h:          h,
		id:         id,
		subs:       make([]*rms.Session, len(f.shards)),
		shardViews: make([][2]view.View, len(f.shards)),
		toLocal:    make(map[request.ID]shardReq),
		fromLocal:  make([]map[request.ID]request.ID, len(f.shards)),
	}
	for i := range sess.fromLocal {
		sess.fromLocal[i] = make(map[request.ID]request.ID)
	}
	// Connect outside the federator lock: ConnectID flushes notifications,
	// which may synchronously re-enter the session (and, through an
	// application handler, the federator).
	for i, sh := range f.shards {
		sub, err := sh.ConnectID(&shardHandler{sess: sess, shard: i}, id)
		if err != nil {
			// The federator owns the ID space; a collision is a bug.
			panic(fmt.Sprintf("federation: shard %d rejected app %d: %v", i, id, err))
		}
		sess.mu.Lock()
		sess.subs[i] = sub
		sess.mu.Unlock()
	}
	return sess
}

// nextRequestID reserves one federated request ID. Mirroring rms, an ID is
// burned even if the shard later rejects the request spec, so a 1-shard
// federation stays in lockstep with a single RMS.
func (f *Federator) nextRequestID() request.ID {
	f.mu.Lock()
	id := f.nextReq
	f.nextReq++
	f.mu.Unlock()
	return id
}
