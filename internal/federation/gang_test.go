package federation

import (
	"math"
	"reflect"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// startRec is one observed start: when, which federated request, which node
// IDs. The single-shard differential compares these byte-for-byte between a
// 1-shard federation and a bare RMS.
type startRec struct {
	at  float64
	id  request.ID
	ids []int
}

// driveRelatedWorkload runs the scripted related workload (NEXT and COALLOC
// legs across two clusters) against any Request/Done surface and returns
// the recorded starts. Both the bare server and the 1-shard federation
// expose the same rms.RequestSpec API, so the script is shared.
func driveRelatedWorkload(t *testing.T, e *sim.Engine, app *testApp, req func(rms.RequestSpec) (request.ID, error), done func(request.ID, []int) error) []startRec {
	t.Helper()
	var recs []startRec
	app.onStart = func(id request.ID, ids []int) {
		recs = append(recs, startRec{at: e.Now(), id: id, ids: append([]int(nil), ids...)})
	}
	r1, err := req(rms.RequestSpec{Cluster: cA, N: 3, Duration: 10, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := req(rms.RequestSpec{Cluster: cB, N: 2, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	// Cross-cluster NEXT (same shard at Shards == 1: an ordinary relation).
	if _, err := req(rms.RequestSpec{Cluster: cB, N: 2, Duration: 5, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: r1}); err != nil {
		t.Fatal(err)
	}
	// Cross-cluster COALLOC anchored to the pending NEXT child.
	if _, err := req(rms.RequestSpec{Cluster: cA, N: 1, Duration: 5, Type: request.NonPreempt,
		RelatedHow: request.Coalloc, RelatedTo: r1}); err != nil {
		t.Fatal(err)
	}
	e.Run(20)
	if err := done(r2, nil); err != nil {
		t.Fatal(err)
	}
	e.Run(40)
	_ = r2
	return recs
}

// TestSingleShardGangDifferential is the shards=1 differential with
// relations in play: a 1-shard federation must behave byte-identically to a
// bare rms.Server on the same related workload — same request IDs, same
// start times, same node IDs — and its gang coordinator must stay cold
// (every relation is shard-local, so no reservation is ever placed).
func TestSingleShardGangDifferential(t *testing.T) {
	// Bare server.
	be := sim.NewEngine()
	bare := rms.NewServer(rms.Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 8, cC: 8},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: be},
	})
	bapp := &testApp{}
	bsess := bare.Connect(bapp)
	bareRecs := driveRelatedWorkload(t, be, bapp, bsess.Request, bsess.Done)

	// 1-shard federation over the identical cluster set.
	fe := sim.NewEngine()
	fedRec := metrics.NewRecorder()
	f := New(Config{
		Clusters:          map[view.ClusterID]int{cA: 8, cB: 8, cC: 8},
		Shards:            1,
		ReschedInterval:   1,
		Clock:             clock.SimClock{E: fe},
		FederationMetrics: fedRec,
	})
	fapp := &testApp{}
	fsess := f.Connect(fapp)
	fedRecs := driveRelatedWorkload(t, fe, fapp, fsess.Request, fsess.Done)

	if len(bareRecs) != 4 {
		t.Fatalf("bare server recorded %d starts, want 4: %+v", len(bareRecs), bareRecs)
	}
	if !reflect.DeepEqual(bareRecs, fedRecs) {
		t.Fatalf("1-shard federation diverged from bare RMS:\nbare: %+v\nfed:  %+v", bareRecs, fedRecs)
	}
	for _, c := range []metrics.Counter{metrics.GangCommitted, metrics.GangAborted, metrics.GangRetried} {
		if n := fedRec.Count(0, c); n != 0 {
			t.Errorf("1-shard federation moved gang counter %v to %d", c, n)
		}
	}
	mustCheck(t, f)
}

// TestGangCoallocCommits pins the COALLOC flavour of the two-phase path:
// both legs start, the commit counter moves, and invariants hold after the
// gang has fully drained.
func TestGangCoallocCommits(t *testing.T) {
	e, f, fedRec := newRecoveryFederation(t, KillOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 10, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	child, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 10, Type: request.NonPreempt,
		RelatedHow: request.Coalloc, RelatedTo: parent})
	if err != nil {
		t.Fatalf("cross-shard COALLOC = %v, want reservation acceptance", err)
	}
	e.Run(30)
	started := map[request.ID]bool{}
	app.mu.Lock()
	for _, st := range app.starts {
		started[st.id] = true
	}
	app.mu.Unlock()
	if !started[parent] || !started[child] {
		t.Fatalf("gang legs started = %v, want both %d and %d", started, parent, child)
	}
	if n := fedRec.Count(0, metrics.GangCommitted); n != 1 {
		t.Errorf("gang-committed counter = %d, want 1", n)
	}
	if n := fedRec.Count(0, metrics.GangAborted); n != 0 {
		t.Errorf("gang-aborted counter = %d, want 0", n)
	}
	mustCheck(t, f)
}

// TestGangAbortsWhenChildCannotFit drives the abort path: the child leg's
// cluster is fully pinned by an infinite allocation, so alignment always
// sees an unschedulable leg. The coordinator must retry with backoff, then
// abort deterministically — releasing the hold (no leak) and dropping only
// the child while the parent runs to completion.
func TestGangAbortsWhenChildCannotFit(t *testing.T) {
	e, f, fedRec := newRecoveryFederation(t, KillOnCrash)
	squatter := &testApp{}
	ssess := f.Connect(squatter)
	if _, err := ssess.Request(rms.RequestSpec{Cluster: cB, N: 8, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(2)

	app := &testApp{}
	sess := f.Connect(app)
	parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 200, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	child, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 5, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: parent})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(120) // past the full backoff budget (1+2+4+8 s of retries)
	if n := fedRec.Count(0, metrics.GangAborted); n != 1 {
		t.Fatalf("gang-aborted counter = %d, want 1", n)
	}
	if n := fedRec.Count(0, metrics.GangRetried); n == 0 {
		t.Error("gang-retried counter = 0, want backoff retries before the abort")
	}
	app.mu.Lock()
	for _, st := range app.starts {
		if st.id == child {
			t.Errorf("aborted gang child %d started anyway", child)
		}
	}
	app.mu.Unlock()
	if app.killed != "" {
		t.Fatalf("gang abort killed the session: %q", app.killed)
	}
	mustCheck(t, f)
	_ = parent
}

// TestMigrateChildClusterWithHoldInFlight races MigrateCluster against an
// in-flight reservation: the child's cluster (hold placed, not committed)
// migrates onto the parent's shard. The hold must survive the move — carried
// in the cluster snapshot — and the gang must still resolve and run.
func TestMigrateChildClusterWithHoldInFlight(t *testing.T) {
	e, f, _ := newMigrateFederation(t, RequeueOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	// Parent on beta (shard 1), child hold on gamma (shard 0, which also
	// owns alpha — so gamma is migratable).
	parent, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 3, Duration: 15, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	child, err := sess.Request(rms.RequestSpec{Cluster: cC, N: 2, Duration: 5, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: parent})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(0.5) // hold placed, evaluation timer not yet fired: mid-reservation
	if _, err := f.MigrateCluster(cC, 1); err != nil {
		t.Fatalf("migrating cluster with in-flight hold = %v, want success", err)
	}
	mustCheck(t, f)
	e.Run(40)
	childStarted := false
	app.mu.Lock()
	for _, st := range app.starts {
		if st.id == child {
			childStarted = true
		}
	}
	app.mu.Unlock()
	if !childStarted {
		t.Fatalf("gang child %d never started after its cluster migrated mid-hold; starts = %v", child, app.starts)
	}
	mustCheck(t, f)
}

// TestMigrateParentClusterWithHoldInFlight is the mirror interleaving: the
// PARENT's cluster migrates while the child's hold is pending on the other
// shard, co-locating both legs on the child's shard. The reservation must
// still commit.
func TestMigrateParentClusterWithHoldInFlight(t *testing.T) {
	e, f, _ := newMigrateFederation(t, RequeueOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 3, Duration: 15, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	child, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 5, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: parent})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(0.5) // hold placed, not yet committed
	if _, err := f.MigrateCluster(cA, 1); err != nil {
		t.Fatalf("migrating parent cluster with in-flight hold = %v, want success", err)
	}
	mustCheck(t, f)
	e.Run(40)
	childStarted := false
	app.mu.Lock()
	for _, st := range app.starts {
		if st.id == child {
			childStarted = true
		}
	}
	app.mu.Unlock()
	if !childStarted {
		t.Fatalf("gang child %d never started after parent cluster migrated mid-hold; starts = %v", child, app.starts)
	}
	mustCheck(t, f)
}

// TestCommittedGangKeepsClustersMigratable is the ErrEntangled-relaxation
// regression: a committed cross-shard gang leaves both legs shard-locally
// FREE, so the clusters involved must remain migratable afterwards.
func TestCommittedGangKeepsClustersMigratable(t *testing.T) {
	e, f, fedRec := newMigrateFederation(t, KillOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 100, Type: request.NonPreempt,
		RelatedHow: request.Coalloc, RelatedTo: parent}); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if n := fedRec.Count(0, metrics.GangCommitted); n != 1 {
		t.Fatalf("gang-committed counter = %d, want 1 before migration", n)
	}
	// Both legs live; historically the cross-shard relation would have
	// entangled alpha. It must migrate cleanly now.
	if _, err := f.MigrateCluster(cA, 1); err != nil {
		t.Fatalf("migrating cluster with committed gang leg = %v, want success", err)
	}
	mustCheck(t, f)
	e.Run(e.Now() + 5)
	mustCheck(t, f)
}

// TestCrashChildShardBetweenHoldAndCommit kills the shard holding the
// child's reservation before the parent finishes, under both recovery
// policies: requeue must replay the hold and still commit; kill must abort
// the gang without leaking the hold or killing the session (a hold has no
// live allocation behind it).
func TestCrashChildShardBetweenHoldAndCommit(t *testing.T) {
	t.Run("requeue", func(t *testing.T) {
		e, f, fedRec := newRecoveryFederation(t, RequeueOnCrash)
		app := &testApp{}
		sess := f.Connect(app)
		parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 30, Type: request.NonPreempt})
		if err != nil {
			t.Fatal(err)
		}
		child, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 5, Type: request.NonPreempt,
			RelatedHow: request.Next, RelatedTo: parent})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(0.5) // hold live, commit window still open
		rep := f.CrashShard(1)
		if rep.Requeued != 1 || rep.GangsAborted != 0 {
			t.Fatalf("crash report = %+v, want the hold requeued and no gang aborted", rep)
		}
		mustCheck(t, f)
		rrep := f.RestartShard(1)
		if rrep.Replayed != 1 {
			t.Fatalf("restart replayed %d, want 1 (the hold)", rrep.Replayed)
		}
		mustCheck(t, f)
		e.Run(50)
		childStarted := false
		app.mu.Lock()
		for _, st := range app.starts {
			if st.id == child {
				childStarted = true
			}
		}
		app.mu.Unlock()
		if !childStarted {
			t.Fatalf("replayed gang child %d never started; starts = %v", child, app.starts)
		}
		if n := fedRec.Count(0, metrics.GangCommitted); n != 1 {
			t.Errorf("gang-committed counter = %d, want 1", n)
		}
		mustCheck(t, f)
	})
	t.Run("kill", func(t *testing.T) {
		e, f, fedRec := newRecoveryFederation(t, KillOnCrash)
		app := &testApp{}
		sess := f.Connect(app)
		parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 30, Type: request.NonPreempt})
		if err != nil {
			t.Fatal(err)
		}
		child, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 5, Type: request.NonPreempt,
			RelatedHow: request.Next, RelatedTo: parent})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(0.5) // hold live, commit window still open
		rep := f.CrashShard(1)
		if rep.GangsAborted != 1 {
			t.Fatalf("crash report = %+v, want exactly the gang aborted", rep)
		}
		if len(rep.Killed) != 0 {
			t.Fatalf("crash killed %v — a hold has no allocation and must not kill its session", rep.Killed)
		}
		if app.killed != "" {
			t.Fatalf("session killed (%q) by losing a hold", app.killed)
		}
		if n := fedRec.Count(0, metrics.GangAborted); n != 1 {
			t.Errorf("gang-aborted counter = %d, want 1", n)
		}
		mustCheck(t, f)
		f.RestartShard(1)
		e.Run(50)
		app.mu.Lock()
		for _, st := range app.starts {
			if st.id == child {
				t.Errorf("aborted gang child %d started after restart", child)
			}
		}
		app.mu.Unlock()
		mustCheck(t, f)
	})
}

// TestCrashParentShardBetweenHoldAndCommit kills the coordinator-side
// shard — the one running the PARENT leg — while the child's hold is live
// on the surviving shard. Requeue replays the parent and the gang still
// commits; kill tears the session down, which must release the orphaned
// hold on the surviving shard (no leak).
func TestCrashParentShardBetweenHoldAndCommit(t *testing.T) {
	t.Run("requeue", func(t *testing.T) {
		e, f, fedRec := newRecoveryFederation(t, RequeueOnCrash)
		app := &testApp{}
		sess := f.Connect(app)
		parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 30, Type: request.NonPreempt})
		if err != nil {
			t.Fatal(err)
		}
		child, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 5, Type: request.NonPreempt,
			RelatedHow: request.Next, RelatedTo: parent})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(0.5) // hold live, commit window still open
		rep := f.CrashShard(0)
		if rep.Requeued != 1 {
			t.Fatalf("crash report = %+v, want the started parent requeued", rep)
		}
		mustCheck(t, f)
		f.RestartShard(0)
		mustCheck(t, f)
		e.Run(80)
		started := map[request.ID]int{}
		app.mu.Lock()
		for _, st := range app.starts {
			started[st.id]++
		}
		app.mu.Unlock()
		if started[child] != 1 {
			t.Fatalf("gang child started %d times, want 1; starts = %v", started[child], started)
		}
		if n := fedRec.Count(0, metrics.GangCommitted); n != 1 {
			t.Errorf("gang-committed counter = %d, want 1", n)
		}
		mustCheck(t, f)
	})
	t.Run("kill", func(t *testing.T) {
		e, f, _ := newRecoveryFederation(t, KillOnCrash)
		app := &testApp{}
		sess := f.Connect(app)
		parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 30, Type: request.NonPreempt})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 5, Type: request.NonPreempt,
			RelatedHow: request.Next, RelatedTo: parent}); err != nil {
			t.Fatal(err)
		}
		e.Run(0.5) // hold live, commit window still open
		rep := f.CrashShard(0)
		if len(rep.Killed) != 1 || rep.Killed[0] != sess.AppID() {
			t.Fatalf("crash killed %v, want [%d] (parent allocation lost)", rep.Killed, sess.AppID())
		}
		if app.killed == "" {
			t.Fatal("session survived losing its started parent under kill policy")
		}
		// Teardown must have released the hold on the surviving shard: the
		// invariant checker rejects any held request without a session.
		mustCheck(t, f)
		f.RestartShard(0)
		e.Run(20)
		mustCheck(t, f)
	})
}
