package experiments

import (
	"fmt"

	"coormv2/internal/apps"
)

// AccountingRow summarizes one application's resource consumption under the
// accounting extension (the paper's first "future work" item, §7: "study
// how accounting should be done in CooRMv2, so as to determine users to
// efficiently use resources").
type AccountingRow struct {
	App          string
	UsedArea     float64 // node·s actually allocated
	PreAllocArea float64 // node·s reserved (pre-allocated)
	Waste        float64 // node·s lost to kills
	// ReservedIdle is the reservation the application did not use — the
	// natural basis for an incentive charge.
	ReservedIdle float64
}

// Accounting runs the κ = 2 scenario twice (static and dynamic AMR) and
// reports per-application accounting. The point the numbers make: with a
// charging model of used + α·reserved-idle, a dynamic NEA pays mostly for
// what it computes while its idle reservation does PSA work, whereas a
// static one burns its whole over-sized guess — CooRMv2 makes the efficient
// behaviour the cheap one.
func Accounting(seed int64, steps int, smax, psaTaskDur float64) ([]AccountingRow, error) {
	if psaTaskDur <= 0 {
		psaTaskDur = 600
	}
	out := []AccountingRow{}
	for _, mode := range []struct {
		name string
		m    apps.NEAMode
	}{
		{"AMR static", apps.NEAStatic},
		{"AMR dynamic", apps.NEADynamic},
	} {
		res, err := RunScenario(ScenarioConfig{
			Seed: seed, Steps: steps, Smax: smax,
			TargetEff: 0.75, Overcommit: 2, Mode: mode.m,
			PSATaskDurations: []float64{psaTaskDur},
		})
		if err != nil {
			return nil, fmt.Errorf("accounting %s: %w", mode.name, err)
		}
		idle := res.AMRPreAllocArea - res.AMRArea
		if idle < 0 {
			idle = 0
		}
		out = append(out, AccountingRow{
			App:          mode.name,
			UsedArea:     res.AMRArea,
			PreAllocArea: res.AMRPreAllocArea,
			ReservedIdle: idle,
		})
		out = append(out, AccountingRow{
			App:      mode.name + " / PSA",
			UsedArea: res.PSAArea[0],
			Waste:    res.PSAWaste[0],
		})
	}
	return out, nil
}
