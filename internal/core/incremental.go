package core

import (
	"math"

	"coormv2/internal/request"
	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// This file implements incremental recomputation for Schedule: per-cluster
// dirty tracking over the base availability folds, per-application caching
// of round artifacts (started-allocation views, CBF outputs, eqSchedule
// occupancies and granted views), and per-cluster caching of the eqSchedule
// interval walk. A cached artifact is reused only when its exact inputs are
// provably unchanged — set contents, fixed-request rectangles, profile
// object identity (profiles are immutable), and re-checked alloc() values
// for the time-dependent windows — so outputs stay bit-identical to a full
// recomputation (pinned by TestIncrementalMatchesFullRecompute and the
// federation differential tests).
//
// Contract: the scheduler cannot see request-state mutations performed by
// its caller (the RMS mutates request sets and attributes directly), so any
// such mutation must be reported with MarkAppDirty before the next Schedule
// call. Structural mutations through the Scheduler's own API (AddApp,
// RemoveApp, AddCluster, RemoveCluster, SetClip, SetPolicy) invalidate
// caches themselves. SetIncremental(false) restores unconditional full
// recomputation.

// SchedStats counts cache behaviour across Schedule rounds. All counters
// are cumulative; Reused+Recomputed pairs sum to the work the corresponding
// full recomputation would have performed.
type SchedStats struct {
	// Rounds counts Schedule calls; FullRounds counts the subset that ran
	// with every cache invalidated (structural change or incremental off).
	Rounds     int64
	FullRounds int64
	// Artifacts: per-app started-allocation views (toView folds).
	ArtifactsReused     int64
	ArtifactsRecomputed int64
	// FoldClustersRecomputed counts per-cluster base-availability rebuilds.
	FoldClustersRecomputed int64
	// CBF: per-app steps of the non-preemptive Conservative Back-Filling pass.
	CBFReused     int64
	CBFRecomputed int64
	// EqOcc: per-app preliminary occupancy views of eqSchedule (Alg. 3 lines 1-3).
	EqOccReused     int64
	EqOccRecomputed int64
	// Walks: per-cluster interval walks of eqSchedule (Alg. 3 lines 4-27).
	WalksReused     int64
	WalksRecomputed int64
	// EqApp: per-app rescheduling against the granted view (Alg. 3 lines 28-30).
	EqAppReused     int64
	EqAppRecomputed int64
}

// Map flattens the counters into the key/value shape an obs registry
// counter source expects. Key names are stable: they appear in
// /debug/obs snapshots and experiment reports.
func (s SchedStats) Map() map[string]int64 {
	return map[string]int64{
		"rounds":                   s.Rounds,
		"full_rounds":              s.FullRounds,
		"artifacts_reused":         s.ArtifactsReused,
		"artifacts_recomputed":     s.ArtifactsRecomputed,
		"fold_clusters_recomputed": s.FoldClustersRecomputed,
		"cbf_reused":               s.CBFReused,
		"cbf_recomputed":           s.CBFRecomputed,
		"eqocc_reused":             s.EqOccReused,
		"eqocc_recomputed":         s.EqOccRecomputed,
		"walks_reused":             s.WalksReused,
		"walks_recomputed":         s.WalksRecomputed,
		"eqapp_reused":             s.EqAppReused,
		"eqapp_recomputed":         s.EqAppRecomputed,
	}
}

// rectA is the canonical record of one fixed request's allocation, captured
// from the request attributes right after they were (re)computed. Two equal
// rectA sequences generate byte-identical occupancy views (StepFuncs are
// stored in canonical normalized form, and node counts are integers, so
// rectangle accumulation is exactly order-independent). startedAt records
// the *input* start instant (-Inf while unstarted) alongside the derived
// t0: a start performed by the RMS leaves ScheduledAt stale until the next
// toView, and the comparison must see the mutation through the stale value.
type rectA struct {
	cid       view.ClusterID
	t0, dur   float64
	startedAt float64
	n         int
	wrapped   bool
}

// appCache holds one application's cached round artifacts. It lives on the
// AppState so it is dropped with the application.
type appCache struct {
	// valid marks the request-state artifacts below as current; it is
	// cleared by MarkAppDirty and restored by refreshAppLocked.
	valid bool

	// Artifacts derived from the PA/NP request sets (time-independent:
	// toView with a nil availability view never reads the clock).
	paRects   []rectA // fixed PA rects, set order
	npRects   []rectA // fixed ¬P rects (wrapped flag carried), set order
	paSettled bool    // every PA request is Fixed: fit is a no-op
	npSettled bool    // every ¬P request is Fixed
	idle      bool    // no PA and no ¬P requests at all

	// CBF outputs, reusable while the running availability prefix is
	// byte-identical to the round they were computed in (chain reuse).
	cbfOK     bool
	cbfOut    view.View // the application's non-preemptive view
	cbfExcess view.View // wrapped excess subtracted from the running vNP

	// eqSchedule caches.
	eqOK       bool
	pRects     []rectA // fixed P rects (NAlloc excluded: re-checked per round)
	pSettled   bool    // every P request is Fixed: no time-dependent fit
	vocc       view.View
	voccNAlloc []int     // phase-A NAlloc per P request, set order
	granted    view.View // granted preemptive view object of the last round
}

// clusterWalk caches one cluster's eqSchedule interval walk: the exact
// input profiles (by identity — StepFuncs are immutable) and the per-slot
// output fragments.
type clusterWalk struct {
	key   []*stepfunc.StepFunc // [vin fragment, slot fragments...]
	frags []*stepfunc.StepFunc // per-slot outputs
}

// SetIncremental switches incremental recomputation on or off (default on).
// With it off every Schedule round recomputes everything from scratch; the
// differential tests pin the two modes byte-identical.
func (s *Scheduler) SetIncremental(on bool) {
	s.incremental = on
	s.structGen++ // flush every cache on the next round
}

// Incremental reports whether incremental recomputation is enabled.
func (s *Scheduler) Incremental() bool { return s.incremental }

// Stats returns the cumulative incremental-recomputation counters.
func (s *Scheduler) Stats() SchedStats { return s.stats }

// MarkAppDirty reports that the application's request state was mutated
// outside the scheduler (request added/withdrawn/finished, allocation
// started, attributes rewritten). The next Schedule round recomputes the
// application's cached artifacts; unmarked mutations make cached rounds
// stale, so every RMS mutation path must call this. Unknown IDs are
// ignored.
func (s *Scheduler) MarkAppDirty(id int) {
	if a, ok := s.byID[id]; ok {
		a.cache.valid = false
	}
}

// bumpStruct invalidates everything on the next round: cluster topology,
// application membership/order, clip and policy all feed every artifact.
func (s *Scheduler) bumpStruct() { s.structGen++ }

// invalidateDerivedLocked clears every derived cache while keeping the
// per-app request-state artifacts (they depend only on the request sets,
// which structural changes do not touch — paths that do touch them mark the
// app dirty as well).
func (s *Scheduler) invalidateDerivedLocked() {
	for _, a := range s.apps {
		a.cache.cbfOK = false
		a.cache.eqOK = false
		a.cache.granted = nil
	}
	s.foldsReady = false
	s.pvClampOK = false
	s.eqIdle = nil
	s.outOK = false
	clear(s.eqWalks)
}

// allFixed reports whether every request of the set is Fixed — i.e. the
// set has no request whose schedule the round computes from the clock.
func allFixed(rs *request.Set) bool {
	for _, r := range rs.All() {
		if !r.Fixed {
			return false
		}
	}
	return true
}

// captureRects records the fixed requests' allocation rectangles in set
// order. withAlloc selects whether the (availability-dependent) NAlloc or
// the requested N is recorded.
func captureRects(rs *request.Set, dst []rectA, withAlloc bool) []rectA {
	dst = dst[:0]
	for _, r := range rs.All() {
		if !r.Fixed {
			continue
		}
		n := r.N
		if withAlloc {
			n = r.NAlloc
		}
		startedAt := math.Inf(-1)
		if r.Started() {
			startedAt = r.StartedAt
		}
		dst = append(dst, rectA{
			cid: r.Cluster, t0: r.ScheduledAt, dur: r.Duration,
			startedAt: startedAt, n: n, wrapped: r.Wrapped,
		})
	}
	return dst
}

func rectsEqual(a, b []rectA) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addRectClusters marks the clusters of every rect dirty.
func addRectClusters(dst map[view.ClusterID]struct{}, rects []rectA) {
	for i := range rects {
		dst[rects[i].cid] = struct{}{}
	}
}

// refreshAppLocked recomputes a dirty application's request-state artifacts
// and reports which base-fold clusters they dirtied. It preserves cbfOK and
// eqOK when the recomputed artifacts are identical to the cached ones (the
// common case when the mutation hit only one of the three sets).
func (s *Scheduler) refreshAppLocked(a *AppState, now float64, npFold, pFold map[view.ClusterID]struct{}) {
	c := &a.cache
	oldPA, oldNP := c.paRects, c.npRects
	oldPASettled, oldNPSettled, oldIdle := c.paSettled, c.npSettled, c.idle

	a.startedPA = toViewScratch(a.PA, nil, now, &s.sc)
	a.startedNP = toViewScratch(a.NP, nil, now, &s.sc)
	newPA := captureRects(a.PA, s.sc.paScratch[:0], true)
	newNP := captureRects(a.NP, s.sc.npScratch[:0], true)
	c.paSettled = allFixed(a.PA)
	c.npSettled = allFixed(a.NP)
	c.idle = a.PA.Len() == 0 && a.NP.Len() == 0

	if !rectsEqual(oldPA, newPA) {
		addRectClusters(npFold, oldPA)
		addRectClusters(npFold, newPA)
	}
	if !rectsEqual(oldNP, newNP) {
		// Started ¬P allocations feed the preemptible fold; their wrapped
		// excess feeds the non-preemptive fold.
		addRectClusters(pFold, oldNP)
		addRectClusters(pFold, newNP)
		for _, rects := range [2][]rectA{oldNP, newNP} {
			for i := range rects {
				if rects[i].wrapped {
					npFold[rects[i].cid] = struct{}{}
				}
			}
		}
	}
	c.cbfOK = c.cbfOK &&
		rectsEqual(oldPA, newPA) && rectsEqual(oldNP, newNP) &&
		c.paSettled == oldPASettled && c.npSettled == oldNPSettled && c.idle == oldIdle
	// Swap the freshly captured lists into the cache and recycle the old
	// backing arrays as the next refresh's scratch.
	c.paRects, s.sc.paScratch = newPA, oldPA
	c.npRects, s.sc.npScratch = newNP, oldNP

	// The eqSchedule caches survive a refresh only when the P set's fixed
	// structure is untouched (NAlloc values are re-verified against the
	// current availability at reuse time, so they are excluded here).
	if c.eqOK {
		freshP := captureRects(a.P, s.sc.rectScratch[:0], false)
		s.sc.rectScratch = freshP
		if !rectsEqual(c.pRects, freshP) || allFixed(a.P) != c.pSettled {
			c.eqOK = false
		}
	}
	c.valid = true
}

// rebuildFoldClusterLocked recomputes one cluster's entries of the base
// availability folds: baseNP (capacity minus started pre-allocations minus
// wrapped ¬P excess) and basePv (capacity minus started ¬P allocations).
// The per-cluster op sequence matches the full recomputation exactly —
// capacity rectangle, one k-way sum subtraction in application order, then
// the wrapped rectangles in (application, set) order — so the rebuilt
// profiles are byte-identical to a from-scratch round.
func (s *Scheduler) rebuildFoldClusterLocked(cid view.ClusterID) {
	s.stats.FoldClustersRecomputed++
	var base *stepfunc.StepFunc
	if n := s.clusters[cid]; n > 0 {
		base = stepfunc.Rect(0, math.Inf(1), n)
	} else {
		base = stepfunc.Zero()
	}

	fs := s.sc.foldFns[:0]
	for _, a := range s.apps {
		if f, ok := a.startedPA[cid]; ok && f != nil {
			fs = append(fs, f)
		}
	}
	np := base
	if len(fs) > 0 {
		np = np.Sub(stepfunc.SumAll(fs))
	}
	for _, a := range s.apps {
		for i := range a.cache.npRects {
			r := &a.cache.npRects[i]
			if r.wrapped && r.cid == cid {
				np = np.AddRect(r.t0, r.dur, -r.n)
			}
		}
	}
	if np.IsZero() {
		delete(s.baseNP, cid)
	} else {
		s.baseNP[cid] = np
	}

	fs = fs[:0]
	for _, a := range s.apps {
		if f, ok := a.startedNP[cid]; ok && f != nil {
			fs = append(fs, f)
		}
	}
	s.sc.foldFns = fs
	pv := base
	if len(fs) > 0 {
		pv = pv.Sub(stepfunc.SumAll(fs))
	}
	if pv.IsZero() {
		delete(s.basePv, cid)
	} else {
		s.basePv[cid] = pv
	}
}

// rebuildFoldsLocked rebuilds the dirty clusters of the base folds, or all
// relevant clusters when the folds are not ready at all. It reports whether
// the non-preemptive and preemptible folds changed.
func (s *Scheduler) rebuildFoldsLocked(npFold, pFold map[view.ClusterID]struct{}) (npChanged, pChanged bool) {
	if !s.foldsReady {
		clear(s.baseNP)
		clear(s.basePv)
		clear(npFold)
		clear(pFold)
		for cid := range s.clusters {
			npFold[cid] = struct{}{}
		}
		for _, a := range s.apps {
			addRectClusters(npFold, a.cache.paRects)
			addRectClusters(npFold, a.cache.npRects)
		}
		for cid := range npFold {
			s.rebuildFoldClusterLocked(cid)
		}
		s.foldsReady = true
		s.pvClampOK = false
		return true, true
	}
	for cid := range pFold {
		if _, dup := npFold[cid]; !dup {
			s.rebuildFoldClusterLocked(cid)
		}
	}
	for cid := range npFold {
		// rebuildFoldClusterLocked refreshes both folds for the cluster; a
		// baseNP-only dirty cluster rebuilds a byte-identical basePv entry
		// (its inputs are unchanged), so basePv-derived caches stay valid.
		s.rebuildFoldClusterLocked(cid)
	}
	npChanged = len(npFold) > 0
	pChanged = len(pFold) > 0
	if pChanged {
		s.pvClampOK = false
	}
	return npChanged, pChanged
}

// allocStable reports whether re-evaluating the availability-dependent
// alloc() of every request in the set against v still yields want (one
// entry per request, set order). It is the exact reuse condition for the
// time-dependent part of a cached toView: the alloc window slides with the
// clock, so the cached NAllocs hold iff the profile value over the new
// window is unchanged.
func allocStable(rs *request.Set, v view.View, now float64, want []int) bool {
	all := rs.All()
	if len(want) != len(all) {
		return false
	}
	for i, r := range all {
		t0, t1 := allocWindow(r, now)
		if v.Alloc(r.Cluster, r.N, t0, t1-t0) != want[i] {
			return false
		}
	}
	return true
}

// grantAllocStable is allocStable against the final (granted-view) NAlloc
// attributes the last round left on the requests.
func grantAllocStable(rs *request.Set, v view.View, now float64) bool {
	for _, r := range rs.All() {
		t0, t1 := allocWindow(r, now)
		if v.Alloc(r.Cluster, r.N, t0, t1-t0) != r.NAlloc {
			return false
		}
	}
	return true
}
