// Package core implements the CooRMv2 scheduling algorithms of the paper's
// appendix: toView (Algorithm 1), fit (Algorithm 2), eqSchedule
// (Algorithm 3) and the main scheduling algorithm (Algorithm 4).
//
// The scheduler is a pure state machine: Schedule(now) maps the current
// request state to per-application views and start decisions without
// performing any I/O. The surrounding RMS layer (internal/rms) owns node-ID
// pools, timers and application notifications; this split is what lets the
// same scheduler run inside the discrete-event simulator and inside the real
// TCP daemon, exactly as the paper's authors did with their prototype (§5).
//
// Scheduling order follows §3.2: applications are sorted by connection time;
// pre-allocations are scheduled first using Conservative Back-Filling, then
// non-preemptible requests inside the pre-allocations (requests that cannot
// be served from a pre-allocation are implicitly wrapped in pre-allocations
// of the same size), and the remaining resources are used for preemptible
// requests via equi-partitioning with filling.
package core

import (
	"math"

	"coormv2/internal/request"
	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// timeEps is the tolerance when comparing scheduled times against "now".
// All times flow through exact float64 arithmetic, but an epsilon keeps the
// start test robust against accumulated rounding in long simulations.
const timeEps = 1e-9

// reqQueue is a FIFO of requests used by the fixed-point loops of
// Algorithms 1 and 2. Popping advances a head index instead of re-slicing,
// so reset() can reuse the backing array across calls.
type reqQueue struct {
	items []*request.Request
	head  int
}

func (q *reqQueue) push(r *request.Request) { q.items = append(q.items, r) }

func (q *reqQueue) pop() *request.Request {
	r := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	return r
}

func (q *reqQueue) empty() bool { return q.head >= len(q.items) }

func (q *reqQueue) reset() {
	for i := q.head; i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.head = 0
}

// scratch holds the per-Scheduler buffers reused across scheduling rounds.
// One Schedule round performs thousands of small CAP operations; hanging
// their transient storage off the Scheduler keeps the hot path almost
// allocation-free. A zero scratch is ready to use, so the test-only
// wrappers of fit/toView/eqSchedule can run with a throwaway one.
type scratch struct {
	q reqQueue

	// Schedule round accumulators.
	inPA view.View

	// Incremental-recomputation buffers. paScratch/npScratch alternate with
	// the per-app cached rect lists (capture into scratch, compare, swap),
	// so a dirty-app refresh allocates nothing in steady state.
	rectScratch []rectA
	paScratch   []rectA
	npScratch   []rectA
	foldFns     []*stepfunc.StepFunc
	walks       []*clusterWalk
	slotViews   []view.View
	slotStable  []bool

	// eqSchedule buffers.
	occ      []int // indices of applications with non-nil occupancy
	vocc     []view.View
	clusters []view.ClusterID
	cseen    map[view.ClusterID]bool
	bps      []float64
	profs    []*stepfunc.StepFunc // per-source profile cursors, [0] = vin
	cursor   []int
	val      []int
	req      []int
	share    []int
	need     []int
	grant    []int
	builders []stepfunc.Builder
}

// grown returns s resized to n elements, reusing capacity.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// allocEps is the width of the instantaneous window used for preemptible
// entitlements (see allocWindow).
const allocEps = 1e-6

// allocWindow returns the [start, end) window over which a request's
// allocation must be covered by an availability view when computing NAlloc.
// The window is clamped to start no earlier than now: availability profiles
// are reconstructed each round, so their values in the past are not
// meaningful for enforcement.
//
// For preemptible requests the window is instantaneous: the entitlement of
// a preemptible allocation is its *current* availability. Future reductions
// are signalled through the preemptive view ("either immediately or at a
// future time", §3.1.4) and only become binding — NAlloc shrinks, and the
// grace-period enforcement starts — once the scheduling round at the drop
// time recomputes the entitlement. Using the whole remaining duration
// instead would make any announced future reclamation retroactively shrink
// an open-ended allocation at announce time.
func allocWindow(r *request.Request, now float64) (float64, float64) {
	start := r.ScheduledAt
	if start < now {
		start = now
	}
	if r.Type == request.Preempt {
		return start, start + allocEps
	}
	end := r.ScheduledAt + r.Duration
	if math.IsInf(r.Duration, 1) {
		end = math.Inf(1)
	}
	return start, end
}
