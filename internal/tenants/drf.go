package tenants

import (
	"math"
	"sort"

	"coormv2/internal/core"
	"coormv2/internal/request"
	"coormv2/internal/view"
)

// DRFPolicy is a core.SchedulingPolicy ordering applications by dominant
// share across the tenant tree, gating admission on the queues' max
// quotas, and (as a core.VictimNominator) nominating cross-queue
// preemption victims. One instance drives exactly one scheduler; create
// one per federation shard, sharing the (immutable) Tree.
//
// Dominant share of a queue: max over clusters of usage divided by the
// queue's guarantee on that cluster (or the cluster capacity where no
// guarantee is set). Round order is a depth-first walk of the tree with
// children visited in ascending dominant-share order (ties by name), a
// queue's own applications in connection order before its children —
// so the most under-served tenant is offered resources first.
type DRFPolicy struct {
	tree    *Tree
	preempt bool

	// Per-round scratch, indexed by Queue.id. usage counts the nodes of
	// started unfinished allocations (NAlloc, all three request types);
	// pending counts the nodes of unstarted unheld requests (N). Both
	// are aggregated up the tree. share is the dominant share.
	usage   []Resources
	pending []Resources
	share   []float64
	appsAt  [][]*core.AppState
	resolve map[string]*Queue // tenant label → queue memo
	kids    [][]*Queue        // per-queue sorted-children scratch

	// lastRejected counts the admissions denied in the last round.
	lastRejected int
}

// NewDRF returns a DRF policy over the tree with preemption enabled.
// The tree is sealed: it must not gain queues afterwards.
func NewDRF(tree *Tree) *DRFPolicy {
	tree.seal()
	n := len(tree.queues)
	p := &DRFPolicy{
		tree:    tree,
		preempt: true,
		usage:   make([]Resources, n),
		pending: make([]Resources, n),
		share:   make([]float64, n),
		appsAt:  make([][]*core.AppState, n),
		resolve: make(map[string]*Queue),
		kids:    make([][]*Queue, n),
	}
	for i := range p.usage {
		p.usage[i] = make(Resources)
		p.pending[i] = make(Resources)
	}
	return p
}

// SetPreemption switches victim nomination on or off (on by default).
// With it off, Victims always returns nil — DRF ordering and admission
// still apply.
func (p *DRFPolicy) SetPreemption(on bool) { p.preempt = on }

// Tree returns the tenant tree the policy schedules over.
func (p *DRFPolicy) Tree() *Tree { return p.tree }

// Name implements core.SchedulingPolicy.
func (p *DRFPolicy) Name() string { return "drf" }

// Stable implements core.SchedulingPolicy: DRF reorders per round.
func (p *DRFPolicy) Stable() bool { return false }

// queueOf resolves an application's tenant label, memoized.
func (p *DRFPolicy) queueOf(a *core.AppState) *Queue {
	if q, ok := p.resolve[a.Tenant]; ok {
		return q
	}
	q := p.tree.Resolve(a.Tenant)
	p.resolve[a.Tenant] = q
	return q
}

// accountSet adds a request set's started usage and pending demand to the
// queue's leaf tallies.
//
// Usage is the larger of the grant (NAlloc) and the node IDs physically
// held: when the RMS drives the policy, an application whose preemptible
// grant was shrunk keeps squatting on its nodes until it releases them
// (or the grace kill fires), and those nodes are real occupancy — the
// starved queue cannot start on them, and revoking the squatter
// genuinely relieves the shortage. In pure-scheduler use NodeIDs is
// empty and usage is just the grant.
//
// A started preemptible request granted less than it asked for
// (NAlloc < N, the equi-partition shrink) still demands the difference —
// toView regrows its allocation whenever the view allows — so the
// shortfall counts as pending.
func accountSet(rs *request.Set, usage, pending Resources) {
	for _, r := range rs.All() {
		switch {
		case r.Finished:
		case r.Started():
			used := r.NAlloc
			if n := len(r.NodeIDs); n > used {
				used = n
			}
			usage[r.Cluster] += used
			if r.Type == request.Preempt && r.NAlloc < r.N {
				pending[r.Cluster] += r.N - r.NAlloc
			}
		case !r.Held:
			pending[r.Cluster] += r.N
		}
	}
}

// tally recomputes usage, pending demand, and dominant shares for every
// queue from the applications' request state, and buckets the
// applications by leaf queue (in the iteration order of apps, i.e.
// connection order when called from Order).
func (p *DRFPolicy) tally(info core.RoundInfo, apps []*core.AppState) {
	for i := range p.usage {
		clear(p.usage[i])
		clear(p.pending[i])
		p.appsAt[i] = p.appsAt[i][:0]
	}
	for _, a := range apps {
		q := p.queueOf(a)
		p.appsAt[q.id] = append(p.appsAt[q.id], a)
		accountSet(a.PA, p.usage[q.id], p.pending[q.id])
		accountSet(a.NP, p.usage[q.id], p.pending[q.id])
		accountSet(a.P, p.usage[q.id], p.pending[q.id])
	}
	// Aggregate leaf tallies up the tree. queues is in creation order, so
	// children always follow their parents — walk it backwards.
	qs := p.tree.queues
	for i := len(qs) - 1; i >= 1; i-- {
		q := qs[i]
		for cid, n := range p.usage[q.id] {
			p.usage[q.parent.id][cid] += n
		}
		for cid, n := range p.pending[q.id] {
			p.pending[q.parent.id][cid] += n
		}
	}
	for _, q := range qs {
		p.share[q.id] = p.dominantShare(info, q)
	}
}

// dominantShare computes max over clusters of usage/denominator, the
// denominator being the queue's guarantee on the cluster, or the cluster
// capacity where no guarantee is set.
func (p *DRFPolicy) dominantShare(info core.RoundInfo, q *Queue) float64 {
	dom := 0.0
	for cid, used := range p.usage[q.id] {
		if used == 0 {
			continue
		}
		denom := q.Guaranteed[cid]
		if denom <= 0 {
			denom = info.Clusters[cid]
		}
		var s float64
		if denom <= 0 {
			s = math.Inf(1) // usage against a zero-capacity cluster
		} else {
			s = float64(used) / float64(denom)
		}
		if s > dom {
			dom = s
		}
	}
	return dom
}

// Order implements core.SchedulingPolicy: the dominant-share tree walk.
func (p *DRFPolicy) Order(info core.RoundInfo, apps []*core.AppState, buf []*core.AppState) []*core.AppState {
	p.tally(info, apps)
	p.lastRejected = 0
	return p.emit(p.tree.root, buf)
}

// emit appends q's own applications (connection order), then its children
// ascending by dominant share (ties by name), depth first.
func (p *DRFPolicy) emit(q *Queue, buf []*core.AppState) []*core.AppState {
	buf = append(buf, p.appsAt[q.id]...)
	if len(q.children) == 0 {
		return buf
	}
	kids := append(p.kids[q.id][:0], q.children...)
	p.kids[q.id] = kids
	sort.SliceStable(kids, func(i, j int) bool {
		if p.share[kids[i].id] != p.share[kids[j].id] {
			return p.share[kids[i].id] < p.share[kids[j].id]
		}
		return kids[i].name < kids[j].name
	})
	for _, c := range kids {
		buf = p.emit(c, buf)
	}
	return buf
}

// Admit implements core.SchedulingPolicy: an application is admitted
// unless some queue on its leaf-to-root chain is at or above its max
// quota on a cluster where the application has pending demand. Usage
// counts started work only, so admission reacts to a queue crossing its
// cap with one round of lag — the round that starts the capped work.
func (p *DRFPolicy) Admit(_ core.RoundInfo, a *core.AppState) bool {
	leaf := p.queueOf(a)
	capped := false
	for q := leaf; q != nil && !capped; q = q.parent {
		if len(q.Max) == 0 {
			continue
		}
		for cid, max := range q.Max {
			if max > 0 && p.usage[q.id][cid] >= max && appPendingOn(a, cid) {
				capped = true
				break
			}
		}
	}
	if capped {
		p.lastRejected++
		return false
	}
	return true
}

// appPendingOn reports whether the application has pending (unstarted,
// unheld) demand on the cluster.
func appPendingOn(a *core.AppState, cid view.ClusterID) bool {
	for _, rs := range [3]*request.Set{a.PA, a.NP, a.P} {
		for _, r := range rs.All() {
			if !r.Started() && !r.Finished && !r.Held && r.Cluster == cid {
				return true
			}
		}
	}
	return false
}

// LastRejected returns the number of admissions denied in the last round.
func (p *DRFPolicy) LastRejected() int { return p.lastRejected }

// Shares returns the last round's dominant share per queue path
// (diagnostics; allocates).
func (p *DRFPolicy) Shares() map[string]float64 {
	out := make(map[string]float64, len(p.tree.queues))
	for _, q := range p.tree.queues {
		out[q.path] = p.share[q.id]
	}
	return out
}

// Usage returns the last tally's per-queue usage (diagnostics; allocates).
func (p *DRFPolicy) Usage() map[string]Resources {
	out := make(map[string]Resources, len(p.tree.queues))
	for _, q := range p.tree.queues {
		out[q.path] = p.usage[q.id].clone()
	}
	return out
}

// Victims implements core.VictimNominator with the YuniKorn DRF
// preemption rule: a queue is starved on a cluster when its usage is
// below its guarantee there AND it has pending demand there AND the
// cluster's free headroom cannot absorb that demand; victims are
// started preemptible allocations on that same cluster belonging to
// queues above their own guarantee, revoked largest-overshare-first, and
// only as long as (a) the shortage is not yet relieved and (b) the
// victim's queue stays at or above its guarantee after the revocation.
// When no candidate can relieve a shortage — no preemptible usage on the
// shortage cluster outside the starved subtree — nothing is nominated
// for it: preemption never fires when it cannot help.
func (p *DRFPolicy) Victims(info core.RoundInfo, apps []*core.AppState, buf []*request.Request) []*request.Request {
	if !p.preempt {
		return nil
	}
	p.tally(info, apps) // fresh tally: starts may have happened since Order
	var taken map[request.ID]bool
	for _, q := range p.tree.queues {
		if len(q.Guaranteed) == 0 {
			continue
		}
		for _, cid := range sortedClusters(q.Guaranteed) {
			guar := q.Guaranteed[cid]
			shortage := guar - p.usage[q.id][cid]
			if want := p.pending[q.id][cid]; want < shortage {
				shortage = want
			}
			// Free headroom relieves the shortage without revoking
			// anyone: the pending work starts on its own next round.
			// Preemption covers only the part no free node can.
			if free := info.Clusters[cid] - p.usage[p.tree.root.id][cid]; free > 0 {
				shortage -= free
			}
			if shortage <= 0 {
				continue
			}
			if taken == nil {
				taken = make(map[request.ID]bool)
			}
			buf = p.nominate(q, cid, shortage, taken, buf)
		}
	}
	return buf
}

// victimCand is one candidate revocation.
type victimCand struct {
	req   *request.Request
	queue *Queue
}

// nominate collects revocations relieving queue q's shortage of `short`
// nodes on cluster cid.
func (p *DRFPolicy) nominate(q *Queue, cid view.ClusterID, short int, taken map[request.ID]bool, buf []*request.Request) []*request.Request {
	var cands []victimCand
	for _, vq := range p.tree.queues {
		if !vq.IsLeaf() || inSubtree(vq, q) {
			continue
		}
		if p.usage[vq.id][cid] <= vq.Guaranteed[cid] {
			continue // at or below guarantee: not a donor
		}
		for _, a := range p.appsAt[vq.id] {
			for _, r := range a.P.All() {
				if r.Active() && r.Cluster == cid && (r.NAlloc > 0 || len(r.NodeIDs) > 0) && !taken[r.ID] {
					cands = append(cands, victimCand{req: r, queue: vq})
				}
			}
		}
	}
	if len(cands) == 0 {
		return buf // nothing can relieve this shortage
	}
	sort.SliceStable(cands, func(i, j int) bool {
		qi, qj := cands[i].queue, cands[j].queue
		if qi != qj {
			si, sj := p.share[qi.id], p.share[qj.id]
			if si != sj {
				return si > sj // most over-share donates first
			}
			return qi.path < qj.path
		}
		return cands[i].req.ID > cands[j].req.ID // newest allocation first
	})
	for _, c := range cands {
		if short <= 0 {
			break
		}
		vq := c.queue
		surplus := p.usage[vq.id][cid] - vq.Guaranteed[cid]
		if surplus <= 0 {
			continue // donor dropped to its guarantee
		}
		freed := c.req.NAlloc
		if n := len(c.req.NodeIDs); n > freed {
			freed = n
		}
		buf = append(buf, c.req)
		taken[c.req.ID] = true
		p.usage[vq.id][cid] -= freed // keep the running tally honest
		short -= freed
	}
	return buf
}

// sortedClusters returns the resource map's cluster IDs in sorted order
// (deterministic nomination across runs).
func sortedClusters(r Resources) []view.ClusterID {
	out := make([]view.ClusterID, 0, len(r))
	for cid := range r {
		out = append(out, cid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
