package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"

	"coormv2/internal/obs"
	"coormv2/internal/stats"
	"coormv2/internal/view"
)

// Node-level fault planning: alongside the shard crash/restart schedule, the
// harness derives a per-cluster machine failure/recovery schedule. Node
// faults model dying hardware under a healthy scheduler — the complementary
// half of the fault model — and are routed through
// federation.FailNodes/RecoverNodes so every recovery policy (kill, requeue,
// cooperative) can be exercised deterministically.

// NodeFault is one machine failure/recovery cycle on one cluster.
type NodeFault struct {
	Cluster   view.ClusterID
	Node      int
	FailAt    float64
	RecoverAt float64
}

// String renders the fault deterministically for traces.
func (f NodeFault) String() string {
	return fmt.Sprintf("nodefault cluster=%s node=%d fail@%g recover@%g", f.Cluster, f.Node, f.FailAt, f.RecoverAt)
}

// clusterSeed derives a per-cluster RNG seed from the plan seed, so each
// cluster's schedule depends only on (Seed, cluster ID) — never on how many
// other clusters exist or how they are partitioned into shards.
func clusterSeed(seed int64, cid view.ClusterID) int64 {
	h := fnv.New64a()
	h.Write([]byte(cid))
	return seed ^ int64(h.Sum64())
}

// PlanNodes derives the node-fault schedule for a cluster set. Per cluster —
// visited in sorted ID order with a seed derived from the cluster's ID — a
// renewal process draws failure instants (exponential inter-failure time with
// mean NodeMTTF) and an exponential repair time per failure; the failed
// machine is picked uniformly among the nodes up at that instant, so no node
// is ever failed twice concurrently. Because each cluster's draws come from
// its own derived RNG, the schedule is stable across shard counts and under
// adding clusters: a cluster's faults are identical in every topology.
func PlanNodes(cfg Config, clusters map[view.ClusterID]int) []NodeFault {
	if len(clusters) == 0 || cfg.NodeMTTF <= 0 || cfg.Horizon <= 0 {
		return nil
	}
	cids := make([]view.ClusterID, 0, len(clusters))
	for cid := range clusters {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	var plan []NodeFault
	for _, cid := range cids {
		size := clusters[cid]
		if size <= 0 {
			continue
		}
		rng := stats.NewRand(clusterSeed(cfg.Seed, cid))
		var down []NodeFault // this cluster's machines still under repair
		t := 0.0
		for n := 0; cfg.MaxNodeFaultsPerCluster == 0 || n < cfg.MaxNodeFaultsPerCluster; n++ {
			t += rng.ExpFloat64() * cfg.NodeMTTF
			if t >= cfg.Horizon {
				break
			}
			live := down[:0]
			for _, d := range down {
				if d.RecoverAt > t {
					live = append(live, d)
				}
			}
			down = live
			up := size - len(down)
			if up == 0 {
				continue // every machine is already dead; the draw is spent
			}
			pick := rng.Intn(up)
			node := pickUpNode(size, down, pick)
			f := NodeFault{
				Cluster:   cid,
				Node:      node,
				FailAt:    t,
				RecoverAt: t + rng.ExpFloat64()*cfg.MeanNodeRecovery,
			}
			plan = append(plan, f)
			down = append(down, f)
		}
	}
	sort.Slice(plan, func(i, j int) bool {
		if plan[i].FailAt != plan[j].FailAt {
			return plan[i].FailAt < plan[j].FailAt
		}
		if plan[i].Cluster != plan[j].Cluster {
			return plan[i].Cluster < plan[j].Cluster
		}
		return plan[i].Node < plan[j].Node
	})
	return plan
}

// pickUpNode returns the pick-th node ID (0-based) among the nodes of
// 0..size-1 not currently down.
func pickUpNode(size int, down []NodeFault, pick int) int {
	isDown := make(map[int]bool, len(down))
	for _, d := range down {
		isDown[d.Node] = true
	}
	for id := 0; id < size; id++ {
		if isDown[id] {
			continue
		}
		if pick == 0 {
			return id
		}
		pick--
	}
	panic(fmt.Sprintf("chaos: pickUpNode(%d) exhausted %d nodes with %d down", pick, size, len(down)))
}

// ArmNodes schedules every node fault of the plan as simulator events. The
// events route through federation.FailNodes/RecoverNodes, so a fault lands
// whether the owning shard is up (applied immediately) or crashed (recorded
// and re-applied at restart). Call alongside Arm, before running.
func (in *Injector) ArmNodes(plan []NodeFault) {
	for _, f := range plan {
		f := f
		in.e.At(f.FailAt, "chaos.nodefail", func() {
			rep, err := in.fed.FailNodes(f.Cluster, []int{f.Node})
			if err != nil {
				panic(fmt.Sprintf("chaos: %s: %v", f, err))
			}
			in.nodeFails++
			in.obsReg.Event(obs.Event{Time: f.FailAt, Type: obs.EvNodeFail,
				Cluster: string(f.Cluster), Value: 1})
			in.record(fmt.Sprintf("t=%.6f %s", in.e.Now(), rep))
		})
		in.e.At(f.RecoverAt, "chaos.noderecover", func() {
			rep, err := in.fed.RecoverNodes(f.Cluster, []int{f.Node})
			if err != nil {
				panic(fmt.Sprintf("chaos: %s: %v", f, err))
			}
			in.nodeRecovers++
			in.hNodeRecovery.Record(f.RecoverAt - f.FailAt)
			in.obsReg.Event(obs.Event{Time: f.RecoverAt, Type: obs.EvNodeRecover,
				Cluster: string(f.Cluster), Value: 1})
			in.record(fmt.Sprintf("t=%.6f %s", in.e.Now(), rep))
		})
	}
}

// NodeFails returns the number of executed node-failure events.
func (in *Injector) NodeFails() int { return in.nodeFails }

// NodeRecovers returns the number of executed node-recovery events.
func (in *Injector) NodeRecovers() int { return in.nodeRecovers }
