package federation

import (
	"errors"
	"math"
	"strings"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

func newRecoveryFederation(t *testing.T, pol RecoveryPolicy) (*sim.Engine, *Federator, *metrics.Recorder) {
	t.Helper()
	e := sim.NewEngine()
	fedRec := metrics.NewRecorder()
	f := New(Config{
		Clusters:          map[view.ClusterID]int{cA: 8, cB: 8},
		Shards:            2,
		ReschedInterval:   1,
		Clock:             clock.SimClock{E: e},
		Recovery:          pol,
		FederationMetrics: fedRec,
		Metrics: func(int) *metrics.Recorder {
			return metrics.NewRecorder()
		},
	})
	if f.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", f.NumShards())
	}
	return e, f, fedRec
}

func mustCheck(t *testing.T, f *Federator) {
	t.Helper()
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestCrashKillPolicyKillsAffectedSparesBystander(t *testing.T) {
	e, f, fedRec := newRecoveryFederation(t, KillOnCrash)
	victim, bystander := &testApp{}, &testApp{}
	vs := f.Connect(victim)
	bs := f.Connect(bystander)
	if _, err := vs.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	shardA, _ := f.Owner(cA)
	rep := f.CrashShard(shardA)
	if !f.ShardDown(shardA) {
		t.Fatal("shard should be down")
	}
	if len(rep.Killed) != 1 || rep.Killed[0] != vs.AppID() {
		t.Fatalf("killed = %v, want [%d]", rep.Killed, vs.AppID())
	}
	if victim.killed == "" || !strings.Contains(victim.killed, "crashed") {
		t.Fatalf("victim OnKill = %q, want crash reason", victim.killed)
	}
	if bystander.killed != "" {
		t.Fatalf("bystander killed: %q", bystander.killed)
	}
	if got := fedRec.Count(vs.AppID(), metrics.KilledSessions); got != 1 {
		t.Errorf("killed-sessions counter = %d, want 1", got)
	}
	// The bystander immediately sees views without the dead shard's cluster.
	np, _ := bystander.lastViews(t)
	if _, ok := np[cA]; ok {
		t.Errorf("dead shard's cluster still visible: %v", np)
	}
	// Requests targeting the dead shard fail under the kill policy.
	if _, err := bs.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: 1, Type: request.NonPreempt}); err == nil || !strings.Contains(err.Error(), "down") {
		t.Fatalf("request to dead shard = %v, want shard-down error", err)
	}
	mustCheck(t, f)

	// Restart: the shard rejoins empty, the bystander is re-admitted and its
	// views recover the full cluster set with every node free.
	rrep := f.RestartShard(shardA)
	if rrep.Reconnected != 1 {
		t.Fatalf("reconnected = %d, want 1 (bystander only)", rrep.Reconnected)
	}
	e.Run(e.Now() + 5)
	np, _ = bystander.lastViews(t)
	if got := np.Get(cA).Value(e.Now()); got != 8 {
		t.Errorf("restarted cluster shows %d nodes, want 8", got)
	}
	// And it is usable again.
	if _, err := bs.Request(rms.RequestSpec{Cluster: cA, N: 8, Duration: 10, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 5)
	mustCheck(t, f)
}

func TestCrashRequeuePolicyReplaysUnderSameFederatedIDs(t *testing.T) {
	e, f, fedRec := newRecoveryFederation(t, RequeueOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	idA, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 3, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if len(app.starts) != 2 {
		t.Fatalf("starts = %v, want 2", app.starts)
	}

	shardA, _ := f.Owner(cA)
	rep := f.CrashShard(shardA)
	if len(rep.Killed) != 0 {
		t.Fatalf("requeue policy killed %v", rep.Killed)
	}
	if rep.Requeued != 1 {
		t.Fatalf("requeued = %d, want 1", rep.Requeued)
	}
	if app.killed != "" {
		t.Fatalf("session killed under requeue: %q", app.killed)
	}
	// A new request targeting the dead shard is queued, not refused.
	idA2, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatalf("queued request: %v", err)
	}
	if got := fedRec.Count(sess.AppID(), metrics.RequeuedRequests); got != 2 {
		t.Errorf("requeued counter = %d, want 2", got)
	}
	// The request on the surviving shard still works.
	if err := sess.Done(idB, nil); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, f)

	rrep := f.RestartShard(shardA)
	if rrep.Replayed != 2 || rrep.Dropped != 0 {
		t.Fatalf("restart report = %+v, want 2 replayed", rrep)
	}
	e.Run(e.Now() + 5)
	// Both the lost and the queued request started under their original
	// federated IDs.
	started := map[request.ID]int{}
	app.mu.Lock()
	for _, st := range app.starts {
		started[st.id] = len(st.ids)
	}
	app.mu.Unlock()
	if started[idA] != 3 || started[idA2] != 1 {
		t.Fatalf("replayed starts = %v, want %d:3 and %d:1", started, idA, idA2)
	}
	if got := fedRec.Count(sess.AppID(), metrics.ReplayedRequests); got != 2 {
		t.Errorf("replayed counter = %d, want 2", got)
	}
	mustCheck(t, f)
	// The replayed requests are fully operational: done() releases them.
	if err := sess.Done(idA, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.Done(idA2, nil); err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 5)
	mustCheck(t, f)
}

func TestDoneOnQueuedRequestDropsIt(t *testing.T) {
	e, f, fedRec := newRecoveryFederation(t, RequeueOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	e.Run(2)
	shardA, _ := f.Owner(cA)
	f.CrashShard(shardA)
	id, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: 10, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Done(id, nil); err != nil {
		t.Fatalf("done on queued request: %v", err)
	}
	if got := fedRec.Count(sess.AppID(), metrics.DroppedRequests); got != 1 {
		t.Errorf("dropped counter = %d, want 1", got)
	}
	// Nothing left to replay.
	rrep := f.RestartShard(shardA)
	if rrep.Replayed != 0 || rrep.Dropped != 0 {
		t.Fatalf("restart report = %+v, want empty replay", rrep)
	}
	e.Run(e.Now() + 3)
	mustCheck(t, f)
}

// TestRequeueNextChainAcrossCrash pins the relation rewrite: a NEXT child
// whose parent is requeued keeps the relation; a NEXT child whose parent
// was already finished replays unconstrained.
func TestRequeueNextChainAcrossCrash(t *testing.T) {
	e, f, _ := newRecoveryFederation(t, RequeueOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	child, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 50, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: parent})
	if err != nil {
		t.Fatal(err)
	}
	shardA, _ := f.Owner(cA)
	rep := f.CrashShard(shardA)
	if rep.Requeued != 2 {
		t.Fatalf("requeued = %d, want 2 (parent+child)", rep.Requeued)
	}
	rrep := f.RestartShard(shardA)
	if rrep.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", rrep.Replayed)
	}
	e.Run(e.Now() + 5)
	// The parent restarted; the child still waits for it (NEXT), proving the
	// relation survived the crash.
	app.mu.Lock()
	startCount := map[request.ID]int{}
	for _, st := range app.starts {
		startCount[st.id]++
	}
	app.mu.Unlock()
	if startCount[parent] != 2 { // once before the crash, once after replay
		t.Fatalf("parent starts = %d, want 2; starts=%v", startCount[parent], startCount)
	}
	if startCount[child] != 0 {
		t.Fatalf("NEXT child started while its parent runs")
	}
	// Finish the parent: the child takes over.
	if err := sess.Done(parent, nil); err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 5)
	app.mu.Lock()
	childStarted := false
	for _, st := range app.starts {
		if st.id == child {
			childStarted = true
		}
	}
	app.mu.Unlock()
	if !childStarted {
		t.Fatal("NEXT child never started after the parent finished")
	}
	mustCheck(t, f)
}

// TestIDTablePruning is the leak-regression test for the federated↔local
// request-ID tables: after a full request/done cycle (plus the GC round) the
// tables return to their baseline size.
func TestIDTablePruning(t *testing.T) {
	e, f, _ := newRecoveryFederation(t, KillOnCrash)
	app := &testApp{}
	sess := f.Connect(app)
	tableSize := func() (int, int) {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		rev := 0
		for _, m := range sess.fromLocal {
			rev += len(m)
		}
		return len(sess.toLocal), rev
	}
	clusters := []view.ClusterID{cA, cB}
	const rounds = 40
	for i := 0; i < rounds; i++ {
		id, err := sess.Request(rms.RequestSpec{
			Cluster: clusters[i%2], N: 1 + i%4, Duration: 5, Type: request.NonPreempt,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Run(e.Now() + 2)
		if err := sess.Done(id, nil); err != nil {
			t.Fatal(err)
		}
		e.Run(e.Now() + 4)
	}
	// Let expiries and GC settle.
	e.Run(e.Now() + 30)
	fwd, rev := tableSize()
	if fwd != 0 || rev != 0 {
		t.Fatalf("ID tables leak: %d forward, %d reverse entries after %d finished requests", fwd, rev, rounds)
	}
	mustCheck(t, f)
}

// TestErrorIDTranslation is the table-driven test over every error path
// that crosses the Federator boundary quoting a request ID: the quoted ID
// must be the federated one, never the shard-local one.
func TestErrorIDTranslation(t *testing.T) {
	e, f, _ := newRecoveryFederation(t, KillOnCrash)
	// Session 1 burns federated IDs on shard A so that session 2's
	// shard-local IDs on shard B diverge from its federated IDs.
	s1 := f.Connect(&testApp{})
	for i := 0; i < 3; i++ {
		if _, err := s1.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
			t.Fatal(err)
		}
	}
	app := &testApp{}
	sess := f.Connect(app)
	// fed ID 4, shard-B-local ID 1.
	parent, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if parent != 4 {
		t.Fatalf("test setup: parent fed ID = %d, want 4", parent)
	}
	e.Run(3)
	// A pending NEXT child keeps the parent's released-node validation
	// active (released IDs are checked against the parent's holding).
	if _, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: 50, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: parent}); err != nil {
		t.Fatal(err)
	}

	// doneTwice provisions a finished request: fed ID 6, local ID 3.
	doneTwice, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 1, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 3)
	if err := sess.Done(doneTwice, nil); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		op      func() error
		wantID  request.ID
		wantMsg string
	}{
		{
			name:    "done unknown request",
			op:      func() error { return sess.Done(999, nil) },
			wantID:  999,
			wantMsg: "rms: request 999 not found",
		},
		{
			name:    "done already finished (shard-side, translated)",
			op:      func() error { return sess.Done(doneTwice, nil) },
			wantID:  doneTwice,
			wantMsg: "rms: request 6 already finished",
		},
		{
			name: "related request unknown (federation-side)",
			op: func() error {
				_, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 1, Duration: 1, Type: request.NonPreempt,
					RelatedHow: request.Next, RelatedTo: 888})
				return err
			},
			wantID:  888,
			wantMsg: "rms: related request 888 not found",
		},
		{
			name:    "released node not held (shard-side, translated)",
			op:      func() error { return sess.Done(parent, []int{99}) },
			wantID:  parent,
			wantMsg: "rms: released node 99 is not held by request 4",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.op()
			if err == nil {
				t.Fatal("expected an error")
			}
			var re *rms.RequestError
			if !errors.As(err, &re) {
				t.Fatalf("error %v is not a *rms.RequestError", err)
			}
			if re.ID != tc.wantID {
				t.Errorf("quoted ID = %d, want %d (err: %v)", re.ID, tc.wantID, err)
			}
			if err.Error() != tc.wantMsg {
				t.Errorf("message = %q, want %q", err.Error(), tc.wantMsg)
			}
		})
	}
	mustCheck(t, f)
}

// observerApp extends testApp with rms.RequestObserver recording.
type observerApp struct {
	testApp
	finished []request.ID
	reaped   []request.ID
}

func (a *observerApp) OnRequestFinished(id request.ID)   { a.finished = append(a.finished, id) }
func (a *observerApp) OnRequestsReaped(ids []request.ID) { a.reaped = append(a.reaped, ids...) }

// TestCrashAfterLogicalEndCompletesInsteadOfRequeue is the ghost-re-run
// regression: a non-preemptible allocation whose full duration elapsed
// before the crash — the shard's end-of-round sweep died with the shard
// before recording the finish — is completed work. Under either policy it
// is purged with finish notifications: not re-run (RequeueOnCrash) and not
// §3.1.4 grounds to kill the session (KillOnCrash). The crash event is
// armed before the request exists, so at the shared instant t=end it fires
// ahead of the shard's own expiry wake-up.
func TestCrashAfterLogicalEndCompletesInsteadOfRequeue(t *testing.T) {
	for _, pol := range []RecoveryPolicy{KillOnCrash, RequeueOnCrash} {
		t.Run(pol.String(), func(t *testing.T) {
			e, f, fedRec := newRecoveryFederation(t, pol)
			app := &observerApp{}
			sess := f.Connect(app)
			shardA, _ := f.Owner(cA)
			var rep CrashReport
			e.At(100.5, "test.crash", func() { rep = f.CrashShard(shardA) })
			id, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 100.5, Type: request.NonPreempt})
			if err != nil {
				t.Fatal(err)
			}
			e.Run(3)
			if len(app.starts) != 1 {
				t.Fatalf("starts = %v, want the allocation started", app.starts)
			}
			e.Run(120)
			if rep.Requeued != 0 || len(rep.Killed) != 0 || rep.Purged != 1 {
				t.Fatalf("crash report = %+v, want 1 purged, nothing requeued or killed", rep)
			}
			if app.killed != "" {
				t.Fatalf("session killed (%q) for completed work", app.killed)
			}
			if len(app.finished) != 1 || app.finished[0] != id {
				t.Fatalf("finished = %v, want [%d]", app.finished, id)
			}
			if len(app.reaped) != 1 || app.reaped[0] != id {
				t.Fatalf("reaped = %v, want [%d]", app.reaped, id)
			}
			if got := fedRec.Count(sess.AppID(), metrics.RequeuedRequests); got != 0 {
				t.Errorf("requeued counter = %d, want 0", got)
			}
			mustCheck(t, f)
			// After a restart nothing replays: the work is done, not lost.
			f.RestartShard(shardA)
			e.Run(e.Now() + 50)
			if len(app.starts) != 1 {
				t.Fatalf("starts = %v after restart, completed work must not re-run", app.starts)
			}
			mustCheck(t, f)
		})
	}
}

// TestCrashDeliversReapForFinishedUnreapedRequests pins the finish→reap
// pairing across a crash: a request that finished (finish delivered) but
// was not yet GC-reaped when its shard died still gets the reap the dead
// shard's GC would have produced, so observer tables prune in lockstep.
func TestCrashDeliversReapForFinishedUnreapedRequests(t *testing.T) {
	e, f, _ := newRecoveryFederation(t, RequeueOnCrash)
	app := &observerApp{}
	sess := f.Connect(app)
	parent, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	// A pending NEXT child keeps the finished parent referable: the shard
	// cannot reap it until the child starts.
	if _, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 10,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: parent}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Done(parent, nil); err != nil {
		t.Fatal(err)
	}
	if len(app.finished) != 1 || app.finished[0] != parent {
		t.Fatalf("finished = %v, want [%d] from done()", app.finished, parent)
	}
	reapedBefore := len(app.reaped)
	// Crash before the engine runs another round (no GC chance).
	shardA, _ := f.Owner(cA)
	f.CrashShard(shardA)
	found := false
	for _, fid := range app.reaped[reapedBefore:] {
		if fid == parent {
			found = true
		}
	}
	if !found {
		t.Fatalf("reaped = %v, want the finished parent %d reaped by the crash sweep", app.reaped, parent)
	}
	mustCheck(t, f)
}

// TestDoubleCrashBeforeReplayRestartsKeepsWorkQueued pins the stale-start
// regression: a requeued request carries its interrupted run's start time,
// and if the shard dies again before the replay ever re-starts, that stale
// start must not make the request read as an allocation that ran out its
// duration (completed work). It stays interrupted work: requeued again and
// eventually re-run to a real completion.
func TestDoubleCrashBeforeReplayRestartsKeepsWorkQueued(t *testing.T) {
	e, f, _ := newRecoveryFederation(t, RequeueOnCrash)
	app := &observerApp{}
	sess := f.Connect(app)
	id, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50)
	if len(app.starts) != 1 {
		t.Fatalf("starts = %v, want the allocation started", app.starts)
	}
	shardA, _ := f.Owner(cA)
	f.CrashShard(shardA) // interrupts the run at t=50
	e.Run(150)           // well past the first run's would-be end at t≈100
	f.RestartShard(shardA)
	// Crash again before the engine runs a scheduling round: the replayed
	// request was re-submitted but never re-started.
	f.CrashShard(shardA)
	if len(app.finished) != 0 {
		t.Fatalf("finished = %v: never-re-run work misclassified as completed", app.finished)
	}
	mustCheck(t, f)
	f.RestartShard(shardA)
	e.Run(e.Now() + 200)
	if len(app.finished) != 1 || app.finished[0] != id {
		t.Fatalf("finished = %v, want [%d] after the re-run completes", app.finished, id)
	}
	mustCheck(t, f)
}

// TestCrashWithRealClockRace exercises crash/restart under the real clock
// with concurrent sessions (run with -race).
func TestCrashWithRealClockRace(t *testing.T) {
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 32, cB: 32},
		Shards:          2,
		ReschedInterval: 0.001,
		Clock:           clock.NewRealClock(),
		Recovery:        RequeueOnCrash,
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		app := &testApp{}
		sess := f.Connect(app)
		for {
			select {
			case <-stop:
				sess.Disconnect()
				return
			default:
			}
			id, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: math.Inf(1), Type: request.Preempt})
			if err != nil {
				continue // shard may be down mid-crash
			}
			_ = sess.Done(id, nil)
		}
	}()
	shardA, _ := f.Owner(cA)
	for i := 0; i < 5; i++ {
		f.CrashShard(shardA)
		f.RestartShard(shardA)
	}
	close(stop)
	<-done
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent crash/restart: %v", err)
	}
}
