package experiments

import (
	"strings"
	"testing"

	"coormv2/internal/apps"
	"coormv2/internal/core"
)

// Test scale: short profiles and a small S_max keep node counts ~100 and
// runs in tens of milliseconds while exercising every code path the full
// experiments use.
const (
	testSteps = 60
	testSmax  = 50 * 1024 // 50 GiB
)

func TestRunScenarioDynamic(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Seed: 1, Steps: testSteps, Smax: testSmax,
		Overcommit: 1, Mode: apps.NEADynamic,
		PSATaskDurations: []float64{60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AMRArea <= 0 || res.AMRRuntime <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.UsedFraction <= 0.5 || res.UsedFraction > 1.0001 {
		t.Errorf("used fraction = %v, expected high utilization with a PSA filling", res.UsedFraction)
	}
	if len(res.PSAArea) != 1 || res.PSAArea[0] <= 0 {
		t.Errorf("PSA area = %v", res.PSAArea)
	}
}

func TestRunScenarioStaticUsesMoreAtHighOvercommit(t *testing.T) {
	base := ScenarioConfig{
		Seed: 2, Steps: testSteps, Smax: testSmax, Overcommit: 3,
		PSATaskDurations: []float64{60},
	}
	dynCfg := base
	dynCfg.Mode = apps.NEADynamic
	dyn, err := RunScenario(dynCfg)
	if err != nil {
		t.Fatal(err)
	}
	statCfg := base
	statCfg.Mode = apps.NEAStatic
	stat, err := RunScenario(statCfg)
	if err != nil {
		t.Fatal(err)
	}
	if stat.AMRArea <= dyn.AMRArea {
		t.Errorf("static area %v should exceed dynamic %v at overcommit 3", stat.AMRArea, dyn.AMRArea)
	}
}

func TestRunScenarioRejectsTooSmallCluster(t *testing.T) {
	_, err := RunScenario(ScenarioConfig{
		Seed: 1, Steps: testSteps, Smax: testSmax, Overcommit: 1, Nodes: 2,
	})
	if err == nil {
		t.Fatal("expected an error for a cluster smaller than the pre-allocation")
	}
}

func TestFig1(t *testing.T) {
	profiles := Fig1(Fig1Config{Seeds: []int64{1, 2}, Steps: 100})
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for _, p := range profiles {
		if len(p.Series) != 100 {
			t.Errorf("seed %d: %d steps", p.Seed, len(p.Series))
		}
		max := 0.0
		for _, v := range p.Series {
			if v > max {
				max = v
			}
		}
		if max < 999 || max > 1001 {
			t.Errorf("seed %d: peak %v, want ≈ 1000 (normalized)", p.Seed, max)
		}
	}
}

func TestFig2(t *testing.T) {
	res, err := Fig2(1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRelError >= 0.15 {
		t.Errorf("max relative error %v, paper requires < 15%%", res.MaxRelError)
	}
	if len(res.Rows) == 0 {
		t.Error("no fit rows")
	}
}

func TestFig3(t *testing.T) {
	rows := Fig3(1, testSteps, []float64{0.3, 0.5, 0.75})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EndTimeIncreasePct < -1 || r.EndTimeIncreasePct > 6 {
			t.Errorf("et=%v: end-time increase %v%% outside the paper's ballpark", r.TargetEff, r.EndTimeIncreasePct)
		}
		if r.Neq < 1 {
			t.Errorf("et=%v: n_eq = %d", r.TargetEff, r.Neq)
		}
	}
}

func TestFig4(t *testing.T) {
	rows := Fig4(1, testSteps, []float64{0.5, 1, 8}, 0)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0].Feasible || !rows[1].Feasible {
		t.Error("moderate sizes should be feasible")
	}
	if rows[2].Feasible {
		t.Error("8× the data should not be feasible with 4 GiB nodes (memory floor above area ceiling)")
	}
}

func TestFig9Smoke(t *testing.T) {
	rows, err := Fig9(Fig9Config{
		Overcommits: []float64{0.5, 1, 2},
		Seed:        1, Steps: testSteps, Smax: testSmax,
		PSATaskDur: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Static grows with overcommit; dynamic stays roughly flat.
	if rows[2].StaticArea <= rows[1].StaticArea {
		t.Errorf("static area should grow with overcommit: %v then %v", rows[1].StaticArea, rows[2].StaticArea)
	}
	growth := rows[2].DynamicArea / rows[1].DynamicArea
	if growth > 1.3 {
		t.Errorf("dynamic area grew by %vx from overcommit 1 to 2; should be ≈ flat", growth)
	}
	// At overcommit ≥ 1 static costs more than dynamic.
	if rows[2].StaticArea <= rows[2].DynamicArea {
		t.Error("static should cost more than dynamic at overcommit 2")
	}
}

func TestFig10Smoke(t *testing.T) {
	rows, err := Fig10(Fig10Config{
		AnnounceIntervals: []float64{0, 30, 90},
		Seed:              1, Steps: testSteps, Smax: testSmax,
		PSATaskDur: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].EndTimeIncreasePct != 0 {
		t.Errorf("baseline end-time increase = %v, want 0", rows[0].EndTimeIncreasePct)
	}
	// With notice ≥ d_task the PSA stops wasting.
	if rows[2].PSAWastePct > rows[0].PSAWastePct {
		t.Errorf("waste with notice %v%% should not exceed spontaneous %v%%", rows[2].PSAWastePct, rows[0].PSAWastePct)
	}
	if rows[2].PSAWastePct > 1 {
		t.Errorf("waste with notice ≥ d_task = %v%%, want ≈ 0", rows[2].PSAWastePct)
	}
	// End time grows with the announce interval.
	if rows[2].EndTimeIncreasePct < 0 {
		t.Errorf("announced updates should not speed the AMR up: %v%%", rows[2].EndTimeIncreasePct)
	}
}

func TestFig11Smoke(t *testing.T) {
	rows, err := Fig11(Fig11Config{
		AnnounceIntervals: []float64{0, 60},
		Seeds:             []int64{1, 2},
		Steps:             testSteps, Smax: testSmax,
		PSA1TaskDur: 120, PSA2TaskDur: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FillingPct < r.StrictPct-1 {
			t.Errorf("announce=%v: filling %v%% should not lose to strict %v%%",
				r.AnnounceInterval, r.FillingPct, r.StrictPct)
		}
		if r.FillingPct <= 0 || r.FillingPct > 100.001 {
			t.Errorf("announce=%v: implausible used%% %v", r.AnnounceInterval, r.FillingPct)
		}
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable([]string{"x", "long-header"}, [][]string{{"1", "2"}, {"300", "4"}})
	if !strings.HasPrefix(s, "# x") {
		t.Errorf("missing gnuplot comment header: %q", s)
	}
	if !strings.Contains(s, "long-header") || !strings.Contains(s, "300") {
		t.Errorf("table content missing: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("table should have 3 lines, got %d", len(lines))
	}
}

func TestScenarioDeterminism(t *testing.T) {
	cfg := ScenarioConfig{
		Seed: 7, Steps: 40, Smax: testSmax, Overcommit: 1,
		Mode: apps.NEADynamic, PSATaskDurations: []float64{30},
		Policy: core.EquiPartitionFilling,
	}
	a, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AMRArea != b.AMRArea || a.Makespan != b.Makespan || a.PSAWaste[0] != b.PSAWaste[0] || a.Events != b.Events {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}
