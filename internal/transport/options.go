package transport

import (
	"errors"
	"time"

	"coormv2/internal/obs"
)

// Defaults for Options fields left at zero.
const (
	DefaultHeartbeatMiss   = 3
	DefaultBackoffBase     = 25 * time.Millisecond
	DefaultBackoffMax      = 1 * time.Second
	DefaultReconnectWindow = 15 * time.Second
	DefaultHandshakeWait   = 5 * time.Second
)

// ErrCallTimeout is returned by Request/Done when the per-call deadline
// (Options.CallTimeout) expires before the server's ack arrives. The call
// may still execute server-side; with idempotency tokens a later retry of
// the same operation is deduplicated.
var ErrCallTimeout = errors.New("transport: call deadline exceeded")

// Options configures a Client's wire-level resilience. The zero value
// reproduces the historical behaviour: no heartbeats, no reconnection, no
// per-call deadline, 4 MiB frames.
type Options struct {
	// MaxFrame caps the size of a received frame in bytes (0 =
	// DefaultMaxFrame). An oversized server frame is surfaced as an
	// *OversizedFrameError and treated as a connection failure — with
	// Reconnect enabled the session resumes on a fresh connection.
	MaxFrame int

	// CallTimeout bounds each Request/Done round trip (0 = wait forever).
	// A timed-out call returns ErrCallTimeout.
	CallTimeout time.Duration

	// HeartbeatInterval enables liveness probing: the client sends a ping
	// every interval and declares the connection dead when nothing —
	// pong, ack, or notification — arrives for HeartbeatMiss intervals.
	// Zero disables heartbeats (liveness then relies on TCP errors).
	HeartbeatInterval time.Duration

	// HeartbeatMiss is the number of silent intervals tolerated before
	// the connection is declared dead (0 = DefaultHeartbeatMiss).
	HeartbeatMiss int

	// Reconnect enables automatic reconnection with session resume: on
	// connection death the client re-dials with exponential backoff +
	// jitter and presents its resume token; the server re-attaches the
	// session, replays current views/starts, and deduplicates re-sent
	// in-flight calls via their idempotency tokens. When the server
	// refuses the resume (session torn down after the grace window) the
	// client delivers OnKill and fails all pending calls.
	Reconnect bool

	// ReconnectWindow bounds the total time spent reconnecting after a
	// drop before giving up (0 = DefaultReconnectWindow). Align it with
	// the server's grace window: reconnecting longer than the server
	// retains the session only yields a resume rejection.
	ReconnectWindow time.Duration

	// BackoffBase/BackoffMax shape the reconnect backoff: the n-th
	// attempt waits min(BackoffBase·2ⁿ, BackoffMax) scaled by a jitter
	// factor in [0.5, 1.0). Zeroes use DefaultBackoffBase/Max.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed drives the backoff jitter. Zero seeds from the clock;
	// deterministic tests pass a fixed seed.
	Seed int64

	// Tenant optionally tags the session with a tenant queue path
	// ("org/team/q"), forwarded to the scheduler as rms.WithTenant. It is
	// replayed verbatim on every resume handshake.
	Tenant string

	// Obs, when set, records client-side resilience telemetry: the
	// "transport.reconnect_seconds" histogram (connection death →
	// resumed), EvResume events, and the client counter group.
	Obs *obs.Registry
}

func (o *Options) heartbeatDeadline() time.Duration {
	miss := o.HeartbeatMiss
	if miss <= 0 {
		miss = DefaultHeartbeatMiss
	}
	return time.Duration(miss) * o.HeartbeatInterval
}

func (o *Options) backoffBase() time.Duration {
	if o.BackoffBase <= 0 {
		return DefaultBackoffBase
	}
	return o.BackoffBase
}

func (o *Options) backoffMax() time.Duration {
	if o.BackoffMax <= 0 {
		return DefaultBackoffMax
	}
	return o.BackoffMax
}

func (o *Options) reconnectWindow() time.Duration {
	if o.ReconnectWindow <= 0 {
		return DefaultReconnectWindow
	}
	return o.ReconnectWindow
}
