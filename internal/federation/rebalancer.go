package federation

import (
	"fmt"
	"sort"
	"sync"

	"coormv2/internal/clock"
	"coormv2/internal/view"
)

// Rebalancer watches per-shard load and migrates clusters off skewed shards.
//
// Load is observed per cluster through rms.Server.ClusterLoads: the score of
// a cluster over one check interval is its request churn delta (accepted
// request() operations since the last check — the counter also surfaces in
// the metrics registry as metrics.ChurnRequests) plus its firm pool
// occupancy (node IDs held by non-preemptible allocations; preemptible
// holdings are reclaimable and would mask skew under scavenger PSAs that
// fill every idle node); a shard's score is the sum over its clusters. When the
// hottest shard's score exceeds SkewRatio times the coldest's, the
// rebalancer migrates the hottest donor cluster whose move strictly narrows
// the gap, via Federator.MigrateCluster. Clusters that cannot move — the
// donor's last cluster, or a racing topology change — are skipped in
// favour of the next candidate. (Live cross-cluster relations no longer
// block a move: the severing detach converts them into NotBefore floors.)
//
// Checks run on the federation's clock ("rebalance.check" timer events), so
// under clock.SimClock the whole rebalancing schedule is part of the
// deterministic event stream: same seed, same migrations, same event
// fingerprint. Down shards are excluded from both ends of a check; a shard
// that crashed and restarted reports reset churn counters, which the delta
// computation treats as a fresh baseline.
type Rebalancer struct {
	f   *Federator
	cfg RebalancerConfig

	mu       sync.Mutex
	last     map[view.ClusterID]int64 // cumulative churn at the last check
	epochs   []int64                  // per-shard load epoch at the last check
	timer    clock.Timer
	started  bool
	stopped  bool
	checks   int
	skipped  int
	migrated int
	requests int
	trace    []string
}

// RebalancerConfig parametrizes a Rebalancer.
type RebalancerConfig struct {
	// Interval is the virtual (or wall) time between load checks; required.
	Interval float64
	// SkewRatio triggers a migration when the hottest shard's load score
	// exceeds SkewRatio × the coldest's. Values below 1 select the default
	// of 2 (a shard twice as loaded as the coldest is skewed).
	SkewRatio float64
	// MinLoad is the minimum donor score for a check to act at all, so an
	// idle federation is never churned. Default 1.
	MinLoad int64
	// MaxMoves caps migrations per check. Default 1.
	MaxMoves int
	// OnMigration, when non-nil, observes every completed migration (the
	// chaos×migration harness hooks its invariant checker here). It must not
	// call back into the Rebalancer.
	OnMigration func(MigrationReport)
}

// NewRebalancer creates a rebalancer for the federation. Call Start to arm
// the periodic check.
func NewRebalancer(f *Federator, cfg RebalancerConfig) *Rebalancer {
	if cfg.Interval <= 0 {
		panic("federation: RebalancerConfig.Interval must be positive")
	}
	if cfg.SkewRatio < 1 {
		cfg.SkewRatio = 2
	}
	if cfg.MinLoad <= 0 {
		cfg.MinLoad = 1
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 1
	}
	return &Rebalancer{f: f, cfg: cfg, last: make(map[view.ClusterID]int64)}
}

// Start arms the periodic load check; the first one fires one Interval from
// now. Start is idempotent and a no-op after Stop.
func (rb *Rebalancer) Start() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.started || rb.stopped {
		return
	}
	rb.started = true
	rb.armLocked()
}

func (rb *Rebalancer) armLocked() {
	rb.timer = rb.f.clk.AfterFunc(rb.cfg.Interval, "rebalance.check", rb.tick)
}

// Stop cancels the periodic check permanently.
func (rb *Rebalancer) Stop() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.stopped = true
	if rb.timer != nil {
		rb.timer.Stop()
		rb.timer = nil
	}
}

func (rb *Rebalancer) tick() {
	rb.CheckNow()
	rb.mu.Lock()
	if !rb.stopped {
		rb.armLocked()
	}
	rb.mu.Unlock()
}

// Checks returns the number of load checks performed.
func (rb *Rebalancer) Checks() int { rb.mu.Lock(); defer rb.mu.Unlock(); return rb.checks }

// SkippedChecks returns the number of checks that skipped the scoring pass
// because no shard's load epoch had advanced since the previous check.
func (rb *Rebalancer) SkippedChecks() int { rb.mu.Lock(); defer rb.mu.Unlock(); return rb.skipped }

// Migrations returns the number of completed cluster migrations.
func (rb *Rebalancer) Migrations() int { rb.mu.Lock(); defer rb.mu.Unlock(); return rb.migrated }

// MovedRequests returns the total request mappings handed over so far.
func (rb *Rebalancer) MovedRequests() int { rb.mu.Lock(); defer rb.mu.Unlock(); return rb.requests }

// Trace returns one deterministic line per completed migration, in order.
func (rb *Rebalancer) Trace() []string {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return append([]string(nil), rb.trace...)
}

// CheckNow runs one load check immediately (the timer path calls it every
// Interval; tests and benchmark warm-ups may call it directly).
func (rb *Rebalancer) CheckNow() {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.checks++

	// Cheap epoch compare before any load snapshotting: every shard
	// reports a load-mutation epoch (rms.Server.LoadEpoch advances on any
	// mutation that could change ClusterLoads; a stopped shard reports
	// -1). If every epoch matches the previous check's, nothing moved on
	// any shard — the scores would come out identical and the previous
	// check already declined to act on them — so the whole scoring pass is
	// skipped. The first check always runs.
	n := rb.f.NumShards()
	if rb.epochs == nil {
		rb.epochs = make([]int64, n)
		for i := range rb.epochs {
			rb.epochs[i] = -2 // matches no real epoch: the first check runs
		}
	}
	quiescent := true
	for i := 0; i < n; i++ {
		e := rb.f.Shard(i).LoadEpoch()
		if e != rb.epochs[i] {
			quiescent = false
		}
		rb.epochs[i] = e
	}
	if quiescent {
		rb.skipped++
		return
	}

	type cand struct {
		cid   view.ClusterID
		score int64
	}
	scores := make([]int64, n)
	running := make([]bool, n)
	clusters := make([][]cand, n)
	for i := 0; i < n; i++ {
		if rb.f.ShardDown(i) {
			continue
		}
		loads := rb.f.Shard(i).ClusterLoads()
		if loads == nil { // crashed between the down check and the read
			continue
		}
		running[i] = true
		for _, l := range loads {
			d := l.Churn - rb.last[l.Cluster]
			if d < 0 {
				// The shard restarted since the last check and its counters
				// reset; treat the current value as a fresh baseline.
				d = l.Churn
			}
			rb.last[l.Cluster] = l.Churn
			score := d + int64(l.Firm)
			scores[i] += score
			clusters[i] = append(clusters[i], cand{l.Cluster, score})
		}
	}

	for moves := 0; moves < rb.cfg.MaxMoves; moves++ {
		donor, target := -1, -1
		for i := 0; i < n; i++ {
			if !running[i] {
				continue
			}
			if target < 0 || scores[i] < scores[target] {
				target = i
			}
			// Only shards with at least two clusters can donate.
			if len(clusters[i]) >= 2 && (donor < 0 || scores[i] > scores[donor]) {
				donor = i
			}
		}
		if donor < 0 || target < 0 || donor == target {
			return
		}
		gap := scores[donor] - scores[target]
		if scores[donor] < rb.cfg.MinLoad || float64(scores[donor]) <= rb.cfg.SkewRatio*float64(scores[target]) {
			return
		}
		// Hottest candidate first; ClusterLoads order makes ties resolve by
		// ascending cluster ID, so candidate order is deterministic. A move
		// must strictly narrow the gap: 0 < score < gap.
		sort.SliceStable(clusters[donor], func(a, b int) bool {
			return clusters[donor][a].score > clusters[donor][b].score
		})
		moved := false
		for ci, c := range clusters[donor] {
			if c.score <= 0 || c.score >= gap {
				continue
			}
			rep, err := rb.f.MigrateCluster(c.cid, target)
			if err != nil {
				continue // last cluster or racing topology change: next candidate
			}
			rb.migrated++
			rb.requests += rep.Requests
			rb.trace = append(rb.trace, fmt.Sprintf("t=%.6f %s", rb.f.Now(), rep))
			if rb.cfg.OnMigration != nil {
				rb.cfg.OnMigration(rep)
			}
			scores[donor] -= c.score
			scores[target] += c.score
			clusters[donor] = append(clusters[donor][:ci], clusters[donor][ci+1:]...)
			clusters[target] = append(clusters[target], c)
			moved = true
			break
		}
		if !moved {
			return
		}
	}
}
