// Package transport exposes a CooRMv2 RMS over TCP using the
// newline-delimited JSON protocol of internal/proto. Together with
// clock.RealClock it is the "real-life prototype RMS" of §5: the simulator
// and the daemon share every line of scheduling code.
//
// The transport is backend-agnostic: it bridges connections either to a
// single rms.Server or to a federation.Federator, whose front-end routes
// each session's requests to the scheduler shard owning the target cluster.
//
// The wire is treated as unreliable by design: clients heartbeat and
// reconnect with exponential backoff (see Options), the server issues
// resume tokens so a reconnecting client reclaims its session within a
// grace window instead of being killed, calls carry idempotency tokens so
// re-sent requests are never executed twice, and every connection writes
// through a bounded queue — a stalled client is evicted (into the grace
// window) rather than ever blocking the notifier.
package transport

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coormv2/internal/federation"
	"coormv2/internal/obs"
	"coormv2/internal/proto"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Server-side defaults.
const (
	// DefaultWriteQueue bounds the per-connection outbound frame queue.
	DefaultWriteQueue = 256
	// DefaultWriteTimeout bounds one frame write on a stalled connection.
	DefaultWriteTimeout = 10 * time.Second
	// drainWait bounds how long a closing connection waits for its write
	// queue to flush.
	drainWait = time.Second
	// idemCacheSize bounds the per-session idempotency result cache. A
	// client's in-flight window is far smaller; older outcomes can no
	// longer be retried.
	idemCacheSize = 1024
)

// Session is the server-side session surface the transport needs. Both
// *rms.Session and *federation.Session satisfy it.
type Session interface {
	AppID() int
	Request(spec rms.RequestSpec) (request.ID, error)
	Done(id request.ID, released []int) error
	Disconnect()
}

// Backend creates application sessions: a single RMS or a federation.
type Backend interface {
	Connect(h rms.AppHandler, opts ...rms.ConnectOption) Session
}

// rmsBackend adapts *rms.Server to Backend.
type rmsBackend struct{ s *rms.Server }

func (b rmsBackend) Connect(h rms.AppHandler, opts ...rms.ConnectOption) Session {
	return b.s.Connect(h, opts...)
}

// fedBackend adapts *federation.Federator to Backend.
type fedBackend struct{ f *federation.Federator }

func (b fedBackend) Connect(h rms.AppHandler, opts ...rms.ConnectOption) Session {
	return b.f.Connect(h, opts...)
}

// serverStats are the transport's resilience counters, exported through
// Stats and the "transport" obs counter group.
type serverStats struct {
	accepted     atomic.Int64 // connections accepted
	sessions     atomic.Int64 // sessions created
	resumes      atomic.Int64 // successful session resumes
	resumeReject atomic.Int64 // resume attempts on unknown/expired tokens
	connDrops    atomic.Int64 // connections that died with a live session
	evictions    atomic.Int64 // slow-consumer evictions (write queue full)
	graceExpiry  atomic.Int64 // sessions torn down after the grace window
	oversized    atomic.Int64 // oversized client frames skipped
	unsolicited  atomic.Int64 // unsolicited error frames sent to clients
	idemReplays  atomic.Int64 // calls answered from the idempotency cache
}

func (st *serverStats) snapshot() map[string]int64 {
	return map[string]int64{
		"conns_accepted":   st.accepted.Load(),
		"sessions":         st.sessions.Load(),
		"resumes":          st.resumes.Load(),
		"resumes_rejected": st.resumeReject.Load(),
		"conn_drops":       st.connDrops.Load(),
		"evictions":        st.evictions.Load(),
		"grace_expiries":   st.graceExpiry.Load(),
		"oversized_frames": st.oversized.Load(),
		"errors_sent":      st.unsolicited.Load(),
		"idem_replays":     st.idemReplays.Load(),
	}
}

// Server accepts TCP connections and bridges them to backend sessions.
type Server struct {
	backend Backend
	ln      net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	sessions map[string]*wireSession // resume token → session
	closed   bool
	wg       sync.WaitGroup

	stats   serverStats
	hResume *obs.Histogram

	// Logf logs transport events; defaults to log.Printf. Tests silence it.
	Logf func(format string, args ...any)

	// Workers, when positive, bounds how many connections are served
	// concurrently: Serve dispatches accepted connections to a fixed pool
	// of that many handler goroutines. A connection occupies its worker
	// for the whole application session (RMS sessions are long-lived), so
	// this is an admission limit on concurrent applications: connections
	// beyond the bound wait unserved — without a Connected reply — until a
	// running session ends, like jobs in a batch queue. Zero keeps the
	// one-goroutine-per-connection behaviour (no admission limit). Set
	// before calling Serve.
	Workers int

	// MaxFrame caps received frame sizes in bytes (0 = DefaultMaxFrame).
	// An oversized client frame is skipped in place and reported back as
	// a structured unsolicited error; the session survives.
	MaxFrame int

	// WriteQueue bounds each connection's outbound frame queue (0 =
	// DefaultWriteQueue). A full queue marks the client a slow consumer:
	// its connection is evicted — the notifier never blocks — and the
	// session enters the grace window for the client to resume.
	WriteQueue int

	// WriteTimeout bounds a single frame write on a stalled connection
	// (0 = DefaultWriteTimeout).
	WriteTimeout time.Duration

	// Grace is how long a session whose connection dropped without a Bye
	// survives awaiting a resume. Zero disables resume: a dropped
	// connection tears its session down immediately (the pre-resilience
	// behaviour). Set before calling Serve.
	Grace time.Duration

	// Obs, when set, records transport resilience telemetry: the
	// "transport" counter group, the "transport.resume_seconds" histogram
	// (connection drop → resume), and EvConnDrop/EvResume events. Set
	// before calling Serve.
	Obs *obs.Registry
}

// NewServer wraps a single RMS server. Call Serve to start accepting.
func NewServer(r *rms.Server) *Server { return NewBackendServer(rmsBackend{r}) }

// NewFederatedServer wraps a federation front-end: every accepted
// connection becomes a federated session whose requests are routed to the
// shard owning their target cluster.
func NewFederatedServer(f *federation.Federator) *Server {
	return NewBackendServer(fedBackend{f})
}

// NewBackendServer wraps any session backend.
func NewBackendServer(b Backend) *Server {
	return &Server{
		backend:  b,
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[string]*wireSession),
		Logf:     log.Printf,
	}
}

// Stats returns the transport's resilience counters.
func (s *Server) Stats() map[string]int64 { return s.stats.snapshot() }

func (s *Server) maxFrame() int {
	if s.MaxFrame > 0 {
		return s.MaxFrame
	}
	return DefaultMaxFrame
}

func (s *Server) writeQueue() int {
	if s.WriteQueue > 0 {
		return s.WriteQueue
	}
	return DefaultWriteQueue
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return DefaultWriteTimeout
}

// Listen binds the given address ("host:port"; use ":0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close is called. It returns nil on a
// clean shutdown. With Workers > 0 a fixed pool of handler goroutines
// serves the connections (see Workers for the admission semantics);
// otherwise each connection gets its own goroutine.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("transport: Serve before Listen")
	}
	if s.Obs != nil {
		s.hResume = s.Obs.Hist("transport.resume_seconds")
		s.Obs.RegisterCounters("transport", s.stats.snapshot)
	}
	var queue chan net.Conn
	if s.Workers > 0 {
		queue = make(chan net.Conn)
		for i := 0; i < s.Workers; i++ {
			go func() {
				for conn := range queue {
					s.handle(conn)
					s.wg.Done()
				}
			}()
		}
		defer close(queue)
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			// Close ran between Accept and registration; it will never see
			// this connection, so drop it here instead of leaking a handler
			// Close cannot wait for.
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.stats.accepted.Add(1)
		s.wg.Add(1)
		if queue != nil {
			queue <- conn
			continue
		}
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, tears down every session (detached ones
// included), and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	sessions := make([]*wireSession, 0, len(s.sessions))
	for _, ws := range s.sessions {
		sessions = append(sessions, ws)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, ws := range sessions {
		ws.teardown()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// unregister forgets a session's resume token.
func (s *Server) unregister(token string) {
	s.mu.Lock()
	delete(s.sessions, token)
	s.mu.Unlock()
}

// lookupSession resolves a resume token to its live session.
func (s *Server) lookupSession(token string) *wireSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[token]
}

// newToken mints an unguessable resume token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("transport: token entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// connWriter is one connection's bounded outbound queue plus its writer
// goroutine. Enqueues never block; a full queue is the slow-consumer
// signal that evicts the connection.
type connWriter struct {
	conn    net.Conn
	timeout time.Duration

	mu     sync.Mutex
	ch     chan []byte
	closed bool
	done   chan struct{}
}

func newConnWriter(conn net.Conn, queueCap int, timeout time.Duration) *connWriter {
	w := &connWriter{
		conn:    conn,
		timeout: timeout,
		ch:      make(chan []byte, queueCap),
		done:    make(chan struct{}),
	}
	go w.run()
	return w
}

func (w *connWriter) run() {
	defer close(w.done)
	var failed bool
	for data := range w.ch {
		if failed {
			continue // drain: the connection already broke
		}
		w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
		if _, err := w.conn.Write(data); err != nil {
			failed = true
			w.conn.Close() // the read side unblocks and handles the drop
		}
	}
}

// enqueue queues one frame. It returns false when the queue is full — the
// caller must evict the connection. Frames enqueued after finish/evict
// are silently dropped (the connection is dying; resume re-syncs state).
func (w *connWriter) enqueue(data []byte) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return true
	}
	select {
	case w.ch <- data:
		return true
	default:
		return false
	}
}

// finish stops accepting frames; the writer drains what is queued and
// exits. Idempotent.
func (w *connWriter) finish() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
	w.mu.Unlock()
}

// drainThenClose flushes the queue (bounded) and closes the connection.
func (w *connWriter) drainThenClose() {
	w.finish()
	select {
	case <-w.done:
	case <-time.After(drainWait):
	}
	w.conn.Close()
}

// evict cuts a slow consumer immediately: no drain — by definition its
// queue is full and its connection stalled.
func (w *connWriter) evict() {
	w.conn.Close()
	w.finish()
}

// idemEntry caches one idempotent call outcome. done is closed when the
// reply is valid; a duplicate arriving while the original executes waits
// on it instead of re-executing.
type idemEntry struct {
	done  chan struct{}
	reply proto.Message // Seq cleared; the responder stamps the retry's
}

// wireSession is the server side of one application session across any
// number of consecutive connections. It implements rms.AppHandler (and
// rms.RequestObserver, to prune replay state in lockstep with the
// backend's own bookkeeping).
type wireSession struct {
	srv   *Server
	token string
	appID int
	sess  Session

	mu        sync.Mutex
	cw        *connWriter // nil while detached
	lastNP    view.View   // latest views, replayed on resume
	lastP     view.View
	haveViews bool
	starts    map[int64][]int // started-but-unfinished requests, replayed on resume
	idem      map[int64]*idemEntry
	idemQ     []int64 // insertion order, for cache eviction
	killed    bool
	gone      bool
	graceT    *time.Timer
	droppedAt time.Time
}

// enqueueLocked marshals and queues one frame on the attached connection,
// evicting it when the queue is full. Call with ws.mu held — the lock
// makes state recording and frame ordering atomic against a concurrent
// resume replay.
func (ws *wireSession) enqueueLocked(m proto.Message) {
	cw := ws.cw
	if cw == nil {
		return // detached: state is re-delivered on resume
	}
	data, err := m.Marshal()
	if err != nil {
		ws.srv.Logf("transport: marshal: %v", err)
		return
	}
	if !cw.enqueue(append(data, '\n')) {
		// Slow consumer: a stalled client must never block the notifier.
		// Cut the connection; the session survives into the grace window.
		ws.srv.stats.evictions.Add(1)
		cw.evict()
	}
}

// deliver is enqueueLocked for callers not holding ws.mu.
func (ws *wireSession) deliver(m proto.Message) {
	ws.mu.Lock()
	ws.enqueueLocked(m)
	ws.mu.Unlock()
}

// OnViews caches and forwards the freshest views.
func (ws *wireSession) OnViews(np, p view.View) {
	ws.mu.Lock()
	ws.lastNP, ws.lastP, ws.haveViews = np, p, true
	ws.enqueueLocked(proto.Message{
		Type:           proto.MsgViews,
		NonPreemptView: proto.EncodeView(np),
		PreemptView:    proto.EncodeView(p),
	})
	ws.mu.Unlock()
}

// OnStart records and forwards a start. Recording and enqueueing share
// one critical section so a concurrent resume replay can never duplicate
// (or miss) the start.
func (ws *wireSession) OnStart(id request.ID, nodeIDs []int) {
	ws.mu.Lock()
	ws.starts[int64(id)] = nodeIDs
	ws.enqueueLocked(proto.Message{Type: proto.MsgStart, ReqID: int64(id), NodeIDs: nodeIDs})
	ws.mu.Unlock()
}

// OnKill forwards the kill and retires the session: the backend already
// tore it down, so there is nothing to resume.
func (ws *wireSession) OnKill(reason string) {
	ws.mu.Lock()
	ws.killed = true
	ws.gone = true
	ws.enqueueLocked(proto.Message{Type: proto.MsgKill, Reason: reason})
	cw := ws.cw
	ws.cw = nil
	t := ws.graceT
	ws.graceT = nil
	ws.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	ws.srv.unregister(ws.token)
	if cw != nil {
		// Flush the kill frame, then cut the connection to unblock the
		// session's reader. Async: OnKill may run on another session's
		// serving goroutine (the server notifies outside its lock).
		go cw.drainThenClose()
	}
}

// OnRequestFinished prunes replay state: a finished request's start can
// never need re-delivery.
func (ws *wireSession) OnRequestFinished(id request.ID) {
	ws.mu.Lock()
	delete(ws.starts, int64(id))
	ws.mu.Unlock()
}

// OnRequestsReaped prunes replay state for garbage-collected requests.
func (ws *wireSession) OnRequestsReaped(ids []request.ID) {
	ws.mu.Lock()
	for _, id := range ids {
		delete(ws.starts, int64(id))
	}
	ws.mu.Unlock()
}

// attach installs a connection writer and — in the same critical section,
// so no concurrent OnStart/OnViews can interleave — sends the connected
// frame followed by a replay of current state (latest views, every
// started-but-unfinished request, flagged Replay for client-side
// deduplication). Returns false when the session is already gone.
func (ws *wireSession) attach(cw *connWriter, connected proto.Message) bool {
	ws.mu.Lock()
	if ws.gone || ws.killed {
		ws.mu.Unlock()
		return false
	}
	old := ws.cw
	ws.cw = cw
	if t := ws.graceT; t != nil {
		t.Stop()
		ws.graceT = nil
	}
	var outage time.Duration
	resumed := !ws.droppedAt.IsZero() || old != nil
	if !ws.droppedAt.IsZero() {
		outage = time.Since(ws.droppedAt)
		ws.droppedAt = time.Time{}
	}
	ws.enqueueLocked(connected)
	if resumed {
		if ws.haveViews {
			ws.enqueueLocked(proto.Message{
				Type:           proto.MsgViews,
				NonPreemptView: proto.EncodeView(ws.lastNP),
				PreemptView:    proto.EncodeView(ws.lastP),
				Replay:         true,
			})
		}
		ids := make([]int64, 0, len(ws.starts))
		for id := range ws.starts {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			ws.enqueueLocked(proto.Message{Type: proto.MsgStart, ReqID: id, NodeIDs: ws.starts[id], Replay: true})
		}
	}
	ws.mu.Unlock()
	if old != nil {
		// A half-open predecessor: replace it.
		go old.drainThenClose()
	}
	if resumed {
		ws.srv.stats.resumes.Add(1)
		ws.srv.hResume.Record(outage.Seconds())
		if ws.srv.Obs != nil {
			ws.srv.Obs.Event(obs.Event{Type: obs.EvResume, App: ws.appID, Value: outage.Seconds()})
		}
	}
	return true
}

// dropConn detaches cw (if it is still the session's current connection)
// and arms the grace window; with no grace configured the session is torn
// down immediately.
func (ws *wireSession) dropConn(cw *connWriter) {
	ws.mu.Lock()
	if ws.cw != cw || ws.gone || ws.killed {
		ws.mu.Unlock()
		return
	}
	ws.cw = nil
	ws.droppedAt = time.Now()
	grace := ws.srv.Grace
	if grace > 0 {
		ws.graceT = time.AfterFunc(grace, ws.expireGrace)
	}
	ws.mu.Unlock()
	ws.srv.stats.connDrops.Add(1)
	if ws.srv.Obs != nil {
		ws.srv.Obs.Event(obs.Event{Type: obs.EvConnDrop, App: ws.appID})
	}
	if grace <= 0 {
		ws.teardown()
	}
}

// expireGrace fires when the grace window elapsed without a resume: the
// session is handed to the existing teardown machinery (requests reaped,
// resources freed — exactly what a vanished in-process application gets).
func (ws *wireSession) expireGrace() {
	ws.mu.Lock()
	stale := ws.cw != nil || ws.gone || ws.killed // resumed or already down
	ws.mu.Unlock()
	if stale {
		return
	}
	ws.srv.stats.graceExpiry.Add(1)
	ws.teardown()
}

// teardown retires the session: timer stopped, token forgotten, backend
// session disconnected (releasing every resource), connection drained and
// closed. Idempotent.
func (ws *wireSession) teardown() {
	ws.mu.Lock()
	if ws.gone {
		ws.mu.Unlock()
		return
	}
	ws.gone = true
	cw := ws.cw
	ws.cw = nil
	t := ws.graceT
	ws.graceT = nil
	ws.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	if cw != nil {
		go cw.drainThenClose()
	}
	ws.srv.unregister(ws.token)
	ws.sess.Disconnect()
}

// sendRaw writes one frame directly, outside any writer queue — for
// rejections before a session exists.
func (s *Server) sendRaw(conn net.Conn, m proto.Message) {
	data, err := m.Marshal()
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
	conn.Write(append(data, '\n'))
}

func (s *Server) handle(conn net.Conn) {
	var cw *connWriter
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if cw != nil {
			cw.finish()
			select {
			case <-cw.done:
			case <-time.After(drainWait):
			}
		}
		conn.Close()
	}()

	fr := newFrameReader(conn, s.maxFrame())

	// The first frame must be a connect (fresh or resuming).
	line, err := fr.next()
	if err != nil {
		return
	}
	m, err := proto.Unmarshal(line)
	if err != nil || m.Type != proto.MsgConnect {
		s.stats.unsolicited.Add(1)
		s.sendRaw(conn, proto.Message{Type: proto.MsgError, Reason: "expected connect"})
		return
	}

	var ws *wireSession
	if m.Resume != "" {
		ws = s.lookupSession(m.Resume)
		if ws == nil {
			s.stats.resumeReject.Add(1)
			s.sendRaw(conn, proto.Message{Type: proto.MsgKill,
				Reason: "resume rejected: unknown or expired session"})
			return
		}
	} else {
		ws = s.newSession(m)
		if ws == nil {
			s.sendRaw(conn, proto.Message{Type: proto.MsgError, Reason: "server closing"})
			return
		}
	}
	cw = newConnWriter(conn, s.writeQueue(), s.writeTimeout())
	connected := proto.Message{Type: proto.MsgConnected, AppID: ws.appID, Resume: ws.token}
	if !ws.attach(cw, connected) {
		s.stats.resumeReject.Add(1)
		s.sendRaw(conn, proto.Message{Type: proto.MsgKill,
			Reason: "resume rejected: session terminated"})
		return
	}

	if bye := s.readCalls(ws, fr); bye {
		ws.teardown()
		return
	}
	ws.dropConn(cw)
}

// newSession mints a session: resume token, backend connect (with the
// wire-carried connect options), registry entry. Returns nil when the
// server is closing.
func (s *Server) newSession(m *proto.Message) *wireSession {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	ws := &wireSession{
		srv:    s,
		token:  newToken(),
		starts: make(map[int64][]int),
		idem:   make(map[int64]*idemEntry),
	}
	var opts []rms.ConnectOption
	if m.Tenant != "" {
		opts = append(opts, rms.WithTenant(m.Tenant))
	}
	ws.sess = s.backend.Connect(ws, opts...)
	ws.appID = ws.sess.AppID()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ws.sess.Disconnect()
		return nil
	}
	s.sessions[ws.token] = ws
	s.mu.Unlock()
	s.stats.sessions.Add(1)
	return ws
}

// readCalls serves one connection's application calls until it ends.
// Returns true on a clean Bye, false on a connection drop.
func (s *Server) readCalls(ws *wireSession, fr *frameReader) (bye bool) {
	for {
		line, err := fr.next()
		if err != nil {
			var ofe *OversizedFrameError
			if errors.As(err, &ofe) {
				// The reader skipped the oversized line; the stream is in
				// sync and the session survives. Report it.
				s.stats.oversized.Add(1)
				s.stats.unsolicited.Add(1)
				ws.deliver(proto.Message{Type: proto.MsgError, Reason: ofe.Error()})
				continue
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("transport: read: %v", err)
			}
			return false
		}
		m, err := proto.Unmarshal(line)
		if err != nil {
			s.stats.unsolicited.Add(1)
			ws.deliver(proto.Message{Type: proto.MsgError, Reason: err.Error()})
			continue
		}
		switch m.Type {
		case proto.MsgPing:
			ws.deliver(proto.Message{Type: proto.MsgPong, Seq: m.Seq})

		case proto.MsgRequest, proto.MsgDone:
			s.serveCall(ws, m)

		case proto.MsgBye:
			return true

		default:
			ws.deliver(proto.Message{Type: proto.MsgError, Seq: m.Seq,
				Reason: fmt.Sprintf("unexpected message %q", m.Type)})
		}
	}
}

// serveCall executes one request/done call with idempotent-retry
// semantics: the first arrival of an idem token executes and caches the
// outcome; any retry (same token, re-sent after a reconnect because the
// ack may have died with the old connection) waits for and replays the
// cached outcome instead of executing twice.
func (s *Server) serveCall(ws *wireSession, m *proto.Message) {
	if m.Idem == 0 {
		reply := s.invoke(ws, m)
		reply.Seq = m.Seq
		ws.deliver(reply)
		return
	}
	ws.mu.Lock()
	if e, ok := ws.idem[m.Idem]; ok {
		ws.mu.Unlock()
		<-e.done // the original may still be executing
		s.stats.idemReplays.Add(1)
		reply := e.reply
		reply.Seq = m.Seq
		ws.deliver(reply)
		return
	}
	e := &idemEntry{done: make(chan struct{})}
	ws.idem[m.Idem] = e
	ws.idemQ = append(ws.idemQ, m.Idem)
	if len(ws.idemQ) > idemCacheSize {
		delete(ws.idem, ws.idemQ[0])
		ws.idemQ = ws.idemQ[1:]
	}
	ws.mu.Unlock()

	e.reply = s.invoke(ws, m)
	close(e.done)
	reply := e.reply
	reply.Seq = m.Seq
	ws.deliver(reply)
}

// invoke executes one backend call and shapes the ack/error frame
// (without Seq — the caller stamps it, also on idempotent replays).
func (s *Server) invoke(ws *wireSession, m *proto.Message) proto.Message {
	switch m.Type {
	case proto.MsgRequest:
		spec, err := m.DecodeRequestSpec()
		if err != nil {
			return proto.Message{Type: proto.MsgError, Reason: err.Error()}
		}
		id, err := ws.sess.Request(spec)
		if err != nil {
			return proto.Message{Type: proto.MsgError, Reason: err.Error()}
		}
		return proto.Message{Type: proto.MsgReqAck, ReqID: int64(id)}

	default: // proto.MsgDone
		if err := ws.sess.Done(request.ID(m.ReqID), m.Released); err != nil {
			return proto.Message{Type: proto.MsgError, Reason: err.Error()}
		}
		ws.mu.Lock()
		delete(ws.starts, m.ReqID)
		ws.mu.Unlock()
		return proto.Message{Type: proto.MsgReqAck, ReqID: m.ReqID}
	}
}
