package apps

import (
	"testing"

	"coormv2/internal/amr"
	"coormv2/internal/clock"
	"coormv2/internal/core"
)

func TestProbableNEAOutgrowsAndResubmits(t *testing.T) {
	v := newEnv(400, core.EquiPartitionFilling)
	prof := testProfile(11, 30) // grows toward ~80 target nodes
	a := NewProbableNEA(clock.SimClock{E: v.e}, ProbableNEAConfig{
		Cluster: c0, Profile: prof, Params: amr.DefaultParams,
		TargetEff:        0.75,
		InitialPreAllocN: 5, // deliberately far too small
		CheckpointCost:   10,
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.RunAll()
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	if !a.Finished() {
		t.Fatalf("did not finish: step=%d", a.Step())
	}
	if a.Resubmissions == 0 {
		t.Error("a 5-node pre-allocation must be outgrown")
	}
	if a.CheckpointTime == 0 {
		t.Error("checkpoint time not accounted")
	}
	// All resources are returned at the end.
	if got := v.rec.Current(1); got != 0 {
		t.Errorf("still holding %d nodes", got)
	}
}

func TestProbableNEASufficientPreAllocNoResubmit(t *testing.T) {
	v := newEnv(400, core.EquiPartitionFilling)
	prof := testProfile(12, 25)
	peak := amr.DefaultParams.NodesForEfficiency(prof.Max(), 0.75)
	a := NewProbableNEA(clock.SimClock{E: v.e}, ProbableNEAConfig{
		Cluster: c0, Profile: prof, Params: amr.DefaultParams,
		TargetEff:        0.75,
		InitialPreAllocN: peak + 10, // generous: never outgrown
		CheckpointCost:   10,
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.RunAll()
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	if !a.Finished() {
		t.Fatal("did not finish")
	}
	if a.Resubmissions != 0 {
		t.Errorf("no outgrow expected, got %d resubmissions", a.Resubmissions)
	}
	if a.CheckpointTime != 0 {
		t.Errorf("checkpoint time = %v, want 0", a.CheckpointTime)
	}
}

func TestProbableNEAResubmitCostsTime(t *testing.T) {
	// The same workload with a too-small initial guess must finish later
	// than with a sufficient one (checkpoints + requeueing).
	prof := testProfile(13, 25)
	peak := amr.DefaultParams.NodesForEfficiency(prof.Max(), 0.75)
	run := func(initial int) float64 {
		v := newEnv(400, core.EquiPartitionFilling)
		a := NewProbableNEA(clock.SimClock{E: v.e}, ProbableNEAConfig{
			Cluster: c0, Profile: prof, Params: amr.DefaultParams,
			TargetEff: 0.75, InitialPreAllocN: initial, CheckpointCost: 30,
		})
		v.connect(a, a)
		if err := a.Submit(); err != nil {
			t.Fatal(err)
		}
		v.e.RunAll()
		if !a.Finished() || a.Err != nil {
			t.Fatalf("initial=%d did not finish (err=%v)", initial, a.Err)
		}
		return a.EndTime
	}
	slow := run(3)
	fast := run(peak + 10)
	if slow <= fast {
		t.Errorf("outgrowing run (%v) should end later than sufficient run (%v)", slow, fast)
	}
}
