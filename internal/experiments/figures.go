package experiments

import (
	"fmt"
	"strings"

	"coormv2/internal/amr"
	"coormv2/internal/apps"
	"coormv2/internal/core"
	"coormv2/internal/stats"
)

// ---------------------------------------------------------------------------
// Fig. 1 — example AMR working-set evolutions.

// Fig1Config parametrizes the profile showcase.
type Fig1Config struct {
	Seeds []int64
	Steps int
}

// Fig1Profile is one generated evolution, on the paper's 0–1000 scale.
type Fig1Profile struct {
	Seed   int64
	Series []float64
}

// Fig1 regenerates the normalized evolution profiles of Fig. 1.
func Fig1(cfg Fig1Config) []Fig1Profile {
	if cfg.Steps <= 0 {
		cfg.Steps = amr.ProfileSteps
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2, 3, 4}
	}
	out := make([]Fig1Profile, 0, len(cfg.Seeds))
	for _, seed := range cfg.Seeds {
		pr := amr.GenerateProfile(stats.NewRand(seed), cfg.Steps, 1000)
		out = append(out, Fig1Profile{Seed: seed, Series: pr})
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig. 2 — speed-up model fit.

// Fig2Result reports the fit of the speed-up model against (synthetic)
// measurements: the paper's criterion is a maximum relative error < 15 %.
type Fig2Result struct {
	Fitted      amr.SpeedupParams
	MaxRelError float64
	// Rows are the per-(size, nodes) durations: measured vs model.
	Rows []Fig2Row
}

// Fig2Row is one point of Fig. 2.
type Fig2Row struct {
	SizeMiB   float64
	Nodes     int
	Measured  float64
	Predicted float64
}

// Fig2 synthesizes a measurement grid (documented substitution for the
// unavailable Uintah data), fits the model and reports the error.
func Fig2(seed int64, noise float64) (*Fig2Result, error) {
	ms := amr.SynthesizeMeasurements(amr.DefaultParams, stats.NewRand(seed), noise)
	fitted, err := amr.FitSpeedup(ms)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Fitted: fitted, MaxRelError: amr.MaxRelError(fitted, ms)}
	for _, m := range ms {
		res.Rows = append(res.Rows, Fig2Row{
			SizeMiB: m.SizeMiB, Nodes: m.Nodes,
			Measured: m.Duration, Predicted: fitted.StepTime(m.Nodes, m.SizeMiB),
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 3 — end-time increase of the equivalent static allocation.

// Fig3Row is one point of Fig. 3.
type Fig3Row struct {
	TargetEff          float64
	Neq                int
	EndTimeIncreasePct float64
}

// Fig3 sweeps the target efficiency and reports the end-time increase when
// the equivalent static allocation replaces the dynamic one (§2.3: "the
// end-time of the application increases with at most 2.5%").
func Fig3(seed int64, steps int, targets []float64) []Fig3Row {
	if steps <= 0 {
		steps = amr.ProfileSteps
	}
	if len(targets) == 0 {
		targets = stats.Linspace(0.1, 0.9, 17)
	}
	p := amr.DefaultParams
	pr := amr.GenerateProfile(stats.NewRand(seed), steps, amr.DefaultSmax)
	out := make([]Fig3Row, 0, len(targets))
	for _, et := range targets {
		neq, _ := p.EquivalentStatic(pr, et)
		out = append(out, Fig3Row{
			TargetEff:          et,
			Neq:                neq,
			EndTimeIncreasePct: 100 * p.EndTimeIncrease(pr, et),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig. 4 — static allocation choices for a target efficiency of 75 %.

// Fig4Row is one band of Fig. 4.
type Fig4Row struct {
	RelativeSize float64
	MinNodes     int
	MaxNodes     int
	Feasible     bool
}

// Fig4 sweeps relative data sizes (1/8 … 8 in the paper) and reports, for
// each, the static node-count band that neither runs out of memory nor
// exceeds 110 % of A(75 %).
func Fig4(seed int64, steps int, relSizes []float64, nodeMemMiB float64) []Fig4Row {
	if steps <= 0 {
		steps = amr.ProfileSteps
	}
	if len(relSizes) == 0 {
		relSizes = []float64{0.125, 0.25, 0.5, 1, 2, 4, 8}
	}
	if nodeMemMiB <= 0 {
		nodeMemMiB = amr.DefaultNodeMemoryMiB
	}
	p := amr.DefaultParams
	pr := amr.GenerateProfile(stats.NewRand(seed), steps, amr.DefaultSmax)
	out := make([]Fig4Row, 0, len(relSizes))
	for _, r := range relSizes {
		c := p.StaticChoiceRange(pr, 0.75, nodeMemMiB, r)
		out = append(out, Fig4Row{RelativeSize: r, MinNodes: c.MinNodes, MaxNodes: c.MaxNodes, Feasible: c.Feasible})
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig. 9 — scheduling with spontaneous updates.

// Fig9Config parametrizes the spontaneous-update experiment (§5.2).
type Fig9Config struct {
	Overcommits []float64
	Seed        int64
	Steps       int
	Smax        float64
	PSATaskDur  float64 // d_task of PSA1 (600 s in the paper)
}

// Fig9Row is one x-position of Fig. 9: the AMR's consumed area under the
// static and dynamic disciplines, and the PSA waste under dynamic.
type Fig9Row struct {
	Overcommit  float64
	Nodes       int
	StaticArea  float64 // node·s
	DynamicArea float64 // node·s
	PSAWaste    float64 // node·s (dynamic runs)
}

// Fig9 reproduces §5.2: one AMR + one PSA; the AMR is scheduled statically
// (forced to use its whole pre-allocation) and dynamically (CooRMv2).
func Fig9(cfg Fig9Config) ([]Fig9Row, error) {
	if len(cfg.Overcommits) == 0 {
		cfg.Overcommits = stats.Logspace(0.1, 10, 9)
	}
	if cfg.PSATaskDur <= 0 {
		cfg.PSATaskDur = 600
	}
	out := make([]Fig9Row, 0, len(cfg.Overcommits))
	for _, over := range cfg.Overcommits {
		base := ScenarioConfig{
			Seed: cfg.Seed, Steps: cfg.Steps, Smax: cfg.Smax,
			TargetEff: 0.75, Overcommit: over,
			PSATaskDurations: []float64{cfg.PSATaskDur},
		}
		dynCfg := base
		dynCfg.Mode = apps.NEADynamic
		dyn, err := RunScenario(dynCfg)
		if err != nil {
			return nil, fmt.Errorf("fig9 overcommit=%g dynamic: %w", over, err)
		}
		statCfg := base
		statCfg.Mode = apps.NEAStatic
		stat, err := RunScenario(statCfg)
		if err != nil {
			return nil, fmt.Errorf("fig9 overcommit=%g static: %w", over, err)
		}
		out = append(out, Fig9Row{
			Overcommit:  over,
			Nodes:       dyn.Nodes,
			StaticArea:  stat.AMRArea,
			DynamicArea: dyn.AMRArea,
			PSAWaste:    dyn.PSAWaste[0],
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 10 — scheduling with announced updates.

// Fig10Config parametrizes the announced-update experiment (§5.3);
// the overcommit factor is fixed to 1.
type Fig10Config struct {
	AnnounceIntervals []float64
	Seed              int64
	Steps             int
	Smax              float64
	PSATaskDur        float64
}

// Fig10Row is one x-position of Fig. 10.
type Fig10Row struct {
	AnnounceInterval   float64
	EndTimeIncreasePct float64 // vs the spontaneous (announce = 0) run
	PSAWastePct        float64 // waste as % of the PSA's allocated area
	UsedResourcesPct   float64 // (allocated − waste) / capacity over makespan
}

// Fig10 reproduces §5.3: the AMR uses announced updates with increasing
// notice; waste falls to zero once the notice exceeds d_task, at the cost
// of a longer AMR run.
func Fig10(cfg Fig10Config) ([]Fig10Row, error) {
	if len(cfg.AnnounceIntervals) == 0 {
		cfg.AnnounceIntervals = []float64{0, 100, 200, 300, 400, 500, 550, 600, 650, 700}
	}
	if cfg.PSATaskDur <= 0 {
		cfg.PSATaskDur = 600
	}
	var baseline float64
	out := make([]Fig10Row, 0, len(cfg.AnnounceIntervals))
	for i, ann := range cfg.AnnounceIntervals {
		res, err := RunScenario(ScenarioConfig{
			Seed: cfg.Seed, Steps: cfg.Steps, Smax: cfg.Smax,
			TargetEff: 0.75, Overcommit: 1, Mode: apps.NEADynamic,
			AnnounceInterval: ann,
			PSATaskDurations: []float64{cfg.PSATaskDur},
		})
		if err != nil {
			return nil, fmt.Errorf("fig10 announce=%g: %w", ann, err)
		}
		if i == 0 {
			baseline = res.AMRRuntime
		}
		wastePct := 0.0
		if res.PSAArea[0] > 0 {
			wastePct = 100 * res.PSAWaste[0] / res.PSAArea[0]
		}
		out = append(out, Fig10Row{
			AnnounceInterval:   ann,
			EndTimeIncreasePct: 100 * (res.AMRRuntime/baseline - 1),
			PSAWastePct:        wastePct,
			UsedResourcesPct:   100 * res.UsedFraction,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 11 — efficient resource filling with two PSAs.

// Fig11Config parametrizes the two-PSA experiment (§5.4).
type Fig11Config struct {
	AnnounceIntervals []float64
	Seeds             []int64
	Steps             int
	Smax              float64
	PSA1TaskDur       float64 // 600 s in the paper
	PSA2TaskDur       float64 // 60 s in the paper
}

// Fig11Row is one x-position of Fig. 11: the median used-resources
// percentage under both preemptible division policies.
type Fig11Row struct {
	AnnounceInterval float64
	FillingPct       float64 // equi-partitioning with filling (CooRMv2)
	StrictPct        float64 // strict equi-partitioning (baseline)
}

// Fig11 reproduces §5.4: a second PSA with a smaller task duration fills
// the holes the first PSA cannot use — but only when the RMS lets it
// (filling policy); medians across seeds, as in the paper.
func Fig11(cfg Fig11Config) ([]Fig11Row, error) {
	if len(cfg.AnnounceIntervals) == 0 {
		cfg.AnnounceIntervals = []float64{0, 100, 200, 300, 400, 500, 600, 700}
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if cfg.PSA1TaskDur <= 0 {
		cfg.PSA1TaskDur = 600
	}
	if cfg.PSA2TaskDur <= 0 {
		cfg.PSA2TaskDur = 60
	}
	out := make([]Fig11Row, 0, len(cfg.AnnounceIntervals))
	for _, ann := range cfg.AnnounceIntervals {
		var filling, strict []float64
		for _, seed := range cfg.Seeds {
			for _, policy := range []core.PreemptPolicy{core.EquiPartitionFilling, core.StrictEquiPartition} {
				res, err := RunScenario(ScenarioConfig{
					Seed: seed, Steps: cfg.Steps, Smax: cfg.Smax,
					TargetEff: 0.75, Overcommit: 1, Mode: apps.NEADynamic,
					AnnounceInterval: ann,
					PSATaskDurations: []float64{cfg.PSA1TaskDur, cfg.PSA2TaskDur},
					Policy:           policy,
				})
				if err != nil {
					return nil, fmt.Errorf("fig11 announce=%g seed=%d policy=%v: %w", ann, seed, policy, err)
				}
				if policy == core.EquiPartitionFilling {
					filling = append(filling, 100*res.UsedFraction)
				} else {
					strict = append(strict, 100*res.UsedFraction)
				}
			}
		}
		out = append(out, Fig11Row{
			AnnounceInterval: ann,
			FillingPct:       stats.Median(filling),
			StrictPct:        stats.Median(strict),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table rendering (gnuplot-friendly, used by cmd/coorm-exp).

// FormatTable renders rows of columns as an aligned text table with a
// "# "-prefixed header, the format the paper's gnuplot scripts consume.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString("# ")
	for i, h := range header {
		fmt.Fprintf(&b, "%-*s  ", width[i], h)
	}
	b.WriteString("\n")
	for _, r := range rows {
		b.WriteString("  ")
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", width[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
