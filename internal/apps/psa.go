package apps

import (
	"math"
	"sort"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// PSAConfig parametrizes the parameter-sweep application of §5.1.2.
type PSAConfig struct {
	Cluster view.ClusterID
	// TaskDuration is d_task: every task occupies one node for exactly this
	// long. The application has infinitely many tasks.
	TaskDuration float64
	// Metrics receives the waste (node·seconds of killed tasks). Optional.
	Metrics *metrics.Recorder
	// MetricsID is the application ID under which waste is recorded.
	MetricsID int

	// IgnoreWindows disables the §4 resource-selection rule ("select only
	// the resources it can actually take advantage of"): the PSA claims
	// every visible node even when the availability window cannot fit a
	// task. Ablation knob; see internal/experiments.AblationPSA.
	IgnoreWindows bool
	// NoGraceful disables the graceful-release planner: announced
	// reclamations are treated like spontaneous ones (tasks are killed at
	// the drop). Ablation knob.
	NoGraceful bool
}

// pendingBatch is a release that could not execute yet (update in flight).
type pendingBatch struct {
	ids  []int
	kill bool
}

// psaNode is one allocated node and the start time of its current task.
// stopAt, when finite, marks the task boundary after which the node must
// not start another task: the release planner set it because the node is
// about to be given back. An idle node (now >= stopAt) carries no
// in-progress work, so releasing it late costs nothing.
type psaNode struct {
	id        int
	taskStart float64
	stopAt    float64 // +Inf when the node runs tasks back-to-back
}

// PSA is the malleable parameter-sweep application: "composed of an
// infinite number of single-node tasks, each of duration d_task. The PSA
// monitors its preemptive view. If more resources are available to it than
// it has currently allocated, it updates its preemptible request and spawns
// new processes. If the RMS requires it to release resources immediately,
// it kills a few tasks then updates its request. The computations done so
// far are lost [waste]. If the RMS is able to inform the PSA in a timely
// manner that resources will become unavailable, then the PSA waits for
// some tasks to complete ... no waste occurs" (§5.1.2).
//
// Resource selection (§4): a node is only claimed when its visible
// availability window can fit at least one full task.
type PSA struct {
	base
	cfg PSAConfig

	reqID   request.ID
	haveReq bool
	// updating is true while a request update awaits its start
	// notification; re-planning is deferred until then.
	updating      bool
	replanPending bool

	nodes  []psaNode
	timers []clock.Timer
	// pendingRelease queues release batches whose timer fired while an
	// update was in flight; they are executed as soon as it lands.
	pendingRelease []pendingBatch

	lastView *stepfunc.StepFunc

	waste     float64
	completed int

	// Err records the first protocol error (test harnesses fail on it).
	Err error

	// OnWasteEvent, when set, observes every kill (diagnostics).
	OnWasteEvent func(now, nodeSeconds float64, context string)
}

// NewPSA creates a parameter-sweep application.
func NewPSA(clk clock.Clock, cfg PSAConfig) *PSA {
	if cfg.TaskDuration <= 0 {
		panic("apps: PSA needs a positive task duration")
	}
	return &PSA{base: base{clk: clk}, cfg: cfg, lastView: stepfunc.Zero()}
}

// SetMetricsID sets the application ID under which waste is recorded
// (known only once the session is connected).
func (p *PSA) SetMetricsID(id int) { p.cfg.MetricsID = id }

// SetIgnoreWindows toggles the window-aware selection rule (ablation).
func (p *PSA) SetIgnoreWindows(v bool) { p.cfg.IgnoreWindows = v }

// SetNoGraceful toggles the graceful-release planner (ablation).
func (p *PSA) SetNoGraceful(v bool) { p.cfg.NoGraceful = v }

// Waste returns the node·seconds lost to killed tasks so far.
func (p *PSA) Waste() float64 { return p.waste }

// CompletedTasks returns the tasks finished up to now (including those on
// still-held nodes).
func (p *PSA) CompletedTasks() int {
	n := p.completed
	now := p.now()
	for _, nd := range p.nodes {
		limit := math.Min(now, nd.stopAt)
		if k := math.Floor((limit - nd.taskStart) / p.cfg.TaskDuration); k > 0 {
			n += int(k)
		}
	}
	return n
}

// elapsed returns the in-progress work on a node at time now (0 if the
// node is idling past its stop mark). Call after rollForward.
func (p *PSA) elapsed(nd psaNode, now float64) float64 {
	if now >= nd.stopAt {
		return 0
	}
	e := now - nd.taskStart
	if e < 0 {
		return 0
	}
	return e
}

// HeldNodes returns the number of nodes currently allocated.
func (p *PSA) HeldNodes() int { return len(p.nodes) }

// OnViews stores the preemptive view and re-plans.
func (p *PSA) OnViews(_, pv view.View) {
	p.lastView = pv.Get(p.cfg.Cluster)
	p.plan()
}

// OnStart adopts the allocation of a request update.
func (p *PSA) OnStart(id request.ID, nodeIDs []int) {
	if id != p.reqID {
		return
	}
	p.updating = false
	now := p.now()
	prev := make(map[int]psaNode, len(p.nodes))
	for _, nd := range p.nodes {
		prev[nd.id] = nd
	}
	p.nodes = p.nodes[:0]
	for _, nid := range nodeIDs {
		nd, ok := prev[nid]
		if !ok {
			// Fresh node: a new task starts immediately.
			nd = psaNode{id: nid, taskStart: now, stopAt: math.Inf(1)}
		}
		p.nodes = append(p.nodes, nd)
	}
	p.replanPending = false
	// Execute releases that fired while the update was in flight; the stop
	// marks kept those nodes idle, so a late graceful release is free.
	if len(p.pendingRelease) > 0 {
		batches := p.pendingRelease
		p.pendingRelease = nil
		for _, b := range batches {
			// If an earlier batch issued an update, releaseBatch requeues
			// the later ones by itself.
			p.releaseBatch(b.ids, b.kill)
		}
	}
	p.plan()
}

// OnKill stops all activity.
func (p *PSA) OnKill(reason string) {
	p.base.OnKill(reason)
	p.cancelTimers()
}

// OnNodeFailure reacts to machine failures. The RMS already stripped the
// dead nodes from the preemptible allocation (revocation is within the P
// contract, so the action is always a reduction): the PSA records the
// in-progress work lost on them as waste, forgets the nodes, and re-plans
// against the shrunken holding — claiming replacement capacity as soon as
// the views show any.
func (p *PSA) OnNodeFailure(ev rms.NodeFailure) {
	if p.killed || p.Err != nil || len(ev.LostIDs) == 0 {
		return
	}
	now := p.now()
	p.rollForward(now)
	for _, nodeID := range ev.LostIDs {
		for i, nd := range p.nodes {
			if nd.id == nodeID {
				p.recordWaste(p.elapsed(nd, now), "node-failure")
				p.nodes = append(p.nodes[:i], p.nodes[i+1:]...)
				break
			}
		}
	}
	p.plan()
}

// rollForward advances every node's current-task start past completed
// tasks, counting them. Nodes never roll past their stop mark: after it
// they idle instead of starting a task that is known to be doomed.
func (p *PSA) rollForward(now float64) {
	d := p.cfg.TaskDuration
	for i := range p.nodes {
		limit := math.Min(now, p.nodes[i].stopAt)
		k := int(math.Floor((limit - p.nodes[i].taskStart) / d))
		if k > 0 {
			p.completed += k
			p.nodes[i].taskStart += float64(k) * d
		}
	}
}

func (p *PSA) cancelTimers() {
	for _, t := range p.timers {
		t.Stop()
	}
	p.timers = p.timers[:0]
}

// recordWaste adds killed-task waste.
func (p *PSA) recordWaste(w float64, context string) {
	if w <= 0 {
		return
	}
	p.waste += w
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.AddWaste(p.cfg.MetricsID, w)
	}
	if p.OnWasteEvent != nil {
		p.OnWasteEvent(p.now(), w, context)
	}
}

// updateRequest resizes the preemptible allocation to n nodes, releasing
// the given IDs (the update operation of §3.1.3 on a preemptible request).
func (p *PSA) updateRequest(n int, released []int) {
	switch {
	case !p.haveReq:
		if n <= 0 {
			return
		}
		id, err := p.sess.Request(rms.RequestSpec{
			Cluster: p.cfg.Cluster, N: n, Duration: math.Inf(1), Type: request.Preempt,
		})
		if err != nil {
			p.Err = err
			return
		}
		p.reqID = id
		p.haveReq = true
		p.updating = true

	case n <= 0:
		if err := p.sess.Done(p.reqID, nil); err != nil {
			p.Err = err
			return
		}
		p.haveReq = false
		p.nodes = p.nodes[:0]

	default:
		id, err := p.sess.Request(rms.RequestSpec{
			Cluster: p.cfg.Cluster, N: n, Duration: math.Inf(1),
			Type: request.Preempt, RelatedHow: request.Next, RelatedTo: p.reqID,
		})
		if err != nil {
			p.Err = err
			return
		}
		if err := p.sess.Done(p.reqID, released); err != nil {
			p.Err = err
			return
		}
		p.reqID = id
		p.updating = true
	}
}

// claimable returns the node count the PSA should hold given the view: at
// most the current availability, never fewer than currently held (shrinking
// is handled by the release planner), and only counting ranks whose
// availability window fits at least one full task.
func (p *PSA) claimable(v *stepfunc.StepFunc, now float64) int {
	cap := v.Value(now)
	if cap < 0 {
		cap = 0
	}
	held := len(p.nodes)
	m := cap
	if !p.cfg.IgnoreWindows {
		for m > held {
			drop := v.FirstBelow(m, now)
			if math.IsInf(drop, 1) || drop-now >= p.cfg.TaskDuration {
				break
			}
			m--
		}
	}
	if m < held {
		m = held
	}
	return m
}

// plan is the PSA's brain: called after every view push, start notification
// and release timer.
func (p *PSA) plan() {
	if p.killed || p.Err != nil {
		return
	}
	if p.updating {
		p.replanPending = true
		return
	}
	p.cancelTimers()
	now := p.now()
	p.rollForward(now)
	v := p.lastView
	d := p.cfg.TaskDuration

	capNow := v.Value(now)
	if capNow < 0 {
		capNow = 0
	}

	// 1. Immediate revocation: the view dropped below the current holding;
	// kill tasks (least elapsed first — idle nodes are free) and release.
	if capNow < len(p.nodes) {
		k := len(p.nodes) - capNow
		idx := make([]int, len(p.nodes))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return p.elapsed(p.nodes[idx[a]], now) < p.elapsed(p.nodes[idx[b]], now)
		})
		released := make([]int, 0, k)
		kill := map[int]bool{}
		for _, i := range idx[:k] {
			kill[i] = true
			released = append(released, p.nodes[i].id)
			p.recordWaste(p.elapsed(p.nodes[i], now), "immediate-revocation")
		}
		kept := p.nodes[:0]
		for i, nd := range p.nodes {
			if !kill[i] {
				kept = append(kept, nd)
			}
		}
		p.nodes = kept
		p.updateRequest(capNow, released)
		return
	}

	// 2. Growth: claim usable nodes.
	if target := p.claimable(v, now); target > len(p.nodes) {
		p.updateRequest(target, nil)
		return
	}

	// 3. Graceful release planning for announced future drops: walk the
	// view's breakpoints; whenever the (running-minimum) availability falls
	// below the unplanned holding, pick victims. The PSA "waits for some
	// tasks to complete, afterwards it updates its request to release the
	// resources on which the completed tasks ran" (§5.1.2): a victim whose
	// current task finishes by the drop is released at that first
	// completion (no waste); a victim whose task overruns the drop is
	// killed at the drop (waste). Releasing at the first completion, not
	// the last one before the drop, keeps the plan stable under
	// re-planning: any later re-plan sees the same earliest completions.
	// Any previous stop marks are re-derived from scratch against the
	// current view. A node that idled past its old mark resumes with a
	// fresh task *now* — its idle time must not be mistaken for work.
	for i := range p.nodes {
		if now >= p.nodes[i].stopAt {
			p.nodes[i].taskStart = now
		}
		p.nodes[i].stopAt = math.Inf(1)
	}
	planned := map[int]bool{}          // node index -> already planned
	batches := map[float64][]int{}     // release time -> node IDs (graceful)
	killBatches := map[float64][]int{} // drop time -> node IDs (kill)
	runMin := len(p.nodes)
	for k := 0; k < v.Len(); k++ {
		bp, val := v.At(k)
		if bp <= now {
			continue
		}
		if val < 0 {
			val = 0
		}
		if val >= runMin {
			continue
		}
		runMin = val
		need := 0
		for i := range p.nodes {
			if !planned[i] {
				need++
			}
		}
		need -= val
		if need <= 0 {
			continue
		}
		// After rollForward every node's current task started at
		// taskStart ∈ (now−d, now]; its next completion is taskStart+d.
		type cand struct {
			i          int
			completion float64
			graceful   bool
		}
		var cands []cand
		for i := range p.nodes {
			if planned[i] {
				continue
			}
			next := p.nodes[i].taskStart + d
			graceful := next <= bp && !p.cfg.NoGraceful
			cands = append(cands, cand{i: i, completion: next, graceful: graceful})
		}
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].graceful != cands[b].graceful {
				return cands[a].graceful
			}
			return cands[a].completion < cands[b].completion
		})
		for _, c := range cands[:need] {
			planned[c.i] = true
			nodeID := p.nodes[c.i].id
			if c.graceful {
				// Stop mark: do not start another task after this one; the
				// node will be handed back at (or slightly after) the
				// completion, idling in between at zero cost.
				p.nodes[c.i].stopAt = c.completion
				batches[c.completion] = append(batches[c.completion], nodeID)
			} else {
				killBatches[bp] = append(killBatches[bp], nodeID)
			}
		}
	}
	// One timer (and one request update) per distinct release instant:
	// releasing node-by-node would serialize through the re-scheduling
	// interval and miss later boundaries.
	for when, ids := range batches {
		ids := ids
		p.timers = append(p.timers, p.clk.AfterFunc(when-now, "psa.release", func() {
			p.releaseBatch(ids, false)
		}))
	}
	for when, ids := range killBatches {
		ids := ids
		p.timers = append(p.timers, p.clk.AfterFunc(when-now, "psa.kill", func() {
			p.releaseBatch(ids, true)
		}))
	}
}

// releaseBatch gives a group of nodes back (timer callback of the release
// plan). Graceful releases may fire slightly late (an update was in
// flight); the stop marks guarantee the nodes idled meanwhile, so no work
// is lost.
func (p *PSA) releaseBatch(nodeIDs []int, kill bool) {
	if p.killed || p.Err != nil {
		return
	}
	if p.updating {
		// An update raced with the plan; queue the release until it lands.
		// The stop marks keep the affected nodes idle until then.
		p.pendingRelease = append(p.pendingRelease, pendingBatch{ids: nodeIDs, kill: kill})
		return
	}
	now := p.now()
	p.rollForward(now)
	released := make([]int, 0, len(nodeIDs))
	for _, nodeID := range nodeIDs {
		idx := -1
		for i, nd := range p.nodes {
			if nd.id == nodeID {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue // already gone
		}
		if kill {
			p.recordWaste(p.elapsed(p.nodes[idx], now), "planned-kill")
		}
		p.nodes = append(p.nodes[:idx], p.nodes[idx+1:]...)
		released = append(released, nodeID)
	}
	if len(released) == 0 {
		return
	}
	p.updateRequest(len(p.nodes), released)
}

// Shutdown releases everything (clean exit, e.g. for the daemon demo).
func (p *PSA) Shutdown() {
	p.cancelTimers()
	now := p.now()
	p.rollForward(now)
	if p.haveReq {
		_ = p.sess.Done(p.reqID, nil)
		p.haveReq = false
	}
	p.nodes = p.nodes[:0]
}
