// Package stepfunc implements integer-valued step functions of continuous
// time. They are the Cluster Availability Profiles (CAPs) of the paper
// (§3.1.4 and §A.3): the x-axis is absolute time in seconds, the y-axis is
// a node count.
//
// A StepFunc is immutable: every operation returns a new value, and
// operations are free to return one of their operands when the result is
// identical (e.g. Add with a zero operand). Functions are defined on
// [0, +Inf); the last segment extends to infinity. Values may be negative
// (differences of profiles are used as scratch values by the scheduler),
// and callers clamp where the domain requires it.
//
// The arithmetic core is a single-pass sorted merge: operands are stored
// normalized (strictly increasing times, no repeated values), so every
// binary operation emits its result already normalized, with exactly one
// slice allocation of exact capacity. Hot callers can go further with the
// *Into variants and the Builder, which reuse caller-owned storage, and
// with SumAll, which folds any number of operands in one k-way pass.
package stepfunc

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Inf is the time/duration value representing "forever".
var Inf = math.Inf(1)

type point struct {
	t float64 // start time of the segment
	n int     // value on [t, nextT)
}

// StepFunc is a right-continuous step function of time.
// The zero value is the constant-zero function.
type StepFunc struct {
	// pts is sorted by strictly increasing t, with pts[0].t == 0 and no
	// two consecutive equal values. An empty slice means constant zero.
	// A one-point slice {0, 0} is forbidden (it must be the empty slice).
	pts []point
}

// zeroFunc is the shared constant-zero function. Sharing is safe because
// StepFunc values are immutable; the *Into variants explicitly refuse to
// write into it.
var zeroFunc = &StepFunc{}

// Zero returns the constant-zero step function.
func Zero() *StepFunc { return zeroFunc }

// Constant returns the step function that is n everywhere.
func Constant(n int) *StepFunc {
	if n == 0 {
		return zeroFunc
	}
	return &StepFunc{pts: []point{{0, n}}}
}

// Step describes one segment of a profile in the paper's list-of-pairs
// notation: the value n holds for the given Duration.
type Step struct {
	Duration float64
	N        int
}

// FromSteps builds a step function from the paper's (duration, node-count)
// list notation, starting at time 0. After the listed segments the function
// is 0, matching §A.3 ("0 nodes are available for t ∈ [7200, ∞)"). A final
// segment with Duration == Inf extends its value forever.
func FromSteps(steps ...Step) *StepFunc {
	pts := make([]point, 0, len(steps)+1)
	t := 0.0
	for _, s := range steps {
		if s.Duration < 0 {
			panic("stepfunc: negative duration")
		}
		if s.Duration == 0 {
			continue
		}
		if n := len(pts); n == 0 || pts[n-1].n != s.N {
			pts = append(pts, point{t, s.N})
		}
		if math.IsInf(s.Duration, 1) {
			return ownPts(pts)
		}
		t += s.Duration
	}
	if n := len(pts); n == 0 || pts[n-1].n != 0 {
		pts = append(pts, point{t, 0})
	}
	return ownPts(pts)
}

// ownPts wraps an already-normalized point sequence, taking ownership of
// the slice. It collapses the forbidden {0, 0} singleton to the shared zero.
func ownPts(pts []point) *StepFunc {
	if len(pts) == 0 || (len(pts) == 1 && pts[0].n == 0) {
		return zeroFunc
	}
	return &StepFunc{pts: pts}
}

// Rect returns a step function that is n on [t0, t0+dur) and 0 elsewhere.
// dur may be Inf.
func Rect(t0, dur float64, n int) *StepFunc {
	if t0 < 0 {
		panic("stepfunc: negative rect start")
	}
	if dur < 0 {
		panic("stepfunc: negative rect duration")
	}
	if dur == 0 || n == 0 {
		return zeroFunc
	}
	pts := make([]point, 0, 3)
	if t0 > 0 {
		pts = append(pts, point{0, 0})
	}
	pts = append(pts, point{t0, n})
	if !math.IsInf(dur, 1) {
		pts = append(pts, point{t0 + dur, 0})
	}
	return &StepFunc{pts: pts}
}

// Value returns the function value at time t. Values for t < 0 are reported
// as the value at 0 (the domain starts at 0).
func (f *StepFunc) Value(t float64) int {
	if len(f.pts) == 0 {
		return 0
	}
	// Binary search for the last point with pts[i].t <= t.
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > t })
	if i == 0 {
		return f.pts[0].n
	}
	return f.pts[i-1].n
}

// IsZero reports whether the function is identically zero.
func (f *StepFunc) IsZero() bool { return len(f.pts) == 0 }

// Len returns the number of stored breakpoints (0 for the zero function).
func (f *StepFunc) Len() int { return len(f.pts) }

// At returns the i-th breakpoint: the segment start time and the value held
// on [t, next t). Segments are indexed in increasing time order; callers use
// Len/At to walk a profile with a cursor instead of binary-searching Value
// at every probe.
func (f *StepFunc) At(i int) (t float64, n int) {
	p := f.pts[i]
	return p.t, p.n
}

// Clone returns a deep copy. Because StepFunc is treated as immutable this
// is rarely needed, but it keeps ownership obvious at package boundaries.
func (f *StepFunc) Clone() *StepFunc {
	if len(f.pts) == 0 {
		return zeroFunc
	}
	return &StepFunc{pts: append([]point(nil), f.pts...)}
}

// Equal reports whether f and g are the same function.
func (f *StepFunc) Equal(g *StepFunc) bool {
	if f == g {
		// Profiles are immutable and widely shared (views cache and reuse
		// them across scheduling rounds), so identity is a common fast path.
		return true
	}
	if len(f.pts) != len(g.pts) {
		return false
	}
	for i := range f.pts {
		if f.pts[i] != g.pts[i] {
			return false
		}
	}
	return true
}

// Breakpoints returns the times at which the function changes value,
// always including 0.
func (f *StepFunc) Breakpoints() []float64 {
	if len(f.pts) == 0 {
		return []float64{0}
	}
	return f.AppendBreakpoints(make([]float64, 0, len(f.pts)))
}

// AppendBreakpoints appends the function's breakpoints (including 0) to dst
// and returns the extended slice. It allocates only when dst lacks capacity.
func (f *StepFunc) AppendBreakpoints(dst []float64) []float64 {
	if len(f.pts) == 0 {
		return append(dst, 0)
	}
	if f.pts[0].t != 0 {
		dst = append(dst, 0)
	}
	for _, p := range f.pts {
		dst = append(dst, p.t)
	}
	return dst
}

// opCode selects the pointwise operation of a merge. Using a code instead
// of a func value keeps the merge loop free of indirect calls.
type opCode uint8

const (
	opAdd opCode = iota
	opSub
	opMin
	opMax
)

func applyOp(op opCode, a, b int) int {
	switch op {
	case opAdd:
		return a + b
	case opSub:
		return a - b
	case opMin:
		if a < b {
			return a
		}
		return b
	default: // opMax
		if a > b {
			return a
		}
		return b
	}
}

// appendCombined merges f and g pointwise with op, appending the normalized
// result onto dst (which must be empty, i.e. buf[:0], and must not alias f
// or g). Both inputs are normalized, so the merged stream is emitted in
// increasing time order with equal-value runs collapsed on the fly — no
// sort, no post-pass.
func appendCombined(dst []point, f, g []point, op opCode) []point {
	i, j := 0, 0
	va, vb := 0, 0
	for i < len(f) || j < len(g) {
		var t float64
		switch {
		case i < len(f) && j < len(g):
			if f[i].t <= g[j].t {
				t = f[i].t
			} else {
				t = g[j].t
			}
		case i < len(f):
			t = f[i].t
		default:
			t = g[j].t
		}
		if i < len(f) && f[i].t == t {
			va = f[i].n
			i++
		}
		if j < len(g) && g[j].t == t {
			vb = g[j].n
			j++
		}
		v := applyOp(op, va, vb)
		if n := len(dst); n == 0 || dst[n-1].n != v {
			dst = append(dst, point{t, v})
		}
	}
	return dst
}

// newCombined materializes op(f, g) with a single exact-capacity allocation.
func newCombined(f, g *StepFunc, op opCode) *StepFunc {
	// Identity fast paths: sharing the operand is safe (immutability).
	if len(g.pts) == 0 && (op == opAdd || op == opSub) {
		return f
	}
	if len(f.pts) == 0 && op == opAdd {
		return g
	}
	pts := appendCombined(make([]point, 0, len(f.pts)+len(g.pts)), f.pts, g.pts, op)
	return ownPts(pts)
}

// combineInto stores op(f, g) into dst, reusing dst's storage, and returns
// dst. When dst aliases an operand (or is the shared zero) a fresh function
// is returned instead; callers must therefore always use the return value.
func combineInto(f, g, dst *StepFunc, op opCode) *StepFunc {
	if dst == nil || dst == zeroFunc || dst == f || dst == g {
		return newCombined(f, g, op)
	}
	pts := appendCombined(dst.pts[:0], f.pts, g.pts, op)
	if len(pts) == 0 || (len(pts) == 1 && pts[0].n == 0) {
		pts = pts[:0]
	}
	dst.pts = pts
	return dst
}

// Add returns f + g (the paper's view sum).
func (f *StepFunc) Add(g *StepFunc) *StepFunc { return newCombined(f, g, opAdd) }

// Sub returns f − g (the paper's view difference).
func (f *StepFunc) Sub(g *StepFunc) *StepFunc { return newCombined(f, g, opSub) }

// Max returns the pointwise maximum of f and g (the paper's view union).
func (f *StepFunc) Max(g *StepFunc) *StepFunc { return newCombined(f, g, opMax) }

// Min returns the pointwise minimum of f and g. It implements view clipping
// (§3.2: "the amount of resources that an application can pre-allocate can
// be limited, by clipping its non-preemptible view").
func (f *StepFunc) Min(g *StepFunc) *StepFunc { return newCombined(f, g, opMin) }

// AddInto stores f + g into dst (see combineInto for the reuse contract).
func (f *StepFunc) AddInto(g, dst *StepFunc) *StepFunc { return combineInto(f, g, dst, opAdd) }

// SubInto stores f − g into dst (see combineInto for the reuse contract).
func (f *StepFunc) SubInto(g, dst *StepFunc) *StepFunc { return combineInto(f, g, dst, opSub) }

// MaxInto stores max(f, g) into dst (see combineInto for the reuse contract).
func (f *StepFunc) MaxInto(g, dst *StepFunc) *StepFunc { return combineInto(f, g, dst, opMax) }

// MinInto stores min(f, g) into dst (see combineInto for the reuse contract).
func (f *StepFunc) MinInto(g, dst *StepFunc) *StepFunc { return combineInto(f, g, dst, opMin) }

// SumAll returns the pointwise sum of all the functions in one k-way merge
// pass, instead of the N-1 intermediate functions a fold over Add would
// build. Nil entries count as zero.
func SumAll(fs []*StepFunc) *StepFunc {
	// Count the non-zero operands; 0 or 1 of them need no merge at all.
	nz := 0
	total := 0
	var last *StepFunc
	for _, f := range fs {
		if f != nil && len(f.pts) > 0 {
			nz++
			total += len(f.pts)
			last = f
		}
	}
	switch nz {
	case 0:
		return zeroFunc
	case 1:
		return last
	case 2:
		var a, b *StepFunc
		for _, f := range fs {
			if f != nil && len(f.pts) > 0 {
				if a == nil {
					a = f
				} else {
					b = f
				}
			}
		}
		return a.Add(b)
	}

	active := make([][]point, 0, nz)
	for _, f := range fs {
		if f != nil && len(f.pts) > 0 {
			active = append(active, f.pts)
		}
	}
	cur := make([]int, len(active)) // cursor per operand
	dst := make([]point, 0, total)
	sum := 0
	for {
		// Find the earliest unconsumed breakpoint across all operands.
		next := Inf
		for k, pts := range active {
			if cur[k] < len(pts) && pts[cur[k]].t < next {
				next = pts[cur[k]].t
			}
		}
		if math.IsInf(next, 1) {
			break
		}
		// Advance every operand sitting at that breakpoint, updating the
		// running sum incrementally.
		for k, pts := range active {
			if c := cur[k]; c < len(pts) && pts[c].t == next {
				prev := 0
				if c > 0 {
					prev = pts[c-1].n
				}
				sum += pts[c].n - prev
				cur[k]++
			}
		}
		if n := len(dst); n == 0 || dst[n-1].n != sum {
			dst = append(dst, point{next, sum})
		}
	}
	return ownPts(dst)
}

// ClampMin returns the function max(f, lo) pointwise with a scalar.
// If the function is already everywhere >= lo, f itself is returned.
func (f *StepFunc) ClampMin(lo int) *StepFunc {
	if len(f.pts) == 0 {
		if lo <= 0 {
			return f
		}
		return Constant(lo)
	}
	clamped := false
	for _, p := range f.pts {
		if p.n < lo {
			clamped = true
			break
		}
	}
	if !clamped {
		return f
	}
	// Clamping only merges segments, never splits them, so the result has
	// at most len(f.pts) points.
	dst := make([]point, 0, len(f.pts))
	for _, p := range f.pts {
		v := p.n
		if v < lo {
			v = lo
		}
		if n := len(dst); n == 0 || dst[n-1].n != v {
			dst = append(dst, point{p.t, v})
		}
	}
	return ownPts(dst)
}

// AddRect returns f plus a rectangle of height n on [t0, t0+dur).
// It is the building block for the paper's "generated views" (Algorithm 1,
// line 22). dur may be Inf. If the rectangle is empty, f itself is returned.
func (f *StepFunc) AddRect(t0, dur float64, n int) *StepFunc {
	if t0 < 0 {
		panic("stepfunc: negative rect start")
	}
	if dur < 0 {
		panic("stepfunc: negative rect duration")
	}
	if dur == 0 || n == 0 {
		return f
	}
	var buf [3]point
	rect := appendRectPts(buf[:0], t0, dur, n)
	pts := appendCombined(make([]point, 0, len(f.pts)+len(rect)), f.pts, rect, opAdd)
	return ownPts(pts)
}

// AddRectInto stores f plus the rectangle into dst (see combineInto for the
// reuse contract).
func (f *StepFunc) AddRectInto(t0, dur float64, n int, dst *StepFunc) *StepFunc {
	if t0 < 0 {
		panic("stepfunc: negative rect start")
	}
	if dur < 0 {
		panic("stepfunc: negative rect duration")
	}
	if dur == 0 || n == 0 {
		if dst == nil || dst == zeroFunc || dst == f {
			return f
		}
		dst.pts = append(dst.pts[:0], f.pts...)
		return dst
	}
	var buf [3]point
	rect := appendRectPts(buf[:0], t0, dur, n)
	if dst == nil || dst == zeroFunc || dst == f {
		return ownPts(appendCombined(make([]point, 0, len(f.pts)+len(rect)), f.pts, rect, opAdd))
	}
	pts := appendCombined(dst.pts[:0], f.pts, rect, opAdd)
	if len(pts) == 1 && pts[0].n == 0 {
		pts = pts[:0]
	}
	dst.pts = pts
	return dst
}

// appendRectPts appends the normalized points of Rect(t0, dur, n) onto dst.
// dur and n must be non-zero, dur and t0 non-negative.
func appendRectPts(dst []point, t0, dur float64, n int) []point {
	if t0 > 0 {
		dst = append(dst, point{0, 0})
	}
	dst = append(dst, point{t0, n})
	if !math.IsInf(dur, 1) {
		dst = append(dst, point{t0 + dur, 0})
	}
	return dst
}

// Builder accumulates a step function left to right, reusing its internal
// storage across Reset calls. It is the allocation-free way to construct a
// profile whose breakpoints are produced in time order (e.g. the
// equi-partition schedule walking piece-wise constant intervals).
type Builder struct {
	pts []point
}

// Reset clears the builder for a new function, keeping capacity.
func (b *Builder) Reset() { b.pts = b.pts[:0] }

// Append records that the function holds value n from time t on. Calls must
// use non-decreasing t; equal-value runs and repeated times collapse
// automatically (the last value at a time wins).
func (b *Builder) Append(t float64, n int) {
	if len(b.pts) > 0 {
		if last := &b.pts[len(b.pts)-1]; last.t == t {
			last.n = n
			// Re-collapse against the predecessor if the overwrite made
			// them equal.
			if k := len(b.pts); k >= 2 && b.pts[k-2].n == n {
				b.pts = b.pts[:k-1]
			}
			return
		} else if last.t > t {
			panic("stepfunc: Builder.Append times must be non-decreasing")
		} else if last.n == n {
			return
		}
	}
	b.pts = append(b.pts, point{t, n})
}

// Fn materializes the accumulated function into a fresh immutable StepFunc.
// The builder remains usable (and reusable) afterwards.
func (b *Builder) Fn() *StepFunc {
	pts := b.pts
	if len(pts) == 0 {
		return zeroFunc
	}
	if pts[0].t == 0 {
		if len(pts) == 1 && pts[0].n == 0 {
			return zeroFunc
		}
		return &StepFunc{pts: append(make([]point, 0, len(pts)), pts...)}
	}
	// The function starts after 0: anchor it with a zero segment, merging
	// any leading zero-valued points into the anchor.
	out := make([]point, 0, len(pts)+1)
	out = append(out, point{0, 0})
	for _, p := range pts {
		if out[len(out)-1].n != p.n {
			out = append(out, p)
		}
	}
	if len(out) == 1 {
		return zeroFunc
	}
	return &StepFunc{pts: out}
}

// MinOn returns the minimum value of f on [t0, t1). t1 may be Inf.
// If t1 <= t0 the interval is empty and MinOn returns math.MaxInt.
func (f *StepFunc) MinOn(t0, t1 float64) int {
	if t1 <= t0 {
		return math.MaxInt
	}
	if len(f.pts) == 0 {
		return 0
	}
	min := f.Value(t0)
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > t0 })
	for ; i < len(f.pts) && f.pts[i].t < t1; i++ {
		if f.pts[i].n < min {
			min = f.pts[i].n
		}
	}
	return min
}

// Integral returns the integral of f over [t0, t1) in value·seconds.
// If the integrand is non-zero on an infinite interval the result is ±Inf.
func (f *StepFunc) Integral(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	if len(f.pts) == 0 {
		return 0
	}
	total := 0.0
	// Walk segments overlapping [t0, t1).
	for i := range f.pts {
		segStart := f.pts[i].t
		segEnd := Inf
		if i+1 < len(f.pts) {
			segEnd = f.pts[i+1].t
		}
		lo := math.Max(segStart, t0)
		hi := math.Min(segEnd, t1)
		if hi <= lo {
			continue
		}
		if math.IsInf(hi, 1) {
			if f.pts[i].n > 0 {
				return Inf
			}
			if f.pts[i].n < 0 {
				return math.Inf(-1)
			}
			continue
		}
		total += float64(f.pts[i].n) * (hi - lo)
	}
	return total
}

// FindHole returns the earliest time ts >= after such that
// MinOn(ts, ts+dur) >= n, i.e. the first moment an allocation of n nodes for
// dur seconds fits under the profile. It implements the paper's findHole
// (§A.3). dur may be Inf. If the profile never satisfies the request,
// FindHole returns +Inf.
func (f *StepFunc) FindHole(n int, dur, after float64) float64 {
	if after < 0 {
		after = 0
	}
	if dur <= 0 {
		return after
	}
	if n <= 0 {
		return after
	}
	if len(f.pts) == 0 {
		return Inf // constant zero can never serve n > 0
	}
	// Candidate start: "after", then each breakpoint where the value rises.
	ts := after
	for {
		// Check window [ts, ts+dur).
		end := ts + dur
		ok := true
		var failAt float64
		if f.Value(ts) < n {
			ok = false
			failAt = ts
		} else {
			i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > ts })
			for ; i < len(f.pts) && (math.IsInf(dur, 1) || f.pts[i].t < end); i++ {
				if f.pts[i].n < n {
					ok = false
					failAt = f.pts[i].t
					break
				}
			}
		}
		if ok {
			return ts
		}
		// Jump to the next breakpoint after failAt where the value becomes >= n.
		i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > failAt })
		next := Inf
		for ; i < len(f.pts); i++ {
			if f.pts[i].n >= n {
				next = f.pts[i].t
				break
			}
		}
		if math.IsInf(next, 1) {
			return Inf
		}
		ts = next
	}
}

// FirstBelow returns the earliest time t >= after at which the value drops
// strictly below level, or +Inf if the value stays >= level forever.
// The PSA resource-selection logic (§4: "select only the resources it can
// actually take advantage of") uses this to measure availability windows.
func (f *StepFunc) FirstBelow(level int, after float64) float64 {
	if after < 0 {
		after = 0
	}
	if f.Value(after) < level {
		return after
	}
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > after })
	for ; i < len(f.pts); i++ {
		if f.pts[i].n < level {
			return f.pts[i].t
		}
	}
	return Inf
}

// NonNegative reports whether the function is >= 0 everywhere. The scheduler
// uses it as an internal oversubscription check.
func (f *StepFunc) NonNegative() bool {
	for _, p := range f.pts {
		if p.n < 0 {
			return false
		}
	}
	return true
}

// MaxValue returns the maximum value the function attains.
func (f *StepFunc) MaxValue() int {
	m := 0
	if len(f.pts) > 0 {
		m = f.pts[0].n
	}
	for _, p := range f.pts {
		if p.n > m {
			m = p.n
		}
	}
	return m
}

// TrimBefore returns a function that equals f on [t, ∞) and extends f(t)
// backwards to 0. The RMS trims views before pushing them: values in the
// past are reconstruction artifacts, not information. If nothing is
// trimmed, f itself is returned.
func (f *StepFunc) TrimBefore(t float64) *StepFunc {
	if t <= 0 || len(f.pts) == 0 {
		return f
	}
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].t > t })
	// f.pts[i-1] covers t (i >= 1 because pts[0].t == 0 <= t).
	if i == 1 {
		return f // nothing before t to discard
	}
	tail := f.pts[i:]
	n0 := f.pts[i-1].n
	if len(tail) == 0 && n0 == 0 {
		return zeroFunc
	}
	pts := make([]point, 0, 1+len(tail))
	pts = append(pts, point{0, n0})
	pts = append(pts, tail...) // tail[0].n != n0 by normalization of f
	return &StepFunc{pts: pts}
}

// Steps returns the function as the paper's list of (duration, node-count)
// pairs starting at time 0. The final step has Duration == Inf. It is the
// inverse of FromSteps and is used for wire serialization.
func (f *StepFunc) Steps() []Step {
	if len(f.pts) == 0 {
		return []Step{{Inf, 0}}
	}
	out := make([]Step, 0, len(f.pts)+1)
	if f.pts[0].t > 0 {
		out = append(out, Step{f.pts[0].t, 0})
	}
	for i, p := range f.pts {
		dur := Inf
		if i+1 < len(f.pts) {
			dur = f.pts[i+1].t - p.t
		}
		out = append(out, Step{dur, p.n})
	}
	return out
}

// String renders the function in the paper's list-of-pairs notation,
// e.g. "[(3600, 4) (3600, 3) (inf, 0)]".
func (f *StepFunc) String() string {
	if len(f.pts) == 0 {
		return "[(inf, 0)]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range f.pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		var dur string
		if i+1 < len(f.pts) {
			dur = fmt.Sprintf("%g", f.pts[i+1].t-p.t)
		} else {
			dur = "inf"
		}
		fmt.Fprintf(&b, "(%s, %d)", dur, p.n)
	}
	b.WriteByte(']')
	return b.String()
}
