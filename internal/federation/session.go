package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// fedReq is the session's record of one federated request: where it lives,
// its shard-local ID, and enough of the original spec to replay it after a
// shard crash (RequeueOnCrash).
type fedReq struct {
	shard int
	id    request.ID      // shard-local request ID; 0 while queued
	spec  rms.RequestSpec // federated-space spec (RelatedTo is a federated ID)
	// queued marks a request waiting for its crashed shard to restart.
	queued bool
	// done marks a finished request (done() or expiry), as reported by the
	// shard's OnRequestFinished. Finished requests are never requeued.
	done bool
	// started/startedAt record the allocation's (latest) start: a
	// non-preemptible request whose full duration elapsed before a crash is
	// completed work — only the shard's end-of-round sweep died with the
	// shard — and must not be re-run.
	started   bool
	startedAt float64
	// held marks the child leg of a cross-shard gang whose two-phase
	// reservation has not committed yet (see gang.go). While held, id may be
	// 0 between a release and the backoff re-placement.
	held bool
}

// migrateRetryBudget bounds how many times a racing request()/done() call
// is retried against a re-homed cluster under clock.RealClock. Inside the
// simulator a migration is atomic within one event, so the retry path is
// unreachable there; under a real clock BenchmarkMigrationBackpressure
// measures the tail latency of racing operations during sustained
// migration churn — one retry almost always suffices, and the budget turns
// a pathological migration storm into a clean error instead of livelock.
const migrateRetryBudget = 3

// Session is one application's connection to the federation. It satisfies
// the same application-side surface as *rms.Session (AppID, Request, Done,
// Disconnect), so applications and the transport layer use the two
// interchangeably.
//
// Locking discipline: sess.mu protects the routing tables and view state
// and is never held while calling into a shard or into the application
// handler. Shard calls may synchronously flush notifications back into the
// shardHandler on the same goroutine, and application handlers may
// synchronously call back into the session — both safe because no session
// lock is held at those points. The one sanctioned nesting is shard lock →
// sess.mu, inside the RequestObserved observe hook and inside handler
// fan-in; no code path acquires them in the opposite order.
type Session struct {
	f  *Federator
	h  rms.AppHandler
	id int
	// connect holds the rms connect options (e.g. rms.WithTenant) the
	// application connected with. Immutable after Connect; admitShard
	// replays them on every admission, so a crash/restart re-admission
	// reconstructs the same tenant identity on the fresh shard.
	connect []rms.ConnectOption

	// admitMu serializes shard admission (Connect's initial fan-out vs a
	// racing RestartShard re-admission) so the same session cannot be
	// connected to one shard twice. Never held together with sess.mu beyond
	// admitShard's own short critical sections.
	admitMu sync.Mutex

	mu   sync.Mutex
	subs []*rms.Session // per-shard sub-sessions; nil while a shard is down
	// shardDown mirrors the federator's down flags under sess.mu: the crash
	// sweep (absorbCrash) sets it, admission clears it. It lets admitShard
	// detect a crash that landed while ConnectID was in flight without
	// nesting sess.mu → federator.mu (which would close a lock cycle with
	// f.mu → shard lock in CrashShard and shard lock → sess.mu in the
	// observe hook).
	shardDown []bool
	// toLocal / fromLocal translate between federated and shard-local
	// request IDs. Entries are pruned in lockstep with the shard's own
	// request GC (OnRequestsReaped): once a request is finished and has no
	// pending NEXT/COALLOC child it can never be referenced again.
	toLocal   map[request.ID]*fedReq
	fromLocal []map[request.ID]request.ID
	// queues holds, per shard, the federated IDs awaiting replay after a
	// crash, in submission order. Non-empty only while the shard is down.
	queues [][]request.ID
	// gangs holds the in-flight cross-shard reservations, keyed by the held
	// child's federated ID (see gang.go). A record exists exactly while the
	// child mapping is held.
	gangs  map[request.ID]*gangState
	killed bool

	// shardViews holds the latest views pushed by each shard; merged pushes
	// are serialized by the delivering/viewsDirty pair so a slow handler
	// never observes an older merge after a newer one. shardEpoch advances
	// on every stored-view change (push, crash zeroing, migration strip):
	// the merge cache re-merges exactly the shards whose epoch moved.
	shardViews [][2]view.View
	shardEpoch []uint64
	viewsDirty bool
	delivering bool

	// Epoch-cached merge state: the last merged maps and the epoch each
	// shard was merged at. When no epoch advanced the cached maps are
	// returned with no work at all; when any did, the union is rebuilt into
	// fresh maps — delivered maps are never mutated afterwards, so
	// applications can retain them like they always could.
	mergedOK    bool
	mergedNP    view.View
	mergedP     view.View
	mergedEpoch []uint64
}

// AppID returns the federated application ID (identical on every shard).
func (s *Session) AppID() int { return s.id }

// Request routes the request() operation to the shard owning the target
// cluster and returns its federated request ID. If that shard is down the
// outcome depends on the recovery policy: under RequeueOnCrash the request
// is queued and replayed when the shard restarts (the ID is returned
// immediately); under KillOnCrash it fails.
func (s *Session) Request(spec rms.RequestSpec) (request.ID, error) {
	shard, ok := s.f.Owner(spec.Cluster)
	if !ok {
		return 0, fmt.Errorf("rms: unknown cluster %q", spec.Cluster)
	}
	id, err := s.requestOn(shard, spec)
	// A live migration may have re-homed the cluster between the routing
	// decision and the shard call (real clock only — simulator events are
	// atomic), making the old owner reject its own cluster. Retry against
	// the current owner, bounded by the migration retry budget so a
	// migration storm degrades into an error rather than a livelock. A
	// rejection from the shard the owner table still names means the
	// migration is mid-flight (detached, new owner not committed): back off
	// briefly before re-resolving — that wait is the measured back-pressure
	// of BenchmarkMigrationBackpressure.
	for attempt := 0; err != nil && attempt < migrateRetryBudget; attempt++ {
		cur, ok := s.f.Owner(spec.Cluster)
		if !ok {
			break
		}
		if cur == shard {
			if !errors.Is(err, rms.ErrUnknownCluster) {
				break
			}
			time.Sleep(time.Duration(attempt+1) * 100 * time.Microsecond)
			continue
		}
		shard = cur
		id, err = s.requestOn(shard, spec)
	}
	return id, err
}

// requestOn submits the request to one specific shard.
func (s *Session) requestOn(shard int, spec rms.RequestSpec) (request.ID, error) {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return 0, fmt.Errorf("rms: session was terminated")
	}
	sub := s.subs[shard]
	local := spec
	crossShard := false
	if spec.RelatedHow != request.Free {
		e, ok := s.toLocal[spec.RelatedTo]
		if !ok {
			s.mu.Unlock()
			return 0, &rms.RequestError{ID: spec.RelatedTo, Related: true, Node: -1, Reason: rms.ReasonNotFound}
		}
		switch {
		case e.shard != shard:
			// The relation crosses a shard boundary: handled by the two-phase
			// reservation coordinator (gang.go) instead of a shard-local
			// relation. The parent may even be queued for replay — the
			// reservation's evaluation loop waits it out.
			crossShard = true
		case e.queued && sub != nil:
			// Transient real-clock window between a restart's re-admission
			// and its queue replay; inside the simulator it cannot occur.
			s.mu.Unlock()
			return 0, fmt.Errorf("federation: related request %d is awaiting replay on shard %d", spec.RelatedTo, shard)
		default:
			local.RelatedTo = e.id
		}
	}
	s.mu.Unlock()

	if sub == nil {
		if s.f.recovery != RequeueOnCrash {
			return 0, fmt.Errorf("federation: shard %d is down", shard)
		}
		// Queue the federated-space spec for replay on restart. The ID is
		// reserved now so the application's bookkeeping works as usual.
		fid := s.f.nextRequestID()
		s.mu.Lock()
		if s.killed {
			s.mu.Unlock()
			return 0, fmt.Errorf("rms: session was terminated")
		}
		if s.subs[shard] != nil {
			// The shard restarted (and drained its replay queue) between the
			// two critical sections — a real-clock-only window, like the
			// awaiting-replay guard above. Queueing now would strand the
			// request until the shard's next crash; fail transiently instead.
			s.mu.Unlock()
			return 0, fmt.Errorf("federation: shard %d restarted mid-request; retry", shard)
		}
		s.toLocal[fid] = &fedReq{shard: shard, spec: spec, queued: true}
		s.queues[shard] = append(s.queues[shard], fid)
		s.mu.Unlock()
		s.f.count(s.id, metrics.RequeuedRequests, 1)
		// A queued cross-shard spec needs no gang record yet: replayQueue
		// detects the live cross-shard parent and starts the reservation.
		return fid, nil
	}

	if crossShard {
		return s.requestGang(shard, sub, spec)
	}

	fid := s.f.nextRequestID()
	// observe runs under the shard's lock, before any scheduling round can
	// start the request, so OnStart always finds the mapping.
	_, err := sub.RequestObserved(local, func(lid request.ID) {
		s.mu.Lock()
		s.toLocal[fid] = &fedReq{shard: shard, id: lid, spec: spec}
		s.fromLocal[shard][lid] = fid
		s.mu.Unlock()
	})
	if err != nil {
		return 0, s.translateErr(shard, err)
	}
	return fid, nil
}

// Done routes the done() operation to the shard owning the request. done()
// on a request queued for replay simply drops it from the queue.
func (s *Session) Done(id request.ID, released []int) error {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return fmt.Errorf("rms: session was terminated")
	}
	e, ok := s.toLocal[id]
	if !ok {
		s.mu.Unlock()
		return &rms.RequestError{ID: id, Node: -1, Reason: "not found"}
	}
	if e.queued {
		// The request never made it (back) onto a shard; withdrawing it is
		// purely a federation-side affair. A voluntary withdraw is not lost
		// work, so it delivers the finish+reap pair exactly like a single
		// RMS does for a pending-request Done — only recovery drops use the
		// reap-without-finish signal.
		s.dropQueuedLocked(e.shard, id)
		s.clearGangLocked(id)            // a withdrawn gang child needs no reservation
		s.noteGangParentLocked(id, true) // a withdraw delivers a finish: NEXT is satisfied
		s.mu.Unlock()
		s.f.count(s.id, metrics.DroppedRequests, 1)
		s.notifyWithdrawn(id)
		return nil
	}
	shard := e.shard
	sub := s.subs[shard]
	if sub == nil {
		// Unreachable in the simulator: a crash either queued or purged
		// every mapping on the dead shard. Real-clock race fallback.
		s.mu.Unlock()
		return fmt.Errorf("federation: shard %d is down", shard)
	}
	lid := e.id
	s.mu.Unlock()
	err := sub.Done(lid, released)
	// A live migration may have re-homed the request mid-operation (real
	// clock only): the mapping now points at another shard-local ID. Retry
	// against the rewritten mapping, bounded by the migration retry budget.
	// An unchanged mapping with a "not found" rejection is the mid-flight
	// window (the rewrite lands with the attach, under the target's lock):
	// back off briefly and re-read the mapping.
	for attempt := 0; err != nil && attempt < migrateRetryBudget; attempt++ {
		s.mu.Lock()
		shard2, lid2, queued := e.shard, e.id, e.queued
		sub2 := s.subs[shard2]
		s.mu.Unlock()
		if queued || sub2 == nil {
			break
		}
		if shard2 == shard && lid2 == lid {
			// Only a structural not-found can be the migration window (a
			// shard-side reap race pays the same bounded wait — its mapping
			// is pruned moments later and retries are rare either way).
			var re *rms.RequestError
			if !errors.As(err, &re) || re.Reason != rms.ReasonNotFound {
				break
			}
			time.Sleep(time.Duration(attempt+1) * 100 * time.Microsecond)
			continue
		}
		shard, lid, sub = shard2, lid2, sub2
		err = sub.Done(lid, released)
	}
	if err != nil {
		return s.translateErr(shard, err)
	}
	return nil
}

// dropQueuedLocked removes a queued request from its replay queue and table.
func (s *Session) dropQueuedLocked(shard int, fid request.ID) {
	q := s.queues[shard]
	for i, qid := range q {
		if qid == fid {
			s.queues[shard] = append(q[:i], q[i+1:]...)
			break
		}
	}
	delete(s.toLocal, fid)
}

// translateErr rewrites the shard-local request ID inside a structured
// rms.RequestError into the federated ID space before the error reaches the
// application. Errors without an ID (or about IDs the federation never
// issued) pass through unchanged.
func (s *Session) translateErr(shard int, err error) error {
	var re *rms.RequestError
	if !errors.As(err, &re) {
		return err
	}
	s.mu.Lock()
	fid, ok := s.fromLocal[shard][re.ID]
	s.mu.Unlock()
	if !ok {
		return err
	}
	return re.WithID(fid)
}

// Disconnect ends the session cleanly on every running shard.
func (s *Session) Disconnect() { s.teardown("") }

// teardown is the single session-teardown path, shared by Disconnect, the
// crash sweep (killFromCrash), and a shard-originated kill: it marks the
// session killed exactly once, disconnects every live sub-session (a no-op
// on the shard that initiated a kill — its side is already down), and
// forgets the session federation-side. A non-empty reason also delivers
// OnKill to the application.
func (s *Session) teardown(reason string) {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	// Reservation timers die with the session; a racing evalGang fire sees
	// killed (or a nil gang) and bails.
	for _, g := range s.gangs {
		if g.timer != nil {
			g.timer.Stop()
		}
	}
	s.gangs = nil
	subs := append([]*rms.Session(nil), s.subs...)
	s.mu.Unlock()
	for _, sub := range subs {
		if sub != nil {
			sub.Disconnect()
		}
	}
	s.f.removeSession(s.id)
	if reason != "" {
		s.h.OnKill(reason)
	}
}

// absorbCrash updates the session's tables for a crashed shard and reports
// what happened: affected is true when live scheduler-side state was lost
// (the KillOnCrash trigger), requeued counts requests moved to the replay
// queue, purged counts finished mappings discarded with the shard, and
// ended lists requests whose allocation had already run out its full
// duration when the shard died — completed work the shard's end-of-round
// sweep never got to record — and reaped lists every purged mapping (the
// ended ones plus requests that had finished earlier but were never
// GC-reaped by the dead shard). gangsAborted counts cross-shard
// reservations whose held leg died with the shard and was not requeued
// (their drops ride in reaped). The caller delivers the corresponding
// observer notifications (and the re-merged views) after the sweep, with
// no locks held.
func (s *Session) absorbCrash(shard int, pol RecoveryPolicy) (affected bool, requeued, purged, gangsAborted int, ended, reaped []request.ID) {
	now := s.f.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return false, 0, 0, 0, nil, nil
	}
	s.subs[shard] = nil
	s.shardDown[shard] = true
	s.shardViews[shard] = [2]view.View{}
	s.shardEpoch[shard]++
	s.viewsDirty = true
	// Ascending federated-ID order: deterministic, and it guarantees a
	// relation's parent (always a smaller ID) is processed first.
	fids := make([]request.ID, 0, len(s.toLocal))
	for fid, e := range s.toLocal {
		if e.shard == shard {
			fids = append(fids, fid)
		}
	}
	sort.Slice(fids, func(i, j int) bool { return fids[i] < fids[j] })
	for _, fid := range fids {
		e := s.toLocal[fid]
		switch {
		case e.queued:
			// Already waiting for a restart; nothing more to lose.
		case e.done:
			// The finished request's state died with the shard; nothing can
			// reference it anymore. Its finish was already delivered — the
			// reap the dead shard's GC would have produced still must be.
			delete(s.toLocal, fid)
			purged++
			reaped = append(reaped, fid)
			s.noteGangParentLocked(fid, true)
		case e.started && e.spec.Type == request.NonPreempt && now >= e.startedAt+e.spec.Duration:
			// The allocation ran to its logical end before the crash; only
			// the shard's sweep (which died with it) hadn't recorded the
			// finish. Completed work is not re-run under RequeueOnCrash,
			// and its loss kills nobody under §3.1.4 (no live state died).
			delete(s.toLocal, fid)
			purged++
			ended = append(ended, fid)
			reaped = append(reaped, fid)
			s.noteGangParentLocked(fid, true)
		case e.held:
			// A tentative hold is coordinator-owned state: no allocation ever
			// ran behind it, so its loss never kills the session (§3.1.4
			// guards live state). Under RequeueOnCrash the reservation is
			// queued — relation intact, its parent lives elsewhere — and
			// replayQueue restarts it; otherwise the gang is aborted and the
			// child dropped with the reap-without-finish signal.
			if pol == RequeueOnCrash {
				e.queued = true
				e.id = 0
				s.queues[shard] = append(s.queues[shard], fid)
				requeued++
			} else {
				s.clearGangLocked(fid)
				delete(s.toLocal, fid)
				purged++
				gangsAborted++
				reaped = append(reaped, fid)
			}
		case pol == RequeueOnCrash:
			// A relation whose parent did not survive to the queue (it was
			// finished, or already gone) is replayed unconstrained: NEXT
			// after a finished parent is trivially satisfied, and the node
			// hand-over it implied died with the shard anyway.
			if e.spec.RelatedHow != request.Free {
				if pe := s.toLocal[e.spec.RelatedTo]; pe == nil || !pe.queued {
					e.spec.RelatedHow = request.Free
					e.spec.RelatedTo = 0
				}
			}
			e.queued = true
			e.id = 0
			// The interrupted run's start is history: if the shard dies
			// again before the replay re-starts, the request must read as
			// interrupted work, not as an allocation that ran out.
			e.started = false
			e.startedAt = 0
			s.queues[shard] = append(s.queues[shard], fid)
			requeued++
		default:
			affected = true
		}
	}
	s.fromLocal[shard] = make(map[request.ID]request.ID)
	return affected, requeued, purged, gangsAborted, ended, reaped
}

// notifyCrashPurged delivers the observer events for mappings a crash sweep
// purged: finishes for allocations that ran out before the crash, then one
// ascending reap batch covering every purged request — the ran-out ones and
// those that had finished earlier but were never GC-reaped by the dead
// shard (their finish was already delivered). Called with no locks held.
func (s *Session) notifyCrashPurged(ended, reaped []request.ID) {
	ro, ok := s.h.(rms.RequestObserver)
	if !ok {
		return
	}
	for _, fid := range ended {
		ro.OnRequestFinished(fid)
	}
	if len(reaped) > 0 {
		ro.OnRequestsReaped(reaped)
	}
}

// notifyWithdrawn delivers the finish + reap pair for a voluntarily
// withdrawn queued request, mirroring the single-RMS pending-withdraw
// notifications. Called with no session lock held.
func (s *Session) notifyWithdrawn(fid request.ID) {
	if ro, ok := s.h.(rms.RequestObserver); ok {
		ro.OnRequestFinished(fid)
		ro.OnRequestsReaped([]request.ID{fid})
	}
}

// killFromCrash terminates the session after its shard crashed under
// KillOnCrash: the surviving sub-sessions are disconnected and the
// application sees a single OnKill with the crash reason.
func (s *Session) killFromCrash(reason string) { s.teardown(reason) }

// admitShard connects the session to shard i under its federated ID. It is
// shared by Connect's initial fan-out and RestartShard's re-admission;
// admitMu serializes the two so a restart racing a fresh Connect cannot
// admit the same ID twice (the shard would reject the duplicate). Reports
// whether this call admitted the session: false if it was already admitted,
// killed, or the shard is (again) down.
func (s *Session) admitShard(i int) bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	s.mu.Lock()
	if s.killed || s.subs[i] != nil {
		s.mu.Unlock()
		return false
	}
	// Optimistically mark the shard up: a crash landing while ConnectID is
	// in flight re-marks it through absorbCrash, under this same lock.
	s.shardDown[i] = false
	s.mu.Unlock()
	// ConnectID outside sess.mu: it flushes notifications, which
	// synchronously re-enter the session through the shardHandler.
	sub, err := s.f.shards[i].ConnectID(&shardHandler{sess: s, shard: i}, s.id, s.connect...)
	if err != nil {
		if errors.Is(err, rms.ErrStopped) {
			return false // crashed (again) before the connect landed
		}
		// The federator owns the ID space; a collision is a bug.
		panic(fmt.Sprintf("federation: shard %d rejected app %d: %v", i, s.id, err))
	}
	s.mu.Lock()
	// Re-check under s.mu: the shard may have crashed — and its sweep
	// already run — while ConnectID was in flight, and installing the dead
	// sub would block re-admission on the next restart forever. The sweep
	// marks shardDown under s.mu, so either the crash is visible here and
	// we bail, or the sweep runs after us and clears the sub we install.
	if s.killed || s.shardDown[i] {
		s.mu.Unlock()
		sub.Disconnect() // no-op if the shard stopped: the sub died with it
		return false
	}
	s.subs[i] = sub
	s.mu.Unlock()
	return true
}

// notifyDropped reports a queued request that will never start to handlers
// implementing rms.RequestObserver, so an application is never left waiting
// on an OnStart that cannot come. A drop is a reap *without* a preceding
// finish — the allocation never ran — which is how observers distinguish
// lost work from completed work. Called with no session lock held.
func (s *Session) notifyDropped(fid request.ID) {
	if ro, ok := s.h.(rms.RequestObserver); ok {
		ro.OnRequestsReaped([]request.ID{fid})
	}
}

// replayQueue re-submits the session's queued requests to a restarted shard
// in submission order, under their original federated IDs. A request whose
// relation cannot be resolved anymore (its parent was dropped) or that the
// shard rejects is dropped, with a drop notification to observer handlers.
func (s *Session) replayQueue(shard int) (replayed, dropped int) {
	s.mu.Lock()
	fids := s.queues[shard]
	s.queues[shard] = nil
	s.mu.Unlock()
	for _, fid := range fids {
		s.mu.Lock()
		if s.killed {
			delete(s.toLocal, fid)
			s.mu.Unlock()
			dropped++
			continue
		}
		e := s.toLocal[fid]
		if e == nil || !e.queued {
			s.mu.Unlock()
			continue
		}
		local := e.spec
		gangReplay := false
		if local.RelatedHow != request.Free {
			pe := s.toLocal[local.RelatedTo]
			switch {
			case pe == nil || pe.queued:
				// The parent's replay failed or it was dropped: cascade.
				s.clearGangLocked(fid)
				delete(s.toLocal, fid)
				s.mu.Unlock()
				dropped++
				s.notifyDropped(fid)
				continue
			case pe.shard != shard:
				// A cross-shard relation with a live parent: restart (or, for
				// a spec queued at submit time, start) the two-phase
				// reservation instead of submitting a related request.
				gangReplay = true
			default:
				// The parent lives on this same shard — possibly co-located
				// by a migration since the hold was placed. An ordinary
				// related replay; any reservation state is obsolete.
				s.clearGangLocked(fid)
				e.held = false
				local.RelatedTo = pe.id
			}
		}
		sub := s.subs[shard]
		s.mu.Unlock()
		if sub == nil {
			s.mu.Lock()
			s.clearGangLocked(fid)
			delete(s.toLocal, fid)
			s.mu.Unlock()
			dropped++
			s.notifyDropped(fid)
			continue
		}
		if gangReplay {
			if s.replayGang(shard, sub, fid, e) {
				replayed++
			} else {
				dropped++
			}
			continue
		}
		_, err := sub.RequestObserved(local, func(lid request.ID) {
			s.mu.Lock()
			e.id = lid
			e.queued = false
			s.fromLocal[shard][lid] = fid
			s.mu.Unlock()
		})
		if err != nil {
			s.mu.Lock()
			s.clearGangLocked(fid)
			delete(s.toLocal, fid)
			s.mu.Unlock()
			dropped++
			s.notifyDropped(fid)
			continue
		}
		replayed++
	}
	return replayed, dropped
}

// pushMerged delivers the merged views if a topology change marked them
// dirty (crash sweeps call it once per surviving session).
func (s *Session) pushMerged() {
	s.mu.Lock()
	if s.killed || !s.viewsDirty {
		s.mu.Unlock()
		return
	}
	s.deliverViewsLocked()
}

// deliverViewsLocked drains the dirty flag, delivering merged views with no
// lock held; it unlocks s.mu before returning. If a delivery is already in
// progress the flag is left for the active deliverer's loop, so merges are
// serialized per session (possible under clock.RealClock where shards run
// concurrently, or when a handler re-enters).
func (s *Session) deliverViewsLocked() {
	if s.delivering {
		s.mu.Unlock()
		return
	}
	s.delivering = true
	for s.viewsDirty {
		s.viewsDirty = false
		mnp, mp := s.mergedLocked()
		s.mu.Unlock()
		s.h.OnViews(mnp, mp)
		s.mu.Lock()
	}
	s.delivering = false
	s.mu.Unlock()
}

// checkInvariants verifies the session's translation tables against the
// shard topology: live mappings form an exact bijection with the reverse
// tables, nothing references a down shard except queued entries, every
// mapping routes to the shard owning its target cluster (no orphaned
// mappings after a migration hand-over), and replay queues agree with the
// table's queued set.
func (s *Session) checkInvariants(down []bool, owner map[view.ClusterID]int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	queued := make([]int, len(s.queues))
	total := 0
	for fid, e := range s.toLocal {
		if own, ok := owner[e.spec.Cluster]; !ok || own != e.shard {
			return fmt.Errorf("federation: app %d request %d maps to shard %d but cluster %q is owned by shard %d",
				s.id, fid, e.shard, e.spec.Cluster, own)
		}
		if e.queued {
			if !down[e.shard] {
				return fmt.Errorf("federation: app %d request %d queued for running shard %d", s.id, fid, e.shard)
			}
			queued[e.shard]++
			continue
		}
		if down[e.shard] {
			return fmt.Errorf("federation: app %d request %d maps to down shard %d", s.id, fid, e.shard)
		}
		if e.held {
			if s.gangs[fid] == nil {
				return fmt.Errorf("federation: app %d held request %d has no reservation record (leaked hold)", s.id, fid)
			}
			if e.spec.RelatedHow == request.Free {
				return fmt.Errorf("federation: app %d held request %d carries no relation", s.id, fid)
			}
			if e.started || e.done {
				return fmt.Errorf("federation: app %d held request %d has started or finished", s.id, fid)
			}
			if e.id == 0 {
				// Between a release and the backoff re-placement: the hold
				// has no shard-local presence, only coordinator state.
				continue
			}
		}
		if got, ok := s.fromLocal[e.shard][e.id]; !ok || got != fid {
			return fmt.Errorf("federation: app %d request %d: reverse mapping on shard %d is %d", s.id, fid, e.shard, got)
		}
		total++
	}
	for fid, g := range s.gangs {
		e := s.toLocal[fid]
		if e == nil {
			return fmt.Errorf("federation: app %d reservation record for unknown request %d", s.id, fid)
		}
		if !e.held {
			return fmt.Errorf("federation: app %d reservation record for committed request %d (half-committed gang)", s.id, fid)
		}
		if g.child != fid {
			return fmt.Errorf("federation: app %d reservation record %d names child %d", s.id, fid, g.child)
		}
	}
	reverse := 0
	for shard, m := range s.fromLocal {
		for lid, fid := range m {
			e := s.toLocal[fid]
			if e == nil || e.queued || e.shard != shard || e.id != lid {
				return fmt.Errorf("federation: app %d leaked reverse mapping shard=%d local=%d fed=%d", s.id, shard, lid, fid)
			}
		}
		reverse += len(m)
	}
	if reverse != total {
		return fmt.Errorf("federation: app %d has %d forward but %d reverse mappings", s.id, total, reverse)
	}
	for shard, q := range s.queues {
		if len(q) > 0 && !down[shard] {
			return fmt.Errorf("federation: app %d has a replay queue for running shard %d", s.id, shard)
		}
		if len(q) != queued[shard] {
			return fmt.Errorf("federation: app %d queue/table mismatch on shard %d: %d queued IDs, %d queued mappings",
				s.id, shard, len(q), queued[shard])
		}
		for _, fid := range q {
			e := s.toLocal[fid]
			if e == nil || !e.queued || e.shard != shard {
				return fmt.Errorf("federation: app %d queue for shard %d holds stale request %d", s.id, shard, fid)
			}
		}
	}
	return nil
}

// shardHandler is the per-(session, shard) rms.AppHandler: it fans shard
// notifications back into the federated session. It also implements
// rms.RequestObserver so the session's ID-translation tables shrink in
// lockstep with the shard's request GC.
type shardHandler struct {
	sess  *Session
	shard int
}

// OnViews merges the shard's fresh views with the latest views of every
// other shard and pushes the federated result.
func (h *shardHandler) OnViews(np, p view.View) {
	s := h.sess
	s.mu.Lock()
	s.shardViews[h.shard] = [2]view.View{np, p}
	s.shardEpoch[h.shard]++
	s.viewsDirty = true
	s.deliverViewsLocked()
}

// mergedLocked builds the federated views from the latest per-shard views.
// Shard cluster sets are disjoint, so merging is plain map union; a crashed
// shard's entry is zeroed, so its clusters simply vanish from the merge.
// With a single shard the shard's views are forwarded as-is, keeping a
// 1-shard federation byte-identical to a single RMS.
//
// The merge is epoch-cached: each stored shard view carries an epoch, and
// when no epoch advanced since the last merge the cached maps are returned
// with no work at all (crash/migration sweeps call pushMerged on every
// session; only the affected ones pay anything). When some epoch did
// advance the union is rebuilt into fresh pre-sized maps — rebuilding
// beats patching the cached maps in place, because patching would have to
// clone them first anyway (the previous result was handed to the
// application, which may retain it). The per-shard dirty/clean split is
// reported to the federator's merge counters.
func (s *Session) mergedLocked() (np, p view.View) {
	if len(s.shardViews) == 1 {
		v := s.shardViews[0]
		if v[0] == nil && v[1] == nil {
			// The only shard is down: nothing is visible.
			return view.New(), view.New()
		}
		return v[0], v[1]
	}
	if s.mergedEpoch == nil {
		s.mergedEpoch = make([]uint64, len(s.shardViews))
	}
	dirty := 0
	for i := range s.shardViews {
		if s.mergedEpoch[i] != s.shardEpoch[i] {
			dirty++
		}
	}
	if s.mergedOK && dirty == 0 {
		s.f.noteMerge(0, len(s.shardViews))
		return s.mergedNP, s.mergedP
	}
	var mergeT0 float64
	if s.f.hMerge != nil {
		mergeT0 = s.f.clk.Now()
	}
	nNP, nP := 0, 0
	for _, sv := range s.shardViews {
		nNP += len(sv[0])
		nP += len(sv[1])
	}
	np, p = make(view.View, nNP), make(view.View, nP)
	for i, sv := range s.shardViews {
		for cid, f := range sv[0] {
			np[cid] = f
		}
		for cid, f := range sv[1] {
			p[cid] = f
		}
		s.mergedEpoch[i] = s.shardEpoch[i]
	}
	s.mergedNP, s.mergedP = np, p
	s.mergedOK = true
	s.f.noteMerge(dirty, len(s.shardViews))
	if s.f.hMerge != nil {
		// Clock-measured rebuild latency: zero inside the simulator (time
		// never advances mid-event, keeping same-seed snapshots identical),
		// real microseconds under clock.RealClock. Cache hits above are not
		// recorded — the histogram measures rebuild cost, the fed.merge
		// counters measure hit rate.
		dur := s.f.clk.Now() - mergeT0
		s.f.hMerge.Record(dur)
		s.f.obsReg.Event(obs.Event{Time: mergeT0, Type: obs.EvMerge, App: s.id, Value: dur})
	}
	return np, p
}

// OnStart translates the shard-local request ID back to its federated ID
// and records the start instant (crash recovery distinguishes allocations
// that ran out their duration from ones interrupted mid-run).
func (h *shardHandler) OnStart(id request.ID, nodeIDs []int) {
	s := h.sess
	s.mu.Lock()
	fid, ok := s.fromLocal[h.shard][id]
	if ok {
		if e := s.toLocal[fid]; e != nil {
			e.started = true
			e.startedAt = s.f.clk.Now()
		}
		s.noteGangParentLocked(fid, false)
	}
	s.mu.Unlock()
	if !ok {
		// RequestObserved registers the mapping under the shard lock before
		// any round can start the request; a miss is a bug, not a race.
		panic(fmt.Sprintf("federation: shard %d started unknown request %d for app %d", h.shard, id, s.id))
	}
	s.h.OnStart(fid, nodeIDs)
}

// OnRequestFinished marks the request finished in the session's table
// (finished requests are never requeued after a crash) and forwards the
// event under its federated ID to applications implementing
// rms.RequestObserver, matching what a single RMS would deliver.
func (h *shardHandler) OnRequestFinished(id request.ID) {
	s := h.sess
	s.mu.Lock()
	fid, ok := s.fromLocal[h.shard][id]
	if ok {
		if e := s.toLocal[fid]; e != nil {
			e.done = true
		}
		s.noteGangParentLocked(fid, true)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	if ro, obs := s.h.(rms.RequestObserver); obs {
		ro.OnRequestFinished(fid)
	}
}

// OnRequestsReaped prunes the ID-translation entries of requests the shard
// garbage-collected: they are finished with no pending NEXT/COALLOC child,
// so nothing can ever reference them again.
func (h *shardHandler) OnRequestsReaped(ids []request.ID) {
	s := h.sess
	fids := make([]request.ID, 0, len(ids))
	s.mu.Lock()
	for _, id := range ids {
		if fid, ok := s.fromLocal[h.shard][id]; ok {
			delete(s.fromLocal[h.shard], id)
			delete(s.toLocal, fid)
			// A held child can be reaped only through an application-side
			// withdraw (Done on a pending hold); retire its reservation.
			s.clearGangLocked(fid)
			fids = append(fids, fid)
		}
	}
	s.mu.Unlock()
	if len(fids) == 0 {
		return
	}
	if ro, obs := s.h.(rms.RequestObserver); obs {
		sort.Slice(fids, func(i, j int) bool { return fids[i] < fids[j] })
		ro.OnRequestsReaped(fids)
	}
}

// OnKill propagates a shard-side protocol-violation kill (§3.1.4) to the
// whole federated session: the remaining shard sub-sessions are
// disconnected and the application sees a single OnKill. Disconnecting the
// killing shard's own sub-session is a harmless no-op (it is already marked
// killed shard-side before this notification is flushed).
func (h *shardHandler) OnKill(reason string) { h.sess.teardown(reason) }

// CooperatesOnNodeFailure answers for the application behind the handler:
// the shardHandler itself always implements rms.NodeFailureHandler (it must
// forward events), so without this the shard would treat every federated app
// as cooperative and strand reduced allocations nobody acts on.
func (h *shardHandler) CooperatesOnNodeFailure() bool {
	return rms.CooperatesOnNodeFailure(h.sess.h)
}

// OnNodeFailure translates a node-failure event into the federated ID space
// and forwards it to applications implementing rms.NodeFailureHandler. A
// requeued request also clears its recorded start: it is pending again, and
// a later shard crash must read it as interrupted work to be replayed, not
// as an allocation that ran out its duration.
func (h *shardHandler) OnNodeFailure(ev rms.NodeFailure) {
	s := h.sess
	s.mu.Lock()
	fid, ok := s.fromLocal[h.shard][ev.Request]
	if ok && ev.Action == rms.NodeFaultRequeued {
		if e := s.toLocal[fid]; e != nil {
			e.started = false
			e.startedAt = 0
		}
	}
	s.mu.Unlock()
	if !ok {
		// The mapping is registered under the shard lock before any node
		// event can touch the request; a miss mirrors OnStart's contract.
		panic(fmt.Sprintf("federation: shard %d reported node failure on unknown request %d for app %d", h.shard, ev.Request, s.id))
	}
	if nh, obs := s.h.(rms.NodeFailureHandler); obs {
		fev := ev
		fev.Request = fid
		nh.OnNodeFailure(fev)
	}
}
