package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"coormv2/internal/chaos"
	"coormv2/internal/federation"
	"coormv2/internal/rms"
	"coormv2/internal/stats"
	"coormv2/internal/tenants"
	"coormv2/internal/workload"
)

// rebalanceTestConfig builds the skewed-workload scenario: 3 shards × 2
// clusters, with 70% of the trace pinned to shard 0's clusters. With
// rebalance on, a Rebalancer checks load once a simulated minute.
func rebalanceTestConfig(seed int64, rebalance bool) ChaosReplayConfig {
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 60, MaxNodes: 8, MeanInterArr: 45, MeanRuntime: 600,
		PowerOfTwoBias: 0.5,
	})
	cfg := ChaosReplayConfig{
		Jobs:             jobs,
		Shards:           3,
		ClustersPerShard: 2,
		NodesPerShard:    16,
		HotJobFraction:   0.7,
		PSATaskDur:       120,
		Recovery:         federation.RequeueOnCrash,
	}
	if rebalance {
		cfg.Rebalance = &federation.RebalancerConfig{Interval: 60}
	}
	return cfg
}

// imbalance returns max/mean of the per-shard churn — 1.0 is a perfectly
// balanced federation.
func imbalance(churn []int64) float64 {
	var max, sum int64
	for _, c := range churn {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(churn)) / float64(sum)
}

// TestRebalanceReplayDeterministic pins the migration machinery into the
// determinism contract: same seed ⇒ byte-identical results including the
// migration trace and the event-stream fingerprint.
func TestRebalanceReplayDeterministic(t *testing.T) {
	a, err := RunChaosReplay(rebalanceTestConfig(11, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaosReplay(rebalanceTestConfig(11, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\nrun1: %+v\nrun2: %+v", a, b)
	}
	if a.Migrations == 0 {
		t.Fatal("skewed scenario migrated nothing; the determinism check is vacuous")
	}
	if len(a.MigrationTrace) != a.Migrations {
		t.Fatalf("trace has %d lines for %d migrations", len(a.MigrationTrace), a.Migrations)
	}
}

// TestRebalanceDissolvesSkew runs the skewed trace with rebalancing off and
// on: both must complete every job, and rebalancing must leave the shard
// loads measurably flatter (cluster churn counters migrate with their
// cluster, so end-state per-shard churn reflects final ownership).
func TestRebalanceDissolvesSkew(t *testing.T) {
	off, err := RunChaosReplay(rebalanceTestConfig(11, false))
	if err != nil {
		t.Fatal(err)
	}
	on, err := RunChaosReplay(rebalanceTestConfig(11, true))
	if err != nil {
		t.Fatal(err)
	}
	if off.Completed != 60 || on.Completed != 60 {
		t.Fatalf("completed off=%d on=%d, want 60/60", off.Completed, on.Completed)
	}
	if off.Migrations != 0 {
		t.Fatalf("rebalance-off run migrated %d clusters", off.Migrations)
	}
	if on.Migrations == 0 {
		t.Fatal("rebalance-on run migrated nothing under a 70% hot-shard skew")
	}
	offImb, onImb := imbalance(off.ShardChurn), imbalance(on.ShardChurn)
	if onImb >= offImb {
		t.Fatalf("rebalancing did not flatten load: imbalance off=%.3f on=%.3f (churn off=%v on=%v)",
			offImb, onImb, off.ShardChurn, on.ShardChurn)
	}
}

// TestChaosRebalanceMatrix is the chaos×migration matrix: seeded shard
// crashes and live cluster migrations interleave on the same deterministic
// event stream, under both recovery policies. Every run checks the
// federation invariants after every fault *and* every migration (a crash
// mid-topology-change must still leave each cluster placed exactly once),
// and same-seed runs must be byte-identical.
func TestChaosRebalanceMatrix(t *testing.T) {
	migrations := 0
	for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pol, seed), func(t *testing.T) {
				mk := func() ChaosReplayConfig {
					cfg := rebalanceTestConfig(seed, true)
					cfg.Recovery = pol
					cfg.Chaos = chaos.Config{
						Seed:             seed,
						MTTF:             900,
						MeanRestartDelay: 90,
						Horizon:          2500,
					}
					return cfg
				}
				res, err := RunChaosReplay(mk())
				if err != nil {
					t.Fatal(err)
				}
				if res.Crashes == 0 {
					t.Fatal("plan produced no crashes; matrix entry is vacuous")
				}
				if total := res.Completed + res.Killed + res.Rejected; total != 60 {
					t.Fatalf("jobs unaccounted for: %d completed + %d killed + %d rejected != 60",
						res.Completed, res.Killed, res.Rejected)
				}
				again, err := RunChaosReplay(mk())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("same seed diverged under chaos×migration:\nrun1: %+v\nrun2: %+v", res, again)
				}
				migrations += res.Migrations
			})
		}
	}
	if migrations == 0 {
		t.Fatal("no matrix entry migrated a cluster; the chaos×migration interleaving is untested")
	}
}

// TestChaosRebalanceMatrixDRF re-runs the chaos×migration matrix with the
// DRF queue hierarchy active: every shard orders applications by dominant
// share over a shared two-queue tree (prod guaranteed half of every
// cluster, batch best-effort), a third of the rigid trace is tagged prod
// and the scavenging PSAs ride untagged in the default queue — the natural
// quota-preemption victims. Crashes, restarts and live migrations
// interleave with the policy running; the federation invariant checker
// (which now also pins tenant-label agreement across shards) runs after
// every fault and migration, per-queue preemption attribution must resolve
// to known queues, and same-seed runs must stay byte-identical — the
// policy's ordering, admission and victim selection are all deterministic.
func TestChaosRebalanceMatrixDRF(t *testing.T) {
	tree := tenants.NewTree()
	guarantee := tenants.Resources{}
	for i := 0; i < 6; i++ { // 3 shards × 2 clusters in rebalanceTestConfig
		guarantee[federatedCluster(i)] = 8
	}
	tree.MustAdd("prod", guarantee, nil)
	tree.MustAdd("batch", nil, nil)

	preempts := int64(0)
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mk := func() ChaosReplayConfig {
				cfg := rebalanceTestConfig(seed, true)
				cfg.Recovery = federation.RequeueOnCrash
				cfg.Chaos = chaos.Config{
					Seed:             seed,
					MTTF:             900,
					MeanRestartDelay: 90,
					Horizon:          2500,
				}
				cfg.Tenants = tree
				cfg.TenantOf = func(job int) string {
					if job%3 == 0 {
						return "prod"
					}
					return "batch"
				}
				return cfg
			}
			res, err := RunChaosReplay(mk())
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashes == 0 {
				t.Fatal("plan produced no crashes; matrix entry is vacuous")
			}
			if total := res.Completed + res.Killed + res.Rejected; total != 60 {
				t.Fatalf("jobs unaccounted for under DRF: %d completed + %d killed + %d rejected != 60",
					res.Completed, res.Killed, res.Rejected)
			}
			// Per-queue check: every preemption is attributed to a queue the
			// tree actually resolves (untagged PSAs file under "default").
			for q, n := range res.TenantPreempts {
				if tree.Resolve(q) == nil {
					t.Errorf("preemption tally names unknown queue %q", q)
				}
				if n < 0 {
					t.Errorf("negative preemption count %d for queue %q", n, q)
				}
				preempts += n
			}
			again, err := RunChaosReplay(mk())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, again) {
				t.Fatalf("same seed diverged under chaos×migration with DRF:\nrun1: %+v\nrun2: %+v", res, again)
			}
		})
	}
	if preempts == 0 {
		t.Fatal("no matrix entry preempted for quota; the DRF×chaos interleaving is untested")
	}
}

// TestIncrementalMatchesFullRecomputeChaosMatrix is the system-level half
// of the incremental-scheduling differential: the same seeded
// chaos×migration×node-fault replay — crashes, restarts, replay queues,
// live cluster migrations, machine failures/recoveries, per-fault invariant
// checks — runs with incremental recomputation on and off, and every result
// field must match byte for byte, including the fault trace, migration
// trace and the event-stream fingerprint. Cache invalidation across
// crash/restart/migration/capacity-change is the risky part of the
// incremental scheduler; this pins it end to end. The node-recovery policy
// cycles across the matrix so all three (kill/requeue/cooperative) hit the
// differential.
func TestIncrementalMatchesFullRecomputeChaosMatrix(t *testing.T) {
	nodePols := []rms.NodeRecoveryPolicy{
		rms.KillOnNodeFailure, rms.RequeueOnNodeFailure, rms.CooperativeOnNodeFailure,
	}
	entry := 0
	nodeFaults := 0
	for _, seed := range []int64{7, 23} {
		for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
			cfg := rebalanceTestConfig(seed, true)
			cfg.Recovery = pol
			cfg.NodeRecovery = nodePols[entry%len(nodePols)]
			entry++
			cfg.Chaos = chaos.Config{
				Seed: seed, MTTF: 900, MeanRestartDelay: 120, Horizon: 3000,
				NodeMTTF: 600, MeanNodeRecovery: 200,
			}

			inc, err := RunChaosReplay(cfg)
			if err != nil {
				t.Fatalf("seed %d %v incremental: %v", seed, pol, err)
			}
			cfg.FullRecompute = true
			full, err := RunChaosReplay(cfg)
			if err != nil {
				t.Fatalf("seed %d %v full: %v", seed, pol, err)
			}
			if !reflect.DeepEqual(inc, full) {
				t.Errorf("seed %d %v: incremental run diverged from full recomputation\nincremental: %+v\nfull: %+v",
					seed, pol, inc, full)
			}
			nodeFaults += inc.NodeFails
		}
	}
	if nodeFaults == 0 {
		t.Fatal("no matrix entry injected node faults; the capacity-change differential is untested")
	}
}
