package experiments

import (
	"fmt"
	"math"

	"coormv2/internal/apps"
	"coormv2/internal/chaos"
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/federation"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/tenants"
	"coormv2/internal/view"
	"coormv2/internal/workload"
)

// ChaosReplayConfig parametrizes the chaos scenario: the federated rigid
// trace + scavenging PSAs of RunFederatedReplay, with a seeded shard
// crash/restart schedule injected on top and a recovery policy deciding the
// fate of the affected sessions. With ClustersPerShard > 1 it doubles as the
// rebalancing scenario: HotJobFraction skews the trace onto shard 0's
// clusters, and Rebalance arms a live cluster-migration loop on top of (or
// instead of) the fault plan.
type ChaosReplayConfig struct {
	// Jobs is the rigid trace, assigned to clusters round-robin (see
	// HotJobFraction for the skewed variant).
	Jobs []workload.Job
	// Shards is the scheduler shard count.
	Shards int
	// NodesPerShard sizes each cluster. (Historically one cluster per shard,
	// hence the name; with ClustersPerShard > 1 a shard's capacity is
	// ClustersPerShard × NodesPerShard.)
	NodesPerShard int
	// ClustersPerShard is the number of clusters initially partitioned onto
	// each shard; 0 or 1 selects the classic one-cluster-per-shard layout.
	ClustersPerShard int
	// HotJobFraction, in (0,1], pins that fraction of the trace onto the
	// clusters initially owned by shard 0 — the load skew the rebalancer
	// exists to dissolve. 0 spreads the trace over all clusters evenly.
	HotJobFraction float64
	// Rebalance, when non-nil, runs a federation.Rebalancer with this
	// configuration for the whole replay. The federation invariant checker
	// runs after every migration (on top of the per-fault checks) and any
	// violation fails the run.
	Rebalance *federation.RebalancerConfig
	// PSATaskDur, when positive, adds one scavenging PSA per cluster.
	PSATaskDur float64
	// GangFraction, in [0,1], gives that fraction of the rigid jobs a gang
	// companion: a second request related (alternating NEXT/COALLOC by job
	// index) to the job's own request, targeting the next cluster in index
	// order. Under the round-robin partition that cluster starts on the
	// next shard, so with Shards > 1 the companions exercise the cross-shard
	// two-phase reservation path; with Shards == 1 they collapse to ordinary
	// same-shard relations — the 1-shard differential baseline.
	GangFraction float64
	// Recovery selects what happens to sessions whose shard crashes.
	Recovery federation.RecoveryPolicy
	// NodeRecovery selects what happens to started requests that lose
	// machines to node-level faults (armed when Chaos.NodeMTTF > 0).
	NodeRecovery rms.NodeRecoveryPolicy
	// Chaos seeds and shapes the fault plan.
	Chaos chaos.Config
	// MaxSimTime aborts runaway replays (default 10^9 s).
	MaxSimTime float64
	// Obs, when non-nil, is threaded through the federation, every shard
	// and the fault injector, collecting latency histograms, counters and
	// the structured event ring for the run; ChaosReplayResult.Snapshot is
	// then its end-of-run snapshot. All durations are measured on the
	// simulated clock, so same-seed snapshots are byte-identical.
	Obs *obs.Registry
	// FullRecompute disables incremental scheduling on every shard. The
	// incremental≡full differential test runs the same seeded
	// chaos×migration replay in both modes and requires byte-identical
	// results (cache invalidation across crash, restart and migration is
	// exactly what it pins down).
	FullRecompute bool
	// Tenants, when non-nil, switches every shard from connection-order
	// FIFO to the DRF queue-hierarchy policy over this (sealed) tree — one
	// policy instance per shard, shared tree, so a queue's per-cluster
	// guarantees follow its clusters through migration — and tags each
	// rigid job's session with TenantOf(job index). Scavenging PSAs stay
	// untagged and land in the default queue, which makes them the natural
	// quota-preemption victims when a guaranteed queue is starved.
	Tenants *tenants.Tree
	// TenantOf assigns rigid job i its tenant queue label. Only consulted
	// when Tenants is non-nil; nil files every job in the default queue.
	TenantOf func(job int) string
}

// ChaosReplayResult aggregates one chaos replay. Every field is a pure
// function of the configuration: the determinism test pins two same-seed
// runs to identical results, including the fault trace and the event-stream
// fingerprint.
type ChaosReplayResult struct {
	Shards int
	Nodes  int
	Policy federation.RecoveryPolicy

	// Completed/Killed/Rejected partition the rigid jobs: finished normally,
	// killed with their crashed shard (KillOnCrash), or refused at
	// submission because the target shard was down (KillOnCrash).
	Completed int
	Killed    int
	Rejected  int

	Crashes  int
	Restarts int

	// Node-fault accounting (zero when Chaos.NodeMTTF == 0). NodeFails and
	// NodeRecovers count unique injected machine events; NodeKilled/
	// NodeRequeued/NodeReduced count affected requests by the action taken
	// (re-applications after a shard restart included). LostWork sums the
	// rigid jobs' node·seconds of lost computation (killed runs, repeated
	// requeued runs); Resubmits counts cooperative checkpoint-resubmissions.
	NodePolicy   rms.NodeRecoveryPolicy
	NodeFails    int
	NodeRecovers int
	NodeKilled   int
	NodeRequeued int
	NodeReduced  int
	LostWork     float64
	Resubmits    int

	// Migrations/MigratedRequests/MigrationTrace report the rebalancer's
	// work (zero/empty when ChaosReplayConfig.Rebalance is nil).
	Migrations       int
	MigratedRequests int
	MigrationTrace   []string
	// ShardChurn is each shard's cumulative accepted-request churn at the
	// end of the run, summed over the clusters it then owns (churn counters
	// migrate with their cluster). The max/mean ratio across shards is the
	// residual load imbalance.
	ShardChurn []int64

	// Fault-recovery counters over all applications (PSAs included).
	KilledSessions   int
	RequeuedRequests int
	ReplayedRequests int
	DroppedRequests  int

	// Cross-shard reservation accounting (zero when GangFraction == 0 or
	// Shards == 1): committed, aborted-for-good, and release→re-place
	// retried gangs.
	GangsCommitted int
	GangsAborted   int
	GangsRetried   int

	MeanWait float64 // completed rigid jobs only
	MaxWait  float64
	Makespan float64

	TotalArea    float64
	TotalWaste   float64
	UsedFraction float64

	Events int64
	// EventHash is an FNV-1a fingerprint of the full simulator event stream
	// (time bits + event name, in firing order): two runs are byte-identical
	// iff their hashes match.
	EventHash uint64
	// Trace is the injector's fault trace: one line per executed
	// crash/restart, in execution order.
	Trace []string

	// TenantPreempts is the end-of-run per-tenant quota-preemption tally
	// summed over running shards (nil unless ChaosReplayConfig.Tenants was
	// set). Like every other field it is a pure function of the seed.
	TenantPreempts map[string]int64

	// Snapshot is the end-of-run observability snapshot (nil unless
	// ChaosReplayConfig.Obs was set).
	Snapshot *obs.Snapshot
}

// chaosRigid wraps a rigid job so that it settles exactly once — completed,
// killed, or rejected — no matter how many end timers or notifications the
// crash/replay machinery produces.
type chaosRigid struct {
	*apps.Rigid
	settled bool
	settle  func(outcome string)
}

func (w *chaosRigid) settleOnce(outcome string) {
	if w.settled {
		return
	}
	w.settled = true
	w.settle(outcome)
}

func (w *chaosRigid) OnKill(reason string) {
	w.Rigid.OnKill(reason)
	w.settleOnce("killed")
}

// OnRequestFinished settles the job as completed on the server-authoritative
// finish event (forwarded through the federation under the federated ID).
// Unlike the application's own end timer, it is delivered exactly when the
// allocation actually finished — including after a crash-requeued re-run,
// whose first-run timer would otherwise settle the job while the re-run is
// still queued or executing. Only the job's *current* request counts: a
// cooperative node-failure recovery finishes the superseded request while
// the resubmitted remainder is still pending, and that finish is a
// checkpoint hand-over, not a completion.
func (w *chaosRigid) OnRequestFinished(id request.ID) {
	if id != w.RequestID() {
		return
	}
	w.settleOnce("completed")
}

// OnRequestsReaped settles a job whose current request was dropped: a reap
// without a preceding finish means the work never completed (killed by a
// node failure, replay rejected, or the queue entry withdrawn), so the job
// counts as killed. Reaps of superseded requests (a cooperative recovery's
// released predecessor) and reaps after a normal finish are no-ops.
func (w *chaosRigid) OnRequestsReaped(ids []request.ID) {
	for _, id := range ids {
		if id == w.RequestID() {
			w.settleOnce("killed")
			return
		}
	}
}

// RunChaosReplay replays a rigid-job stream through a federated RMS while a
// deterministic, seeded fault plan crashes and restarts shards. The
// federation invariant checker runs after every fault and once after the
// run; any violation is returned as an error.
func RunChaosReplay(cfg ChaosReplayConfig) (*ChaosReplayResult, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("experiments: empty job stream")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.ClustersPerShard < 1 {
		cfg.ClustersPerShard = 1
	}
	if cfg.NodesPerShard <= 0 {
		return nil, fmt.Errorf("experiments: need a positive per-shard node count")
	}
	if cfg.HotJobFraction < 0 || cfg.HotJobFraction > 1 {
		return nil, fmt.Errorf("experiments: HotJobFraction %g outside [0,1]", cfg.HotJobFraction)
	}
	if cfg.GangFraction < 0 || cfg.GangFraction > 1 {
		return nil, fmt.Errorf("experiments: GangFraction %g outside [0,1]", cfg.GangFraction)
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 1e9
	}

	e := sim.NewEngine()
	// Fingerprint the full event stream: time bits plus event name per
	// fired event, FNV-1a. Hand-rolled rather than hash/fnv: Write would
	// need a []byte(name) conversion — one allocation per fired event, on a
	// stream of ~10^6 events per run — where this loop allocates nothing.
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	hash := uint64(fnvOffset)
	e.SetObserver(func(at float64, name string) {
		bits := math.Float64bits(at)
		for i := 0; i < 8; i++ {
			hash ^= uint64(byte(bits >> (8 * i)))
			hash *= fnvPrime
		}
		for i := 0; i < len(name); i++ {
			hash ^= uint64(name[i])
			hash *= fnvPrime
		}
	})

	clk := clock.SimClock{E: e}
	// Cluster names sort in index order, so federation.Partition assigns
	// cluster j to shard j % Shards: shard 0's initial clusters are exactly
	// the indices ≡ 0 (mod Shards) — the "hot" set of the skewed trace.
	totalClusters := cfg.Shards * cfg.ClustersPerShard
	clusters := make(map[view.ClusterID]int, totalClusters)
	for i := 0; i < totalClusters; i++ {
		clusters[federatedCluster(i)] = cfg.NodesPerShard
	}
	clientRec := metrics.NewRecorder()
	fedRec := metrics.NewRecorder()
	recs := []*metrics.Recorder{clientRec, fedRec}
	var scheduling func(int) core.SchedulingPolicy
	if cfg.Tenants != nil {
		scheduling = func(int) core.SchedulingPolicy { return tenants.NewDRF(cfg.Tenants) }
	}
	fed := federation.New(federation.Config{
		Clusters:        clusters,
		Shards:          cfg.Shards,
		ReschedInterval: 1,
		Clock:           clk,
		Recovery:        cfg.Recovery,
		NodeRecovery:    cfg.NodeRecovery,
		FullRecompute:   cfg.FullRecompute,
		Scheduling:      scheduling,
		Metrics: func(int) *metrics.Recorder {
			r := metrics.NewRecorder()
			recs = append(recs, r)
			return r
		},
		FederationMetrics: fedRec,
		Obs:               cfg.Obs,
	})
	if fed.NumShards() != cfg.Shards {
		return nil, fmt.Errorf("experiments: federation clamped to %d shards", fed.NumShards())
	}
	agg := metrics.NewAggregate(recs...)

	if cfg.Obs != nil {
		// Recorder totals (allocation area, waste, fault counters, …) summed
		// over every application across all recorders — the shard-local
		// recorders created above are appended to recs as shards come up, and
		// the closure reads the live slice at snapshot time.
		cfg.Obs.RegisterCounters("metrics", func() map[string]int64 {
			tot := make(map[string]int64)
			for _, r := range recs {
				for k, v := range r.Totals() {
					tot[k] += v
				}
			}
			return tot
		})
	}

	inj := chaos.NewInjector(e, fed, chaos.Plan(cfg.Chaos, cfg.Shards))
	inj.CheckAfterFault = true
	if cfg.Obs != nil {
		inj.SetObs(cfg.Obs)
	}
	inj.Arm()
	inj.ArmNodes(chaos.PlanNodes(cfg.Chaos, clusters))

	// Rebalancing runs as deterministic "rebalance.check" timer events on the
	// shared clock, interleaving with the fault plan; the invariant checker
	// runs after every migration exactly as it does after every fault.
	var rb *federation.Rebalancer
	var migErr error
	if cfg.Rebalance != nil {
		rcfg := *cfg.Rebalance
		userHook := rcfg.OnMigration
		rcfg.OnMigration = func(rep federation.MigrationReport) {
			if userHook != nil {
				userHook(rep)
			}
			if migErr == nil {
				if err := fed.CheckInvariants(); err != nil {
					migErr = fmt.Errorf("after %q: %w", rep.String(), err)
				}
			}
		}
		rb = federation.NewRebalancer(fed, rcfg)
		rb.Start()
		defer rb.Stop()
	}

	if cfg.PSATaskDur > 0 {
		for i := 0; i < totalClusters; i++ {
			p := apps.NewPSA(clk, apps.PSAConfig{
				Cluster: federatedCluster(i), TaskDuration: cfg.PSATaskDur, Metrics: clientRec,
			})
			sess := fed.Connect(p)
			p.SetMetricsID(sess.AppID())
			p.Attach(sess)
		}
	}

	res := &ChaosReplayResult{
		Shards:     cfg.Shards,
		Nodes:      totalClusters * cfg.NodesPerShard,
		Policy:     cfg.Recovery,
		NodePolicy: cfg.NodeRecovery,
	}
	remaining := len(cfg.Jobs)
	var waitSum float64
	settleJob := func(w *chaosRigid, submit float64) func(string) {
		return func(outcome string) {
			switch outcome {
			case "completed":
				res.Completed++
				wait := w.StartTime - submit
				if wait < 0 {
					wait = 0
				}
				waitSum += wait
				if wait > res.MaxWait {
					res.MaxWait = wait
				}
			case "killed":
				res.Killed++
			case "rejected":
				res.Rejected++
			}
			res.LostWork += w.LostWork
			res.Resubmits += w.Resubmits
			remaining--
			if remaining == 0 {
				e.Stop()
			}
		}
	}

	for i, j := range cfg.Jobs {
		i, j := i, j
		// Deterministic skew: the configured fraction of the trace cycles
		// over shard 0's initial clusters (indices ≡ 0 mod Shards), the rest
		// over the whole cluster set.
		var cluster int
		if cfg.HotJobFraction > 0 && float64(i%100) < cfg.HotJobFraction*100 {
			cluster = (i % cfg.ClustersPerShard) * cfg.Shards
		} else {
			cluster = i % totalClusters
		}
		n := j.Nodes
		if n > cfg.NodesPerShard {
			n = cfg.NodesPerShard
		}
		e.At(j.Submit, "chaos.submit", func() {
			r := apps.NewRigid(clk, federatedCluster(cluster), n, j.Runtime)
			w := &chaosRigid{Rigid: r}
			w.settle = settleJob(w, j.Submit)
			var copts []rms.ConnectOption
			if cfg.Tenants != nil && cfg.TenantOf != nil {
				copts = append(copts, rms.WithTenant(cfg.TenantOf(i)))
			}
			// Completion settles on the forwarded OnRequestFinished event,
			// not the app's own end timer — the server-side finish is the
			// only signal that survives crash/requeue re-runs correctly.
			sess := fed.Connect(w, copts...)
			r.Attach(sess)
			if err := r.Submit(); err != nil {
				// KillOnCrash: the target shard is down; the submission is
				// refused rather than queued.
				sess.Disconnect()
				w.settleOnce("rejected")
				return
			}
			if cfg.GangFraction > 0 && totalClusters > 1 && float64(i%100) < cfg.GangFraction*100 {
				// Gang companion: a related request on the next cluster —
				// under the round-robin partition, the next shard. The rigid
				// job filters foreign IDs, so the companion rides the same
				// session; it self-finishes when its ¬P duration runs out.
				// A refused companion (its shard down under KillOnCrash)
				// leaves the job itself intact.
				how := request.Next
				if i%2 == 1 {
					how = request.Coalloc
				}
				_, _ = sess.Request(rms.RequestSpec{
					Cluster:    federatedCluster((cluster + 1) % totalClusters),
					N:          n,
					Duration:   j.Runtime,
					Type:       request.NonPreempt,
					RelatedHow: how,
					RelatedTo:  r.RequestID(),
				})
			}
		})
	}

	for remaining > 0 {
		before := e.Processed()
		e.Run(e.Now() + 3600)
		if remaining == 0 {
			break
		}
		if e.Now() > cfg.MaxSimTime {
			return nil, fmt.Errorf("experiments: chaos replay exceeded %g s (remaining=%d)", cfg.MaxSimTime, remaining)
		}
		// An event-free window is just an idle gap while events are still
		// queued (sparse traces can have inter-arrival gaps over an hour); a
		// deadlock is jobs remaining with nothing queued at all. Run drains
		// cancelled events even past the horizon, so Pending()==0 is exact.
		if e.Processed() == before && e.Pending() == 0 {
			return nil, fmt.Errorf("experiments: chaos replay stalled at t=%g (remaining=%d)", e.Now(), remaining)
		}
	}

	if err := inj.InvariantErr(); err != nil {
		return nil, fmt.Errorf("experiments: chaos invariant violated %w", err)
	}
	if migErr != nil {
		return nil, fmt.Errorf("experiments: migration invariant violated %w", migErr)
	}
	if err := fed.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("experiments: post-run invariant violated: %w", err)
	}

	res.Crashes = inj.Crashes()
	res.Restarts = inj.Restarts()
	res.NodeFails = inj.NodeFails()
	res.NodeRecovers = inj.NodeRecovers()
	res.Trace = inj.Trace()
	if rb != nil {
		res.Migrations = rb.Migrations()
		res.MigratedRequests = rb.MovedRequests()
		res.MigrationTrace = rb.Trace()
	}
	res.ShardChurn = make([]int64, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		for _, l := range fed.Shard(i).ClusterLoads() {
			res.ShardChurn[i] += l.Churn
		}
	}
	res.KilledSessions = agg.TotalCount(metrics.KilledSessions)
	res.RequeuedRequests = agg.TotalCount(metrics.RequeuedRequests)
	res.ReplayedRequests = agg.TotalCount(metrics.ReplayedRequests)
	res.DroppedRequests = agg.TotalCount(metrics.DroppedRequests)
	res.NodeKilled = agg.TotalCount(metrics.NodeKilledRequests)
	res.NodeRequeued = agg.TotalCount(metrics.NodeRequeuedRequests)
	res.NodeReduced = agg.TotalCount(metrics.NodeReducedRequests)
	res.GangsCommitted = agg.TotalCount(metrics.GangCommitted)
	res.GangsAborted = agg.TotalCount(metrics.GangAborted)
	res.GangsRetried = agg.TotalCount(metrics.GangRetried)
	if cfg.Tenants != nil {
		res.TenantPreempts = fed.TenantPreempts()
	}
	res.Makespan = e.Now()
	res.Events = e.Processed()
	res.EventHash = hash
	if res.Completed > 0 {
		res.MeanWait = waitSum / float64(res.Completed)
	}
	res.TotalArea = agg.TotalArea(res.Makespan)
	res.TotalWaste = agg.TotalWaste()
	res.UsedFraction = agg.UsedFraction(res.Nodes, res.Makespan)
	if cfg.Obs != nil {
		snap := cfg.Obs.Snapshot(res.Makespan)
		res.Snapshot = &snap
	}
	return res, nil
}
