// Package amr implements the paper's model of a non-predictably evolving
// application (§2), derived from Adaptive Mesh Refinement codes:
//
//   - the "acceleration–deceleration" working-set evolution model (§2.1),
//   - the speed-up model t(n,S) = A·S/n + B·n + C·S + D (§2.2), with the
//     parameter values fitted against Uintah measurements (Luitjens &
//     Berzins, IPDPS 2010),
//   - the analysis of §2.3: target-efficiency allocations, the consumed
//     resource area A(e_t), and the equivalent static allocation n_eq.
//
// Data sizes are in MiB, times in seconds, throughout.
package amr

import (
	"fmt"
	"math"
	"math/rand"
)

// SpeedupParams are the coefficients of the step-duration model
// t(n,S) = A·S/n + B·n + C·S + D (§2.2):
// A is the perfectly parallelisable work per MiB, B the per-node
// parallelization overhead, C the per-MiB per-node cost limiting weak
// scaling, and D a constant term.
type SpeedupParams struct {
	A float64 // s·node/MiB
	B float64 // s/node
	C float64 // s/MiB
	D float64 // s
}

// DefaultParams are the values fitted in the paper (§2.2):
// A = 7.26e−3 s·node/MiB, B = 1.23e−4 s/node, C = 1.13e−6 s/MiB,
// D = 1.38 s.
var DefaultParams = SpeedupParams{A: 7.26e-3, B: 1.23e-4, C: 1.13e-6, D: 1.38}

// DefaultSmax is the paper's maximum data size, 3.16 TiB in MiB.
const DefaultSmax = 3.16 * 1024 * 1024 // MiB

// ProfileSteps is the number of computation steps in the evolution model
// (§2.1: "the application is composed of 1000 steps").
const ProfileSteps = 1000

// StepTime returns the duration of one step on n nodes with data size s
// (MiB). n must be >= 1.
func (p SpeedupParams) StepTime(n int, s float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("amr: StepTime with n=%d", n))
	}
	return p.A*s/float64(n) + p.B*float64(n) + p.C*s + p.D
}

// SeqTime returns the sequential duration t(1, s) of one step.
func (p SpeedupParams) SeqTime(s float64) float64 { return p.StepTime(1, s) }

// Efficiency returns e(n,s) = t(1,s) / (n · t(n,s)), the parallel
// efficiency of a step.
func (p SpeedupParams) Efficiency(n int, s float64) float64 {
	return p.SeqTime(s) / (float64(n) * p.StepTime(n, s))
}

// NodesForEfficiency returns the largest node count whose efficiency is at
// least et for data size s. Since n·t(n,s) is strictly increasing in n, the
// efficiency is strictly decreasing and the answer is well-defined; it is
// at least 1 (a single node always has efficiency 1).
func (p SpeedupParams) NodesForEfficiency(s, et float64) int {
	if et <= 0 {
		panic("amr: target efficiency must be positive")
	}
	if p.Efficiency(1, s) < et {
		return 1
	}
	// Exponential search for an upper bound, then binary search.
	hi := 2
	for p.Efficiency(hi, s) >= et {
		hi *= 2
		if hi > 1<<24 {
			break
		}
	}
	lo := hi / 2
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.Efficiency(mid, s) >= et {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Profile is a working-set evolution: the data size (MiB) during each step.
type Profile []float64

// GenerateProfile implements the acceleration–deceleration model of §2.1:
// the mesh size s_i evolves with a velocity v_i; phases of uniformly random
// length in [1, 200] steps alternate between acceleration (v += 0.01 per
// step) and deceleration (v *= 0.95 per step); Gaussian noise with σ = 2
// (on the paper's 0–1000 normalized scale) is added; finally the series is
// normalized so its maximum equals smax.
func GenerateProfile(rng *rand.Rand, steps int, smax float64) Profile {
	if steps <= 0 {
		panic("amr: steps must be positive")
	}
	raw := make([]float64, steps)
	v, cur := 0.0, 0.0
	phase := 0
	phaseLeft := 1 + rng.Intn(200)
	for i := range raw {
		if phaseLeft == 0 {
			phase++
			phaseLeft = 1 + rng.Intn(200)
		}
		if phase%2 == 0 {
			v += 0.01
		} else {
			v *= 0.95
		}
		cur += v
		raw[i] = cur
		phaseLeft--
	}
	// Normalize to the paper's 0–1000 scale, add the σ=2 noise there, then
	// rescale to smax.
	max := 0.0
	for _, x := range raw {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		max = 1
	}
	out := make(Profile, steps)
	peak := 0.0
	for i, x := range raw {
		s := x/max*1000 + rng.NormFloat64()*2
		if s < 0 {
			s = 0
		}
		out[i] = s
		if s > peak {
			peak = s
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i := range out {
		out[i] = out[i] / peak * smax
	}
	return out
}

// Max returns the peak data size of the profile.
func (pr Profile) Max() float64 {
	m := 0.0
	for _, s := range pr {
		if s > m {
			m = s
		}
	}
	return m
}

// Scale returns a copy of the profile scaled by factor (used by Fig. 4's
// relative data sizes).
func (pr Profile) Scale(factor float64) Profile {
	out := make(Profile, len(pr))
	for i, s := range pr {
		out[i] = s * factor
	}
	return out
}

// DynamicAllocation returns, per step, the node count that keeps the
// application at target efficiency et (§2.3): "one does not need any a
// priori knowledge of the size of the data, as n_i only depends on the
// current S_i".
func (p SpeedupParams) DynamicAllocation(pr Profile, et float64) []int {
	out := make([]int, len(pr))
	for i, s := range pr {
		out[i] = p.NodesForEfficiency(s, et)
	}
	return out
}

// DynamicArea returns A(e_t): the consumed resource area (node·seconds) of
// the dynamic allocation at target efficiency et.
func (p SpeedupParams) DynamicArea(pr Profile, et float64) float64 {
	area := 0.0
	for i, n := range p.DynamicAllocation(pr, et) {
		area += float64(n) * p.StepTime(n, pr[i])
	}
	return area
}

// DynamicEndTime returns the makespan of the dynamic allocation.
func (p SpeedupParams) DynamicEndTime(pr Profile, et float64) float64 {
	total := 0.0
	for i, n := range p.DynamicAllocation(pr, et) {
		total += p.StepTime(n, pr[i])
	}
	return total
}

// StaticEndTime returns the makespan when n nodes run every step.
func (p SpeedupParams) StaticEndTime(pr Profile, n int) float64 {
	total := 0.0
	for _, s := range pr {
		total += p.StepTime(n, s)
	}
	return total
}

// StaticArea returns the consumed area of a static allocation of n nodes.
func (p SpeedupParams) StaticArea(pr Profile, n int) float64 {
	return float64(n) * p.StaticEndTime(pr, n)
}

// EquivalentStatic computes n_eq (§2.3): the static node count whose
// consumed area equals the dynamic allocation's area A(e_t). Computing it
// "requires to know all S_i a priori". The static area is strictly
// increasing in n, so the crossing is unique; the integer with the closest
// area is returned, together with the achieved relative area error.
func (p SpeedupParams) EquivalentStatic(pr Profile, et float64) (n int, relErr float64) {
	target := p.DynamicArea(pr, et)
	lo, hi := 1, 2
	for p.StaticArea(pr, hi) < target {
		lo = hi
		hi *= 2
		if hi > 1<<24 {
			break
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.StaticArea(pr, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Pick the closer of the two bracketing integers.
	dlo := math.Abs(p.StaticArea(pr, lo) - target)
	dhi := math.Abs(p.StaticArea(pr, hi) - target)
	n = lo
	if dhi < dlo {
		n = hi
	}
	relErr = math.Abs(p.StaticArea(pr, n)-target) / target
	return n, relErr
}

// EndTimeIncrease returns the relative end-time increase (e.g. 0.025 for
// 2.5 %) of the equivalent static allocation over the dynamic allocation at
// target efficiency et — the quantity plotted in Fig. 3.
func (p SpeedupParams) EndTimeIncrease(pr Profile, et float64) float64 {
	neq, _ := p.EquivalentStatic(pr, et)
	dyn := p.DynamicEndTime(pr, et)
	return p.StaticEndTime(pr, neq)/dyn - 1
}

// StaticChoice is one row of Fig. 4: for a given relative data size, the
// range of static node counts that neither run out of memory nor consume
// more than 110 % of A(75 %).
type StaticChoice struct {
	RelativeSize float64
	MinNodes     int  // memory floor: ceil(S_max / node memory)
	MaxNodes     int  // area ceiling: largest n with area ≤ 1.1·A(e_t)
	Feasible     bool // MinNodes <= MaxNodes
}

// DefaultNodeMemoryMiB is the assumed per-node memory for the Fig. 4
// analysis. The paper does not state it; 4 GiB per node is typical for the
// 2011-era clusters the paper targets (documented substitution, DESIGN.md).
const DefaultNodeMemoryMiB = 4096

// StaticChoiceRange computes Fig. 4's choice band for one scaled profile:
// the scientist "wants her application not to run out of memory, but at the
// same time, she does not want to use 10% more resources than A(75%)".
func (p SpeedupParams) StaticChoiceRange(pr Profile, et float64, nodeMemMiB float64, relSize float64) StaticChoice {
	scaled := pr.Scale(relSize)
	minNodes := int(math.Ceil(scaled.Max() / nodeMemMiB))
	if minNodes < 1 {
		minNodes = 1
	}
	budget := 1.1 * p.DynamicArea(scaled, et)
	// StaticArea is strictly increasing in n: binary search the ceiling.
	lo, hi := 1, 2
	for p.StaticArea(scaled, hi) <= budget {
		lo = hi
		hi *= 2
		if hi > 1<<24 {
			break
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.StaticArea(scaled, mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return StaticChoice{
		RelativeSize: relSize,
		MinNodes:     minNodes,
		MaxNodes:     lo,
		Feasible:     minNodes <= lo,
	}
}
