// Command coorm-exp regenerates the data behind every quantitative figure
// of the paper's evaluation. Output is gnuplot-friendly: a "# "-prefixed
// header line followed by aligned columns.
//
// Usage:
//
//	coorm-exp -exp fig3                  # one figure, reduced scale
//	coorm-exp -exp fig9 -full            # paper-scale (1000 steps, 3.16 TiB)
//	coorm-exp -exp all -full -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"coormv2/internal/amr"
	"coormv2/internal/apps"
	"coormv2/internal/chaos"
	"coormv2/internal/experiments"
	"coormv2/internal/federation"
	"coormv2/internal/netchaos"
	"coormv2/internal/obs"
	"coormv2/internal/rms"
	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: fig1|fig2|fig3|fig4|fig9|fig10|fig11|ablation|accounting|replay|federated|chaos|nodechaos|netchaos|rebalance|gang|tenants|all")
		seed   = flag.Int64("seed", 1, "base random seed")
		full   = flag.Bool("full", false, "paper scale (1000 steps, 3.16 TiB) instead of the fast reduced scale")
		steps  = flag.Int("steps", 0, "override profile length (0 = scale default)")
		report = flag.String("report", "text", "chaos|nodechaos|rebalance|gang output: text (aligned table) or json (full report incl. obs snapshot)")
	)
	sc := registerScenarioFlags()
	flag.Parse()
	if *report != "text" && *report != "json" {
		fmt.Fprintf(os.Stderr, "coorm-exp: unknown -report format %q (want text or json)\n", *report)
		os.Exit(2)
	}
	// emit renders a Report in the selected format: the text table and the
	// JSON export come from the same struct, so the two can never disagree.
	emit := func(rep *experiments.Report, err error) error {
		if err != nil {
			return err
		}
		if *report == "json" {
			js, err := rep.JSON()
			if err != nil {
				return err
			}
			_, err = os.Stdout.Write(js)
			return err
		}
		fmt.Print(rep.Text())
		return nil
	}

	scale := scaleFor(*full, *steps)
	run := func(name string, fn func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "coorm-exp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	all := *exp == "all"
	matched := all
	if all || *exp == "fig1" {
		matched = true
		run("Fig. 1 — AMR working-set evolutions", func() error { return fig1(*seed, scale) })
	}
	if all || *exp == "fig2" {
		matched = true
		run("Fig. 2 — speed-up model fit", func() error { return fig2(*seed) })
	}
	if all || *exp == "fig3" {
		matched = true
		run("Fig. 3 — equivalent static allocation end-time increase", func() error { return fig3(*seed, scale) })
	}
	if all || *exp == "fig4" {
		matched = true
		run("Fig. 4 — static allocation choices at 75% target efficiency", func() error { return fig4(*seed, scale) })
	}
	if all || *exp == "fig9" {
		matched = true
		run("Fig. 9 — scheduling with spontaneous updates", func() error { return fig9(*seed, scale) })
	}
	if all || *exp == "fig10" {
		matched = true
		run("Fig. 10 — scheduling with announced updates", func() error { return fig10(*seed, scale) })
	}
	if all || *exp == "fig11" {
		matched = true
		run("Fig. 11 — efficient resource filling (two PSAs)", func() error { return fig11(*seed, scale) })
	}
	if all || *exp == "ablation" {
		matched = true
		run("Ablation — PSA graceful release and window selection", func() error { return ablation(*seed, scale) })
	}
	if all || *exp == "accounting" {
		matched = true
		run("Accounting — used vs reserved areas (§7 extension)", func() error { return accounting(*seed, scale) })
	}
	if all || *exp == "replay" {
		matched = true
		run("Replay — synthetic rigid trace with and without a scavenging PSA", func() error { return replay(*seed) })
	}
	if all || *exp == "federated" {
		matched = true
		run("Federated — rigid trace + PSAs + evolving app across scheduler shards", func() error { return federated(*seed, sc.shards) })
	}
	if all || *exp == "chaos" {
		matched = true
		run("Chaos — federated replay under seeded shard crash/recovery", func() error {
			return emit(chaosExp(*seed, sc))
		})
	}
	if all || *exp == "nodechaos" {
		matched = true
		run("Node chaos — machine failures under kill/requeue/cooperative recovery", func() error {
			return emit(nodeChaosExp(*seed, sc))
		})
	}
	if all || *exp == "netchaos" {
		matched = true
		run("Net chaos — wire faults vs reconnect+resume and kill-and-replay (real TCP)", func() error {
			return emit(netChaosExp(*seed, sc))
		})
	}
	if all || *exp == "gang" {
		matched = true
		run("Gang — cross-shard two-phase reservations under chaos", func() error {
			return emit(gangExp(*seed, sc))
		})
	}
	if all || *exp == "rebalance" {
		matched = true
		run("Rebalance — skewed federated workload with live cluster migration on/off", func() error {
			return emit(rebalanceExp(*seed, sc))
		})
	}
	if all || *exp == "tenants" {
		matched = true
		run("Tenants — multi-tenant queue hierarchy, DRF + quota preemption vs FIFO", func() error {
			return emit(tenantsExp(*seed, sc))
		})
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "coorm-exp: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// scale bundles the per-run sizing knobs.
type scale struct {
	steps int
	smax  float64
	// PSA task durations (Fig. 9/10 use psa1 only).
	psa1, psa2 float64
	announces  []float64
	seeds      []int64
}

func scaleFor(full bool, stepsOverride int) scale {
	s := scale{}
	if full {
		s.steps = amr.ProfileSteps
		s.smax = amr.DefaultSmax
		s.psa1, s.psa2 = 600, 60
		s.announces = []float64{0, 100, 200, 300, 400, 500, 550, 600, 650, 700}
		s.seeds = []int64{1, 2, 3, 4, 5}
	} else {
		s.steps = 60
		s.smax = 50 * 1024
		s.psa1, s.psa2 = 120, 12
		s.announces = []float64{0, 30, 60, 90, 110, 120, 130, 140}
		s.seeds = []int64{1, 2, 3}
	}
	if stepsOverride > 0 {
		s.steps = stepsOverride
	}
	return s
}

func f(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }
func g(v float64) string           { return strconv.FormatFloat(v, 'g', 6, 64) }

func fig1(seed int64, sc scale) error {
	profiles := experiments.Fig1(experiments.Fig1Config{
		Seeds: []int64{seed, seed + 1, seed + 2, seed + 3},
		Steps: sc.steps,
	})
	header := []string{"step"}
	for _, p := range profiles {
		header = append(header, fmt.Sprintf("seed%d", p.Seed))
	}
	rows := make([][]string, sc.steps)
	for i := 0; i < sc.steps; i++ {
		row := []string{strconv.Itoa(i)}
		for _, p := range profiles {
			row = append(row, f(p.Series[i], 1))
		}
		rows[i] = row
	}
	fmt.Print(experiments.FormatTable(header, rows))
	return nil
}

func fig2(seed int64) error {
	res, err := experiments.Fig2(seed, 0.05)
	if err != nil {
		return err
	}
	fmt.Printf("fitted: A=%.4g B=%.4g C=%.4g D=%.4g (paper: A=7.26e-3 B=1.23e-4 C=1.13e-6 D=1.38)\n",
		res.Fitted.A, res.Fitted.B, res.Fitted.C, res.Fitted.D)
	fmt.Printf("max relative error: %.2f%% (paper: <15%%)\n", 100*res.MaxRelError)
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			strconv.Itoa(r.Nodes), f(r.SizeMiB/1024, 0), f(r.Measured, 3), f(r.Predicted, 3),
		})
	}
	fmt.Print(experiments.FormatTable([]string{"nodes", "size-GiB", "measured-s", "model-s"}, rows))
	return nil
}

func fig3(seed int64, sc scale) error {
	rows := experiments.Fig3(seed, sc.steps, nil)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{f(r.TargetEff, 2), strconv.Itoa(r.Neq), f(r.EndTimeIncreasePct, 3)})
	}
	fmt.Print(experiments.FormatTable([]string{"target-eff", "n_eq", "end-time-increase-%"}, out))
	return nil
}

func fig4(seed int64, sc scale) error {
	rows := experiments.Fig4(seed, sc.steps, nil, 0)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			g(r.RelativeSize), strconv.Itoa(r.MinNodes), strconv.Itoa(r.MaxNodes),
			strconv.FormatBool(r.Feasible),
		})
	}
	fmt.Print(experiments.FormatTable([]string{"rel-size", "min-nodes(mem)", "max-nodes(area)", "feasible"}, out))
	return nil
}

func fig9(seed int64, sc scale) error {
	rows, err := experiments.Fig9(experiments.Fig9Config{
		Seed: seed, Steps: sc.steps, Smax: sc.smax, PSATaskDur: sc.psa1,
	})
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			f(r.Overcommit, 3), strconv.Itoa(r.Nodes),
			g(r.StaticArea), g(r.DynamicArea), g(r.PSAWaste),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"overcommit", "nodes", "static-node·s", "dynamic-node·s", "psa-waste-node·s"}, out))
	return nil
}

func fig10(seed int64, sc scale) error {
	rows, err := experiments.Fig10(experiments.Fig10Config{
		AnnounceIntervals: sc.announces,
		Seed:              seed, Steps: sc.steps, Smax: sc.smax, PSATaskDur: sc.psa1,
	})
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			f(r.AnnounceInterval, 0), f(r.EndTimeIncreasePct, 2),
			f(r.PSAWastePct, 2), f(r.UsedResourcesPct, 2),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"announce-s", "amr-endtime-increase-%", "psa-waste-%", "used-resources-%"}, out))
	return nil
}

func fig11(seed int64, sc scale) error {
	seeds := make([]int64, len(sc.seeds))
	for i, s := range sc.seeds {
		seeds[i] = s + seed - 1
	}
	rows, err := experiments.Fig11(experiments.Fig11Config{
		AnnounceIntervals: sc.announces,
		Seeds:             seeds,
		Steps:             sc.steps, Smax: sc.smax,
		PSA1TaskDur: sc.psa1, PSA2TaskDur: sc.psa2,
	})
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			f(r.AnnounceInterval, 0), f(r.FillingPct, 2), f(r.StrictPct, 2),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"announce-s", "filling-used-%", "strict-used-%"}, out))
	return nil
}

func ablation(seed int64, sc scale) error {
	rows, err := experiments.AblationPSA(experiments.AblationConfig{
		Seed: seed, Steps: sc.steps, Smax: sc.smax,
		AnnounceInterval: sc.psa1 / 2, PSATaskDur: sc.psa1,
	})
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Variant, g(r.PSAWaste), f(r.UsedResourcesPct, 2), f(r.AMRRuntime, 0),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"variant", "psa-waste-node·s", "used-%", "amr-runtime-s"}, out))
	return nil
}

func replay(seed int64) error {
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 100, MaxNodes: 32, MeanInterArr: 180, MeanRuntime: 1800,
		PowerOfTwoBias: 0.5,
	})
	st := workload.Summarize(jobs)
	fmt.Printf("trace: %d jobs, %.3g node·s, max %d nodes\n", st.Jobs, st.TotalArea, st.MaxNodes)
	var out [][]string
	for _, fill := range []bool{false, true} {
		res, err := experiments.RunReplay(experiments.ReplayConfig{
			Jobs: jobs, Nodes: 64, FillWithPSA: fill, PSATaskDur: 300,
		})
		if err != nil {
			return err
		}
		name := "rigid only"
		if fill {
			name = "rigid + scavenging PSA"
		}
		out = append(out, []string{
			name, f(res.MeanWait, 1), f(res.MaxWait, 1), f(res.Makespan, 0),
			f(100*res.Utilization, 2), f(100*res.UtilizationWithPSA, 2),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"setup", "mean-wait-s", "max-wait-s", "makespan-s", "rigid-util-%", "total-util-%"}, out))
	return nil
}

// federated replays one rigid trace through federations of growing shard
// count. The total node count is fixed (per-shard clusters shrink as the
// shard count grows) so the rows compare scheduling topology, not capacity.
// A 1-shard federation is byte-identical to a single RMS (see the
// differential test in internal/experiments), so the first row doubles as
// the unsharded baseline.
func federated(seed int64, maxShards int) error {
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 200, MaxNodes: 16, MeanInterArr: 60, MeanRuntime: 1200,
		PowerOfTwoBias: 0.5,
	})
	st := workload.Summarize(jobs)
	fmt.Printf("trace: %d jobs, %.3g node·s, max %d nodes/job\n", st.Jobs, st.TotalArea, st.MaxNodes)
	const totalNodes = 128
	var out [][]string
	for shards := 1; shards <= maxShards; shards *= 2 {
		res, err := experiments.RunFederatedReplay(experiments.FederatedReplayConfig{
			Jobs:          jobs,
			Shards:        shards,
			NodesPerShard: totalNodes / shards,
			PSATaskDur:    300,
			Evolving: []apps.Segment{
				{N: 8, Duration: 1800}, {N: 16, Duration: 1800}, {N: 4, Duration: 1800},
			},
		})
		if err != nil {
			return err
		}
		out = append(out, []string{
			strconv.Itoa(res.Shards), strconv.Itoa(res.Nodes), strconv.Itoa(res.Completed),
			f(res.MeanWait, 1), f(res.MaxWait, 1), f(res.Makespan, 0),
			f(100*res.RigidUtilization, 2), f(100*res.UsedFraction, 2),
			strconv.FormatInt(res.Events, 10),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"shards", "nodes", "jobs", "mean-wait-s", "max-wait-s", "makespan-s",
			"rigid-util-%", "used-%", "events"}, out))
	return nil
}

// scenarioOpts bundles the flags shared by the federated fault/rebalance
// scenarios (-exp chaos and -exp rebalance build their configurations from
// this one source, instead of each parsing its own copy).
type scenarioOpts struct {
	shards           int
	crashRate        float64
	restartDelay     float64
	nodeMTTF         float64
	nodeRepair       float64
	clustersPerShard int
	hotFrac          float64
	rebalInterval    float64
	skewRatio        float64
	gangFrac         float64
	tenants          int
	tenantHotFrac    float64
	netJobs          int
	netFaultGap      float64
	netHorizon       float64
}

// registerScenarioFlags declares the shared scenario flags on the default
// flag set and returns the struct they populate.
func registerScenarioFlags() *scenarioOpts {
	sc := &scenarioOpts{}
	flag.IntVar(&sc.shards, "shards", 4, "shard count (federated: maximum, swept in powers of two)")
	flag.Float64Var(&sc.crashRate, "crash-rate", 2, "chaos: expected crashes per shard per simulated hour (0 disables faults)")
	flag.Float64Var(&sc.restartDelay, "restart-delay", 180, "chaos: mean shard restart delay in simulated seconds")
	flag.Float64Var(&sc.nodeMTTF, "node-mttf", 1200, "nodechaos: per-cluster mean time between machine failures in simulated seconds (0 disables)")
	flag.Float64Var(&sc.nodeRepair, "node-repair", 600, "nodechaos: mean machine repair time in simulated seconds")
	flag.IntVar(&sc.clustersPerShard, "clusters-per-shard", 4, "rebalance: clusters initially partitioned onto each shard")
	flag.Float64Var(&sc.hotFrac, "hot-frac", 0.75, "rebalance: fraction of the trace pinned to shard 0's clusters")
	flag.Float64Var(&sc.rebalInterval, "rebalance-interval", 120, "rebalance: seconds between load checks")
	flag.Float64Var(&sc.skewRatio, "skew-ratio", 2, "rebalance: migrate when the hottest shard exceeds this ratio of the coldest")
	flag.Float64Var(&sc.gangFrac, "gang-frac", 0.5, "gang: fraction of jobs given a cross-shard companion leg")
	flag.IntVar(&sc.tenants, "tenants", 3, "tenants: tenant-queue count (t0 guaranteed, t1 hot)")
	flag.Float64Var(&sc.tenantHotFrac, "tenant-hot-frac", 0.5, "tenants: fraction of the trace submitted by the hot best-effort tenant")
	flag.IntVar(&sc.netJobs, "net-jobs", 6, "netchaos: sequential jobs driven over the faulty wire")
	flag.Float64Var(&sc.netFaultGap, "net-fault-gap", 0.15, "netchaos: mean wall-clock seconds between wire faults")
	flag.Float64Var(&sc.netHorizon, "net-horizon", 1.2, "netchaos: wall-clock fault-schedule horizon in seconds")
	return sc
}

// chaosConfig builds the chaos-scenario configuration for one seed/policy;
// rebalance additionally arms the cluster-migration loop, and skewed pins
// the hot fraction of the trace onto shard 0's clusters.
func (sc *scenarioOpts) chaosConfig(seed int64, pol federation.RecoveryPolicy, jobs []workload.Job, skewed, rebalance bool) experiments.ChaosReplayConfig {
	mttf := 0.0 // -crash-rate 0 disables fault injection (chaos.Plan is empty for MTTF<=0)
	if sc.crashRate > 0 {
		mttf = 3600.0 / sc.crashRate
	}
	cfg := experiments.ChaosReplayConfig{
		Jobs:          jobs,
		Shards:        sc.shards,
		NodesPerShard: 64,
		PSATaskDur:    300,
		Recovery:      pol,
		Chaos: chaos.Config{
			Seed:             seed,
			MTTF:             mttf,
			MeanRestartDelay: sc.restartDelay,
			Horizon:          3 * 3600,
		},
	}
	if skewed {
		cfg.ClustersPerShard = sc.clustersPerShard
		cfg.HotJobFraction = sc.hotFrac
		cfg.NodesPerShard = 32
	}
	if rebalance {
		cfg.Rebalance = &federation.RebalancerConfig{
			Interval:  sc.rebalInterval,
			SkewRatio: sc.skewRatio,
		}
	}
	return cfg
}

// chaosExp replays one rigid trace through a sharded federation while a
// seeded fault plan crashes and restarts shards, once per recovery policy
// and seed. Same seed ⇒ identical row, including the event-stream hash (the
// determinism contract of internal/chaos). The first (baseline) run carries
// an observability registry; its snapshot rides along in the report.
func chaosExp(seed int64, sc *scenarioOpts) (*experiments.Report, error) {
	opts := *sc
	if opts.shards < 2 {
		opts.shards = 2
	}
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 150, MaxNodes: 16, MeanInterArr: 60, MeanRuntime: 1200,
		PowerOfTwoBias: 0.5,
	})
	st := workload.Summarize(jobs)
	rep := &experiments.Report{
		Name: "chaos",
		Notes: []string{fmt.Sprintf("trace: %d jobs, %.3g node·s, max %d nodes/job; %d shards, %.3g crashes/shard/h",
			st.Jobs, st.TotalArea, st.MaxNodes, opts.shards, opts.crashRate)},
		Header: []string{"policy", "seed", "crashes", "done", "killed", "rejected",
			"requeued", "replayed", "dropped", "mean-wait-s", "makespan-s", "used-%", "event-hash"},
	}
	for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
		for s := seed; s < seed+3; s++ {
			cfg := opts.chaosConfig(s, pol, jobs, false, false)
			if rep.Obs == nil && len(rep.Rows) == 0 {
				cfg.Obs = obs.NewRegistry()
			}
			res, err := experiments.RunChaosReplay(cfg)
			if err != nil {
				return nil, err
			}
			if cfg.Obs != nil {
				rep.Obs = res.Snapshot
			}
			rep.Rows = append(rep.Rows, []string{
				pol.String(), strconv.FormatInt(s, 10),
				strconv.Itoa(res.Crashes),
				strconv.Itoa(res.Completed), strconv.Itoa(res.Killed), strconv.Itoa(res.Rejected),
				strconv.Itoa(res.RequeuedRequests), strconv.Itoa(res.ReplayedRequests), strconv.Itoa(res.DroppedRequests),
				f(res.MeanWait, 1), f(res.Makespan, 0), f(100*res.UsedFraction, 2),
				fmt.Sprintf("%016x", res.EventHash),
			})
		}
	}
	return rep, nil
}

// gangExp measures cross-shard gang scheduling: a fraction of the rigid
// jobs carries a NEXT/COALLOC companion leg on the next shard, driving the
// two-phase reservation coordinator (hold → align → commit/abort) while the
// seeded fault plan crashes shards — participant and coordinator sides
// alike — mid-reservation. The abort-rate column is the fraction of gangs
// the coordinator gave up on (crashed holds under the kill policy plus
// unfittable legs past the backoff budget); same seed ⇒ identical row
// including the event-stream hash.
func gangExp(seed int64, sc *scenarioOpts) (*experiments.Report, error) {
	opts := *sc
	if opts.shards < 2 {
		opts.shards = 2
	}
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 150, MaxNodes: 16, MeanInterArr: 60, MeanRuntime: 1200,
		PowerOfTwoBias: 0.5,
	})
	st := workload.Summarize(jobs)
	rep := &experiments.Report{
		Name: "gang",
		Notes: []string{fmt.Sprintf("trace: %d jobs, %.3g node·s, max %d nodes/job; %d shards, %.3g crashes/shard/h, gang fraction %.2g",
			st.Jobs, st.TotalArea, st.MaxNodes, opts.shards, opts.crashRate, opts.gangFrac)},
		Header: []string{"policy", "seed", "crashes", "done", "committed", "aborted",
			"retried", "abort-%", "mean-wait-s", "makespan-s", "used-%", "event-hash"},
	}
	for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
		for s := seed; s < seed+3; s++ {
			cfg := opts.chaosConfig(s, pol, jobs, false, false)
			cfg.GangFraction = opts.gangFrac
			if rep.Obs == nil && len(rep.Rows) == 0 {
				cfg.Obs = obs.NewRegistry()
			}
			res, err := experiments.RunChaosReplay(cfg)
			if err != nil {
				return nil, err
			}
			if cfg.Obs != nil {
				rep.Obs = res.Snapshot
			}
			abortPct := 0.0
			if n := res.GangsCommitted + res.GangsAborted; n > 0 {
				abortPct = 100 * float64(res.GangsAborted) / float64(n)
			}
			rep.Rows = append(rep.Rows, []string{
				pol.String(), strconv.FormatInt(s, 10),
				strconv.Itoa(res.Crashes), strconv.Itoa(res.Completed),
				strconv.Itoa(res.GangsCommitted), strconv.Itoa(res.GangsAborted),
				strconv.Itoa(res.GangsRetried), f(abortPct, 1),
				f(res.MeanWait, 1), f(res.Makespan, 0), f(100*res.UsedFraction, 2),
				fmt.Sprintf("%016x", res.EventHash),
			})
		}
	}
	return rep, nil
}

// nodeChaosExp compares the three node-recovery policies on the same seeded
// machine-failure schedule: shard crashes are disabled, so every difference
// between rows of a seed comes from how dying machines are handled. The
// lost-work column (node·s of computation killed or repeated on rigid jobs)
// is the §3.1.4 argument for cooperative recovery in one number; same seed ⇒
// identical row including the event-stream hash.
func nodeChaosExp(seed int64, sc *scenarioOpts) (*experiments.Report, error) {
	opts := *sc
	if opts.shards < 2 {
		opts.shards = 2
	}
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 150, MaxNodes: 16, MeanInterArr: 60, MeanRuntime: 1200,
		PowerOfTwoBias: 0.5,
	})
	st := workload.Summarize(jobs)
	rep := &experiments.Report{
		Name: "nodechaos",
		Notes: []string{fmt.Sprintf("trace: %d jobs, %.3g node·s, max %d nodes/job; %d shards, node MTTF %.3gs, repair %.3gs",
			st.Jobs, st.TotalArea, st.MaxNodes, opts.shards, opts.nodeMTTF, opts.nodeRepair)},
		Header: []string{"policy", "seed", "node-fails", "recovers", "done", "killed",
			"n-killed", "n-requeued", "n-reduced", "lost-node-s", "resubmits",
			"mean-wait-s", "used-%", "event-hash"},
	}
	for _, pol := range []rms.NodeRecoveryPolicy{
		rms.KillOnNodeFailure, rms.RequeueOnNodeFailure, rms.CooperativeOnNodeFailure,
	} {
		for s := seed; s < seed+3; s++ {
			cfg := opts.chaosConfig(s, federation.RequeueOnCrash, jobs, false, false)
			cfg.Chaos.MTTF = 0 // machine faults only — no shard crashes
			cfg.Chaos.NodeMTTF = opts.nodeMTTF
			cfg.Chaos.MeanNodeRecovery = opts.nodeRepair
			cfg.NodeRecovery = pol
			if rep.Obs == nil && len(rep.Rows) == 0 {
				cfg.Obs = obs.NewRegistry()
			}
			res, err := experiments.RunChaosReplay(cfg)
			if err != nil {
				return nil, err
			}
			if cfg.Obs != nil {
				rep.Obs = res.Snapshot
			}
			rep.Rows = append(rep.Rows, []string{
				pol.String(), strconv.FormatInt(s, 10),
				strconv.Itoa(res.NodeFails), strconv.Itoa(res.NodeRecovers),
				strconv.Itoa(res.Completed), strconv.Itoa(res.Killed),
				strconv.Itoa(res.NodeKilled), strconv.Itoa(res.NodeRequeued), strconv.Itoa(res.NodeReduced),
				f(res.LostWork, 0), strconv.Itoa(res.Resubmits),
				f(res.MeanWait, 1), f(100*res.UsedFraction, 2),
				fmt.Sprintf("%016x", res.EventHash),
			})
		}
	}
	return rep, nil
}

// netChaosExp measures the transport's wire-level resilience on real TCP
// connections: a sequential job stream runs through a netchaos proxy that
// severs, partitions, half-opens, and delays the wire on a seeded
// schedule, once with reconnect+resume (grace window, idempotent retries)
// and once with the kill-and-replay baseline (a dropped connection kills
// the session; the driver re-dials and resubmits). The trace-hash column
// pins the schedule's determinism: same seed ⇒ same faults for both modes.
// This experiment runs on the wall clock — rows measure the actual
// transport, so timing columns vary run to run; the invariant columns
// (lost acks, duplicate starts) must not.
func netChaosExp(seed int64, sc *scenarioOpts) (*experiments.Report, error) {
	faults := func(s int64) netchaos.Config {
		return netchaos.Config{
			Seed:        s,
			MeanBetween: sc.netFaultGap,
			MeanDur:     sc.netFaultGap / 4,
			Horizon:     sc.netHorizon,
			MaxFaults:   8,
		}
	}
	rep := &experiments.Report{
		Name: "netchaos",
		Notes: []string{fmt.Sprintf("wire faults over real TCP: %d jobs, mean fault gap %.3gs, horizon %.3gs; resume grace 10s",
			sc.netJobs, sc.netFaultGap, sc.netHorizon)},
		Header: []string{"mode", "seed", "done", "reconnects", "resubmits",
			"lost-acks", "dup-starts", "recover-p50-ms", "recover-p99-ms",
			"elapsed-s", "trace-hash"},
	}
	for _, resume := range []bool{true, false} {
		mode := "resume"
		if !resume {
			mode = "kill-replay"
		}
		for s := seed; s < seed+2; s++ {
			res, err := experiments.RunNetChaos(experiments.NetChaosConfig{
				Seed: s, Jobs: sc.netJobs, Resume: resume,
				Faults: faults(s),
				Grace:  10 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			if rep.Obs == nil {
				rep.Obs = res.Snapshot
			}
			rep.Rows = append(rep.Rows, []string{
				mode, strconv.FormatInt(s, 10),
				strconv.Itoa(res.Completed), strconv.Itoa(res.Reconnects),
				strconv.Itoa(res.Resubmits), strconv.Itoa(res.LostAcks),
				strconv.Itoa(res.DupStarts),
				f(res.RecoverP50*1000, 2), f(res.RecoverP99*1000, 2),
				f(res.Elapsed, 2),
				fmt.Sprintf("%016x", res.TraceHash),
			})
		}
	}
	return rep, nil
}

// rebalanceExp replays one skewed rigid trace — the configured hot fraction
// pinned to shard 0's clusters — with live cluster migration off and on,
// with and without the chaos fault plan. The imbalance column is max/mean of
// the per-shard end-state churn (1.00 = perfectly balanced); the event hash
// pins determinism per row.
func rebalanceExp(seed int64, sc *scenarioOpts) (*experiments.Report, error) {
	opts := *sc
	if opts.shards < 2 {
		opts.shards = 2
	}
	if opts.clustersPerShard < 2 {
		opts.clustersPerShard = 2
	}
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 150, MaxNodes: 16, MeanInterArr: 60, MeanRuntime: 1200,
		PowerOfTwoBias: 0.5,
	})
	st := workload.Summarize(jobs)
	rep := &experiments.Report{
		Name: "rebalance",
		Notes: []string{fmt.Sprintf("trace: %d jobs, %.3g node·s, max %d nodes/job; %d shards × %d clusters, %.0f%% hot",
			st.Jobs, st.TotalArea, st.MaxNodes, opts.shards, opts.clustersPerShard, 100*opts.hotFrac)},
		Header: []string{"rebalance", "crashes", "migrations", "moved-reqs", "done",
			"mean-wait-s", "makespan-s", "imbalance", "used-%", "event-hash"},
	}
	for _, chaosOn := range []bool{false, true} {
		for _, rebalance := range []bool{false, true} {
			o := opts
			if !chaosOn {
				o.crashRate = 0
			}
			cfg := o.chaosConfig(seed, federation.RequeueOnCrash, jobs, true, rebalance)
			if rep.Obs == nil && len(rep.Rows) == 0 {
				cfg.Obs = obs.NewRegistry()
			}
			res, err := experiments.RunChaosReplay(cfg)
			if err != nil {
				return nil, err
			}
			if cfg.Obs != nil {
				rep.Obs = res.Snapshot
			}
			var maxChurn, sumChurn int64
			for _, c := range res.ShardChurn {
				sumChurn += c
				if c > maxChurn {
					maxChurn = c
				}
			}
			imbalance := 1.0
			if sumChurn > 0 {
				imbalance = float64(maxChurn) * float64(len(res.ShardChurn)) / float64(sumChurn)
			}
			rep.Rows = append(rep.Rows, []string{
				strconv.FormatBool(rebalance), strconv.Itoa(res.Crashes), strconv.Itoa(res.Migrations),
				strconv.Itoa(res.MigratedRequests), strconv.Itoa(res.Completed),
				f(res.MeanWait, 1), f(res.Makespan, 0), f(imbalance, 3),
				f(100*res.UsedFraction, 2), fmt.Sprintf("%016x", res.EventHash),
			})
		}
	}
	return rep, nil
}

// tenantsExp runs the identical skewed multi-tenant trace under
// connection-order FIFO and under DRF with quota preemption: N tenant
// queues (t0 guaranteed half of every cluster, t1 the hot best-effort
// flood), per-cluster scavenging PSAs tagged with the best-effort tenants
// as the preemptible load. The table reads per tenant and mode: wait
// mean/p99, quota preemptions suffered, and per-mode wait fairness (Jain)
// and PSA waste. The DRF run carries the observability registry, so the
// JSON report includes the per-tenant wait histograms and EvPreempt
// events every shard records.
func tenantsExp(seed int64, sc *scenarioOpts) (*experiments.Report, error) {
	opts := *sc
	if opts.shards < 2 {
		opts.shards = 2
	}
	if opts.tenants < 2 {
		opts.tenants = 2
	}
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 120, MaxNodes: 16, MeanInterArr: 45, MeanRuntime: 900,
		PowerOfTwoBias: 0.5,
	})
	st := workload.Summarize(jobs)
	rep := &experiments.Report{
		Name: "tenants",
		Notes: []string{fmt.Sprintf("trace: %d jobs, %.3g node·s, max %d nodes/job; %d shards, %d tenants, %.0f%% hot-tenant demand",
			st.Jobs, st.TotalArea, st.MaxNodes, opts.shards, opts.tenants, 100*opts.tenantHotFrac)},
		Header: []string{"policy", "tenant", "guarantee", "jobs", "done",
			"mean-wait-s", "p99-wait-s", "preempts", "fairness", "waste-node·s", "used-%"},
	}
	for _, drf := range []bool{false, true} {
		cfg := experiments.TenantsReplayConfig{
			Jobs: jobs, Tenants: opts.tenants, Shards: opts.shards, NodesPerShard: 64,
			GuaranteeFrac: 0.5, HotFrac: opts.tenantHotFrac, PSATaskDur: 300, DRF: drf,
		}
		if drf {
			cfg.Obs = obs.NewRegistry()
		}
		res, err := experiments.RunTenantsReplay(cfg)
		if err != nil {
			return nil, err
		}
		if cfg.Obs != nil {
			rep.Obs = res.Snapshot
		}
		policy := "fifo"
		if drf {
			policy = "drf"
		}
		for _, ts := range res.Tenants {
			rep.Rows = append(rep.Rows, []string{
				policy, ts.Tenant, strconv.Itoa(ts.Guarantee),
				strconv.Itoa(ts.Jobs), strconv.Itoa(ts.Completed),
				f(ts.MeanWait, 1), f(ts.P99Wait, 1), strconv.FormatInt(ts.Preempts, 10),
				f(res.WaitFairness, 3), g(res.TotalWaste), f(100*res.UsedFraction, 2),
			})
		}
	}
	return rep, nil
}

func accounting(seed int64, sc scale) error {
	rows, err := experiments.Accounting(seed, sc.steps, sc.smax, sc.psa1)
	if err != nil {
		return err
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App, g(r.UsedArea), g(r.PreAllocArea), g(r.ReservedIdle), g(r.Waste),
		})
	}
	fmt.Print(experiments.FormatTable(
		[]string{"application", "used-node·s", "pre-alloc-node·s", "reserved-idle-node·s", "waste-node·s"}, out))
	return nil
}
