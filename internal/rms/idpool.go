package rms

import (
	"fmt"
	"sort"
)

// idPool hands out node IDs for one cluster. IDs are integers 0..n-1;
// allocation returns the lowest free IDs, which keeps simulated traces
// stable and readable.
type idPool struct {
	freeIDs []int // sorted ascending
	size    int
}

func newIDPool(n int) *idPool {
	p := &idPool{size: n, freeIDs: make([]int, n)}
	for i := range p.freeIDs {
		p.freeIDs[i] = i
	}
	return p
}

// available returns the number of free node IDs.
func (p *idPool) available() int { return len(p.freeIDs) }

// alloc removes and returns the k lowest free IDs. It panics if k exceeds
// availability: callers must check available() first (the RMS defers starts
// instead of over-allocating).
func (p *idPool) alloc(k int) []int {
	if k < 0 || k > len(p.freeIDs) {
		panic(fmt.Sprintf("idPool: alloc(%d) with %d available", k, len(p.freeIDs)))
	}
	out := append([]int(nil), p.freeIDs[:k]...)
	p.freeIDs = append(p.freeIDs[:0], p.freeIDs[k:]...)
	return out
}

// free returns IDs to the pool. Freeing an ID twice or an out-of-range ID
// panics: it always indicates RMS state corruption.
func (p *idPool) free(ids []int) {
	for _, id := range ids {
		if id < 0 || id >= p.size {
			panic(fmt.Sprintf("idPool: freeing out-of-range ID %d", id))
		}
		i := sort.SearchInts(p.freeIDs, id)
		if i < len(p.freeIDs) && p.freeIDs[i] == id {
			panic(fmt.Sprintf("idPool: double free of ID %d", id))
		}
		p.freeIDs = append(p.freeIDs, 0)
		copy(p.freeIDs[i+1:], p.freeIDs[i:])
		p.freeIDs[i] = id
	}
}
