// Package chaos is the deterministic fault-injection harness for the
// federated RMS (internal/federation): it derives a crash/restart schedule
// for every scheduler shard from a seeded PRNG, arms the faults as
// discrete-event simulator events, and records a trace of what each fault
// did. Because the schedule is precomputed and the simulator is a
// deterministic event loop, two runs with the same seed produce
// byte-identical traces — the property the chaos tests pin — and the
// federation's invariant checker can be run after every fault, not just at
// the end.
//
// The harness follows the simulation-first consistency-testing stance: the
// recovery path is exercised systematically across seeds and policies
// instead of being left to rare production incidents.
//
// Its wire-level counterpart is internal/netchaos, which derives
// fault plans the same way (seeded, seed-stable traces) but breaks the
// network between real transport clients and servers instead of crashing
// simulated shards.
package chaos

import (
	"fmt"
	"sort"

	"coormv2/internal/federation"
	"coormv2/internal/obs"
	"coormv2/internal/sim"
	"coormv2/internal/stats"
)

// Config parametrizes a fault plan. All times are virtual seconds.
type Config struct {
	// Seed drives every random draw; same seed ⇒ same plan.
	Seed int64
	// MTTF is the mean time between a shard coming up (or starting) and its
	// next crash, drawn from an exponential distribution per shard.
	MTTF float64
	// MeanRestartDelay is the mean crash→restart delay (exponential).
	MeanRestartDelay float64
	// Horizon bounds the plan: no crash is scheduled at or after it.
	Horizon float64
	// MaxFaultsPerShard caps the crashes of one shard; 0 means unlimited
	// (bounded by the horizon alone).
	MaxFaultsPerShard int

	// NodeMTTF is the mean time between machine failures on one cluster
	// (exponential; cluster-level rate, not per machine). Zero disables node
	// faults — shard-only plans are unchanged.
	NodeMTTF float64
	// MeanNodeRecovery is the mean repair time of a failed machine
	// (exponential).
	MeanNodeRecovery float64
	// MaxNodeFaultsPerCluster caps the machine failures of one cluster; 0
	// means unlimited (bounded by the horizon alone).
	MaxNodeFaultsPerCluster int
}

// Fault is one crash/restart cycle of one shard.
type Fault struct {
	Shard     int
	CrashAt   float64
	RestartAt float64
}

// String renders the fault deterministically for traces.
func (f Fault) String() string {
	return fmt.Sprintf("fault shard=%d crash@%g restart@%g", f.Shard, f.CrashAt, f.RestartAt)
}

// Plan derives the full fault schedule for a federation of the given shard
// count. Per shard, crash times follow a renewal process: exponential
// time-to-fail from the last restart, then an exponential restart delay.
// Faults never overlap on one shard by construction. The result is sorted
// by (CrashAt, Shard); ties cannot produce nondeterminism because the order
// is total.
func Plan(cfg Config, shards int) []Fault {
	if shards <= 0 || cfg.MTTF <= 0 || cfg.Horizon <= 0 {
		return nil
	}
	rng := stats.NewRand(cfg.Seed)
	var plan []Fault
	// Draw shard by shard so adding shards never perturbs the earlier
	// shards' schedules relative to a plan with the same seed.
	for shard := 0; shard < shards; shard++ {
		t := 0.0
		for n := 0; cfg.MaxFaultsPerShard == 0 || n < cfg.MaxFaultsPerShard; n++ {
			t += rng.ExpFloat64() * cfg.MTTF
			if t >= cfg.Horizon {
				break
			}
			delay := rng.ExpFloat64() * cfg.MeanRestartDelay
			plan = append(plan, Fault{Shard: shard, CrashAt: t, RestartAt: t + delay})
			t += delay
		}
	}
	sort.Slice(plan, func(i, j int) bool {
		if plan[i].CrashAt != plan[j].CrashAt {
			return plan[i].CrashAt < plan[j].CrashAt
		}
		return plan[i].Shard < plan[j].Shard
	})
	return plan
}

// Injector arms a fault plan on a simulator engine and records what every
// fault did to the federation.
type Injector struct {
	e   *sim.Engine
	fed *federation.Federator
	pln []Fault

	// CheckAfterFault, when set, runs the federation invariant checker
	// after every crash and every restart; the first failure is retained.
	CheckAfterFault bool

	trace        []string
	crashes      int
	restarts     int
	nodeFails    int
	nodeRecovers int
	invErr       error

	// Observability (nil unless SetObs was called; nil receivers no-op).
	obsReg        *obs.Registry
	hRecovery     *obs.Histogram
	hNodeRecovery *obs.Histogram
}

// NewInjector binds a plan to an engine and federation. Call Arm before
// running the simulation.
func NewInjector(e *sim.Engine, fed *federation.Federator, plan []Fault) *Injector {
	return &Injector{e: e, fed: fed, pln: plan}
}

// SetObs attaches an observability registry: executed fault→recovery
// times land in the "chaos.recovery_seconds" (shard outage per plan) and
// "chaos.node_recovery_seconds" (machine repair) histograms, and node
// faults are traced as structured events. Shard crash/restart events are
// recorded by the federation itself. Call before Arm/ArmNodes.
func (in *Injector) SetObs(reg *obs.Registry) {
	in.obsReg = reg
	in.hRecovery = reg.Hist("chaos.recovery_seconds")
	in.hNodeRecovery = reg.Hist("chaos.node_recovery_seconds")
}

// Arm schedules every fault of the plan as simulator events.
func (in *Injector) Arm() {
	for _, f := range in.pln {
		f := f
		in.e.At(f.CrashAt, "chaos.crash", func() {
			rep := in.fed.CrashShard(f.Shard)
			in.crashes++
			in.record(fmt.Sprintf("t=%.6f %s", in.e.Now(), rep))
		})
		in.e.At(f.RestartAt, "chaos.restart", func() {
			rep := in.fed.RestartShard(f.Shard)
			in.restarts++
			in.hRecovery.Record(f.RestartAt - f.CrashAt)
			in.record(fmt.Sprintf("t=%.6f %s", in.e.Now(), rep))
		})
	}
}

// record appends a trace line and, when enabled, checks invariants.
func (in *Injector) record(line string) {
	in.trace = append(in.trace, line)
	if in.CheckAfterFault && in.invErr == nil {
		if err := in.fed.CheckInvariants(); err != nil {
			in.invErr = fmt.Errorf("after %q: %w", line, err)
		}
	}
}

// Trace returns the fault trace so far: one deterministic line per executed
// crash/restart, in execution order.
func (in *Injector) Trace() []string { return in.trace }

// Crashes returns the number of executed crash events.
func (in *Injector) Crashes() int { return in.crashes }

// Restarts returns the number of executed restart events.
func (in *Injector) Restarts() int { return in.restarts }

// InvariantErr returns the first invariant violation observed after a fault
// (nil if none, or if CheckAfterFault was off).
func (in *Injector) InvariantErr() error { return in.invErr }
