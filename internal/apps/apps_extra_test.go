package apps

import (
	"math"
	"testing"

	"coormv2/internal/amr"
	"coormv2/internal/clock"
	"coormv2/internal/core"
)

func TestNEAAnnouncedShrinkReleasesNodes(t *testing.T) {
	// A profile that grows then shrinks: with announced updates the NEA
	// must hand nodes back through the bridge-request mechanism, and the
	// RMS must reclaim the surplus even though the application names no
	// IDs (the bridge expires; the RMS trims).
	prof := make(amr.Profile, 30)
	for i := range prof {
		if i < 15 {
			prof[i] = 50 * 1024 // large: many nodes
		} else {
			prof[i] = 2 * 1024 // small: few nodes
		}
	}
	v := newEnv(300, core.EquiPartitionFilling)
	a := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof, Params: amr.DefaultParams, TargetEff: 0.75,
		PreAllocN: 150, Mode: NEADynamic, AnnounceInterval: 20,
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.RunAll()
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	if !a.Finished() {
		t.Fatalf("did not finish: step %d", a.Step())
	}
	// Peak allocation far above the final allocation proves the shrink
	// path executed; everything returned at the end.
	peakWant := amr.DefaultParams.NodesForEfficiency(50*1024, 0.75)
	if got := v.rec.MaxAlloc(1); got < peakWant/2 {
		t.Errorf("peak alloc = %d, expected to approach %d", got, peakWant)
	}
	if got := v.rec.Current(1); got != 0 {
		t.Errorf("still holding %d nodes", got)
	}
}

func TestPSADeclinesShortWindows(t *testing.T) {
	// The §4 selection rule directly: with a visible drop sooner than
	// d_task, the PSA must not claim the nodes above the post-drop level.
	v := newEnv(20, core.EquiPartitionFilling)
	// An evolving app that will take 15 nodes at t≈200 — visible from the
	// start via the NEXT chain.
	a := NewPredictableEvolving(clock.SimClock{E: v.e}, c0, []Segment{
		{N: 1, Duration: 200}, {N: 15, Duration: 500},
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(5)

	// d_task = 1000 > 195 s window: only the 5 always-free nodes qualify.
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 1000})
	v.connect(p, p)
	v.e.Run(50)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if got := p.HeldNodes(); got != 5 {
		// During the announced 15-node segment (segment 1 has ended by
		// then) availability bottoms out at 20 − 15 = 5: only those 5
		// nodes have a window long enough for a 1000 s task.
		t.Errorf("PSA holds %d, want 5 (declines the short window)", got)
	}
	if p.Waste() != 0 {
		t.Errorf("waste = %v, want 0 (nothing was claimed that gets killed)", p.Waste())
	}
}

func TestPSAIgnoreWindowsClaimsAndPays(t *testing.T) {
	// The ablation knob: without the selection rule the PSA claims the
	// doomed nodes and pays with killed tasks.
	v := newEnv(20, core.EquiPartitionFilling)
	a := NewPredictableEvolving(clock.SimClock{E: v.e}, c0, []Segment{
		{N: 1, Duration: 200}, {N: 15, Duration: 500},
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(5)

	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{
		Cluster: c0, TaskDuration: 1000, IgnoreWindows: true, NoGraceful: true,
	})
	v.connect(p, p)
	v.e.Run(50)
	if got := p.HeldNodes(); got != 19 {
		t.Fatalf("ignoring windows should claim everything: held %d", got)
	}
	v.e.Run(400) // the evolving app's 15-node segment starts at ≈200
	if p.Waste() == 0 {
		t.Error("claiming doomed nodes must cost killed tasks")
	}
}

func TestMalleableShrinksWhenViewDrops(t *testing.T) {
	v := newEnv(20, core.EquiPartitionFilling)
	m := NewMalleable(clock.SimClock{E: v.e}, c0, 2, 1e6, nil)
	v.connect(m, m)
	if err := m.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(5)
	if got := m.ExtraNodes(); got != 18 {
		t.Fatalf("extra = %d, want 18", got)
	}
	// A rigid job takes 10 nodes: the malleable part must shrink to 8.
	r := NewRigid(clock.SimClock{E: v.e}, c0, 10, 500)
	v.connect(r, r)
	if err := r.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(20)
	if !r.Started {
		t.Fatal("rigid job blocked")
	}
	if got := m.ExtraNodes(); got != 8 {
		t.Errorf("extra after revocation = %d, want 8", got)
	}
	if killed, why := m.Killed(); killed {
		t.Fatalf("cooperative malleable app killed: %s", why)
	}
	// When the rigid job ends, the malleable part grows back.
	v.e.Run(600)
	if got := m.ExtraNodes(); got != 18 {
		t.Errorf("extra after rigid ended = %d, want 18 again", got)
	}
}

func TestMoldableReselectsOnViewChange(t *testing.T) {
	// The moldable app picks 2 nodes (only 2 free); when the blocker
	// finishes early, a fresh view triggers re-selection to more nodes.
	v := newEnv(10, core.EquiPartitionFilling)
	blocker := NewRigid(clock.SimClock{E: v.e}, c0, 8, 60)
	v.connect(blocker, blocker)
	if err := blocker.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(2)

	mold := NewMoldable(clock.SimClock{E: v.e}, c0, 10, func(n int) float64 { return 1000 / float64(n) })
	v.connect(mold, mold)
	v.e.Run(5)
	first := mold.ChosenN
	if first == 0 {
		t.Fatal("no initial selection")
	}
	// 1000/2=500s on 2 nodes starting now (end≈505) vs waiting 58s for 10
	// nodes (end≈158): it should have chosen to wait for all 10.
	if first != 10 {
		t.Errorf("initial choice = %d, want 10 (waiting wins)", first)
	}
	v.e.Run(200)
	if !mold.Started {
		t.Fatal("moldable app never started")
	}
	if len(mold.StartIDs) != mold.ChosenN {
		t.Errorf("allocated %d, chose %d", len(mold.StartIDs), mold.ChosenN)
	}
}

func TestPSAZeroAvailability(t *testing.T) {
	// A PSA on a cluster fully held non-preemptibly neither requests nor
	// errors; when resources free up it claims them.
	v := newEnv(6, core.EquiPartitionFilling)
	r := NewRigid(clock.SimClock{E: v.e}, c0, 6, 100)
	v.connect(r, r)
	if err := r.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(5)
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 10})
	v.connect(p, p)
	v.e.Run(50)
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	// Note: the rigid job ends at t=105; with a 10 s task the window
	// [now, 105) may admit tasks for the last stretch, but at t=50 the
	// remaining window is 55 s >= 10 s... the view shows the expiry, so
	// the PSA may legitimately claim. Just require consistency:
	held := p.HeldNodes()
	if held != 0 {
		t.Logf("PSA claimed %d nodes against the job-end window (legitimate)", held)
	}
	v.e.Run(200)
	if got := p.HeldNodes(); got != 6 {
		t.Errorf("after the rigid job ended the PSA should hold all 6, has %d", got)
	}
	if p.Waste() != 0 {
		t.Errorf("waste = %v, want 0", p.Waste())
	}
}

func TestNEAErrOnBadSubmit(t *testing.T) {
	v := newEnv(10, core.EquiPartitionFilling)
	a := NewNEA(clock.SimClock{E: v.e}, NEAConfig{Cluster: c0, Profile: nil, Params: amr.DefaultParams, PreAllocN: 5})
	v.connect(a, a)
	if err := a.Submit(); err == nil {
		t.Error("empty profile should error")
	}
	b := NewNEA(clock.SimClock{E: v.e}, NEAConfig{Cluster: c0, Profile: amr.Profile{1}, Params: amr.DefaultParams})
	v.connect(b, b)
	if err := b.Submit(); err == nil {
		t.Error("zero pre-allocation should error")
	}
	_ = math.Inf(1)
}

func TestPSAShutdownReleasesEverything(t *testing.T) {
	v := newEnv(12, core.EquiPartitionFilling)
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 30})
	v.connect(p, p)
	v.e.Run(100)
	if p.HeldNodes() != 12 {
		t.Fatalf("held = %d", p.HeldNodes())
	}
	done := p.CompletedTasks()
	if done < 12*2 {
		t.Errorf("completed = %d, want >= 24 after 3 task durations", done)
	}
	p.Shutdown()
	v.e.Run(110)
	if p.HeldNodes() != 0 {
		t.Errorf("held after shutdown = %d", p.HeldNodes())
	}
	// A rigid job can immediately take the whole cluster.
	r := NewRigid(clock.SimClock{E: v.e}, c0, 12, 50)
	v.connect(r, r)
	if err := r.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(120)
	if !r.Started {
		t.Error("rigid job blocked after PSA shutdown")
	}
}

func TestPSAOnKillStopsActivity(t *testing.T) {
	v := newEnv(8, core.EquiPartitionFilling)
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 30})
	v.connect(p, p)
	v.e.Run(10)
	p.OnKill("test kill")
	if killed, why := p.Killed(); !killed || why != "test kill" {
		t.Errorf("kill state = %v %q", killed, why)
	}
	// Further view pushes are ignored without panicking.
	p.OnViews(nil, nil)
}
