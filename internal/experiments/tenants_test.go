package experiments

import (
	"reflect"
	"testing"

	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

func tenantsTestConfig(drf bool) TenantsReplayConfig {
	jobs := workload.Synthetic(stats.NewRand(5), workload.SyntheticConfig{
		Jobs: 60, MaxNodes: 12, MeanInterArr: 30, MeanRuntime: 400,
		PowerOfTwoBias: 0.5,
	})
	return TenantsReplayConfig{
		Jobs: jobs, Tenants: 3, Shards: 2, NodesPerShard: 16,
		GuaranteeFrac: 0.5, HotFrac: 0.5, PSATaskDur: 120, DRF: drf,
	}
}

// TestTenantsReplayDRFRecoversGuarantee is the end-to-end DRF demo: the
// identical skewed trace runs under FIFO and under DRF with quota
// preemption. FIFO never preempts (no policy, no victim nomination); DRF
// revokes best-effort allocations when the guaranteed tenant is starved,
// and the guaranteed tenant's tail wait must not get worse for it.
func TestTenantsReplayDRFRecoversGuarantee(t *testing.T) {
	fifo, err := RunTenantsReplay(tenantsTestConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	drf, err := RunTenantsReplay(tenantsTestConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*TenantsReplayResult{"fifo": fifo, "drf": drf} {
		done := 0
		for _, st := range res.Tenants {
			done += st.Completed
		}
		if done != 60 {
			t.Fatalf("%s: completed %d of 60 jobs", name, done)
		}
	}
	if fifo.Preempts != 0 {
		t.Fatalf("FIFO run preempted %d allocations; no policy must mean no revocations", fifo.Preempts)
	}
	if drf.Preempts == 0 {
		t.Fatal("DRF run never preempted; the guarantee-recovery demo is vacuous")
	}
	// Preemption is charged to best-effort tenants only: the guaranteed
	// queue's own allocations are never nominated to relieve itself.
	if drf.Tenants[0].Preempts != 0 {
		t.Fatalf("guaranteed tenant t0 lost %d allocations to quota preemption", drf.Tenants[0].Preempts)
	}
	if drf.Tenants[0].P99Wait > fifo.Tenants[0].P99Wait {
		t.Fatalf("guaranteed tenant p99 wait worsened under DRF: %.1fs vs %.1fs under FIFO",
			drf.Tenants[0].P99Wait, fifo.Tenants[0].P99Wait)
	}

	// Same seed ⇒ byte-identical result, policy active or not.
	again, err := RunTenantsReplay(tenantsTestConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(drf, again) {
		t.Fatalf("same seed diverged under DRF:\nrun1: %+v\nrun2: %+v", drf, again)
	}
}
