// Package obs is the observability substrate: streaming log-bucketed
// latency histograms, a bounded structured event ring, and a registry
// that unifies the repo's scattered counters (core.SchedStats,
// federation.MergeStats, metrics.Counter) behind one Snapshot with
// stable JSON and Prometheus text encodings.
//
// Everything here is designed to stay out of the allocation-lean hot
// paths when observability is disabled: a nil *Registry and a nil
// *Histogram are valid receivers whose recording methods no-op, so call
// sites pay one predictable branch and zero allocations.
package obs

import (
	"math"
	"sync"
)

// Bucket layout: octaves of 2 split into 8 sub-buckets each, so every
// bucket spans a ≤12.5% relative range — p50/p99/p999 come back within
// one bucket width of the exact value while Record stays a fixed-size
// array increment. Octaves cover ~9.3e-10 s .. ~1.1e12 s; values outside
// land in dedicated underflow/overflow buckets and are still exact in
// count/sum/min/max.
const (
	subBits    = 3
	subCount   = 1 << subBits
	minExp     = -30
	maxExp     = 40
	numOctaves = maxExp - minExp
	numBuckets = numOctaves*subCount + 2 // + underflow + overflow
)

// Histogram is a mergeable streaming latency histogram over
// non-negative float64 values (seconds). The zero value is ready to
// use; a nil *Histogram ignores Record calls.
type Histogram struct {
	mu      sync.Mutex
	buckets [numBuckets]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// bucketOf maps a value to its bucket index. Values ≤ 0 (including the
// sub-underflow range) land in bucket 0.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	if exp < minExp {
		return 0
	}
	if exp >= maxExp || math.IsInf(v, 1) {
		return numBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * subCount))
	if sub >= subCount {
		sub = subCount - 1
	}
	return 1 + (exp-minExp)*subCount + sub
}

// bucketMid returns the representative (midpoint) value of bucket b.
func bucketMid(b int) float64 {
	if b <= 0 {
		return 0
	}
	if b >= numBuckets-1 {
		return math.Ldexp(1, maxExp)
	}
	octave := (b - 1) / subCount
	sub := (b - 1) % subCount
	exp := minExp + octave
	// Bucket b spans [2^(exp-1)·(1+sub/subCount), 2^(exp-1)·(1+(sub+1)/subCount)).
	return math.Ldexp(1+(float64(sub)+0.5)/subCount, exp-1)
}

// Record adds one observation. Negative values are clamped to zero
// (latencies can only be non-negative; clock skew must not corrupt the
// sum). Alloc-free; safe for concurrent use; no-op on a nil receiver.
func (h *Histogram) Record(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	b := bucketOf(v)
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Merge folds other into h. Both histograms keep working afterwards.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	other.mu.Lock()
	ob := other.buckets
	oc, os, omin, omax := other.count, other.sum, other.min, other.max
	other.mu.Unlock()
	if oc == 0 {
		return
	}
	h.mu.Lock()
	for i, n := range ob {
		h.buckets[i] += n
	}
	if h.count == 0 || omin < h.min {
		h.min = omin
	}
	if h.count == 0 || omax > h.max {
		h.max = omax
	}
	h.count += oc
	h.sum += os
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the value at quantile q ∈ [0, 1] using the
// nearest-rank definition (rank ⌈q·n⌉), accurate to one bucket width
// (≤12.5% relative). q=0 returns the exact minimum, q=1 the exact
// maximum. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			v := bucketMid(b)
			// The exact extrema bound every bucket estimate.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// HistStat is the exported summary of one histogram, embedded in
// Snapshot. Field order and fixed quantiles keep the JSON encoding
// stable across runs.
type HistStat struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Stat summarizes the histogram under one lock acquisition.
func (h *Histogram) Stat() HistStat {
	if h == nil {
		return HistStat{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistStat{Count: h.count, Sum: h.sum}
	if h.count == 0 {
		return st
	}
	st.Mean = h.sum / float64(h.count)
	st.Min = h.min
	st.Max = h.max
	st.P50 = h.quantileLocked(0.50)
	st.P90 = h.quantileLocked(0.90)
	st.P99 = h.quantileLocked(0.99)
	st.P999 = h.quantileLocked(0.999)
	return st
}
