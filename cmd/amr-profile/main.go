// Command amr-profile explores the AMR application model of §2: it prints
// generated working-set evolutions (Fig. 1), speed-up curves (Fig. 2), and
// the derived per-profile quantities (n_eq, A(e_t), target allocations).
//
// Usage:
//
//	amr-profile -seed 7                 # one profile + its analysis
//	amr-profile -seed 7 -series        # full 1000-step series, gnuplot columns
//	amr-profile -speedup               # model curves for the Fig. 2 sizes
package main

import (
	"flag"
	"fmt"

	"coormv2/internal/amr"
	"coormv2/internal/stats"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "profile seed")
		series  = flag.Bool("series", false, "print the normalized evolution series")
		speedup = flag.Bool("speedup", false, "print speed-up model curves for the Fig. 2 sizes")
		eff     = flag.Float64("eff", 0.75, "target efficiency for the analysis")
	)
	flag.Parse()

	p := amr.DefaultParams
	if *speedup {
		fmt.Println("# nodes  then one step-duration column per mesh size (GiB):")
		fmt.Print("# nodes")
		for _, s := range amr.Fig2Sizes {
			fmt.Printf("  %gGiB", s/1024)
		}
		fmt.Println()
		for _, n := range amr.Fig2Nodes {
			fmt.Printf("%7d", n)
			for _, s := range amr.Fig2Sizes {
				fmt.Printf("  %8.3f", p.StepTime(n, s))
			}
			fmt.Println()
		}
		return
	}

	pr := amr.GenerateProfile(stats.NewRand(*seed), amr.ProfileSteps, amr.DefaultSmax)
	if *series {
		fmt.Println("# step  normalized-size(0-1000)")
		for i, s := range pr {
			fmt.Printf("%4d  %8.2f\n", i, s/amr.DefaultSmax*1000)
		}
		return
	}

	neq, relErr := p.EquivalentStatic(pr, *eff)
	fmt.Printf("profile seed %d (%d steps, S_max = %.0f MiB = %.2f TiB)\n",
		*seed, len(pr), amr.DefaultSmax, amr.DefaultSmax/1024/1024)
	fmt.Printf("target efficiency:        %.0f%%\n", 100**eff)
	fmt.Printf("dynamic area A(e_t):      %.4g node·s\n", p.DynamicArea(pr, *eff))
	fmt.Printf("dynamic end-time:         %.0f s\n", p.DynamicEndTime(pr, *eff))
	fmt.Printf("equivalent static n_eq:   %d nodes (area error %.4f%%)\n", neq, 100*relErr)
	fmt.Printf("static end-time (n_eq):   %.0f s (+%.2f%%)\n",
		p.StaticEndTime(pr, neq), 100*p.EndTimeIncrease(pr, *eff))
	fmt.Printf("peak target allocation:   %d nodes\n", p.NodesForEfficiency(pr.Max(), *eff))
	choice := p.StaticChoiceRange(pr, *eff, amr.DefaultNodeMemoryMiB, 1)
	fmt.Printf("static choice band:       [%d, %d] nodes (memory floor @ %d MiB/node, 110%% area ceiling)\n",
		choice.MinNodes, choice.MaxNodes, int(amr.DefaultNodeMemoryMiB))
}
