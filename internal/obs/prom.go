package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promName sanitizes a registry name into a Prometheus metric name:
// lower-cased "coorm_" prefix with every non-[a-zA-Z0-9_] rune folded
// to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("coorm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as counters, histograms
// as summaries with fixed quantiles plus _min/_max gauges. Output order
// is deterministic (sorted by metric name).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		st := s.Histograms[k]
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, qv := range [...]struct {
			q string
			v float64
		}{{"0.5", st.P50}, {"0.9", st.P90}, {"0.99", st.P99}, {"0.999", st.P999}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, qv.q, promFloat(qv.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n%s_min %s\n%s_max %s\n",
			name, promFloat(st.Sum), name, st.Count,
			name, promFloat(st.Min), name, promFloat(st.Max)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE coorm_events_total counter\ncoorm_events_total %d\n", s.EventsTotal)
	return err
}
