package rms

import (
	"fmt"
	"sort"
)

// debugPoolPanics restores the historical fail-stop behaviour of the node-ID
// pools: accounting violations (double free, out-of-range ID) panic instead
// of surfacing as structured errors. Tests enable it to turn silent
// degradation into loud failures; production leaves it off so a buggy done()
// under node churn degrades gracefully instead of crashing the daemon.
var debugPoolPanics = false

// SetPoolDebugPanics toggles fail-stop pool accounting. It is not
// synchronized: set it before creating servers (tests do this in TestMain or
// at the top of a sequential test).
//
// Deprecated: prefer Config.PoolDebugPanics / WithPoolDebugPanics, which
// set the same switch at server construction. This global setter is kept
// for tests toggling it mid-process.
func SetPoolDebugPanics(on bool) { debugPoolPanics = on }

// poolError reports a node-ID pool accounting violation. The server boundary
// converts it into a *RequestError quoting the offending request so routing
// layers can translate the ID.
type poolError struct {
	node   int
	reason string // completes "released node %d %s request %d"
}

func (e *poolError) Error() string {
	return fmt.Sprintf("idPool: node %d %s", e.node, e.reason)
}

// idPool hands out node IDs for one cluster. IDs are integers 0..size-1;
// allocation returns the lowest free IDs, which keeps simulated traces
// stable and readable.
//
// Node-level fault injection partitions the ID space three ways: free IDs
// (allocatable), held IDs (owned by started requests; tracked by the
// requests themselves), and failed IDs (machines that are down). The
// accounting invariant, checked by Server.CheckInvariants, is
//
//	len(freeIDs) + held + len(failed) == size
//
// i.e. the pool's effective capacity is size − len(failed).
type idPool struct {
	freeIDs []int // sorted ascending
	failed  []int // sorted ascending; node IDs currently down
	size    int
}

func newIDPool(n int) *idPool {
	p := &idPool{size: n, freeIDs: make([]int, n)}
	for i := range p.freeIDs {
		p.freeIDs[i] = i
	}
	return p
}

// available returns the number of free (allocatable) node IDs.
func (p *idPool) available() int { return len(p.freeIDs) }

// capacity returns the number of working nodes: size minus failed nodes.
func (p *idPool) capacity() int { return p.size - len(p.failed) }

// failedIDs returns the failed node IDs in ascending order (a copy).
func (p *idPool) failedIDs() []int {
	if len(p.failed) == 0 {
		return nil
	}
	return append([]int(nil), p.failed...)
}

// isFailed reports whether node id is currently down.
func (p *idPool) isFailed(id int) bool {
	i := sort.SearchInts(p.failed, id)
	return i < len(p.failed) && p.failed[i] == id
}

// isFree reports whether node id is currently in the free list.
func (p *idPool) isFree(id int) bool {
	i := sort.SearchInts(p.freeIDs, id)
	return i < len(p.freeIDs) && p.freeIDs[i] == id
}

// alloc removes and returns the k lowest free IDs. It panics if k exceeds
// availability: callers must check available() first (the RMS defers starts
// instead of over-allocating).
func (p *idPool) alloc(k int) []int {
	if k < 0 || k > len(p.freeIDs) {
		panic(fmt.Sprintf("idPool: alloc(%d) with %d available", k, len(p.freeIDs)))
	}
	out := append([]int(nil), p.freeIDs[:k]...)
	p.freeIDs = append(p.freeIDs[:0], p.freeIDs[k:]...)
	return out
}

// free returns IDs to the pool. Freeing an ID twice, an out-of-range ID, or
// a failed (down) ID indicates RMS state corruption; free validates the
// whole batch before mutating anything, so on error the pool is unchanged
// and the operation can be rejected at the server boundary as a
// *RequestError. With SetPoolDebugPanics(true) violations panic instead.
func (p *idPool) free(ids []int) error {
	for i, id := range ids {
		var e *poolError
		switch {
		case id < 0 || id >= p.size:
			e = &poolError{node: id, reason: "is out of range for"}
		case p.isFree(id):
			e = &poolError{node: id, reason: "was already free when released by"}
		case p.isFailed(id):
			e = &poolError{node: id, reason: "is down and cannot be released by"}
		case containsInt(ids[:i], id):
			e = &poolError{node: id, reason: "was released twice by"}
		}
		if e != nil {
			if debugPoolPanics {
				panic(e.Error())
			}
			return e
		}
	}
	for _, id := range ids {
		i := sort.SearchInts(p.freeIDs, id)
		p.freeIDs = append(p.freeIDs, 0)
		copy(p.freeIDs[i+1:], p.freeIDs[i:])
		p.freeIDs[i] = id
	}
	return nil
}

// fail marks node id as down. It reports whether the node was free (and has
// been removed from the free list); a non-free, non-failed node is held by
// some request and the caller must strip it from the holder — the ID is
// accounted to the failed set either way. Failing an out-of-range or
// already-failed node returns an error and leaves the pool unchanged.
func (p *idPool) fail(id int) (wasFree bool, err error) {
	if id < 0 || id >= p.size {
		e := &poolError{node: id, reason: "is out of range for"}
		if debugPoolPanics {
			panic(e.Error())
		}
		return false, e
	}
	if p.isFailed(id) {
		e := &poolError{node: id, reason: "is already down for"}
		if debugPoolPanics {
			panic(e.Error())
		}
		return false, e
	}
	if i := sort.SearchInts(p.freeIDs, id); i < len(p.freeIDs) && p.freeIDs[i] == id {
		p.freeIDs = append(p.freeIDs[:i], p.freeIDs[i+1:]...)
		wasFree = true
	}
	i := sort.SearchInts(p.failed, id)
	p.failed = append(p.failed, 0)
	copy(p.failed[i+1:], p.failed[i:])
	p.failed[i] = id
	return wasFree, nil
}

// recover marks a failed node as working again and returns its ID to the
// free list. Recovering a node that is not down returns an error and leaves
// the pool unchanged.
func (p *idPool) recover(id int) error {
	i := sort.SearchInts(p.failed, id)
	if i >= len(p.failed) || p.failed[i] != id {
		e := &poolError{node: id, reason: "is not down; cannot recover for"}
		if debugPoolPanics {
			panic(e.Error())
		}
		return e
	}
	p.failed = append(p.failed[:i], p.failed[i+1:]...)
	j := sort.SearchInts(p.freeIDs, id)
	p.freeIDs = append(p.freeIDs, 0)
	copy(p.freeIDs[j+1:], p.freeIDs[j:])
	p.freeIDs[j] = id
	return nil
}
