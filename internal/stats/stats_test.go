package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMean(t *testing.T) {
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Errorf("Mean([1..4]) = %v, want 2.5", Mean([]float64{1, 2, 3, 4}))
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !almostEq(Mean([]float64{-5}), -5, 0) {
		t.Error("Mean of singleton")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{7}, 7},
		{[]float64{1, 1, 1, 9}, 1},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	_ = Median(in)
	want := []float64{5, 1, 4, 2, 3}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("Median mutated input: %v", in)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("P25 = %v", got)
	}
	if got := Percentile(xs, 10); !almostEq(got, 14, 1e-9) {
		t.Errorf("P10 = %v, want 14 (interpolated)", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %v", Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, 4}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 4, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLinearGeneral(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x=2, y=1
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-9) || !almostEq(x[1], 1, 1e-9) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Leading zero forces a pivot swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{7, 9}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 9, 1e-12) || !almostEq(x[1], 7, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != -1 || b[0] != 5 {
		t.Error("SolveLinear mutated its inputs")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// y = 3*x1 + 2*x2 exactly determined by 2 independent rows plus one
	// redundant row.
	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	y := []float64{3, 2, 5}
	beta, err := SolveLeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 3, 1e-9) || !almostEq(beta[1], 2, 1e-9) {
		t.Errorf("beta = %v", beta)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit a line y = a + b*x through noisy points; least squares of
	// symmetric residuals recovers the underlying slope exactly.
	rows := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{0.1, 0.9, 2.1, 2.9} // around y = x
	beta, err := SolveLeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 0, 0.1) || !almostEq(beta[1], 1, 0.1) {
		t.Errorf("beta = %v, want ~[0 1]", beta)
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	if _, err := SolveLeastSquares(nil, nil); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := SolveLeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("want error for mismatched rows/targets")
	}
	if _, err := SolveLeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("want error for ragged rows")
	}
}

func TestSolveLeastSquaresRecoversSpeedupForm(t *testing.T) {
	// The exact use-case of Fig. 2: t = A*S/n + B*n + C*S + D.
	A, B, C, D := 7.26e-3, 1.23e-4, 1.13e-6, 1.38
	var rows [][]float64
	var y []float64
	for _, n := range []float64{1, 4, 16, 64, 256, 1024} {
		for _, S := range []float64{12288, 49152, 200704, 802816} {
			rows = append(rows, []float64{S / n, n, S, 1})
			y = append(y, A*S/n+B*n+C*S+D)
		}
	}
	beta, err := SolveLeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{A, B, C, D} {
		if math.Abs(beta[i]-want)/want > 1e-6 {
			t.Errorf("param %d: got %v want %v", i, beta[i], want)
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 11)
	if len(xs) != 11 || xs[0] != 0 || xs[10] != 10 || xs[5] != 5 {
		t.Errorf("Linspace = %v", xs)
	}
}

func TestLogspace(t *testing.T) {
	xs := Logspace(1, 100, 3)
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 100 || !almostEq(xs[1], 10, 1e-9) {
		t.Errorf("Logspace = %v", xs)
	}
}

func TestLogspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Logspace should panic on non-positive bounds")
		}
	}()
	Logspace(0, 10, 3)
}
