package transport

import (
	"math"
	"sync"
	"testing"
	"time"

	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

const c0 = view.ClusterID("c0")

// clientApp collects notifications with synchronization helpers.
type clientApp struct {
	mu     sync.Mutex
	views  int
	starts map[request.ID][]int
	killed string
	cond   *sync.Cond
}

func newClientApp() *clientApp {
	a := &clientApp{starts: make(map[request.ID][]int)}
	a.cond = sync.NewCond(&a.mu)
	return a
}

func (a *clientApp) OnViews(np, p view.View) {
	a.mu.Lock()
	a.views++
	a.cond.Broadcast()
	a.mu.Unlock()
}

func (a *clientApp) OnStart(id request.ID, ids []int) {
	a.mu.Lock()
	a.starts[id] = ids
	a.cond.Broadcast()
	a.mu.Unlock()
}

func (a *clientApp) OnKill(reason string) {
	a.mu.Lock()
	a.killed = reason
	a.cond.Broadcast()
	a.mu.Unlock()
}

// waitFor polls until pred (evaluated under the lock) is true or the
// deadline expires.
func (a *clientApp) waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		ok := pred()
		a.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	r := rms.NewServer(rms.Config{
		Clusters:        map[view.ClusterID]int{c0: 16},
		ReschedInterval: 0.01, // fast rounds for the test
		Clock:           clock.NewRealClock(),
	})
	srv := NewServer(r)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr
}

func TestHandshakeAndViews(t *testing.T) {
	_, addr := startServer(t)
	app := newClientApp()
	c, err := Dial(addr, app)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.AppID() == 0 {
		t.Error("no app ID assigned")
	}
	app.waitFor(t, "initial views", func() bool { return app.views > 0 })
}

func TestRequestStartDoneOverTCP(t *testing.T) {
	_, addr := startServer(t)
	app := newClientApp()
	c, err := Dial(addr, app)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.Request(rms.RequestSpec{Cluster: c0, N: 4, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	app.waitFor(t, "start notification", func() bool { _, ok := app.starts[id]; return ok })
	app.mu.Lock()
	ids := app.starts[id]
	app.mu.Unlock()
	if len(ids) != 4 {
		t.Errorf("node IDs = %v, want 4", ids)
	}
	if err := c.Done(id, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRequestErrorsPropagate(t *testing.T) {
	_, addr := startServer(t)
	app := newClientApp()
	c, err := Dial(addr, app)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Request(rms.RequestSpec{Cluster: "bogus", N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("unknown cluster should error over the wire")
	}
	if err := c.Done(12345, nil); err == nil {
		t.Error("bogus done should error over the wire")
	}
	// The session survives errors.
	if _, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 10, Type: request.NonPreempt}); err != nil {
		t.Errorf("session broken after error: %v", err)
	}
}

func TestTwoClientsShareCluster(t *testing.T) {
	_, addr := startServer(t)
	a, b := newClientApp(), newClientApp()
	ca, err := Dial(addr, a)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial(addr, b)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	ida, err := ca.Request(rms.RequestSpec{Cluster: c0, N: 10, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	a.waitFor(t, "client A start", func() bool { _, ok := a.starts[ida]; return ok })

	idb, err := cb.Request(rms.RequestSpec{Cluster: c0, N: 6, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	b.waitFor(t, "client B start", func() bool { _, ok := b.starts[idb]; return ok })

	// 16 nodes total: the two allocations must not overlap.
	a.mu.Lock()
	idsA := a.starts[ida]
	a.mu.Unlock()
	b.mu.Lock()
	idsB := b.starts[idb]
	b.mu.Unlock()
	seen := map[int]bool{}
	for _, id := range idsA {
		seen[id] = true
	}
	for _, id := range idsB {
		if seen[id] {
			t.Fatalf("node %d allocated twice (A=%v B=%v)", id, idsA, idsB)
		}
	}
}

func TestPreemptibleInfiniteDurationOverTCP(t *testing.T) {
	_, addr := startServer(t)
	app := newClientApp()
	c, err := Dial(addr, app)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Request(rms.RequestSpec{Cluster: c0, N: 16, Duration: math.Inf(1), Type: request.Preempt})
	if err != nil {
		t.Fatal(err)
	}
	app.waitFor(t, "preemptible start", func() bool { _, ok := app.starts[id]; return ok })
}

func TestKillDeliveredOverTCP(t *testing.T) {
	// A client that ignores preemption signals is killed; the kill frame
	// must reach it and subsequent calls must fail.
	r := rms.NewServer(rms.Config{
		Clusters:        map[view.ClusterID]int{c0: 8},
		ReschedInterval: 0.01,
		GracePeriod:     0.05,
		Clock:           clock.NewRealClock(),
	})
	srv := NewServer(r)
	srv.Logf = func(string, ...any) {}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	stealer := newClientApp() // never reacts to views
	cs, err := Dial(addr, stealer)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	_, err = cs.Request(rms.RequestSpec{Cluster: c0, N: 8, Duration: math.Inf(1), Type: request.Preempt})
	if err != nil {
		t.Fatal(err)
	}
	stealer.waitFor(t, "stealer start", func() bool { return len(stealer.starts) == 1 })

	victim := newClientApp()
	cv, err := Dial(addr, victim)
	if err != nil {
		t.Fatal(err)
	}
	defer cv.Close()
	if _, err := cv.Request(rms.RequestSpec{Cluster: c0, N: 4, Duration: 60, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}

	stealer.waitFor(t, "kill frame", func() bool { return stealer.killed != "" })
	victim.waitFor(t, "victim start after kill", func() bool { return len(victim.starts) == 1 })

	if _, err := cs.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("requests on a killed session should fail")
	}
}

func TestCleanDisconnectFreesResources(t *testing.T) {
	srv, addr := startServer(t)
	app := newClientApp()
	c, err := Dial(addr, app)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Request(rms.RequestSpec{Cluster: c0, N: 8, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	app.waitFor(t, "start", func() bool { _, ok := app.starts[id]; return ok })
	c.Close()

	// A second client can now get everything.
	app2 := newClientApp()
	c2, err := Dial(addr, app2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	id2, err := c2.Request(rms.RequestSpec{Cluster: c0, N: 16, Duration: 3600, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	app2.waitFor(t, "full-cluster start", func() bool { _, ok := app2.starts[id2]; return ok })
	_ = srv
}
