package core

import (
	"math"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

// mkApp builds an AppState with a single preemptible request of n nodes
// (infinite duration), optionally already started.
func mkPApp(id, n int, started bool) *AppState {
	a := NewAppState(id, float64(id))
	if n > 0 {
		r := request.New(request.ID(id*100), id, "c0", n, math.Inf(1), request.Preempt, request.Free, nil)
		if started {
			r.StartedAt = 0
		}
		a.P.Add(r)
	}
	return a
}

func TestEqScheduleSingleAppGetsEverything(t *testing.T) {
	a := mkPApp(1, 10, true)
	vin := view.Constant(10, "c0")
	views := eqSchedule([]*AppState{a}, vin, 0, EquiPartitionFilling)
	if got := views[1].Get("c0").Value(0); got != 10 {
		t.Errorf("single app view = %d, want 10", got)
	}
	if a.P.All()[0].NAlloc != 10 {
		t.Errorf("NAlloc = %d, want 10", a.P.All()[0].NAlloc)
	}
}

func TestEqScheduleCongestedEquiPartition(t *testing.T) {
	// Two apps both wanting everything: each gets half.
	a := mkPApp(1, 10, true)
	b := mkPApp(2, 10, true)
	vin := view.Constant(10, "c0")
	views := eqSchedule([]*AppState{a, b}, vin, 0, EquiPartitionFilling)
	if got := views[1].Get("c0").Value(0); got != 5 {
		t.Errorf("app1 view = %d, want 5", got)
	}
	if got := views[2].Get("c0").Value(0); got != 5 {
		t.Errorf("app2 view = %d, want 5", got)
	}
}

func TestEqScheduleFillingUncongested(t *testing.T) {
	// App1 requests only 2 of 10; app2 requests 8. Uncongested (2+8=10).
	// Filling: app2 sees everything app1 leaves unused (8), app1 sees 2
	// left by app2... but never below its equi-partition (5).
	a := mkPApp(1, 2, true)
	b := mkPApp(2, 8, true)
	vin := view.Constant(10, "c0")
	views := eqSchedule([]*AppState{a, b}, vin, 0, EquiPartitionFilling)
	if got := views[1].Get("c0").Value(0); got != 5 {
		t.Errorf("app1 view = %d, want 5 (its equi-partition floor)", got)
	}
	if got := views[2].Get("c0").Value(0); got != 8 {
		t.Errorf("app2 view = %d, want 8 (fills app1's leftovers)", got)
	}
}

func TestEqScheduleStrict(t *testing.T) {
	// Strict equi-partitioning (§5.4 baseline): views are the fair share no
	// matter what the other application requests.
	a := mkPApp(1, 2, true)
	b := mkPApp(2, 8, true)
	vin := view.Constant(10, "c0")
	views := eqSchedule([]*AppState{a, b}, vin, 0, StrictEquiPartition)
	if got := views[1].Get("c0").Value(0); got != 5 {
		t.Errorf("strict app1 view = %d, want 5", got)
	}
	if got := views[2].Get("c0").Value(0); got != 5 {
		t.Errorf("strict app2 view = %d, want 5 (may NOT fill)", got)
	}
	// The 8-node request is shrunk to the partition.
	if got := b.P.All()[0].NAlloc; got != 5 {
		t.Errorf("strict NAlloc = %d, want 5", got)
	}
}

func TestEqScheduleInactiveAppSeesHypotheticalShare(t *testing.T) {
	// One active app using everything, one inactive app. The inactive app's
	// view uses active+1 partitions (Alg. 3 lines 22–23): 10/2 = 5.
	a := mkPApp(1, 10, true)
	b := mkPApp(2, 0, false) // no preemptible requests
	vin := view.Constant(10, "c0")
	views := eqSchedule([]*AppState{a, b}, vin, 0, EquiPartitionFilling)
	if got := views[1].Get("c0").Value(0); got != 10 {
		t.Errorf("active app view = %d, want 10 (no competition yet)", got)
	}
	if got := views[2].Get("c0").Value(0); got != 5 {
		t.Errorf("inactive app view = %d, want 5 (hypothetical share)", got)
	}
}

func TestEqScheduleNoAppsNoViews(t *testing.T) {
	views := eqSchedule(nil, view.Constant(4, "c0"), 0, EquiPartitionFilling)
	if len(views) != 0 {
		t.Error("no apps should yield no views")
	}
}

func TestEqScheduleTimeVaryingAvailability(t *testing.T) {
	// Availability drops from 10 to 4 at t=100 (e.g. an announced
	// non-preemptible allocation). Both views must show the future drop.
	a := mkPApp(1, 10, true)
	vin := view.New().AddRect("c0", 0, 100, 10).AddRect("c0", 100, math.Inf(1), 4)
	views := eqSchedule([]*AppState{a}, vin, 0, EquiPartitionFilling)
	f := views[1].Get("c0")
	if f.Value(50) != 10 || f.Value(150) != 4 {
		t.Errorf("time-varying view wrong: %v", f)
	}
	// The entitlement (NAlloc) is the *current* availability; the future
	// drop is signalled through the view and becomes binding only when the
	// drop time arrives (§3.1.4 "either immediately or at a future time").
	if got := a.P.All()[0].NAlloc; got != 10 {
		t.Errorf("NAlloc = %d, want 10 (instantaneous entitlement)", got)
	}
	views2 := eqSchedule([]*AppState{a}, vin, 150, EquiPartitionFilling)
	if got := a.P.All()[0].NAlloc; got != 4 {
		t.Errorf("NAlloc after the drop = %d, want 4", got)
	}
	_ = views2
}

func TestEqScheduleThreeWaySplitWithRemainder(t *testing.T) {
	// 10 nodes, 3 hungry apps: water-filling grants 4/3/3 or 3/3/4 etc.;
	// total exactly 10, each at least 3.
	apps := []*AppState{mkPApp(1, 10, true), mkPApp(2, 10, true), mkPApp(3, 10, true)}
	vin := view.Constant(10, "c0")
	views := eqSchedule(apps, vin, 0, EquiPartitionFilling)
	total := 0
	for id := 1; id <= 3; id++ {
		v := views[id].Get("c0").Value(0)
		if v < 3 {
			t.Errorf("app%d got %d, want >= 3", id, v)
		}
		total += v
	}
	if total != 10 {
		t.Errorf("granted total = %d, want 10 (no over/under subscription)", total)
	}
}

func TestEqScheduleViewsNeverExceedAvailability(t *testing.T) {
	// Sum of *granted* allocations (NAlloc) must never exceed availability,
	// under both policies, across several request mixes.
	for _, policy := range []PreemptPolicy{EquiPartitionFilling, StrictEquiPartition} {
		for _, mix := range [][]int{{1, 1}, {10, 10}, {3, 9}, {0, 7}, {2, 2, 2, 9}} {
			var apps []*AppState
			for i, n := range mix {
				apps = append(apps, mkPApp(i+1, n, true))
			}
			vin := view.Constant(8, "c0")
			eqSchedule(apps, vin, 0, policy)
			total := 0
			for _, a := range apps {
				for _, r := range a.P.All() {
					total += r.NAlloc
				}
			}
			if total > 8 {
				t.Errorf("policy %v mix %v: granted %d > 8 available", policy, mix, total)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if EquiPartitionFilling.String() != "equi-partition-filling" {
		t.Error("policy string")
	}
	if StrictEquiPartition.String() != "strict-equi-partition" {
		t.Error("policy string")
	}
}
