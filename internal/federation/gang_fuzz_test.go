package federation

import (
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// FuzzGangReservations drives the reservation state machine through random
// interleavings of hold placement (cross-shard related requests), commits
// (time advancing past alignment), aborts (squatted clusters), done(),
// shard crashes and restarts, and cluster migrations — under both recovery
// policies — and asserts the federation invariants after every step: no
// leaked holds, no half-committed gangs, no dangling ID mappings. Request
// and migration errors are legal outcomes (killed sessions, down shards,
// last clusters); invariant violations and panics are the only failures.
func FuzzGangReservations(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x23, 0x31, 0x41, 0x65})
	f.Add([]byte{0x01, 0x12, 0x24, 0x30, 0x40, 0x52, 0x61})
	f.Add([]byte{0x02, 0x13, 0x13, 0x25, 0x33, 0x43, 0x50, 0x67, 0x21})
	f.Add([]byte{0x03, 0x11, 0x26, 0x32, 0x62, 0x42, 0x14, 0x29})

	clusterIDs := []view.ClusterID{cA, cB, cC}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		if len(data) == 0 {
			return
		}
		pol := KillOnCrash
		if data[0]&1 == 1 {
			pol = RequeueOnCrash
		}
		data = data[1:]

		e := sim.NewEngine()
		fed := New(Config{
			Clusters:          map[view.ClusterID]int{cA: 6, cB: 6, cC: 6},
			Shards:            2,
			ReschedInterval:   1,
			Clock:             clock.SimClock{E: e},
			Recovery:          pol,
			FederationMetrics: metrics.NewRecorder(),
			Metrics:           func(int) *metrics.Recorder { return metrics.NewRecorder() },
		})
		sessions := []*Session{fed.Connect(&testApp{}), fed.Connect(&testApp{})}
		var ids []request.ID // successfully submitted requests, any session

		check := func(op int) {
			if err := fed.CheckInvariants(); err != nil {
				t.Fatalf("after op %d: %v", op, err)
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]>>4, data[i+1]
			sess := sessions[int(data[i]&0x0f)%len(sessions)]
			switch op % 8 {
			case 0: // plain request
				dur := float64(1 + arg%40)
				if arg%16 == 0 {
					dur = math.Inf(1)
				}
				if id, err := sess.Request(rms.RequestSpec{
					Cluster: clusterIDs[int(arg)%len(clusterIDs)],
					N:       1 + int(arg%4), Duration: dur, Type: request.NonPreempt,
				}); err == nil {
					ids = append(ids, id)
				}
			case 1: // related request — cross-shard parents start a gang
				if len(ids) == 0 {
					continue
				}
				how := request.Next
				if arg&1 == 1 {
					how = request.Coalloc
				}
				if id, err := sess.Request(rms.RequestSpec{
					Cluster: clusterIDs[int(arg>>1)%len(clusterIDs)],
					N:       1 + int(arg%3), Duration: float64(1 + arg%20), Type: request.NonPreempt,
					RelatedHow: how, RelatedTo: ids[int(arg)%len(ids)],
				}); err == nil {
					ids = append(ids, id)
				}
			case 2: // done on a random known request
				if len(ids) > 0 {
					_ = sess.Done(ids[int(arg)%len(ids)], nil)
				}
			case 3: // crash a shard
				fed.CrashShard(int(arg) % fed.NumShards())
			case 4: // restart a shard
				fed.RestartShard(int(arg) % fed.NumShards())
			case 5: // migrate a cluster (errors — down/last/same-shard — are fine)
				_, _ = fed.MigrateCluster(clusterIDs[int(arg)%len(clusterIDs)], int(arg>>4)%fed.NumShards())
			case 6: // let timers, alignment, and backoff fire
				e.Run(e.Now() + float64(arg%16))
			case 7: // reconnect a fresh session in a killed slot
				slot := int(arg) % len(sessions)
				sessions[slot] = fed.Connect(&testApp{})
			}
			check(i)
			e.Run(e.Now() + 1)
			check(i)
		}
		// Drain far enough for every pending gang to commit or abort, then
		// re-check: nothing may leak once the machinery settles.
		e.Run(e.Now() + 500)
		check(len(data))
	})
}
