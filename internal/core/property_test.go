package core

import (
	"math"
	"math/rand"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// TestPropScheduleNeverOversubscribes drives the pure scheduler with random
// request populations and asserts, at every scheduling round, that the
// total scheduled load never exceeds capacity at any time: sum over all
// scheduled/started pre-allocations and non-preemptible requests of their
// rectangles, plus all preemptible NAllocs, stays within the cluster. This
// is the safety property behind the paper's guarantee semantics.
func TestPropScheduleNeverOversubscribes(t *testing.T) {
	const capacity = 16
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(map[view.ClusterID]int{c0: capacity})
		var reqID request.ID = 1
		now := 0.0

		// A pool of apps; each owns at most one PA chain and one P request.
		type appRef struct {
			st *AppState
			pa *request.Request
			np *request.Request
			p  *request.Request
		}
		var apps []*appRef
		for i := 0; i < 4; i++ {
			apps = append(apps, &appRef{st: s.AddApp(i+1, float64(i))})
		}

		for round := 0; round < 60; round++ {
			now += rng.Float64() * 20
			a := apps[rng.Intn(len(apps))]
			s.MarkAppDirty(a.st.ID) // the driver mutates request state below
			switch rng.Intn(4) {
			case 0:
				if a.pa == nil {
					n := 1 + rng.Intn(8)
					a.pa = request.New(reqID, a.st.ID, c0, n, 50+rng.Float64()*150, request.PreAlloc, request.Free, nil)
					reqID++
					a.st.PA.Add(a.pa)
					a.np = request.New(reqID, a.st.ID, c0, 1+rng.Intn(n), 40+rng.Float64()*100, request.NonPreempt, request.Coalloc, a.pa)
					reqID++
					a.st.NP.Add(a.np)
				}
			case 1:
				if a.p == nil {
					a.p = request.New(reqID, a.st.ID, c0, 1+rng.Intn(10), math.Inf(1), request.Preempt, request.Free, nil)
					reqID++
					a.st.P.Add(a.p)
				}
			case 2: // finish chains that ended
				if a.pa != nil && a.pa.Ended(now) {
					a.st.PA.GC(now, nil)
					a.st.NP.GC(now, nil)
					a.pa, a.np = nil, nil
				}
			case 3:
				if a.p != nil && rng.Intn(2) == 0 {
					a.p.Finished = true
					a.st.P.GC(now, nil)
					a.p = nil
				}
			}

			out := s.Schedule(now)

			// Start whatever the scheduler says (idealized RMS: IDs exist
			// whenever NAlloc fits, which is what we are verifying).
			for _, r := range out.ToStart {
				r.StartedAt = now
				s.MarkAppDirty(r.AppID)
			}

			// Reconstruct per-app reservation and allocation profiles.
			// Three safety properties follow:
			//   (a) Σ pre-allocations(T) ≤ capacity for all T —
			//       reservations are promises and must always fit;
			//   (b) Σ non-preemptible(T) ≤ capacity for all T —
			//       these allocations are never revoked;
			//   (c) Σ_app [PA(T) + max(¬P(T) − PA(T), 0)] ≤ capacity —
			//       each application's guaranteed demand is its
			//       reservation plus whatever it holds beyond it (exact
			//       for this driver, where every ¬P chain hangs off the
			//       application's single PA);
			//   (d) at the current instant, all non-preemptible holdings
			//       plus the preemptible grants fit (grants are
			//       instantaneous entitlements; the RMS revokes them
			//       before any future guaranteed allocation starts).
			paSum := stepfunc.Zero()
			npSum := stepfunc.Zero()
			combined := stepfunc.Zero()
			physNow := 0
			live := func(r *request.Request) bool {
				if math.IsInf(r.ScheduledAt, 1) {
					return false
				}
				if !r.Started() && r.ScheduledAt < now {
					return false // stale pending schedule, will be redone
				}
				return true
			}
			for _, st := range s.Apps() {
				appPA := stepfunc.Zero()
				appNP := stepfunc.Zero()
				for _, r := range st.Requests() {
					if !live(r) {
						continue
					}
					switch r.Type {
					case request.PreAlloc:
						appPA = appPA.AddRect(r.ScheduledAt, r.Duration, r.N)
					case request.NonPreempt:
						appNP = appNP.AddRect(r.ScheduledAt, r.Duration, r.N)
						if r.ScheduledAt <= now && now < r.End() {
							physNow += r.N
						}
					case request.Preempt:
						if r.ScheduledAt <= now && now < r.End() {
							physNow += r.NAlloc
						}
					}
				}
				paSum = paSum.Add(appPA)
				npSum = npSum.Add(appNP)
				combined = combined.Add(appPA.Add(appNP.Sub(appPA).ClampMin(0)))
			}
			if max := paSum.MaxValue(); max > capacity {
				t.Fatalf("seed %d round %d (t=%.1f): pre-allocations %d > capacity %d",
					seed, round, now, max, capacity)
			}
			if max := npSum.MaxValue(); max > capacity {
				t.Fatalf("seed %d round %d (t=%.1f): non-preemptible load %d > capacity %d",
					seed, round, now, max, capacity)
			}
			if max := combined.MaxValue(); max > capacity {
				t.Fatalf("seed %d round %d (t=%.1f): guaranteed demand %d > capacity %d",
					seed, round, now, max, capacity)
			}
			if physNow > capacity {
				t.Fatalf("seed %d round %d (t=%.1f): instantaneous physical load %d > capacity %d",
					seed, round, now, physNow, capacity)
			}

			// Views handed to applications are never negative.
			for id, v := range out.NonPreemptViews {
				if !v.NonNegative() {
					t.Fatalf("seed %d: negative non-preemptive view for app %d: %v", seed, id, v)
				}
			}
			for id, v := range out.PreemptViews {
				if !v.NonNegative() {
					t.Fatalf("seed %d: negative preemptive view for app %d: %v", seed, id, v)
				}
			}
		}
	}
}

// TestPropPreemptibleViewsRespectCapacity: the sum of all preemptive-view
// *grants* (NAlloc of active preemptible requests) can never exceed what is
// left after non-preemptible load, at the current instant.
func TestPropPreemptibleGrantsFit(t *testing.T) {
	const capacity = 12
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed * 7))
		s := NewScheduler(map[view.ClusterID]int{c0: capacity})
		var reqID request.ID = 1
		for i := 0; i < 3; i++ {
			a := s.AddApp(i+1, float64(i))
			// Started non-preemptible load.
			n := 1 + rng.Intn(3)
			np := request.New(reqID, a.ID, c0, n, 500, request.NonPreempt, request.Free, nil)
			reqID++
			np.StartedAt = 0
			np.Wrapped = true
			a.NP.Add(np)
			// A hungry preemptible request.
			p := request.New(reqID, a.ID, c0, capacity, math.Inf(1), request.Preempt, request.Free, nil)
			reqID++
			p.StartedAt = 0
			a.P.Add(p)
		}
		s.Schedule(1)

		npLoad, grants := 0, 0
		for _, a := range s.Apps() {
			for _, r := range a.NP.All() {
				npLoad += r.NAlloc
			}
			for _, r := range a.P.All() {
				grants += r.NAlloc
			}
		}
		if npLoad+grants > capacity {
			t.Fatalf("seed %d: ¬P %d + preemptible grants %d > %d", seed, npLoad, grants, capacity)
		}
	}
}
