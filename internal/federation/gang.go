package federation

import (
	"math"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Cross-shard gang scheduling: two-phase reservations.
//
// When a request relates (NEXT/COALLOC) to a request living on another
// shard, no single rms.Server can place both legs — the relation would have
// to cross the shard boundary. Instead the session runs a small reservation
// coordinator per gang:
//
//  1. Hold.   The child leg is admitted on its shard as a *hold*
//     (rms.Session.HoldObserved): it reserves capacity in the shard's
//     CBF/eqSchedule window exactly like a pending request, but the shard
//     never starts it. Shard-locally the leg is unrelated — the NEXT/COALLOC
//     relation lives only in the federated spec — so a hold never entangles
//     its cluster with the parent's: committed gangs stay migratable.
//
//  2. Align.  Every reservation interval the coordinator re-reads the
//     parent's schedule, pins the child at the implied target
//     (SetNotBefore: parent start for COALLOC, parent end for NEXT), runs a
//     synchronous round on the child's shard, and compares. If the child
//     cannot make the slot and the parent is still movable, the parent is
//     delayed to the child's achievable time — fit()'s parent-delay rule
//     (Algorithm 2), re-enacted across the shard boundary. The exchange is
//     monotone (floors only ever rise toward a common free window), bounded
//     by maxGangAligns.
//
//  3. Commit / abort.  When the legs line up — or the parent became
//     unmovable (started), or the align budget is spent with both legs
//     individually placeable — the hold is committed atomically
//     (CommitHold) and the child becomes an ordinary pending request, its
//     floor preserving the alignment. If the child leg cannot fit at all
//     (+Inf schedule: the cluster is too small, clipped, or shrunk by node
//     failures), the hold is *released* — reserved capacity returned, no
//     application-visible event — and re-placed after an exponential
//     backoff, up to maxGangRetries times; then the gang is aborted and the
//     child dropped (reap-without-finish, like a replay cascade drop).
//
// Every transition runs under f.topoMu, serializing the hold→commit window
// against CrashShard / RestartShard / MigrateCluster; the window itself
// spans at least one reservation interval, so those faults can — and in the
// chaos tests do — land inside it. Crash handling lives in absorbCrash
// (holds are requeued or aborted, never kill a session: no live allocation
// ever ran behind a hold) and replayQueue (re-places holds after restarts).
const (
	// maxGangAligns bounds the parent-delay ping-pong. The exchange is
	// monotone, so exhaustion means both legs fit individually but no common
	// window emerged yet; the gang is then committed at the best alignment
	// reached (the child's floor still guarantees parent-target ≤ child
	// start).
	maxGangAligns = 6
	// maxGangRetries bounds release→re-place cycles for a child leg that
	// cannot fit at all. Retries back off exponentially on the reservation
	// interval, giving node recovery a chance to restore capacity.
	maxGangRetries = 3
	// gangEps absorbs float noise when comparing the child's landed time
	// against the parent's target.
	gangEps = 1e-9
)

// evalGang action verdicts (decided under sess.mu, executed with no lock).
const (
	gangWait = iota
	gangAlign
	gangCommit
	gangDropOrphan
)

// gangState is the coordinator's record of one in-flight reservation, keyed
// by the child's federated ID in Session.gangs. It exists exactly while the
// child mapping is held (e.held); commit and abort both delete it.
type gangState struct {
	child  request.ID       // federated ID of the held leg
	parent request.ID       // federated ID of the related leg
	how    request.Relation // Next or Coalloc
	// placedAt stamps the first hold placement; the fed.gang_reserve_seconds
	// histogram measures hold→commit/abort from it.
	placedAt float64
	aligns   int
	retries  int
	// parentDone / parentStarted memoize terminal parent states observed by
	// the handler fan-in or the evaluation loop: once the parent's mapping
	// is reaped the session cannot distinguish "finished" from "dropped"
	// anymore, and the two demand opposite outcomes (commit vs cascade).
	parentDone    bool
	parentStarted bool
	timer         clock.Timer
}

// gangTarget derives the child's start-time floor from the parent's current
// schedule: its start for COALLOC, its end for NEXT. An unschedulable or
// finished parent yields no floor (the evaluation loop decides what that
// means; a zero floor never constrains).
func gangTarget(how request.Relation, info rms.HoldInfo) float64 {
	if info.Finished {
		return 0
	}
	t := info.ScheduledAt // StartedAt when started
	if math.IsInf(t, 1) {
		return 0
	}
	if how == request.Next {
		return t + info.Duration
	}
	return t
}

// requestGang places the tentative hold for a cross-shard gang child and
// arms the first evaluation. Called from requestOn with no lock held; the
// parent may be anywhere from pending to already finished — the evaluation
// loop sorts that out.
func (s *Session) requestGang(shard int, sub *rms.Session, spec rms.RequestSpec) (request.ID, error) {
	// Seed the floor from the parent's current schedule so the very first
	// round already reserves roughly the right window.
	s.mu.Lock()
	var psub *rms.Session
	var plid request.ID
	if pe := s.toLocal[spec.RelatedTo]; pe != nil && !pe.queued && pe.id != 0 {
		psub = s.subs[pe.shard]
		plid = pe.id
	}
	s.mu.Unlock()
	notBefore := 0.0
	if psub != nil {
		if info, err := psub.ScheduleInfo(plid); err == nil {
			notBefore = gangTarget(spec.RelatedHow, info)
		}
	}
	local := spec
	local.RelatedHow, local.RelatedTo = request.Free, 0
	fid := s.f.nextRequestID()
	_, err := sub.HoldObserved(local, notBefore, func(lid request.ID) {
		s.mu.Lock()
		s.toLocal[fid] = &fedReq{shard: shard, id: lid, spec: spec, held: true}
		s.fromLocal[shard][lid] = fid
		s.mu.Unlock()
	})
	if err != nil {
		return 0, s.translateErr(shard, err)
	}
	s.mu.Lock()
	if !s.killed {
		g := &gangState{child: fid, parent: spec.RelatedTo, how: spec.RelatedHow, placedAt: s.f.clk.Now()}
		s.gangs[fid] = g
		s.armGangLocked(g, s.f.reschedInterval)
	}
	s.mu.Unlock()
	return fid, nil
}

// armGangLocked (re-)arms the gang's evaluation timer. Caller holds sess.mu.
func (s *Session) armGangLocked(g *gangState, d float64) {
	if g.timer != nil {
		g.timer.Stop()
	}
	fid := g.child
	g.timer = s.f.clk.AfterFunc(d, "fed.gang", func() { s.evalGang(fid) })
}

// rearmGang re-arms the evaluation one interval out, if the gang still
// exists. Called with no lock held.
func (s *Session) rearmGang(g *gangState) {
	s.mu.Lock()
	if !s.killed && s.gangs[g.child] == g {
		s.armGangLocked(g, s.f.reschedInterval)
	}
	s.mu.Unlock()
}

// clearGangLocked discards a gang's coordinator state (timer included)
// without touching the mapping. Caller holds sess.mu.
func (s *Session) clearGangLocked(fid request.ID) {
	if g := s.gangs[fid]; g != nil {
		if g.timer != nil {
			g.timer.Stop()
			g.timer = nil
		}
		delete(s.gangs, fid)
	}
}

// noteGangParentLocked memoizes a parent-side event (started or finished)
// on every gang whose parent is fid. Caller holds sess.mu.
func (s *Session) noteGangParentLocked(fid request.ID, done bool) {
	if len(s.gangs) == 0 {
		return
	}
	for _, g := range s.gangs {
		if g.parent != fid {
			continue
		}
		if done {
			g.parentDone = true
		} else {
			g.parentStarted = true
		}
	}
}

// evalGang is one turn of the reservation state machine, fired by the gang's
// timer. It runs under f.topoMu, so the decision it takes cannot interleave
// with a crash, restart, or migration — exactly the serialization
// CheckInvariants relies on.
func (s *Session) evalGang(fid request.ID) {
	f := s.f
	f.topoMu.Lock()
	defer f.topoMu.Unlock()

	s.mu.Lock()
	g := s.gangs[fid]
	if g == nil {
		s.mu.Unlock()
		return
	}
	g.timer = nil
	e := s.toLocal[fid]
	if s.killed || e == nil || !e.held {
		s.clearGangLocked(fid)
		s.mu.Unlock()
		return
	}
	if e.queued {
		// The child shard is down: the crash machinery owns the entry and
		// replayQueue re-places the hold and re-arms the evaluation.
		s.mu.Unlock()
		return
	}
	if e.id == 0 {
		// Between release and re-placement (retry backoff elapsed).
		s.mu.Unlock()
		s.replaceHold(fid, g)
		return
	}
	childShard, childLID := e.shard, e.id
	childSub := s.subs[childShard]
	pe := s.toLocal[g.parent]
	if pe != nil {
		if pe.done {
			g.parentDone = true
		}
		if pe.started {
			g.parentStarted = true
		}
	}
	action := gangWait
	var (
		target      float64
		unmovable   bool
		parentShard int
		parentLID   request.ID
		parentSub   *rms.Session
		parentDur   float64
	)
	switch {
	case childSub == nil:
		// Defensive only: crash sweeps run under topoMu, so a nil sub with a
		// live (non-queued) mapping should not be observable here.
	case pe == nil:
		if g.parentDone || g.parentStarted {
			// The parent ran (and was reaped): a NEXT constraint is
			// trivially satisfied, a COALLOC one moot. Commit.
			action = gangCommit
		} else {
			// The parent was dropped before ever running: cascade, mirroring
			// the single-RMS replay semantics for orphaned children.
			action = gangDropOrphan
		}
	case pe.queued:
		// The parent's shard is down; wait for its replay.
	case pe.done:
		action = gangCommit
	case pe.started:
		if g.how == request.Coalloc {
			// The parent already started without us: co-allocation degrades
			// to start-as-soon-as-possible. Commit now.
			action = gangCommit
		} else {
			// NEXT behind a running parent: the handover instant is fixed.
			target = pe.startedAt + pe.spec.Duration
			unmovable = true
			action = gangAlign
		}
	default:
		parentShard, parentLID = pe.shard, pe.id
		parentSub = s.subs[parentShard]
		parentDur = pe.spec.Duration
		if parentSub != nil && parentLID != 0 {
			action = gangAlign
		}
	}
	how := g.how
	s.mu.Unlock()

	switch action {
	case gangWait:
		s.rearmGang(g)
		return
	case gangCommit:
		s.commitGang(fid, g, childSub, childLID)
		return
	case gangDropOrphan:
		if childSub != nil {
			_ = childSub.ReleaseHold(childLID)
			s.mu.Lock()
			delete(s.fromLocal[childShard], childLID)
			s.mu.Unlock()
		}
		s.dropGang(fid, g)
		return
	}

	// Alignment turn: pin the child at the parent's target, run a synchronous
	// round on its shard, and see where it lands.
	if parentSub != nil {
		info, err := parentSub.ScheduleInfo(parentLID)
		if err != nil {
			// The parent vanished mid-decision (unreachable under topoMu in
			// the simulator); the memo updated by the handler fan-in settles
			// it next turn.
			s.rearmGang(g)
			return
		}
		if info.Started || info.Finished {
			unmovable = true
		}
		if math.IsInf(info.ScheduledAt, 1) && !info.Started && !info.Finished {
			// The parent leg itself is unschedulable on its own shard:
			// release this leg and retry with backoff — the parent's shard
			// (node recovery, load drain) may change.
			s.retryGang(fid, g, childShard, childSub, childLID)
			return
		}
		target = gangTarget(how, info)
	}
	if err := childSub.SetNotBefore(childLID, target); err != nil {
		s.rearmGang(g)
		return
	}
	f.shards[childShard].ScheduleNow()
	cinfo, err := childSub.ScheduleInfo(childLID)
	if err != nil {
		s.rearmGang(g)
		return
	}
	if math.IsInf(cinfo.ScheduledAt, 1) {
		// The child leg cannot fit at all: two-phase abort path — release
		// the reserved capacity and retry after backoff.
		s.retryGang(fid, g, childShard, childSub, childLID)
		return
	}
	if unmovable || cinfo.ScheduledAt <= target+gangEps {
		s.commitGang(fid, g, childSub, childLID)
		return
	}
	// The child cannot make the parent's slot. Delay the still-movable
	// parent to the child's achievable time (the cross-shard enactment of
	// fit()'s parent-delay rule) and re-evaluate next interval.
	s.mu.Lock()
	g.aligns++
	exhausted := g.aligns > maxGangAligns
	s.mu.Unlock()
	if exhausted || parentSub == nil {
		s.commitGang(fid, g, childSub, childLID)
		return
	}
	pt := cinfo.ScheduledAt
	if how == request.Next {
		pt = cinfo.ScheduledAt - parentDur
	}
	if pt < 0 {
		pt = 0
	}
	if err := parentSub.SetNotBefore(parentLID, pt); err == nil {
		f.shards[parentShard].ScheduleNow()
	}
	s.rearmGang(g)
}

// commitGang converts the hold into an ordinary pending request — the point
// of no return for the gang — and retires the coordinator state.
func (s *Session) commitGang(fid request.ID, g *gangState, childSub *rms.Session, childLID request.ID) {
	if childSub == nil || childSub.CommitHold(childLID) != nil {
		// The hold vanished under us (session torn down mid-turn under a
		// real clock); the crash/teardown machinery owns the mapping.
		s.mu.Lock()
		s.clearGangLocked(fid)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if e := s.toLocal[fid]; e != nil {
		e.held = false
	}
	s.clearGangLocked(fid)
	s.mu.Unlock()
	f := s.f
	f.count(0, metrics.GangCommitted, 1)
	if f.obsReg != nil {
		now := f.clk.Now()
		f.hGang.Record(now - g.placedAt)
		f.obsReg.Event(obs.Event{Time: now, Type: obs.EvGangCommit, App: s.id, Request: int(fid), Value: now - g.placedAt})
	}
}

// retryGang releases the child's hold (its leg cannot fit right now) and
// schedules a re-placement after an exponential backoff — or aborts the
// gang once the retry budget is spent.
func (s *Session) retryGang(fid request.ID, g *gangState, childShard int, childSub *rms.Session, childLID request.ID) {
	_ = childSub.ReleaseHold(childLID)
	s.mu.Lock()
	delete(s.fromLocal[childShard], childLID)
	if e := s.toLocal[fid]; e != nil {
		e.id = 0 // no shard-local presence until re-placement
	}
	g.retries++
	spent := g.retries > maxGangRetries
	if !spent && !s.killed {
		s.armGangLocked(g, s.f.reschedInterval*float64(int(1)<<g.retries))
	}
	s.mu.Unlock()
	if spent {
		s.dropGang(fid, g)
		return
	}
	s.f.count(0, metrics.GangRetried, 1)
}

// replaceHold re-places a released hold after its retry backoff elapsed.
// Called with no lock held.
func (s *Session) replaceHold(fid request.ID, g *gangState) {
	s.mu.Lock()
	if s.killed {
		s.clearGangLocked(fid)
		s.mu.Unlock()
		return
	}
	e := s.toLocal[fid]
	if e == nil || !e.held || e.queued || e.id != 0 {
		s.mu.Unlock()
		return
	}
	shard := e.shard
	sub := s.subs[shard]
	spec := e.spec
	s.mu.Unlock()
	if sub == nil {
		s.rearmGang(g)
		return
	}
	local := spec
	local.RelatedHow, local.RelatedTo = request.Free, 0
	_, err := sub.HoldObserved(local, 0, func(lid request.ID) {
		s.mu.Lock()
		e.id = lid
		s.fromLocal[shard][lid] = fid
		s.mu.Unlock()
	})
	if err != nil {
		s.dropGang(fid, g)
		return
	}
	s.rearmGang(g)
}

// dropGang aborts the reservation for good: coordinator state and mapping
// are discarded and the application sees a drop (reap without finish) for
// the child — the same signal a replay cascade drop delivers. The child's
// shard-side hold, if any, must already be released.
func (s *Session) dropGang(fid request.ID, g *gangState) {
	s.mu.Lock()
	s.clearGangLocked(fid)
	e := s.toLocal[fid]
	delete(s.toLocal, fid)
	s.mu.Unlock()
	if e == nil {
		return
	}
	f := s.f
	f.count(0, metrics.GangAborted, 1)
	f.count(s.id, metrics.DroppedRequests, 1)
	if f.obsReg != nil {
		now := f.clk.Now()
		f.obsReg.Event(obs.Event{Time: now, Type: obs.EvGangAbort, App: s.id, Request: int(fid), Value: now - g.placedAt})
	}
	s.notifyDropped(fid)
}

// replayGang re-places the hold for a queued cross-shard gang child on its
// restarted shard and (re)starts the reservation. Reports whether the child
// survived. Called from replayQueue with no lock held.
func (s *Session) replayGang(shard int, sub *rms.Session, fid request.ID, e *fedReq) bool {
	local := e.spec
	local.RelatedHow, local.RelatedTo = request.Free, 0
	_, err := sub.HoldObserved(local, 0, func(lid request.ID) {
		s.mu.Lock()
		e.id = lid
		e.queued = false
		e.held = true
		s.fromLocal[shard][lid] = fid
		s.mu.Unlock()
	})
	if err != nil {
		s.mu.Lock()
		s.clearGangLocked(fid)
		delete(s.toLocal, fid)
		s.mu.Unlock()
		s.notifyDropped(fid)
		return false
	}
	s.mu.Lock()
	if !s.killed {
		g := s.gangs[fid]
		if g == nil {
			g = &gangState{child: fid, parent: e.spec.RelatedTo, how: e.spec.RelatedHow, placedAt: s.f.clk.Now()}
			s.gangs[fid] = g
		}
		s.armGangLocked(g, s.f.reschedInterval)
	}
	s.mu.Unlock()
	s.f.count(0, metrics.GangRetried, 1)
	return true
}

// rehomeDetachedHolds re-points released-but-not-yet-re-placed holds
// (e.held, e.id == 0) whose target cluster just migrated: they have no
// shard-side request for the snapshot to carry, so migrateMapping never sees
// them. Called by MigrateCluster under topoMu.
func (s *Session) rehomeDetachedHolds(cid view.ClusterID, to int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.toLocal {
		if e.held && !e.queued && e.id == 0 && e.spec.Cluster == cid {
			e.shard = to
		}
	}
}
