package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"coormv2/internal/apps"
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/federation"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/stats"
	"coormv2/internal/tenants"
	"coormv2/internal/view"
	"coormv2/internal/workload"
)

// TenantsReplayConfig parametrizes the multi-tenant scenario: N tenant
// queues share a federated cluster set under skewed demand. Tenant t0 is
// the guaranteed queue (GuaranteeFrac of every cluster); t1 is the hot
// best-effort tenant submitting HotFrac of the rigid trace; the remaining
// tenants split the rest of the trace evenly with t0. One scavenging PSA
// per cluster, tagged with the best-effort tenants round-robin, keeps the
// machines saturated with preemptible work — the allocations quota
// preemption revokes when the guaranteed queue is starved. With DRF off
// the identical workload runs under connection-order FIFO, the fairness
// baseline the per-tenant wait table is read against.
type TenantsReplayConfig struct {
	// Jobs is the rigid trace, split across tenants by TenantOfJob below.
	Jobs []workload.Job
	// Tenants is the tenant-queue count N ≥ 2 (t0 guaranteed, t1 hot).
	Tenants int
	// Shards is the scheduler shard count; each shard owns one cluster.
	Shards int
	// NodesPerShard sizes each cluster.
	NodesPerShard int
	// GuaranteeFrac, in (0,1], is the fraction of every cluster guaranteed
	// to t0 (default 0.5).
	GuaranteeFrac float64
	// HotFrac, in [0,1], is the fraction of the trace submitted by the hot
	// best-effort tenant t1 — the demand skew.
	HotFrac float64
	// PSATaskDur is the per-task duration of the scavenging PSAs.
	PSATaskDur float64
	// DRF switches every shard from connection-order FIFO to the DRF
	// queue-hierarchy policy with quota preemption.
	DRF bool
	// Obs, when non-nil, collects the run's histograms (incl. the
	// per-tenant wait histograms every shard records), counters and events.
	Obs *obs.Registry
	// MaxSimTime aborts runaway replays (default 10^9 s).
	MaxSimTime float64
}

// TenantOfJob assigns rigid job i its tenant queue: the first HotFrac of
// every 100-job block goes to the hot tenant t1, and the rest cycles over
// the other tenants (t0, t2, t3, …) evenly. Exported so the CLI and the
// tests label jobs exactly as the runner does.
func (cfg TenantsReplayConfig) TenantOfJob(i int) string {
	if float64(i%100) < cfg.HotFrac*100 {
		return "t1"
	}
	k := i % (cfg.Tenants - 1)
	if k >= 1 {
		k++ // skip the hot tenant: cycle t0, t2, t3, …
	}
	return "t" + strconv.Itoa(k)
}

// TenantStat is one tenant's end-of-run row.
type TenantStat struct {
	Tenant    string
	Guarantee int // per-cluster guaranteed nodes (0 = best-effort)
	Jobs      int
	Completed int
	MeanWait  float64
	P99Wait   float64
	// Preempts counts quota-preemption revocations charged to this tenant
	// (its allocations were the victims).
	Preempts int64
}

// TenantsReplayResult aggregates one multi-tenant replay. Every field is a
// pure function of the configuration.
type TenantsReplayResult struct {
	Tenants []TenantStat // t0, t1, … in index order

	// WaitFairness is Jain's fairness index over the per-tenant mean waits
	// (1.0 = all tenants wait equally; 1/N = one tenant absorbs all the
	// waiting). It quantifies how evenly the queueing pain is spread, the
	// number the DRF-vs-FIFO comparison in PERFORMANCE.md reports.
	WaitFairness float64

	Preempts     int64 // total quota-preemption revocations
	TotalWaste   float64
	UsedFraction float64
	Makespan     float64
	Events       int64

	// Snapshot is the end-of-run observability snapshot (nil unless
	// TenantsReplayConfig.Obs was set).
	Snapshot *obs.Snapshot
}

// RunTenantsReplay replays the rigid trace through a federated RMS with N
// tenant queues. The federation invariant checker (which includes the
// cross-shard tenant-label agreement clause) runs once after the run; any
// violation is returned as an error.
func RunTenantsReplay(cfg TenantsReplayConfig) (*TenantsReplayResult, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("experiments: empty job stream")
	}
	if cfg.Tenants < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 tenants, have %d", cfg.Tenants)
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.NodesPerShard <= 0 {
		return nil, fmt.Errorf("experiments: need a positive per-shard node count")
	}
	if cfg.HotFrac < 0 || cfg.HotFrac > 1 {
		return nil, fmt.Errorf("experiments: HotFrac %g outside [0,1]", cfg.HotFrac)
	}
	if cfg.GuaranteeFrac <= 0 || cfg.GuaranteeFrac > 1 {
		cfg.GuaranteeFrac = 0.5
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 1e9
	}

	e := sim.NewEngine()
	clk := clock.SimClock{E: e}
	clusters := make(map[view.ClusterID]int, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		clusters[federatedCluster(i)] = cfg.NodesPerShard
	}

	// The queue tree: t0 guaranteed on every cluster, the rest best-effort.
	perCluster := int(cfg.GuaranteeFrac * float64(cfg.NodesPerShard))
	if perCluster < 1 {
		perCluster = 1
	}
	guarantee := tenants.Resources{}
	for cid := range clusters {
		guarantee[cid] = perCluster
	}
	tree := tenants.NewTree()
	tree.MustAdd("t0", guarantee, nil)
	for k := 1; k < cfg.Tenants; k++ {
		tree.MustAdd("t"+strconv.Itoa(k), nil, nil)
	}

	var scheduling func(int) core.SchedulingPolicy
	if cfg.DRF {
		scheduling = func(int) core.SchedulingPolicy { return tenants.NewDRF(tree) }
	}
	clientRec := metrics.NewRecorder()
	recs := []*metrics.Recorder{clientRec}
	fed := federation.New(federation.Config{
		Clusters:        clusters,
		Shards:          cfg.Shards,
		ReschedInterval: 1,
		Clock:           clk,
		Scheduling:      scheduling,
		Metrics: func(int) *metrics.Recorder {
			r := metrics.NewRecorder()
			recs = append(recs, r)
			return r
		},
		Obs: cfg.Obs,
	})
	agg := metrics.NewAggregate(recs...)

	// Scavenging PSAs, one per cluster, tagged with the best-effort tenants
	// round-robin: the saturating preemptible load quota preemption revokes.
	if cfg.PSATaskDur > 0 {
		for i := 0; i < cfg.Shards; i++ {
			p := apps.NewPSA(clk, apps.PSAConfig{
				Cluster: federatedCluster(i), TaskDuration: cfg.PSATaskDur, Metrics: clientRec,
			})
			label := "t" + strconv.Itoa(1+i%(cfg.Tenants-1))
			sess := fed.Connect(p, rms.WithTenant(label))
			p.SetMetricsID(sess.AppID())
			p.Attach(sess)
		}
	}

	remaining := len(cfg.Jobs)
	jobsPer := make(map[string]int, cfg.Tenants)
	waits := make(map[string][]float64, cfg.Tenants)
	completed := make(map[string]int, cfg.Tenants)
	for i, j := range cfg.Jobs {
		i, j := i, j
		tenant := cfg.TenantOfJob(i)
		jobsPer[tenant]++
		cluster := i % cfg.Shards
		n := j.Nodes
		if n > cfg.NodesPerShard {
			n = cfg.NodesPerShard
		}
		e.At(j.Submit, "tenants.submit", func() {
			r := apps.NewRigid(clk, federatedCluster(cluster), n, j.Runtime)
			w := &chaosRigid{Rigid: r}
			w.settle = func(outcome string) {
				if outcome == "completed" {
					completed[tenant]++
					wait := w.StartTime - j.Submit
					if wait < 0 {
						wait = 0
					}
					waits[tenant] = append(waits[tenant], wait)
				}
				remaining--
				if remaining == 0 {
					e.Stop()
				}
			}
			sess := fed.Connect(w, rms.WithTenant(tenant))
			r.Attach(sess)
			if err := r.Submit(); err != nil {
				w.settleOnce("rejected")
			}
		})
	}

	for remaining > 0 {
		before := e.Processed()
		e.Run(e.Now() + 3600)
		if remaining == 0 {
			break
		}
		if e.Now() > cfg.MaxSimTime {
			return nil, fmt.Errorf("experiments: tenants replay exceeded %g s (remaining=%d)", cfg.MaxSimTime, remaining)
		}
		if e.Processed() == before && e.Pending() == 0 {
			return nil, fmt.Errorf("experiments: tenants replay stalled at t=%g (remaining=%d)", e.Now(), remaining)
		}
	}
	if err := fed.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("experiments: post-run invariant violated: %w", err)
	}

	preempts := fed.TenantPreempts()
	res := &TenantsReplayResult{Makespan: e.Now(), Events: e.Processed()}
	means := make([]float64, 0, cfg.Tenants)
	for k := 0; k < cfg.Tenants; k++ {
		label := "t" + strconv.Itoa(k)
		st := TenantStat{
			Tenant:    label,
			Jobs:      jobsPer[label],
			Completed: completed[label],
			Preempts:  preempts[label],
		}
		if k == 0 {
			st.Guarantee = perCluster
		}
		if ws := waits[label]; len(ws) > 0 {
			sort.Float64s(ws)
			var sum float64
			for _, w := range ws {
				sum += w
			}
			st.MeanWait = sum / float64(len(ws))
			st.P99Wait = stats.Percentile(ws, 99)
		}
		if st.Jobs > 0 {
			means = append(means, st.MeanWait)
		}
		res.Preempts += st.Preempts
		res.Tenants = append(res.Tenants, st)
	}
	res.WaitFairness = jain(means)
	res.TotalWaste = agg.TotalWaste()
	res.UsedFraction = agg.UsedFraction(cfg.Shards*cfg.NodesPerShard, res.Makespan)
	if cfg.Obs != nil {
		snap := cfg.Obs.Snapshot(res.Makespan)
		res.Snapshot = &snap
	}
	return res, nil
}

// jain computes Jain's fairness index (Σx)²/(n·Σx²) over xs, the standard
// [1/n, 1] fairness measure: 1 when all values are equal. By convention it
// is 1 for an empty or all-zero vector (nobody waits ⇒ perfectly fair).
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
