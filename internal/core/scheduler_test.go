package core

import (
	"math"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

const c0 = view.ClusterID("c0")

func newSched(n int) *Scheduler {
	return NewScheduler(map[view.ClusterID]int{c0: n})
}

// submit creates, validates and adds a request to the right set.
func submit(t *testing.T, s *Scheduler, a *AppState, id request.ID, n int, dur float64,
	typ request.Type, how request.Relation, parent *request.Request) *request.Request {
	t.Helper()
	r := request.New(id, a.ID, c0, n, dur, typ, how, parent)
	if err := r.Validate(); err != nil {
		t.Fatalf("invalid test request: %v", err)
	}
	a.SetFor(typ).Add(r)
	s.MarkAppDirty(a.ID)
	return r
}

// start marks a request started at time now, as the RMS layer would —
// including the RMS's duty to report the mutation to the scheduler.
func start(s *Scheduler, r *request.Request, now float64) {
	r.StartedAt = now
	s.MarkAppDirty(r.AppID)
}

func TestScheduleEmpty(t *testing.T) {
	s := newSched(10)
	out := s.Schedule(0)
	if len(out.ToStart) != 0 || len(out.NonPreemptViews) != 0 {
		t.Error("empty scheduler should produce empty outcome")
	}
}

func TestScheduleRigidJob(t *testing.T) {
	// A rigid application (§4): a single non-preemptible request with no
	// pre-allocation. It is implicitly wrapped and starts immediately.
	s := newSched(10)
	a := s.AddApp(1, 0)
	r := submit(t, s, a, 1, 4, 100, request.NonPreempt, request.Free, nil)
	out := s.Schedule(0)
	if r.ScheduledAt != 0 {
		t.Errorf("rigid request at %v, want 0", r.ScheduledAt)
	}
	if !r.Wrapped {
		t.Error("request with no covering pre-allocation must be wrapped")
	}
	if len(out.ToStart) != 1 || out.ToStart[0] != r {
		t.Errorf("ToStart = %v", out.ToStart)
	}
}

func TestScheduleRigidJobsQueueFCFS(t *testing.T) {
	// Two rigid jobs of 6 nodes on a 10-node cluster: the second must wait
	// for the first to finish (conservative back-filling in connect order).
	s := newSched(10)
	a := s.AddApp(1, 0)
	b := s.AddApp(2, 1)
	ra := submit(t, s, a, 1, 6, 100, request.NonPreempt, request.Free, nil)
	rb := submit(t, s, b, 2, 6, 100, request.NonPreempt, request.Free, nil)
	out := s.Schedule(1)
	if ra.ScheduledAt != 1 {
		t.Errorf("first job at %v, want 1", ra.ScheduledAt)
	}
	if rb.ScheduledAt != 101 {
		t.Errorf("second job at %v, want 101 (after first ends)", rb.ScheduledAt)
	}
	if len(out.ToStart) != 1 || out.ToStart[0] != ra {
		t.Error("only the first job should start now")
	}
}

func TestScheduleBackfillSmallJob(t *testing.T) {
	// CBF: a small job that fits beside the running big one starts
	// immediately even though an earlier-connected large job is queued.
	s := newSched(10)
	a := s.AddApp(1, 0)
	big := submit(t, s, a, 1, 8, 100, request.NonPreempt, request.Free, nil)
	start(s, big, 0)
	s.Schedule(0)

	b := s.AddApp(2, 1)
	queued := submit(t, s, b, 2, 8, 50, request.NonPreempt, request.Free, nil)
	c := s.AddApp(3, 2)
	small := submit(t, s, c, 3, 2, 50, request.NonPreempt, request.Free, nil)
	s.Schedule(2)
	if queued.ScheduledAt != 100 {
		t.Errorf("queued big job at %v, want 100", queued.ScheduledAt)
	}
	if small.ScheduledAt != 2 {
		t.Errorf("backfilled small job at %v, want 2", small.ScheduledAt)
	}
}

func TestSchedulePreAllocationReservesSpace(t *testing.T) {
	// App 1 pre-allocates 8 of 10 nodes but allocates only 2. App 2's
	// non-preemptible request of 4 nodes must NOT fit now (pre-allocated
	// resources cannot be allocated non-preemptibly to another application,
	// §3.1.1) — but a preemptible request can fill them.
	s := newSched(10)
	a := s.AddApp(1, 0)
	pa := submit(t, s, a, 1, 8, 1000, request.PreAlloc, request.Free, nil)
	np := submit(t, s, a, 2, 2, 1000, request.NonPreempt, request.Coalloc, pa)
	out := s.Schedule(0)
	if pa.ScheduledAt != 0 || np.ScheduledAt != 0 {
		t.Fatalf("PA/NP at %v/%v, want 0/0", pa.ScheduledAt, np.ScheduledAt)
	}
	start(s, pa, 0)
	start(s, np, 0)

	b := s.AddApp(2, 1)
	rnp := submit(t, s, b, 3, 4, 100, request.NonPreempt, request.Free, nil)
	rp := submit(t, s, b, 4, 8, math.Inf(1), request.Preempt, request.Free, nil)
	out = s.Schedule(1)

	if rnp.ScheduledAt != 1000 {
		t.Errorf("¬P into pre-allocated space at %v, want 1000 (when PA ends)", rnp.ScheduledAt)
	}
	// The preemptive view shows capacity minus *allocated* (2), not minus
	// pre-allocated (8): 8 nodes preemptibly available.
	if got := out.PreemptViews[2].Get(c0).Value(1); got != 8 {
		t.Errorf("preemptive view = %d, want 8 (PA-but-unused is fillable)", got)
	}
	if rp.NAlloc != 8 {
		t.Errorf("preemptible NAlloc = %d, want 8", rp.NAlloc)
	}
}

func TestScheduleNonPreemptInsidePreAllocGuaranteed(t *testing.T) {
	// The core promise (§3.1.3): updates inside a started pre-allocation
	// are guaranteed, even if malleable applications currently occupy the
	// physical nodes.
	s := newSched(10)
	a := s.AddApp(1, 0)
	pa := submit(t, s, a, 1, 8, 1000, request.PreAlloc, request.Free, nil)
	np1 := submit(t, s, a, 2, 2, 1000, request.NonPreempt, request.Coalloc, pa)
	s.Schedule(0)
	start(s, pa, 0)
	start(s, np1, 0)

	// A malleable app fills the 8 unused nodes.
	b := s.AddApp(2, 1)
	rp := submit(t, s, b, 3, 8, math.Inf(1), request.Preempt, request.Free, nil)
	s.Schedule(1)
	start(s, rp, 1)
	rp.NodeIDs = []int{2, 3, 4, 5, 6, 7, 8, 9}
	s.MarkAppDirty(rp.AppID)

	// Spontaneous update at t=50: request 6 nodes NEXT after np1, done(np1).
	np2 := submit(t, s, a, 4, 6, 950, request.NonPreempt, request.Next, np1)
	np1.Duration = 50 // done() shortens the current request
	np1.Finished = true
	s.MarkAppDirty(np1.AppID)
	out := s.Schedule(50)

	if np2.ScheduledAt != 50 {
		t.Errorf("update scheduled at %v, want 50 (guaranteed inside PA)", np2.ScheduledAt)
	}
	if !np2.Fixed {
		t.Error("update inside PA should be fixed (pinned to the chain)")
	}
	if np2.Wrapped {
		t.Error("in-PA update must not be wrapped")
	}
	// The malleable app's view must drop to 4 (8 PA − 6 now allocated = 2
	// free in PA... total 10 − 6 allocated = 4 preemptible).
	if got := out.PreemptViews[2].Get(c0).Value(50); got != 4 {
		t.Errorf("preemptive view after update = %d, want 4", got)
	}
	if rp.NAlloc != 4 {
		t.Errorf("preemptible NAlloc after update = %d, want 4 (release signal)", rp.NAlloc)
	}
}

func TestScheduleTwoPreAllocationsQueued(t *testing.T) {
	// §4: two NEAs whose pre-allocations cannot fit simultaneously are run
	// one after the other so peak requirements can always be met.
	s := newSched(10)
	a := s.AddApp(1, 0)
	paA := submit(t, s, a, 1, 7, 500, request.PreAlloc, request.Free, nil)
	s.Schedule(0)
	start(s, paA, 0)

	b := s.AddApp(2, 1)
	paB := submit(t, s, b, 2, 7, 500, request.PreAlloc, request.Free, nil)
	out := s.Schedule(1)
	if paB.ScheduledAt != 500 {
		t.Errorf("second PA at %v, want 500 (queued after first)", paB.ScheduledAt)
	}
	if len(out.ToStart) != 0 {
		t.Error("nothing should start at t=1")
	}

	// Two small pre-allocations fit side by side.
	c := s.AddApp(3, 2)
	paC := submit(t, s, c, 3, 3, 100, request.PreAlloc, request.Free, nil)
	s.Schedule(2)
	if paC.ScheduledAt != 2 {
		t.Errorf("small PA at %v, want 2 (fits beside the started one)", paC.ScheduledAt)
	}
}

func TestScheduleNonPreemptViewShowsOwnPA(t *testing.T) {
	s := newSched(10)
	a := s.AddApp(1, 0)
	pa := submit(t, s, a, 1, 8, 1000, request.PreAlloc, request.Free, nil)
	s.Schedule(0)
	start(s, pa, 0)
	s.AddApp(2, 1)
	out := s.Schedule(1)
	// App 1 sees its own PA space (8) plus the free nodes (2) = 10.
	if got := out.NonPreemptViews[1].Get(c0).Value(1); got != 10 {
		t.Errorf("app1 ¬P view = %d, want 10", got)
	}
	// App 2 sees only the 2 free nodes while the PA lasts.
	if got := out.NonPreemptViews[2].Get(c0).Value(1); got != 2 {
		t.Errorf("app2 ¬P view = %d, want 2", got)
	}
	if got := out.NonPreemptViews[2].Get(c0).Value(1001); got != 10 {
		t.Errorf("app2 ¬P view after PA = %d, want 10", got)
	}
}

func TestScheduleClipLimitsPreAllocation(t *testing.T) {
	// §3.2: "the amount of resources that an application can pre-allocate
	// can be limited, by clipping its non-preemptible view."
	s := newSched(10)
	s.SetClip(view.Constant(4, c0))
	a := s.AddApp(1, 0)
	pa := submit(t, s, a, 1, 8, 100, request.PreAlloc, request.Free, nil)
	out := s.Schedule(0)
	if got := out.NonPreemptViews[1].Get(c0).Value(0); got != 4 {
		t.Errorf("clipped view = %d, want 4", got)
	}
	if !math.IsInf(pa.ScheduledAt, 1) {
		t.Errorf("8-node PA under a 4-node clip should never be scheduled, got %v", pa.ScheduledAt)
	}
}

func TestScheduleNoOversubscription(t *testing.T) {
	// Sum of all non-preemptible+preemptible NAlloc at any time must not
	// exceed capacity, in a busy mixed scenario.
	s := newSched(10)
	a := s.AddApp(1, 0)
	pa := submit(t, s, a, 1, 6, 1000, request.PreAlloc, request.Free, nil)
	np := submit(t, s, a, 2, 3, 1000, request.NonPreempt, request.Coalloc, pa)
	s.Schedule(0)
	start(s, pa, 0)
	start(s, np, 0)

	b := s.AddApp(2, 1)
	rp1 := submit(t, s, b, 3, 10, math.Inf(1), request.Preempt, request.Free, nil)
	c := s.AddApp(3, 2)
	rp2 := submit(t, s, c, 4, 10, math.Inf(1), request.Preempt, request.Free, nil)
	s.Schedule(2)
	start(s, rp1, 2)
	start(s, rp2, 2)

	d := s.AddApp(4, 3)
	rnp := submit(t, s, d, 5, 4, 100, request.NonPreempt, request.Free, nil)
	out := s.Schedule(3)
	_ = out

	for _, tt := range []float64{3, 10, 500, 1500} {
		total := np.NAlloc // started ¬P
		if rnp.Started() || (rnp.ScheduledAt <= tt && tt < rnp.ScheduledAt+rnp.Duration) {
			total += rnp.NAlloc
		}
		for _, r := range []*request.Request{rp1, rp2} {
			if r.ScheduledAt <= tt {
				total += r.NAlloc
			}
		}
		if tt >= 1000 {
			total -= np.NAlloc // np ends at 1000
		}
		if total > 10 {
			t.Errorf("t=%v: total allocated %d > capacity 10", tt, total)
		}
	}
}

func TestScheduleAddRemoveApp(t *testing.T) {
	s := newSched(10)
	s.AddApp(1, 0)
	s.AddApp(2, 1)
	if s.App(1) == nil || s.App(3) != nil {
		t.Error("App lookup broken")
	}
	if got := s.RemoveApp(1); got == nil || got.ID != 1 {
		t.Error("RemoveApp broken")
	}
	if s.RemoveApp(1) != nil {
		t.Error("double remove should return nil")
	}
	if len(s.Apps()) != 1 {
		t.Error("apps list wrong after remove")
	}
}

func TestScheduleDuplicateAppPanics(t *testing.T) {
	s := newSched(10)
	s.AddApp(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate app ID should panic")
		}
	}()
	s.AddApp(1, 5)
}

func TestSchedulerAppOrderByConnectTime(t *testing.T) {
	s := newSched(10)
	s.AddApp(5, 3)
	s.AddApp(1, 1)
	s.AddApp(9, 2)
	ids := []int{}
	for _, a := range s.Apps() {
		ids = append(ids, a.ID)
	}
	want := []int{1, 9, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("app order = %v, want %v", ids, want)
		}
	}
}

func TestScheduleToStartOrdering(t *testing.T) {
	// Parent requests must be listed before their children so the RMS can
	// transfer node IDs along NEXT chains.
	s := newSched(10)
	a := s.AddApp(1, 0)
	pa := submit(t, s, a, 1, 5, 100, request.PreAlloc, request.Free, nil)
	np := submit(t, s, a, 2, 3, 100, request.NonPreempt, request.Coalloc, pa)
	out := s.Schedule(0)
	if len(out.ToStart) != 2 {
		t.Fatalf("ToStart = %v, want 2 entries", out.ToStart)
	}
	if out.ToStart[0] != pa || out.ToStart[1] != np {
		t.Errorf("ToStart order = [%v %v], want parent first", out.ToStart[0], out.ToStart[1])
	}
}

func TestScheduleCapacityAccessors(t *testing.T) {
	s := newSched(10)
	if s.Capacity(c0) != 10 {
		t.Error("Capacity accessor")
	}
	m := s.Clusters()
	m[c0] = 999
	if s.Capacity(c0) != 10 {
		t.Error("Clusters() must return a copy")
	}
	if s.Policy() != EquiPartitionFilling {
		t.Error("default policy should be filling")
	}
	s.SetPolicy(StrictEquiPartition)
	if s.Policy() != StrictEquiPartition {
		t.Error("SetPolicy")
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative capacity should panic")
		}
	}()
	NewScheduler(map[view.ClusterID]int{c0: -1})
}
