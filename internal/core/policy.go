package core

import (
	"math"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

// RoundInfo carries the per-round inputs a SchedulingPolicy may consult.
// Clusters is the scheduler's live resource model (cluster ID → node
// count); policies must treat it as read-only.
type RoundInfo struct {
	Now      float64
	Clusters map[view.ClusterID]int
}

// SchedulingPolicy decides, once per Schedule round, in which order the
// applications are offered resources and which of them are admitted at
// all. The paper's scheduler hardwires Conservative Back-Filling in
// connection order (§3.2); this interface makes that order — and the
// admission of each application — a pluggable decision, so tenant-aware
// policies (internal/tenants) can reorder or gate applications without
// touching the round algorithms.
//
// Contract: Order is called exactly once per round, before any Admit call
// of that round, so a policy may compute shared per-round state (usage,
// shares) in Order and reuse it from Admit. Order must return a
// permutation of apps — every element exactly once; it may return apps
// itself (unchanged) or fill buf (passed with length 0 and the previous
// round's capacity) and return it. Admit reports whether the application
// may schedule *pending* work this round: a non-admitted application
// keeps its started and fixed allocations (and they keep counting against
// availability), but its unfixed pending requests are left unscheduled
// (ScheduledAt = +Inf, NAlloc = 0) and it is shown only its own started
// pre-allocations plus the free space.
type SchedulingPolicy interface {
	// Name identifies the policy in logs, stats, and reports.
	Name() string
	// Stable reports that the policy is the identity: Order always
	// returns the connection-order slice unchanged and Admit always
	// admits. A stable policy lets the scheduler skip the per-application
	// policy calls entirely and keep every incremental-recomputation
	// cache, making its rounds byte-identical to the pre-policy
	// scheduler. A dynamic policy (Stable() == false) forces every round
	// to recompute from scratch: the chain-reuse and fold caches assume
	// connection order and are invalidated each round.
	Stable() bool
	// Order returns the applications in the order the round offers them
	// resources (the CBF iteration order and the eqSchedule slot order).
	Order(info RoundInfo, apps []*AppState, buf []*AppState) []*AppState
	// Admit reports whether the application may schedule pending work
	// this round.
	Admit(info RoundInfo, a *AppState) bool
}

// VictimNominator is implemented by policies that also nominate started
// preemptible allocations for revocation (cross-queue preemption). The
// scheduler core never revokes anything itself — the RMS asks the policy
// after a round and performs the revocations (freeing node IDs, notifying
// the application), then schedules again so the relieved demand fits into
// the freed capacity.
type VictimNominator interface {
	// Victims returns started, unfinished, preemptible requests to
	// revoke, in revocation order. It must nominate a victim only when
	// the revocation actually relieves a demanding application's
	// shortage (same cluster, real pending demand); an empty return
	// means no preemption this round. buf is a reusable backing array
	// (passed with length 0).
	Victims(info RoundInfo, apps []*AppState, buf []*request.Request) []*request.Request
}

// FIFOPolicy is the default scheduling policy: the paper's connection
// order (Conservative Back-Filling, §3.2), every application admitted.
// It is stable, so the scheduler's incremental caches stay live and
// rounds are byte-identical to the hardwired pre-policy behaviour.
type FIFOPolicy struct{}

// Name implements SchedulingPolicy.
func (FIFOPolicy) Name() string { return "fifo" }

// Stable implements SchedulingPolicy: FIFO is the identity policy.
func (FIFOPolicy) Stable() bool { return true }

// Order implements SchedulingPolicy: connection order, unchanged.
func (FIFOPolicy) Order(_ RoundInfo, apps []*AppState, _ []*AppState) []*AppState {
	return apps
}

// Admit implements SchedulingPolicy: every application is admitted.
func (FIFOPolicy) Admit(RoundInfo, *AppState) bool { return true }

// SetSchedulingPolicy installs the application-ordering/admission policy
// (nil restores the default FIFOPolicy). Dynamic policies force every
// round to full recomputation; see SchedulingPolicy.Stable.
func (s *Scheduler) SetSchedulingPolicy(p SchedulingPolicy) {
	if p == nil {
		p = FIFOPolicy{}
	}
	s.schedPolicy = p
	s.bumpStruct()
}

// SchedulingPolicy returns the active ordering/admission policy.
func (s *Scheduler) SchedulingPolicy() SchedulingPolicy { return s.schedPolicy }

// Info returns the RoundInfo a policy sees for a round at now. The
// Clusters map is the scheduler's live resource model, shared not
// copied — callers must treat it as read-only and must not retain it
// across structural changes (AttachCluster/DetachCluster).
func (s *Scheduler) Info(now float64) RoundInfo {
	return RoundInfo{Now: now, Clusters: s.clusters}
}

// Admitted reports whether the application was admitted in the last
// Schedule round. It is meaningful only under a dynamic policy; stable
// policies admit every application without recording anything.
func (a *AppState) Admitted() bool { return a.admitted }

// unschedulePending clears the schedule of every unfixed pending request
// in the set: a non-admitted application's pending work is invisible to
// the round. Fixed requests (started allocations and their
// constraint-chained descendants, whose start instants are already
// determined by running work) are left alone.
func unschedulePending(rs *request.Set) {
	for _, r := range rs.All() {
		if r.Fixed || r.Finished {
			continue
		}
		r.ScheduledAt = math.Inf(1)
		r.NAlloc = 0
		r.Wrapped = false
	}
}
