package apps

import (
	"testing"

	"coormv2/internal/amr"
	"coormv2/internal/clock"
	"coormv2/internal/core"
)

// TestTwoNEAsQueuedSequentially is the §4 multi-NEA scenario: "their
// pre-allocations are too large to fit simultaneously, in which case the
// one that arrived later will be queued after the other. In both cases,
// the RMS is able to guarantee that whenever one of the NEAs requests an
// update inside its pre-allocation, it can actually be served."
func TestTwoNEAsQueuedSequentially(t *testing.T) {
	prof1 := testProfile(21, 20)
	prof2 := testProfile(22, 20)
	params := amr.DefaultParams
	pre1 := params.NodesForEfficiency(prof1.Max(), 0.75)
	pre2 := params.NodesForEfficiency(prof2.Max(), 0.75)

	// Cluster fits either pre-allocation but not both.
	nodes := pre1 + pre2/2
	v := newEnv(nodes, core.EquiPartitionFilling)

	a1 := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof1, Params: params, TargetEff: 0.75,
		PreAllocN: pre1, Mode: NEADynamic, Horizon: 5000,
	})
	v.connect(a1, a1)
	if err := a1.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.Run(1)

	a2 := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof2, Params: params, TargetEff: 0.75,
		PreAllocN: pre2, Mode: NEADynamic, Horizon: 5000,
	})
	v.connect(a2, a2)
	if err := a2.Submit(); err != nil {
		t.Fatal(err)
	}

	v.e.RunAll()
	if a1.Err != nil || a2.Err != nil {
		t.Fatal(a1.Err, a2.Err)
	}
	if !a1.Finished() || !a2.Finished() {
		t.Fatalf("NEAs did not finish: %d/%d steps", a1.Step(), a2.Step())
	}
	// The second NEA was queued: it started only after the first released
	// its pre-allocation (= after a1 finished; horizons overlap otherwise).
	if a2.StartTime < a1.EndTime-1 {
		t.Errorf("second NEA started at %v, before the first finished at %v",
			a2.StartTime, a1.EndTime)
	}
	// Both ran all their updates without ever being denied: that is what
	// Finished() with Err == nil means — every update inside the
	// pre-allocation was served.
}

// TestTwoNEAsFitSimultaneously: with small enough pre-allocations both run
// at the same time (§4's other case).
func TestTwoNEAsFitSimultaneously(t *testing.T) {
	prof1 := testProfile(23, 15)
	prof2 := testProfile(24, 15)
	params := amr.DefaultParams
	pre1 := params.NodesForEfficiency(prof1.Max(), 0.75)
	pre2 := params.NodesForEfficiency(prof2.Max(), 0.75)

	v := newEnv(pre1+pre2, core.EquiPartitionFilling)
	a1 := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof1, Params: params, TargetEff: 0.75,
		PreAllocN: pre1, Mode: NEADynamic,
	})
	v.connect(a1, a1)
	if err := a1.Submit(); err != nil {
		t.Fatal(err)
	}
	a2 := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof2, Params: params, TargetEff: 0.75,
		PreAllocN: pre2, Mode: NEADynamic,
	})
	v.connect(a2, a2)
	if err := a2.Submit(); err != nil {
		t.Fatal(err)
	}
	v.e.RunAll()
	if !a1.Finished() || !a2.Finished() || a1.Err != nil || a2.Err != nil {
		t.Fatalf("NEAs did not finish cleanly (%v, %v)", a1.Err, a2.Err)
	}
	// Launched at the same time: both start within the first couple of
	// scheduling rounds.
	if a1.StartTime > 3 || a2.StartTime > 3 {
		t.Errorf("start times %v / %v, want both ≈ 0 (simultaneous launch)",
			a1.StartTime, a2.StartTime)
	}
}

// TestNEAWithPSAUnderStrictPolicy: the whole stack also works under the
// strict-equi-partition baseline (the PSA simply cannot fill beyond its
// partition).
func TestNEAWithPSAUnderStrictPolicy(t *testing.T) {
	v := newEnv(200, core.StrictEquiPartition)
	prof := testProfile(25, 20)
	params := amr.DefaultParams
	neq, _ := params.EquivalentStatic(prof, 0.75)
	a := NewNEA(clock.SimClock{E: v.e}, NEAConfig{
		Cluster: c0, Profile: prof, Params: params, TargetEff: 0.75,
		PreAllocN: neq, Mode: NEADynamic,
	})
	v.connect(a, a)
	if err := a.Submit(); err != nil {
		t.Fatal(err)
	}
	p := NewPSA(clock.SimClock{E: v.e}, PSAConfig{Cluster: c0, TaskDuration: 30})
	v.connect(p, p)
	v.e.RunAll()
	if !a.Finished() || a.Err != nil {
		t.Fatalf("NEA failed under strict policy: %v", a.Err)
	}
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if killed, why := p.Killed(); killed {
		t.Fatalf("PSA killed under strict policy: %s", why)
	}
}
