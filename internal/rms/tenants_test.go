package rms

import (
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/tenants"
	"coormv2/internal/view"
)

// finishWatcher extends testApp with the RequestObserver hook so a test
// can see quota-preemption revocations arrive as OnRequestFinished.
type finishWatcher struct {
	testApp
	finished []request.ID
}

func (a *finishWatcher) OnRequestFinished(id request.ID) { a.finished = append(a.finished, id) }
func (a *finishWatcher) OnRequestsReaped([]request.ID)   {}

// TestQuotaPreemptionRecoversGuarantee drives the DRF policy through the
// full server: two batch applications saturate the cluster with
// open-ended preemptible work; a guaranteed tenant then asks for its
// share. The policy nominates the batch allocations, the server revokes
// them (nodes back to the pool, OnRequestFinished delivered, counters
// stamped), and the guaranteed tenant physically starts on the freed
// nodes within the next rounds.
func TestQuotaPreemptionRecoversGuarantee(t *testing.T) {
	tree := tenants.NewTree()
	tree.MustAdd("prod", tenants.Resources{c0: 8}, nil)
	tree.MustAdd("batch", nil, nil)

	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	reg := obs.NewRegistry()
	s := NewServerWith(map[view.ClusterID]int{c0: 12}, clock.SimClock{E: e},
		WithScheduling(tenants.NewDRF(tree)),
		WithMetrics(rec),
		WithObs(reg, ""))

	var batch [2]*finishWatcher
	for i := range batch {
		batch[i] = &finishWatcher{}
		batch[i].sess = s.Connect(batch[i], WithTenant("batch"))
		if _, err := batch[i].sess.Request(RequestSpec{
			Cluster: c0, N: 6, Duration: math.Inf(1), Type: request.Preempt,
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	if loads := s.TenantLoads(); loads["batch"][c0] != 12 {
		t.Fatalf("batch holds %d nodes, want the full 12 before prod arrives", loads["batch"][c0])
	}

	prod := &finishWatcher{}
	prod.sess = s.Connect(prod, WithTenant("prod"))
	if tenant, ok := s.TenantOf(prod.sess.AppID()); !ok || tenant != "prod" {
		t.Fatalf("TenantOf = %q,%v, want prod,true", tenant, ok)
	}
	if _, err := prod.sess.Request(RequestSpec{
		Cluster: c0, N: 8, Duration: math.Inf(1), Type: request.NonPreempt,
	}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()

	// The guaranteed queue physically recovered its share — through
	// request-level revocation, within one re-scheduling interval, NOT
	// through the app-level grace kill (grace is 5 intervals and the
	// batch sessions must survive with their sessions intact).
	if loads := s.TenantLoads(); loads["prod"][c0] < 8 {
		t.Fatalf("prod holds %d nodes, want ≥ its guarantee of 8 (loads: %v)", loads["prod"][c0], loads)
	}
	for i := range batch {
		if batch[i].killed != "" {
			t.Fatalf("batch[%d] was grace-killed (%q); quota preemption must revoke requests, not apps", i, batch[i].killed)
		}
	}
	// The revocations were real terminations, visible everywhere: the
	// applications heard OnRequestFinished, the per-tenant counter and the
	// metrics counter advanced, and the event trace carries EvPreempt.
	revoked := len(batch[0].finished) + len(batch[1].finished)
	if revoked == 0 {
		t.Fatal("no batch request was revoked")
	}
	if got := s.TenantPreempts()["batch"]; got != int64(revoked) {
		t.Fatalf("TenantPreempts[batch] = %d, want %d", got, revoked)
	}
	if got := rec.TotalCount(metrics.PreemptedRequests); got != revoked {
		t.Fatalf("metrics preempted-requests = %d, want %d", got, revoked)
	}
	events := 0
	for _, ev := range reg.Events() {
		if ev.Type == obs.EvPreempt {
			events++
		}
	}
	if events != revoked {
		t.Fatalf("EvPreempt events = %d, want %d", events, revoked)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after preemption: %v", err)
	}

	// Per-tenant wait histograms materialized under their queue labels.
	snap := reg.Snapshot(s.Now())
	if _, ok := snap.Histograms["tenant.prod.wait_seconds"]; !ok {
		t.Fatalf("missing per-tenant wait histogram (have %v)", histNames(snap))
	}
	// And the counter source reports the revocations per tenant.
	if snap.Counters["tenants.preempted.batch"] != int64(revoked) {
		t.Fatalf("obs counter preempted.batch = %d, want %d",
			snap.Counters["tenants.preempted.batch"], revoked)
	}
}

func histNames(snap obs.Snapshot) []string {
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	return names
}

// TestTenantLabelInertUnderFIFO pins that tagging sessions without a
// scheduling policy changes nothing: the label rides along, no victim
// machinery runs, and the default path stays on the incremental caches.
func TestTenantLabelInertUnderFIFO(t *testing.T) {
	e, s := newTestServer(8)
	app := &testApp{}
	app.sess = s.Connect(app, WithTenant("org/team"))
	if _, err := app.sess.Request(RequestSpec{
		Cluster: c0, N: 4, Duration: math.Inf(1), Type: request.NonPreempt,
	}); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if tenant, ok := s.TenantOf(app.sess.AppID()); !ok || tenant != "org/team" {
		t.Fatalf("TenantOf = %q,%v, want org/team,true", tenant, ok)
	}
	if loads := s.TenantLoads(); loads["org/team"][c0] != 4 {
		t.Fatalf("TenantLoads = %v, want org/team holding 4", loads)
	}
	if n := len(s.TenantPreempts()); n != 0 {
		t.Fatalf("TenantPreempts has %d entries under FIFO, want 0", n)
	}
	// Two idle rounds on unchanged state must be served from the
	// incremental caches: tenant labels alone must not force recomputes.
	s.ScheduleNow()
	before := s.SchedStats()
	s.ScheduleNow()
	after := s.SchedStats()
	if after.CBFReused == before.CBFReused {
		t.Fatal("incremental caches dead under FIFO with tenant labels")
	}
	if after.FullRounds != before.FullRounds {
		t.Fatal("idle FIFO round recomputed from scratch under a tenant label")
	}
}
