package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"coormv2/internal/chaos"
	"coormv2/internal/federation"
	"coormv2/internal/rms"
	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

// nodeChaosTestConfig isolates node-level faults: shard MTTF is zero (no
// crashes), while machines fail and recover on a seeded renewal process
// aggressive enough that several started allocations always lose nodes.
func nodeChaosTestConfig(seed int64, pol rms.NodeRecoveryPolicy) ChaosReplayConfig {
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 60, MaxNodes: 8, MeanInterArr: 45, MeanRuntime: 600,
		PowerOfTwoBias: 0.5,
	})
	return ChaosReplayConfig{
		Jobs:          jobs,
		Shards:        3,
		NodesPerShard: 16,
		PSATaskDur:    120,
		Recovery:      federation.RequeueOnCrash,
		NodeRecovery:  pol,
		Chaos: chaos.Config{
			Seed:             seed,
			NodeMTTF:         300,
			MeanNodeRecovery: 150,
			Horizon:          2500,
		},
	}
}

var nodePolicies = []rms.NodeRecoveryPolicy{
	rms.KillOnNodeFailure,
	rms.RequeueOnNodeFailure,
	rms.CooperativeOnNodeFailure,
}

// TestNodeChaosDeterministic extends the determinism contract to machine
// faults: under every recovery policy, two same-seed runs are byte-identical
// — fault trace, node-fault counters, lost-work accounting and the
// event-stream fingerprint — while a different seed diverges.
func TestNodeChaosDeterministic(t *testing.T) {
	for _, pol := range nodePolicies {
		t.Run(pol.String(), func(t *testing.T) {
			a, err := RunChaosReplay(nodeChaosTestConfig(42, pol))
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunChaosReplay(nodeChaosTestConfig(42, pol))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed diverged:\nrun1: %+v\nrun2: %+v", a, b)
			}
			if a.NodeFails == 0 {
				t.Fatal("plan injected no node faults; the determinism check is vacuous")
			}
			if a.Crashes != 0 {
				t.Fatalf("shard MTTF is zero but %d shards crashed", a.Crashes)
			}
			c, err := RunChaosReplay(nodeChaosTestConfig(43, pol))
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a.Trace, c.Trace) && a.EventHash == c.EventHash {
				t.Fatal("different seeds produced an identical run")
			}
		})
	}
}

// TestNodeChaosInvariantMatrix is the node-fault half of the CI chaos
// matrix: three seeds × the three recovery policies. RunChaosReplay checks
// the federation invariants (node accounting included: free + held + failed
// must always partition each cluster) after every injected fault; the test
// adds the per-policy contracts on job fates and action counters.
func TestNodeChaosInvariantMatrix(t *testing.T) {
	for _, pol := range nodePolicies {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pol, seed), func(t *testing.T) {
				cfg := nodeChaosTestConfig(seed, pol)
				res, err := RunChaosReplay(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.NodeFails == 0 {
					t.Fatal("plan injected no node faults; matrix entry is vacuous")
				}
				total := res.Completed + res.Killed + res.Rejected
				if total != len(cfg.Jobs) {
					t.Fatalf("jobs unaccounted for: %d completed + %d killed + %d rejected != %d",
						res.Completed, res.Killed, res.Rejected, len(cfg.Jobs))
				}
				switch pol {
				case rms.KillOnNodeFailure:
					// Non-preemptible allocations die with their machines;
					// only scavenging PSAs (always reduced) survive faults.
					if res.NodeRequeued != 0 {
						t.Fatalf("kill policy requeued %d requests", res.NodeRequeued)
					}
					if res.NodeKilled == 0 || res.Killed == 0 {
						t.Fatalf("kill policy never killed anything: %+v", res)
					}
				case rms.RequeueOnNodeFailure:
					if res.NodeKilled != 0 || res.Killed != 0 {
						t.Fatalf("requeue policy killed requests/jobs: %+v", res)
					}
					if res.NodeRequeued == 0 {
						t.Fatal("requeue policy requeued nothing — recovery path not exercised")
					}
					if res.Completed != len(cfg.Jobs) {
						t.Fatalf("requeue completed %d of %d jobs", res.Completed, len(cfg.Jobs))
					}
				case rms.CooperativeOnNodeFailure:
					// Every application in this scenario checkpoints, so no
					// request is ever killed or blindly requeued.
					if res.NodeKilled != 0 || res.NodeRequeued != 0 {
						t.Fatalf("cooperative policy fell back to kill/requeue: %+v", res)
					}
					if res.NodeReduced == 0 {
						t.Fatal("cooperative policy reduced nothing — recovery path not exercised")
					}
					if res.Completed != len(cfg.Jobs) {
						t.Fatalf("cooperative completed %d of %d jobs", res.Completed, len(cfg.Jobs))
					}
				}
			})
		}
	}
}

// TestNodeChaosWasteComparison pins the qualitative waste ordering that
// motivates cooperative recovery (the paper's §3.1.4 argument): killing
// loses all elapsed work and the job, blind requeueing repeats it, while a
// checkpointing application resubmits only the remainder and loses
// (approximately) nothing. Summed over three seeds, cooperative lost work
// must be strictly below both alternatives, and the checkpoint path must
// actually run (resubmissions observed).
func TestNodeChaosWasteComparison(t *testing.T) {
	lost := make(map[rms.NodeRecoveryPolicy]float64, len(nodePolicies))
	resubmits := 0
	for _, pol := range nodePolicies {
		for seed := int64(1); seed <= 3; seed++ {
			res, err := RunChaosReplay(nodeChaosTestConfig(seed, pol))
			if err != nil {
				t.Fatalf("%v seed %d: %v", pol, seed, err)
			}
			lost[pol] += res.LostWork
			if pol == rms.CooperativeOnNodeFailure {
				resubmits += res.Resubmits
			}
		}
	}
	if lost[rms.KillOnNodeFailure] <= 0 || lost[rms.RequeueOnNodeFailure] <= 0 {
		t.Fatalf("kill/requeue lost no work (kill=%.0f requeue=%.0f); comparison is vacuous",
			lost[rms.KillOnNodeFailure], lost[rms.RequeueOnNodeFailure])
	}
	coop := lost[rms.CooperativeOnNodeFailure]
	if coop >= lost[rms.KillOnNodeFailure] || coop >= lost[rms.RequeueOnNodeFailure] {
		t.Fatalf("cooperative recovery did not reduce lost work: coop=%.0f kill=%.0f requeue=%.0f",
			coop, lost[rms.KillOnNodeFailure], lost[rms.RequeueOnNodeFailure])
	}
	if resubmits == 0 {
		t.Fatal("cooperative runs never resubmitted — the checkpoint path did not run")
	}
}

// TestNodeChaosWithShardCrashes interleaves machine faults with shard
// crashes and restarts on the same deterministic event stream: node faults
// landing on a crashed shard are deferred and re-applied when it restarts,
// and the whole composition must stay byte-identical across same-seed runs
// with the invariants holding after every event of either kind.
func TestNodeChaosWithShardCrashes(t *testing.T) {
	crashes, nodeFails := 0, 0
	for _, pol := range nodePolicies {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pol, seed), func(t *testing.T) {
				mk := func() ChaosReplayConfig {
					cfg := nodeChaosTestConfig(seed, pol)
					cfg.Chaos.MTTF = 700
					cfg.Chaos.MeanRestartDelay = 90
					return cfg
				}
				res, err := RunChaosReplay(mk())
				if err != nil {
					t.Fatal(err)
				}
				total := res.Completed + res.Killed + res.Rejected
				if total != 60 {
					t.Fatalf("jobs unaccounted for: %d completed + %d killed + %d rejected != 60",
						res.Completed, res.Killed, res.Rejected)
				}
				again, err := RunChaosReplay(mk())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("same seed diverged under node×shard chaos:\nrun1: %+v\nrun2: %+v", res, again)
				}
				crashes += res.Crashes
				nodeFails += res.NodeFails
			})
		}
	}
	if crashes == 0 || nodeFails == 0 {
		t.Fatalf("matrix exercised %d crashes and %d node faults; both kinds must interleave", crashes, nodeFails)
	}
}
