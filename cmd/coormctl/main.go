// Command coormctl is a small CLI client for a coormd daemon: it submits a
// rigid job and reports its lifecycle, watches the views the RMS pushes, or
// pretty-prints the daemon's live observability snapshot.
//
// Usage:
//
//	coormctl -addr 127.0.0.1:7777 run -cluster main -n 8 -d 30
//	coormctl -addr 127.0.0.1:7777 watch -for 10
//	coormctl stats -obs 127.0.0.1:6060           # daemon started with -pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/transport"
	"coormv2/internal/view"
)

// cliHandler prints notifications.
type cliHandler struct {
	started chan []int
	verbose bool
}

func (h *cliHandler) OnViews(np, p view.View) {
	if h.verbose {
		fmt.Printf("views: non-preemptive %s | preemptive %s\n", np, p)
	}
}

func (h *cliHandler) OnStart(id request.ID, nodeIDs []int) {
	fmt.Printf("request %d started on nodes %v\n", id, nodeIDs)
	select {
	case h.started <- nodeIDs:
	default:
	}
}

func (h *cliHandler) OnKill(reason string) {
	fmt.Printf("killed by RMS: %s\n", reason)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "daemon address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "coormctl: need a subcommand: run | watch | stats")
		os.Exit(2)
	}
	switch args[0] {
	case "run":
		runCmd(*addr, args[1:])
	case "watch":
		watchCmd(*addr, args[1:])
	case "stats":
		statsCmd(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "coormctl: unknown subcommand %q\n", args[0])
		os.Exit(2)
	}
}

func runCmd(addr string, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cluster := fs.String("cluster", "default", "cluster to run on")
	n := fs.Int("n", 1, "node count")
	d := fs.Float64("d", 60, "duration in seconds")
	fs.Parse(args)

	h := &cliHandler{started: make(chan []int, 1)}
	c, err := transport.Dial(addr, h)
	if err != nil {
		log.Fatalf("coormctl: %v", err)
	}
	defer c.Close()
	fmt.Printf("connected as application %d\n", c.AppID())

	id, err := c.Request(rms.RequestSpec{
		Cluster: view.ClusterID(*cluster), N: *n, Duration: *d, Type: request.NonPreempt,
	})
	if err != nil {
		log.Fatalf("coormctl: request: %v", err)
	}
	fmt.Printf("submitted rigid request %d (%d nodes, %gs)\n", id, *n, *d)

	select {
	case <-h.started:
	case <-time.After(5 * time.Minute):
		log.Fatal("coormctl: timed out waiting for the allocation")
	}
	fmt.Println("running; waiting for the allocation to end...")
	time.Sleep(time.Duration(*d * float64(time.Second)))
	if err := c.Done(id, nil); err != nil {
		// The RMS may have expired the allocation already; not fatal.
		fmt.Printf("done: %v\n", err)
	}
	fmt.Println("finished")
}

// statsCmd fetches /debug/obs from the daemon's pprof/obs side listener and
// renders the snapshot: counters, histogram quantiles, and the tail of the
// event ring. -json dumps the raw snapshot instead (the exact bytes the
// daemon served).
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	obsAddr := fs.String("obs", "127.0.0.1:6060", "daemon pprof/obs listener address (coormd -pprof)")
	raw := fs.Bool("json", false, "print the raw JSON snapshot")
	events := fs.Int("events", 10, "trailing events to show (0 = none)")
	fs.Parse(args)

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/obs", *obsAddr))
	if err != nil {
		log.Fatalf("coormctl: stats: %v (is coormd running with -pprof %s?)", err, *obsAddr)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("coormctl: stats: reading snapshot: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("coormctl: stats: %s: %s", resp.Status, body)
	}
	if *raw {
		os.Stdout.Write(body)
		return
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		log.Fatalf("coormctl: stats: decoding snapshot: %v", err)
	}

	fmt.Printf("snapshot at t=%.3fs; %d events recorded\n", snap.Time, snap.EventsTotal)
	if len(snap.Counters) > 0 {
		fmt.Println("\ncounters:")
		keys := make([]string, 0, len(snap.Counters))
		for k := range snap.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-42s %d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("\nhistograms:")
		keys := make([]string, 0, len(snap.Histograms))
		for k := range snap.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  %-34s %9s %12s %12s %12s %12s\n", "name", "count", "p50", "p99", "p999", "max")
		for _, k := range keys {
			h := snap.Histograms[k]
			fmt.Printf("  %-34s %9d %12.6g %12.6g %12.6g %12.6g\n", k, h.Count, h.P50, h.P99, h.P999, h.Max)
		}
	}
	if *events > 0 && len(snap.Events) > 0 {
		tail := snap.Events
		if len(tail) > *events {
			tail = tail[len(tail)-*events:]
		}
		fmt.Printf("\nlast %d events:\n", len(tail))
		for _, e := range tail {
			fmt.Printf("  #%-6d t=%-12.3f %-12s shard=%-8s app=%-4d cluster=%-8s req=%-4d v=%g\n",
				e.Seq, e.Time, e.Type, e.Shard, e.App, e.Cluster, e.Request, e.Value)
		}
	}
}

func watchCmd(addr string, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	dur := fs.Float64("for", 30, "seconds to watch")
	fs.Parse(args)

	h := &cliHandler{started: make(chan []int, 1), verbose: true}
	c, err := transport.Dial(addr, h)
	if err != nil {
		log.Fatalf("coormctl: %v", err)
	}
	defer c.Close()
	fmt.Printf("connected as application %d; watching views for %gs\n", c.AppID(), *dur)
	time.Sleep(time.Duration(*dur * float64(time.Second)))
}
