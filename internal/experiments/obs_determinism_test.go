package experiments

import (
	"bytes"
	"strings"
	"testing"

	"coormv2/internal/chaos"
	"coormv2/internal/federation"
	"coormv2/internal/obs"
	"coormv2/internal/rms"
	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

// obsChaosConfig is the chaos scenario under full observability: shard and
// node faults, so every recording point — round latency, admit→start wait,
// reap lag, merge latency, outage, node repair — fires at least once.
func obsChaosConfig(seed int64, reg *obs.Registry) ChaosReplayConfig {
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 60, MaxNodes: 8, MeanInterArr: 45, MeanRuntime: 600,
		PowerOfTwoBias: 0.5,
	})
	return ChaosReplayConfig{
		Jobs:          jobs,
		Shards:        3,
		NodesPerShard: 16,
		PSATaskDur:    120,
		Recovery:      federation.RequeueOnCrash,
		NodeRecovery:  rms.RequeueOnNodeFailure,
		Chaos: chaos.Config{
			Seed:             seed,
			MTTF:             700,
			MeanRestartDelay: 90,
			Horizon:          2500,
			NodeMTTF:         900,
			MeanNodeRecovery: 150,
		},
		Obs: reg,
	}
}

// TestObsSnapshotDeterministic pins the observability layer into the
// determinism contract: two same-seed chaos replays produce byte-identical
// snapshot JSON — histograms, flattened counters, and the structured event
// ring included. Durations are measured on the simulated clock and sim-time
// latencies are pure functions of the seed, so nothing in the snapshot may
// depend on wall time.
func TestObsSnapshotDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		reg := obs.NewRegistry()
		res, err := RunChaosReplay(obsChaosConfig(seed, reg))
		if err != nil {
			t.Fatal(err)
		}
		if res.Snapshot == nil {
			t.Fatal("Obs was set but the result carries no snapshot")
		}
		js, err := res.Snapshot.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different snapshots:\n%s\n----\n%s", a, b)
	}
	c := run(43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced an identical snapshot")
	}
}

// TestObsSnapshotCoverage checks that the chaos replay actually exercises
// every advertised recording point: the snapshot must carry non-empty wait,
// round, reap, merge, outage and node-repair histograms, the sched/merge/
// metrics counter groups, and crash/restart/node events in the ring.
func TestObsSnapshotCoverage(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunChaosReplay(obsChaosConfig(42, reg))
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot
	for _, h := range []string{
		"shard0.rms.round_seconds",
		"shard0.rms.wait_seconds",
		"shard0.rms.reap_lag_seconds",
		"fed.merge_seconds",
		"fed.outage_seconds",
		"chaos.recovery_seconds",
		"chaos.node_recovery_seconds",
	} {
		st, ok := snap.Histograms[h]
		if !ok {
			t.Fatalf("snapshot is missing histogram %q (have %v)", h, histNames(snap))
		}
		if st.Count == 0 {
			t.Errorf("histogram %q recorded nothing", h)
		}
	}
	wantCounterPrefixes := []string{"shard0.sched.", "fed.merge.", "metrics."}
	for _, p := range wantCounterPrefixes {
		found := false
		for k := range snap.Counters {
			if strings.HasPrefix(k, p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no counter with prefix %q in snapshot", p)
		}
	}
	types := make(map[string]int)
	for _, ev := range snap.Events {
		types[ev.Type]++
	}
	for _, want := range []string{obs.EvRound, obs.EvStart, obs.EvCrash, obs.EvRestart, obs.EvNodeFail, obs.EvNodeRecover} {
		if types[want] == 0 && snap.EventsTotal <= uint64(len(snap.Events)) {
			// Only assert when the ring did not wrap: a wrapped ring may have
			// evicted early one-off events (crashes land long before the tail
			// of round events).
			t.Errorf("no %q event in ring (types: %v)", want, types)
		}
	}
	if snap.EventsTotal == 0 {
		t.Fatal("no events recorded at all")
	}
}

func histNames(s *obs.Snapshot) []string {
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	return names
}
