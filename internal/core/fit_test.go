package core

import (
	"math"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

func prep(rs *request.Set) {
	// toView must run first to set Fixed flags.
	toView(rs, nil, 0)
}

func TestFitFreeRequestFirstHole(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	rs.Add(r)
	prep(rs)
	// 2 nodes until t=50, then 8.
	avail := view.New().AddRect("c0", 0, 50, 2).AddRect("c0", 50, math.Inf(1), 8)
	vo := fit(rs, avail, 0)
	if r.ScheduledAt != 50 {
		t.Errorf("ScheduledAt = %v, want 50", r.ScheduledAt)
	}
	if vo.Get("c0").Value(60) != 4 || vo.Get("c0").Value(40) != 0 {
		t.Errorf("occupancy view wrong: %v", vo)
	}
}

func TestFitRespectsT0(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 1, 10, request.NonPreempt, request.Free, nil)
	rs.Add(r)
	prep(rs)
	avail := view.Constant(10, "c0")
	fit(rs, avail, 42)
	if r.ScheduledAt != 42 {
		t.Errorf("ScheduledAt = %v, want 42 (t0)", r.ScheduledAt)
	}
}

func TestFitUnschedulableGoesToInfinity(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 100, 10, request.NonPreempt, request.Free, nil)
	rs.Add(r)
	prep(rs)
	avail := view.Constant(10, "c0")
	vo := fit(rs, avail, 0)
	if !math.IsInf(r.ScheduledAt, 1) {
		t.Errorf("ScheduledAt = %v, want +Inf", r.ScheduledAt)
	}
	if !vo.Get("c0").IsZero() {
		t.Error("unschedulable request must not occupy resources")
	}
}

func TestFitCoallocSameStart(t *testing.T) {
	rs := request.NewSet()
	a := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	b := newReq(2, 2, 100, request.NonPreempt, request.Coalloc, a)
	rs.Add(a)
	rs.Add(b)
	prep(rs)
	avail := view.Constant(10, "c0")
	fit(rs, avail, 5)
	if a.ScheduledAt != 5 || b.ScheduledAt != 5 {
		t.Errorf("COALLOC pair scheduled at %v / %v, want both 5", a.ScheduledAt, b.ScheduledAt)
	}
}

func TestFitCoallocDelaysParent(t *testing.T) {
	// The child needs 8 nodes which are only available from t=100; the
	// parent (needing 2) must be delayed to start together (lines 22–24).
	rs := request.NewSet()
	a := newReq(1, 2, 50, request.NonPreempt, request.Free, nil)
	b := newReq(2, 8, 50, request.NonPreempt, request.Coalloc, a)
	rs.Add(a)
	rs.Add(b)
	prep(rs)
	avail := view.New().AddRect("c0", 0, 100, 4).AddRect("c0", 100, math.Inf(1), 10)
	fit(rs, avail, 0)
	if b.ScheduledAt != 100 {
		t.Errorf("child ScheduledAt = %v, want 100", b.ScheduledAt)
	}
	if a.ScheduledAt != 100 {
		t.Errorf("parent should be delayed to 100, got %v", a.ScheduledAt)
	}
}

func TestFitNextFollowsParent(t *testing.T) {
	rs := request.NewSet()
	a := newReq(1, 4, 60, request.NonPreempt, request.Free, nil)
	b := newReq(2, 6, 40, request.NonPreempt, request.Next, a)
	rs.Add(a)
	rs.Add(b)
	prep(rs)
	avail := view.Constant(10, "c0")
	fit(rs, avail, 0)
	if a.ScheduledAt != 0 {
		t.Errorf("parent at %v, want 0", a.ScheduledAt)
	}
	if b.ScheduledAt != 60 {
		t.Errorf("NEXT child at %v, want 60 (parent end)", b.ScheduledAt)
	}
}

func TestFitNextDelaysParentWhenGapWouldForm(t *testing.T) {
	// Child needs capacity that only exists from t=200. For the child to
	// start exactly when the parent ends, the parent must start at 200-60.
	rs := request.NewSet()
	a := newReq(1, 2, 60, request.NonPreempt, request.Free, nil)
	b := newReq(2, 8, 40, request.NonPreempt, request.Next, a)
	rs.Add(a)
	rs.Add(b)
	prep(rs)
	avail := view.New().AddRect("c0", 0, 200, 4).AddRect("c0", 200, math.Inf(1), 10)
	fit(rs, avail, 0)
	if b.ScheduledAt != 200 {
		t.Errorf("child at %v, want 200", b.ScheduledAt)
	}
	if a.ScheduledAt != 140 {
		t.Errorf("parent at %v, want 140 (delayed so child follows)", a.ScheduledAt)
	}
}

func TestFitNextOnFixedParentNoLivelock(t *testing.T) {
	// The parent already started; its NEXT child cannot start exactly at the
	// parent's end because resources are missing. The paper's pseudo-code
	// would ping-pong forever; we accept the later start (documented
	// deviation).
	rs := request.NewSet()
	a := newReq(1, 4, 60, request.NonPreempt, request.Free, nil)
	a.StartedAt = 0
	b := newReq(2, 8, 40, request.NonPreempt, request.Next, a)
	rs.Add(a)
	rs.Add(b)
	toView(rs, nil, 0)
	if !b.Fixed {
		// b is fixed by toView (child of started request); fit must leave it.
		t.Fatal("NEXT child of started parent should be fixed by toView")
	}
	avail := view.New().AddRect("c0", 0, 500, 2)
	vo := fit(rs, avail, 0)
	// b stays fixed at parent's end, regardless of availability: updates
	// inside a pre-allocation are guaranteed, and validation is the RMS's
	// job, not fit's.
	if b.ScheduledAt != 60 {
		t.Errorf("fixed child moved to %v", b.ScheduledAt)
	}
	_ = vo
}

func TestFitPreemptCoallocSnapsAndShrinks(t *testing.T) {
	// The malleable-application pattern of §4: a preemptible request
	// COALLOCated with a non-preemptible rmin snaps to its start and is
	// shrunk to the available resources (Alg. 2 lines 17–19).
	rs := request.NewSet()
	rmin := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	rmin.ScheduledAt = 10
	rmin.Fixed = true // scheduled by the ¬P pass of Algorithm 4
	extra := newReq(2, 20, 100, request.Preempt, request.Coalloc, rmin)
	rs.Add(extra) // note: rmin is NOT in this set (it lives in R_¬P)
	for _, r := range rs.All() {
		r.Fixed = false
	}
	avail := view.New().AddRect("c0", 0, math.Inf(1), 6)
	fit(rs, avail, 0)
	if extra.ScheduledAt != 10 {
		t.Errorf("preempt COALLOC at %v, want 10 (snap to parent)", extra.ScheduledAt)
	}
	if extra.NAlloc != 6 {
		t.Errorf("NAlloc = %d, want 6 (shrunk to availability)", extra.NAlloc)
	}
}

func TestFitPreemptNextShrinks(t *testing.T) {
	rs := request.NewSet()
	a := newReq(1, 5, 50, request.Preempt, request.Free, nil)
	b := newReq(2, 9, 50, request.Preempt, request.Next, a)
	rs.Add(a)
	rs.Add(b)
	prep(rs)
	avail := view.New().AddRect("c0", 0, 50, 5).AddRect("c0", 50, 100, 3)
	fit(rs, avail, 0)
	if a.ScheduledAt != 0 || b.ScheduledAt != 50 {
		t.Errorf("chain scheduled at %v/%v", a.ScheduledAt, b.ScheduledAt)
	}
	if b.NAlloc != 3 {
		t.Errorf("preempt NEXT NAlloc = %d, want 3 (shrunk, not delayed)", b.NAlloc)
	}
}

func TestFitParentOutsideSetNotDelayed(t *testing.T) {
	// A COALLOC request whose parent lives in another set must not try to
	// move the parent.
	outside := newReq(99, 4, 100, request.NonPreempt, request.Free, nil)
	outside.ScheduledAt = 10
	outside.Fixed = true
	rs := request.NewSet()
	b := newReq(2, 8, 50, request.NonPreempt, request.Coalloc, outside)
	rs.Add(b)
	for _, r := range rs.All() {
		r.Fixed = false
	}
	avail := view.New().AddRect("c0", 100, math.Inf(1), 10)
	fit(rs, avail, 0)
	if b.ScheduledAt != 100 {
		t.Errorf("child at %v, want 100 (cannot co-start, parent immovable)", b.ScheduledAt)
	}
	if outside.ScheduledAt != 10 {
		t.Error("fit moved a request from another set")
	}
}

func TestFitSkipsFixedRequests(t *testing.T) {
	rs := request.NewSet()
	a := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	a.StartedAt = 20
	b := newReq(2, 2, 50, request.NonPreempt, request.Free, nil)
	rs.Add(a)
	rs.Add(b)
	toView(rs, nil, 25)
	avail := view.Constant(10, "c0")
	vo := fit(rs, avail, 25)
	if a.ScheduledAt != 20 {
		t.Error("fit must not move fixed requests")
	}
	if b.ScheduledAt != 25 {
		t.Errorf("pending request at %v, want 25", b.ScheduledAt)
	}
	// The occupancy view contains only non-fixed requests.
	if vo.Get("c0").Value(26) != 2 {
		t.Errorf("occupancy of pending = %d, want 2", vo.Get("c0").Value(26))
	}
}

func TestFitInfiniteDurationRequest(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 3, math.Inf(1), request.Preempt, request.Free, nil)
	rs.Add(r)
	prep(rs)
	avail := view.Constant(5, "c0")
	vo := fit(rs, avail, 7)
	if r.ScheduledAt != 7 {
		t.Errorf("infinite request at %v, want 7", r.ScheduledAt)
	}
	if vo.Get("c0").Value(1e12) != 3 {
		t.Error("infinite occupancy should extend forever")
	}
}
