// Package apps implements the application behaviours of §4 against the
// CooRMv2 protocol: rigid, moldable, malleable, fully-predictably evolving,
// non-predictably evolving (the synthetic AMR of the evaluation) and the
// malleable parameter-sweep application (PSA).
//
// Applications are event-driven: they react to OnViews/OnStart/OnKill
// notifications and drive their internal progress with clock timers, so the
// same code runs inside the discrete-event simulator and against the TCP
// client. Inside the simulator every callback runs on the event loop, which
// keeps runs deterministic.
package apps

import (
	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
)

// Session is the application-side handle to the RMS. Both *rms.Session
// (in-process, used by the simulator) and *transport.Client (TCP) satisfy
// it.
type Session interface {
	Request(spec rms.RequestSpec) (request.ID, error)
	Done(id request.ID, released []int) error
}

// base carries the plumbing shared by all applications.
type base struct {
	clk  clock.Clock
	sess Session

	killed     bool
	killReason string
}

// Attach hands the application its session. It must be called right after
// Connect and before the event loop runs.
func (b *base) Attach(s Session) { b.sess = s }

// Killed reports whether the RMS terminated the session, and why.
func (b *base) Killed() (bool, string) { return b.killed, b.killReason }

// OnKill implements rms.AppHandler.
func (b *base) OnKill(reason string) {
	b.killed = true
	b.killReason = reason
}

// now returns the current time.
func (b *base) now() float64 { return b.clk.Now() }

// lastN returns the last k elements of ids (the IDs an application gives
// back when shrinking; keeping the lowest IDs makes traces stable).
func lastN(ids []int, k int) []int {
	if k <= 0 {
		return nil
	}
	if k >= len(ids) {
		return ids
	}
	return ids[len(ids)-k:]
}
