package workload

import (
	"bytes"
	"strings"
	"testing"

	"coormv2/internal/stats"
)

const sampleSWF = `; Version: 2.2
; Computer: Test Cluster
1 0 10 3600 64 -1 -1 64 3600 -1 1 1 1 -1 1 -1 -1 -1
2 120 5 1800 -1 -1 -1 32 1800 -1 1 2 1 -1 1 -1 -1 -1
3 300 0 0 16 -1 -1 16 600 -1 0 3 1 -1 1 -1 -1 -1
4 60 2 900 8 -1 -1 -1 900 -1 1 4 1 -1 1 -1 -1 -1
`

func TestParseSWF(t *testing.T) {
	jobs, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 has runtime 0 and is skipped; job 4 falls back to allocated
	// processors (field 5 = 8) because requested is -1.
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	// Sorted by submit time: 1 (0), 4 (60), 2 (120).
	if jobs[0].ID != 1 || jobs[1].ID != 4 || jobs[2].ID != 2 {
		t.Errorf("order = %d %d %d", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
	if jobs[0].Nodes != 64 || jobs[0].Runtime != 3600 {
		t.Errorf("job 1 = %+v", jobs[0])
	}
	if jobs[1].Nodes != 8 {
		t.Errorf("job 4 should fall back to allocated processors: %+v", jobs[1])
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line should error")
	}
	bad := strings.Replace(sampleSWF, "1 0 10", "x 0 10", 1)
	if _, err := ParseSWF(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric job id should error")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := []Job{
		{ID: 1, Submit: 0, Runtime: 100, Nodes: 4},
		{ID: 2, Submit: 50, Runtime: 200, Nodes: 8},
	}
	var buf bytes.Buffer
	if err := FormatSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip count: %d", len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("job %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestSynthetic(t *testing.T) {
	rng := stats.NewRand(1)
	jobs := Synthetic(rng, SyntheticConfig{Jobs: 500, MaxNodes: 64, PowerOfTwoBias: 1})
	if len(jobs) != 500 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	prev := -1.0
	for _, j := range jobs {
		if j.Submit < prev {
			t.Fatal("submits not monotone")
		}
		prev = j.Submit
		if j.Nodes < 1 || j.Nodes > 64 {
			t.Fatalf("nodes out of range: %d", j.Nodes)
		}
		if j.Nodes&(j.Nodes-1) != 0 {
			t.Fatalf("bias=1 should force powers of two, got %d", j.Nodes)
		}
		if j.Runtime < 60 {
			t.Fatalf("runtime below floor: %v", j.Runtime)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(stats.NewRand(3), SyntheticConfig{Jobs: 50})
	b := Synthetic(stats.NewRand(3), SyntheticConfig{Jobs: 50})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSyntheticEmpty(t *testing.T) {
	if Synthetic(stats.NewRand(1), SyntheticConfig{}) != nil {
		t.Error("zero jobs should return nil")
	}
}

func TestSummarize(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, Runtime: 100, Nodes: 4},
		{ID: 2, Submit: 500, Runtime: 100, Nodes: 8},
	}
	s := Summarize(jobs)
	if s.Jobs != 2 || s.TotalArea != 1200 || s.MaxNodes != 8 || s.Makespan != 600 {
		t.Errorf("Stats = %+v", s)
	}
	if z := Summarize(nil); z.Jobs != 0 || z.TotalArea != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}
