package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"coormv2/internal/chaos"
	"coormv2/internal/federation"
	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

// gangTestConfig is chaosTestConfig plus cross-shard gangs: half the rigid
// jobs get a companion leg on the next shard's cluster, so every run drives
// the two-phase reservation coordinator through the same fault plan the
// plain chaos matrix uses.
func gangTestConfig(seed int64, pol federation.RecoveryPolicy) ChaosReplayConfig {
	cfg := chaosTestConfig(seed, pol)
	cfg.GangFraction = 0.5
	return cfg
}

// gangMigrationTestConfig layers gangs onto the skewed rebalancing scenario:
// 3 shards × 2 clusters with a live Rebalancer, so holds and commits
// interleave with cluster migrations *and* crash/restart faults.
func gangMigrationTestConfig(seed int64, pol federation.RecoveryPolicy) ChaosReplayConfig {
	cfg := rebalanceTestConfig(seed, true)
	cfg.Recovery = pol
	cfg.GangFraction = 0.5
	cfg.Chaos = chaos.Config{
		Seed:             seed,
		MTTF:             900,
		MeanRestartDelay: 90,
		Horizon:          2500,
	}
	return cfg
}

// TestGangChaosMatrix is the headline satellite: crash participant and
// coordinator shards between hold and commit across 3 seeds × both recovery
// policies. RunChaosReplay checks federation invariants after every fault
// and once post-run — no leaked holds, no half-committed gangs — and the
// test pins job accounting plus same-seed byte-identical results (fault
// trace, gang counters, and the FNV event-stream fingerprint).
func TestGangChaosMatrix(t *testing.T) {
	committed := 0
	for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pol, seed), func(t *testing.T) {
				cfg := gangTestConfig(seed, pol)
				res, err := RunChaosReplay(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Crashes == 0 {
					t.Fatal("plan produced no crashes; matrix entry is vacuous")
				}
				total := res.Completed + res.Killed + res.Rejected
				if total != len(cfg.Jobs) {
					t.Fatalf("jobs unaccounted for: %d completed + %d killed + %d rejected != %d",
						res.Completed, res.Killed, res.Rejected, len(cfg.Jobs))
				}
				again, err := RunChaosReplay(gangTestConfig(seed, pol))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("same seed diverged under chaos×gang:\nrun1: %+v\nrun2: %+v", res, again)
				}
				committed += res.GangsCommitted
			})
		}
	}
	if committed == 0 {
		t.Fatal("no gang committed anywhere in the matrix — the reservation path was never exercised")
	}
}

// TestGangChaosMigrationMatrix interleaves all three mechanisms: two-phase
// reservations, live cluster migration (rebalancer), and shard crashes.
// Invariants are checked inside RunChaosReplay after every fault; the test
// adds determinism and coverage (both gangs and migrations must happen
// somewhere in the matrix).
func TestGangChaosMigrationMatrix(t *testing.T) {
	committed, migrations := 0, 0
	for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pol, seed), func(t *testing.T) {
				cfg := gangMigrationTestConfig(seed, pol)
				res, err := RunChaosReplay(cfg)
				if err != nil {
					t.Fatal(err)
				}
				total := res.Completed + res.Killed + res.Rejected
				if total != len(cfg.Jobs) {
					t.Fatalf("jobs unaccounted for: %d completed + %d killed + %d rejected != %d",
						res.Completed, res.Killed, res.Rejected, len(cfg.Jobs))
				}
				again, err := RunChaosReplay(gangMigrationTestConfig(seed, pol))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("same seed diverged under chaos×migration×gang:\nrun1: %+v\nrun2: %+v", res, again)
				}
				committed += res.GangsCommitted
				migrations += res.Migrations
			})
		}
	}
	if committed == 0 {
		t.Fatal("no gang committed anywhere in the matrix")
	}
	if migrations == 0 {
		t.Fatal("no migration happened anywhere in the matrix — the interleaving is vacuous")
	}
}

// TestGangZeroFaultPlan pins the fault-free baseline: with gangs on and an
// empty fault plan every job completes, at least one gang commits, and no
// gang is ever aborted by the coordinator's crash paths.
func TestGangZeroFaultPlan(t *testing.T) {
	cfg := gangTestConfig(7, federation.KillOnCrash)
	cfg.Chaos = chaos.Config{}
	res, err := RunChaosReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(cfg.Jobs) {
		t.Fatalf("completed %d of %d jobs without faults", res.Completed, len(cfg.Jobs))
	}
	if res.GangsCommitted == 0 {
		t.Fatal("no gang committed in a fault-free run")
	}
}

// TestGangSingleShardNeverEngagesCoordinator is the shards=1 differential:
// with every cluster on one shard a "gang" companion is an ordinary
// same-shard relation, so the reservation machinery must stay cold — the
// gang counters never move — while the run still completes and stays
// deterministic. (The byte-level single-RMS equivalence for relation-free
// traces lives in federated_differential_test.go; this pins that relations
// don't open a gap at Shards == 1.)
func TestGangSingleShardNeverEngagesCoordinator(t *testing.T) {
	jobs := workload.Synthetic(stats.NewRand(9), workload.SyntheticConfig{
		Jobs: 40, MaxNodes: 6, MeanInterArr: 45, MeanRuntime: 600,
		PowerOfTwoBias: 0.5,
	})
	cfg := ChaosReplayConfig{
		Jobs:             jobs,
		Shards:           1,
		ClustersPerShard: 2,
		NodesPerShard:    16,
		PSATaskDur:       120,
		GangFraction:     0.5,
		Recovery:         federation.RequeueOnCrash,
		Chaos:            chaos.Config{Seed: 9}, // MTTF 0 ⇒ empty fault plan
	}
	res, err := RunChaosReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GangsCommitted != 0 || res.GangsAborted != 0 || res.GangsRetried != 0 {
		t.Fatalf("single-shard run engaged the gang coordinator: %+v", res)
	}
	if res.Completed != len(cfg.Jobs) {
		t.Fatalf("completed %d of %d jobs", res.Completed, len(cfg.Jobs))
	}
	again, err := RunChaosReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("single-shard gang run diverged:\nrun1: %+v\nrun2: %+v", res, again)
	}
}
