package rms

import (
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

const c0 = view.ClusterID("c0")

// testApp is a programmable AppHandler that records everything.
type testApp struct {
	sess   *Session
	views  []struct{ np, p view.View }
	starts []struct {
		id  request.ID
		ids []int
	}
	killed  string
	onViews func(np, p view.View)
	onStart func(id request.ID, ids []int)
}

func (a *testApp) OnViews(np, p view.View) {
	a.views = append(a.views, struct{ np, p view.View }{np, p})
	if a.onViews != nil {
		a.onViews(np, p)
	}
}

func (a *testApp) OnStart(id request.ID, ids []int) {
	a.starts = append(a.starts, struct {
		id  request.ID
		ids []int
	}{id, ids})
	if a.onStart != nil {
		a.onStart(id, ids)
	}
}

func (a *testApp) OnKill(reason string) { a.killed = reason }

func (a *testApp) lastViews(t *testing.T) (view.View, view.View) {
	t.Helper()
	if len(a.views) == 0 {
		t.Fatal("no views received")
	}
	v := a.views[len(a.views)-1]
	return v.np, v.p
}

func newTestServer(nodes int) (*sim.Engine, *Server) {
	e := sim.NewEngine()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{c0: nodes},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
	})
	return e, s
}

func TestConnectReceivesInitialViews(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	e.RunAll()
	np, p := app.lastViews(t)
	if np.Get(c0).Value(0) != 10 {
		t.Errorf("initial non-preemptive view = %d, want 10", np.Get(c0).Value(0))
	}
	if p.Get(c0).Value(0) != 10 {
		t.Errorf("initial preemptive view = %d, want 10", p.Get(c0).Value(0))
	}
}

func TestRigidJobLifecycle(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	id, err := app.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(app.starts) != 1 || app.starts[0].id != id {
		t.Fatalf("starts = %v", app.starts)
	}
	if len(app.starts[0].ids) != 4 {
		t.Errorf("node IDs = %v, want 4 IDs", app.starts[0].ids)
	}
	// After the 100 s duration the resources are free again.
	if got := s.pools[c0].available(); got != 10 {
		t.Errorf("pool after expiry = %d, want 10", got)
	}
	if e.Now() < 100 {
		t.Errorf("simulation ended at %v, expected to pass the expiry wake-up", e.Now())
	}
}

func TestRequestValidationErrors(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	e.RunAll()
	if _, err := app.sess.Request(RequestSpec{Cluster: "nope", N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("unknown cluster should error")
	}
	if _, err := app.sess.Request(RequestSpec{Cluster: c0, N: 0, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := app.sess.Request(RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: 999}); err == nil {
		t.Error("dangling RelatedTo should error")
	}
	if err := app.sess.Done(999, nil); err == nil {
		t.Error("done on unknown request should error")
	}
}

func TestDoneOnPendingWithdraws(t *testing.T) {
	e, s := newTestServer(4)
	a := &testApp{}
	a.sess = s.Connect(a)
	// Fill the cluster so the next request queues.
	id1, _ := a.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 1000, Type: request.NonPreempt})
	e.Run(5)
	_ = id1
	b := &testApp{}
	b.sess = s.Connect(b)
	id2, _ := b.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 100, Type: request.NonPreempt})
	e.Run(e.Now() + 10)
	if len(b.starts) != 0 {
		t.Fatal("queued request must not start")
	}
	if err := b.sess.Done(id2, nil); err != nil {
		t.Fatalf("withdrawing pending request: %v", err)
	}
	e.RunAll()
	if len(b.starts) != 0 {
		t.Error("withdrawn request must never start")
	}
}

func TestSpontaneousUpdateGrow(t *testing.T) {
	// §3.1.3 / Fig. 6(b): request(new) NEXT current, then done(current).
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	cur, _ := app.sess.Request(RequestSpec{Cluster: c0, N: 2, Duration: 1000, Type: request.NonPreempt})
	e.Run(5)
	if len(app.starts) != 1 {
		t.Fatal("initial request did not start")
	}
	firstIDs := app.starts[0].ids

	next, err := app.sess.Request(RequestSpec{Cluster: c0, N: 5, Duration: 1000,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: cur})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.sess.Done(cur, nil); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if len(app.starts) != 2 || app.starts[1].id != next {
		t.Fatalf("update did not start: %v", app.starts)
	}
	got := app.starts[1].ids
	if len(got) != 5 {
		t.Fatalf("grown allocation = %v, want 5 IDs", got)
	}
	// The original IDs must be carried over (NEXT shares common resources).
	for _, id := range firstIDs {
		if !containsInt(got, id) {
			t.Errorf("ID %d not carried over into %v", id, got)
		}
	}
}

func TestSpontaneousUpdateShrink(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	cur, _ := app.sess.Request(RequestSpec{Cluster: c0, N: 5, Duration: 1000, Type: request.NonPreempt})
	e.Run(5)
	held := app.starts[0].ids

	next, _ := app.sess.Request(RequestSpec{Cluster: c0, N: 2, Duration: 1000,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: cur})
	// The application chooses which IDs to release (§3.1.2).
	release := held[2:]
	if err := app.sess.Done(cur, release); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if len(app.starts) != 2 || app.starts[1].id != next {
		t.Fatalf("shrink update did not start: %+v", app.starts)
	}
	got := app.starts[1].ids
	if len(got) != 2 || got[0] != held[0] || got[1] != held[1] {
		t.Errorf("kept IDs = %v, want %v", got, held[:2])
	}
	if s.pools[c0].available() != 8 {
		t.Errorf("pool = %d, want 8 free", s.pools[c0].available())
	}
}

func TestDoneWithForeignIDErrors(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	cur, _ := app.sess.Request(RequestSpec{Cluster: c0, N: 2, Duration: 1000, Type: request.NonPreempt})
	e.Run(5)
	_, _ = app.sess.Request(RequestSpec{Cluster: c0, N: 1, Duration: 1000,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: cur})
	if err := app.sess.Done(cur, []int{99}); err == nil {
		t.Error("releasing a node ID the request does not hold should error")
	}
	// The failed done() must leave the request untouched and retryable —
	// not half-finished with node IDs that can never return to the pool.
	if len(app.starts) != 1 {
		t.Fatalf("starts = %v", app.starts)
	}
	if err := app.sess.Done(cur, app.starts[0].ids[:1]); err != nil {
		t.Fatalf("retrying done() after a rejected release: %v", err)
	}
	e.RunAll()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreallocationAndMalleableFilling(t *testing.T) {
	// The Fig. 8 interaction: an NEA pre-allocates, allocates little; a
	// malleable app fills the rest; the NEA's spontaneous update reclaims.
	e, s := newTestServer(10)

	nea := &testApp{}
	nea.sess = s.Connect(nea)
	pa, _ := nea.sess.Request(RequestSpec{Cluster: c0, N: 8, Duration: 10000, Type: request.PreAlloc})
	np1, _ := nea.sess.Request(RequestSpec{Cluster: c0, N: 2, Duration: 10000,
		Type: request.NonPreempt, RelatedHow: request.Coalloc, RelatedTo: pa})
	e.Run(2)
	if len(nea.starts) != 2 {
		t.Fatalf("NEA starts = %v", nea.starts)
	}

	// Malleable application: reactive, releases on demand.
	mal := &testApp{}
	var malReq request.ID
	var malHeld []int
	mal.onViews = func(_, p view.View) {
		avail := p.Get(c0).Value(s.Now())
		if avail < len(malHeld) {
			// Release |held| - avail immediately (kill tasks).
			keep := malHeld[:avail]
			rel := malHeld[avail:]
			newReq, err := mal.sess.Request(RequestSpec{Cluster: c0, N: avail, Duration: math.Inf(1),
				Type: request.Preempt, RelatedHow: request.Next, RelatedTo: malReq})
			if err != nil {
				t.Errorf("malleable shrink request: %v", err)
				return
			}
			if err := mal.sess.Done(malReq, rel); err != nil {
				t.Errorf("malleable shrink done: %v", err)
				return
			}
			malReq = newReq
			malHeld = keep
		}
	}
	mal.onStart = func(id request.ID, ids []int) {
		if len(ids) > 0 {
			malHeld = ids
		}
	}
	mal.sess = s.Connect(mal)
	malReq, _ = mal.sess.Request(RequestSpec{Cluster: c0, N: 8, Duration: math.Inf(1), Type: request.Preempt})
	e.Run(5)
	if len(malHeld) != 8 {
		t.Fatalf("malleable app should hold 8 nodes, has %v", malHeld)
	}

	// NEA spontaneous update: 2 -> 7 nodes, all inside the pre-allocation.
	np2, _ := nea.sess.Request(RequestSpec{Cluster: c0, N: 7, Duration: 10000,
		Type: request.NonPreempt, RelatedHow: request.Next, RelatedTo: np1})
	if err := nea.sess.Done(np1, nil); err != nil {
		t.Fatal(err)
	}
	e.Run(20)

	var gotNp2 []int
	for _, st := range nea.starts {
		if st.id == np2 {
			gotNp2 = st.ids
		}
	}
	if len(gotNp2) != 7 {
		t.Fatalf("NEA update not served: starts=%+v", nea.starts)
	}
	if len(malHeld) != 3 {
		t.Errorf("malleable app should have shrunk to 3, has %d", len(malHeld))
	}
	if mal.killed != "" {
		t.Errorf("cooperative app was killed: %s", mal.killed)
	}
}

func TestStealerGetsKilled(t *testing.T) {
	// An application that never releases preempted resources is killed
	// after the grace period (§A.6 extension).
	e := sim.NewEngine()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{c0: 10},
		ReschedInterval: 1,
		GracePeriod:     5,
		Clock:           clock.SimClock{E: e},
	})
	stealer := &testApp{} // ignores its views entirely
	stealer.sess = s.Connect(stealer)
	_, _ = stealer.sess.Request(RequestSpec{Cluster: c0, N: 10, Duration: math.Inf(1), Type: request.Preempt})
	e.Run(2)
	if len(stealer.starts) != 1 {
		t.Fatal("preemptible request did not start")
	}

	// A non-preemptible job now needs the nodes.
	rigid := &testApp{}
	rigid.sess = s.Connect(rigid)
	_, _ = rigid.sess.Request(RequestSpec{Cluster: c0, N: 6, Duration: 100, Type: request.NonPreempt})
	e.Run(30)

	if stealer.killed == "" {
		t.Fatal("stealer was not killed")
	}
	if len(rigid.starts) != 1 {
		t.Fatal("rigid job never started after the kill")
	}
	// Operations on a killed session error out.
	if _, err := stealer.sess.Request(RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("request on killed session should error")
	}
	if err := stealer.sess.Done(1, nil); err == nil {
		t.Error("done on killed session should error")
	}
}

func TestDeferredStartWaitsForRelease(t *testing.T) {
	// §A.5 situation 2: insufficient free nodes; the RMS waits for done()
	// and then allocates.
	e, s := newTestServer(10)
	holder := &testApp{}
	holder.sess = s.Connect(holder)
	hid, _ := holder.sess.Request(RequestSpec{Cluster: c0, N: 10, Duration: math.Inf(1), Type: request.Preempt})
	e.Run(2)

	rigid := &testApp{}
	rigid.sess = s.Connect(rigid)
	_, _ = rigid.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 50, Type: request.NonPreempt})
	e.Run(4)
	if len(rigid.starts) != 0 {
		t.Fatal("rigid start should be deferred while IDs are held")
	}
	// Holder cooperates now.
	held := holder.starts[0].ids
	nid, _ := holder.sess.Request(RequestSpec{Cluster: c0, N: 6, Duration: math.Inf(1),
		Type: request.Preempt, RelatedHow: request.Next, RelatedTo: hid})
	_ = nid
	if err := holder.sess.Done(hid, held[6:]); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if len(rigid.starts) != 1 {
		t.Fatal("rigid job did not start after release")
	}
}

func TestDisconnectFreesResources(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	_, _ = app.sess.Request(RequestSpec{Cluster: c0, N: 7, Duration: 1000, Type: request.NonPreempt})
	e.Run(2)
	app.sess.Disconnect()
	e.RunAll()
	if s.pools[c0].available() != 10 {
		t.Errorf("pool after disconnect = %d, want 10", s.pools[c0].available())
	}
	if len(s.sessions) != 0 {
		t.Error("session not removed")
	}
}

func TestViewsPushedOnlyOnChange(t *testing.T) {
	e, s := newTestServer(10)
	app := &testApp{}
	app.sess = s.Connect(app)
	e.RunAll()
	n := len(app.views)
	if n == 0 {
		t.Fatal("no initial view push")
	}
	// An idle stretch with no state change: no new pushes.
	_, _ = app.sess.Request(RequestSpec{Cluster: c0, N: 1, Duration: 10, Type: request.NonPreempt})
	e.RunAll()
	after := len(app.views)
	if after == n {
		t.Fatal("request should have changed the views")
	}
	_ = s
}

func TestMetricsIntegration(t *testing.T) {
	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{c0: 10},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Metrics:         rec,
	})
	app := &testApp{}
	app.sess = s.Connect(app)
	pa, _ := app.sess.Request(RequestSpec{Cluster: c0, N: 8, Duration: 100, Type: request.PreAlloc})
	_, _ = app.sess.Request(RequestSpec{Cluster: c0, N: 4, Duration: 100,
		Type: request.NonPreempt, RelatedHow: request.Coalloc, RelatedTo: pa})
	e.RunAll()
	id := app.sess.AppID()
	if got := rec.Area(id, 100); math.Abs(got-400) > 1 {
		t.Errorf("allocated area = %v, want ~400", got)
	}
	if got := rec.PreAllocArea(id, 100); math.Abs(got-800) > 10 {
		t.Errorf("pre-allocated area = %v, want ~800", got)
	}
}

func TestReschedulingCoalescing(t *testing.T) {
	// Many requests in one instant trigger at most one scheduling round per
	// re-scheduling interval (§3.2).
	e, s := newTestServer(100)
	app := &testApp{}
	app.sess = s.Connect(app)
	e.Run(0.5)
	for i := 0; i < 20; i++ {
		_, _ = app.sess.Request(RequestSpec{Cluster: c0, N: 1, Duration: 1000, Type: request.NonPreempt})
	}
	// All 20 become visible after a single coalesced round at t=1.
	e.Run(1.5)
	if len(app.starts) != 20 {
		t.Fatalf("starts = %d, want 20", len(app.starts))
	}
	for _, st := range app.starts {
		_ = st
	}
	if e.Now() > 2 {
		t.Errorf("coalesced round should happen by t=1, now=%v", e.Now())
	}
}

func TestStrictPolicyWiredThrough(t *testing.T) {
	e := sim.NewEngine()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{c0: 10},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Policy:          core.StrictEquiPartition,
	})
	a := &testApp{}
	a.sess = s.Connect(a)
	_, _ = a.sess.Request(RequestSpec{Cluster: c0, N: 10, Duration: math.Inf(1), Type: request.Preempt})
	b := &testApp{}
	b.sess = s.Connect(b)
	_, _ = b.sess.Request(RequestSpec{Cluster: c0, N: 10, Duration: math.Inf(1), Type: request.Preempt})
	e.Run(3)
	_, pv := a.lastViews(t)
	if got := pv.Get(c0).Value(s.Now()); got != 5 {
		t.Errorf("strict view = %d, want 5 (two active apps)", got)
	}
}

func TestClipWiredThrough(t *testing.T) {
	e := sim.NewEngine()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{c0: 10},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Clip:            view.Constant(3, c0),
	})
	a := &testApp{}
	a.sess = s.Connect(a)
	e.Run(2)
	np, _ := a.lastViews(t)
	if got := np.Get(c0).Value(0); got != 3 {
		t.Errorf("clipped non-preemptive view = %d, want 3", got)
	}
}
