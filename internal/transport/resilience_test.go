package transport

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"coormv2/internal/clock"
	"coormv2/internal/netchaos"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// resilApp extends clientApp with start counts (to catch duplicate
// delivery) and unsolicited-error capture.
type resilApp struct {
	mu         sync.Mutex
	views      int
	startCount map[request.ID]int
	killed     string
	errs       []string
}

func newResilApp() *resilApp {
	return &resilApp{startCount: make(map[request.ID]int)}
}

func (a *resilApp) OnViews(np, p view.View) {
	a.mu.Lock()
	a.views++
	a.mu.Unlock()
}

func (a *resilApp) OnStart(id request.ID, ids []int) {
	a.mu.Lock()
	a.startCount[id]++
	a.mu.Unlock()
}

func (a *resilApp) OnKill(reason string) {
	a.mu.Lock()
	a.killed = reason
	a.mu.Unlock()
}

func (a *resilApp) OnError(reason string) {
	a.mu.Lock()
	a.errs = append(a.errs, reason)
	a.mu.Unlock()
}

func (a *resilApp) waitStart(t *testing.T, id request.ID) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.mu.Lock()
		n := a.startCount[id]
		a.mu.Unlock()
		if n > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for start of request %d", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (a *resilApp) duplicateStarts() []request.ID {
	a.mu.Lock()
	defer a.mu.Unlock()
	var dups []request.ID
	for id, n := range a.startCount {
		if n > 1 {
			dups = append(dups, id)
		}
	}
	return dups
}

// startResilientServer starts an RMS-backed transport server with a
// resume grace window.
func startResilientServer(t *testing.T, grace time.Duration) (*Server, string) {
	t.Helper()
	r := rms.NewServer(rms.Config{
		Clusters:        map[view.ClusterID]int{c0: 16},
		ReschedInterval: 0.01,
		Clock:           clock.NewRealClock(),
	})
	srv := NewServer(r)
	srv.Logf = func(string, ...any) {}
	srv.Grace = grace
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr
}

// TestReconnectResumeAfterSever is the core resume path: sever the wire
// mid-session, the client reconnects and resumes, and a request issued
// across the outage is acked exactly once with no duplicate starts.
func TestReconnectResumeAfterSever(t *testing.T) {
	srv, backendAddr := startResilientServer(t, 5*time.Second)
	p := netchaos.NewProxy(backendAddr)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	app := newResilApp()
	c, err := DialOptions(addr, app, Options{
		Reconnect:       true,
		ReconnectWindow: 8 * time.Second,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id1, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 30, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	app.waitStart(t, id1)

	p.Sever()

	// The next call rides the reconnect: it parks, is re-sent on the
	// fresh connection, and must come back acked exactly once.
	id2, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 30, Type: request.NonPreempt})
	if err != nil {
		t.Fatalf("request across outage: %v", err)
	}
	app.waitStart(t, id2)

	if got := c.Reconnects(); got < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", got)
	}
	if dups := app.duplicateStarts(); len(dups) > 0 {
		t.Fatalf("duplicate starts for requests %v", dups)
	}
	if err := c.Done(id1, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Done(id2, nil); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st["resumes"] < 1 {
		t.Fatalf("server stats: resumes = %d, want >= 1 (%v)", st["resumes"], st)
	}
	if st["conn_drops"] < 1 {
		t.Fatalf("server stats: conn_drops = %d, want >= 1", st["conn_drops"])
	}
}

// TestGraceExpiryTearsDownSession pins the other side of the window: a
// client that stays away longer than the grace window is recovered by the
// ordinary disconnect machinery, and its resume attempt is rejected with
// a kill.
func TestGraceExpiryTearsDownSession(t *testing.T) {
	srv, backendAddr := startResilientServer(t, 50*time.Millisecond)
	p := netchaos.NewProxy(backendAddr)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	app := newResilApp()
	c, err := DialOptions(addr, app, Options{
		Reconnect:       true,
		ReconnectWindow: 5 * time.Second,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 30, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}

	// Partition for well over the grace window, then heal: the client's
	// resume must be rejected and surface as a kill.
	p.SetPartitioned(true)
	time.Sleep(300 * time.Millisecond)
	p.SetPartitioned(false)

	deadline := time.Now().Add(5 * time.Second)
	for {
		app.mu.Lock()
		killed := app.killed
		app.mu.Unlock()
		if killed != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for OnKill after grace expiry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Fatal("request succeeded on a killed session")
	}
	st := srv.Stats()
	if st["grace_expiries"] < 1 {
		t.Fatalf("grace_expiries = %d, want >= 1 (%v)", st["grace_expiries"], st)
	}
	if st["resumes_rejected"] < 1 {
		t.Fatalf("resumes_rejected = %d, want >= 1 (%v)", st["resumes_rejected"], st)
	}
}

// TestHeartbeatDetectsSilentPeer pins liveness detection: a server that
// handshakes and then goes mute (never answers pings) must be declared
// dead by the heartbeat within the miss budget, not hang forever.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Handshake, then silence. Drain input so writes keep succeeding.
		fr := newFrameReader(conn, 0)
		if _, err := fr.next(); err != nil {
			return
		}
		conn.Write([]byte(`{"type":"connected","app_id":1,"resume":"tok"}` + "\n"))
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				conn.Close()
				return
			}
		}
	}()

	app := newResilApp()
	c, err := DialOptions(ln.Addr().String(), app, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMiss:     3,
		CallTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	startT := time.Now()
	_, err = c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt})
	if err == nil {
		t.Fatal("call succeeded against a mute server")
	}
	if d := time.Since(startT); d > 2*time.Second {
		t.Fatalf("liveness detection took %v, want well under the 5s call timeout", d)
	}
}

// TestIdempotentRetryDeduplicated drives the server's idempotency cache
// directly: the same request frame re-sent with its original idem token
// (as a reconnecting client does) must not execute twice.
func TestIdempotentRetryDeduplicated(t *testing.T) {
	srv, addr := startResilientServer(t, time.Second)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr := newFrameReader(conn, 0)
	send := func(s string) {
		t.Helper()
		if _, err := conn.Write([]byte(s + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	// read returns the next non-views/start frame.
	read := func() string {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			line, err := fr.next()
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			s := string(line)
			if !contains(s, `"views"`) && !contains(s, `"start"`) {
				return s
			}
		}
	}

	send(`{"type":"connect"}`)
	if s := read(); !contains(s, `"connected"`) {
		t.Fatalf("handshake reply = %s", s)
	}
	req := `{"type":"request","seq":1,"idem":7,"cluster":"c0","n":1,"duration":30,"req_type":"NP"}`
	send(req)
	ack1 := read()
	if !contains(ack1, `"req-ack"`) {
		t.Fatalf("first ack = %s", ack1)
	}
	// Retry with the same idem token but a fresh seq, as the client's
	// reconnect replay does.
	send(`{"type":"request","seq":2,"idem":7,"cluster":"c0","n":1,"duration":30,"req_type":"NP"}`)
	ack2 := read()
	if !contains(ack2, `"req-ack"`) || !contains(ack2, `"seq":2`) {
		t.Fatalf("retry ack = %s", ack2)
	}
	if st := srv.Stats(); st["idem_replays"] != 1 {
		t.Fatalf("idem_replays = %d, want 1", st["idem_replays"])
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestSlowConsumerEvicted pins the bounded-write-queue guarantee: a
// consumer that stops reading fills its queue and is evicted — the
// notifier (here: OnViews) never blocks. net.Pipe is unbuffered, so the
// writer goroutine wedges on the very first frame, exactly like a client
// whose socket buffers are full.
func TestSlowConsumerEvicted(t *testing.T) {
	srv := NewBackendServer(nil)
	srv.Logf = func(string, ...any) {}
	stalled, peer := net.Pipe()
	t.Cleanup(func() { stalled.Close(); peer.Close() })

	ws := &wireSession{
		srv:    srv,
		token:  "tok",
		starts: make(map[int64][]int),
		idem:   make(map[int64]*idemEntry),
	}
	cw := newConnWriter(stalled, 2, 10*time.Second)
	ws.cw = cw

	// Nobody reads peer: frame 1 wedges in the writer, frames 2–3 fill
	// the queue, frame 4 must trigger the eviction — and every OnViews
	// call must return promptly regardless.
	for i := 0; i < 4; i++ {
		done := make(chan struct{})
		go func() {
			ws.OnViews(view.New(), view.New())
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("OnViews blocked on frame %d (the notifier must never block)", i+1)
		}
	}
	if got := srv.Stats()["evictions"]; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// The evicted writer is closed: further enqueues are silent drops.
	if !cw.enqueue([]byte("x\n")) {
		t.Fatal("enqueue after eviction should report success (silent drop)")
	}
	select {
	case <-cw.done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer goroutine did not exit after eviction")
	}
}

// runChaosScenario runs one seeded client-vs-netchaos session and returns
// a fingerprint of everything that matters: the fault trace, the acked
// request IDs, and the per-request start counts. Same seed ⇒ same hash.
func runChaosScenario(t *testing.T, seed int64) uint64 {
	t.Helper()
	_, backendAddr := startResilientServer(t, 10*time.Second)
	p := netchaos.NewProxy(backendAddr)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	plan := netchaos.Plan(netchaos.Config{
		Seed:        seed,
		MeanBetween: 0.15,
		MeanDur:     0.04,
		Horizon:     2.0,
		MaxFaults:   8,
	})
	trace := netchaos.TraceOf(plan)

	app := newResilApp()
	c, err := DialOptions(addr, app, Options{
		Reconnect:         true,
		ReconnectWindow:   15 * time.Second,
		BackoffBase:       5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		CallTimeout:       20 * time.Second,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p.Start(plan, 2*time.Millisecond)

	// A sequential workload across the whole fault schedule: every acked
	// request must start exactly once and complete, faults or not.
	const jobs = 10
	acked := make([]request.ID, 0, jobs)
	for i := 0; i < jobs; i++ {
		id, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 60, Type: request.NonPreempt})
		if err != nil {
			t.Fatalf("job %d: request: %v (reconnects=%d)", i, err, c.Reconnects())
		}
		acked = append(acked, id)
		app.waitStart(t, id)
		if err := c.Done(id, nil); err != nil {
			t.Fatalf("job %d: done: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond) // let faults interleave the workload
	}

	if dups := app.duplicateStarts(); len(dups) > 0 {
		t.Fatalf("duplicate starts for %v", dups)
	}

	sort.Slice(acked, func(i, j int) bool { return acked[i] < acked[j] })
	h := fnv.New64a()
	for _, l := range trace {
		fmt.Fprintln(h, l)
	}
	for _, id := range acked {
		fmt.Fprintf(h, "acked=%d starts=1\n", id)
	}
	return h.Sum64()
}

// TestChaosMatrixDeterministic is the acceptance test: across a seeded
// netchaos schedule the client loses zero acknowledged requests and sees
// no duplicate starts, and the run's event hash is identical for
// identical seeds.
func TestChaosMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("netchaos matrix is multi-second")
	}
	seeds := []int64{1, 2}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h1 := runChaosScenario(t, seed)
			h2 := runChaosScenario(t, seed)
			if h1 != h2 {
				t.Fatalf("same seed, different event hashes: %#x vs %#x", h1, h2)
			}
		})
	}
}

// TestViewsReplayedOnResume pins state re-sync: after an outage the
// client receives the current views again (flagged as replay, but
// delivered — a resumed client must not act on stale views).
func TestViewsReplayedOnResume(t *testing.T) {
	_, backendAddr := startResilientServer(t, 5*time.Second)
	p := netchaos.NewProxy(backendAddr)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	app := newResilApp()
	c, err := DialOptions(addr, app, Options{
		Reconnect:       true,
		ReconnectWindow: 8 * time.Second,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Wait for at least one live views push, then sever.
	deadline := time.Now().Add(5 * time.Second)
	for {
		app.mu.Lock()
		v := app.views
		app.mu.Unlock()
		if v > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no views before sever")
		}
		time.Sleep(2 * time.Millisecond)
	}
	p.Sever()

	// A call forces the reconnect to finish; afterwards views flow again.
	if _, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 5, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	if c.Reconnects() < 1 {
		t.Fatal("no reconnect recorded")
	}
}

// TestResumeRejectedSurfacesAsKill pins the client-side terminal path: a
// resume attempt against a server that no longer knows the session must
// fail pending calls with ResumeRejectedError and deliver OnKill.
func TestResumeRejectedSurfacesAsKill(t *testing.T) {
	// A server whose sessions never survive a drop (Grace = 0).
	_, backendAddr := startResilientServer(t, 0)
	p := netchaos.NewProxy(backendAddr)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	app := newResilApp()
	c, err := DialOptions(addr, app, Options{
		Reconnect:       true,
		ReconnectWindow: 5 * time.Second,
		BackoffBase:     5 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p.Sever()
	_, err = c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 5, Type: request.NonPreempt})
	if err == nil {
		t.Fatal("request succeeded though the session was torn down")
	}
	var rr *ResumeRejectedError
	if !errors.As(err, &rr) {
		t.Fatalf("error = %v, want ResumeRejectedError", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		app.mu.Lock()
		killed := app.killed
		app.mu.Unlock()
		if killed != "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("OnKill not delivered after resume rejection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
