// Package metrics accumulates the quantities reported in the paper's
// evaluation (§5): consumed resource areas (node·seconds), PSA waste
// (node·seconds lost to killed tasks), and the percentage of used resources.
//
// It also implements the accounting the paper lists as future work (§7):
// per-application pre-allocated area, so that an administrator can charge
// for reserved-but-unused resources and incentivize efficient usage.
package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Recorder integrates per-application allocation over time. The RMS calls
// SetAlloc whenever an application's node count changes; applications (or
// the harness) record waste explicitly.
//
// Recorder is safe for concurrent use so the same type serves the real
// daemon; inside the simulator all calls happen on the event loop.
type Recorder struct {
	mu   sync.Mutex
	apps map[int]*appTrack
}

type appTrack struct {
	lastT    float64
	cur      int     // currently allocated nodes
	curPre   int     // currently pre-allocated nodes
	area     float64 // integral of allocated nodes
	preArea  float64 // integral of pre-allocated nodes
	waste    float64 // node·seconds lost (killed preemptible tasks)
	maxAlloc int
	counts   [numCounters]int // fault-recovery event counters
}

// Counter identifies a fault-recovery event counter. The federation layer
// records them when a scheduler shard crashes or restarts
// (internal/federation, internal/chaos).
type Counter uint8

const (
	// KilledSessions counts sessions killed because the shard holding their
	// scheduler-side state crashed (§3.1.4 semantics).
	KilledSessions Counter = iota
	// RequeuedRequests counts live requests moved to a replay queue when
	// their shard crashed (or submitted while it was down).
	RequeuedRequests
	// ReplayedRequests counts queued requests successfully re-submitted to a
	// restarted shard.
	ReplayedRequests
	// DroppedRequests counts queued requests that never made it back onto a
	// shard: done() while queued, a failed replay, or an unresolvable
	// relation after the crash.
	DroppedRequests
	// ChurnRequests counts accepted request() operations. Recorded by the RMS
	// per application; summed over a shard recorder it is the shard's request
	// churn, one of the two load signals the federation rebalancer acts on
	// (the other is pool occupancy, see TotalCurrent).
	ChurnRequests
	// MigratedRequests counts request mappings handed over to another shard
	// by a live cluster migration (internal/federation.MigrateCluster).
	MigratedRequests
	// MigratedClusters counts live cluster migrations. The federation records
	// it under application ID 0 — the pseudo-app standing for the federation
	// itself, since a migration is not attributable to one application.
	MigratedClusters
	// RemergedShardViews counts shard views whose epoch had advanced when a
	// session's merged view was delivered (the dirty views that forced a
	// merge); ReusedShardViews counts shard views whose epoch had not. A
	// delivery with no dirty views is served from the merge cache with no
	// work; one with any dirty view rebuilds the union, so the split
	// measures update locality across the fleet. Federation-level counters
	// (pseudo-app 0) for the epoch-cached view merge.
	RemergedShardViews
	ReusedShardViews
	// FailedNodes / RecoveredNodes count individual node failures and
	// recoveries injected into a cluster (internal/rms.FailNodes and
	// RecoverNodes). Recorded under pseudo-app 0: a machine dying is not
	// attributable to one application.
	FailedNodes
	RecoveredNodes
	// NodeKilledRequests counts started requests terminated because a node
	// they held died under the kill policy (§3.1.4 applied per request);
	// NodeRequeuedRequests counts requests reset to pending for a full
	// re-run; NodeReducedRequests counts requests that kept running on
	// their surviving nodes under the cooperative policy (the application
	// was notified and chose checkpoint/resubmit behaviour itself).
	NodeKilledRequests
	NodeRequeuedRequests
	NodeReducedRequests
	// GangCommitted / GangAborted / GangRetried count cross-shard two-phase
	// reservations (internal/federation gang coordinator): gangs whose hold
	// converted into a real request, reservations abandoned after exhausting
	// their alignment/retry budget, and hold re-placements after an abort or
	// crash. Recorded under pseudo-app 0 — a reservation spans shards and is
	// a federation-level event.
	GangCommitted
	GangAborted
	GangRetried
	// PreemptedRequests counts started preemptible requests revoked by
	// quota preemption: a scheduling policy (internal/tenants DRF)
	// nominated them to relieve a starved guaranteed queue, and the RMS
	// terminated them and reclaimed their nodes.
	PreemptedRequests

	numCounters
)

// String names the counter for reports.
func (c Counter) String() string {
	switch c {
	case KilledSessions:
		return "killed-sessions"
	case RequeuedRequests:
		return "requeued-requests"
	case ReplayedRequests:
		return "replayed-requests"
	case DroppedRequests:
		return "dropped-requests"
	case ChurnRequests:
		return "churn-requests"
	case MigratedRequests:
		return "migrated-requests"
	case MigratedClusters:
		return "migrated-clusters"
	case RemergedShardViews:
		return "remerged-shard-views"
	case ReusedShardViews:
		return "reused-shard-views"
	case FailedNodes:
		return "failed-nodes"
	case RecoveredNodes:
		return "recovered-nodes"
	case NodeKilledRequests:
		return "node-killed-requests"
	case NodeRequeuedRequests:
		return "node-requeued-requests"
	case NodeReducedRequests:
		return "node-reduced-requests"
	case GangCommitted:
		return "gang-committed"
	case GangAborted:
		return "gang-aborted"
	case GangRetried:
		return "gang-retried"
	case PreemptedRequests:
		return "preempted-requests"
	default:
		return fmt.Sprintf("Counter(%d)", uint8(c))
	}
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{apps: make(map[int]*appTrack)}
}

func (r *Recorder) track(appID int) *appTrack {
	tr, ok := r.apps[appID]
	if !ok {
		tr = &appTrack{}
		r.apps[appID] = tr
	}
	return tr
}

// advance integrates the running counters up to time t. An out-of-order
// timestamp (t earlier than the last observation — possible when shard
// crash replays or real-clock skew deliver stale events) is clamped:
// the integrals never accumulate negative area and the track's time
// never moves backwards.
func (tr *appTrack) advance(t float64) {
	if t < tr.lastT {
		return
	}
	dt := t - tr.lastT
	tr.area += float64(tr.cur) * dt
	tr.preArea += float64(tr.curPre) * dt
	tr.lastT = t
}

// SetAlloc records that application appID holds n nodes from time t on.
func (r *Recorder) SetAlloc(appID int, t float64, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.track(appID)
	tr.advance(t)
	tr.cur = n
	if n > tr.maxAlloc {
		tr.maxAlloc = n
	}
}

// SetPreAlloc records that application appID has n nodes pre-allocated from
// time t on (the accounting extension of §7).
func (r *Recorder) SetPreAlloc(appID int, t float64, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.track(appID)
	tr.advance(t)
	tr.curPre = n
}

// AddWaste records nodeSeconds of wasted computation for appID
// (e.g. a PSA killing in-progress tasks, §5.1.2).
func (r *Recorder) AddWaste(appID int, nodeSeconds float64) {
	if nodeSeconds < 0 {
		panic("metrics: negative waste")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.track(appID).waste += nodeSeconds
}

// IncCounter adds n occurrences of a fault-recovery event for appID.
func (r *Recorder) IncCounter(appID int, c Counter, n int) {
	if c >= numCounters {
		panic(fmt.Sprintf("metrics: unknown counter %d", c))
	}
	if n < 0 {
		panic("metrics: negative counter increment")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.track(appID).counts[c] += n
}

// Count returns the number of recorded occurrences of c for appID.
func (r *Recorder) Count(appID int, c Counter) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.track(appID).counts[c]
}

// TotalCount returns the occurrences of c summed over all applications.
func (r *Recorder) TotalCount(c Counter) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := 0
	for _, tr := range r.apps {
		s += tr.counts[c]
	}
	return s
}

// Totals returns every fault-recovery counter summed over all
// applications, keyed by Counter.String() — the shape an obs registry
// counter source expects.
func (r *Recorder) Totals() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, int(numCounters))
	for c := Counter(0); c < numCounters; c++ {
		s := int64(0)
		for _, tr := range r.apps {
			s += int64(tr.counts[c])
		}
		out[c.String()] = s
	}
	return out
}

// Area returns the node·seconds consumed by appID up to time t.
func (r *Recorder) Area(appID int, t float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.track(appID)
	tr.advance(t)
	return tr.area
}

// PreAllocArea returns the node·seconds pre-allocated by appID up to time t.
func (r *Recorder) PreAllocArea(appID int, t float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.track(appID)
	tr.advance(t)
	return tr.preArea
}

// Waste returns the node·seconds of wasted computation recorded for appID.
func (r *Recorder) Waste(appID int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.track(appID).waste
}

// MaxAlloc returns the peak allocation observed for appID.
func (r *Recorder) MaxAlloc(appID int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.track(appID).maxAlloc
}

// Current returns the allocation of appID as of the last SetAlloc.
func (r *Recorder) Current(appID int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.track(appID).cur
}

// TotalCurrent returns the allocation summed over all applications as of
// their last SetAlloc — on a per-shard recorder, the shard's current pool
// occupancy, the second load signal of the federation rebalancer.
func (r *Recorder) TotalCurrent() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := 0
	for _, tr := range r.apps {
		s += tr.cur
	}
	return s
}

// TotalArea returns the node·seconds consumed by all applications up to t.
// Applications are summed in ID order so the floating-point result is
// deterministic (map iteration order is not).
func (r *Recorder) TotalArea(t float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := 0.0
	for _, id := range r.sortedIDsLocked() {
		tr := r.apps[id]
		tr.advance(t)
		s += tr.area
	}
	return s
}

// TotalWaste returns the total recorded waste across applications, summed
// in ID order for deterministic rounding.
func (r *Recorder) TotalWaste() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := 0.0
	for _, id := range r.sortedIDsLocked() {
		s += r.apps[id].waste
	}
	return s
}

// sortedIDsLocked returns the tracked application IDs in ascending order.
func (r *Recorder) sortedIDsLocked() []int {
	ids := make([]int, 0, len(r.apps))
	for id := range r.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// UsedFraction returns the paper's "percent of used resources" (§5.3) as a
// fraction in [0,1]: resources allocated to applications minus the waste,
// relative to capacity × horizon.
func (r *Recorder) UsedFraction(capacity int, horizon float64) float64 {
	if capacity <= 0 || horizon <= 0 {
		return 0
	}
	used := r.TotalArea(horizon) - r.TotalWaste()
	if used < 0 {
		used = 0
	}
	return used / (float64(capacity) * horizon)
}

// Apps returns the IDs with recorded activity, sorted.
func (r *Recorder) Apps() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.apps))
	for id := range r.apps {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// AccountingReport summarizes one application for the accounting extension:
// how much it used versus how much it reserved.
type AccountingReport struct {
	AppID        int
	UsedArea     float64 // node·s effectively allocated
	PreAllocArea float64 // node·s reserved via pre-allocations
	Waste        float64 // node·s wasted by kills
}

// Aggregate is a read-only registry over several recorders — one per
// scheduler shard in a federated RMS (internal/federation), plus optionally
// a client-side recorder for application-reported waste. Shards register
// allocations under the same federated application ID, and a cluster lives
// on exactly one shard, so summing across recorders reconstructs the
// single-RMS quantities exactly.
type Aggregate struct {
	recs []*Recorder
}

// NewAggregate builds an aggregate over the given recorders; nil entries
// are skipped.
func NewAggregate(recs ...*Recorder) *Aggregate {
	a := &Aggregate{}
	for _, r := range recs {
		if r != nil {
			a.recs = append(a.recs, r)
		}
	}
	return a
}

// Recorders returns the underlying recorders.
func (a *Aggregate) Recorders() []*Recorder { return a.recs }

// Area returns the node·seconds consumed by appID across all shards.
func (a *Aggregate) Area(appID int, t float64) float64 {
	s := 0.0
	for _, r := range a.recs {
		s += r.Area(appID, t)
	}
	return s
}

// PreAllocArea returns the node·seconds pre-allocated by appID across all
// shards.
func (a *Aggregate) PreAllocArea(appID int, t float64) float64 {
	s := 0.0
	for _, r := range a.recs {
		s += r.PreAllocArea(appID, t)
	}
	return s
}

// Waste returns the node·seconds of wasted computation recorded for appID
// across all shards.
func (a *Aggregate) Waste(appID int) float64 {
	s := 0.0
	for _, r := range a.recs {
		s += r.Waste(appID)
	}
	return s
}

// TotalArea returns the node·seconds consumed by all applications on all
// shards up to t.
func (a *Aggregate) TotalArea(t float64) float64 {
	s := 0.0
	for _, r := range a.recs {
		s += r.TotalArea(t)
	}
	return s
}

// TotalWaste returns the total recorded waste across all shards.
func (a *Aggregate) TotalWaste() float64 {
	s := 0.0
	for _, r := range a.recs {
		s += r.TotalWaste()
	}
	return s
}

// Count returns the occurrences of c for appID across all recorders.
func (a *Aggregate) Count(appID int, c Counter) int {
	s := 0
	for _, r := range a.recs {
		s += r.Count(appID, c)
	}
	return s
}

// TotalCount returns the occurrences of c across all recorders and
// applications.
func (a *Aggregate) TotalCount(c Counter) int {
	s := 0
	for _, r := range a.recs {
		s += r.TotalCount(c)
	}
	return s
}

// UsedFraction returns the §5.3 "percent of used resources" over the whole
// federation: capacity is the federated node count.
func (a *Aggregate) UsedFraction(capacity int, horizon float64) float64 {
	if capacity <= 0 || horizon <= 0 {
		return 0
	}
	used := a.TotalArea(horizon) - a.TotalWaste()
	if used < 0 {
		used = 0
	}
	return used / (float64(capacity) * horizon)
}

// Apps returns the union of application IDs with recorded activity, sorted.
func (a *Aggregate) Apps() []int {
	seen := map[int]bool{}
	for _, r := range a.recs {
		for _, id := range r.Apps() {
			seen[id] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Report produces per-application accounting up to time t.
func (r *Recorder) Report(t float64) []AccountingReport {
	ids := r.Apps()
	out := make([]AccountingReport, 0, len(ids))
	for _, id := range ids {
		out = append(out, AccountingReport{
			AppID:        id,
			UsedArea:     r.Area(id, t),
			PreAllocArea: r.PreAllocArea(id, t),
			Waste:        r.Waste(id),
		})
	}
	return out
}
