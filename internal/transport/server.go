// Package transport exposes a CooRMv2 RMS over TCP using the
// newline-delimited JSON protocol of internal/proto. Together with
// clock.RealClock it is the "real-life prototype RMS" of §5: the simulator
// and the daemon share every line of scheduling code.
//
// The transport is backend-agnostic: it bridges connections either to a
// single rms.Server or to a federation.Federator, whose front-end routes
// each session's requests to the scheduler shard owning the target cluster.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"coormv2/internal/federation"
	"coormv2/internal/proto"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Session is the server-side session surface the transport needs. Both
// *rms.Session and *federation.Session satisfy it.
type Session interface {
	AppID() int
	Request(spec rms.RequestSpec) (request.ID, error)
	Done(id request.ID, released []int) error
	Disconnect()
}

// Backend creates application sessions: a single RMS or a federation.
type Backend interface {
	Connect(h rms.AppHandler) Session
}

// rmsBackend adapts *rms.Server to Backend.
type rmsBackend struct{ s *rms.Server }

func (b rmsBackend) Connect(h rms.AppHandler) Session { return b.s.Connect(h) }

// fedBackend adapts *federation.Federator to Backend.
type fedBackend struct{ f *federation.Federator }

func (b fedBackend) Connect(h rms.AppHandler) Session { return b.f.Connect(h) }

// Server accepts TCP connections and bridges them to backend sessions.
type Server struct {
	backend Backend
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf logs transport events; defaults to log.Printf. Tests silence it.
	Logf func(format string, args ...any)

	// Workers, when positive, bounds how many connections are served
	// concurrently: Serve dispatches accepted connections to a fixed pool
	// of that many handler goroutines. A connection occupies its worker
	// for the whole application session (RMS sessions are long-lived), so
	// this is an admission limit on concurrent applications: connections
	// beyond the bound wait unserved — without a Connected reply — until a
	// running session ends, like jobs in a batch queue. Zero keeps the
	// one-goroutine-per-connection behaviour (no admission limit). Set
	// before calling Serve.
	Workers int
}

// NewServer wraps a single RMS server. Call Serve to start accepting.
func NewServer(r *rms.Server) *Server { return NewBackendServer(rmsBackend{r}) }

// NewFederatedServer wraps a federation front-end: every accepted
// connection becomes a federated session whose requests are routed to the
// shard owning their target cluster.
func NewFederatedServer(f *federation.Federator) *Server {
	return NewBackendServer(fedBackend{f})
}

// NewBackendServer wraps any session backend.
func NewBackendServer(b Backend) *Server {
	return &Server{backend: b, conns: make(map[net.Conn]struct{}), Logf: log.Printf}
}

// Listen binds the given address ("host:port"; use ":0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close is called. It returns nil on a
// clean shutdown. With Workers > 0 a fixed pool of handler goroutines
// serves the connections (see Workers for the admission semantics);
// otherwise each connection gets its own goroutine.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("transport: Serve before Listen")
	}
	var queue chan net.Conn
	if s.Workers > 0 {
		queue = make(chan net.Conn)
		for i := 0; i < s.Workers; i++ {
			go func() {
				for conn := range queue {
					s.handle(conn)
					s.wg.Done()
				}
			}()
		}
		defer close(queue)
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			// Close ran between Accept and registration; it will never see
			// this connection, so drop it here instead of leaking a handler
			// Close cannot wait for.
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		if queue != nil {
			queue <- conn
			continue
		}
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes all live connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// connHandler adapts one TCP connection to rms.AppHandler.
type connHandler struct {
	mu   sync.Mutex
	w    *bufio.Writer
	conn net.Conn
	logf func(string, ...any)
}

func (h *connHandler) send(m proto.Message) {
	data, err := m.Marshal()
	if err != nil {
		h.logf("transport: marshal: %v", err)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, err := h.w.Write(append(data, '\n')); err == nil {
		h.w.Flush()
	}
}

func (h *connHandler) OnViews(np, p view.View) {
	h.send(proto.Message{
		Type:           proto.MsgViews,
		NonPreemptView: proto.EncodeView(np),
		PreemptView:    proto.EncodeView(p),
	})
}

func (h *connHandler) OnStart(id request.ID, nodeIDs []int) {
	h.send(proto.Message{Type: proto.MsgStart, ReqID: int64(id), NodeIDs: nodeIDs})
}

func (h *connHandler) OnKill(reason string) {
	h.send(proto.Message{Type: proto.MsgKill, Reason: reason})
	h.conn.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	h := &connHandler{w: bufio.NewWriter(conn), conn: conn, logf: s.Logf}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	// The first frame must be a connect.
	if !scanner.Scan() {
		return
	}
	m, err := proto.Unmarshal(scanner.Bytes())
	if err != nil || m.Type != proto.MsgConnect {
		h.send(proto.Message{Type: proto.MsgError, Reason: "expected connect"})
		return
	}
	sess := s.backend.Connect(h)
	h.send(proto.Message{Type: proto.MsgConnected, AppID: sess.AppID()})

	defer sess.Disconnect()
	for scanner.Scan() {
		m, err := proto.Unmarshal(scanner.Bytes())
		if err != nil {
			h.send(proto.Message{Type: proto.MsgError, Reason: err.Error()})
			continue
		}
		switch m.Type {
		case proto.MsgRequest:
			spec, err := m.DecodeRequestSpec()
			if err != nil {
				h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq, Reason: err.Error()})
				continue
			}
			id, err := sess.Request(spec)
			if err != nil {
				h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq, Reason: err.Error()})
				continue
			}
			h.send(proto.Message{Type: proto.MsgReqAck, Seq: m.Seq, ReqID: int64(id)})

		case proto.MsgDone:
			if err := sess.Done(request.ID(m.ReqID), m.Released); err != nil {
				h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq, Reason: err.Error()})
				continue
			}
			h.send(proto.Message{Type: proto.MsgReqAck, Seq: m.Seq, ReqID: m.ReqID})

		case proto.MsgBye:
			return

		default:
			h.send(proto.Message{Type: proto.MsgError, Seq: m.Seq,
				Reason: fmt.Sprintf("unexpected message %q", m.Type)})
		}
	}
	if err := scanner.Err(); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		s.Logf("transport: read: %v", err)
	}
}
