package chaos

import (
	"reflect"
	"testing"

	"coormv2/internal/view"
)

func nodeCfg(seed int64) Config {
	return Config{
		Seed:             seed,
		NodeMTTF:         50,
		MeanNodeRecovery: 20,
		Horizon:          1000,
	}
}

func TestPlanNodesDeterministic(t *testing.T) {
	clusters := map[view.ClusterID]int{"a": 8, "b": 8, "c": 16}
	p1 := PlanNodes(nodeCfg(42), clusters)
	p2 := PlanNodes(nodeCfg(42), clusters)
	if len(p1) == 0 {
		t.Fatal("empty plan")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different node plans")
	}
	p3 := PlanNodes(nodeCfg(43), clusters)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical node plans")
	}
}

func TestPlanNodesStableAcrossClusterSetGrowth(t *testing.T) {
	// A cluster's schedule depends only on (seed, cluster ID): adding
	// clusters — or re-partitioning them across any shard count — must not
	// perturb the existing clusters' faults.
	small := map[view.ClusterID]int{"a": 8, "b": 8}
	big := map[view.ClusterID]int{"a": 8, "b": 8, "c": 8, "d": 8}
	perCluster := func(plan []NodeFault) map[view.ClusterID][]NodeFault {
		out := make(map[view.ClusterID][]NodeFault)
		for _, f := range plan {
			out[f.Cluster] = append(out[f.Cluster], f)
		}
		return out
	}
	ps := perCluster(PlanNodes(nodeCfg(7), small))
	pb := perCluster(PlanNodes(nodeCfg(7), big))
	for cid := range small {
		if !reflect.DeepEqual(ps[cid], pb[cid]) {
			t.Fatalf("cluster %q schedule changed when the cluster set grew:\n%v\nvs\n%v", cid, ps[cid], pb[cid])
		}
	}
}

func TestPlanNodesNeverDoubleFailsANode(t *testing.T) {
	clusters := map[view.ClusterID]int{"a": 4, "b": 2}
	cfg := nodeCfg(11)
	cfg.NodeMTTF = 5          // dense failures
	cfg.MeanNodeRecovery = 50 // slow repairs: forces near-exhaustion
	plan := PlanNodes(cfg, clusters)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	type key struct {
		cid view.ClusterID
		id  int
	}
	downUntil := make(map[key]float64)
	for _, f := range plan {
		k := key{f.Cluster, f.Node}
		if until, ok := downUntil[k]; ok && f.FailAt < until {
			t.Fatalf("node %v fails at %g while still down until %g", k, f.FailAt, until)
		}
		if f.Node < 0 || f.Node >= clusters[f.Cluster] {
			t.Fatalf("node %d out of range for %q", f.Node, f.Cluster)
		}
		if f.RecoverAt < f.FailAt {
			t.Fatalf("recovery %g before failure %g", f.RecoverAt, f.FailAt)
		}
		downUntil[k] = f.RecoverAt
	}
}

func TestPlanNodesRespectsCaps(t *testing.T) {
	clusters := map[view.ClusterID]int{"a": 8, "b": 8}
	cfg := nodeCfg(3)
	cfg.MaxNodeFaultsPerCluster = 2
	plan := PlanNodes(cfg, clusters)
	per := map[view.ClusterID]int{}
	for _, f := range plan {
		per[f.Cluster]++
		if f.FailAt >= cfg.Horizon {
			t.Fatalf("failure at %g beyond horizon %g", f.FailAt, cfg.Horizon)
		}
	}
	for cid, n := range per {
		if n > 2 {
			t.Fatalf("cluster %q has %d faults, cap is 2", cid, n)
		}
	}
	if PlanNodes(Config{Seed: 1, Horizon: 100}, clusters) != nil {
		t.Error("NodeMTTF == 0 must disable node faults")
	}
}
