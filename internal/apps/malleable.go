package apps

import (
	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Malleable is the generic malleable application of §4: it "first sends a
// non-preemptible request r_min with its minimum requirements. Next, for
// the extra resources (i.e., the malleable part), the application scans its
// preemptive view V_P and sends a preemptible request r_extra, which is
// COALLOCated with r_min." The Usable filter implements the paper's
// example: "if the malleable application requires a power-of-two
// node-count, but 36 nodes are available in its preemptive view, it can
// request 32 nodes, leaving the other 4 to be filled by another
// application."
type Malleable struct {
	base

	Cluster  view.ClusterID
	MinNodes int
	Duration float64
	// Usable maps the preemptible nodes visible in the view to the extra
	// node-count the application can exploit. nil means identity.
	Usable func(visible int) int

	minReq    request.ID
	extraReq  request.ID
	haveExtra bool
	extraN    int

	minStarted bool
	minIDs     []int
	ExtraIDs   []int
}

// NewMalleable creates a malleable application.
func NewMalleable(clk clock.Clock, cid view.ClusterID, minNodes int, duration float64, usable func(int) int) *Malleable {
	if usable == nil {
		usable = func(v int) int { return v }
	}
	return &Malleable{base: base{clk: clk}, Cluster: cid, MinNodes: minNodes, Duration: duration, Usable: usable}
}

// Submit sends the minimum-requirements request.
func (m *Malleable) Submit() error {
	id, err := m.sess.Request(rms.RequestSpec{
		Cluster: m.Cluster, N: m.MinNodes, Duration: m.Duration, Type: request.NonPreempt,
	})
	if err != nil {
		return err
	}
	m.minReq = id
	return nil
}

// ExtraNodes returns the currently held malleable node count.
func (m *Malleable) ExtraNodes() int { return len(m.ExtraIDs) }

// MinStarted reports whether the non-preemptible part is running.
func (m *Malleable) MinStarted() bool { return m.minStarted }

// OnViews monitors the preemptive view and resizes the malleable part:
// "During execution, the application monitors V_P and updates r_extra if
// necessary" (§4).
func (m *Malleable) OnViews(_, p view.View) {
	if m.minReq == 0 {
		return // not submitted yet
	}
	visible := p.Get(m.Cluster).Value(m.now())
	target := m.Usable(visible)
	if target < 0 {
		target = 0
	}
	switch {
	case !m.haveExtra && target > 0:
		id, err := m.sess.Request(rms.RequestSpec{
			Cluster: m.Cluster, N: target, Duration: m.Duration,
			Type: request.Preempt, RelatedHow: request.Coalloc, RelatedTo: m.minReq,
		})
		if err != nil {
			return
		}
		m.extraReq = id
		m.haveExtra = true
		m.extraN = target

	case m.haveExtra && target != m.extraN:
		// Update the preemptible request: NEXT keeps the common resources.
		release := len(m.ExtraIDs) - target
		var rel []int
		if release > 0 {
			rel = lastN(m.ExtraIDs, release)
		}
		id, err := m.sess.Request(rms.RequestSpec{
			Cluster: m.Cluster, N: target, Duration: m.Duration,
			Type: request.Preempt, RelatedHow: request.Next, RelatedTo: m.extraReq,
		})
		if err != nil {
			return
		}
		if err := m.sess.Done(m.extraReq, rel); err != nil {
			return
		}
		m.extraReq = id
		m.extraN = target
		if release > 0 {
			m.ExtraIDs = m.ExtraIDs[:len(m.ExtraIDs)-release]
		}
	}
}

// OnStart records allocations for both parts.
func (m *Malleable) OnStart(id request.ID, nodeIDs []int) {
	switch id {
	case m.minReq:
		m.minStarted = true
		m.minIDs = nodeIDs
	case m.extraReq:
		m.ExtraIDs = nodeIDs
	}
}
