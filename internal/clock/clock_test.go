package clock

import (
	"sync"
	"testing"
	"time"

	"coormv2/internal/sim"
)

func TestSimClock(t *testing.T) {
	e := sim.NewEngine()
	var c Clock = SimClock{E: e}
	if c.Now() != 0 {
		t.Errorf("Now = %v", c.Now())
	}
	fired := -1.0
	c.AfterFunc(12.5, "x", func() { fired = c.Now() })
	e.RunAll()
	if fired != 12.5 {
		t.Errorf("fired at %v, want 12.5", fired)
	}
}

func TestSimClockTimerStop(t *testing.T) {
	e := sim.NewEngine()
	c := SimClock{E: e}
	fired := false
	tm := c.AfterFunc(5, "x", func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop should succeed for pending timer")
	}
	e.RunAll()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestRealClockNowMonotone(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	time.Sleep(5 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Errorf("real clock not advancing: %v then %v", a, b)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := NewRealClock()
	var wg sync.WaitGroup
	wg.Add(1)
	start := time.Now()
	c.AfterFunc(0.02, "x", func() { wg.Done() })
	wg.Wait()
	if time.Since(start) < 15*time.Millisecond {
		t.Error("AfterFunc fired too early")
	}
}

func TestRealClockTimerStop(t *testing.T) {
	c := NewRealClock()
	fired := make(chan struct{}, 1)
	tm := c.AfterFunc(0.05, "x", func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Error("Stop should succeed")
	}
	select {
	case <-fired:
		t.Error("stopped real timer fired")
	case <-time.After(80 * time.Millisecond):
	}
}

func TestRealClockNegativeDelay(t *testing.T) {
	c := NewRealClock()
	var wg sync.WaitGroup
	wg.Add(1)
	c.AfterFunc(-5, "x", func() { wg.Done() })
	wg.Wait() // must fire ~immediately rather than panic
}

func TestRealTimerStopAfterFire(t *testing.T) {
	c := NewRealClock()
	var wg sync.WaitGroup
	wg.Add(1)
	tm := c.AfterFunc(0.01, "x", func() { wg.Done() })
	wg.Wait()
	time.Sleep(5 * time.Millisecond)
	if tm.Stop() {
		t.Error("Stop after fire should report false")
	}
}
