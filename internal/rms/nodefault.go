package rms

import (
	"fmt"
	"math"
	"sort"

	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/view"
)

// This file implements node-level fault injection: FailNodes marks
// individual machines of a cluster as down, shrinking the cluster's
// effective capacity and applying a per-request recovery policy to every
// allocation that held a dead node; RecoverNodes brings machines back.
// Shard-level crashes (Stop/Reset) model a dying RMS process; node-level
// faults model dying machines under a healthy RMS — the other half of the
// paper's §3.1.4 fault model.

// NodeRecoveryPolicy selects what happens to a started non-preemptible
// request when a node it holds dies. Preemptible requests are always
// handled cooperatively: revocation is within the preemptible contract
// (§3.1.4), so the allocation is reduced to its surviving nodes and the
// application is notified. Pre-allocations hold no node IDs and are never
// affected.
type NodeRecoveryPolicy int

const (
	// KillOnNodeFailure terminates the affected request (§3.1.4 applied per
	// request): surviving node IDs are released, the request is removed, and
	// RequestObserver handlers see a reap without a preceding finish — the
	// established lost-work signal.
	KillOnNodeFailure NodeRecoveryPolicy = iota
	// RequeueOnNodeFailure resets the affected request to pending: all
	// surviving node IDs are released and the request re-runs from scratch
	// when the scheduler places it again. Work done before the failure is
	// repeated (the waste of this policy).
	RequeueOnNodeFailure
	// CooperativeOnNodeFailure keeps the request running on its surviving
	// nodes and notifies the application through NodeFailureHandler; the
	// application chooses checkpoint/resubmit behaviour itself. Sessions
	// whose handler does not implement NodeFailureHandler fall back to
	// RequeueOnNodeFailure — nobody would ever act on the reduced
	// allocation otherwise.
	CooperativeOnNodeFailure
)

// String names the policy for reports and experiment tables.
func (p NodeRecoveryPolicy) String() string {
	switch p {
	case KillOnNodeFailure:
		return "kill"
	case RequeueOnNodeFailure:
		return "requeue"
	case CooperativeOnNodeFailure:
		return "cooperative"
	default:
		return fmt.Sprintf("NodeRecoveryPolicy(%d)", int(p))
	}
}

// NodeFaultAction describes what the server did to one affected request.
type NodeFaultAction int

const (
	// NodeFaultKilled: the request was terminated; its work is lost.
	NodeFaultKilled NodeFaultAction = iota
	// NodeFaultRequeued: the request was reset to pending for a full re-run.
	NodeFaultRequeued
	// NodeFaultReduced: the request keeps running on its surviving nodes.
	NodeFaultReduced
)

// String names the action for traces.
func (a NodeFaultAction) String() string {
	switch a {
	case NodeFaultKilled:
		return "killed"
	case NodeFaultRequeued:
		return "requeued"
	case NodeFaultReduced:
		return "reduced"
	default:
		return fmt.Sprintf("NodeFaultAction(%d)", int(a))
	}
}

// NodeFailure is the notification delivered to NodeFailureHandler
// implementations for each request affected by a node failure.
type NodeFailure struct {
	// Cluster is the cluster that lost nodes.
	Cluster view.ClusterID
	// Request is the affected request.
	Request request.ID
	// Action is what the server did to the request.
	Action NodeFaultAction
	// LostIDs are the dead node IDs stripped from the request (ascending).
	LostIDs []int
	// Remaining are the node IDs the request still holds after the event
	// (ascending; nil unless Action == NodeFaultReduced).
	Remaining []int
}

// NodeFailureHandler is an optional AppHandler extension for applications
// that cooperate with node failures: resubmitting reduced work, cancelling
// stale completion timers, or checkpointing progress. Like every handler
// callback it is delivered without the server lock held, in deterministic
// (session-ID, then request-ID) order, and may call back into the Session.
type NodeFailureHandler interface {
	OnNodeFailure(ev NodeFailure)
}

// CooperatesOnNodeFailure reports whether handler h would act on a reduced
// allocation under CooperativeOnNodeFailure. Routing layers (the federation
// shardHandler) always implement NodeFailureHandler to forward events, so a
// bare type assertion would claim cooperation for every federated app; such
// layers additionally implement `CooperatesOnNodeFailure() bool` to answer
// for the application behind them, and that answer wins when present.
func CooperatesOnNodeFailure(h AppHandler) bool {
	if c, ok := h.(interface{ CooperatesOnNodeFailure() bool }); ok {
		return c.CooperatesOnNodeFailure()
	}
	_, ok := h.(NodeFailureHandler)
	return ok
}

// NodeFaultReport summarizes one FailNodes call for traces and experiment
// accounting.
type NodeFaultReport struct {
	Cluster view.ClusterID
	// Failed are the node IDs taken down by this call (ascending).
	Failed []int
	// Killed/Requeued/Reduced count the affected requests per action.
	Killed, Requeued, Reduced int
	// Capacity is the cluster's working-node count after the event.
	Capacity int
}

// NodeRecoverReport summarizes one RecoverNodes call.
type NodeRecoverReport struct {
	Cluster view.ClusterID
	// Recovered are the node IDs brought back by this call (ascending).
	Recovered []int
	// Capacity is the cluster's working-node count after the event.
	Capacity int
}

// FailedNodeIDs returns the currently-down node IDs of cluster cid in
// ascending order, or nil for an unknown cluster or a stopped server.
func (s *Server) FailedNodeIDs(cid view.ClusterID) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil
	}
	pool := s.pools[cid]
	if pool == nil {
		return nil
	}
	return pool.failedIDs()
}

// FailNodes marks the given node IDs of cluster cid as down. The cluster's
// effective capacity shrinks by len(ids) immediately — the scheduler's
// cached base-availability folds are invalidated and the next round plans
// against the reduced cluster. Every allocation holding a dead node is
// identified and handled per the server's NodeRecovery policy (see
// NodeRecoveryPolicy); the IDs are validated as a batch before any state
// changes, so on error the server is untouched.
func (s *Server) FailNodes(cid view.ClusterID, ids []int) (*NodeFaultReport, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	pool := s.pools[cid]
	if pool == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrUnknownCluster, cid)
	}
	failing := append([]int(nil), ids...)
	sort.Ints(failing)
	for i, id := range failing {
		if id < 0 || id >= pool.size {
			s.mu.Unlock()
			return nil, fmt.Errorf("rms: failing out-of-range node %d on %q", id, cid)
		}
		if pool.isFailed(id) {
			s.mu.Unlock()
			return nil, fmt.Errorf("rms: node %d on %q is already down", id, cid)
		}
		if i > 0 && failing[i-1] == id {
			s.mu.Unlock()
			return nil, fmt.Errorf("rms: node %d on %q failed twice in one call", id, cid)
		}
	}

	for _, id := range failing {
		if _, err := pool.fail(id); err != nil {
			// Unreachable after batch validation; surface corruption loudly
			// in debug mode, degrade to a no-op for the remainder otherwise.
			break
		}
	}
	dead := func(nid int) bool { return containsInt(failing, nid) }

	rep := &NodeFaultReport{Cluster: cid, Failed: failing}
	now := s.clk.Now()
	for _, appID := range s.sessionIDsLocked() {
		sess := s.sessions[appID]
		var killed []*request.Request
		for _, r := range sess.app.Requests() {
			if r.Cluster != cid || len(r.NodeIDs) == 0 {
				continue
			}
			var lost []int
			for _, nid := range r.NodeIDs {
				if dead(nid) {
					lost = append(lost, nid)
				}
			}
			if len(lost) == 0 {
				continue
			}
			sort.Ints(lost)
			r.NodeIDs = removeInts(r.NodeIDs, lost)
			sess.held -= len(lost)
			s.touchLocked(appID)
			if r.Finished {
				// IDs parked on a finished request for a NEXT hand-over: the
				// survivors stay parked, the child inherits fewer and tops up
				// from the pool. No policy applies — nothing is running.
				continue
			}

			action := s.nodeActionLocked(sess, r)
			switch action {
			case NodeFaultKilled:
				if len(r.NodeIDs) > 0 {
					s.mustFreeLocked(cid, r.NodeIDs)
					sess.held -= len(r.NodeIDs)
					r.NodeIDs = nil
				}
				killed = append(killed, r)
				rep.Killed++
				s.countLocked(appID, metrics.NodeKilledRequests, 1)
			case NodeFaultRequeued:
				if len(r.NodeIDs) > 0 {
					s.mustFreeLocked(cid, r.NodeIDs)
					sess.held -= len(r.NodeIDs)
					r.NodeIDs = nil
				}
				r.StartedAt = math.NaN()
				r.Fixed = false
				r.ScheduledAt = math.Inf(1)
				r.Wrapped = false
				rep.Requeued++
				s.countLocked(appID, metrics.NodeRequeuedRequests, 1)
			case NodeFaultReduced:
				r.NAlloc = len(r.NodeIDs)
				rep.Reduced++
				s.countLocked(appID, metrics.NodeReducedRequests, 1)
			}
			s.notifyNodeFailureLocked(sess, NodeFailure{
				Cluster:   cid,
				Request:   r.ID,
				Action:    action,
				LostIDs:   lost,
				Remaining: remainingFor(action, r),
			})
		}
		if len(killed) > 0 {
			reaped := make([]request.ID, 0, len(killed))
			for _, r := range killed {
				sess.app.SetFor(r.Type).Remove(r)
				reaped = append(reaped, r.ID)
				// Sever relations pointing at the killed request so no live
				// object references a request the server no longer manages
				// (same discipline as DetachCluster's dead-relation pass).
				for _, q := range sess.app.Requests() {
					if q.RelatedTo == r {
						q.RelatedHow, q.RelatedTo = request.Free, nil
					}
				}
			}
			sort.Slice(reaped, func(i, j int) bool { return reaped[i] < reaped[j] })
			s.notifyReapedLocked(sess, reaped)
		}
		s.recordAllocLocked(sess, now)
	}

	s.sched.SetCapacity(cid, pool.capacity())
	rep.Capacity = pool.capacity()
	s.loadEpoch++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.IncCounter(0, metrics.FailedNodes, len(failing))
	}
	s.requestRunLocked()
	s.mu.Unlock()
	s.flush()
	return rep, nil
}

// RecoverNodes marks the given node IDs of cluster cid as working again:
// they return to the free pool and the cluster's effective capacity grows
// back, invalidating the scheduler's cached folds so the next round plans
// against the restored cluster. The IDs are validated as a batch before any
// state changes.
func (s *Server) RecoverNodes(cid view.ClusterID, ids []int) (*NodeRecoverReport, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	pool := s.pools[cid]
	if pool == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrUnknownCluster, cid)
	}
	recovering := append([]int(nil), ids...)
	sort.Ints(recovering)
	for i, id := range recovering {
		if !pool.isFailed(id) {
			s.mu.Unlock()
			return nil, fmt.Errorf("rms: recovering node %d on %q which is not down", id, cid)
		}
		if i > 0 && recovering[i-1] == id {
			s.mu.Unlock()
			return nil, fmt.Errorf("rms: node %d on %q recovered twice in one call", id, cid)
		}
	}
	for _, id := range recovering {
		if err := pool.recover(id); err != nil {
			break // unreachable after batch validation
		}
	}
	s.sched.SetCapacity(cid, pool.capacity())
	s.loadEpoch++
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.IncCounter(0, metrics.RecoveredNodes, len(recovering))
	}
	s.requestRunLocked()
	rep := &NodeRecoverReport{Cluster: cid, Recovered: recovering, Capacity: pool.capacity()}
	s.mu.Unlock()
	s.flush()
	return rep, nil
}

// nodeActionLocked decides the fate of one affected, unfinished request.
func (s *Server) nodeActionLocked(sess *Session, r *request.Request) NodeFaultAction {
	if r.Type == request.Preempt {
		// Revocation is within the preemptible contract: always reduce.
		return NodeFaultReduced
	}
	switch s.cfg.NodeRecovery {
	case KillOnNodeFailure:
		return NodeFaultKilled
	case CooperativeOnNodeFailure:
		if CooperatesOnNodeFailure(sess.h) {
			return NodeFaultReduced
		}
		return NodeFaultRequeued
	default:
		return NodeFaultRequeued
	}
}

// remainingFor copies the surviving node IDs for a reduced request's
// notification; killed and requeued requests hold nothing afterwards.
func remainingFor(action NodeFaultAction, r *request.Request) []int {
	if action != NodeFaultReduced || len(r.NodeIDs) == 0 {
		return nil
	}
	out := append([]int(nil), r.NodeIDs...)
	sort.Ints(out)
	return out
}

// notifyNodeFailureLocked queues an OnNodeFailure notification for handlers
// implementing the NodeFailureHandler extension.
func (s *Server) notifyNodeFailureLocked(sess *Session, ev NodeFailure) {
	if nh, ok := sess.h.(NodeFailureHandler); ok {
		s.pending = append(s.pending, func() { nh.OnNodeFailure(ev) })
	}
}

// countLocked increments a per-application fault counter if metrics are on.
func (s *Server) countLocked(appID int, c metrics.Counter, n int) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.IncCounter(appID, c, n)
	}
}

// mustFreeLocked returns IDs to a pool on an internal path where a failure
// indicates state corruption: loud under the debug flag (free panics
// itself), ignored otherwise — the pool rejects the batch atomically, so
// degrading costs leaked IDs, not a crashed daemon.
func (s *Server) mustFreeLocked(cid view.ClusterID, ids []int) {
	_ = s.pools[cid].free(ids)
}
