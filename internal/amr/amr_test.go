package amr

import (
	"math"
	"testing"

	"coormv2/internal/stats"
)

func TestStepTimeKnownValues(t *testing.T) {
	p := DefaultParams
	// Sequential time at the full 3.16 TiB: dominated by A·S ≈ 24 000 s.
	t1 := p.StepTime(1, DefaultSmax)
	if t1 < 20000 || t1 > 30000 {
		t.Errorf("t(1, Smax) = %v, expected ≈ 24 000 s", t1)
	}
	// At 1400 nodes (the paper's n = 1400·κ scale) a step takes ~20 s.
	t1400 := p.StepTime(1400, DefaultSmax)
	if t1400 < 15 || t1400 > 30 {
		t.Errorf("t(1400, Smax) = %v, expected ≈ 20–25 s", t1400)
	}
}

func TestStepTimePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=0 should panic")
		}
	}()
	DefaultParams.StepTime(0, 100)
}

func TestEfficiencyProperties(t *testing.T) {
	p := DefaultParams
	if e := p.Efficiency(1, DefaultSmax); math.Abs(e-1) > 1e-12 {
		t.Errorf("efficiency on one node = %v, want 1", e)
	}
	// Strictly decreasing in n.
	prev := 2.0
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		e := p.Efficiency(n, DefaultSmax)
		if e >= prev {
			t.Errorf("efficiency not decreasing at n=%d: %v >= %v", n, e, prev)
		}
		prev = e
	}
}

func TestNodesForEfficiency(t *testing.T) {
	p := DefaultParams
	n := p.NodesForEfficiency(DefaultSmax, 0.75)
	// The paper sizes the cluster as 1400·κ for this workload; the
	// target-efficiency node count at peak size is in that neighbourhood.
	if n < 1000 || n > 2500 {
		t.Errorf("NodesForEfficiency(Smax, 0.75) = %d, expected ≈ 1400–1600", n)
	}
	if e := p.Efficiency(n, DefaultSmax); e < 0.75 {
		t.Errorf("returned n misses the target: e=%v", e)
	}
	if e := p.Efficiency(n+1, DefaultSmax); e >= 0.75 {
		t.Errorf("n is not maximal: e(n+1)=%v", e)
	}
	// Tiny data: answer must still be >= 1.
	if got := p.NodesForEfficiency(0.001, 0.99); got < 1 {
		t.Errorf("tiny size gave n=%d", got)
	}
}

func TestNodesForEfficiencyMonotoneInTarget(t *testing.T) {
	p := DefaultParams
	prev := math.MaxInt
	for _, et := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		n := p.NodesForEfficiency(DefaultSmax, et)
		if n > prev {
			t.Errorf("higher target efficiency should not need more nodes: et=%v n=%d prev=%d", et, n, prev)
		}
		prev = n
	}
}

func TestGenerateProfileShape(t *testing.T) {
	rng := stats.NewRand(1)
	pr := GenerateProfile(rng, ProfileSteps, DefaultSmax)
	if len(pr) != ProfileSteps {
		t.Fatalf("len = %d", len(pr))
	}
	// Peak must be exactly Smax (normalization) and all values in range.
	if math.Abs(pr.Max()-DefaultSmax) > 1e-6 {
		t.Errorf("peak = %v, want %v", pr.Max(), DefaultSmax)
	}
	for i, s := range pr {
		if s < 0 || s > DefaultSmax+1e-6 {
			t.Fatalf("step %d out of range: %v", i, s)
		}
	}
	// "Mostly increasing": the last decile's mean must exceed the first's.
	head := stats.Mean(pr[:100])
	tail := stats.Mean(pr[900:])
	if tail <= head {
		t.Errorf("profile not mostly increasing: head=%v tail=%v", head, tail)
	}
}

func TestGenerateProfileDeterministicPerSeed(t *testing.T) {
	a := GenerateProfile(stats.NewRand(7), 100, 1000)
	b := GenerateProfile(stats.NewRand(7), 100, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different profiles")
		}
	}
	c := GenerateProfile(stats.NewRand(8), 100, 1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical profiles")
	}
}

func TestProfileScale(t *testing.T) {
	pr := Profile{10, 20, 30}
	sc := pr.Scale(0.5)
	if sc[0] != 5 || sc[2] != 15 {
		t.Errorf("Scale = %v", sc)
	}
	if pr[0] != 10 {
		t.Error("Scale mutated the original")
	}
}

func TestDynamicAreaMatchesDefinition(t *testing.T) {
	// A(e_t) = Σ t(1,S_i)/e_t when the efficiency target is met exactly;
	// with integer node counts the area is within a few percent of that.
	p := DefaultParams
	pr := GenerateProfile(stats.NewRand(3), 200, DefaultSmax)
	et := 0.75
	area := p.DynamicArea(pr, et)
	ideal := 0.0
	for _, s := range pr {
		ideal += p.SeqTime(s) / et
	}
	if math.Abs(area-ideal)/ideal > 0.05 {
		t.Errorf("area = %v, ideal = %v (>5%% apart)", area, ideal)
	}
}

func TestEquivalentStaticCrossesArea(t *testing.T) {
	p := DefaultParams
	pr := GenerateProfile(stats.NewRand(4), ProfileSteps, DefaultSmax)
	neq, relErr := p.EquivalentStatic(pr, 0.75)
	if neq < 100 || neq > 5000 {
		t.Errorf("n_eq = %d, implausible", neq)
	}
	if relErr > 0.01 {
		t.Errorf("area mismatch %v > 1%%", relErr)
	}
}

func TestEndTimeIncreaseSmall(t *testing.T) {
	// Fig. 3: "the end-time of the application increases with at most 2.5%".
	p := DefaultParams
	pr := GenerateProfile(stats.NewRand(5), ProfileSteps, DefaultSmax)
	for _, et := range []float64{0.3, 0.5, 0.75} {
		inc := p.EndTimeIncrease(pr, et)
		if inc < -0.01 {
			t.Errorf("et=%v: negative end-time increase %v", et, inc)
		}
		if inc > 0.05 {
			t.Errorf("et=%v: end-time increase %v, paper bound is ~2.5%%", et, inc)
		}
	}
}

func TestStaticChoiceRange(t *testing.T) {
	p := DefaultParams
	pr := GenerateProfile(stats.NewRand(6), ProfileSteps, DefaultSmax)
	small := p.StaticChoiceRange(pr, 0.75, DefaultNodeMemoryMiB, 0.125)
	full := p.StaticChoiceRange(pr, 0.75, DefaultNodeMemoryMiB, 1)
	big := p.StaticChoiceRange(pr, 0.75, DefaultNodeMemoryMiB, 8)

	if !small.Feasible || !full.Feasible {
		t.Errorf("small/full sizes should be feasible: %+v %+v", small, full)
	}
	// Larger data ⇒ higher memory floor.
	if !(small.MinNodes < full.MinNodes && full.MinNodes < big.MinNodes) {
		t.Errorf("memory floor not increasing: %d %d %d", small.MinNodes, full.MinNodes, big.MinNodes)
	}
	// The choice band narrows (relatively) as unpredictability bites: the
	// max stays ≥ min for feasible rows.
	if full.MaxNodes < full.MinNodes {
		t.Errorf("full-size band empty: %+v", full)
	}
	// The area ceiling must be consistent: area(max) ≤ 1.1·A ≤ area(max+1).
	scaled := pr.Scale(1)
	budget := 1.1 * p.DynamicArea(scaled, 0.75)
	if p.StaticArea(scaled, full.MaxNodes) > budget {
		t.Error("MaxNodes exceeds the area budget")
	}
	if p.StaticArea(scaled, full.MaxNodes+1) <= budget {
		t.Error("MaxNodes not maximal")
	}
}

func TestFitSpeedupRecoversParams(t *testing.T) {
	// Fig. 2: the fit must land within the paper's 15 % error band.
	rng := stats.NewRand(9)
	ms := SynthesizeMeasurements(DefaultParams, rng, 0.05)
	got, err := FitSpeedup(ms)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxRelError(got, ms); e > 0.15 {
		t.Errorf("max relative error %v > 15%%", e)
	}
	// The dominant parameters are recovered closely.
	if math.Abs(got.A-DefaultParams.A)/DefaultParams.A > 0.1 {
		t.Errorf("A = %v, want ≈ %v", got.A, DefaultParams.A)
	}
}

func TestFitSpeedupNoiseless(t *testing.T) {
	rng := stats.NewRand(10)
	ms := SynthesizeMeasurements(DefaultParams, rng, 0)
	got, err := FitSpeedup(ms)
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"A": {got.A, DefaultParams.A},
		"B": {got.B, DefaultParams.B},
		"C": {got.C, DefaultParams.C},
		"D": {got.D, DefaultParams.D},
	} {
		if math.Abs(pair[0]-pair[1])/pair[1] > 1e-6 {
			t.Errorf("%s = %v, want %v", name, pair[0], pair[1])
		}
	}
}

func TestFitSpeedupErrors(t *testing.T) {
	if _, err := FitSpeedup(nil); err == nil {
		t.Error("too few measurements should error")
	}
	bad := []Measurement{{1, 10, -1}, {2, 10, 1}, {4, 10, 1}, {8, 10, 1}}
	if _, err := FitSpeedup(bad); err == nil {
		t.Error("negative duration should error")
	}
}

func TestMaxRelErrorZeroForExactModel(t *testing.T) {
	ms := SynthesizeMeasurements(DefaultParams, stats.NewRand(11), 0)
	if e := MaxRelError(DefaultParams, ms); e > 1e-12 {
		t.Errorf("exact model has error %v", e)
	}
}
