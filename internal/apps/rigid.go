package apps

import (
	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// Rigid is the simplest application of §4: "a rigid application sends a
// single non-preemptible request of the user-submitted node-count and
// duration. Since the application does not adapt, it ignores its views."
type Rigid struct {
	base

	Cluster  view.ClusterID
	N        int
	Duration float64

	reqID     request.ID
	submitted bool
	endTimer  clock.Timer

	// Recorded lifecycle, for tests and workload replay statistics.
	StartTime float64
	EndTime   float64
	NodeIDs   []int
	Started   bool
	Ended     bool
	// OnEnd, when set, runs at the job's completion (replay bookkeeping).
	OnEnd func()
}

// NewRigid creates a rigid application.
func NewRigid(clk clock.Clock, cid view.ClusterID, n int, duration float64) *Rigid {
	return &Rigid{base: base{clk: clk}, Cluster: cid, N: n, Duration: duration}
}

// Submit sends the single non-preemptible request.
func (r *Rigid) Submit() error {
	if r.submitted {
		return nil
	}
	id, err := r.sess.Request(rms.RequestSpec{
		Cluster: r.Cluster, N: r.N, Duration: r.Duration, Type: request.NonPreempt,
	})
	if err != nil {
		return err
	}
	r.reqID = id
	r.submitted = true
	return nil
}

// OnViews ignores the views, by definition of a rigid job.
func (r *Rigid) OnViews(_, _ view.View) {}

// OnStart records the allocation and schedules the job's completion.
func (r *Rigid) OnStart(id request.ID, nodeIDs []int) {
	if id != r.reqID {
		return
	}
	// A second start is a crash-requeued re-run: the work restarts from
	// scratch, so the completion moves with it — the first run's end timer
	// must not settle the job while the re-run is still executing. (If the
	// re-run starts only after the first run's scheduled end, the stale
	// timer has already fired: the app has no crash signal to cancel it
	// earlier — see ROADMAP "crash-aware applications". Crash-accurate
	// consumers settle on the server-side OnRequestFinished event instead,
	// as the chaos harness does.)
	if r.endTimer != nil {
		r.endTimer.Stop()
	}
	r.Started = true
	r.StartTime = r.now()
	r.NodeIDs = nodeIDs
	r.endTimer = r.clk.AfterFunc(r.Duration, "rigid.end", func() {
		r.Ended = true
		r.EndTime = r.now()
		if r.OnEnd != nil {
			r.OnEnd()
		}
	})
}
