package rms

import (
	"errors"
	"math"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// observerApp records every notification, including the RequestObserver
// extension.
type observerApp struct {
	starts   []request.ID
	finished []request.ID
	reaped   []request.ID
	killed   string
}

func (a *observerApp) OnViews(_, _ view.View)            {}
func (a *observerApp) OnStart(id request.ID, _ []int)    { a.starts = append(a.starts, id) }
func (a *observerApp) OnKill(reason string)              { a.killed = reason }
func (a *observerApp) OnRequestFinished(id request.ID)   { a.finished = append(a.finished, id) }
func (a *observerApp) OnRequestsReaped(ids []request.ID) { a.reaped = append(a.reaped, ids...) }

func newStopTestServer(rec *metrics.Recorder) (*sim.Engine, *Server) {
	e := sim.NewEngine()
	s := NewServer(Config{
		Clusters:        map[view.ClusterID]int{"c": 8},
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Metrics:         rec,
	})
	return e, s
}

func TestStopDropsStateAndClosesMetrics(t *testing.T) {
	rec := metrics.NewRecorder()
	e, s := newStopTestServer(rec)
	app := &observerApp{}
	sess := s.Connect(app)
	if _, err := sess.Request(RequestSpec{Cluster: "c", N: 4, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if len(app.starts) != 1 {
		t.Fatalf("starts = %v, want 1", app.starts)
	}
	if got := rec.Current(sess.AppID()); got != 4 {
		t.Fatalf("current alloc = %d, want 4", got)
	}

	s.Stop()
	if !s.Stopped() {
		t.Fatal("server should report stopped")
	}
	// The crash is silent: no OnKill.
	if app.killed != "" {
		t.Fatalf("crash must not notify, got OnKill(%q)", app.killed)
	}
	// Metrics stop accruing at the crash instant.
	if got := rec.Current(sess.AppID()); got != 0 {
		t.Fatalf("current alloc after crash = %d, want 0", got)
	}
	area := rec.Area(sess.AppID(), e.Now())
	if got := rec.Area(sess.AppID(), e.Now()+100); got != area {
		t.Fatalf("area keeps growing after crash: %v → %v", area, got)
	}
	// Every operation fails.
	if _, err := sess.Request(RequestSpec{Cluster: "c", N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("Request on a stopped server should fail")
	}
	if err := sess.Done(1, nil); err == nil {
		t.Error("Done on a stopped server should fail")
	}
	if _, err := s.ConnectID(&observerApp{}, 7); !errors.Is(err, ErrStopped) {
		t.Errorf("ConnectID error = %v, want ErrStopped", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("stopped-server invariants: %v", err)
	}
	// Queued timers must not fire a round after the crash.
	e.Run(e.Now() + 50)
	if s.Stopped() != true {
		t.Fatal("still stopped")
	}
}

func TestResetRejoinsEmpty(t *testing.T) {
	e, s := newStopTestServer(nil)
	app := &observerApp{}
	sess := s.Connect(app)
	if _, err := sess.Request(RequestSpec{Cluster: "c", N: 8, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	s.Stop()
	s.Reset()
	if s.Stopped() {
		t.Fatal("Reset should clear the stopped state")
	}
	// Fresh ID spaces and a full pool: a new app gets ID 1 and all 8 nodes.
	app2 := &observerApp{}
	sess2, err := s.ConnectID(app2, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := sess2.Request(RequestSpec{Cluster: "c", N: 8, Duration: 10, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("request ID after Reset = %d, want 1", id)
	}
	e.Run(e.Now() + 5)
	if len(app2.starts) != 1 {
		t.Fatalf("post-reset starts = %v, want 1", app2.starts)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("post-reset invariants: %v", err)
	}
	// The pre-crash session stays dead.
	if _, err := sess.Request(RequestSpec{Cluster: "c", N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("pre-crash session should stay terminated")
	}
}

func TestResetPanicsOnRunningServer(t *testing.T) {
	_, s := newStopTestServer(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on a running server should panic")
		}
	}()
	s.Reset()
}

func TestRequestObserverFinishAndReap(t *testing.T) {
	e, s := newStopTestServer(nil)
	app := &observerApp{}
	sess := s.Connect(app)
	id, err := sess.Request(RequestSpec{Cluster: "c", N: 2, Duration: 5, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	if len(app.finished) != 0 {
		t.Fatalf("finished too early: %v", app.finished)
	}
	// Expiry finishes the request; the same round's GC reaps it.
	e.Run(20)
	if len(app.finished) != 1 || app.finished[0] != id {
		t.Fatalf("finished = %v, want [%d]", app.finished, id)
	}
	if len(app.reaped) != 1 || app.reaped[0] != id {
		t.Fatalf("reaped = %v, want [%d]", app.reaped, id)
	}

	// A withdrawn pending request is finished and reaped at once.
	id2, err := sess.Request(RequestSpec{Cluster: "c", N: 99, Duration: 5, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Done(id2, nil); err != nil {
		t.Fatal(err)
	}
	if len(app.finished) != 2 || app.finished[1] != id2 {
		t.Fatalf("finished after withdraw = %v, want [... %d]", app.finished, id2)
	}
	if len(app.reaped) != 2 || app.reaped[1] != id2 {
		t.Fatalf("reaped after withdraw = %v, want [... %d]", app.reaped, id2)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestRequestFinishedKeepsNextParentReferable pins the reap condition: a
// finished request with a pending NEXT child is finished but NOT reaped
// until the child no longer needs it.
func TestRequestFinishedKeepsNextParentReferable(t *testing.T) {
	e, s := newStopTestServer(nil)
	app := &observerApp{}
	sess := s.Connect(app)
	parent, err := sess.Request(RequestSpec{Cluster: "c", N: 2, Duration: 10, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	// NEXT child scheduled to start at the parent's end.
	child, err := sess.Request(RequestSpec{Cluster: "c", N: 2, Duration: 10, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: parent})
	if err != nil {
		t.Fatal(err)
	}
	// Run past the parent's expiry but before the child finishes.
	e.Run(15)
	foundParent := false
	for _, id := range app.finished {
		if id == parent {
			foundParent = true
		}
	}
	if !foundParent {
		t.Fatalf("parent %d not finished; finished=%v", parent, app.finished)
	}
	for _, id := range app.reaped {
		if id == parent {
			t.Fatalf("parent %d reaped while child %d still ran", parent, child)
		}
	}
	// Once the child is done too, both are reaped.
	e.Run(60)
	got := map[request.ID]bool{}
	for _, id := range app.reaped {
		got[id] = true
	}
	if !got[parent] || !got[child] {
		t.Fatalf("reaped = %v, want both %d and %d", app.reaped, parent, child)
	}
}

func TestStructuredErrors(t *testing.T) {
	e, s := newStopTestServer(nil)
	sess := s.Connect(&observerApp{})
	e.Run(1)
	_, err := sess.Request(RequestSpec{Cluster: "c", N: 1, Duration: 1, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: 42})
	var re *RequestError
	if !errors.As(err, &re) || re.ID != 42 || !re.Related {
		t.Fatalf("related error = %#v (%v)", re, err)
	}
	if err.Error() != "rms: related request 42 not found" {
		t.Errorf("message = %q", err.Error())
	}
	if err := sess.Done(42, nil); !errors.As(err, &re) || re.ID != 42 || re.Related {
		t.Fatalf("done error = %#v (%v)", re, err)
	}
	if err := sess.Done(42, nil); err.Error() != "rms: request 42 not found" {
		t.Errorf("message = %q", err.Error())
	}
	if got := re.WithID(7).Error(); got != "rms: request 7 not found" {
		t.Errorf("WithID message = %q", got)
	}
}
