package experiments

import (
	"fmt"

	"coormv2/internal/apps"
)

// AblationRow compares the full CooRMv2 behaviour against a variant with
// one design choice disabled, on the same workload and seed.
type AblationRow struct {
	Variant          string
	PSAWaste         float64 // node·s
	UsedResourcesPct float64
	AMRRuntime       float64
}

// AblationConfig parametrizes the ablation study.
type AblationConfig struct {
	Seed             int64
	Steps            int
	Smax             float64
	AnnounceInterval float64
	PSATaskDur       float64
}

// AblationPSA quantifies the two PSA-side design choices that make
// announced updates pay off (§5.3–5.4):
//
//  1. graceful release (waiting for task completions instead of killing),
//  2. window-aware resource selection (§4: claim a node only when its
//     availability window fits at least one task).
//
// Each variant runs the Fig. 10 scenario (κ = 1, announced updates) with
// one mechanism disabled.
func AblationPSA(cfg AblationConfig) ([]AblationRow, error) {
	if cfg.AnnounceInterval <= 0 {
		cfg.AnnounceInterval = 300
	}
	if cfg.PSATaskDur <= 0 {
		cfg.PSATaskDur = 600
	}
	variants := []struct {
		name string
		mod  func(p *apps.PSA)
	}{
		{"full (graceful + window-aware)", nil},
		{"no graceful release", func(p *apps.PSA) { p.SetNoGraceful(true) }},
		{"no window selection", func(p *apps.PSA) { p.SetIgnoreWindows(true) }},
		{"neither", func(p *apps.PSA) { p.SetNoGraceful(true); p.SetIgnoreWindows(true) }},
	}
	out := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		sc := ScenarioConfig{
			Seed: cfg.Seed, Steps: cfg.Steps, Smax: cfg.Smax,
			TargetEff: 0.75, Overcommit: 1, Mode: apps.NEADynamic,
			AnnounceInterval: cfg.AnnounceInterval,
			PSATaskDurations: []float64{cfg.PSATaskDur},
		}
		if v.mod != nil {
			mod := v.mod
			sc.PSAHook = func(_ int, p *apps.PSA) { mod(p) }
		}
		res, err := RunScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		out = append(out, AblationRow{
			Variant:          v.name,
			PSAWaste:         res.PSAWaste[0],
			UsedResourcesPct: 100 * res.UsedFraction,
			AMRRuntime:       res.AMRRuntime,
		})
	}
	return out, nil
}
