package core

import (
	"sort"

	"coormv2/internal/stepfunc"
	"coormv2/internal/view"
)

// PreemptPolicy selects how preemptible resources are divided among
// applications.
type PreemptPolicy uint8

const (
	// EquiPartitionFilling is the paper's default policy (§3.2, §A.4.3):
	// resources are divided equally among applications with preemptible
	// requests, but resources an application does not request may be
	// filled by the others.
	EquiPartitionFilling PreemptPolicy = iota
	// StrictEquiPartition is the baseline of §5.4: every application is
	// shown exactly its equi-partition, regardless of whether the other
	// applications use theirs.
	StrictEquiPartition
)

// String returns a human-readable policy name.
func (p PreemptPolicy) String() string {
	if p == StrictEquiPartition {
		return "strict-equi-partition"
	}
	return "equi-partition-filling"
}

// eqSchedule implements Algorithm 3 (§A.4.3): it divides the resources of
// vin among the applications' preemptible requests and returns the
// preemptive view of each application, keyed by application ID. As a side
// effect the ScheduledAt and NAlloc attributes of the preemptible requests
// are updated.
func eqSchedule(apps []*AppState, vin view.View, t0 float64, policy PreemptPolicy) map[int]view.View {
	n := len(apps)
	out := make(map[int]view.View, n)
	if n == 0 {
		return out
	}

	// Compute preliminary views of occupied resources (lines 1–3).
	vocc := make([]view.View, n)
	for i, a := range apps {
		fixed := toView(a.P, vin, t0)
		pending := fit(a.P, vin.Sub(fixed).ClampMin(0), t0)
		vocc[i] = fixed.Add(pending)
	}

	// Gather every cluster mentioned by vin or any occupancy view.
	clusterSet := map[view.ClusterID]bool{}
	for cid := range vin {
		clusterSet[cid] = true
	}
	for _, v := range vocc {
		for cid := range v {
			clusterSet[cid] = true
		}
	}
	clusters := make([]view.ClusterID, 0, len(clusterSet))
	for cid := range clusterSet {
		clusters = append(clusters, cid)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })

	// For each cluster, walk the piece-wise constant intervals (lines 4–27).
	perApp := make([]view.View, n)
	for i := range perApp {
		perApp[i] = view.New()
	}
	for _, cid := range clusters {
		// Collect breakpoints of vin and all occupancy profiles.
		bpSet := map[float64]bool{0: true}
		for _, t := range vin.Get(cid).Breakpoints() {
			bpSet[t] = true
		}
		for _, v := range vocc {
			for _, t := range v.Get(cid).Breakpoints() {
				bpSet[t] = true
			}
		}
		bps := make([]float64, 0, len(bpSet))
		for t := range bpSet {
			bps = append(bps, t)
		}
		sort.Float64s(bps)

		steps := make([][]stepfunc.Step, n)
		for k, t := range bps {
			dur := stepfunc.Inf
			if k+1 < len(bps) {
				dur = bps[k+1] - t
			}
			vinVal := vin.Get(cid).Value(t)
			if vinVal < 0 {
				vinVal = 0
			}
			req := make([]int, n)
			sum := 0
			active := 0
			for i, v := range vocc {
				r := v.Get(cid).Value(t)
				if r < 0 {
					r = 0
				}
				req[i] = r
				sum += r
				if r > 0 {
					active++
				}
			}
			shares := divideInterval(vinVal, req, sum, active, policy)
			for i := range shares {
				steps[i] = append(steps[i], stepfunc.Step{Duration: dur, N: shares[i]})
			}
		}
		for i := range perApp {
			f := stepfunc.FromSteps(steps[i]...)
			if !f.IsZero() {
				perApp[i][cid] = f
			}
		}
	}

	// Reschedule all requests according to the computed views, so that
	// ScheduledAt and NAlloc are set correctly (lines 28–30).
	for i, a := range apps {
		v := perApp[i]
		fixed := toView(a.P, v, t0)
		fit(a.P, v.Sub(fixed).ClampMin(0), t0)
		out[a.ID] = v
	}
	return out
}

// divideInterval computes the per-application view values for one
// piece-wise constant interval: avail nodes available, req[i] nodes
// requested by application i (sum, active precomputed).
func divideInterval(avail int, req []int, sum, active int, policy PreemptPolicy) []int {
	n := len(req)
	out := make([]int, n)

	// Fair-share size for an application: its equi-partition. An inactive
	// application's hypothetical share uses active+1 partitions (Alg. 3
	// lines 11–12 and 22–23: "the number of partitions if this application
	// were to become active").
	share := func(i int) int {
		parts := active
		if req[i] == 0 {
			parts = active + 1
		}
		if parts == 0 {
			parts = 1
		}
		return avail / parts
	}

	if policy == StrictEquiPartition {
		for i := range out {
			out[i] = share(i)
		}
		return out
	}

	if sum > avail {
		// Congested: distribute resources equally until none are left free
		// (lines 8–18), using iterative water-filling.
		need := append([]int(nil), req...)
		grant := make([]int, n)
		left := avail
		for left > 0 {
			unsat := 0
			for i := range need {
				if need[i] > 0 {
					unsat++
				}
			}
			if unsat == 0 {
				break
			}
			veq := left / unsat
			if veq < 1 {
				veq = 1
			}
			progressed := false
			for i := range need {
				if need[i] == 0 || left == 0 {
					continue
				}
				take := need[i]
				if veq < take {
					take = veq
				}
				if left < take {
					take = left
				}
				grant[i] += take
				need[i] -= take
				left -= take
				if take > 0 {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		for i := range out {
			if req[i] > 0 {
				out[i] = grant[i]
			} else {
				// Inactive applications still see their hypothetical share
				// so they can decide to become active.
				out[i] = share(i)
			}
		}
		return out
	}

	// Uncongested: give each application the resources left free by the
	// others, but not less than its equi-partition (lines 19–25).
	for i := range out {
		leftover := avail - (sum - req[i])
		if s := share(i); leftover < s {
			leftover = s
		}
		if leftover < 0 {
			leftover = 0
		}
		out[i] = leftover
	}
	return out
}
