package federation

import (
	"fmt"
	"sort"

	"coormv2/internal/view"
)

// Node-level fault routing: the Federator keeps an authoritative per-cluster
// record of which machines are down and forwards FailNodes/RecoverNodes to
// the shard owning the cluster. The record is topology-level state like the
// owner table — a shard crash loses scheduler state, not the fact that a
// machine is physically dead — so RestartShard re-applies a cluster's failed
// set to the freshly reset shard before re-admitting sessions, and a
// migration carries it inside the rms.ClusterSnapshot.

// NodeFaultReport summarizes one federated node-failure event.
type NodeFaultReport struct {
	Cluster view.ClusterID
	// Shard is the index of the owning shard.
	Shard int
	// Failed are the node IDs taken down (ascending).
	Failed []int
	// Applied is false when the owning shard was down: the failure is
	// recorded and applied when the shard restarts.
	Applied bool
	// Killed/Requeued/Reduced count the affected requests per action
	// (zero when not applied).
	Killed, Requeued, Reduced int
	// Capacity is the cluster's working-node count after the event.
	Capacity int
}

// String renders the report as one deterministic trace line.
func (r NodeFaultReport) String() string {
	return fmt.Sprintf("nodefail cluster=%s shard=%d nodes=%v applied=%t killed=%d requeued=%d reduced=%d capacity=%d",
		r.Cluster, r.Shard, r.Failed, r.Applied, r.Killed, r.Requeued, r.Reduced, r.Capacity)
}

// NodeRecoverReport summarizes one federated node-recovery event.
type NodeRecoverReport struct {
	Cluster view.ClusterID
	Shard   int
	// Recovered are the node IDs brought back (ascending).
	Recovered []int
	// Applied is false when the owning shard was down; the recovery then
	// only shrinks the recorded failed set the restart would re-apply.
	Applied bool
	// Capacity is the cluster's working-node count after the event.
	Capacity int
}

// String renders the report as one deterministic trace line.
func (r NodeRecoverReport) String() string {
	return fmt.Sprintf("noderecover cluster=%s shard=%d nodes=%v applied=%t capacity=%d",
		r.Cluster, r.Shard, r.Recovered, r.Applied, r.Capacity)
}

// FailedNodes returns the recorded down node IDs of cluster cid (ascending),
// whether or not the owning shard is up.
func (f *Federator) FailedNodes(cid view.ClusterID) []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.failedNodes[cid]...)
}

// FailNodes marks the given nodes of cluster cid as down. When the owning
// shard is running the failure is applied immediately — the shard shrinks
// the cluster's capacity and handles every affected allocation per its node
// recovery policy; when it is crashed the failure is recorded and applied at
// restart (the machines are dead either way — a scheduler crash does not
// resurrect them). The IDs are validated against the recorded failed set
// before any state changes.
func (f *Federator) FailNodes(cid view.ClusterID, ids []int) (NodeFaultReport, error) {
	f.topoMu.Lock()
	defer f.topoMu.Unlock()
	rep := NodeFaultReport{Cluster: cid}
	f.mu.Lock()
	shard, ok := f.owner[cid]
	if !ok {
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: unknown cluster %q", cid)
	}
	rep.Shard = shard
	failing := append([]int(nil), ids...)
	sort.Ints(failing)
	recorded := f.failedNodes[cid]
	for i, id := range failing {
		if containsNode(recorded, id) {
			f.mu.Unlock()
			return rep, fmt.Errorf("federation: node %d on %q is already down", id, cid)
		}
		if i > 0 && failing[i-1] == id {
			f.mu.Unlock()
			return rep, fmt.Errorf("federation: node %d on %q failed twice in one call", id, cid)
		}
	}
	f.failedNodes[cid] = mergeNodes(recorded, failing)
	rep.Failed = failing
	down := f.down[shard]
	f.mu.Unlock()

	if down {
		// The shard's scheduler state is gone; the failed set is re-applied
		// to the fresh server at restart, before sessions are re-admitted.
		return rep, nil
	}
	srep, err := f.shards[shard].FailNodes(cid, failing)
	if err != nil {
		return rep, err
	}
	rep.Applied = true
	rep.Killed, rep.Requeued, rep.Reduced = srep.Killed, srep.Requeued, srep.Reduced
	rep.Capacity = srep.Capacity
	return rep, nil
}

// RecoverNodes marks the given nodes of cluster cid as working again. When
// the owning shard is down only the recorded failed set shrinks: the restart
// re-applies whatever is still down at that point.
func (f *Federator) RecoverNodes(cid view.ClusterID, ids []int) (NodeRecoverReport, error) {
	f.topoMu.Lock()
	defer f.topoMu.Unlock()
	rep := NodeRecoverReport{Cluster: cid}
	f.mu.Lock()
	shard, ok := f.owner[cid]
	if !ok {
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: unknown cluster %q", cid)
	}
	rep.Shard = shard
	recovering := append([]int(nil), ids...)
	sort.Ints(recovering)
	recorded := f.failedNodes[cid]
	for i, id := range recovering {
		if !containsNode(recorded, id) {
			f.mu.Unlock()
			return rep, fmt.Errorf("federation: recovering node %d on %q which is not down", id, cid)
		}
		if i > 0 && recovering[i-1] == id {
			f.mu.Unlock()
			return rep, fmt.Errorf("federation: node %d on %q recovered twice in one call", id, cid)
		}
	}
	remaining := removeNodes(recorded, recovering)
	if len(remaining) == 0 {
		delete(f.failedNodes, cid)
	} else {
		f.failedNodes[cid] = remaining
	}
	rep.Recovered = recovering
	down := f.down[shard]
	f.mu.Unlock()

	if down {
		return rep, nil
	}
	srep, err := f.shards[shard].RecoverNodes(cid, recovering)
	if err != nil {
		return rep, err
	}
	rep.Applied = true
	rep.Capacity = srep.Capacity
	return rep, nil
}

// reapplyFailedNodesLocked re-applies the recorded failed sets of every
// cluster owned by shard i to its freshly reset rms.Server. Called by
// RestartShard under f.mu, before sessions are re-admitted: the fresh server
// has full pools and no allocations, so the re-application only shrinks
// capacity and can affect nobody.
func (f *Federator) reapplyFailedNodesLocked(i int) {
	cids := make([]view.ClusterID, 0)
	for cid, shard := range f.owner {
		if shard == i && len(f.failedNodes[cid]) > 0 {
			cids = append(cids, cid)
		}
	}
	sort.Slice(cids, func(a, b int) bool { return cids[a] < cids[b] })
	for _, cid := range cids {
		if _, err := f.shards[i].FailNodes(cid, f.failedNodes[cid]); err != nil {
			panic(fmt.Sprintf("federation: re-applying failed nodes of %q to restarted shard %d: %v", cid, i, err))
		}
	}
}

// containsNode reports membership in a sorted node-ID list.
func containsNode(sorted []int, id int) bool {
	i := sort.SearchInts(sorted, id)
	return i < len(sorted) && sorted[i] == id
}

// mergeNodes merges two sorted disjoint node-ID lists into a new sorted one.
func mergeNodes(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	return out
}

// removeNodes returns sorted list a without the (sorted) IDs in rm.
func removeNodes(a, rm []int) []int {
	out := make([]int, 0, len(a))
	for _, id := range a {
		if !containsNode(rm, id) {
			out = append(out, id)
		}
	}
	return out
}
