// Package federation scales the CooRMv2 RMS horizontally: a Federator
// front-end partitions the cluster set across N independent rms.Server
// shards, routes application sessions and request()/done() calls to the
// shard owning their target cluster, and merges the per-shard
// non-preemptive/preemptive views into the single federated view each
// application sees. Scheduling semantics are untouched — every shard runs
// the unmodified §3 algorithm over its own clusters; the federation layer
// only routes and merges.
//
// Like the rest of the system the Federator is clock-agnostic: under
// clock.SimClock all shards advance deterministically on one shared virtual
// clock (the federated experiment scenarios), and under clock.RealClock the
// shards run concurrently, each behind its own lock, with
// internal/transport routing TCP sessions to them.
//
// Identifier spaces: the Federator owns both the application-ID and the
// request-ID space. Application IDs are assigned by the front-end and
// registered verbatim on every shard (rms.Server.ConnectID), so per-shard
// metrics recorders aggregate by the same ID. Request IDs are federated:
// the front-end assigns them sequentially and keeps a per-session
// federated↔shard-local translation table, registered atomically with the
// shard's own bookkeeping via rms.Session.RequestObserved.
//
// Shard lifecycle: CrashShard/RestartShard give every shard a crash/restart
// cycle (driven deterministically by internal/chaos inside the simulator). A
// crash stops the shard's rms.Server — its scheduler-side state is gone —
// and the Federator applies the configured RecoveryPolicy to the sessions
// that lost state: KillOnCrash terminates them per §3.1.4, RequeueOnCrash
// parks their requests on replay queues and re-submits them when the shard
// rejoins empty. Survivors keep running against views re-merged without the
// dead shard.
//
// Cross-shard gang scheduling: a request may relate (NEXT/COALLOC) to a
// request on another shard. The Federator runs a two-phase reservation for
// such gangs (see gang.go): a tentative hold reserves capacity in the child
// shard's schedule (rms.Session.HoldObserved), a coordinator aligns the two
// legs by exchanging NotBefore floors, and the hold is committed into a real
// request when both legs fit — or released and retried with backoff, then
// dropped, when the child leg cannot fit at all. Shard-locally the legs are
// unrelated (the relation lives in the federated spec only), so holds never
// entangle clusters: committed gangs stay migratable.
package federation

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/metrics"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// RecoveryPolicy selects what the Federator does with the sessions affected
// by a shard crash (internal/chaos drives the crashes).
type RecoveryPolicy uint8

const (
	// KillOnCrash applies the paper's §3.1.4 semantics: an application whose
	// scheduler-side state is lost is killed — every session with a live
	// request on the crashed shard receives OnKill and is torn down on the
	// surviving shards. Sessions with no live state there survive, and new
	// requests targeting the dead shard fail until it restarts.
	KillOnCrash RecoveryPolicy = iota
	// RequeueOnCrash keeps the affected sessions alive: their live requests
	// on the crashed shard move to a per-session replay queue and are
	// re-submitted — under the same federated IDs — when the shard rejoins
	// with empty state. Requests submitted while the shard is down are
	// queued the same way; done() on a queued request drops it.
	RequeueOnCrash
)

// String names the policy for reports and traces.
func (p RecoveryPolicy) String() string {
	switch p {
	case KillOnCrash:
		return "kill"
	case RequeueOnCrash:
		return "requeue"
	default:
		return fmt.Sprintf("RecoveryPolicy(%d)", uint8(p))
	}
}

// Config parametrizes a Federator. The scheduling knobs (ReschedInterval,
// Policy, GracePeriod, Clip) are applied uniformly to every shard.
type Config struct {
	// Clusters is the full federated cluster set.
	Clusters map[view.ClusterID]int
	// Shards is the number of scheduler shards. It is clamped to
	// [1, len(Clusters)]: a cluster is never split across shards.
	Shards int
	// ReschedInterval is the per-shard re-scheduling interval (§3.2).
	ReschedInterval float64
	// Clock drives every shard; use clock.SimClock for simulations.
	Clock clock.Clock
	// Policy selects the preemptible division policy.
	Policy core.PreemptPolicy
	// GracePeriod is the per-shard protocol-violation grace period.
	GracePeriod float64
	// Clip optionally limits non-preemptive views; each shard receives the
	// restriction of Clip to its own clusters.
	Clip view.View
	// Metrics, when non-nil, is called once per shard (in shard order,
	// during New) to create that shard's recorder; returning nil disables
	// metrics for the shard. Shards must not share a recorder: each
	// reports per-shard allocation state keyed by the federated
	// application ID, and metrics.Aggregate sums them back together.
	Metrics func(shard int) *metrics.Recorder
	// Recovery selects the shard-crash recovery policy (default:
	// KillOnCrash, the paper's §3.1.4 semantics).
	Recovery RecoveryPolicy
	// NodeRecovery selects the per-request node-failure recovery policy,
	// applied uniformly by every shard (default: KillOnNodeFailure).
	NodeRecovery rms.NodeRecoveryPolicy
	// FederationMetrics, when non-nil, receives the fault-recovery counters
	// (killed sessions, requeued/replayed/dropped requests) keyed by
	// federated application ID. It must be a recorder of its own, not one of
	// the per-shard recorders.
	FederationMetrics *metrics.Recorder
	// FullRecompute disables incremental scheduling on every shard (each
	// round recomputes from scratch). The chaos×migration differential test
	// pins the two modes byte-identical; production leaves it off.
	FullRecompute bool
	// Scheduling, when non-nil, is called once per shard (in shard order,
	// during New) to create that shard's application-ordering policy;
	// returning nil leaves the shard on connection-order FIFO. Shards must
	// not share a policy instance — each carries per-round scratch state —
	// but may (and for tenant quotas should) share one sealed tenants.Tree,
	// so a queue's per-cluster guarantees follow its clusters through
	// migration. The policy survives crash/restart: Reset re-installs it on
	// the fresh scheduler.
	Scheduling func(shard int) core.SchedulingPolicy
	// Obs, when non-nil, is threaded through every shard (labelled
	// "shard<i>") and additionally records federation-level signals: merge
	// latency, migration pauses, shard outage durations, and crash/restart
	// events.
	Obs *obs.Registry
}

// Federator routes application sessions across a set of rms.Server shards.
type Federator struct {
	shards       []*rms.Server
	clk          clock.Clock
	recovery     RecoveryPolicy
	nodeRecovery rms.NodeRecoveryPolicy
	fedRec       *metrics.Recorder

	// topoMu serializes topology transitions — CrashShard, RestartShard and
	// MigrateCluster — against each other, so a migration can never observe a
	// shard half-crashed (or vice versa). It is taken before f.mu and before
	// any shard lock; nothing nests the other way. Handler callbacks never
	// acquire it: applications re-entering the federator from a notification
	// only use the session surface.
	topoMu sync.Mutex

	mu       sync.Mutex
	owner    map[view.ClusterID]int // cluster → shard index; mutated by migration
	nextApp  int
	nextReq  request.ID
	down     []bool           // per-shard crashed flag
	sessions map[int]*Session // live federated sessions by app ID
	// failedNodes is the authoritative per-cluster record of down machines
	// (sorted ascending). It outlives shard crashes — RestartShard re-applies
	// it to the fresh shard — and follows a cluster through migration via the
	// rms.ClusterSnapshot.
	failedNodes map[view.ClusterID][]int

	// Merge-cache counters (atomics: sessions record them under sess.mu,
	// which is per-session). remergedShards counts shard views whose epoch
	// had advanced at merge time (the dirty views that forced work);
	// cleanShards counts shard views whose epoch had not. A merge with zero
	// dirty views returns the cached result with no work; a merge with any
	// dirty view re-folds every shard view into fresh maps (cheap map union
	// of cached immutable profiles), so the clean count measures update
	// locality, not work avoided within a rebuild.
	remergedShards atomic.Int64
	cleanShards    atomic.Int64

	// Observability (nil when Config.Obs is nil). crashedAt remembers each
	// shard's last crash instant so RestartShard can record the outage
	// duration (sim seconds under SimClock — deterministic — and wall
	// seconds under RealClock).
	obsReg    *obs.Registry
	hMerge    *obs.Histogram
	hMigrate  *obs.Histogram
	hOutage   *obs.Histogram
	hGang     *obs.Histogram
	crashedAt []float64

	// reschedInterval mirrors the per-shard re-scheduling interval: the gang
	// coordinator paces its reservation evaluations on it, so a hold→commit
	// window always spans at least one shard round (and chaos faults can land
	// inside it).
	reschedInterval float64
}

// noteMerge records one merged-view delivery in which `dirty` of `total`
// shard views carried an advanced epoch. When federation metrics are
// enabled the split surfaces as RemergedShardViews/ReusedShardViews under
// the pseudo-app 0.
func (f *Federator) noteMerge(dirty, total int) {
	f.remergedShards.Add(int64(dirty))
	f.cleanShards.Add(int64(total - dirty))
	if f.fedRec != nil {
		f.fedRec.IncCounter(0, metrics.RemergedShardViews, dirty)
		f.fedRec.IncCounter(0, metrics.ReusedShardViews, total-dirty)
	}
}

// MergeStats returns the cumulative merge counters: shard views that were
// dirty (epoch advanced) versus clean at merge time, across every
// session's merged-view deliveries. Deliveries with clean == total were
// served from cache with no work at all.
func (f *Federator) MergeStats() (dirty, clean int64) {
	return f.remergedShards.Load(), f.cleanShards.Load()
}

// Partition splits a cluster set into at most n per-shard cluster sets,
// assigning clusters round-robin in sorted ID order so the split is
// deterministic. It never returns an empty shard: n is clamped to
// [1, len(clusters)].
func Partition(clusters map[view.ClusterID]int, n int) []map[view.ClusterID]int {
	if len(clusters) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(clusters) {
		n = len(clusters)
	}
	ids := make([]view.ClusterID, 0, len(clusters))
	for cid := range clusters {
		ids = append(ids, cid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]map[view.ClusterID]int, n)
	for i := range parts {
		parts[i] = make(map[view.ClusterID]int)
	}
	for i, cid := range ids {
		parts[i%n][cid] = clusters[cid]
	}
	return parts
}

// New creates a Federator and its shards. It panics on an invalid
// configuration, mirroring rms.NewServer.
func New(cfg Config) *Federator {
	if cfg.Clock == nil {
		panic("federation: Config.Clock is required")
	}
	if len(cfg.Clusters) == 0 {
		panic("federation: at least one cluster is required")
	}
	parts := Partition(cfg.Clusters, cfg.Shards)
	f := &Federator{
		shards:       make([]*rms.Server, len(parts)),
		owner:        make(map[view.ClusterID]int, len(cfg.Clusters)),
		clk:          cfg.Clock,
		recovery:     cfg.Recovery,
		nodeRecovery: cfg.NodeRecovery,
		fedRec:       cfg.FederationMetrics,
		down:         make([]bool, len(parts)),
		sessions:     make(map[int]*Session),
		failedNodes:  make(map[view.ClusterID][]int),
		nextApp:      1,
		nextReq:      1,
	}
	f.reschedInterval = cfg.ReschedInterval
	if f.reschedInterval <= 0 {
		f.reschedInterval = 1
	}
	if cfg.Obs != nil {
		f.obsReg = cfg.Obs
		f.hMerge = cfg.Obs.Hist("fed.merge_seconds")
		f.hMigrate = cfg.Obs.Hist("fed.migration_pause_seconds")
		f.hOutage = cfg.Obs.Hist("fed.outage_seconds")
		f.hGang = cfg.Obs.Hist("fed.gang_reserve_seconds")
		f.crashedAt = make([]float64, len(parts))
		cfg.Obs.RegisterCounters("fed.merge", func() map[string]int64 {
			dirty, clean := f.MergeStats()
			return map[string]int64{"remerged_shard_views": dirty, "reused_shard_views": clean}
		})
	}
	for i, part := range parts {
		var rec *metrics.Recorder
		if cfg.Metrics != nil {
			rec = cfg.Metrics(i)
		}
		var sched core.SchedulingPolicy
		if cfg.Scheduling != nil {
			sched = cfg.Scheduling(i)
		}
		f.shards[i] = rms.NewServer(rms.Config{
			Clusters:        part,
			ReschedInterval: cfg.ReschedInterval,
			Clock:           cfg.Clock,
			Policy:          cfg.Policy,
			GracePeriod:     cfg.GracePeriod,
			Clip:            clipFor(cfg.Clip, part),
			Metrics:         rec,
			NodeRecovery:    cfg.NodeRecovery,
			FullRecompute:   cfg.FullRecompute,
			Scheduling:      sched,
			Obs:             cfg.Obs,
			ObsLabel:        fmt.Sprintf("shard%d", i),
		})
		for cid := range part {
			f.owner[cid] = i
		}
	}
	return f
}

// clipFor restricts an administrator clip to one shard's clusters.
func clipFor(clip view.View, part map[view.ClusterID]int) view.View {
	if clip == nil {
		return nil
	}
	out := view.New()
	for cid := range part {
		if f, ok := clip[cid]; ok {
			out[cid] = f
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// NumShards returns the number of scheduler shards (after clamping).
func (f *Federator) NumShards() int { return len(f.shards) }

// Shard exposes one shard for inspection (tests, benchmarks, experiment
// harness). Mutating it directly is not supported.
func (f *Federator) Shard(i int) *rms.Server { return f.shards[i] }

// Owner returns the index of the shard currently owning a cluster. Ownership
// is fixed at construction by Partition and changes only through
// MigrateCluster.
func (f *Federator) Owner(cid view.ClusterID) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.owner[cid]
	return i, ok
}

// Now returns the federation's current time.
func (f *Federator) Now() float64 { return f.clk.Now() }

// TenantLoads aggregates the node IDs held per tenant label per cluster
// across every running shard (see rms.Server.TenantLoads). Down shards
// contribute nothing: a crash loses the scheduler-side allocations the
// shard would report, exactly as the merged views do.
func (f *Federator) TenantLoads() map[string]map[view.ClusterID]int {
	f.mu.Lock()
	down := append([]bool(nil), f.down...)
	f.mu.Unlock()
	out := make(map[string]map[view.ClusterID]int)
	for i, sh := range f.shards {
		if down[i] {
			continue
		}
		for tenant, loads := range sh.TenantLoads() {
			m := out[tenant]
			if m == nil {
				m = make(map[view.ClusterID]int)
				out[tenant] = m
			}
			for cid, n := range loads {
				m[cid] += n
			}
		}
	}
	return out
}

// TenantPreempts sums the per-tenant quota-preemption revocation counts
// across running shards. Each shard's tally is cumulative over its own
// lifetime — a crash resets it with the rest of the scheduler state —
// matching how every other shard-side counter behaves across faults.
func (f *Federator) TenantPreempts() map[string]int64 {
	f.mu.Lock()
	down := append([]bool(nil), f.down...)
	f.mu.Unlock()
	out := make(map[string]int64)
	for i, sh := range f.shards {
		if down[i] {
			continue
		}
		for tenant, n := range sh.TenantPreempts() {
			out[tenant] += n
		}
	}
	return out
}

// Connect registers an application with every running shard under one
// federated application ID and returns the federated session. Connecting to
// all shards eagerly gives the application the same full-cluster-set views a
// single RMS would push, merged by the session's handler fan-in. Crashed
// shards are skipped; the session is re-admitted to them when they restart.
// Connect options (e.g. rms.WithTenant) are applied on every shard and
// replayed on each re-admission, so tenant identity survives shard
// crash/restart and follows the session everywhere it is scheduled.
func (f *Federator) Connect(h rms.AppHandler, opts ...rms.ConnectOption) *Session {
	sess := &Session{
		f:          f,
		h:          h,
		connect:    opts,
		subs:       make([]*rms.Session, len(f.shards)),
		shardDown:  make([]bool, len(f.shards)),
		shardViews: make([][2]view.View, len(f.shards)),
		shardEpoch: make([]uint64, len(f.shards)),
		toLocal:    make(map[request.ID]*fedReq),
		fromLocal:  make([]map[request.ID]request.ID, len(f.shards)),
		queues:     make([][]request.ID, len(f.shards)),
		gangs:      make(map[request.ID]*gangState),
	}
	for i := range sess.fromLocal {
		sess.fromLocal[i] = make(map[request.ID]request.ID)
	}
	// Allocate the ID, register the session, and snapshot the shard states
	// in one critical section: a crash or restart ordered before it is
	// reflected in the down snapshot; one ordered after it sees the session
	// and sweeps it itself (admitShard makes the two admission paths
	// idempotent, so a racing restart cannot double-admit or be missed).
	f.mu.Lock()
	sess.id = f.nextApp
	f.nextApp++
	f.sessions[sess.id] = sess
	down := append([]bool(nil), f.down...)
	copy(sess.shardDown, down)
	f.mu.Unlock()
	// Admit outside the federator lock: ConnectID flushes notifications,
	// which may synchronously re-enter the session (and, through an
	// application handler, the federator).
	for i := range f.shards {
		if down[i] {
			continue
		}
		sess.admitShard(i)
	}
	return sess
}

// removeSession forgets a disconnected or killed session.
func (f *Federator) removeSession(id int) {
	f.mu.Lock()
	delete(f.sessions, id)
	f.mu.Unlock()
}

// sessionsLocked returns the live sessions in ascending app-ID order, the
// iteration order of every crash/restart sweep (determinism).
func (f *Federator) sessionsLocked() []*Session {
	out := make([]*Session, 0, len(f.sessions))
	for _, sess := range f.sessions {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// count records a fault-recovery event when federation metrics are enabled.
func (f *Federator) count(appID int, c metrics.Counter, n int) {
	if f.fedRec != nil && n > 0 {
		f.fedRec.IncCounter(appID, c, n)
	}
}

// ShardDown reports whether shard i is currently crashed.
func (f *Federator) ShardDown(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down[i]
}

// Recovery returns the configured crash-recovery policy.
func (f *Federator) Recovery() RecoveryPolicy { return f.recovery }

// NodeRecovery returns the node-failure recovery policy every shard runs.
func (f *Federator) NodeRecovery() rms.NodeRecoveryPolicy { return f.nodeRecovery }

// CrashReport summarizes what one shard crash did to the federation.
type CrashReport struct {
	Shard  int
	Policy RecoveryPolicy
	// Killed lists the app IDs killed under KillOnCrash, ascending.
	Killed []int
	// Requeued counts live requests moved to replay queues (RequeueOnCrash).
	Requeued int
	// Purged counts finished-request mappings discarded with the shard's
	// state (they could only be referenced by state that no longer exists).
	Purged int
	// GangsAborted counts cross-shard reservations whose held leg died with
	// the shard and was aborted rather than requeued (KillOnCrash). Included
	// in Purged.
	GangsAborted int
}

// String renders the report as one deterministic trace line. The gang field
// is appended only when present, keeping gang-free traces byte-identical to
// earlier versions.
func (r CrashReport) String() string {
	line := fmt.Sprintf("crash shard=%d policy=%s killed=%v requeued=%d purged=%d",
		r.Shard, r.Policy, r.Killed, r.Requeued, r.Purged)
	if r.GangsAborted > 0 {
		line += fmt.Sprintf(" gangs-aborted=%d", r.GangsAborted)
	}
	return line
}

// RestartReport summarizes a shard restart.
type RestartReport struct {
	Shard       int
	Reconnected int // live sessions re-admitted to the shard
	Replayed    int // queued requests successfully re-submitted
	Dropped     int // queued requests dropped at replay
}

// String renders the report as one deterministic trace line.
func (r RestartReport) String() string {
	return fmt.Sprintf("restart shard=%d reconnected=%d replayed=%d dropped=%d",
		r.Shard, r.Reconnected, r.Replayed, r.Dropped)
}

// CrashShard kills shard i: its rms.Server is stopped (scheduler-side state
// gone, metrics closed out at the crash instant) and every live session
// absorbs the loss per the recovery policy — KillOnCrash terminates sessions
// with live requests there (§3.1.4), RequeueOnCrash moves those requests to
// replay queues. Survivors immediately receive views re-merged without the
// dead shard. Crashing an already-down shard is a no-op.
func (f *Federator) CrashShard(i int) CrashReport {
	if i < 0 || i >= len(f.shards) {
		panic(fmt.Sprintf("federation: CrashShard(%d) with %d shards", i, len(f.shards)))
	}
	f.topoMu.Lock()
	defer f.topoMu.Unlock()
	rep := CrashReport{Shard: i, Policy: f.recovery}
	f.mu.Lock()
	if f.down[i] {
		f.mu.Unlock()
		return rep
	}
	f.down[i] = true
	// Stop the shard inside the critical section: a concurrent RestartShard
	// (which Resets under f.mu) must never observe down[i] while the shard
	// is still running. Stop makes no callbacks, and the f.mu → shard-lock
	// order matches RestartShard's Reset; nothing nests the other way.
	f.shards[i].Stop()
	sessions := f.sessionsLocked()
	f.mu.Unlock()

	if f.obsReg != nil {
		// crashedAt is guarded by topoMu, held for the whole crash/restart.
		f.crashedAt[i] = f.clk.Now()
		f.obsReg.Event(obs.Event{Time: f.crashedAt[i], Type: obs.EvCrash, Shard: fmt.Sprintf("shard%d", i)})
	}

	var killed []*Session
	type purgeNotice struct{ ended, reaped []request.ID }
	notices := make(map[*Session]purgeNotice)
	for _, sess := range sessions {
		affected, requeued, purged, gangsAborted, ended, reaped := sess.absorbCrash(i, f.recovery)
		rep.Requeued += requeued
		rep.Purged += purged
		rep.GangsAborted += gangsAborted
		f.count(sess.id, metrics.RequeuedRequests, requeued)
		f.count(0, metrics.GangAborted, gangsAborted)
		f.count(sess.id, metrics.DroppedRequests, gangsAborted)
		if len(reaped) > 0 {
			notices[sess] = purgeNotice{ended, reaped}
		}
		if affected && f.recovery == KillOnCrash {
			killed = append(killed, sess)
			rep.Killed = append(rep.Killed, sess.id)
			f.count(sess.id, metrics.KilledSessions, 1)
		}
	}
	// Deliver outcomes with no federation lock held: finish/reap events for
	// the purged mappings, kills for the affected sessions, re-merged views
	// for the survivors.
	for _, sess := range sessions {
		n := notices[sess]
		sess.notifyCrashPurged(n.ended, n.reaped)
	}
	reason := fmt.Sprintf("federation: shard %d crashed and its scheduler-side state was lost", i)
	for _, sess := range killed {
		sess.killFromCrash(reason)
	}
	for _, sess := range sessions {
		sess.pushMerged()
	}
	return rep
}

// RestartShard brings a crashed shard back: its rms.Server is Reset to
// empty state, the Federator re-admits every live session (the shard's
// clusters reappear in the merged views on its next scheduling round), and —
// under RequeueOnCrash — the per-session replay queues are re-submitted in
// (session-ID, submission) order under their original federated request IDs.
// Restarting a running shard is a no-op.
func (f *Federator) RestartShard(i int) RestartReport {
	if i < 0 || i >= len(f.shards) {
		panic(fmt.Sprintf("federation: RestartShard(%d) with %d shards", i, len(f.shards)))
	}
	f.topoMu.Lock()
	defer f.topoMu.Unlock()
	rep := RestartReport{Shard: i}
	f.mu.Lock()
	if !f.down[i] {
		f.mu.Unlock()
		return rep
	}
	f.shards[i].Reset()
	// Re-apply the recorded node failures before marking the shard up and
	// re-admitting anyone: the machines are still dead, only the scheduler
	// state was lost. The fresh server has no sessions, so this only shrinks
	// pool capacity.
	f.reapplyFailedNodesLocked(i)
	f.down[i] = false
	sessions := f.sessionsLocked()
	f.mu.Unlock()

	if f.obsReg != nil {
		now := f.clk.Now()
		outage := now - f.crashedAt[i]
		f.hOutage.Record(outage)
		f.obsReg.Event(obs.Event{Time: now, Type: obs.EvRestart, Shard: fmt.Sprintf("shard%d", i), Value: outage})
	}

	for _, sess := range sessions {
		if sess.admitShard(i) {
			rep.Reconnected++
		}
	}
	for _, sess := range sessions {
		replayed, dropped := sess.replayQueue(i)
		rep.Replayed += replayed
		rep.Dropped += dropped
		f.count(sess.id, metrics.ReplayedRequests, replayed)
		f.count(sess.id, metrics.DroppedRequests, dropped)
	}
	return rep
}

// CheckInvariants verifies the cross-shard bookkeeping: every running shard
// passes its own accounting check, no shard hosts a session the federation
// no longer knows (orphans), every live session is admitted to every
// running shard, ID-translation tables are exact bijections with no leaked
// entries, replay queues exist only for crashed shards, and cluster
// ownership is an exact bijection — every shard hosts precisely the
// clusters the owner table assigns it (no cluster owned by two shards, none
// stranded by a migration), and every request mapping routes to the shard
// owning its target cluster. It is the federation half of the chaos
// harness's invariant checker, and runs after every fault and migration in
// the chaos×migration matrix.
func (f *Federator) CheckInvariants() error {
	f.topoMu.Lock()
	defer f.topoMu.Unlock()
	f.mu.Lock()
	down := append([]bool(nil), f.down...)
	owner := make(map[view.ClusterID]int, len(f.owner))
	for cid, i := range f.owner {
		owner[cid] = i
	}
	failed := make(map[view.ClusterID][]int, len(f.failedNodes))
	for cid, ids := range f.failedNodes {
		failed[cid] = append([]int(nil), ids...)
	}
	sessions := f.sessionsLocked()
	f.mu.Unlock()

	// Cluster-ownership bijection. Down shards are included: a crash loses
	// scheduler state, not ownership, and migrations never touch down shards.
	hosted := 0
	for i, sh := range f.shards {
		for cid := range sh.Clusters() {
			own, ok := owner[cid]
			if !ok {
				return fmt.Errorf("federation: shard %d hosts unknown cluster %q", i, cid)
			}
			if own != i {
				return fmt.Errorf("federation: cluster %q hosted by shard %d but owned by shard %d", cid, i, own)
			}
			hosted++
		}
	}
	if hosted != len(owner) {
		return fmt.Errorf("federation: %d clusters owned but %d hosted", len(owner), hosted)
	}

	live := make(map[int]bool, len(sessions))
	for _, sess := range sessions {
		live[sess.id] = true
	}
	for i, sh := range f.shards {
		if down[i] {
			if !sh.Stopped() {
				return fmt.Errorf("federation: shard %d marked down but still running", i)
			}
			continue
		}
		if sh.Stopped() {
			return fmt.Errorf("federation: shard %d stopped but not marked down", i)
		}
		if err := sh.CheckInvariants(); err != nil {
			return fmt.Errorf("federation: shard %d: %w", i, err)
		}
		// The shard's per-cluster failed-node sets must match the federation's
		// authoritative record exactly (both sorted ascending).
		for cid := range sh.Clusters() {
			got := sh.FailedNodeIDs(cid)
			want := failed[cid]
			if len(got) != len(want) {
				return fmt.Errorf("federation: shard %d has %d failed nodes on %q, record says %d", i, len(got), cid, len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					return fmt.Errorf("federation: shard %d failed nodes on %q = %v, record says %v", i, cid, got, want)
				}
			}
		}
		ids := sh.SessionIDs()
		admitted := make(map[int]bool, len(ids))
		for _, id := range ids {
			if !live[id] {
				return fmt.Errorf("federation: shard %d hosts orphaned session %d", i, id)
			}
			admitted[id] = true
		}
		for _, sess := range sessions {
			if !admitted[sess.id] {
				return fmt.Errorf("federation: live session %d not admitted to running shard %d", sess.id, i)
			}
		}
	}
	// Tenant identity is federation-wide: every running shard must report
	// the same tenant label for a session (admitShard replays the connect
	// options, so a restart re-admission can neither drop nor change it).
	for _, sess := range sessions {
		label, have := "", false
		labelShard := -1
		for i, sh := range f.shards {
			if down[i] {
				continue
			}
			got, ok := sh.TenantOf(sess.id)
			if !ok {
				continue // missing admissions are reported above
			}
			if !have {
				label, have, labelShard = got, true, i
				continue
			}
			if got != label {
				return fmt.Errorf("federation: session %d tenant %q on shard %d but %q on shard %d",
					sess.id, got, i, label, labelShard)
			}
		}
	}
	for _, sess := range sessions {
		if err := sess.checkInvariants(down, owner); err != nil {
			return err
		}
	}
	return nil
}

// nextRequestID reserves one federated request ID. Mirroring rms, an ID is
// burned even if the shard later rejects the request spec, so a 1-shard
// federation stays in lockstep with a single RMS.
func (f *Federator) nextRequestID() request.ID {
	f.mu.Lock()
	id := f.nextReq
	f.nextReq++
	f.mu.Unlock()
	return id
}
