package coormv2

// Benchmark harness: one benchmark per figure of the paper's evaluation,
// plus the scheduler-throughput claim of §3.2 ("approximately 500
// requests/second on a single core" of a 2009-era CPU). Benchmarks run the
// same code paths as the full experiments at reduced scale so `go test
// -bench=.` stays tractable; `cmd/coorm-exp -full` regenerates the
// full-scale figures (recorded in EXPERIMENTS.md).

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"coormv2/internal/amr"
	"coormv2/internal/apps"
	"coormv2/internal/chaos"
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/experiments"
	"coormv2/internal/federation"
	"coormv2/internal/obs"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/stats"
	"coormv2/internal/tenants"
	"coormv2/internal/transport"
	"coormv2/internal/view"
	"coormv2/internal/workload"
)

const (
	benchSteps = 60
	benchSmax  = 50 * 1024 // MiB
)

// BenchmarkFig1ProfileGeneration regenerates the working-set evolution
// profiles of Fig. 1.
func BenchmarkFig1ProfileGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles := experiments.Fig1(experiments.Fig1Config{Seeds: []int64{1, 2, 3, 4}})
		if len(profiles) != 4 {
			b.Fatal("bad profile count")
		}
	}
}

// BenchmarkFig2SpeedupFit fits the speed-up model of Fig. 2 and checks the
// paper's 15 % error bound.
func BenchmarkFig2SpeedupFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fixed seed: the 15 % acceptance bound is a property of this
		// dataset, not of arbitrary noise draws (a ±3σ outlier in the
		// synthetic grid can legitimately exceed it).
		res, err := experiments.Fig2(1, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxRelError >= 0.15 {
			b.Fatalf("fit error %v out of the paper's bound", res.MaxRelError)
		}
	}
}

// BenchmarkFig3StaticVsDynamic computes the end-time increase of the
// equivalent static allocation (Fig. 3).
func BenchmarkFig3StaticVsDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(1, benchSteps, []float64{0.25, 0.5, 0.75})
		if len(rows) != 3 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFig4StaticChoices computes the static-allocation choice bands
// (Fig. 4).
func BenchmarkFig4StaticChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(1, benchSteps, []float64{0.5, 1, 2}, 0)
		if len(rows) != 3 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFig9Spontaneous runs the spontaneous-update scheduling
// experiment of Fig. 9 (one AMR + one PSA, static and dynamic) at reduced
// scale.
func BenchmarkFig9Spontaneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(experiments.Fig9Config{
			Overcommits: []float64{1},
			Seed:        1, Steps: benchSteps, Smax: benchSmax, PSATaskDur: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].DynamicArea <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

// BenchmarkFig10Announced runs the announced-update experiment of Fig. 10
// at reduced scale.
func BenchmarkFig10Announced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(experiments.Fig10Config{
			AnnounceIntervals: []float64{0, 90},
			Seed:              1, Steps: benchSteps, Smax: benchSmax, PSATaskDur: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFig11Filling runs the two-PSA filling experiment of Fig. 11 at
// reduced scale (one seed, both policies).
func BenchmarkFig11Filling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(experiments.Fig11Config{
			AnnounceIntervals: []float64{60},
			Seeds:             []int64{1},
			Steps:             benchSteps, Smax: benchSmax,
			PSA1TaskDur: 120, PSA2TaskDur: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].FillingPct <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

// benchFleetCluster is the cluster used by the scheduler benchmarks below.
const benchFleetCluster = view.ClusterID("c0")

// buildBenchFleet constructs the canonical scheduler-benchmark fleet: 50
// applications on one 4096-node cluster, each with a started
// pre-allocation, a running non-preemptible request, a pending NEXT update
// and a started preemptible request. The three scheduler benchmarks share
// it so the cached / one-dirty / from-scratch comparison in PERFORMANCE.md
// stays apples-to-apples. It returns the scheduler, the applications, a
// request-ID cursor for submitting more, and the standing request count.
func buildBenchFleet() (*core.Scheduler, []*core.AppState, *request.ID, int) {
	s := core.NewScheduler(map[view.ClusterID]int{benchFleetCluster: 4096})
	reqID := request.ID(1)
	mk := func(app *core.AppState, n int, dur float64, typ request.Type, how request.Relation, parent *request.Request) *request.Request {
		r := request.New(reqID, app.ID, benchFleetCluster, n, dur, typ, how, parent)
		reqID++
		app.SetFor(typ).Add(r)
		return r
	}
	apps := make([]*core.AppState, 50)
	totalReqs := 0
	for i := range apps {
		a := s.AddApp(i+1, float64(i))
		pa := mk(a, 16, 1e6, request.PreAlloc, request.Free, nil)
		pa.StartedAt = 0
		np := mk(a, 8, 1e5, request.NonPreempt, request.Coalloc, pa)
		np.StartedAt = 0
		mk(a, 12, 1e5, request.NonPreempt, request.Next, np)
		p := mk(a, 4, math.Inf(1), request.Preempt, request.Free, nil)
		p.StartedAt = 0
		apps[i] = a
		totalReqs += 4
	}
	return s, apps, &reqID, totalReqs
}

// runSchedulerThroughput drives repeated rounds over the standing fleet.
// Observability runs enabled-but-idle: a live registry records per round
// exactly what rms.Server.runLocked records (round duration, dirty-artifact
// count, one round event) — the allocs/op pin of the cached steady state
// (≤ 8, gated in CI) therefore proves recording stays off the allocation
// path.
func runSchedulerThroughput(b *testing.B, incremental bool) {
	s, _, _, totalReqs := buildBenchFleet()
	s.SetIncremental(incremental)
	reg := obs.NewRegistry()
	hRound := reg.Hist("rms.round_seconds")
	hDirty := reg.Hist("rms.round_dirty_artifacts")
	var prevRecomputed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		out := s.Schedule(float64(i))
		if len(out.NonPreemptViews) != 50 {
			b.Fatal("lost applications")
		}
		st := s.Stats()
		hRound.Record(time.Since(t0).Seconds())
		hDirty.Record(float64(st.ArtifactsRecomputed - prevRecomputed))
		prevRecomputed = st.ArtifactsRecomputed
		reg.Event(obs.Event{Time: float64(i), Type: obs.EvRound, Value: 0})
	}
	b.StopTimer()
	reqPerSec := float64(totalReqs) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(reqPerSec, "requests/s")
}

// BenchmarkSchedulerThroughput measures scheduling rounds over a live
// request mix, reporting requests scheduled per second — the §3.2 claim is
// ≈500 requests/second on one core of a 2009-era Core 2 Duo. With the
// standing fleet unchanged between rounds, this is the fully-cached steady
// state of the incremental scheduler.
func BenchmarkSchedulerThroughput(b *testing.B) { runSchedulerThroughput(b, true) }

// BenchmarkSchedulerThroughputFull is BenchmarkSchedulerThroughput with
// incremental recomputation disabled: every round recomputes the whole
// fleet from scratch. The pair separates "cost of a from-scratch round"
// (this benchmark, the pre-incremental baseline) from "cost of a round
// when nothing changed" (the cached steady state above).
func BenchmarkSchedulerThroughputFull(b *testing.B) { runSchedulerThroughput(b, false) }

// BenchmarkIncrementalReschedule measures the incremental hot path the way
// the RMS drives it: the same standing fleet, but each round one rotating
// application submits a short preemptible request, the next round starts
// it, the one after finishes and reaps it — so every round carries exactly
// one dirty application and the scheduler reuses everything else. This is
// the per-arrival round cost the federated throughput benchmarks pay on
// the shard owning the churn.
func BenchmarkIncrementalReschedule(b *testing.B) {
	s, apps, reqID, _ := buildBenchFleet()
	s.Schedule(0) // warm the caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i + 1)
		a := apps[i%len(apps)]
		r := request.New(*reqID, a.ID, benchFleetCluster, 1, 0.4, request.Preempt, request.Free, nil)
		*reqID++
		a.P.Add(r)
		s.MarkAppDirty(a.ID)
		out := s.Schedule(now)
		if len(out.PreemptViews) != 50 {
			b.Fatal("lost applications")
		}
		r.StartedAt = now
		s.MarkAppDirty(a.ID)
		s.Schedule(now)
		r.Finished = true
		a.P.Remove(r)
		s.MarkAppDirty(a.ID)
		s.Schedule(now + 0.5)
	}
	b.StopTimer()
	// Rounds per second: three rounds per iteration.
	b.ReportMetric(3*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}

// inertApp discards all notifications.
type inertApp struct{}

func (inertApp) OnViews(_, _ view.View)    {}
func (inertApp) OnStart(request.ID, []int) {}
func (inertApp) OnKill(string)             {}

// BenchmarkFederatedThroughput measures client-facing request throughput of
// a federated RMS under localized churn on a steady fleet: 32 clusters ×
// 256 nodes carry 256 long-running applications (4 standing requests each —
// a pre-allocation, a running non-preemptible allocation, a pending NEXT
// update and a preemptible request), and one short preemptible request per
// virtual second arrives on a rotating cluster. Every arrival forces a
// re-scheduling round (§3.2): a single RMS re-schedules the whole fleet for
// each local change, while a federation re-runs only the shard owning the
// touched cluster — the scheduling work the other shards avoid is the
// aggregate-throughput gain of sharding, independent of core count. Shards
// advance deterministically on one shared virtual clock; the reported
// metric is churn requests fully processed (request → start → expiry
// sweep) per wall-clock second.
func BenchmarkFederatedThroughput(b *testing.B) {
	const (
		nClusters = 32
		nodesPer  = 256
		appsPerCl = 8
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := sim.NewEngine()
			clk := clock.SimClock{E: e}
			clusters := make(map[view.ClusterID]int, nClusters)
			cids := make([]view.ClusterID, nClusters)
			for i := range cids {
				cids[i] = view.ClusterID(fmt.Sprintf("c%d", i))
				clusters[cids[i]] = nodesPer
			}
			reg := obs.NewRegistry()
			fed := federation.New(federation.Config{
				Clusters:        clusters,
				Shards:          shards,
				ReschedInterval: 1,
				GracePeriod:     1e18, // standing apps never release; don't kill them
				Clock:           clk,
				Obs:             reg,
			})
			for i := 0; i < nClusters*appsPerCl; i++ {
				cid := cids[i%nClusters]
				sess := fed.Connect(inertApp{})
				// Staggered long durations give every cluster profile a
				// realistic breakpoint population and keep the standing load
				// live for the whole run.
				pa, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 16, Duration: 1e9 + float64(i)*1013, Type: request.PreAlloc})
				if err != nil {
					b.Fatal(err)
				}
				np, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 8, Duration: 1e8 + float64(i)*997, Type: request.NonPreempt,
					RelatedHow: request.Coalloc, RelatedTo: pa})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 12, Duration: 1e8 + float64(i)*991, Type: request.NonPreempt,
					RelatedHow: request.Next, RelatedTo: np}); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 4, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
					b.Fatal(err)
				}
			}
			// One churn session, connected up front; its requests rotate
			// across clusters and are routed shard by shard.
			churn := fed.Connect(inertApp{})
			// Settle the initial rounds.
			e.Run(e.Now() + 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Blocks of 8 arrivals per cluster keep the per-shard event
				// pattern (and so the §3.2 round coalescing) identical across
				// shard counts; only the per-round fleet size differs.
				if _, err := churn.Request(rms.RequestSpec{
					Cluster: cids[(i/8)%nClusters], N: 1, Duration: 0.4, Type: request.Preempt,
				}); err != nil {
					b.Fatal(err)
				}
				// Advance one re-scheduling interval: only shards with
				// triggered rounds or due expiries do any work.
				e.Run(e.Now() + 1)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "requests/s")
			reportWaitQuantiles(b, reg, shards)
		})
	}
}

// reportWaitQuantiles merges the per-shard admit→start wait histograms and
// reports the p50/p99 simulated-seconds waits alongside ns/op — the
// tail-latency companion of the throughput number, gated in CI by
// scripts/bench_gate.py. Waits are measured on the simulated clock, so the
// quantiles are deterministic per seed and benchmark shape.
func reportWaitQuantiles(b *testing.B, reg *obs.Registry, shards int) {
	wait := &obs.Histogram{}
	for i := 0; i < shards; i++ {
		wait.Merge(reg.Hist(fmt.Sprintf("shard%d.rms.wait_seconds", i)))
	}
	if wait.Stat().Count == 0 {
		return
	}
	b.ReportMetric(wait.Quantile(0.5), "p50-wait-s")
	b.ReportMetric(wait.Quantile(0.99), "p99-wait-s")
}

// BenchmarkMultiTenantThroughput runs the steady-fleet churn loop of
// BenchmarkFederatedThroughput (32 clusters × 256 nodes, 4 shards, 256
// standing applications, one churn arrival per virtual second) with the
// DRF queue hierarchy active on every shard: three tenant queues — t0
// guaranteed half of every cluster, t1/t2 best-effort — and the standing
// applications tagged round-robin. DRF is not order-stable, so every
// triggered round pays the policy cost (share tally + ordering + victim
// scan) on top of scheduling; the gap to BenchmarkFederatedThroughput's
// shards=4 case is the price of fairness, gated in CI by bench-diff like
// the other throughput benchmarks.
func BenchmarkMultiTenantThroughput(b *testing.B) {
	const (
		nClusters = 32
		nodesPer  = 256
		appsPerCl = 8
		shards    = 4
	)
	e := sim.NewEngine()
	clk := clock.SimClock{E: e}
	clusters := make(map[view.ClusterID]int, nClusters)
	cids := make([]view.ClusterID, nClusters)
	for i := range cids {
		cids[i] = view.ClusterID(fmt.Sprintf("c%d", i))
		clusters[cids[i]] = nodesPer
	}
	tree := tenants.NewTree()
	guarantee := tenants.Resources{}
	for cid := range clusters {
		guarantee[cid] = nodesPer / 2
	}
	tree.MustAdd("t0", guarantee, nil)
	tree.MustAdd("t1", nil, nil)
	tree.MustAdd("t2", nil, nil)
	reg := obs.NewRegistry()
	fed := federation.New(federation.Config{
		Clusters:        clusters,
		Shards:          shards,
		ReschedInterval: 1,
		GracePeriod:     1e18, // standing apps never release; don't kill them
		Clock:           clk,
		Obs:             reg,
		Scheduling: func(int) core.SchedulingPolicy {
			return tenants.NewDRF(tree)
		},
	})
	for i := 0; i < nClusters*appsPerCl; i++ {
		cid := cids[i%nClusters]
		sess := fed.Connect(inertApp{}, rms.WithTenant(fmt.Sprintf("t%d", i%3)))
		pa, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 16, Duration: 1e9 + float64(i)*1013, Type: request.PreAlloc})
		if err != nil {
			b.Fatal(err)
		}
		np, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 8, Duration: 1e8 + float64(i)*997, Type: request.NonPreempt,
			RelatedHow: request.Coalloc, RelatedTo: pa})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 12, Duration: 1e8 + float64(i)*991, Type: request.NonPreempt,
			RelatedHow: request.Next, RelatedTo: np}); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 4, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
			b.Fatal(err)
		}
	}
	churn := fed.Connect(inertApp{}, rms.WithTenant("t1"))
	e.Run(e.Now() + 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := churn.Request(rms.RequestSpec{
			Cluster: cids[(i/8)%nClusters], N: 1, Duration: 0.4, Type: request.Preempt,
		}); err != nil {
			b.Fatal(err)
		}
		e.Run(e.Now() + 1)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "requests/s")
	reportWaitQuantiles(b, reg, shards)
}

// BenchmarkFederatedThroughputSkewed measures the rebalancer's win under
// load skew: 32 clusters × 256 nodes over 4 shards, but every standing
// application and all churn live on the 8 clusters initially owned by shard
// 0 — so without rebalancing every churn arrival re-schedules the whole
// standing fleet, while the other three shards idle. With rebalancing on, a
// Rebalancer (4-second checks, default skew ratio) migrates hot clusters —
// standing requests, node-ID pools and views included — until the hot set
// is spread across shards and each arrival re-schedules only a quarter of
// the fleet. The identical warm-up phase (128 arrivals, enough checks for
// the migrations to settle) runs in both variants so the measured loop
// compares steady states.
func BenchmarkFederatedThroughputSkewed(b *testing.B) {
	const (
		nClusters = 32
		nodesPer  = 256
		shards    = 4
		appsPerCl = 8 // per hot cluster
	)
	for _, rebalance := range []bool{false, true} {
		name := "rebalance=off"
		if rebalance {
			name = "rebalance=on"
		}
		b.Run(name, func(b *testing.B) {
			e := sim.NewEngine()
			clk := clock.SimClock{E: e}
			clusters := make(map[view.ClusterID]int, nClusters)
			cids := make([]view.ClusterID, nClusters)
			for i := range cids {
				// Two-digit names sort in index order, so Partition gives
				// cluster i to shard i%shards: the hot set is i%shards == 0.
				cids[i] = view.ClusterID(fmt.Sprintf("c%02d", i))
				clusters[cids[i]] = nodesPer
			}
			hot := make([]view.ClusterID, 0, nClusters/shards)
			for i := 0; i < nClusters; i += shards {
				hot = append(hot, cids[i])
			}
			reg := obs.NewRegistry()
			fed := federation.New(federation.Config{
				Clusters:        clusters,
				Shards:          shards,
				ReschedInterval: 1,
				GracePeriod:     1e18, // standing apps never release; don't kill them
				Clock:           clk,
				Obs:             reg,
			})
			for i := 0; i < len(hot)*appsPerCl; i++ {
				cid := hot[i%len(hot)]
				sess := fed.Connect(inertApp{})
				pa, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 16, Duration: 1e9 + float64(i)*1013, Type: request.PreAlloc})
				if err != nil {
					b.Fatal(err)
				}
				np, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 8, Duration: 1e8 + float64(i)*997, Type: request.NonPreempt,
					RelatedHow: request.Coalloc, RelatedTo: pa})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 12, Duration: 1e8 + float64(i)*991, Type: request.NonPreempt,
					RelatedHow: request.Next, RelatedTo: np}); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 4, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
					b.Fatal(err)
				}
			}
			var rb *federation.Rebalancer
			if rebalance {
				rb = federation.NewRebalancer(fed, federation.RebalancerConfig{Interval: 4})
				rb.Start()
				defer rb.Stop()
			}
			churn := fed.Connect(inertApp{})
			arrive := func(i int) {
				if _, err := churn.Request(rms.RequestSpec{
					Cluster: hot[(i/8)%len(hot)], N: 1, Duration: 0.4, Type: request.Preempt,
				}); err != nil {
					b.Fatal(err)
				}
				e.Run(e.Now() + 1)
			}
			// Warm-up: settle initial rounds, then enough churn for the
			// rebalancer (when on) to spread the hot set.
			e.Run(e.Now() + 5)
			for i := 0; i < 128; i++ {
				arrive(i)
			}
			if rebalance && rb.Migrations() == 0 {
				b.Fatal("warm-up produced no migrations; the skewed scenario is mis-tuned")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arrive(i)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "requests/s")
			reportWaitQuantiles(b, reg, shards)
		})
	}
}

// BenchmarkCrossShardGang measures the two-phase reservation cycle: each
// iteration submits a parent leg on one shard and a NEXT/COALLOC child leg
// on the other, then steps simulated time until the gang commits and both
// legs run out. Reported alongside ns/op: end-to-end gang throughput, the
// hold→commit reservation latency quantiles (simulated seconds, from the
// coordinator's fed.gang_reserve_seconds histogram), and the commit ratio
// (1.0 — an uncontended federation must never abort).
func BenchmarkCrossShardGang(b *testing.B) {
	const shards = 2
	e := sim.NewEngine()
	clk := clock.SimClock{E: e}
	reg := obs.NewRegistry()
	fed := federation.New(federation.Config{
		Clusters:        map[view.ClusterID]int{"c00": 128, "c01": 128},
		Shards:          shards,
		ReschedInterval: 1,
		GracePeriod:     1e18,
		Clock:           clk,
		Obs:             reg,
	})
	sess := fed.Connect(inertApp{})
	e.Run(5) // settle initial rounds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		how := request.Next
		if i%2 == 1 {
			how = request.Coalloc
		}
		parent, err := sess.Request(rms.RequestSpec{
			Cluster: "c00", N: 2, Duration: 2, Type: request.NonPreempt,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Request(rms.RequestSpec{
			Cluster: "c01", N: 2, Duration: 2, Type: request.NonPreempt,
			RelatedHow: how, RelatedTo: parent,
		}); err != nil {
			b.Fatal(err)
		}
		// Parent (2 s) + aligned child (2 s) + coordinator timers all fit
		// well inside one 8 s step.
		e.Run(e.Now() + 8)
	}
	b.StopTimer()
	gang := reg.Hist("fed.gang_reserve_seconds")
	committed := gang.Stat().Count
	if committed != uint64(b.N) {
		b.Fatalf("committed %d of %d gangs — uncontended runs must commit every reservation", committed, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "gangs/s")
	b.ReportMetric(gang.Quantile(0.5), "p50-reserve-s")
	b.ReportMetric(gang.Quantile(0.99), "p99-reserve-s")
}

// BenchmarkFederatedThroughputParallel measures real-clock, truly parallel
// request throughput: shards run behind their own locks, and concurrent
// sessions hammer request()/done() cycles on per-goroutine clusters. With
// one shard every operation serializes on a single server lock; with N
// shards operations on different clusters proceed independently — the
// speed-up is the per-shard lock-independence win, which the deterministic
// simulated benchmark above cannot observe. Skipped under -short and on
// single-core runners (there is no parallelism to measure).
func BenchmarkFederatedThroughputParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("real-clock parallel benchmark; skipped under -short")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		b.Skip("needs >1 core to exercise per-shard lock independence")
	}
	const (
		nClusters = 8
		nodesPer  = 64
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			clusters := make(map[view.ClusterID]int, nClusters)
			cids := make([]view.ClusterID, nClusters)
			for i := range cids {
				cids[i] = view.ClusterID(fmt.Sprintf("c%d", i))
				clusters[cids[i]] = nodesPer
			}
			fed := federation.New(federation.Config{
				Clusters:        clusters,
				Shards:          shards,
				ReschedInterval: 0.001,
				GracePeriod:     1e18,
				Clock:           clock.NewRealClock(),
			})
			var next int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// One session per worker goroutine, pinned to one cluster so
				// its operations stay on one shard.
				cid := cids[int(atomic.AddInt64(&next, 1))%nClusters]
				sess := fed.Connect(inertApp{})
				for pb.Next() {
					id, err := sess.Request(rms.RequestSpec{
						Cluster: cid, N: 1, Duration: math.Inf(1), Type: request.Preempt,
					})
					if err != nil {
						b.Error(err)
						return
					}
					if err := sess.Done(id, nil); err != nil {
						b.Error(err)
						return
					}
				}
				sess.Disconnect()
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "requests/s")
		})
	}
}

// BenchmarkMigrationBackpressure measures the tail latency of racing
// request()/done() calls during sustained live-migration churn under
// clock.RealClock (the ROADMAP "migration under RealClock back-pressure"
// item): a background goroutine ping-pongs one cluster between two shards
// as fast as MigrateCluster allows while the measured session issues
// request/done pairs against that exact cluster. Every operation that
// lands mid-migration walks the bounded retry path
// (federation.migrateRetryBudget); p99 and max per-op latency are reported
// so a retry pile-up is visible as a tail, not hidden in the mean. Skipped
// under -short and on single-core runners (no concurrent migrator there).
func BenchmarkMigrationBackpressure(b *testing.B) {
	if testing.Short() {
		b.Skip("real-clock migration benchmark; skipped under -short")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		b.Skip("needs >1 core for a concurrent migrator")
	}
	clusters := map[view.ClusterID]int{
		"c00": 16, "c01": 16, "c02": 16, "c03": 16,
	}
	fed := federation.New(federation.Config{
		Clusters:        clusters,
		Shards:          2,
		ReschedInterval: 0.001,
		GracePeriod:     1e18,
		Clock:           clock.NewRealClock(),
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	var migrations int64
	go func() {
		defer close(done)
		target := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := fed.MigrateCluster("c00", target); err == nil {
				atomic.AddInt64(&migrations, 1)
				target = 1 - target
			}
		}
	}()
	sess := fed.Connect(inertApp{})
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		id, err := sess.Request(rms.RequestSpec{
			Cluster: "c00", N: 1, Duration: math.Inf(1), Type: request.Preempt,
		})
		if err != nil {
			b.Fatalf("request during migration churn: %v", err)
		}
		if err := sess.Done(id, nil); err != nil {
			b.Fatalf("done during migration churn: %v", err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	close(stop)
	<-done
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	p99 := len(lat) * 99 / 100
	if p99 >= len(lat) {
		p99 = len(lat) - 1
	}
	b.ReportMetric(us(lat[p99]), "p99-us/op")
	b.ReportMetric(us(lat[len(lat)-1]), "max-us/op")
	b.ReportMetric(float64(atomic.LoadInt64(&migrations)), "migrations")
}

// BenchmarkChaosReplay runs the chaos scenario per iteration: a 60-job
// rigid trace over 3 shards with per-shard scavenging PSAs, under a seeded
// crash/restart plan with the requeue recovery policy. The no-faults
// variant runs the identical harness with an empty fault plan, isolating
// the chaos machinery's overhead (event-stream fingerprinting plus
// per-fault invariant checking) from the cost of the faults themselves.
func BenchmarkChaosReplay(b *testing.B) {
	jobs := workload.Synthetic(stats.NewRand(1), workload.SyntheticConfig{
		Jobs: 60, MaxNodes: 8, MeanInterArr: 45, MeanRuntime: 600,
		PowerOfTwoBias: 0.5,
	})
	for _, withFaults := range []bool{false, true} {
		name := "no-faults"
		if withFaults {
			name = "faults"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.ChaosReplayConfig{
					Jobs:          jobs,
					Shards:        3,
					NodesPerShard: 16,
					PSATaskDur:    120,
					Recovery:      federation.RequeueOnCrash,
				}
				if withFaults {
					cfg.Chaos = chaos.Config{
						Seed: 1, MTTF: 700, MeanRestartDelay: 90, Horizon: 2500,
					}
				}
				res, err := experiments.RunChaosReplay(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != len(jobs) {
					b.Fatalf("completed %d of %d jobs", res.Completed, len(jobs))
				}
			}
		})
	}
}

// BenchmarkEquivalentStatic measures the n_eq solver on a full-length
// profile (used by Figs. 3, 4 and 9–11 setup).
func BenchmarkEquivalentStatic(b *testing.B) {
	p := amr.DefaultParams
	pr := amr.GenerateProfile(stats.NewRand(1), amr.ProfileSteps, amr.DefaultSmax)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := p.EquivalentStatic(pr, 0.75)
		if n < 1 {
			b.Fatal("bad n_eq")
		}
	}
}

// BenchmarkFullScaleDynamicScenario runs one complete paper-scale
// simulation (1000 steps, 3.16 TiB, one PSA) per iteration.
func BenchmarkFullScaleDynamicScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScenario(experiments.ScenarioConfig{
			Seed: 1, Overcommit: 1, Mode: apps.NEADynamic,
			PSATaskDurations: []float64{600},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.AMRArea <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

// BenchmarkTransportThroughput measures synchronous request+done round
// trips over a real TCP connection, with the resilience machinery off
// (plain Dial: the pre-resilience wire) and on (heartbeats, idempotency
// tokens, reconnect bookkeeping). The two must stay within the bench-diff
// gate of each other: steady-state resilience overhead is bounded.
func BenchmarkTransportThroughput(b *testing.B) {
	if testing.Short() {
		b.Skip("real-clock TCP benchmark; skipped under -short")
	}
	run := func(b *testing.B, opts transport.Options) {
		r := rms.NewServer(rms.Config{
			Clusters:        map[view.ClusterID]int{"bench": 4096},
			ReschedInterval: 3600, // keep rounds out of the hot path
			Clock:           clock.NewRealClock(),
		})
		srv := transport.NewServer(r)
		srv.Logf = func(string, ...any) {}
		srv.Grace = 5 * time.Second
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve()
		defer srv.Close()

		app := &benchTransportApp{}
		c, err := transport.DialOptions(addr, app, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id, err := c.Request(rms.RequestSpec{
				Cluster: "bench", N: 1, Duration: 3600, Type: request.NonPreempt,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Done(id, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
	}
	b.Run("hb=off", func(b *testing.B) {
		run(b, transport.Options{})
	})
	b.Run("hb=on", func(b *testing.B) {
		run(b, transport.Options{
			Reconnect:         true,
			HeartbeatInterval: 50 * time.Millisecond,
			CallTimeout:       30 * time.Second,
			Seed:              1,
		})
	})
}

// benchTransportApp discards notifications as fast as they arrive.
type benchTransportApp struct{}

func (benchTransportApp) OnViews(np, p view.View)            {}
func (benchTransportApp) OnStart(id request.ID, nodes []int) {}
func (benchTransportApp) OnKill(reason string)               {}
