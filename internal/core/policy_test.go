package core

import (
	"math"
	"testing"
	"time"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

// dynamicFIFO is FIFO order and admit-all behind a Stable() == false
// policy: it forces every round through the dynamic machinery (policy
// ordering buffer, per-app admission calls, full recomputation) while
// demanding the exact same schedule as the cached fast path. The
// differential below pins the two paths byte-identical.
type dynamicFIFO struct{}

func (dynamicFIFO) Name() string { return "dynamic-fifo" }

func (dynamicFIFO) Stable() bool { return false }

func (dynamicFIFO) Order(_ RoundInfo, apps []*AppState, buf []*AppState) []*AppState {
	return append(buf, apps...)
}

func (dynamicFIFO) Admit(RoundInfo, *AppState) bool { return true }

// TestPolicyPathMatchesFIFO is the FIFOPolicy differential required by the
// policy redesign: the policy-dispatched dynamic path (ordering buffer,
// admission calls, forced full rounds) must produce byte-identical views,
// start lists, and request attributes to the default stable FIFO path
// across the full randomized churn generator.
func TestPolicyPathMatchesFIFO(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		clusters := map[view.ClusterID]int{"ca": 16, "cb": 8, "cc": 12}
		fifo := newDiffMirror(clusters, true)
		dyn := newDiffMirror(clusters, true)
		dyn.s.SetSchedulingPolicy(dynamicFIFO{})
		runDiffChurn(t, seed, fifo, dyn)
	}
}

// reverseAdmitOne reverses the round order and admits everything except
// one chosen application — a deliberately disruptive policy used to check
// that disabling it restores the default exactly.
type reverseAdmitOne struct{ blocked int }

func (p reverseAdmitOne) Name() string { return "reverse" }
func (p reverseAdmitOne) Stable() bool { return false }
func (p reverseAdmitOne) Order(_ RoundInfo, apps []*AppState, buf []*AppState) []*AppState {
	for i := len(apps) - 1; i >= 0; i-- {
		buf = append(buf, apps[i])
	}
	return buf
}
func (p reverseAdmitOne) Admit(_ RoundInfo, a *AppState) bool { return a.ID != p.blocked }

// TestAdmissionGating checks the non-admitted contract: pending requests
// stay unscheduled (ScheduledAt = +Inf) and never start, started work
// keeps counting, and re-admission schedules the backlog again.
func TestAdmissionGating(t *testing.T) {
	s := NewScheduler(map[view.ClusterID]int{c0: 8})
	a := s.AddApp(1, 0)
	b := s.AddApp(2, 1)
	ra := request.New(1, 1, c0, 4, 100, request.NonPreempt, request.Free, nil)
	a.NP.Add(ra)
	rb := request.New(2, 2, c0, 4, 100, request.NonPreempt, request.Free, nil)
	b.NP.Add(rb)

	s.SetSchedulingPolicy(reverseAdmitOne{blocked: 2})
	out := s.Schedule(0)
	if !math.IsInf(rb.ScheduledAt, 1) || rb.NAlloc != 0 {
		t.Fatalf("blocked app's request scheduled at %v alloc %d, want unscheduled", rb.ScheduledAt, rb.NAlloc)
	}
	if len(out.ToStart) != 1 || out.ToStart[0] != ra {
		t.Fatalf("ToStart = %v, want only the admitted app's request", out.ToStart)
	}
	if b.Admitted() || !a.Admitted() {
		t.Fatalf("admission flags: a=%v b=%v", a.Admitted(), b.Admitted())
	}
	// The blocked app still sees the free space: it is first in the
	// reversed order, so the admitted app has not consumed anything yet
	// at its point in the round.
	if v := out.NonPreemptViews[2]; v.Get(c0).MinOn(0, 100) != 8 {
		t.Fatalf("blocked app's view = %v, want the full 8 free nodes", v)
	}

	ra.StartedAt = 0
	s.MarkAppDirty(1)

	// Re-admitting schedules the backlog behind the started work.
	s.SetSchedulingPolicy(nil) // back to FIFO
	out = s.Schedule(1)
	if !a.Admitted() && b.Admitted() {
		t.Fatal("stable policy must not rewrite admission flags")
	}
	if math.IsInf(rb.ScheduledAt, 1) || rb.NAlloc != 4 {
		t.Fatalf("re-admitted request scheduled at %v alloc %d, want scheduled", rb.ScheduledAt, rb.NAlloc)
	}
}

// TestRemoveAppAllocs pins the satellite fix: removing an application is
// O(1) swap-delete with zero heap allocations.
func TestRemoveAppAllocs(t *testing.T) {
	s := NewScheduler(map[view.ClusterID]int{c0: 8})
	const n = 1000
	for i := 0; i < n; i++ {
		s.AddApp(i, float64(i))
	}
	i := 0
	allocs := testing.AllocsPerRun(n-1, func() {
		s.RemoveApp(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("RemoveApp allocates %.1f times per call, want 0", allocs)
	}
}

// TestRemoveAppOrder checks that swap-delete plus lazy re-sort preserves
// the connection-order contract of Apps and the scheduling round.
func TestRemoveAppOrder(t *testing.T) {
	s := NewScheduler(map[view.ClusterID]int{c0: 8})
	for i := 1; i <= 5; i++ {
		s.AddApp(i, float64(i))
	}
	s.RemoveApp(2) // middle removal swaps the tail into the hole
	s.RemoveApp(5) // tail removal
	want := []int{1, 3, 4}
	got := s.Apps()
	if len(got) != len(want) {
		t.Fatalf("Apps len = %d, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.ID != want[i] {
			t.Fatalf("Apps[%d] = %d, want %d", i, a.ID, want[i])
		}
		if a.idx != i {
			t.Fatalf("Apps[%d].idx = %d, want %d", i, a.idx, i)
		}
	}
	if s.RemoveApp(2) != nil {
		t.Fatal("double remove must return nil")
	}
	// Interleaved add/remove keeps order: a re-added app with an earlier
	// connection time sorts back to the front.
	s.AddApp(9, 0.5)
	if apps := s.Apps(); apps[0].ID != 9 {
		t.Fatalf("Apps[0] = %d, want 9", apps[0].ID)
	}
}

// TestRemoveAppTeardownLinear is the complexity regression: tearing down a
// large fleet must not be quadratic. 200k removals of the old linear-scan
// implementation would perform ~2·10¹⁰ pointer comparisons — minutes of
// work — while swap-delete finishes in well under a second.
func TestRemoveAppTeardownLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewScheduler(map[view.ClusterID]int{c0: 8})
	const n = 200_000
	for i := 0; i < n; i++ {
		s.AddApp(i, float64(i))
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			s.RemoveApp(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("teardown of 200k apps took >20s — removal is superlinear again")
	}
	if len(s.Apps()) != 0 {
		t.Fatal("apps left after teardown")
	}
}
