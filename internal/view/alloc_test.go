package view

import (
	"math/rand"
	"testing"

	"coormv2/internal/stepfunc"
)

func randViewProfile(r *rand.Rand) *stepfunc.StepFunc {
	k := r.Intn(5)
	steps := make([]stepfunc.Step, 0, k)
	for i := 0; i < k; i++ {
		steps = append(steps, stepfunc.Step{Duration: float64(1 + r.Intn(100)), N: r.Intn(9) - 2})
	}
	return stepfunc.FromSteps(steps...)
}

func randView(r *rand.Rand, cids []ClusterID) View {
	v := New()
	for _, cid := range cids {
		if r.Intn(3) == 0 {
			continue
		}
		if f := randViewProfile(r); !f.IsZero() {
			v[cid] = f
		}
	}
	return v
}

// TestDifferentialMutOps checks the mutable-accumulator mode against the
// immutable operations on randomized views.
func TestDifferentialMutOps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cids := []ClusterID{"a", "b", "c"}
	for iter := 0; iter < 2000; iter++ {
		v, o := randView(r, cids), randView(r, cids)

		acc := v.Clone()
		acc.MutAdd(o)
		if want := v.Add(o); !acc.Equal(want) {
			t.Fatalf("iter %d: MutAdd: got %v want %v", iter, acc, want)
		}

		acc = v.Clone()
		acc.MutSub(o)
		if want := v.Sub(o); !acc.Equal(want) {
			t.Fatalf("iter %d: MutSub: got %v want %v", iter, acc, want)
		}

		lo := r.Intn(5) - 2
		acc = v.Clone()
		acc.MutClampMin(lo)
		if want := v.ClampMin(lo); !acc.Equal(want) {
			t.Fatalf("iter %d: MutClampMin(%d): got %v want %v", iter, lo, acc, want)
		}

		cid := cids[r.Intn(len(cids))]
		t0 := float64(r.Intn(200))
		dur := float64(1 + r.Intn(200))
		n := r.Intn(9) - 4
		acc = v.Clone()
		acc.MutAddRect(cid, t0, dur, n)
		if want := v.AddRect(cid, t0, dur, n); !acc.Equal(want) {
			t.Fatalf("iter %d: MutAddRect: got %v want %v", iter, acc, want)
		}

		// Sum against a fold of Adds.
		vs := []View{v, o, randView(r, cids)}
		want := New()
		for _, w := range vs {
			want = want.Add(w)
		}
		if got := Sum(vs...); !got.Equal(want) {
			t.Fatalf("iter %d: Sum: got %v want %v", iter, got, want)
		}
	}
}

// TestMutOpsDoNotMutateProfiles verifies the package contract: Mut*
// operations replace map entries but never modify a profile in place, so
// profiles may be shared freely between views.
func TestMutOpsDoNotMutateProfiles(t *testing.T) {
	f := stepfunc.FromSteps(stepfunc.Step{Duration: 100, N: 4})
	snapshot := f.Clone()
	v := View{"a": f}
	o := View{"a": stepfunc.Constant(2)}
	v.MutAdd(o)
	v.MutSub(o)
	v.MutAddRect("a", 10, 20, 3)
	v.MutClampMin(1)
	if !f.Equal(snapshot) {
		t.Fatalf("profile mutated in place: %v != %v", f, snapshot)
	}
}

// TestAllocsViewOps is the allocation regression guard for the view layer.
func TestAllocsViewOps(t *testing.T) {
	f := stepfunc.FromSteps(stepfunc.Step{Duration: 3600, N: 4}, stepfunc.Step{Duration: 3600, N: 3})
	g := stepfunc.FromSteps(stepfunc.Step{Duration: 1200, N: 2}, stepfunc.Step{Duration: 4000, N: 5})
	v := View{"a": f}
	o := View{"a": g}

	// Immutable AddRect clones the map: one map + profile result.
	got := testing.AllocsPerRun(200, func() {
		if v.AddRect("a", 600, 5000, 3) == nil {
			t.Fatal("nil view")
		}
	})
	if got > 5 {
		t.Errorf("View.AddRect: %v allocs/op, want <= 5", got)
	}

	// The mutable accumulator pays only for the fresh profile.
	acc := v.Clone()
	got = testing.AllocsPerRun(200, func() {
		acc.MutAddRect("a", 600, 5000, 3)
	})
	if got > 2 {
		t.Errorf("View.MutAddRect: %v allocs/op, want <= 2", got)
	}

	acc2 := v.Clone()
	got = testing.AllocsPerRun(200, func() {
		acc2.MutSub(o)
	})
	if got > 2 {
		t.Errorf("View.MutSub: %v allocs/op, want <= 2", got)
	}

	// Identity fast paths return the receiver untouched.
	got = testing.AllocsPerRun(200, func() {
		if w := v.ClampMin(0); len(w) != 1 {
			t.Fatal("unexpected clamp result")
		}
	})
	if got != 0 {
		t.Errorf("View.ClampMin no-op: %v allocs/op, want 0", got)
	}
	got = testing.AllocsPerRun(200, func() {
		if w := v.TrimBefore(0); len(w) != 1 {
			t.Fatal("unexpected trim result")
		}
	})
	if got != 0 {
		t.Errorf("View.TrimBefore no-op: %v allocs/op, want 0", got)
	}
}
