// Package stats provides small, dependency-free statistical helpers used
// throughout the CooRMv2 reproduction: deterministic random sources,
// descriptive statistics, and a dense linear least-squares solver used to
// fit the AMR speed-up model (paper §2.2, Fig. 2).
//
// All randomness in the repository flows through *rand.Rand instances
// created by NewRand so that every experiment is reproducible from a seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic pseudo-random source for the given seed.
// Experiments derive per-run seeds from a base seed plus run index so that
// parameter sweeps are independent yet reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Mean returns the arithmetic mean of xs. It returns NaN for empty input,
// mirroring the behaviour of the other aggregates in this package.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs without modifying the input slice.
// It returns NaN for empty input.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Variance returns the population variance of xs (NaN for empty input).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// SolveLeastSquares solves the linear least-squares problem min ||X·beta − y||²
// where X is given row-major (len(rows) observations, each with the same
// number of features) via the normal equations XᵀX·beta = Xᵀy. The problem
// sizes in this repository are tiny (4 parameters), so the O(k³) Gaussian
// elimination is more than adequate.
//
// It returns an error if the dimensions are inconsistent or the normal
// matrix is singular to working precision.
func SolveLeastSquares(rows [][]float64, y []float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("stats: no observations")
	}
	if len(rows) != len(y) {
		return nil, fmt.Errorf("stats: %d rows but %d targets", len(rows), len(y))
	}
	k := len(rows[0])
	if k == 0 {
		return nil, fmt.Errorf("stats: zero features")
	}
	// Build normal equations.
	xtx := make([][]float64, k)
	for i := range xtx {
		xtx[i] = make([]float64, k)
	}
	xty := make([]float64, k)
	for r, row := range rows {
		if len(row) != k {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", r, len(row), k)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	return SolveLinear(xtx, xty)
}

// SolveLinear solves the dense linear system A·x = b using Gaussian
// elimination with partial pivoting. A and b are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: bad system dimensions")
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: matrix is not square")
		}
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular matrix at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n logarithmically spaced values from lo to hi inclusive.
// lo and hi must be positive and n at least 2.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("stats: Logspace needs positive bounds")
	}
	ls := Linspace(math.Log(lo), math.Log(hi), n)
	for i, v := range ls {
		ls[i] = math.Exp(v)
	}
	ls[0], ls[n-1] = lo, hi
	return ls
}
