package federation

import (
	"math"
	"sync"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

// nodeTestApp records node-failure events on top of testApp.
type nodeTestApp struct {
	testApp
	fmu      sync.Mutex
	failures []rms.NodeFailure
}

func (a *nodeTestApp) OnNodeFailure(ev rms.NodeFailure) {
	a.fmu.Lock()
	a.failures = append(a.failures, ev)
	a.fmu.Unlock()
}

func newNodeFaultFederation(t *testing.T, pol rms.NodeRecoveryPolicy) (*sim.Engine, *Federator) {
	t.Helper()
	e := sim.NewEngine()
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 8},
		Shards:          2,
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Recovery:        RequeueOnCrash,
		NodeRecovery:    pol,
		Metrics: func(int) *metrics.Recorder {
			return metrics.NewRecorder()
		},
	})
	if f.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", f.NumShards())
	}
	return e, f
}

func TestFailNodesRoutesToOwningShardAndTranslatesIDs(t *testing.T) {
	e, f := newNodeFaultFederation(t, rms.CooperativeOnNodeFailure)
	app := &nodeTestApp{}
	sess := f.Connect(app)
	fid, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 4, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if len(app.starts) != 1 {
		t.Fatal("request did not start")
	}
	victim := app.starts[0].ids[0]

	rep, err := f.FailNodes(cA, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Applied || rep.Reduced != 1 || rep.Capacity != 7 {
		t.Fatalf("report = %+v, want applied, 1 reduced, capacity 7", rep)
	}
	if own, _ := f.Owner(cA); rep.Shard != own {
		t.Errorf("report shard = %d, want owner %d", rep.Shard, own)
	}
	app.fmu.Lock()
	failures := append([]rms.NodeFailure(nil), app.failures...)
	app.fmu.Unlock()
	if len(failures) != 1 {
		t.Fatalf("failures = %+v, want 1", failures)
	}
	// The event carries the *federated* request ID, not the shard-local one.
	if failures[0].Request != fid {
		t.Errorf("event request = %d, want federated ID %d", failures[0].Request, fid)
	}
	if failures[0].Action != rms.NodeFaultReduced {
		t.Errorf("action = %v, want reduced (the app cooperates)", failures[0].Action)
	}
	mustCheck(t, f)

	rrep, err := f.RecoverNodes(cA, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Applied || rrep.Capacity != 8 {
		t.Fatalf("recover report = %+v, want applied, capacity 8", rrep)
	}
	e.Run(e.Now() + 3)
	mustCheck(t, f)
}

func TestCooperationDetectionSeesThroughShardHandler(t *testing.T) {
	// The shardHandler always implements rms.NodeFailureHandler; the shard
	// must still requeue (not reduce) when the application behind it does
	// not cooperate.
	e, f := newNodeFaultFederation(t, rms.CooperativeOnNodeFailure)
	app := &testApp{} // no OnNodeFailure
	sess := f.Connect(app)
	if _, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 4, Duration: 50, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if len(app.starts) != 1 {
		t.Fatal("request did not start")
	}
	victim := app.starts[0].ids[0]
	rep, err := f.FailNodes(cA, []int{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeued != 1 || rep.Reduced != 0 {
		t.Fatalf("report = %+v, want the non-cooperating app requeued", rep)
	}
	e.RunAll()
	if len(app.starts) != 2 {
		t.Fatalf("starts = %v, want a re-start on surviving nodes", app.starts)
	}
	mustCheck(t, f)
}

func TestFailNodesWhileShardDownAppliesAtRestart(t *testing.T) {
	e, f := newNodeFaultFederation(t, rms.KillOnNodeFailure)
	app := &nodeTestApp{}
	f.Connect(app)
	e.Run(2)
	shardA, _ := f.Owner(cA)
	f.CrashShard(shardA)

	rep, err := f.FailNodes(cA, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied {
		t.Fatalf("report = %+v, want deferred (shard down)", rep)
	}
	if got := f.FailedNodes(cA); len(got) != 2 {
		t.Fatalf("recorded failed = %v, want [2 5]", got)
	}
	// A recovery while the shard is down shrinks the record it would re-apply.
	if _, err := f.RecoverNodes(cA, []int{5}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, f)

	f.RestartShard(shardA)
	e.Run(e.Now() + 3)
	// The restarted shard rejoined with node 2 already down.
	if got := f.Shard(shardA).FailedNodeIDs(cA); len(got) != 1 || got[0] != 2 {
		t.Fatalf("shard failed IDs = %v, want [2]", got)
	}
	np, _ := app.lastViews(t)
	if got := np.Get(cA).Value(e.Now()); got != 7 {
		t.Errorf("restarted cluster shows %d nodes, want 7 (one still down)", got)
	}
	mustCheck(t, f)
}

func TestMigrateClusterCarriesFailedNodes(t *testing.T) {
	// Two clusters per shard: a shard must keep at least one cluster, so a
	// one-each layout could not migrate at all.
	e := sim.NewEngine()
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 8, cC: 8, view.ClusterID("delta"): 8},
		Shards:          2,
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		NodeRecovery:    rms.KillOnNodeFailure,
		Metrics: func(int) *metrics.Recorder {
			return metrics.NewRecorder()
		},
	})
	app := &nodeTestApp{}
	f.Connect(app)
	e.Run(2)
	if _, err := f.FailNodes(cA, []int{0, 3}); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, f)

	from, _ := f.Owner(cA)
	to := 1 - from
	if _, err := f.MigrateCluster(cA, to); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Owner(cA); got != to {
		t.Fatalf("owner after migration = %d, want %d", got, to)
	}
	// The degraded capacity followed the cluster to its new shard.
	if got := f.Shard(to).FailedNodeIDs(cA); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("target shard failed IDs = %v, want [0 3]", got)
	}
	mustCheck(t, f)

	// And the nodes recover on the new owner.
	if _, err := f.RecoverNodes(cA, []int{0, 3}); err != nil {
		t.Fatal(err)
	}
	e.Run(e.Now() + 3)
	if got := f.Shard(to).FailedNodeIDs(cA); len(got) != 0 {
		t.Fatalf("failed IDs after recovery = %v, want none", got)
	}
	mustCheck(t, f)
}

func TestFailNodesValidationAtFederation(t *testing.T) {
	_, f := newNodeFaultFederation(t, rms.KillOnNodeFailure)
	if _, err := f.FailNodes("nope", []int{0}); err == nil {
		t.Error("unknown cluster should error")
	}
	if _, err := f.RecoverNodes(cA, []int{0}); err == nil {
		t.Error("recovering an up node should error")
	}
	if _, err := f.FailNodes(cA, []int{1, 1}); err == nil {
		t.Error("duplicate node should error")
	}
	if _, err := f.FailNodes(cA, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.FailNodes(cA, []int{1}); err == nil {
		t.Error("failing a down node should error")
	}
	mustCheck(t, f)
}
