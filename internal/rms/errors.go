package rms

import (
	"errors"
	"fmt"

	"coormv2/internal/request"
)

// ErrStopped is returned by every operation on a stopped (crashed) server.
// Callers detect it with errors.Is.
var ErrStopped = errors.New("rms: server stopped")

// ErrUnknownCluster is wrapped by request() rejections for clusters the
// server does not manage. The federation routing layer detects it with
// errors.Is: during a live migration there is a window where the cluster is
// detached from its old owner but the new ownership is not committed yet,
// and exactly this error marks an operation that should briefly back off
// and re-resolve the owner (bounded by the migration retry budget).
var ErrUnknownCluster = errors.New("rms: unknown cluster")

// ReasonNotFound is the RequestError.Reason for operations naming a request
// the server does not know. The federation layer matches it structurally to
// detect the mid-migration window where a request's new home is not
// committed yet (see internal/federation.Session.Done).
const ReasonNotFound = "not found"

// RequestError is an error about a specific request. The offending request
// ID is carried as a field, not only baked into the message, so a routing
// layer (internal/federation) can translate shard-local IDs into its own
// federated ID space before the error reaches the application.
type RequestError struct {
	// ID is the request the error is about: the request itself, or — when
	// Related is set — the request named by the spec's RelatedTo.
	ID request.ID
	// Related marks errors about a request's RelatedTo reference.
	Related bool
	// Node is the offending node ID for release errors, -1 otherwise.
	Node int
	// Reason completes the message, e.g. "not found".
	Reason string
}

// errRequest builds a RequestError about a request itself.
func errRequest(id request.ID, reason string) *RequestError {
	return &RequestError{ID: id, Node: -1, Reason: reason}
}

// errRelated builds a RequestError about a spec's RelatedTo reference.
func errRelated(id request.ID, reason string) *RequestError {
	return &RequestError{ID: id, Related: true, Node: -1, Reason: reason}
}

// errNode builds a RequestError about a node released to the wrong request.
func errNode(id request.ID, node int) *RequestError {
	return &RequestError{ID: id, Node: node, Reason: "is not held by"}
}

// Error formats the message exactly as the historical plain-text errors did,
// so existing callers matching on substrings keep working.
func (e *RequestError) Error() string {
	switch {
	case e.Node >= 0:
		return fmt.Sprintf("rms: released node %d %s request %d", e.Node, e.Reason, e.ID)
	case e.Related:
		return fmt.Sprintf("rms: related request %d %s", e.ID, e.Reason)
	default:
		return fmt.Sprintf("rms: request %d %s", e.ID, e.Reason)
	}
}

// WithID returns a copy of the error quoting a different request ID — the
// federation boundary uses it to swap a shard-local ID for the federated one.
func (e *RequestError) WithID(id request.ID) *RequestError {
	cp := *e
	cp.ID = id
	return &cp
}
