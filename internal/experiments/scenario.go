// Package experiments reproduces the paper's evaluation (§5): every figure
// with quantitative content has a runner that regenerates its data from the
// discrete-event simulation. The per-experiment index lives in DESIGN.md;
// measured-vs-paper numbers live in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"

	"coormv2/internal/amr"
	"coormv2/internal/apps"
	"coormv2/internal/clock"
	"coormv2/internal/core"
	"coormv2/internal/federation"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/stats"
	"coormv2/internal/view"
)

// Cluster is the single large homogeneous cluster of the resource model
// (§5.1.3).
const Cluster = view.ClusterID("cluster")

// ScenarioConfig describes one simulated run: one AMR application plus any
// number of PSAs on one cluster.
type ScenarioConfig struct {
	// Seed drives the AMR profile generation.
	Seed int64
	// Steps is the AMR profile length (1000 in the paper; tests use less).
	Steps int
	// Smax is the AMR peak working-set size in MiB.
	Smax float64
	// TargetEff is the AMR's target efficiency (0.75 in the paper).
	TargetEff float64
	// Overcommit is the ratio between the user's pre-allocation guess and
	// the equivalent static allocation n_eq (§5.1.1).
	Overcommit float64
	// Mode selects the AMR behaviour: dynamic (CooRMv2) or static baseline.
	Mode apps.NEAMode
	// AnnounceInterval switches the AMR to announced updates (§5.3).
	AnnounceInterval float64
	// PSATaskDurations adds one PSA per entry with the given d_task.
	PSATaskDurations []float64
	// Policy selects the preemptible division policy (Fig. 11).
	Policy core.PreemptPolicy
	// Nodes overrides the cluster size; 0 sizes it like the paper:
	// "for an overcommit factor of κ, having n = 1400·κ is sufficient" —
	// we use exactly the pre-allocation size ceil(κ·n_eq).
	Nodes int
	// PSAHook, when set, customizes each PSA right after creation
	// (diagnostics, test instrumentation).
	PSAHook func(index int, p *apps.PSA)
	// MaxSimTime aborts runaway simulations (default 10^7 s).
	MaxSimTime float64
	// Shards, when positive, runs the scenario through a
	// federation.Federator with that many shards instead of a single
	// rms.Server. The scenario has one cluster, so the federation clamps to
	// one shard — the point is exercising the whole routing/merging layer:
	// a 1-shard federation must reproduce the single-RMS run byte-for-byte
	// (see the differential test).
	Shards int
}

// session is the server-side handle the harness needs; both *rms.Session
// and *federation.Session satisfy it.
type session interface {
	AppID() int
	Request(spec rms.RequestSpec) (request.ID, error)
	Done(id request.ID, released []int) error
	Disconnect()
}

// metricsReader is the read surface shared by *metrics.Recorder and
// *metrics.Aggregate.
type metricsReader interface {
	Area(appID int, t float64) float64
	PreAllocArea(appID int, t float64) float64
	UsedFraction(capacity int, horizon float64) float64
}

// buildRMS wires either a single rms.Server or a Federator over the given
// clusters. rec is the client-side recorder handed to applications (PSA
// waste); the returned reader aggregates it with the per-shard recorders.
func buildRMS(shards int, clusters map[view.ClusterID]int, interval float64, clk clock.Clock, policy core.PreemptPolicy, rec *metrics.Recorder) (connect func(rms.AppHandler) session, reader metricsReader) {
	if shards <= 0 {
		srv := rms.NewServer(rms.Config{
			Clusters:        clusters,
			ReschedInterval: interval,
			Clock:           clk,
			Policy:          policy,
			Metrics:         rec,
		})
		return func(h rms.AppHandler) session { return srv.Connect(h) }, rec
	}
	shardRecs := []*metrics.Recorder{rec}
	fed := federation.New(federation.Config{
		Clusters:        clusters,
		Shards:          shards,
		ReschedInterval: interval,
		Clock:           clk,
		Policy:          policy,
		Metrics: func(int) *metrics.Recorder {
			r := metrics.NewRecorder()
			shardRecs = append(shardRecs, r)
			return r
		},
	})
	return func(h rms.AppHandler) session { return fed.Connect(h) },
		metrics.NewAggregate(shardRecs...)
}

// ScenarioResult aggregates the §5 metrics of one run.
type ScenarioResult struct {
	Nodes int
	Neq   int // equivalent static allocation of the generated profile

	AMRArea    float64 // node·s effectively allocated to the AMR
	AMRRuntime float64 // AMR end-time minus start-time
	// AMRPreAllocArea is the node·s the AMR kept reserved (pre-allocated),
	// the basis of the §7 accounting extension.
	AMRPreAllocArea float64

	PSAArea  []float64 // node·s allocated per PSA
	PSAWaste []float64 // node·s wasted per PSA (killed tasks)

	// UsedFraction is the §5.3 metric over the AMR's makespan:
	// (allocated − waste) / (nodes × makespan).
	UsedFraction float64
	Makespan     float64

	Events int64 // simulator events processed (diagnostics)
}

// RunScenario builds the simulation, runs it until the AMR finishes and
// returns the metrics.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = amr.ProfileSteps
	}
	if cfg.Smax <= 0 {
		cfg.Smax = amr.DefaultSmax
	}
	if cfg.TargetEff <= 0 {
		cfg.TargetEff = 0.75
	}
	if cfg.Overcommit <= 0 {
		cfg.Overcommit = 1
	}
	if cfg.MaxSimTime <= 0 {
		cfg.MaxSimTime = 1e7
	}

	params := amr.DefaultParams
	profile := amr.GenerateProfile(stats.NewRand(cfg.Seed), cfg.Steps, cfg.Smax)
	neq, _ := params.EquivalentStatic(profile, cfg.TargetEff)
	pre := int(math.Ceil(cfg.Overcommit * float64(neq)))
	if pre < 1 {
		pre = 1
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = pre
	}
	if nodes < pre {
		return nil, fmt.Errorf("experiments: %d nodes cannot hold a %d-node pre-allocation", nodes, pre)
	}

	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	// §5.1.3: the re-scheduling interval is "set to 1 second, to obtain a
	// very reactive system".
	connect, reader := buildRMS(cfg.Shards, map[view.ClusterID]int{Cluster: nodes},
		1, clock.SimClock{E: e}, cfg.Policy, rec)

	nea := apps.NewNEA(clock.SimClock{E: e}, apps.NEAConfig{
		Cluster: Cluster, Profile: profile, Params: params,
		TargetEff: cfg.TargetEff, PreAllocN: pre, Mode: cfg.Mode,
		AnnounceInterval: cfg.AnnounceInterval,
	})
	// Freeze the clock at the makespan so every metric is evaluated over
	// exactly the AMR's run, as in §5.
	nea.OnFinish = e.Stop
	neaSess := connect(nea)
	nea.Attach(neaSess)
	if err := nea.Submit(); err != nil {
		return nil, err
	}

	psas := make([]*apps.PSA, 0, len(cfg.PSATaskDurations))
	psaIDs := make([]int, 0, len(cfg.PSATaskDurations))
	for i, d := range cfg.PSATaskDurations {
		p := apps.NewPSA(clock.SimClock{E: e}, apps.PSAConfig{
			Cluster: Cluster, TaskDuration: d, Metrics: rec,
		})
		if cfg.PSAHook != nil {
			cfg.PSAHook(i, p)
		}
		sess := connect(p)
		p.SetMetricsID(sess.AppID())
		p.Attach(sess)
		psas = append(psas, p)
		psaIDs = append(psaIDs, sess.AppID())
	}

	// Run until the AMR finishes (chunked so we can detect stalls).
	for !nea.Finished() {
		if nea.Err != nil {
			return nil, fmt.Errorf("experiments: NEA error: %w", nea.Err)
		}
		if killed, why := nea.Killed(); killed {
			return nil, fmt.Errorf("experiments: NEA killed: %s", why)
		}
		if e.Now() > cfg.MaxSimTime {
			return nil, fmt.Errorf("experiments: simulation exceeded %g s at step %d", cfg.MaxSimTime, nea.Step())
		}
		before := e.Processed()
		e.Run(e.Now() + 3600)
		if e.Processed() == before && !nea.Finished() {
			return nil, fmt.Errorf("experiments: simulation stalled at t=%g, step %d", e.Now(), nea.Step())
		}
	}
	for _, p := range psas {
		if p.Err != nil {
			return nil, fmt.Errorf("experiments: PSA error: %w", p.Err)
		}
		if killed, why := p.Killed(); killed {
			return nil, fmt.Errorf("experiments: PSA killed: %s", why)
		}
	}

	makespan := nea.EndTime
	res := &ScenarioResult{
		Nodes:           nodes,
		Neq:             neq,
		AMRArea:         reader.Area(neaSess.AppID(), makespan),
		AMRRuntime:      nea.EndTime - nea.StartTime,
		AMRPreAllocArea: reader.PreAllocArea(neaSess.AppID(), makespan),
		Makespan:        makespan,
		Events:          e.Processed(),
	}
	for i, p := range psas {
		res.PSAArea = append(res.PSAArea, reader.Area(psaIDs[i], makespan))
		res.PSAWaste = append(res.PSAWaste, p.Waste())
	}
	res.UsedFraction = reader.UsedFraction(nodes, makespan)
	return res, nil
}
