package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// oracle returns the nearest-rank quantile (rank ⌈q·n⌉) of a sorted
// slice — the same definition Histogram.Quantile implements.
func oracle(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestHistogramQuantileOracle drives the histogram against a
// sorted-slice oracle across seeds and distributions: every quantile
// must land within one sub-bucket (≤12.5% relative, so ≤6.25% from the
// midpoint estimate) of the exact nearest-rank value.
func TestHistogramQuantileOracle(t *testing.T) {
	distributions := map[string]func(*rand.Rand) float64{
		"uniform":     func(r *rand.Rand) float64 { return r.Float64() },
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() * 1e-3 },
		"logUniform":  func(r *rand.Rand) float64 { return math.Pow(10, -9+18*r.Float64()) },
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return 1e-6 + r.Float64()*1e-7
			}
			return 1.0 + r.Float64()*0.1
		},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range distributions {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			h := &Histogram{}
			vals := make([]float64, 0, 10000)
			for i := 0; i < 10000; i++ {
				v := gen(r)
				vals = append(vals, v)
				h.Record(v)
			}
			sort.Float64s(vals)
			for _, q := range quantiles {
				want := oracle(vals, q)
				got := h.Quantile(q)
				tol := 0.07 * want
				if math.Abs(got-want) > tol {
					t.Errorf("%s seed=%d q=%v: got %v want %v (±%v)", name, seed, q, got, want, tol)
				}
			}
			if got := h.Quantile(1); got != vals[len(vals)-1] {
				t.Errorf("%s seed=%d: max not exact: got %v want %v", name, seed, got, vals[len(vals)-1])
			}
			if got := h.Quantile(0); got != vals[0] {
				t.Errorf("%s seed=%d: min not exact: got %v want %v", name, seed, got, vals[0])
			}
		}
	}
}

// TestHistogramMergeAssociativity: merging the same parts in any order
// yields identical bucket contents, hence identical quantiles/extrema.
func TestHistogramMergeAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	parts := make([]*Histogram, 3)
	for i := range parts {
		parts[i] = &Histogram{}
		for j := 0; j < 1000*(i+1); j++ {
			parts[i].Record(r.ExpFloat64() * math.Pow(10, float64(i-3)))
		}
	}
	merged := func(order []int) *Histogram {
		m := &Histogram{}
		for _, i := range order {
			m.Merge(parts[i])
		}
		return m
	}
	a := merged([]int{0, 1, 2})
	b := merged([]int{2, 0, 1})
	if a.buckets != b.buckets {
		t.Fatal("merge order changed bucket contents")
	}
	sa, sb := a.Stat(), b.Stat()
	if sa.Count != sb.Count || sa.Min != sb.Min || sa.Max != sb.Max ||
		sa.P50 != sb.P50 || sa.P99 != sb.P99 || sa.P999 != sb.P999 {
		t.Fatalf("merge order changed stats: %+v vs %+v", sa, sb)
	}
	if math.Abs(sa.Sum-sb.Sum) > 1e-9*math.Abs(sa.Sum) {
		t.Fatalf("merge order changed sum beyond fp tolerance: %v vs %v", sa.Sum, sb.Sum)
	}
	var want uint64
	for _, p := range parts {
		want += p.Count()
	}
	if a.Count() != want {
		t.Fatalf("merged count %d, want %d", a.Count(), want)
	}
}

// TestHistogramEdgeValues: zero, negative (clamped), sub-underflow,
// overflow, NaN and +Inf must all keep the histogram well-formed.
func TestHistogramEdgeValues(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{0, -1, 1e-15, 1e15, math.NaN(), math.Inf(1), 1e-3} {
		h.Record(v)
	}
	st := h.Stat()
	if st.Count != 7 {
		t.Fatalf("count %d, want 7", st.Count)
	}
	if st.Min != 0 {
		t.Fatalf("min %v, want 0 (negative/NaN clamp)", st.Min)
	}
	if !math.IsInf(st.Max, 1) {
		t.Fatalf("max %v, want +Inf", st.Max)
	}
	if q := h.Quantile(0.5); q < 0 || math.IsNaN(q) {
		t.Fatalf("p50 %v not well-formed", q)
	}
}

// TestRingWraparound: a full ring overwrites oldest-first and keeps the
// global sequence numbering.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{Type: EvRound, Time: float64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("total %d, want 10", r.Total())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	for i, e := range ev {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Time != float64(wantSeq) {
			t.Fatalf("event %d: seq=%d t=%v, want seq=%d t=%v", i, e.Seq, e.Time, wantSeq, float64(wantSeq))
		}
	}
	// Partial fill keeps insertion order without wrapping artifacts.
	r2 := NewRing(8)
	r2.Add(Event{Type: EvCrash})
	r2.Add(Event{Type: EvRestart})
	ev2 := r2.Events()
	if len(ev2) != 2 || ev2[0].Type != EvCrash || ev2[1].Type != EvRestart {
		t.Fatalf("partial ring wrong: %+v", ev2)
	}
}

// TestConcurrentRecording hammers one registry from many goroutines
// while snapshots are taken — meaningful under -race, and the final
// counts must still be exact.
func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	h := reg.Hist("wait")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(float64(i%100) * 1e-6)
				reg.Event(Event{Type: EvStart, App: w, Value: float64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := reg.Snapshot(float64(i))
			if _, err := snap.JSON(); err != nil {
				t.Errorf("snapshot json: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count %d, want %d", got, workers*perWorker)
	}
	if got := reg.Snapshot(0).EventsTotal; got != workers*perWorker {
		t.Fatalf("events_total %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotStableJSON: identical registry contents must marshal to
// identical bytes (map keys sorted by encoding/json) — the property the
// experiment determinism test builds on.
func TestSnapshotStableJSON(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.RegisterCounters("sched", func() map[string]int64 {
			return map[string]int64{"rounds": 42, "full_rounds": 3}
		})
		reg.RegisterCounters("merge", func() map[string]int64 {
			return map[string]int64{"merges": 17}
		})
		for i := 0; i < 100; i++ {
			reg.Hist("wait_seconds").Record(float64(i) * 1e-4)
			reg.Hist("round_seconds").Record(float64(i%7) * 1e-6)
		}
		reg.Event(Event{Type: EvStart, Time: 1.5, App: 3, Value: 0.25})
		reg.Event(Event{Type: EvMigrate, Time: 2.5, Cluster: "c0", Value: 0.1})
		return reg
	}
	j1, err := build().Snapshot(10).JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().Snapshot(10).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not stable:\n%s\nvs\n%s", j1, j2)
	}
}

// TestWritePrometheus checks the text exposition output parses line by
// line: every non-comment line is "name[{quantile}] value" with
// deterministic ordering.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterCounters("sched", func() map[string]int64 { return map[string]int64{"rounds": 5} })
	for i := 1; i <= 1000; i++ {
		reg.Hist("rms.wait_seconds").Record(float64(i) * 1e-5)
	}
	var buf bytes.Buffer
	if err := reg.Snapshot(3).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"coorm_sched_rounds 5",
		`coorm_rms_wait_seconds{quantile="0.99"}`,
		"coorm_rms_wait_seconds_count 1000",
		"coorm_events_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestNilDisabled: a nil registry and nil histogram must be inert —
// the "disabled" fast path every hot-path call site relies on.
func TestNilDisabled(t *testing.T) {
	var reg *Registry
	h := reg.Hist("anything")
	if h != nil {
		t.Fatal("nil registry returned a histogram")
	}
	h.Record(1.0) // must not panic
	h.Merge(&Histogram{})
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not inert")
	}
	reg.Event(Event{Type: EvRound})
	reg.RegisterCounters("x", func() map[string]int64 { return nil })
	snap := reg.Snapshot(1)
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 || snap.EventsTotal != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatal(err)
	}
}
