package coormv2

import (
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

// facadeApp is a minimal AppHandler for facade-level tests.
type facadeApp struct {
	views  int
	starts map[request.ID][]int
	killed string
}

func newFacadeApp() *facadeApp { return &facadeApp{starts: map[request.ID][]int{}} }

func (a *facadeApp) OnViews(_, _ view.View)               { a.views++ }
func (a *facadeApp) OnStart(id request.ID, nodeIDs []int) { a.starts[id] = nodeIDs }
func (a *facadeApp) OnKill(reason string)                 { a.killed = reason }

func TestSimulationQuickstart(t *testing.T) {
	sim := NewSimulation(map[ClusterID]int{"c0": 64})
	app := newFacadeApp()
	sess := sim.Server.Connect(app)
	id, err := sess.Request(RequestSpec{Cluster: "c0", N: 8, Duration: 3600, Type: NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunAll()
	if ids, ok := app.starts[id]; !ok || len(ids) != 8 {
		t.Fatalf("starts = %v", app.starts)
	}
	if app.views == 0 {
		t.Error("no views pushed")
	}
	if sim.Now() < 3600 {
		t.Errorf("simulation should have passed the job's end, now=%v", sim.Now())
	}
	if got := sim.Metrics.Area(sess.AppID(), 3600); got != 8*3600 {
		t.Errorf("area = %v, want %v", got, 8*3600)
	}
}

func TestSimulationOptions(t *testing.T) {
	sim := NewSimulation(map[ClusterID]int{"c0": 10},
		WithPolicy(StrictEquiPartition),
		WithReschedInterval(0.5),
		WithClip(View{}.AddRect("c0", 0, 1e9, 4)),
	)
	if sim.Server.Scheduler().Policy() != StrictEquiPartition {
		t.Error("policy option not applied")
	}
	// The clip caps what any application can see non-preemptively.
	app := newFacadeApp()
	sess := sim.Server.Connect(app)
	_ = sess
	sim.Run(2)
	if app.views == 0 {
		t.Fatal("no views")
	}
}

func TestDefaultAMRParamsSane(t *testing.T) {
	// t(1, Smax) is ~24000 s with the paper's constants.
	got := DefaultAMRParams.StepTime(1, 3.16*1024*1024)
	if got < 20000 || got > 30000 {
		t.Errorf("facade AMR params broken: %v", got)
	}
}

func TestConstantsWiredThrough(t *testing.T) {
	if PreAlloc.String() != "PA" || NonPreempt.String() != "¬P" || Preempt.String() != "P" {
		t.Error("request type constants")
	}
	if Free.String() != "FREE" || Coalloc.String() != "COALLOC" || Next.String() != "NEXT" {
		t.Error("relation constants")
	}
	if EquiPartitionFilling.String() == StrictEquiPartition.String() {
		t.Error("policy constants")
	}
}
