package stepfunc

import (
	"math"
	"testing"
)

// decodeFuzzFn consumes a byte-encoded step list: one count byte, then
// (duration, value) byte pairs. Durations are small positive halves,
// values span the int8 range so negative plateaus (availability deficits)
// are covered.
func decodeFuzzFn(data []byte) (*StepFunc, []byte) {
	if len(data) == 0 {
		return Zero(), data
	}
	k := int(data[0] % 9)
	data = data[1:]
	steps := make([]Step, 0, k)
	for i := 0; i < k && len(data) >= 2; i++ {
		steps = append(steps, Step{
			Duration: float64(data[0]%32)/2 + 0.5,
			N:        int(int8(data[1])),
		})
		data = data[2:]
	}
	return FromSteps(steps...), data
}

// checkCanonical asserts the StepFunc representation invariants: strictly
// increasing breakpoint times, no two consecutive equal values, and the
// forbidden {0,0} singleton collapsed to the shared zero.
func checkCanonical(t *testing.T, f *StepFunc) {
	t.Helper()
	for i := 1; i < len(f.pts); i++ {
		if f.pts[i].t <= f.pts[i-1].t {
			t.Fatalf("non-increasing breakpoints at %d: %v", i, f.pts)
		}
		if f.pts[i].n == f.pts[i-1].n {
			t.Fatalf("uncollapsed equal run at %d: %v", i, f.pts)
		}
	}
	if len(f.pts) == 1 && f.pts[0].n == 0 {
		t.Fatalf("forbidden {0,0} singleton: %v", f.pts)
	}
}

// probeTimes gathers every breakpoint of both inputs plus midpoints and
// out-of-range probes, so the differential check sees every segment.
func probeTimes(a, b *StepFunc) []float64 {
	bps := a.AppendBreakpoints(nil)
	bps = b.AppendBreakpoints(bps)
	probes := []float64{-1, 0, 1e9}
	for _, bp := range bps {
		probes = append(probes, bp, bp-0.25, bp+0.25)
	}
	return probes
}

// FuzzCombineOps differentially checks the sort-free merge core behind
// Add/Sub/Max/Min (and their *Into variants) against naive pointwise
// evaluation, plus the representation invariants of every result.
func FuzzCombineOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 2, 8, 255, 2, 7, 2, 1, 0})
	f.Add([]byte{8, 1, 128, 1, 127, 2, 3, 63, 200, 5, 5, 4, 4, 3, 3, 2, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, rest := decodeFuzzFn(data)
		b, _ := decodeFuzzFn(rest)
		ops := []struct {
			name  string
			merge func() *StepFunc
			into  func(dst *StepFunc) *StepFunc
			naive func(x, y int) int
		}{
			{"add", func() *StepFunc { return a.Add(b) }, func(d *StepFunc) *StepFunc { return a.AddInto(b, d) }, func(x, y int) int { return x + y }},
			{"sub", func() *StepFunc { return a.Sub(b) }, func(d *StepFunc) *StepFunc { return a.SubInto(b, d) }, func(x, y int) int { return x - y }},
			{"max", func() *StepFunc { return a.Max(b) }, func(d *StepFunc) *StepFunc { return a.MaxInto(b, d) }, func(x, y int) int {
				if x > y {
					return x
				}
				return y
			}},
			{"min", func() *StepFunc { return a.Min(b) }, func(d *StepFunc) *StepFunc { return a.MinInto(b, d) }, func(x, y int) int {
				if x < y {
					return x
				}
				return y
			}},
		}
		probes := probeTimes(a, b)
		for _, op := range ops {
			got := op.merge()
			checkCanonical(t, got)
			for _, at := range probes {
				want := op.naive(a.Value(at), b.Value(at))
				if g := got.Value(at); g != want {
					t.Fatalf("%s at t=%v: got %d, want %d (a=%v b=%v)", op.name, at, g, want, a, b)
				}
			}
			into := op.into(&StepFunc{})
			checkCanonical(t, into)
			if !got.Equal(into) {
				t.Fatalf("%s: Into variant diverges: %v vs %v", op.name, got, into)
			}
		}
	})
}

// FuzzSumAll differentially checks the k-way merge against a fold over Add.
func FuzzSumAll(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 3, 4, 10, 2, 5, 250, 1, 9, 9})
	f.Add([]byte{5, 1, 1, 1, 2, 2, 3, 200, 100, 4, 4, 1, 128, 3, 127, 2, 2, 9, 9, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		k := int(data[0]%6) + 1
		data = data[1:]
		fs := make([]*StepFunc, 0, k+1)
		for i := 0; i < k; i++ {
			var fn *StepFunc
			fn, data = decodeFuzzFn(data)
			fs = append(fs, fn)
		}
		fs = append(fs, nil) // nil entries count as zero
		got := SumAll(fs)
		checkCanonical(t, got)
		want := Zero()
		for _, fn := range fs {
			if fn != nil {
				want = want.Add(fn)
			}
		}
		if !got.Equal(want) {
			t.Fatalf("SumAll = %v, fold = %v (inputs %v)", got, want, fs)
		}
		// Integral is additive, a second independent cross-check.
		gi := got.Integral(0, 1000)
		wi := 0.0
		for _, fn := range fs {
			if fn != nil {
				wi += fn.Integral(0, 1000)
			}
		}
		if math.Abs(gi-wi) > 1e-6*(1+math.Abs(wi)) {
			t.Fatalf("integral mismatch: %v vs %v", gi, wi)
		}
	})
}
