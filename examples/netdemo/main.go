// netdemo: the real-life prototype path — a CooRMv2 daemon served over TCP
// on the wall clock, with two clients speaking the JSON protocol: a rigid
// job and a malleable application that fills and releases preemptible
// resources. Everything runs in one process for demonstration purposes;
// cmd/coormd and cmd/coormctl are the standalone equivalents.
//
// Run with: go run ./examples/netdemo
package main

import (
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"coormv2"
)

const cluster = coormv2.ClusterID("main")

// client is a minimal transport.Handler that records notifications.
type client struct {
	name string
	mu   sync.Mutex
	held []int
	c    *coormv2.Client

	onViews func(p coormv2.View)
}

func (a *client) OnViews(np, p coormv2.View) {
	if a.onViews != nil {
		a.onViews(p)
	}
}

func (a *client) OnStart(id coormv2.RequestID, nodes []int) {
	a.mu.Lock()
	a.held = nodes
	a.mu.Unlock()
	fmt.Printf("%s: request %d started on %v\n", a.name, id, nodes)
}

func (a *client) OnKill(reason string) {
	fmt.Printf("%s: killed: %s\n", a.name, reason)
}

func (a *client) heldNodes() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.held...)
}

func main() {
	// Start the daemon on an ephemeral port, wall clock, fast rounds.
	srv := coormv2.NewServer(coormv2.ServerConfig{
		Clusters:        map[coormv2.ClusterID]int{cluster: 16},
		ReschedInterval: 0.05,
		Clock:           coormv2ClockRealOrDie(),
		Metrics:         coormv2.NewRecorder(),
	})
	daemon := coormv2.NewDaemon(srv)
	addr, err := daemon.Listen("127.0.0.1:0")
	check(err)
	go daemon.Serve()
	defer daemon.Close()
	fmt.Printf("coormd listening on %s\n", addr)

	// A malleable client that grabs all preemptible resources and releases
	// on demand. The first view can arrive on the read goroutine before
	// Dial returns, so the handler receives its client through a channel.
	mal := &client{name: "malleable"}
	ready := make(chan *coormv2.Client, 1)
	var malReq coormv2.RequestID
	var malMu sync.Mutex
	mal.onViews = func(p coormv2.View) {
		malMu.Lock()
		defer malMu.Unlock()
		if mal.c == nil {
			mal.c = <-ready
		}
		// Views are trimmed to [now, ∞), so the leading value is the
		// current availability.
		avail := p.Get(cluster).Value(0)
		held := mal.heldNodes()
		switch {
		case malReq == 0 && avail > 0:
			id, err := mal.c.Request(coormv2.RequestSpec{
				Cluster: cluster, N: avail, Duration: math.Inf(1), Type: coormv2.Preempt,
			})
			if err == nil {
				malReq = id
			}
		case malReq != 0 && avail < len(held):
			rel := held[avail:]
			id, err := mal.c.Request(coormv2.RequestSpec{
				Cluster: cluster, N: avail, Duration: math.Inf(1),
				Type: coormv2.Preempt, RelatedHow: coormv2.Next, RelatedTo: malReq,
			})
			if err != nil {
				return
			}
			if err := mal.c.Done(malReq, rel); err != nil {
				return
			}
			fmt.Printf("malleable: released %v\n", rel)
			malReq = id
		}
	}
	malClient, err := coormv2.Dial(addr, mal)
	check(err)
	ready <- malClient
	defer malClient.Close()

	// Let the malleable app claim the whole cluster.
	deadline0 := time.Now().Add(3 * time.Second)
	for len(mal.heldNodes()) < 16 && time.Now().Before(deadline0) {
		time.Sleep(20 * time.Millisecond)
	}
	if len(mal.heldNodes()) != 16 {
		fmt.Println("netdemo: FAILED — malleable app never claimed the cluster")
		os.Exit(1)
	}

	// A rigid client needing 10 of the 16 nodes: the malleable app must
	// yield them.
	rigid := &client{name: "rigid"}
	rc, err := coormv2.Dial(addr, rigid)
	check(err)
	defer rc.Close()
	id, err := rc.Request(coormv2.RequestSpec{
		Cluster: cluster, N: 10, Duration: 3600, Type: coormv2.NonPreempt,
	})
	check(err)
	fmt.Printf("rigid: submitted request %d for 10 nodes\n", id)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(rigid.heldNodes()) == 10 {
			fmt.Printf("rigid: got its allocation; malleable now holds %d nodes\n",
				len(mal.heldNodes()))
			fmt.Println("netdemo: OK — preemption over the real TCP protocol works")
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("netdemo: FAILED — rigid job never started")
	os.Exit(1)
}

// coormv2ClockRealOrDie builds a wall clock (helper keeps main tidy).
func coormv2ClockRealOrDie() coormv2.Clock {
	return coormv2.NewRealClock()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
