package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"coormv2/internal/chaos"
	"coormv2/internal/federation"
	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

// chaosTestConfig builds a reduced-scale chaos scenario: 60 rigid jobs over
// 3 shards with one scavenging PSA per shard and an aggressive fault plan
// (MTTF well under the trace span, so several crashes always happen).
func chaosTestConfig(seed int64, pol federation.RecoveryPolicy) ChaosReplayConfig {
	jobs := workload.Synthetic(stats.NewRand(seed), workload.SyntheticConfig{
		Jobs: 60, MaxNodes: 8, MeanInterArr: 45, MeanRuntime: 600,
		PowerOfTwoBias: 0.5,
	})
	return ChaosReplayConfig{
		Jobs:          jobs,
		Shards:        3,
		NodesPerShard: 16,
		PSATaskDur:    120,
		Recovery:      pol,
		Chaos: chaos.Config{
			Seed:             seed,
			MTTF:             700,
			MeanRestartDelay: 90,
			Horizon:          2500,
		},
	}
}

// TestChaosReplayDeterministic is the headline determinism contract: two
// runs with the same seed produce identical results — the complete fault
// trace, the FNV fingerprint of every simulator event fired, and every
// metric — while a different seed produces a different fault history.
func TestChaosReplayDeterministic(t *testing.T) {
	for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
		t.Run(pol.String(), func(t *testing.T) {
			a, err := RunChaosReplay(chaosTestConfig(42, pol))
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunChaosReplay(chaosTestConfig(42, pol))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed diverged:\nrun1: %+v\nrun2: %+v", a, b)
			}
			if a.Crashes == 0 {
				t.Fatal("test plan produced no crashes; the determinism check is vacuous")
			}
			c, err := RunChaosReplay(chaosTestConfig(43, pol))
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a.Trace, c.Trace) && a.EventHash == c.EventHash {
				t.Fatal("different seeds produced an identical run")
			}
		})
	}
}

// TestChaosInvariantMatrix is the CI chaos matrix: three seeds × both
// recovery policies. RunChaosReplay runs the invariant checker after every
// fault and once post-run (no orphaned sessions, no leaked ID mappings, no
// double-counted area) and fails the run on any violation; the test adds
// the job-accounting contract per policy.
func TestChaosInvariantMatrix(t *testing.T) {
	for _, pol := range []federation.RecoveryPolicy{federation.KillOnCrash, federation.RequeueOnCrash} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", pol, seed), func(t *testing.T) {
				cfg := chaosTestConfig(seed, pol)
				res, err := RunChaosReplay(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Crashes == 0 {
					t.Fatal("plan produced no crashes; matrix entry is vacuous")
				}
				total := res.Completed + res.Killed + res.Rejected
				if total != len(cfg.Jobs) {
					t.Fatalf("jobs unaccounted for: %d completed + %d killed + %d rejected != %d",
						res.Completed, res.Killed, res.Rejected, len(cfg.Jobs))
				}
				switch pol {
				case federation.RequeueOnCrash:
					if res.Killed != 0 || res.Rejected != 0 {
						t.Fatalf("requeue policy killed %d / rejected %d jobs", res.Killed, res.Rejected)
					}
					if res.KilledSessions != 0 {
						t.Fatalf("requeue policy killed %d sessions", res.KilledSessions)
					}
					if res.RequeuedRequests == 0 {
						t.Fatal("crashes requeued nothing — recovery path not exercised")
					}
					if res.ReplayedRequests+res.DroppedRequests != res.RequeuedRequests {
						t.Fatalf("requeue accounting leak: %d requeued != %d replayed + %d dropped",
							res.RequeuedRequests, res.ReplayedRequests, res.DroppedRequests)
					}
				case federation.KillOnCrash:
					if res.RequeuedRequests != 0 || res.ReplayedRequests != 0 {
						t.Fatalf("kill policy requeued/replayed requests: %+v", res)
					}
					if res.Killed == 0 && res.KilledSessions == 0 {
						t.Fatal("kill policy never killed anything — recovery path not exercised")
					}
				}
			})
		}
	}
}

// TestChaosZeroFaultPlanMatchesBaseline sanity-checks the harness overhead
// path: with an empty fault plan the chaos runner is just a federated
// replay, completing every job with no recovery events.
func TestChaosZeroFaultPlanMatchesBaseline(t *testing.T) {
	cfg := chaosTestConfig(5, federation.KillOnCrash)
	cfg.Chaos = chaos.Config{}
	res, err := RunChaosReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 0 || res.Restarts != 0 || len(res.Trace) != 0 {
		t.Fatalf("empty plan executed faults: %+v", res)
	}
	if res.Completed != len(cfg.Jobs) {
		t.Fatalf("completed %d of %d jobs without faults", res.Completed, len(cfg.Jobs))
	}
	if res.KilledSessions+res.RequeuedRequests+res.ReplayedRequests+res.DroppedRequests != 0 {
		t.Fatalf("recovery counters moved without faults: %+v", res)
	}
}

// TestChaosReplaySparseTrace is the stall-detector regression: an
// inter-arrival gap longer than the replay's one-hour stepping window (and
// no PSAs to fill it with events) is an idle period, not a deadlock.
func TestChaosReplaySparseTrace(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Nodes: 2, Runtime: 100},
		{ID: 2, Submit: 9000, Nodes: 2, Runtime: 100},
	}
	res, err := RunChaosReplay(ChaosReplayConfig{
		Jobs:          jobs,
		Shards:        2,
		NodesPerShard: 4,
		Recovery:      federation.KillOnCrash,
		Chaos:         chaos.Config{Seed: 1}, // MTTF 0 ⇒ empty fault plan
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed %d of %d jobs across the gap", res.Completed, len(jobs))
	}
}
