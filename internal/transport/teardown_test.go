package transport

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"coormv2/internal/clock"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// TestCallSurvivesServerDeath is the regression test for the nil-reply
// crash: when the connection dies while a call is in flight, the waiter
// used to receive a nil *proto.Message and panic on reply.Type. It must
// receive a connection error instead.
func TestCallSurvivesServerDeath(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fr := newFrameReader(conn, 0)
		fr.next() // connect
		conn.Write([]byte(`{"type":"connected","app_id":1,"resume":"tok"}` + "\n"))
		fr.next() // the request — never answered
		accepted <- conn
	}()

	app := newResilApp()
	c, err := Dial(ln.Addr().String(), app)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt})
		errCh <- err
	}()
	// Kill the connection with the call still pending.
	select {
	case conn := <-accepted:
		conn.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the request")
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("call succeeded on a dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call hung after connection death")
	}
}

// TestUnsolicitedErrorSurfaced pins satellite behaviour: an error frame
// with no sequence number is counted and delivered through the optional
// ErrorHandler instead of being dropped on the floor.
func TestUnsolicitedErrorSurfaced(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fr := newFrameReader(conn, 0)
		fr.next()
		conn.Write([]byte(`{"type":"connected","app_id":1,"resume":"tok"}` + "\n"))
		conn.Write([]byte(`{"type":"error","reason":"out of band"}` + "\n"))
		// Keep the connection open so the client isn't torn down.
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				conn.Close()
				return
			}
		}
	}()

	app := newResilApp()
	c, err := Dial(ln.Addr().String(), app)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		app.mu.Lock()
		got := len(app.errs) > 0 && app.errs[0] == "out of band"
		app.mu.Unlock()
		if got {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unsolicited error never reached the ErrorHandler")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := c.UnsolicitedErrors(); n != 1 {
		t.Fatalf("UnsolicitedErrors = %d, want 1", n)
	}
}

// TestOversizedServerFrame pins the client side of the frame limit: a
// too-large server frame surfaces as a structured *OversizedFrameError
// carrying the offending size.
func TestOversizedServerFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fr := newFrameReader(conn, 0)
		fr.next()
		conn.Write([]byte(`{"type":"connected","app_id":1,"resume":"tok"}` + "\n"))
		fr.next() // the request
		big := append(make([]byte, 600), '\n')
		for i := range big[:600] {
			big[i] = 'x'
		}
		conn.Write(big)
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				conn.Close()
				return
			}
		}
	}()

	app := newResilApp()
	c, err := DialOptions(ln.Addr().String(), app, Options{MaxFrame: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt})
	var ofe *OversizedFrameError
	if !errors.As(err, &ofe) {
		t.Fatalf("error = %v, want *OversizedFrameError", err)
	}
	if ofe.Size != 600 || ofe.Limit != 512 {
		t.Fatalf("OversizedFrameError = %+v, want Size=600 Limit=512", ofe)
	}
	if !strings.Contains(ofe.Error(), "600") || !strings.Contains(ofe.Error(), "512") {
		t.Fatalf("error text %q should carry both sizes", ofe.Error())
	}
}

// TestOversizedClientFrame pins the server side: an oversized client
// frame is skipped in place — the session survives, the client gets a
// structured unsolicited error, and the next frame is served normally.
func TestOversizedClientFrame(t *testing.T) {
	srv, addr := startServerMaxFrame(t, 512)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr := newFrameReader(conn, 0)
	if _, err := conn.Write([]byte(`{"type":"connect"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if line, err := fr.next(); err != nil || !strings.Contains(string(line), "connected") {
		t.Fatalf("handshake: %s, %v", line, err)
	}
	big := append(make([]byte, 600), '\n')
	for i := range big[:600] {
		big[i] = 'x'
	}
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"type":"ping","seq":9}` + "\n")); err != nil {
		t.Fatal(err)
	}
	sawError, sawPong := false, false
	for !sawError || !sawPong {
		line, err := fr.next()
		if err != nil {
			t.Fatalf("read: %v (error=%v pong=%v)", err, sawError, sawPong)
		}
		s := string(line)
		switch {
		case strings.Contains(s, `"error"`) && strings.Contains(s, "600 bytes"):
			sawError = true
		case strings.Contains(s, `"pong"`):
			sawPong = true
		}
	}
	if st := srv.Stats(); st["oversized_frames"] != 1 {
		t.Fatalf("oversized_frames = %d, want 1", st["oversized_frames"])
	}
}

func startServerMaxFrame(t *testing.T, maxFrame int) (*Server, string) {
	t.Helper()
	r := rms.NewServer(rms.Config{
		Clusters:        map[view.ClusterID]int{c0: 16},
		ReschedInterval: 0.01,
		Clock:           clock.NewRealClock(),
	})
	srv := NewServer(r)
	srv.Logf = func(string, ...any) {}
	srv.MaxFrame = maxFrame
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr
}

// TestConcurrentCloseVsCall hammers Close against in-flight calls: no
// call may hang or panic, whatever side wins the race.
func TestConcurrentCloseVsCall(t *testing.T) {
	for i := 0; i < 20; i++ {
		_, addr := startServer(t)
		app := newClientApp()
		c, err := Dial(addr, app)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Outcome is irrelevant; termination is the property.
				c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 1, Type: request.NonPreempt})
			}()
		}
		c.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("calls hung across Close")
		}
	}
}

// TestServerCloseWithQueuedNotifications closes the server while
// sessions have notifications queued; nothing may deadlock and Close
// must return.
func TestServerCloseWithQueuedNotifications(t *testing.T) {
	srv, addr := startServer(t)
	apps := make([]*clientApp, 3)
	clients := make([]*Client, 3)
	for i := range clients {
		apps[i] = newClientApp()
		c, err := Dial(addr, apps[i])
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		if _, err := c.Request(rms.RequestSpec{Cluster: c0, N: 1, Duration: 30, Type: request.NonPreempt}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung with queued notifications")
	}
	for _, c := range clients {
		c.Close()
	}
}

// TestKillWhileDialing closes the server between Accept and the
// handshake: Dial must fail cleanly, not hang.
func TestKillWhileDialing(t *testing.T) {
	for i := 0; i < 10; i++ {
		srv, addr := startServer(t)
		type dialRes struct {
			c   *Client
			err error
		}
		resCh := make(chan dialRes, 1)
		go func() {
			c, err := Dial(addr, newClientApp())
			resCh <- dialRes{c, err}
		}()
		srv.Close()
		select {
		case res := <-resCh:
			if res.err == nil {
				// The dial won the race — a legal outcome; the client must
				// then close cleanly against the dead server.
				res.c.Close()
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Dial hung across server Close")
		}
	}
}
