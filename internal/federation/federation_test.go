package federation

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"coormv2/internal/clock"
	"coormv2/internal/metrics"
	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/sim"
	"coormv2/internal/view"
)

const (
	cA = view.ClusterID("alpha")
	cB = view.ClusterID("beta")
	cC = view.ClusterID("gamma")
)

// testApp is a programmable rms.AppHandler that records everything.
type testApp struct {
	mu     sync.Mutex
	views  []struct{ np, p view.View }
	starts []struct {
		id  request.ID
		ids []int
	}
	killed  string
	onStart func(id request.ID, ids []int)
}

func (a *testApp) OnViews(np, p view.View) {
	a.mu.Lock()
	a.views = append(a.views, struct{ np, p view.View }{np, p})
	a.mu.Unlock()
}

func (a *testApp) OnStart(id request.ID, ids []int) {
	a.mu.Lock()
	a.starts = append(a.starts, struct {
		id  request.ID
		ids []int
	}{id, ids})
	cb := a.onStart
	a.mu.Unlock()
	if cb != nil {
		cb(id, ids)
	}
}

func (a *testApp) OnKill(reason string) {
	a.mu.Lock()
	a.killed = reason
	a.mu.Unlock()
}

func (a *testApp) lastViews(t *testing.T) (view.View, view.View) {
	t.Helper()
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.views) == 0 {
		t.Fatal("no views received")
	}
	v := a.views[len(a.views)-1]
	return v.np, v.p
}

func TestPartition(t *testing.T) {
	clusters := map[view.ClusterID]int{cA: 4, cB: 8, cC: 16}
	parts := Partition(clusters, 2)
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(parts))
	}
	// Sorted IDs alpha,beta,gamma round-robin: shard0={alpha,gamma}, shard1={beta}.
	want := []map[view.ClusterID]int{{cA: 4, cC: 16}, {cB: 8}}
	if !reflect.DeepEqual(parts, want) {
		t.Errorf("parts = %v, want %v", parts, want)
	}
	// Clamping: more shards than clusters, and non-positive counts.
	if got := len(Partition(clusters, 10)); got != 3 {
		t.Errorf("over-sharded partition has %d shards, want 3", got)
	}
	if got := len(Partition(clusters, 0)); got != 1 {
		t.Errorf("0-shard partition has %d shards, want 1", got)
	}
	if Partition(nil, 3) != nil {
		t.Error("empty cluster set should partition to nil")
	}
}

func newTestFederation(shards int) (*sim.Engine, *Federator) {
	e := sim.NewEngine()
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 8, cC: 8},
		Shards:          shards,
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
	})
	return e, f
}

func TestMergedViewsSpanAllShards(t *testing.T) {
	e, f := newTestFederation(3)
	if f.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", f.NumShards())
	}
	app := &testApp{}
	f.Connect(app)
	e.RunAll()
	np, p := app.lastViews(t)
	for _, cid := range []view.ClusterID{cA, cB, cC} {
		if got := np.Get(cid).Value(0); got != 8 {
			t.Errorf("non-preemptive view of %s = %d, want 8", cid, got)
		}
		if got := p.Get(cid).Value(0); got != 8 {
			t.Errorf("preemptive view of %s = %d, want 8", cid, got)
		}
	}
}

func TestRequestRoutedToOwningShard(t *testing.T) {
	e, f := newTestFederation(3)
	app := &testApp{}
	sess := f.Connect(app)
	if sess.AppID() != 1 {
		t.Errorf("AppID = %d, want 1", sess.AppID())
	}
	idA, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 3, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Fatalf("federated request IDs collide: %d", idA)
	}
	e.Run(10)
	app.mu.Lock()
	starts := append([]struct {
		id  request.ID
		ids []int
	}(nil), app.starts...)
	app.mu.Unlock()
	if len(starts) != 2 {
		t.Fatalf("starts = %v, want 2", starts)
	}
	got := map[request.ID]int{}
	for _, st := range starts {
		got[st.id] = len(st.ids)
	}
	if got[idA] != 2 || got[idB] != 3 {
		t.Errorf("started node counts by federated ID = %v, want %d:2 %d:3", got, idA, idB)
	}
	// The allocation landed on the owning shards.
	shardA, _ := f.Owner(cA)
	shardB, _ := f.Owner(cB)
	if shardA == shardB {
		t.Fatalf("test expects alpha and beta on different shards")
	}
}

func TestUnknownClusterAndRequestErrors(t *testing.T) {
	e, f := newTestFederation(2)
	sess := f.Connect(&testApp{})
	e.Run(2)
	if _, err := sess.Request(rms.RequestSpec{Cluster: "nope", N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("unknown cluster should error")
	}
	if err := sess.Done(999, nil); err == nil {
		t.Error("unknown request ID should error")
	}
	if _, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: 1, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: 999}); err == nil {
		t.Error("dangling RelatedTo should error")
	}
}

// TestCrossShardRelationAccepted: historically a NEXT/COALLOC relation
// crossing shards was rejected outright; the two-phase reservation
// coordinator now accepts it, holds capacity on the child's shard, and
// commits once the legs align.
func TestCrossShardRelationAccepted(t *testing.T) {
	e, f := newTestFederation(3)
	app := &testApp{}
	sess := f.Connect(app)
	id, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: 5, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	child, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 1, Duration: 5, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: id})
	if err != nil {
		t.Fatalf("cross-shard NEXT relation = %v, want acceptance via reservation", err)
	}
	// Same-shard relations still work.
	if _, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 5, Type: request.NonPreempt,
		RelatedHow: request.Next, RelatedTo: id}); err != nil {
		t.Fatalf("same-shard NEXT relation: %v", err)
	}
	e.Run(40)
	app.mu.Lock()
	started := map[request.ID]bool{}
	for _, st := range app.starts {
		started[st.id] = true
	}
	app.mu.Unlock()
	if len(started) != 3 {
		t.Fatalf("started = %v, want all 3 requests (gang child committed and run)", started)
	}
	if !started[child] {
		t.Fatalf("cross-shard gang child %d never started; starts = %v", child, started)
	}
	mustCheck(t, f)
}

func TestDoneReleasesOnOwningShard(t *testing.T) {
	e, f := newTestFederation(3)
	app := &testApp{}
	sess := f.Connect(app)
	id, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 4, Duration: math.Inf(1), Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(5)
	if len(app.starts) != 1 {
		t.Fatalf("starts = %v, want 1", app.starts)
	}
	if err := sess.Done(id, nil); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	// All 8 beta nodes are available again: a second app can take them.
	app2 := &testApp{}
	sess2 := f.Connect(app2)
	if _, err := sess2.Request(rms.RequestSpec{Cluster: cB, N: 8, Duration: 10, Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(20)
	if len(app2.starts) != 1 || len(app2.starts[0].ids) != 8 {
		t.Fatalf("second app starts = %v, want one 8-node start", app2.starts)
	}
}

func TestDisconnectTearsDownAllShards(t *testing.T) {
	e, f := newTestFederation(3)
	sess := f.Connect(&testApp{})
	if _, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(2)
	sess.Disconnect()
	e.Run(4)
	for i := 0; i < f.NumShards(); i++ {
		if n := len(f.Shard(i).Scheduler().Apps()); n != 0 {
			t.Errorf("shard %d still has %d apps after Disconnect", i, n)
		}
	}
	if _, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("request on a disconnected session should error")
	}
}

func TestShardKillPropagates(t *testing.T) {
	e := sim.NewEngine()
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 8},
		Shards:          2,
		ReschedInterval: 1,
		GracePeriod:     5,
		Clock:           clock.SimClock{E: e},
	})
	// A well-behaved app holding resources on the other shard.
	bystander := &testApp{}
	bsess := f.Connect(bystander)
	if _, err := bsess.Request(rms.RequestSpec{Cluster: cB, N: 2, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}

	// The stealer grabs preemptible nodes on shard A and never releases
	// them when a competitor shrinks its grant (§A.6).
	stealer := &testApp{}
	ssess := f.Connect(stealer)
	if _, err := ssess.Request(rms.RequestSpec{Cluster: cA, N: 8, Duration: math.Inf(1), Type: request.Preempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	if len(stealer.starts) != 1 {
		t.Fatalf("stealer starts = %v, want 1", stealer.starts)
	}
	// A competitor's non-preemptible request shrinks the stealer's grant;
	// the stealer ignores the new views and keeps all 8 nodes.
	comp := &testApp{}
	csess := f.Connect(comp)
	if _, err := csess.Request(rms.RequestSpec{Cluster: cA, N: 4, Duration: math.Inf(1), Type: request.NonPreempt}); err != nil {
		t.Fatal(err)
	}
	e.Run(30)

	stealer.mu.Lock()
	killed := stealer.killed
	stealer.mu.Unlock()
	if killed == "" {
		t.Fatal("stealer was not killed")
	}
	// The kill tore the stealer down on BOTH shards.
	for i := 0; i < f.NumShards(); i++ {
		for _, app := range f.Shard(i).Scheduler().Apps() {
			if app.ID == ssess.AppID() {
				t.Errorf("killed app %d still registered on shard %d", app.ID, i)
			}
		}
	}
	if _, err := ssess.Request(rms.RequestSpec{Cluster: cB, N: 1, Duration: 1, Type: request.NonPreempt}); err == nil {
		t.Error("request on a killed session should error")
	}
	// The bystander survived.
	bystander.mu.Lock()
	bkilled := bystander.killed
	bystander.mu.Unlock()
	if bkilled != "" {
		t.Errorf("bystander was killed: %s", bkilled)
	}
}

func TestPerShardMetricsAggregate(t *testing.T) {
	e := sim.NewEngine()
	var recs []*metrics.Recorder
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 8, cB: 8},
		Shards:          2,
		ReschedInterval: 1,
		Clock:           clock.SimClock{E: e},
		Metrics: func(int) *metrics.Recorder {
			r := metrics.NewRecorder()
			recs = append(recs, r)
			return r
		},
	})
	if len(recs) != 2 {
		t.Fatalf("metrics factory called %d times, want 2", len(recs))
	}
	sess := f.Connect(&testApp{})
	idA, err := sess.Request(rms.RequestSpec{Cluster: cA, N: 2, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := sess.Request(rms.RequestSpec{Cluster: cB, N: 3, Duration: 100, Type: request.NonPreempt})
	if err != nil {
		t.Fatal(err)
	}
	_ = idA
	_ = idB
	e.Run(200)
	agg := metrics.NewAggregate(recs...)
	got := agg.Area(sess.AppID(), 200)
	want := 2*100.0 + 3*100.0
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("aggregated area = %v, want %v", got, want)
	}
}

// TestConcurrentRealClock exercises the real-clock path: shards run
// concurrently behind their own locks while many sessions issue
// request/done cycles in parallel. Run with -race.
func TestConcurrentRealClock(t *testing.T) {
	f := New(Config{
		Clusters:        map[view.ClusterID]int{cA: 64, cB: 64, cC: 64},
		Shards:          3,
		ReschedInterval: 0.001,
		Clock:           clock.NewRealClock(),
	})
	clusters := []view.ClusterID{cA, cB, cC}
	const sessions = 6
	const opsPer = 50
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		app := &testApp{}
		sess := f.Connect(app)
		cid := clusters[i%len(clusters)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsPer; j++ {
				id, err := sess.Request(rms.RequestSpec{Cluster: cid, N: 1, Duration: math.Inf(1), Type: request.Preempt})
				if err != nil {
					errs <- fmt.Errorf("request: %w", err)
					return
				}
				if err := sess.Done(id, nil); err != nil {
					errs <- fmt.Errorf("done: %w", err)
					return
				}
			}
			sess.Disconnect()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
