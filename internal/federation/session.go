package federation

import (
	"fmt"
	"sync"

	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/view"
)

// shardReq locates a request on its owning shard.
type shardReq struct {
	shard int
	id    request.ID // shard-local request ID
}

// Session is one application's connection to the federation. It satisfies
// the same application-side surface as *rms.Session (AppID, Request, Done,
// Disconnect), so applications and the transport layer use the two
// interchangeably.
//
// Locking discipline: sess.mu protects the routing tables and view state
// and is never held while calling into a shard or into the application
// handler. Shard calls may synchronously flush notifications back into the
// shardHandler on the same goroutine, and application handlers may
// synchronously call back into the session — both safe because no session
// lock is held at those points. The one sanctioned nesting is shard lock →
// sess.mu, inside the RequestObserved observe hook and inside handler
// fan-in; no code path acquires them in the opposite order.
type Session struct {
	f  *Federator
	h  rms.AppHandler
	id int

	mu   sync.Mutex
	subs []*rms.Session // per-shard sub-sessions, indexed by shard
	// toLocal / fromLocal translate between federated and shard-local
	// request IDs. Entries live for the session's lifetime (pruning them on
	// finish is a ROADMAP open item).
	toLocal   map[request.ID]shardReq
	fromLocal []map[request.ID]request.ID
	killed    bool

	// shardViews holds the latest views pushed by each shard; merged pushes
	// are serialized by the delivering/viewsDirty pair so a slow handler
	// never observes an older merge after a newer one.
	shardViews [][2]view.View
	viewsDirty bool
	delivering bool
}

// AppID returns the federated application ID (identical on every shard).
func (s *Session) AppID() int { return s.id }

// Request routes the request() operation to the shard owning the target
// cluster and returns its federated request ID.
func (s *Session) Request(spec rms.RequestSpec) (request.ID, error) {
	shard, ok := s.f.owner[spec.Cluster]
	if !ok {
		return 0, fmt.Errorf("rms: unknown cluster %q", spec.Cluster)
	}

	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return 0, fmt.Errorf("rms: session was terminated")
	}
	sub := s.subs[shard]
	local := spec
	if spec.RelatedHow != request.Free {
		sr, ok := s.toLocal[spec.RelatedTo]
		if !ok {
			s.mu.Unlock()
			return 0, fmt.Errorf("rms: related request %d not found", spec.RelatedTo)
		}
		if sr.shard != shard {
			s.mu.Unlock()
			return 0, fmt.Errorf("federation: request targets shard %d but relates to request %d on shard %d (cross-shard relations are not supported)",
				shard, spec.RelatedTo, sr.shard)
		}
		local.RelatedTo = sr.id
	}
	s.mu.Unlock()

	fid := s.f.nextRequestID()
	// observe runs under the shard's lock, before any scheduling round can
	// start the request, so OnStart always finds the mapping.
	_, err := sub.RequestObserved(local, func(lid request.ID) {
		s.mu.Lock()
		s.toLocal[fid] = shardReq{shard: shard, id: lid}
		s.fromLocal[shard][lid] = fid
		s.mu.Unlock()
	})
	if err != nil {
		return 0, err
	}
	return fid, nil
}

// Done routes the done() operation to the shard owning the request.
func (s *Session) Done(id request.ID, released []int) error {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return fmt.Errorf("rms: session was terminated")
	}
	sr, ok := s.toLocal[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("rms: request %d not found", id)
	}
	sub := s.subs[sr.shard]
	s.mu.Unlock()
	return sub.Done(sr.id, released)
}

// Disconnect ends the session cleanly on every shard.
func (s *Session) Disconnect() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	subs := append([]*rms.Session(nil), s.subs...)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.Disconnect()
	}
}

// shardHandler is the per-(session, shard) rms.AppHandler: it fans shard
// notifications back into the federated session.
type shardHandler struct {
	sess  *Session
	shard int
}

// OnViews merges the shard's fresh views with the latest views of every
// other shard and pushes the federated result. Deliveries are serialized
// per session: if a push arrives while another is being delivered (possible
// under clock.RealClock where shards run concurrently, or when a handler
// re-enters), it only marks the state dirty and the active deliverer loops.
func (h *shardHandler) OnViews(np, p view.View) {
	s := h.sess
	s.mu.Lock()
	s.shardViews[h.shard] = [2]view.View{np, p}
	s.viewsDirty = true
	if s.delivering {
		s.mu.Unlock()
		return
	}
	s.delivering = true
	for s.viewsDirty {
		s.viewsDirty = false
		mnp, mp := s.mergedLocked()
		s.mu.Unlock()
		s.h.OnViews(mnp, mp)
		s.mu.Lock()
	}
	s.delivering = false
	s.mu.Unlock()
}

// mergedLocked builds the federated views from the latest per-shard views.
// Shard cluster sets are disjoint, so merging is plain map union. With a
// single shard the shard's views are forwarded as-is, keeping a 1-shard
// federation byte-identical to a single RMS.
func (s *Session) mergedLocked() (np, p view.View) {
	if len(s.shardViews) == 1 {
		v := s.shardViews[0]
		return v[0], v[1]
	}
	np, p = view.New(), view.New()
	for _, sv := range s.shardViews {
		for cid, f := range sv[0] {
			np[cid] = f
		}
		for cid, f := range sv[1] {
			p[cid] = f
		}
	}
	return np, p
}

// OnStart translates the shard-local request ID back to its federated ID.
func (h *shardHandler) OnStart(id request.ID, nodeIDs []int) {
	s := h.sess
	s.mu.Lock()
	fid, ok := s.fromLocal[h.shard][id]
	s.mu.Unlock()
	if !ok {
		// RequestObserved registers the mapping under the shard lock before
		// any round can start the request; a miss is a bug, not a race.
		panic(fmt.Sprintf("federation: shard %d started unknown request %d for app %d", h.shard, id, s.id))
	}
	s.h.OnStart(fid, nodeIDs)
}

// OnKill propagates a shard-side protocol-violation kill (§3.1.4) to the
// whole federated session: the remaining shard sub-sessions are
// disconnected and the application sees a single OnKill.
func (h *shardHandler) OnKill(reason string) {
	s := h.sess
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	others := make([]*rms.Session, 0, len(s.subs)-1)
	for i, sub := range s.subs {
		if i != h.shard && sub != nil {
			others = append(others, sub)
		}
	}
	s.mu.Unlock()
	for _, sub := range others {
		sub.Disconnect()
	}
	s.h.OnKill(reason)
}
