package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"coormv2/internal/obs"
)

// Report is the single source of truth for one experiment's results: the
// text table and the JSON export are two renderings of the same struct, so
// they can never drift apart. The chaos/nodechaos/rebalance experiments in
// cmd/coorm-exp build Reports; `-report json` emits Report.JSON, the
// default emits Report.Text.
type Report struct {
	// Name identifies the experiment ("chaos", "nodechaos", "rebalance").
	Name string `json:"name"`
	// Notes are free-form preamble lines (trace summary, topology).
	Notes []string `json:"notes,omitempty"`
	// Header and Rows are the result table, column-aligned with Header.
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Obs is the observability snapshot of the experiment's baseline run
	// (first row): latency histograms, counters, and the structured event
	// ring, encoded exactly as coormd's /debug/obs endpoint encodes them.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Text renders the report as the classic gnuplot-friendly output: notes,
// then the aligned table.
func (r *Report) Text() string {
	var b strings.Builder
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	b.WriteString(FormatTable(r.Header, r.Rows))
	return b.String()
}

// JSON renders the report as indented, key-sorted JSON (encoding/json
// sorts map keys, and every slice order here is deterministic), terminated
// by a newline.
func (r *Report) JSON() ([]byte, error) {
	js, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding report %q: %w", r.Name, err)
	}
	return append(js, '\n'), nil
}
