package experiments

import (
	"reflect"
	"strconv"
	"testing"

	"coormv2/internal/apps"
	"coormv2/internal/core"
	"coormv2/internal/stats"
	"coormv2/internal/workload"
)

// A 1-shard federation must be indistinguishable from a single RMS: same
// federated/single application and request ID sequences, same event
// ordering on the shared virtual clock, same schedules, same metrics. The
// tests below run the existing experiment scenarios both ways and require
// the results — including the simulator event count, the strictest
// available proxy for "same schedule" — to match exactly, and the
// figure-pipeline tables rendered from them to match byte for byte.

func diffConfigs() map[string]ScenarioConfig {
	return map[string]ScenarioConfig{
		"dynamic+psa": {
			Seed: 1, Steps: 40, Smax: 30 * 1024, Overcommit: 1.5,
			Mode: apps.NEADynamic, PSATaskDurations: []float64{60},
		},
		"static": {
			Seed: 2, Steps: 40, Smax: 30 * 1024, Overcommit: 1,
			Mode: apps.NEAStatic,
		},
		"announced+2psas": {
			Seed: 3, Steps: 40, Smax: 30 * 1024, Overcommit: 1.25,
			Mode: apps.NEADynamic, AnnounceInterval: 30,
			PSATaskDurations: []float64{90, 12},
			Policy:           core.StrictEquiPartition,
		},
	}
}

func TestOneShardFederationMatchesSingleRMSScenarios(t *testing.T) {
	for name, cfg := range diffConfigs() {
		t.Run(name, func(t *testing.T) {
			single, err := RunScenario(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fedCfg := cfg
			fedCfg.Shards = 1
			fed, err := RunScenario(fedCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(single, fed) {
				t.Errorf("federated result diverges from single RMS:\nsingle: %+v\nfed:    %+v", single, fed)
			}
			// The figure pipeline renders from these results; byte-compare
			// the rendered rows as the pipeline would emit them.
			if s, f := scenarioTable(single), scenarioTable(fed); s != f {
				t.Errorf("figure table diverges:\nsingle:\n%s\nfed:\n%s", s, f)
			}
		})
	}
}

// scenarioTable renders a ScenarioResult the way cmd/coorm-exp renders
// figure rows (FormatTable over formatted floats).
func scenarioTable(r *ScenarioResult) string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }
	row := []string{
		strconv.Itoa(r.Nodes), strconv.Itoa(r.Neq),
		g(r.AMRArea), g(r.AMRRuntime), g(r.AMRPreAllocArea),
		g(r.UsedFraction), g(r.Makespan), strconv.FormatInt(r.Events, 10),
	}
	header := []string{"nodes", "neq", "amr-area", "amr-runtime",
		"prealloc-area", "used", "makespan", "events"}
	for i := range r.PSAArea {
		row = append(row, g(r.PSAArea[i]), g(r.PSAWaste[i]))
		header = append(header, "psa"+strconv.Itoa(i)+"-area", "psa"+strconv.Itoa(i)+"-waste")
	}
	return FormatTable(header, [][]string{row})
}

func TestOneShardFederationMatchesSingleRMSReplay(t *testing.T) {
	jobs := workload.Synthetic(stats.NewRand(7), workload.SyntheticConfig{
		Jobs: 40, MaxNodes: 16, MeanInterArr: 120, MeanRuntime: 900,
		PowerOfTwoBias: 0.5,
	})
	for _, fill := range []bool{false, true} {
		name := "rigid"
		if fill {
			name = "rigid+psa"
		}
		t.Run(name, func(t *testing.T) {
			single, err := RunReplay(ReplayConfig{Jobs: jobs, Nodes: 32, FillWithPSA: fill, PSATaskDur: 120})
			if err != nil {
				t.Fatal(err)
			}
			fed, err := RunReplay(ReplayConfig{Jobs: jobs, Nodes: 32, FillWithPSA: fill, PSATaskDur: 120, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(single, fed) {
				t.Errorf("federated replay diverges:\nsingle: %+v\nfed:    %+v", single, fed)
			}
		})
	}
}
