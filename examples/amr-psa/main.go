// amr-psa: the evaluation scenario of §5.2 as a runnable program — one
// synthetic AMR application (non-predictably evolving, sure execution) and
// one parameter-sweep application on a simulated cluster, with the AMR
// scheduled both statically and dynamically so the CooRMv2 gain is visible.
//
// Run with: go run ./examples/amr-psa [-overcommit 2] [-announce 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"coormv2/internal/apps"
	"coormv2/internal/experiments"
)

func main() {
	var (
		overcommit = flag.Float64("overcommit", 2, "pre-allocation / n_eq ratio (§5.1.1)")
		announce   = flag.Float64("announce", 0, "announce interval in seconds (0 = spontaneous updates)")
		seed       = flag.Int64("seed", 1, "AMR profile seed")
		steps      = flag.Int("steps", 200, "AMR profile length (paper: 1000)")
		taskDur    = flag.Float64("task", 600, "PSA task duration d_task in seconds")
	)
	flag.Parse()

	base := experiments.ScenarioConfig{
		Seed: *seed, Steps: *steps,
		TargetEff: 0.75, Overcommit: *overcommit,
		AnnounceInterval: *announce,
		PSATaskDurations: []float64{*taskDur},
	}

	fmt.Printf("AMR + PSA on one cluster, overcommit %.2g, announce %gs, d_task %gs\n\n",
		*overcommit, *announce, *taskDur)

	type outcome struct {
		name string
		res  *experiments.ScenarioResult
	}
	var results []outcome
	for _, mode := range []struct {
		name string
		m    apps.NEAMode
	}{
		{"static (baseline: AMR holds its whole pre-allocation)", apps.NEAStatic},
		{"dynamic (CooRMv2: AMR allocates only what each step needs)", apps.NEADynamic},
	} {
		cfg := base
		cfg.Mode = mode.m
		res, err := experiments.RunScenario(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amr-psa: %v\n", err)
			os.Exit(1)
		}
		results = append(results, outcome{mode.name, res})
	}

	for _, o := range results {
		r := o.res
		fmt.Printf("%s\n", o.name)
		fmt.Printf("  cluster: %d nodes (n_eq = %d)\n", r.Nodes, r.Neq)
		fmt.Printf("  AMR consumed:   %12.0f node·s over %0.f s\n", r.AMRArea, r.AMRRuntime)
		fmt.Printf("  PSA useful:     %12.0f node·s (waste %0.f node·s)\n",
			r.PSAArea[0]-r.PSAWaste[0], r.PSAWaste[0])
		fmt.Printf("  used resources: %11.2f%%\n\n", 100*r.UsedFraction)
	}

	stat, dyn := results[0].res, results[1].res
	if dyn.AMRArea < stat.AMRArea {
		fmt.Printf("CooRMv2 saves the AMR %.0f node·s (%.1fx) versus the static allocation;\n",
			stat.AMRArea-dyn.AMRArea, stat.AMRArea/dyn.AMRArea)
		fmt.Println("the freed resources ran PSA tasks instead of idling inside the reservation.")
	}
}
