package core

import (
	"coormv2/internal/request"
	"coormv2/internal/view"
)

// toView implements Algorithm 1 (§A.4.1). It generates the view occupied by
// the *fixed* requests of the set: requests that have started, or that are
// constrained (via NEXT/COALLOC chains) to a fixed request and whose start
// time is therefore no longer the RMS's to choose.
//
// As a side effect it sets the ScheduledAt, NAlloc and Fixed attributes of
// the requests it visits and clears Fixed on all the others.
//
// If vi is non-nil the generated allocations are limited by the resources
// available in vi (used for preemptible requests, whose NAlloc may be
// smaller than N); otherwise NAlloc = N.
//
// The returned view may be nil when no request is fixed; a nil View is
// valid for every read operation.
func toView(rs *request.Set, vi view.View, now float64) view.View {
	return toViewScratch(rs, vi, now, &scratch{})
}

// toViewScratch is toView with caller-provided scratch buffers; the
// scheduler threads one scratch through all the rounds it runs.
func toViewScratch(rs *request.Set, vi view.View, now float64, sc *scratch) view.View {
	var vo view.View

	// Initialization: clear the fixed flag of every request (Alg. 1 line 2).
	for _, r := range rs.All() {
		r.Fixed = false
	}

	q := &sc.q
	q.reset()

	// First, add started requests to the queue (lines 4–5).
	for _, r := range rs.All() {
		if r.Started() {
			q.push(r)
		}
	}

	// Next, process requests in the queue (lines 6–24). Each request is
	// enqueued at most once: started requests are enqueued above, and a
	// pending request is enqueued only by its single parent.
	for !q.empty() {
		r := q.pop()

		// Compute the start time this request is pinned to. A started
		// request is pinned to its actual start time regardless of its
		// constraint (its constraint was honoured when it was started);
		// a not-yet-started descendant derives its time from its parent.
		switch {
		case r.Started():
			r.ScheduledAt = r.StartedAt
		case r.RelatedHow == request.Next:
			r.ScheduledAt = r.RelatedTo.ScheduledAt + r.RelatedTo.Duration
		case r.RelatedHow == request.Coalloc:
			r.ScheduledAt = r.RelatedTo.ScheduledAt
		default:
			// A FREE, unstarted request cannot be fixed; skip it
			// (Alg. 1 line 16: "constraint not implemented" guard).
			continue
		}

		if vi == nil {
			r.NAlloc = r.N
		} else {
			t0, t1 := allocWindow(r, now)
			r.NAlloc = vi.Alloc(r.Cluster, r.N, t0, t1-t0)
		}
		r.Fixed = true
		if vo == nil {
			vo = view.New()
		}
		vo.MutAddRect(r.Cluster, r.ScheduledAt, r.Duration, r.NAlloc)

		// Enqueue pending children of this request (lines 23–24); started
		// children are already in the queue from the initialization pass.
		rs.EachChild(r, func(rc *request.Request) {
			if !rc.Started() {
				q.push(rc)
			}
		})
	}
	return vo
}
