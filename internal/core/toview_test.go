package core

import (
	"math"
	"testing"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

func newReq(id request.ID, n int, dur float64, typ request.Type, how request.Relation, parent *request.Request) *request.Request {
	return request.New(id, 1, "c0", n, dur, typ, how, parent)
}

func TestToViewEmptySet(t *testing.T) {
	rs := request.NewSet()
	v := toView(rs, nil, 0)
	if !v.Get("c0").IsZero() {
		t.Error("empty set should generate empty view")
	}
}

func TestToViewUnstartedRequestsIgnored(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	rs.Add(r)
	v := toView(rs, nil, 0)
	if !v.Get("c0").IsZero() {
		t.Error("unstarted FREE request should not be fixed")
	}
	if r.Fixed {
		t.Error("unstarted FREE request must not be marked fixed")
	}
}

func TestToViewStartedRequest(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	r.StartedAt = 10
	rs.Add(r)
	v := toView(rs, nil, 0)
	if !r.Fixed {
		t.Error("started request must be fixed")
	}
	if r.ScheduledAt != 10 {
		t.Errorf("ScheduledAt = %v, want 10 (= StartedAt)", r.ScheduledAt)
	}
	if r.NAlloc != 4 {
		t.Errorf("NAlloc = %d, want 4 (no availability limit)", r.NAlloc)
	}
	f := v.Get("c0")
	if f.Value(10) != 4 || f.Value(109) != 4 || f.Value(110) != 0 || f.Value(5) != 0 {
		t.Errorf("generated view wrong: %v", f)
	}
}

func TestToViewNextChainFixed(t *testing.T) {
	// A started request with a pending NEXT child: the child's start time is
	// pinned to the parent's end, and it becomes fixed (this is what makes
	// updates inside a pre-allocation guaranteed).
	rs := request.NewSet()
	parent := newReq(1, 4, 50, request.NonPreempt, request.Free, nil)
	parent.StartedAt = 0
	child := newReq(2, 6, 100, request.NonPreempt, request.Next, parent)
	grand := newReq(3, 2, 30, request.NonPreempt, request.Coalloc, child)
	rs.Add(parent)
	rs.Add(child)
	rs.Add(grand)

	v := toView(rs, nil, 0)
	if !child.Fixed || !grand.Fixed {
		t.Fatal("descendants of a started request must be fixed")
	}
	if child.ScheduledAt != 50 {
		t.Errorf("child ScheduledAt = %v, want 50", child.ScheduledAt)
	}
	if grand.ScheduledAt != 50 {
		t.Errorf("grand (COALLOC on child) ScheduledAt = %v, want 50", grand.ScheduledAt)
	}
	f := v.Get("c0")
	if f.Value(25) != 4 {
		t.Errorf("parent occupancy wrong: %d", f.Value(25))
	}
	if f.Value(60) != 8 { // child 6 + grand 2
		t.Errorf("child+grand occupancy = %d, want 8", f.Value(60))
	}
}

func TestToViewAllocLimitedByAvailability(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 10, 100, request.Preempt, request.Free, nil)
	r.StartedAt = 0
	rs.Add(r)
	avail := view.New().AddRect("c0", 0, 1000, 6)
	toView(rs, avail, 0)
	if r.NAlloc != 6 {
		t.Errorf("NAlloc = %d, want 6 (limited by availability)", r.NAlloc)
	}
}

func TestToViewAllocWindowClampedToNow(t *testing.T) {
	// A preemptible request started long ago must have its NAlloc computed
	// from current+future availability only, not from reconstructed history.
	rs := request.NewSet()
	r := newReq(1, 10, math.Inf(1), request.Preempt, request.Free, nil)
	r.StartedAt = 0
	rs.Add(r)
	// Availability: 2 nodes in the past [0,100), 8 nodes from 100 onward.
	avail := view.New().AddRect("c0", 0, 100, 2).AddRect("c0", 100, math.Inf(1), 8)
	toView(rs, avail, 100)
	if r.NAlloc != 8 {
		t.Errorf("NAlloc = %d, want 8 (past availability must not matter)", r.NAlloc)
	}
}

func TestToViewShortenedDuration(t *testing.T) {
	// done() shortens a request's duration; the generated view must follow.
	rs := request.NewSet()
	r := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	r.StartedAt = 0
	rs.Add(r)
	r.Duration = 30 // done() at t=30
	v := toView(rs, nil, 30)
	f := v.Get("c0")
	if f.Value(29) != 4 || f.Value(30) != 0 {
		t.Errorf("shortened request occupancy wrong: %v", f)
	}
}

func TestToViewClearsStaleFixed(t *testing.T) {
	rs := request.NewSet()
	r := newReq(1, 4, 100, request.NonPreempt, request.Free, nil)
	r.Fixed = true // stale from a previous round
	rs.Add(r)
	toView(rs, nil, 0)
	if r.Fixed {
		t.Error("toView must clear Fixed on non-started requests")
	}
}

func TestToViewMultipleStartedRequests(t *testing.T) {
	rs := request.NewSet()
	a := newReq(1, 3, 100, request.NonPreempt, request.Free, nil)
	a.StartedAt = 0
	b := newReq(2, 5, 50, request.NonPreempt, request.Free, nil)
	b.StartedAt = 20
	rs.Add(a)
	rs.Add(b)
	v := toView(rs, nil, 25)
	f := v.Get("c0")
	if f.Value(10) != 3 || f.Value(30) != 8 || f.Value(80) != 3 || f.Value(150) != 0 {
		t.Errorf("summed occupancy wrong: %v", f)
	}
}
