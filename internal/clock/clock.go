// Package clock abstracts time for the RMS so that the same scheduling code
// runs against the discrete-event simulator (evaluation, §5) and the wall
// clock (the real-life prototype daemon, §3.2).
package clock

import (
	"sync"
	"time"

	"coormv2/internal/sim"
)

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the callback; it reports whether it was still pending.
	Stop() bool
}

// Clock provides the current time (seconds since an arbitrary epoch) and
// one-shot callbacks.
type Clock interface {
	Now() float64
	// AfterFunc schedules fn to run d seconds from now.
	AfterFunc(d float64, name string, fn func()) Timer
}

// SimClock adapts a sim.Engine to the Clock interface.
type SimClock struct {
	E *sim.Engine
}

// Now returns the engine's virtual time.
func (c SimClock) Now() float64 { return c.E.Now() }

// AfterFunc schedules fn on the engine.
func (c SimClock) AfterFunc(d float64, name string, fn func()) Timer {
	return c.E.After(d, name, fn)
}

// RealClock implements Clock using the wall clock. The epoch is the moment
// the clock is created, so times stay small and readable in logs.
type RealClock struct {
	epoch time.Time
}

// NewRealClock returns a wall clock with its epoch at the current instant.
func NewRealClock() *RealClock {
	return &RealClock{epoch: time.Now()}
}

// Now returns the seconds elapsed since the clock's epoch.
func (c *RealClock) Now() float64 {
	return time.Since(c.epoch).Seconds()
}

type realTimer struct {
	mu    sync.Mutex
	t     *time.Timer
	fired bool
}

func (rt *realTimer) Stop() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.fired {
		return false
	}
	return rt.t.Stop()
}

// AfterFunc schedules fn on a real timer. The name is ignored (it exists
// for simulation traces).
func (c *RealClock) AfterFunc(d float64, _ string, fn func()) Timer {
	rt := &realTimer{}
	if d < 0 {
		d = 0
	}
	rt.t = time.AfterFunc(time.Duration(d*float64(time.Second)), func() {
		rt.mu.Lock()
		rt.fired = true
		rt.mu.Unlock()
		fn()
	})
	return rt
}
