// Package sim provides the discrete-event simulation engine used by the
// evaluation (§5): "we have first written a real-life prototype RMS and
// synthetic applications. Then, we have replaced remote calls with direct
// function calls and calls to sleep() with simulator events."
//
// The engine is a deterministic event loop over virtual time: events fire
// in (time, sequence) order, so two runs with the same inputs produce
// identical traces.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback.
type event struct {
	at   float64
	seq  int64
	name string
	fn   func()
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer handles a scheduled event; Stop cancels it if it has not fired.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It returns true if the event had not fired yet.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

// Engine is a discrete-event simulation engine with a virtual clock.
// It is not safe for concurrent use: simulated processes are cooperative
// callbacks, which is exactly what makes runs deterministic.
type Engine struct {
	now     float64
	seq     int64
	events  eventHeap
	stopped bool
	// processed counts fired events, for diagnostics and runaway detection.
	processed int64
	// observe, when set, sees every fired event just before its callback
	// runs (time, name). The chaos harness uses it to fingerprint the full
	// event stream: two runs are identical iff their observers see the same
	// sequence.
	observe func(at float64, name string)
}

// SetObserver installs (or, with nil, removes) the fired-event observer.
func (e *Engine) SetObserver(fn func(at float64, name string)) { e.observe = fn }

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() int64 { return e.processed }

// Pending returns the number of events still queued (including cancelled
// ones not yet drained).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it is always a logic error in a simulated process.
func (e *Engine) At(t float64, name string, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now=%v", name, t, e.now))
	}
	if math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling %q at NaN", name))
	}
	ev := &event{at: t, seq: e.seq, name: name, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, name string, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return e.At(e.now+d, name, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in order until the clock reaches `until` (use
// math.Inf(1) for no horizon), until Stop is called, or — with an infinite
// horizon — until the queue is empty. With a finite horizon the clock is
// advanced to `until` even if the queue empties first, so callers can step
// simulations whose processes keep lazy (event-free) state, like the PSA's
// task bookkeeping. It returns the number of events processed by this call.
func (e *Engine) Run(until float64) int64 {
	e.stopped = false
	var n int64
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		if ev.at > until {
			// Put it back for a later Run call and stop here.
			heap.Push(&e.events, ev)
			e.now = until
			return n
		}
		e.now = ev.at
		fn := ev.fn
		ev.dead = true
		ev.fn = nil
		e.processed++
		n++
		if e.observe != nil {
			e.observe(ev.at, ev.name)
		}
		fn()
	}
	if !e.stopped && !math.IsInf(until, 1) && e.now < until {
		e.now = until
	}
	return n
}

// RunAll processes events until none remain.
func (e *Engine) RunAll() int64 { return e.Run(math.Inf(1)) }
