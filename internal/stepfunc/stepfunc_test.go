package stepfunc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroAndConstant(t *testing.T) {
	z := Zero()
	if !z.IsZero() || z.Value(0) != 0 || z.Value(1e9) != 0 {
		t.Error("Zero() is not identically zero")
	}
	c := Constant(5)
	for _, tt := range []float64{0, 0.5, 100, 1e12} {
		if c.Value(tt) != 5 {
			t.Errorf("Constant(5).Value(%v) = %d", tt, c.Value(tt))
		}
	}
	if !Constant(0).IsZero() {
		t.Error("Constant(0) should be zero")
	}
}

func TestFromStepsPaperExample(t *testing.T) {
	// V[a] = [(3600, 4), (3600, 3)] from §A.3:
	// 4 nodes on [0,3600), 3 on [3600,7200), 0 after.
	f := FromSteps(Step{3600, 4}, Step{3600, 3})
	cases := []struct {
		t    float64
		want int
	}{
		{0, 4}, {1800, 4}, {3599.9, 4},
		{3600, 3}, {7199, 3},
		{7200, 0}, {1e9, 0},
	}
	for _, c := range cases {
		if got := f.Value(c.t); got != c.want {
			t.Errorf("Value(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestFromStepsInfinite(t *testing.T) {
	// V[b] = [(inf, 6)]: 6 nodes always available.
	f := FromSteps(Step{Inf, 6})
	if f.Value(0) != 6 || f.Value(1e15) != 6 {
		t.Error("infinite step not honored")
	}
}

func TestFromStepsZeroDurationSkipped(t *testing.T) {
	f := FromSteps(Step{0, 99}, Step{10, 2})
	if f.Value(0) != 2 {
		t.Errorf("zero-duration step should be skipped, got %d", f.Value(0))
	}
}

func TestRect(t *testing.T) {
	r := Rect(10, 5, 3)
	checks := []struct {
		t    float64
		want int
	}{{0, 0}, {9.99, 0}, {10, 3}, {14.9, 3}, {15, 0}, {100, 0}}
	for _, c := range checks {
		if got := r.Value(c.t); got != c.want {
			t.Errorf("Rect.Value(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if !Rect(5, 0, 3).IsZero() || !Rect(5, 3, 0).IsZero() {
		t.Error("degenerate rects should be zero")
	}
	ri := Rect(2, Inf, 7)
	if ri.Value(1) != 0 || ri.Value(2) != 7 || ri.Value(1e12) != 7 {
		t.Error("infinite rect wrong")
	}
}

func TestRectPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative start":    func() { Rect(-1, 5, 3) },
		"negative duration": func() { Rect(1, -5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAddSub(t *testing.T) {
	a := FromSteps(Step{10, 4}, Step{10, 2})
	b := FromSteps(Step{5, 1}, Step{10, 3})
	sum := a.Add(b)
	checks := []struct {
		t    float64
		want int
	}{{0, 5}, {4.9, 5}, {5, 7}, {9.9, 7}, {10, 5}, {14.9, 5}, {15, 2}, {19.9, 2}, {20, 0}}
	for _, c := range checks {
		if got := sum.Value(c.t); got != c.want {
			t.Errorf("sum.Value(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	diff := sum.Sub(b)
	if !diff.Equal(a) {
		t.Errorf("(a+b)-b != a: %v vs %v", diff, a)
	}
}

func TestMaxMin(t *testing.T) {
	a := FromSteps(Step{10, 4})
	b := FromSteps(Step{20, 2})
	mx := a.Max(b)
	mn := a.Min(b)
	if mx.Value(5) != 4 || mx.Value(15) != 2 || mx.Value(25) != 0 {
		t.Errorf("Max wrong: %v", mx)
	}
	if mn.Value(5) != 2 || mn.Value(15) != 0 || mn.Value(25) != 0 {
		t.Errorf("Min wrong: %v", mn)
	}
}

func TestClampMin(t *testing.T) {
	a := Constant(5).Sub(Constant(8)) // constant -3
	if got := a.ClampMin(0); !got.IsZero() {
		t.Errorf("ClampMin(0) of negative = %v", got)
	}
}

func TestAddRect(t *testing.T) {
	f := Zero().AddRect(0, 10, 3).AddRect(5, 10, 2)
	if f.Value(0) != 3 || f.Value(5) != 5 || f.Value(10) != 2 || f.Value(15) != 0 {
		t.Errorf("AddRect stack wrong: %v", f)
	}
}

func TestMinOn(t *testing.T) {
	f := FromSteps(Step{10, 4}, Step{10, 1}, Step{10, 6})
	cases := []struct {
		t0, t1 float64
		want   int
	}{
		{0, 10, 4},
		{0, 10.1, 1},
		{10, 20, 1},
		{20, 30, 6},
		{20, Inf, 0}, // after t=30 the function is 0
		{25, 28, 6},
		{0, Inf, 0},
	}
	for _, c := range cases {
		if got := f.MinOn(c.t0, c.t1); got != c.want {
			t.Errorf("MinOn(%v,%v) = %d, want %d", c.t0, c.t1, got, c.want)
		}
	}
	if f.MinOn(5, 5) != math.MaxInt {
		t.Error("empty interval should return MaxInt")
	}
}

func TestIntegral(t *testing.T) {
	f := FromSteps(Step{10, 4}, Step{10, 2})
	if got := f.Integral(0, 20); got != 60 {
		t.Errorf("Integral full = %v, want 60", got)
	}
	if got := f.Integral(5, 15); got != 30 {
		t.Errorf("Integral partial = %v, want 30", got)
	}
	if got := f.Integral(20, 100); got != 0 {
		t.Errorf("Integral of zero tail = %v", got)
	}
	if got := f.Integral(7, 7); got != 0 {
		t.Errorf("empty interval integral = %v", got)
	}
	if got := Constant(3).Integral(0, Inf); !math.IsInf(got, 1) {
		t.Errorf("infinite integral = %v", got)
	}
	neg := Zero().Sub(Constant(3))
	if got := neg.Integral(0, Inf); !math.IsInf(got, -1) {
		t.Errorf("negative infinite integral = %v", got)
	}
}

func TestFindHoleBasics(t *testing.T) {
	// 4 nodes for [0,10), 1 node [10,20), 6 nodes [20,30), 0 after.
	f := FromSteps(Step{10, 4}, Step{10, 1}, Step{10, 6})
	cases := []struct {
		n     int
		dur   float64
		after float64
		want  float64
	}{
		{4, 10, 0, 0},     // fits right away
		{4, 11, 0, Inf},   // 11s of 4 nodes never fits: [20,31) crosses the zero tail
		{4, 10, 1, 20},    // after=1 pushes past the [0,10) window
		{1, 30, 0, Inf},   // 30s needs [0,30) but tail is 0 beyond 30 only if start>0... [0,30) works: min(4,1,6)=1 >= 1 => 0
		{6, 10, 0, 20},    // only the last window has 6
		{7, 1, 0, Inf},    // never 7 nodes
		{1, 10.1, 0, Inf}, // any 10.1 window crosses a low segment or the zero tail... [10,20.1) min=1? value on [20,20.1)=6 -> min=1 OK! so want 0? see fixups below
	}
	// Fix expectations computed by hand:
	cases[3].want = 0
	cases[6].want = 0
	for _, c := range cases {
		if got := f.FindHole(c.n, c.dur, c.after); got != c.want {
			t.Errorf("FindHole(n=%d,dur=%v,after=%v) = %v, want %v", c.n, c.dur, c.after, got, c.want)
		}
	}
}

func TestFindHoleInfiniteDuration(t *testing.T) {
	f := FromSteps(Step{10, 1}, Step{Inf, 5})
	if got := f.FindHole(5, Inf, 0); got != 10 {
		t.Errorf("FindHole inf dur = %v, want 10", got)
	}
	if got := f.FindHole(6, Inf, 0); !math.IsInf(got, 1) {
		t.Errorf("unsatisfiable inf request = %v", got)
	}
	if got := Constant(3).FindHole(3, Inf, 7.5); got != 7.5 {
		t.Errorf("constant inf = %v, want 7.5", got)
	}
}

func TestFindHoleEdgeCases(t *testing.T) {
	f := FromSteps(Step{10, 4})
	if got := f.FindHole(0, 5, 3); got != 3 {
		t.Errorf("n=0 should start immediately, got %v", got)
	}
	if got := f.FindHole(2, 0, 3); got != 3 {
		t.Errorf("dur=0 should start immediately, got %v", got)
	}
	if got := f.FindHole(2, 5, -10); got != 0 {
		t.Errorf("negative after should clamp to 0, got %v", got)
	}
	if got := Zero().FindHole(1, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("zero profile should never fit, got %v", got)
	}
}

func TestFirstBelow(t *testing.T) {
	f := FromSteps(Step{10, 4}, Step{10, 2}, Step{Inf, 5})
	if got := f.FirstBelow(3, 0); got != 10 {
		t.Errorf("FirstBelow(3) = %v, want 10", got)
	}
	if got := f.FirstBelow(5, 0); got != 0 {
		t.Errorf("FirstBelow(5) = %v, want 0 (value 4 < 5 at t=0)", got)
	}
	if got := f.FirstBelow(2, 0); !math.IsInf(got, 1) {
		t.Errorf("FirstBelow(2) = %v, want Inf", got)
	}
	if got := f.FirstBelow(3, 15); got != 15 {
		t.Errorf("FirstBelow(3, after=15) = %v, want 15", got)
	}
	if got := f.FirstBelow(3, 20); !math.IsInf(got, 1) {
		t.Errorf("FirstBelow(3, after=20) = %v, want Inf", got)
	}
}

func TestNonNegativeAndMaxValue(t *testing.T) {
	f := FromSteps(Step{10, 4}, Step{10, 2})
	if !f.NonNegative() {
		t.Error("profile should be non-negative")
	}
	if f.MaxValue() != 4 {
		t.Errorf("MaxValue = %d", f.MaxValue())
	}
	g := f.Sub(Constant(3))
	if g.NonNegative() {
		t.Error("difference should be negative somewhere")
	}
	if Zero().MaxValue() != 0 {
		t.Error("MaxValue of zero")
	}
}

func TestEqualClone(t *testing.T) {
	f := FromSteps(Step{10, 4}, Step{10, 2})
	g := f.Clone()
	if !f.Equal(g) {
		t.Error("clone not equal")
	}
	h := FromSteps(Step{10, 4}, Step{10, 3})
	if f.Equal(h) {
		t.Error("different functions reported equal")
	}
	if !Zero().Equal(Constant(0)) {
		t.Error("zero normalizations differ")
	}
}

func TestNormalizeMergesEqualValues(t *testing.T) {
	f := FromSteps(Step{10, 4}, Step{10, 4}, Step{10, 2})
	g := FromSteps(Step{20, 4}, Step{10, 2})
	if !f.Equal(g) {
		t.Errorf("adjacent equal segments not merged: %v vs %v", f, g)
	}
}

func TestTrimBefore(t *testing.T) {
	f := FromSteps(Step{10, 4}, Step{10, 2}, Step{Inf, 7})
	g := f.TrimBefore(15)
	if g.Value(0) != 2 || g.Value(14) != 2 {
		t.Errorf("trimmed history should hold the value at t: %v", g)
	}
	if g.Value(15) != 2 || g.Value(20) != 7 {
		t.Errorf("future must be preserved: %v", g)
	}
	if !f.TrimBefore(0).Equal(f) {
		t.Error("TrimBefore(0) should be identity")
	}
	if !Zero().TrimBefore(100).IsZero() {
		t.Error("TrimBefore on zero")
	}
	// Trimming exactly on a breakpoint keeps the new segment's value.
	h := f.TrimBefore(10)
	if h.Value(0) != 2 {
		t.Errorf("TrimBefore on breakpoint = %v", h)
	}
}

func TestStepsRoundTrip(t *testing.T) {
	f := FromSteps(Step{3600, 4}, Step{3600, 3})
	back := FromSteps(f.Steps()...)
	if !back.Equal(f) {
		t.Errorf("Steps round trip: %v vs %v", back, f)
	}
	zs := Zero().Steps()
	if len(zs) != 1 || zs[0].N != 0 || !math.IsInf(zs[0].Duration, 1) {
		t.Errorf("zero Steps = %v", zs)
	}
	// A function that starts above zero keeps its leading segment.
	r := Rect(5, 10, 3)
	if !FromSteps(r.Steps()...).Equal(r) {
		t.Error("Steps round trip with leading zero segment")
	}
}

func TestString(t *testing.T) {
	f := FromSteps(Step{3600, 4}, Step{3600, 3})
	want := "[(3600, 4) (3600, 3) (inf, 0)]"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := Zero().String(); got != "[(inf, 0)]" {
		t.Errorf("zero String() = %q", got)
	}
}

// randFunc builds a random step function with small integer values and
// breakpoints on a coarse grid, suitable for brute-force comparison.
func randFunc(r *rand.Rand) *StepFunc {
	f := Zero()
	for k := 0; k < r.Intn(6); k++ {
		t0 := float64(r.Intn(50))
		dur := float64(1 + r.Intn(30))
		n := r.Intn(9) - 2
		f = f.AddRect(t0, dur, n)
	}
	return f
}

func TestPropAddCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a, b := randFunc(r), randFunc(r)
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatalf("Add not commutative: %v + %v", a, b)
		}
	}
}

func TestPropSubInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b := randFunc(r), randFunc(r)
		if !a.Add(b).Sub(b).Equal(a) {
			t.Fatalf("(a+b)-b != a for %v, %v", a, b)
		}
	}
}

func TestPropValueConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b := randFunc(r), randFunc(r)
		sum, mx, mn := a.Add(b), a.Max(b), a.Min(b)
		for _, tt := range []float64{0, 0.5, 3, 10, 17.2, 49, 80, 200} {
			va, vb := a.Value(tt), b.Value(tt)
			if sum.Value(tt) != va+vb {
				t.Fatalf("sum mismatch at t=%v", tt)
			}
			wantMax, wantMin := va, vb
			if vb > va {
				wantMax = vb
			}
			if vb < va {
				wantMin = vb
			} else {
				wantMin = vb
				if va < vb {
					wantMin = va
				}
			}
			if mx.Value(tt) != wantMax {
				t.Fatalf("max mismatch at t=%v: %d vs %d", tt, mx.Value(tt), wantMax)
			}
			if mn.Value(tt) != wantMin {
				t.Fatalf("min mismatch at t=%v: %d vs %d", tt, mn.Value(tt), wantMin)
			}
		}
	}
}

func TestPropFindHoleBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		f := randFunc(r).ClampMin(0)
		n := 1 + r.Intn(5)
		dur := float64(1 + r.Intn(20))
		after := float64(r.Intn(40))
		got := f.FindHole(n, dur, after)
		// Brute force on a fine grid (0.5 steps cover all integer+0.5
		// breakpoints created by randFunc, which uses integer times).
		brute := Inf
		for ts := after; ts < 200; ts += 0.5 {
			if f.MinOn(ts, ts+dur) >= n {
				brute = ts
				break
			}
		}
		if math.IsInf(brute, 1) != math.IsInf(got, 1) {
			t.Fatalf("FindHole feasibility mismatch: got %v brute %v (f=%v n=%d dur=%v after=%v)", got, brute, f, n, dur, after)
		}
		if !math.IsInf(got, 1) {
			if got > brute {
				t.Fatalf("FindHole not earliest: got %v brute %v (f=%v n=%d dur=%v after=%v)", got, brute, f, n, dur, after)
			}
			if f.MinOn(got, got+dur) < n {
				t.Fatalf("FindHole result infeasible: ts=%v (f=%v n=%d dur=%v)", got, f, n, dur)
			}
		}
	}
}

func TestPropIntegralAdditive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		f := randFunc(r)
		a, b, c := 0.0, float64(r.Intn(50)), float64(50+r.Intn(100))
		whole := f.Integral(a, c)
		split := f.Integral(a, b) + f.Integral(b, c)
		if math.Abs(whole-split) > 1e-6 {
			t.Fatalf("integral not additive: %v vs %v (f=%v b=%v c=%v)", whole, split, f, b, c)
		}
	}
}

func TestPropQuickNormalizeAnchorsZero(t *testing.T) {
	f := func(start uint16, dur uint16, n int8) bool {
		r := Rect(float64(start), float64(dur%100)+1, int(n))
		// Invariant: defined at 0 and all breakpoints sorted.
		bps := r.Breakpoints()
		for i := 1; i < len(bps); i++ {
			if bps[i] <= bps[i-1] {
				return false
			}
		}
		return bps[0] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	f, g := Zero(), Zero()
	for k := 0; k < 50; k++ {
		f = f.AddRect(float64(r.Intn(10000)), float64(1+r.Intn(1000)), 1+r.Intn(10))
		g = g.AddRect(float64(r.Intn(10000)), float64(1+r.Intn(1000)), 1+r.Intn(10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Add(g)
	}
}

func BenchmarkFindHole(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	f := Zero()
	for k := 0; k < 100; k++ {
		f = f.AddRect(float64(r.Intn(10000)), float64(1+r.Intn(1000)), 1+r.Intn(10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.FindHole(5, 500, 0)
	}
}
