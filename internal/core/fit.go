package core

import (
	"math"

	"coormv2/internal/request"
	"coormv2/internal/view"
)

// maxFitIterations bounds the fixed-point loop of fit(). The loop converges
// because EarliestScheduleAt only moves forward over a finite set of
// breakpoints; the bound is a defence against degenerate inputs ("in the
// worst case, all requests are scheduled at infinity", §A.4.2).
const maxFitIterations = 100000

// fit implements Algorithm 2 (§A.4.2). It schedules the non-fixed requests
// of the set into the availability view vi, no earlier than t0, honouring
// the FREE / COALLOC / NEXT constraints, and returns the view their
// allocations occupy. toView must have been called on the set beforehand so
// that the Fixed flags and the fixed requests' ScheduledAt are up to date.
//
// Deviation from the paper, documented: when a constraint cannot be
// satisfied exactly and the parent request is fixed (it already started) or
// lives in another request set, the parent cannot be delayed. The paper's
// pseudo-code would re-enqueue it forever; we accept the child's later
// start time instead, which matches the protocol's behaviour (the RMS
// simply notifies the start later).
func fit(rs *request.Set, vi view.View, t0 float64) view.View {
	return fitScratch(rs, vi, t0, &scratch{})
}

// fitScratch is fit with caller-provided scratch buffers.
func fitScratch(rs *request.Set, vi view.View, t0 float64, sc *scratch) view.View {
	// Initialization (lines 1–4).
	q := &sc.q
	q.reset()
	for _, r := range rs.All() {
		if !r.Fixed {
			r.EarliestScheduleAt = t0
			if r.NotBefore > r.EarliestScheduleAt {
				r.EarliestScheduleAt = r.NotBefore
			}
			r.ScheduledAt = math.Inf(1)
		}
	}
	// First, add root requests to the queue (line 5).
	for _, r := range rs.All() {
		if rs.IsRoot(r) {
			q.push(r)
		}
	}

	findHole := func(r *request.Request, lower float64) float64 {
		after := lower
		if r.EarliestScheduleAt > after {
			after = r.EarliestScheduleAt
		}
		return vi.FindHole(r.Cluster, r.N, r.Duration, after)
	}

	// pushChildren enqueues the requests of the set constrained to r.
	pushChildren := func(r *request.Request) {
		rs.EachChild(r, func(rc *request.Request) { q.push(rc) })
	}

	for iter := 0; !q.empty() && iter < maxFitIterations; iter++ {
		r := q.pop()

		// If this is a fixed request, just add children to the queue
		// (lines 8–10).
		if r.Fixed {
			pushChildren(r)
			continue
		}

		rp := r.RelatedTo
		rpMovable := rp != nil && !rp.Fixed && rs.Contains(rp)
		r.NAlloc = r.N // default, may be overwritten (line 12)
		tBefore := r.ScheduledAt

		switch r.RelatedHow {
		case request.Free:
			if r.Type == request.Preempt {
				// Preemptible requests are never delayed, they are shrunk:
				// "due to the race between A and B, if insufficient
				// resources are available ..., the RMS cannot allocate the
				// requested node-count ... nAlloc might be smaller than n,
				// which, since preemptible requests are not guaranteed, is
				// allowed by the CooRMv2 specifications" (§A.1).
				r.ScheduledAt = t0
				if r.EarliestScheduleAt > t0 {
					r.ScheduledAt = r.EarliestScheduleAt
				}
				w0, w1 := allocWindow(r, t0)
				r.NAlloc = vi.Alloc(r.Cluster, r.N, w0, w1-w0)
			} else {
				r.ScheduledAt = findHole(r, 0)
			}

		case request.Coalloc:
			if r.Type == request.Preempt &&
				(rp.Type == request.PreAlloc || rp.Type == request.NonPreempt) {
				// A preemptible request co-allocated with a (pre-)allocation
				// snaps to it and is shrunk to the available resources
				// (lines 17–19).
				r.ScheduledAt = rp.ScheduledAt
				w0, w1 := allocWindow(r, t0)
				r.NAlloc = vi.Alloc(r.Cluster, r.N, w0, w1-w0)
			} else {
				r.ScheduledAt = findHole(r, rp.ScheduledAt)
				if r.ScheduledAt != rp.ScheduledAt && rpMovable {
					// Delay the parent until the child can be co-allocated
					// (lines 22–24).
					rp.EarliestScheduleAt = r.ScheduledAt
					q.push(rp)
				}
			}

		case request.Next:
			if r.Type == request.Preempt {
				r.ScheduledAt = rp.ScheduledAt + rp.Duration
				w0, w1 := allocWindow(r, t0)
				r.NAlloc = vi.Alloc(r.Cluster, r.N, w0, w1-w0)
			} else {
				r.ScheduledAt = findHole(r, rp.ScheduledAt+rp.Duration)
				if r.ScheduledAt != rp.ScheduledAt+rp.Duration && rpMovable {
					// Delay the parent so the child follows immediately
					// (lines 31–33).
					rp.EarliestScheduleAt = r.ScheduledAt - rp.Duration
					q.push(rp)
				}
			}
		}

		// If scheduledAt has changed, reschedule children (lines 34–35).
		if tBefore != r.ScheduledAt {
			pushChildren(r)
		}
	}

	// Schedule converged; compute the generated view (lines 36–38).
	// The returned view may be nil when nothing was scheduled; a nil View
	// is valid for every read operation.
	var vo view.View
	for _, r := range rs.All() {
		if r.Fixed {
			continue
		}
		if math.IsInf(r.ScheduledAt, 1) {
			continue // unschedulable; occupies nothing
		}
		if vo == nil {
			vo = view.New()
		}
		vo.MutAddRect(r.Cluster, r.ScheduledAt, r.Duration, r.NAlloc)
	}
	return vo
}
