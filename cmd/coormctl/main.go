// Command coormctl is a small CLI client for a coormd daemon: it submits a
// rigid job and reports its lifecycle, or watches the views the RMS pushes.
//
// Usage:
//
//	coormctl -addr 127.0.0.1:7777 run -cluster main -n 8 -d 30
//	coormctl -addr 127.0.0.1:7777 watch -for 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"coormv2/internal/request"
	"coormv2/internal/rms"
	"coormv2/internal/transport"
	"coormv2/internal/view"
)

// cliHandler prints notifications.
type cliHandler struct {
	started chan []int
	verbose bool
}

func (h *cliHandler) OnViews(np, p view.View) {
	if h.verbose {
		fmt.Printf("views: non-preemptive %s | preemptive %s\n", np, p)
	}
}

func (h *cliHandler) OnStart(id request.ID, nodeIDs []int) {
	fmt.Printf("request %d started on nodes %v\n", id, nodeIDs)
	select {
	case h.started <- nodeIDs:
	default:
	}
}

func (h *cliHandler) OnKill(reason string) {
	fmt.Printf("killed by RMS: %s\n", reason)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "daemon address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "coormctl: need a subcommand: run | watch")
		os.Exit(2)
	}
	switch args[0] {
	case "run":
		runCmd(*addr, args[1:])
	case "watch":
		watchCmd(*addr, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "coormctl: unknown subcommand %q\n", args[0])
		os.Exit(2)
	}
}

func runCmd(addr string, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cluster := fs.String("cluster", "default", "cluster to run on")
	n := fs.Int("n", 1, "node count")
	d := fs.Float64("d", 60, "duration in seconds")
	fs.Parse(args)

	h := &cliHandler{started: make(chan []int, 1)}
	c, err := transport.Dial(addr, h)
	if err != nil {
		log.Fatalf("coormctl: %v", err)
	}
	defer c.Close()
	fmt.Printf("connected as application %d\n", c.AppID())

	id, err := c.Request(rms.RequestSpec{
		Cluster: view.ClusterID(*cluster), N: *n, Duration: *d, Type: request.NonPreempt,
	})
	if err != nil {
		log.Fatalf("coormctl: request: %v", err)
	}
	fmt.Printf("submitted rigid request %d (%d nodes, %gs)\n", id, *n, *d)

	select {
	case <-h.started:
	case <-time.After(5 * time.Minute):
		log.Fatal("coormctl: timed out waiting for the allocation")
	}
	fmt.Println("running; waiting for the allocation to end...")
	time.Sleep(time.Duration(*d * float64(time.Second)))
	if err := c.Done(id, nil); err != nil {
		// The RMS may have expired the allocation already; not fatal.
		fmt.Printf("done: %v\n", err)
	}
	fmt.Println("finished")
}

func watchCmd(addr string, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	dur := fs.Float64("for", 30, "seconds to watch")
	fs.Parse(args)

	h := &cliHandler{started: make(chan []int, 1), verbose: true}
	c, err := transport.Dial(addr, h)
	if err != nil {
		log.Fatalf("coormctl: %v", err)
	}
	defer c.Close()
	fmt.Printf("connected as application %d; watching views for %gs\n", c.AppID(), *dur)
	time.Sleep(time.Duration(*dur * float64(time.Second)))
}
