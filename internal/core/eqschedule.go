package core

import (
	"sort"

	"coormv2/internal/view"
)

// PreemptPolicy selects how preemptible resources are divided among
// applications.
type PreemptPolicy uint8

const (
	// EquiPartitionFilling is the paper's default policy (§3.2, §A.4.3):
	// resources are divided equally among applications with preemptible
	// requests, but resources an application does not request may be
	// filled by the others.
	EquiPartitionFilling PreemptPolicy = iota
	// StrictEquiPartition is the baseline of §5.4: every application is
	// shown exactly its equi-partition, regardless of whether the other
	// applications use theirs.
	StrictEquiPartition
)

// String returns a human-readable policy name.
func (p PreemptPolicy) String() string {
	if p == StrictEquiPartition {
		return "strict-equi-partition"
	}
	return "equi-partition-filling"
}

// eqSchedule implements Algorithm 3 (§A.4.3): it divides the resources of
// vin among the applications' preemptible requests and returns the
// preemptive view of each application, keyed by application ID. As a side
// effect the ScheduledAt and NAlloc attributes of the preemptible requests
// are updated.
func eqSchedule(apps []*AppState, vin view.View, t0 float64, policy PreemptPolicy) map[int]view.View {
	return eqScheduleScratch(apps, vin, t0, policy, &scratch{})
}

// eqScheduleScratch is eqSchedule with caller-provided scratch buffers.
func eqScheduleScratch(apps []*AppState, vin view.View, t0 float64, policy PreemptPolicy, sc *scratch) map[int]view.View {
	n := len(apps)
	out := make(map[int]view.View, n)
	if n == 0 {
		return out
	}

	// Compute preliminary views of occupied resources (lines 1–3).
	sc.vocc = grown(sc.vocc, n)
	vocc := sc.vocc
	for i, a := range apps {
		if a.P.Len() == 0 {
			// No requests: toView and fit would be no-ops on an empty set
			// and the subtraction below a full copy of vin for nothing.
			vocc[i] = nil
			continue
		}
		fixed := toViewScratch(a.P, vin, t0, sc)
		avail := vin.Sub(fixed)
		avail.MutClampMin(0)
		pending := fitScratch(a.P, avail, t0, sc)
		if fixed == nil {
			fixed = pending // may still be nil: app occupies nothing
		} else {
			fixed.MutAdd(pending)
		}
		vocc[i] = fixed
	}

	// Applications that occupy nothing are interchangeable in the
	// interval walk below: they request 0 nodes at every instant, so they
	// neither join the water-filling nor change `active`, and all of them
	// receive the identical hypothetical-share view (Alg. 3 lines 11–12:
	// avail/(active+1)). Walk only the occupying applications plus — when
	// at least one application is idle — one virtual idle slot, and share
	// that slot's view among every idle application. With federated
	// sessions connected to every shard (internal/federation.Connect) this
	// keeps the walk proportional to the applications that actually hold
	// or request preemptible resources on this shard.
	sc.occ = sc.occ[:0]
	for i := range apps {
		if vocc[i] != nil {
			sc.occ = append(sc.occ, i)
		}
	}
	occ := sc.occ
	nw := len(occ) // walked slots; slot nw is the virtual idle one, if any
	if len(occ) < n {
		nw++
	}

	// Gather every cluster mentioned by vin or any occupancy view.
	if sc.cseen == nil {
		sc.cseen = make(map[view.ClusterID]bool)
	}
	clear(sc.cseen)
	sc.clusters = sc.clusters[:0]
	addCluster := func(cid view.ClusterID) {
		if !sc.cseen[cid] {
			sc.cseen[cid] = true
			sc.clusters = append(sc.clusters, cid)
		}
	}
	for cid := range vin {
		addCluster(cid)
	}
	for _, i := range occ {
		for cid := range vocc[i] {
			addCluster(cid)
		}
	}
	clusters := sc.clusters
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })

	// For each cluster, walk the piece-wise constant intervals (lines 4–27).
	perWalk := make([]view.View, nw)
	for i := range perWalk {
		perWalk[i] = view.New()
	}
	// One profile cursor per source: profs[0] tracks vin, profs[1+j]
	// tracks walked slot j's occupancy (nil for the virtual idle slot).
	sc.profs = grown(sc.profs, nw+1)
	sc.cursor = grown(sc.cursor, nw+1)
	sc.val = grown(sc.val, nw+1)
	sc.req = grown(sc.req, nw)
	sc.share = grown(sc.share, nw)
	sc.need = grown(sc.need, nw)
	sc.grant = grown(sc.grant, nw)
	sc.builders = grown(sc.builders, nw)
	var zero view.View
	for _, cid := range clusters {
		// Merge the breakpoints of vin and all occupancy profiles into one
		// sorted, deduplicated slice (no per-cluster set allocation).
		bps := append(sc.bps[:0], 0)
		bps = vin.Get(cid).AppendBreakpoints(bps)
		for _, i := range occ {
			bps = vocc[i].Get(cid).AppendBreakpoints(bps)
		}
		sort.Float64s(bps)
		dedup := bps[:1]
		for _, t := range bps[1:] {
			if t != dedup[len(dedup)-1] {
				dedup = append(dedup, t)
			}
		}
		sc.bps = bps
		bps = dedup

		sc.profs[0] = vin.Get(cid)
		for j, i := range occ {
			sc.profs[1+j] = vocc[i].Get(cid)
		}
		if nw > len(occ) {
			sc.profs[1+len(occ)] = zero.Get(cid) // virtual idle slot
		}
		for i := range sc.cursor {
			sc.cursor[i] = 0
			sc.val[i] = 0
		}
		for i := range sc.builders {
			sc.builders[i].Reset()
		}

		for _, t := range bps {
			// Advance every profile cursor to its segment covering t. The
			// breakpoint list is the union of all profiles' breakpoints, so
			// this walk visits each profile point exactly once per cluster.
			for s, f := range sc.profs {
				for sc.cursor[s] < f.Len() {
					pt, pn := f.At(sc.cursor[s])
					if pt > t {
						break
					}
					sc.val[s] = pn
					sc.cursor[s]++
				}
			}
			vinVal := sc.val[0]
			if vinVal < 0 {
				vinVal = 0
			}
			sum := 0
			active := 0
			for i := 0; i < nw; i++ {
				r := sc.val[1+i]
				if r < 0 {
					r = 0
				}
				sc.req[i] = r
				sum += r
				if r > 0 {
					active++
				}
			}
			divideInterval(vinVal, sc.req, sum, active, policy, sc.share, sc.need, sc.grant)
			for i := 0; i < nw; i++ {
				sc.builders[i].Append(t, sc.share[i])
			}
		}
		for i := range perWalk {
			f := sc.builders[i].Fn()
			if !f.IsZero() {
				perWalk[i][cid] = f
			}
		}
	}
	var idle view.View // shared by every idle application
	if nw > len(occ) {
		idle = perWalk[nw-1]
	}

	// Reschedule all requests according to the computed views, so that
	// ScheduledAt and NAlloc are set correctly (lines 28–30). Idle
	// applications with no preemptible requests at all have nothing to
	// reschedule and share the idle view's map (consumers treat pushed
	// views as immutable).
	j := 0
	for i, a := range apps {
		var v view.View
		if j < len(occ) && occ[j] == i {
			v = perWalk[j]
			j++
		} else {
			v = idle
			if a.P.Len() == 0 {
				out[a.ID] = v
				continue
			}
		}
		fixed := toViewScratch(a.P, v, t0, sc)
		avail := v.Sub(fixed)
		avail.MutClampMin(0)
		fitScratch(a.P, avail, t0, sc)
		out[a.ID] = v
	}
	return out
}

// divideInterval computes the per-application view values for one
// piece-wise constant interval: avail nodes available, req[i] nodes
// requested by application i (sum, active precomputed). The result is
// written into out; need and grant are caller-provided scratch of the same
// length.
func divideInterval(avail int, req []int, sum, active int, policy PreemptPolicy, out, need, grant []int) {
	n := len(req)

	// Fair-share size for an application: its equi-partition. An inactive
	// application's hypothetical share uses active+1 partitions (Alg. 3
	// lines 11–12 and 22–23: "the number of partitions if this application
	// were to become active").
	share := func(i int) int {
		parts := active
		if req[i] == 0 {
			parts = active + 1
		}
		if parts == 0 {
			parts = 1
		}
		return avail / parts
	}

	if policy == StrictEquiPartition {
		for i := 0; i < n; i++ {
			out[i] = share(i)
		}
		return
	}

	if sum > avail {
		// Congested: distribute resources equally until none are left free
		// (lines 8–18), using iterative water-filling.
		copy(need, req)
		for i := 0; i < n; i++ {
			grant[i] = 0
		}
		left := avail
		for left > 0 {
			unsat := 0
			for i := 0; i < n; i++ {
				if need[i] > 0 {
					unsat++
				}
			}
			if unsat == 0 {
				break
			}
			veq := left / unsat
			if veq < 1 {
				veq = 1
			}
			progressed := false
			for i := 0; i < n; i++ {
				if need[i] == 0 || left == 0 {
					continue
				}
				take := need[i]
				if veq < take {
					take = veq
				}
				if left < take {
					take = left
				}
				grant[i] += take
				need[i] -= take
				left -= take
				if take > 0 {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		for i := 0; i < n; i++ {
			if req[i] > 0 {
				out[i] = grant[i]
			} else {
				// Inactive applications still see their hypothetical share
				// so they can decide to become active.
				out[i] = share(i)
			}
		}
		return
	}

	// Uncongested: give each application the resources left free by the
	// others, but not less than its equi-partition (lines 19–25).
	for i := 0; i < n; i++ {
		leftover := avail - (sum - req[i])
		if s := share(i); leftover < s {
			leftover = s
		}
		if leftover < 0 {
			leftover = 0
		}
		out[i] = leftover
	}
}
